package varbench

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"time"

	"varbench/internal/estimator"
	"varbench/internal/stats"
	"varbench/internal/xrand"
	"varbench/store"
)

// Default knobs of a VarianceStudy.
const (
	// DefaultVarianceK is the number of measures collected per source and
	// realization (the paper probes each source with 200 seeds; the default
	// favors exploratory budgets).
	DefaultVarianceK = 10
	// DefaultVarianceRealizations is the number of independent realizations
	// of the whole study (the paper repeats each estimator 20 times to
	// measure the variance of its mean).
	DefaultVarianceRealizations = 5
)

// A VarianceStudy is a declarative variance decomposition of one benchmark
// pipeline, mirroring Experiment: it measures how much each source of
// variation contributes to the spread of the pipeline's results — the
// protocol behind Figure 1 — and how fast averaging k measures shrinks the
// standard error — the SE-vs-k curves of Figure 5 and the bias/Var/ρ/MSE
// decomposition of Figure H.5 — served through the public API instead of the
// internal figure drivers.
//
//	study := varbench.VarianceStudy{Pipeline: runTrial, K: 10, Realizations: 5}
//	rep, err := study.Run(ctx)
//	...
//	rep.Render(os.Stdout, varbench.VarianceTextRenderer{})
//
// For every probed source the study collects Realizations independent sets
// of K measures in which only that source receives a fresh seed per measure
// (all other sources stay fixed within the realization), plus one
// joint-randomization row in which every probed source varies at once. The
// (source × realization) cells fan out across a worker pool; every cell's
// seeds derive from (Seed, realization, source) alone, so the report is
// bit-identical at any Parallelism.
type VarianceStudy struct {
	// Name labels the study in reports. Optional.
	Name string

	// Pipeline runs one benchmark measurement under a trial's per-source
	// seed assignment. It must be a seed-aware TrialFunc — a plain RunFunc
	// cannot hold sources fixed, which is the whole point of the study —
	// and, like Experiment pipelines, a pure function of its Trial.
	Pipeline TrialFunc

	// Sources lists the sources of variation probed one at a time (default:
	// LearningSources, the ξO set). Use a SourceSet — e.g. SetLearning or
	// SetAll — or ParseSources to name the estimator's canonical subsets.
	// Custom labels are honored like Experiment.Sources (the Pipeline reads
	// them through Trial.SourceSeed) — which also means a source the
	// Pipeline never consumes (a typo, or ξH under a fixed-hyperparameter
	// pipeline) reports zero variance rather than an error; ParseSources
	// catches misspelled canonical labels.
	Sources []Source

	// K is the number of measures per source per realization (default 10).
	// The SE-vs-k curves span k = 1..K.
	K int
	// Realizations is the number of independent repetitions of the whole
	// study (default 5, minimum 2): the spread across realizations of the
	// k-measure mean is what the curves and the decomposition estimate.
	Realizations int

	// Seed is the root of all randomness. The zero value means "use the
	// default" (1), matching Experiment.
	Seed uint64

	// Parallelism is the worker-pool size the (source × realization) cells
	// fan out across (default GOMAXPROCS). Results are identical at any
	// setting.
	Parallelism int

	// TrialTimeout, Retry and FailFast mirror the Experiment resilience
	// knobs; they thread into every collection cell. A false FailFast
	// means "fail fast unless TrialTimeout or Retry is configured" (the
	// study has no option form to disambiguate an explicit false; use
	// Retry{MaxAttempts: 1} to opt into quarantine without retries). In
	// quarantine mode a cell with any quarantined measure drops its whole
	// realization — a partial realization would bias the SE-vs-k curves —
	// and the study degrades to the surviving realizations per row,
	// erroring only when fewer than 2 survive. Dropped measures are listed
	// in VarianceReport.Failures and recorded under store failure/... keys;
	// re-running with the same store retries exactly the failed cells.
	TrialTimeout time.Duration
	Retry        RetryPolicy
	FailFast     bool

	// Store, when set, makes the study durable and resumable: every
	// completed measure is appended immediately, and cells already recorded
	// are served from the store, so an interrupted Run resumes exactly
	// where it stopped and studies sharing (Seed, source subsets) reuse
	// each other's cells. Cell keys derive from the per-realization seed
	// root and the varied-source fingerprint, so a study probing a subset
	// of another's Sources — at the same Seed — reuses every per-source
	// row. Its joint row is shared only when the varied set matches a
	// recorded one: for a single-source study the joint row coincides with
	// the source's own row (fully cached), while a multi-source subset's
	// joint row is a new combination and is collected fresh. Any
	// store.Backend implementation works; see Experiment.Store.
	Store store.Backend
	// PipelineID names the Pipeline implementation inside the store's spec
	// fingerprint; see Experiment.PipelineID.
	PipelineID string
}

// withDefaults returns a copy of s with zero-valued knobs replaced by their
// defaults, and rejects invalid settings.
func (s VarianceStudy) withDefaults() (VarianceStudy, error) {
	c := s
	if c.Pipeline == nil {
		return c, fmt.Errorf("varbench: variance study needs a Pipeline (TrialFunc)")
	}
	if len(c.Sources) == 0 {
		c.Sources = LearningSources()
	}
	seen := make(map[Source]bool, len(c.Sources))
	for _, src := range c.Sources {
		if src == VarNumericalNoise {
			return c, fmt.Errorf("varbench: %s is a pseudo-source with no seed stream; it cannot be probed by a VarianceStudy", VarNumericalNoise)
		}
		if seen[src] {
			return c, fmt.Errorf("varbench: duplicate source %q", src)
		}
		seen[src] = true
	}
	if c.K < 0 {
		return c, fmt.Errorf("varbench: K must not be negative, got %d (0 means default)", c.K)
	}
	if c.K == 0 {
		c.K = DefaultVarianceK
	}
	if c.K < 2 {
		return c, fmt.Errorf("varbench: K must be ≥ 2, got %d", c.K)
	}
	if c.Realizations < 0 {
		return c, fmt.Errorf("varbench: Realizations must not be negative, got %d (0 means default)", c.Realizations)
	}
	if c.Realizations == 0 {
		c.Realizations = DefaultVarianceRealizations
	}
	if c.Realizations < 2 {
		return c, fmt.Errorf("varbench: Realizations must be ≥ 2, got %d", c.Realizations)
	}
	if c.Parallelism < 0 {
		return c, fmt.Errorf("varbench: Parallelism must not be negative, got %d (0 means default)", c.Parallelism)
	}
	if c.Parallelism == 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.TrialTimeout < 0 {
		return c, fmt.Errorf("varbench: TrialTimeout must not be negative, got %v (0 means no deadline)", c.TrialTimeout)
	}
	if err := c.Retry.validate(); err != nil {
		return c, err
	}
	if !c.FailFast {
		c.FailFast = c.Retry.MaxAttempts == 0 && c.TrialTimeout == 0
	}
	return c, nil
}

// Run executes the study: Realizations × (len(Sources)+1) collection cells —
// one per probed source plus the joint-randomization row — fan out across
// the worker pool, and the measures are summarized into a VarianceReport.
// The report is deterministic given the spec, identical at any Parallelism.
func (s VarianceStudy) Run(ctx context.Context) (*VarianceReport, error) {
	cfg, err := s.withDefaults()
	if err != nil {
		return nil, err
	}
	start := time.Now() //lint:allow nondeterm(Elapsed is wall-clock metadata, not part of the deterministic result)

	// One cell = one realization of one row (a single source, or the joint
	// row varying every probed source at once). Each cell is an independent
	// Experiment.Collect whose seeds derive from (Seed, realization) and the
	// varied-source labels alone; cells write to disjoint slots, so the
	// worker pool cannot perturb the result.
	type cell struct {
		row         int // index into rows: probed sources, then the joint row
		realization int
	}
	nRows := len(cfg.Sources) + 1
	jointRow := nRows - 1
	rowSources := make([][]Source, nRows)
	for i, src := range cfg.Sources {
		rowSources[i] = []Source{src}
	}
	rowSources[jointRow] = cfg.Sources

	cells := make([]cell, 0, nRows*cfg.Realizations)
	for r := 0; r < cfg.Realizations; r++ {
		for row := 0; row < nRows; row++ {
			cells = append(cells, cell{row: row, realization: r})
		}
	}
	// Every row of one realization shares the same realization root, so the
	// held-fixed sources keep identical seeds across rows — the paper's
	// "all other sources fixed to initial values" protocol — while
	// realizations are independent of each other.
	roots := make([]uint64, cfg.Realizations)
	for r := range roots {
		roots[r] = xrand.New(cfg.Seed).Split(fmt.Sprintf("variance/realization/%d", r)).Uint64()
	}

	measures := make([][][]float64, nRows) // [row][realization][k]
	for row := range measures {
		measures[row] = make([][]float64, cfg.Realizations)
	}
	cellFails := make([][]TrialFailure, len(cells))
	// The cell receives collectN's pool context, not Run's: when a sibling
	// cell fails, the pool cancels and every in-flight cell stops between
	// its own measures instead of finishing all K of them.
	collect := func(cellCtx context.Context, i int) error {
		c := cells[i]
		e := Experiment{
			ATrial:       cfg.Pipeline,
			Sources:      rowSources[c.row],
			MaxRuns:      cfg.K,
			BatchSize:    cfg.K,
			Parallelism:  1, // the pool parallelizes across cells, not within
			Store:        cfg.Store,
			PipelineID:   cfg.PipelineID,
			TrialTimeout: cfg.TrialTimeout,
			Retry:        cfg.Retry,
			FailFast:     cfg.FailFast,
		}
		if !cfg.FailFast {
			// The study's withDefaults already resolved the tri-state; pin
			// the inner experiment to quarantine explicitly so its own
			// inference cannot flip it back to fail-fast.
			WithFailFast(false)(&e)
		}
		WithSeed(roots[c.realization])(&e)
		label := rowLabel(rowSources[c.row], c.row == jointRow)
		out, fails, err := e.collectAll(cellCtx)
		if err != nil {
			return fmt.Errorf("variance source %q realization %d: %w",
				label, c.realization, err)
		}
		if len(fails) > 0 {
			// Any quarantined measure drops the whole realization for this
			// row: a partial cell would bias the SE-vs-k curve, and the
			// dropped cell's store records make the resume retry exactly it.
			for j := range fails {
				fails[j].Dataset = label
				fails[j].Realization = c.realization + 1
			}
			cellFails[i] = fails
			return nil
		}
		measures[c.row][c.realization] = out
		return nil
	}
	if err := collectN(ctx, len(cells), cfg.Parallelism, collect); err != nil {
		return nil, err
	}
	var failures []TrialFailure
	for _, fs := range cellFails {
		failures = append(failures, fs...)
	}

	rep := &VarianceReport{
		Name:         cfg.Name,
		Seed:         cfg.Seed,
		K:            cfg.K,
		Realizations: cfg.Realizations,
	}
	// μ̂: the grand mean of the joint-randomization measures, the study's
	// best estimate of the expected performance — the reference the
	// decomposition's bias is measured against.
	rep.Mu = stats.Mean(flatten(measures[jointRow]))

	ks := estimator.Ks(cfg.K, 12)
	var totalVar float64
	rows := make([]SourceVariance, nRows)
	for row := range rows {
		label := rowLabel(rowSources[row], row == jointRow)
		kept := surviving(measures[row])
		if len(kept) < len(measures[row]) && len(kept) < 2 {
			return nil, fmt.Errorf("varbench: source %q: only %d of %d realizations survived quarantine (%d measure(s) failed): %w",
				label, len(kept), cfg.Realizations, len(failures), ErrTrialFailed)
		}
		sv, err := summarizeRow(label, kept, rep.Mu, ks)
		if err != nil {
			return nil, err
		}
		rows[row] = sv
		if row != jointRow {
			totalVar += sv.Std * sv.Std
		}
	}
	// Shares normalize each probed source's variance by the sum over probed
	// sources; the joint row's share compares joint randomization to that
	// sum (≈1 when sources contribute independently).
	for row := range rows {
		if totalVar > 0 {
			rows[row].Share = rows[row].Std * rows[row].Std / totalVar
		}
	}
	rep.Sources = rows[:jointRow]
	rep.Joint = rows[jointRow]
	rep.Failures = failures
	rep.Elapsed = time.Since(start) //lint:allow nondeterm(Elapsed is wall-clock metadata, not part of the deterministic result)
	return rep, nil
}

// rowLabel names a report row: the source's own label, or "joint" for the
// all-probed-sources row.
func rowLabel(sources []Source, joint bool) string {
	if joint {
		return JointLabel
	}
	return string(sources[0])
}

// summarizeRow condenses one row's realization×K measure matrix into its
// report entry: pooled spread, SE-vs-k curve and mean-estimator
// decomposition.
func summarizeRow(label string, matrix [][]float64, mu float64, ks []int) (SourceVariance, error) {
	var meanSum, varSum float64
	for _, row := range matrix {
		meanSum += stats.Mean(row)
		varSum += stats.Variance(row)
	}
	n := float64(len(matrix))
	curve, err := estimator.BiasedCurve(label, matrix, ks)
	if err != nil {
		return SourceVariance{}, fmt.Errorf("varbench: source %q curve: %w", label, err)
	}
	dec, err := estimator.Decompose(label, matrix, mu)
	if err != nil {
		return SourceVariance{}, fmt.Errorf("varbench: source %q decomposition: %w", label, err)
	}
	return SourceVariance{
		Source: label,
		Mean:   meanSum / n,
		// Pooled within-realization std: the per-source spread of single
		// measures, the quantity Figure 1 reports.
		Std: math.Sqrt(varSum / n),
		Curve: SECurve{
			K:    append([]int(nil), curve.K...),
			SE:   append([]float64(nil), curve.Std...),
			Band: append([]float64(nil), curve.Band...),
		},
		Decomposition: Decomposition{
			Bias: dec.Bias,
			Var:  dec.Var,
			Rho:  dec.Rho,
			MSE:  dec.MSE,
		},
		Measures: matrix,
	}, nil
}

// surviving drops the nil (quarantined) realizations of one row's measure
// matrix, preserving realization order.
func surviving(matrix [][]float64) [][]float64 {
	out := make([][]float64, 0, len(matrix))
	for _, row := range matrix {
		if row != nil {
			out = append(out, row)
		}
	}
	return out
}

func flatten(matrix [][]float64) []float64 {
	var out []float64
	for _, row := range matrix {
		out = append(out, row...)
	}
	return out
}
