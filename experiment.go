package varbench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"varbench/internal/compare"
	"varbench/internal/stats"
	"varbench/internal/xrand"
	"varbench/store"
)

// RunFunc executes one complete benchmark measurement of a learning
// pipeline — ideally training with fresh data split, initialization, data
// order, augmentation (and, budget permitting, hyperparameter optimization)
// seeds derived from seed — and returns the performance (higher is better).
// A RunFunc must be a pure function of its seed: the collection engine may
// invoke it from multiple goroutines and in any order.
type RunFunc func(seed uint64) (float64, error)

// TrialFunc is the seed-aware counterpart of RunFunc: it receives the full
// per-source seed assignment of one trial, enabling pipelines that vary only
// the experiment's chosen Sources while holding all others fixed. Like
// RunFunc it must be a pure function of its Trial.
type TrialFunc func(t Trial) (float64, error)

// EarlyStopPolicy selects how Experiment.Run decides it has collected
// enough paired measurements.
type EarlyStopPolicy int

const (
	// EarlyStopAuto (the default) evaluates the recommended test after each
	// batch and stops as soon as the bootstrap CI clears γ (a decisive
	// meaningful win), the CI falls entirely below 0.5 (futility: A cannot
	// win), or Noether's recommended sample size is reached.
	//
	// Note that the CI-based stops examine the interval at every batch
	// boundary; repeated looks inflate the false-positive rate above the
	// single-look nominal level (no alpha-spending correction is applied).
	// They are a compute-saving heuristic for clearly separated pairs —
	// when strict nominal error rates matter, use EarlyStopOff with
	// MaxRuns set from SampleSize, the paper's fixed-N protocol.
	EarlyStopAuto EarlyStopPolicy = iota
	// EarlyStopOff always collects exactly MaxRuns pairs.
	EarlyStopOff
)

// A Dataset names one benchmark in a multi-dataset experiment and may carry
// its own pipelines; nil ones fall back to the experiment-level A/B.
type Dataset struct {
	Name           string
	A, B           RunFunc
	ATrial, BTrial TrialFunc
}

// Progress reports the state of a running experiment after each batch.
type Progress struct {
	// Dataset is the dataset being collected ("" for single-dataset runs).
	Dataset string
	// Pairs is the number of trials collected so far on this dataset:
	// paired runs for Experiment.Run, single measurements for
	// Experiment.Collect.
	Pairs int
	// MaxRuns is the collection cap.
	MaxRuns int
	// Interim is the recommended test on the pairs so far; nil before
	// MinRuns pairs exist, when early stopping is off, or while a resumed
	// run replays batches a persisted analysis snapshot already covers.
	Interim *Comparison
	// Quarantined counts the trials quarantined so far on this dataset
	// (always 0 in fail-fast mode, where the first failure aborts the run).
	Quarantined int
}

// An Experiment is a declarative benchmark comparison following the paper's
// recommended protocol end to end: it collects paired measurements of two
// pipelines under randomized sources of variation, across a worker pool,
// stopping early once the evidence is conclusive, and concludes with the
// probability of outperforming P(A>B) against the meaningfulness threshold
// γ. The zero value of every knob means "use the recommended default", so
//
//	res, err := varbench.Experiment{A: runA, B: runB}.Run(ctx)
//
// is a complete comparison, powered per Noether's recommendation when it
// runs to MaxRuns (see EarlyStopAuto for the caveat on CI-based early
// stops). Results are bit-identical at
// any Parallelism: every trial's seeds are derived from (Seed, trial index)
// alone.
type Experiment struct {
	// Name labels the experiment in reports. Optional.
	Name string

	// A and B are the two pipelines under comparison. Alternatively set
	// ATrial/BTrial to receive per-source seed assignments; setting both
	// forms for the same algorithm is an error.
	A, B           RunFunc
	ATrial, BTrial TrialFunc

	// Datasets switches to a multi-dataset comparison (Section 6): each
	// dataset is collected separately and judged at a Bonferroni-adjusted
	// threshold, and the evidence is combined. Dataset-level pipelines
	// default to the experiment-level ones.
	Datasets []Dataset

	// Sources lists the sources of variation that receive a fresh seed on
	// every trial; the rest stay fixed for the whole experiment. Empty
	// means vary all sources, the paper's headline recommendation.
	// Restricting Sources requires TrialFunc pipelines (ATrial/BTrial): a
	// plain RunFunc only sees the per-trial root seed and would vary
	// everything regardless, so that combination is rejected.
	Sources []Source

	// Gamma is the meaningfulness threshold for P(A>B) (default 0.75).
	Gamma float64
	// Confidence is the CI confidence level (default 0.95).
	Confidence float64
	// Bootstrap is the number of bootstrap resamples (default 1000).
	Bootstrap int
	// Seed is the root of all collection and bootstrap randomness. The
	// zero value means "use the default" (1); to run with seed 0, use
	// WithSeed(0).
	Seed uint64

	// MaxRuns caps the number of pairs collected per dataset (default:
	// Noether's recommended sample size for γ, e.g. 29 at γ=0.75).
	MaxRuns int
	// MinRuns is the smallest sample the early-stop rule may judge
	// (default 5).
	MinRuns int
	// BatchSize is the number of pairs collected between early-stop
	// evaluations (default 8). Batch boundaries are independent of
	// Parallelism, so changing the worker count never changes the result —
	// which is also why the default is a constant rather than tracking
	// Parallelism. At most BatchSize trials are in flight at once, so set
	// BatchSize ≥ Parallelism to use the full worker pool.
	BatchSize int
	// Parallelism is the collection worker-pool size (default GOMAXPROCS).
	// Effective concurrency is additionally bounded by BatchSize. In a
	// multi-dataset experiment the datasets are collected concurrently,
	// each with its own pool, so up to len(Datasets)·min(Parallelism,
	// BatchSize) trials may be in flight at once.
	Parallelism int
	// AnalysisParallelism is the worker-pool size of the sharded bootstrap
	// behind every confidence-interval computation (default GOMAXPROCS).
	// Shard boundaries and RNG streams depend only on (Seed, Bootstrap),
	// so results are bit-identical at any setting.
	AnalysisParallelism int
	// EarlyStop selects the stopping policy (default EarlyStopAuto).
	EarlyStop EarlyStopPolicy

	// Store, when set, makes collection durable and resumable: every
	// completed (trial, side) measurement is appended to the store as soon
	// as it exists, and trials already recorded under this spec's
	// fingerprint are served from the store instead of re-running the
	// pipeline. Because trial seeds depend only on (Seed, dataset, index),
	// cache hits are bit-identical to recomputation at any Parallelism, and
	// an interrupted Run resumes exactly where it stopped when re-run with
	// the same store. Any store.Backend implementation works; store.Open,
	// store.NewMem, store.OpenSegLog and store.OpenDSN all produce one. See
	// WithStore and the store package.
	Store store.Backend
	// PipelineID names the pipeline implementation inside the store's spec
	// fingerprint. The store cannot hash code: two experiments sharing a
	// store directory but running different pipelines must set distinct
	// IDs, or stale scores would be served as fresh. Empty is a valid ID
	// (one store directory per pipeline needs no label).
	PipelineID string

	// TrialTimeout, when positive, bounds every pipeline invocation: an
	// attempt that runs longer fails with ErrTrialTimeout (and is retried
	// or quarantined per the other resilience knobs). The timed-out
	// pipeline's goroutine is abandoned — a TrialFunc cannot be killed —
	// so pipelines that can hang should also honor cancellation
	// themselves when possible. Setting TrialTimeout opts the experiment
	// into quarantine mode by default; see FailFast.
	TrialTimeout time.Duration
	// Retry re-runs failed trials with deterministic seeded backoff; see
	// RetryPolicy. The zero value means a single attempt. Setting
	// Retry.MaxAttempts — even to 1 — opts the experiment into quarantine
	// mode by default; see FailFast. MaxAttempts: 1 is the idiomatic way
	// to say "quarantine without retrying".
	Retry RetryPolicy
	// FailFast selects what a trial that exhausts its attempts does to the
	// run: abort it with the trial's error (true — today's behavior and
	// the default for experiments that configure no resilience knobs), or
	// quarantine the failed cell and keep collecting (false). Quarantined
	// cells are dropped from the analysis, recorded in the store under
	// failure/... keys with their attempt history, and surfaced in the
	// Result's failure summary; re-running with the same store retries
	// them. Because the zero value cannot distinguish "unset" from an
	// explicit false, a false field means "fail fast unless TrialTimeout
	// or Retry is configured"; a true field always fails fast, and
	// WithFailFast(false) forces quarantine mode on its own.
	FailFast bool

	// Unpaired only affects the score-level Analyze entry point; see
	// WithUnpaired.
	Unpaired bool

	// Progress, when set, is invoked after every collected batch.
	// Invocations are never concurrent: multi-dataset runs collect
	// datasets in parallel but funnel every callback through a single
	// delivery goroutine, so batches from different datasets interleave
	// in completion order while the callback itself stays single-threaded.
	Progress func(Progress)

	// The set flags distinguish an explicit zero passed through an Option
	// (honored for Seed, rejected as out-of-range for the others) from an
	// unset field, which takes the default.
	seedSet       bool
	gammaSet      bool
	confidenceSet bool
	bootstrapSet  bool
	failFastSet   bool
}

// guard bundles the resilience knobs for the collection engine.
func (e *Experiment) guard() *guard {
	return &guard{
		timeout:  e.TrialTimeout,
		retry:    e.Retry.normalized(),
		failFast: e.FailFast,
		sleep:    sleepCtx,
	}
}

// Run executes the experiment: it collects paired measurements (in
// parallel, honoring ctx) and returns the statistical conclusion. The
// result is deterministic given the spec — identical at any Parallelism.
func (e Experiment) Run(ctx context.Context) (*Result, error) {
	cfg, err := e.withDefaults()
	if err != nil {
		return nil, err
	}
	datasets, err := cfg.datasetList()
	if err != nil {
		return nil, err
	}
	start := time.Now() //lint:allow nondeterm(Elapsed is wall-clock metadata, not part of the deterministic result)
	res := &Result{
		Name:  cfg.Name,
		Gamma: cfg.Gamma,
		Seed:  cfg.Seed,
	}

	if len(datasets) == 1 {
		// A single dataset — named or not — needs no multiple-comparison
		// adjustment and reports through the Comparison convenience field.
		dr, err := cfg.runDataset(ctx, datasets[0], cfg.Gamma)
		if err != nil {
			return nil, err
		}
		res.Datasets = []DatasetResult{*dr}
		res.Comparison = dr.Comparison
		res.Pairs = dr.Pairs
		res.Runs = 2 * dr.Pairs
		res.Quarantined = len(dr.Failures)
		res.EarlyStopped = dr.EarlyStopped
		res.StopReason = dr.StopReason
		res.WilcoxonP = 1
		res.Elapsed = time.Since(start) //lint:allow nondeterm(Elapsed is wall-clock metadata, not part of the deterministic result)
		return res, nil
	}

	// Multi-dataset: judge each dataset at the Bonferroni-adjusted
	// threshold, then combine the evidence through combineEvidence.
	// Datasets are collected concurrently — every dataset derives its
	// seeds from its own (Seed, name)-keyed root, so scheduling cannot
	// perturb any per-dataset result — and a single delivery goroutine
	// serializes Progress callbacks, so user callbacks never run
	// concurrently even though collection does.
	adjGamma := stats.GammaBonferroni(cfg.Gamma, 0.05, len(datasets))
	runCfg := *cfg
	var progCh chan Progress
	var progWG sync.WaitGroup
	if cfg.Progress != nil {
		progCh = make(chan Progress, len(datasets))
		progWG.Add(1)
		go func() {
			defer progWG.Done()
			for p := range progCh {
				cfg.Progress(p)
			}
		}()
		runCfg.Progress = func(p Progress) { progCh <- p }
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	drs := make([]*DatasetResult, len(datasets))
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for i, ds := range datasets {
		wg.Add(1)
		go func(i int, ds Dataset) {
			defer wg.Done()
			dr, err := runCfg.runDataset(ctx, ds, adjGamma)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
					cancel()
				}
				mu.Unlock()
				return
			}
			drs[i] = dr
		}(i, ds)
	}
	wg.Wait()
	if progCh != nil {
		close(progCh)
		progWG.Wait()
	}
	if firstErr != nil {
		return nil, firstErr
	}

	earlyAll := true
	for _, dr := range drs {
		res.Datasets = append(res.Datasets, *dr)
		res.Pairs += dr.Pairs
		res.Runs += 2 * dr.Pairs
		res.Quarantined += len(dr.Failures)
		if !dr.EarlyStopped {
			earlyAll = false
		}
	}
	res.EarlyStopped = earlyAll
	res.AllMeaningful, res.WilcoxonP = combineEvidence(res.Datasets)
	res.Elapsed = time.Since(start) //lint:allow nondeterm(Elapsed is wall-clock metadata, not part of the deterministic result)
	return res, nil
}

// Collect runs the experiment's A pipeline MaxRuns times under the
// experiment's seed-derivation rules and returns the measurements. This is
// the entry point for variance studies of a single pipeline: set Sources to
// the sources to probe (the rest stay fixed) and summarize the spread of
// the returned scores. Early stopping does not apply; exactly MaxRuns
// measurements are collected unless ctx is canceled or the pipeline errors
// — or, in quarantine mode, fewer when trials exhaust their attempts (use
// collectAll via VarianceStudy, or compare len(out) to MaxRuns, to detect
// the shortfall). Progress, when set, fires after every batch with Interim
// nil.
func (e Experiment) Collect(ctx context.Context) ([]float64, error) {
	out, _, err := e.collectAll(ctx)
	return out, err
}

// collectAll is Collect plus the quarantined-failure list, in trial-index
// order. It is the engine behind VarianceStudy cells.
func (e Experiment) collectAll(ctx context.Context) ([]float64, []TrialFailure, error) {
	cfg, err := e.withDefaults()
	if err != nil {
		return nil, nil, err
	}
	if cfg.A != nil && cfg.ATrial != nil {
		return nil, nil, fmt.Errorf("varbench: set A or ATrial, not both")
	}
	if err := cfg.checkSources(Dataset{A: cfg.A}); err != nil {
		return nil, nil, err
	}
	run, err := pickRunner(cfg.ATrial, cfg.A, "A")
	if err != nil {
		return nil, nil, err
	}
	g := cfg.guard()
	stream := cfg.trialStream("")
	cache := cfg.trialCache("")
	batch := make([]Trial, 0, cfg.BatchSize)
	scores := make([]float64, cfg.BatchSize)
	fails := make([]*TrialFailure, cfg.BatchSize)
	var out []float64
	var failures []TrialFailure
	for lo := 0; lo < cfg.MaxRuns; lo += cfg.BatchSize {
		hi := min(lo+cfg.BatchSize, cfg.MaxRuns)
		m := hi - lo
		batch = stream.take(batch[:0], m)
		for i := 0; i < m; i++ {
			fails[i] = nil
		}
		if err := collectRuns(ctx, cache, g, run, batch, scores[:m], fails[:m], cfg.Parallelism); err != nil {
			return nil, nil, err
		}
		// Compact the batch in trial-index order: successes extend out,
		// quarantined slots extend failures. Slot placement is per-trial,
		// so the compacted order is identical at any Parallelism.
		for i := 0; i < m; i++ {
			if f := fails[i]; f != nil {
				failures = append(failures, *f)
				continue
			}
			out = append(out, scores[i])
		}
		if cfg.Progress != nil {
			cfg.Progress(Progress{Pairs: len(out), MaxRuns: cfg.MaxRuns, Quarantined: len(failures)})
		}
	}
	return out, failures, nil
}

// datasetList normalizes the experiment into one or more fully-specified
// datasets and validates the pipelines.
func (e *Experiment) datasetList() ([]Dataset, error) {
	if e.A != nil && e.ATrial != nil {
		return nil, fmt.Errorf("varbench: set A or ATrial, not both")
	}
	if e.B != nil && e.BTrial != nil {
		return nil, fmt.Errorf("varbench: set B or BTrial, not both")
	}
	if len(e.Datasets) == 0 {
		if e.A == nil && e.ATrial == nil {
			return nil, fmt.Errorf("varbench: experiment needs pipeline A")
		}
		if e.B == nil && e.BTrial == nil {
			return nil, fmt.Errorf("varbench: experiment needs pipeline B")
		}
		if err := e.checkSources(Dataset{A: e.A, B: e.B}); err != nil {
			return nil, err
		}
		return []Dataset{{A: e.A, B: e.B, ATrial: e.ATrial, BTrial: e.BTrial}}, nil
	}
	out := make([]Dataset, len(e.Datasets))
	seen := make(map[string]bool, len(e.Datasets))
	for i, ds := range e.Datasets {
		if ds.Name == "" {
			return nil, fmt.Errorf("varbench: dataset %d needs a name", i)
		}
		if seen[ds.Name] {
			return nil, fmt.Errorf("varbench: duplicate dataset name %q", ds.Name)
		}
		seen[ds.Name] = true
		if ds.A != nil && ds.ATrial != nil {
			return nil, fmt.Errorf("varbench: dataset %s: set A or ATrial, not both", ds.Name)
		}
		if ds.B != nil && ds.BTrial != nil {
			return nil, fmt.Errorf("varbench: dataset %s: set B or BTrial, not both", ds.Name)
		}
		if ds.A == nil && ds.ATrial == nil {
			ds.A, ds.ATrial = e.A, e.ATrial
		}
		if ds.B == nil && ds.BTrial == nil {
			ds.B, ds.BTrial = e.B, e.BTrial
		}
		if ds.A == nil && ds.ATrial == nil {
			return nil, fmt.Errorf("varbench: dataset %s needs pipeline A", ds.Name)
		}
		if ds.B == nil && ds.BTrial == nil {
			return nil, fmt.Errorf("varbench: dataset %s needs pipeline B", ds.Name)
		}
		if err := e.checkSources(ds); err != nil {
			return nil, err
		}
		out[i] = ds
	}
	return out, nil
}

// checkSources rejects restricted Sources combined with plain RunFunc
// pipelines: a RunFunc derives everything from the per-trial root seed, so
// it would silently vary every source instead of only the chosen ones.
func (e *Experiment) checkSources(ds Dataset) error {
	if len(e.Sources) == 0 {
		return nil
	}
	if ds.A != nil || ds.B != nil {
		return fmt.Errorf("varbench: restricting Sources requires TrialFunc pipelines (ATrial/BTrial); a plain RunFunc cannot hold sources fixed")
	}
	return nil
}

// pickRunner adapts either form of pipeline to a TrialFunc.
func pickRunner(tf TrialFunc, rf RunFunc, which string) (TrialFunc, error) {
	switch {
	case tf != nil:
		return tf, nil
	case rf != nil:
		return func(t Trial) (float64, error) { return rf(t.Seed) }, nil
	default:
		return nil, fmt.Errorf("varbench: experiment needs pipeline %s", which)
	}
}

// runDataset collects one dataset's paired measurements in batches,
// early-stopping per the policy, and evaluates the recommended test at the
// meaningfulness threshold gamma. Trials and score buffers grow one batch
// at a time: memory tracks the pairs actually collected, never the MaxRuns
// cap, which matters when γ near 0.5 drives Noether's N — the MaxRuns
// default — enormous while early stopping ends after a few batches.
func (e *Experiment) runDataset(ctx context.Context, ds Dataset, gamma float64) (*DatasetResult, error) {
	// gamma may be the Bonferroni-adjusted threshold rather than the
	// user-validated Gamma field; re-validate at the point of consumption.
	if gamma <= 0.5 || gamma >= 1 {
		return nil, fmt.Errorf("varbench: adjusted γ = %v out of (0.5, 1)", gamma)
	}
	runA, err := pickRunner(ds.ATrial, ds.A, "A")
	if err != nil {
		return nil, err
	}
	runB, err := pickRunner(ds.BTrial, ds.B, "B")
	if err != nil {
		return nil, err
	}
	g := e.guard()
	stream := e.trialStream(ds.Name)
	cache := e.trialCache(ds.Name)
	label := ""
	if ds.Name != "" {
		label = "dataset " + ds.Name + ": "
	}
	var outA, outB []float64
	var failures []TrialFailure
	batch := make([]Trial, 0, e.BatchSize)
	batchA := make([]float64, e.BatchSize)
	batchB := make([]float64, e.BatchSize)
	fails := make([]*TrialFailure, e.BatchSize)
	// One incremental analysis state threads through every batch boundary:
	// each batch extends the state's K weighted resamples by its new pairs
	// (O(K × n_new)) instead of re-running the full bootstrap on all n
	// collected pairs (O(K × n) per boundary — O(batches × K × n) total).
	// With a store attached, the state snapshots to disk after every batch
	// and a re-run resumes it: boundaries the snapshot already covers are
	// hash-verified, skipped, and known non-stopping (the run that saved
	// the snapshot passed them under the identical decision schedule, which
	// the analysis fingerprint plus batch-alignment acceptance guarantee).
	seed := xrand.New(e.datasetRoot(ds.Name)).Split("analysis/incremental").Uint64()
	crit := compare.PAB{Gamma: gamma, Level: e.Confidence, Bootstrap: e.Bootstrap}
	aligned := func(n int) bool {
		return n > 0 && n <= e.MaxRuns && (n == e.MaxRuns || n%e.BatchSize == 0)
	}
	ana, err := newIncAnalysis(crit, seed, e.AnalysisParallelism, e.Store,
		store.AnalysisKey(e.Seed, "dataset/"+ds.Name), e.analysisFingerprint(gamma, seed), aligned)
	if err != nil {
		return nil, err
	}
	recommended := stats.NoetherSampleSize(gamma, 0.05, 0.05)

	var stop StopReason
	var lastEval *Comparison // evaluation of outA[:n]/outB[:n], if any
	n := 0
	for lo := 0; lo < e.MaxRuns && stop == ""; lo += e.BatchSize {
		hi := min(lo+e.BatchSize, e.MaxRuns)
		m := hi - lo
		batch = stream.take(batch[:0], m)
		for i := 0; i < m; i++ {
			fails[i] = nil
		}
		if err := collectPairs(ctx, label, cache, g, runA, runB, batch, batchA[:m], batchB[:m], fails[:m], e.Parallelism); err != nil {
			return nil, err
		}
		// Compact the batch in trial-index order: surviving pairs extend
		// outA/outB contiguously (the incremental analysis only ever sees
		// successes), quarantined ones extend the failure list. MaxRuns
		// caps attempted trial indices, not surviving pairs — a degraded
		// run reports fewer pairs rather than drawing replacement trials,
		// which would change every sibling's seed schedule.
		prev := n
		for i := 0; i < m; i++ {
			if f := fails[i]; f != nil {
				f.Dataset = ds.Name
				failures = append(failures, *f)
				continue
			}
			outA = append(outA, batchA[i])
			outB = append(outB, batchB[i])
		}
		n = len(outA)
		if err := ana.feed(outA, outB, prev, n); err != nil {
			return nil, err
		}
		if err := ana.save(); err != nil {
			return nil, err
		}
		lastEval = nil
		// ana.n() > n means a restored snapshot already covers later batches
		// of this same schedule; skip the boundary (it was non-stopping).
		if e.EarlyStop == EarlyStopAuto && n >= e.MinRuns && ana.n() == n {
			c, err := ana.comparison()
			if err != nil {
				return nil, err
			}
			lastEval = &c
			// Early-stop decisions only apply before the last scheduled
			// batch: hi counts attempted trial indices, which is what the
			// MaxRuns budget caps (n can trail hi when trials were
			// quarantined).
			if hi < e.MaxRuns {
				switch {
				case c.CILo > gamma:
					stop = StopCICleared
				case c.CIHi < 0.5:
					stop = StopFutility
				case n >= recommended:
					stop = StopNoetherN
				}
			}
		}
		if e.Progress != nil {
			e.Progress(Progress{Dataset: ds.Name, Pairs: n, MaxRuns: e.MaxRuns,
				Interim: lastEval, Quarantined: len(failures)})
		}
	}
	if stop == "" {
		stop = StopMaxRuns
	}
	if n < 2 && len(failures) > 0 {
		return nil, fmt.Errorf("varbench: %sonly %d pair(s) survived collection, %d quarantined — cannot analyze: %w (first: %s)",
			label, n, len(failures), ErrTrialFailed, failures[0].String())
	}
	// The state is deterministic in (scores, seed), so the evaluation that
	// decided the stop doubles as the final result.
	final := Comparison{}
	if lastEval != nil {
		final = *lastEval
	} else {
		c, err := ana.comparison()
		if err != nil {
			return nil, err
		}
		final = c
	}
	return &DatasetResult{
		Name:         ds.Name,
		Comparison:   final,
		ScoresA:      outA[:n],
		ScoresB:      outB[:n],
		Pairs:        n,
		Failures:     failures,
		EarlyStopped: stop != StopMaxRuns,
		StopReason:   stop,
	}, nil
}

// trialCache prepares the store adapter for one dataset's collection, or
// nil (always-miss) when no store is attached.
func (e *Experiment) trialCache(dataset string) *trialCache {
	if e.Store == nil {
		return nil
	}
	return &trialCache{store: e.Store, fp: e.specFingerprint(), seed: e.Seed, dataset: dataset}
}

// specFingerprint hashes the parts of the spec that change what a trial
// measures: the pipeline identity and the varied-source assignment. It
// deliberately excludes MaxRuns, BatchSize, Parallelism, early stopping and
// every analysis knob — none of them affect a trial's seeds — so raising a
// budget, changing worker counts or re-running after an interrupt reuses
// every recorded trial, and overlapping studies share identical cells. A
// record whose fingerprint does not match is rejected (recomputed), never
// silently reused.
func (e *Experiment) specFingerprint() string {
	varied := e.Sources
	restricted := len(varied) > 0
	if !restricted {
		varied = AllSources()
	}
	return store.Fingerprint(
		"varbench/spec/v1",
		"pipeline="+e.PipelineID,
		// Restriction changes how unknown custom labels derive (fixedRoot
		// vs per-trial), even when the varied set is identical.
		fmt.Sprintf("restricted=%t", restricted),
		"varied="+canonicalSourceLabels(varied),
	)
}

// datasetRoot derives the seed root of one dataset's collection stream.
// The unnamed single dataset uses the experiment seed directly, which keeps
// trial seeds bit-identical to the historical CollectPaired sequence.
func (e *Experiment) datasetRoot(name string) uint64 {
	if name == "" {
		return e.Seed
	}
	return xrand.New(e.Seed).Split("dataset/" + name).Uint64()
}

// A trialStream lazily derives the seed assignment of one trial at a time.
// Seeds depend only on (Seed, dataset name, trial index), never on worker
// scheduling, which is what makes results parallelism-invariant — and the
// stream draws them in exactly the order the historical eager makeTrials
// did, so the sequence is pinned bit-for-bit (see
// TestTrialStreamMatchesHistoricalSeeds). Streaming means an experiment
// whose MaxRuns is huge (γ near 0.5 makes Noether's N explode) allocates
// trials per batch, not MaxRuns Trial structs plus one seed map each before
// the first measurement.
type trialStream struct {
	root      *xrand.Source
	entries   []Source
	varied    map[Source]bool
	fixed     map[Source]uint64
	fixedRoot uint64
	next      int // index of the next trial to derive
}

// trialStream prepares the lazy per-trial seed derivation for one dataset.
func (e *Experiment) trialStream(dataset string) *trialStream {
	root := xrand.New(e.datasetRoot(dataset))

	varied := make(map[Source]bool)
	listed := e.Sources
	restricted := len(listed) > 0
	if !restricted {
		listed = AllSources()
	}
	for _, s := range listed {
		varied[s] = true
	}
	// Map entries cover the known sources plus any custom labels listed in
	// a restricted Sources set (those must vary even though SourceSeed's
	// fallback would hold them fixed).
	entries := AllSources()
	knownSet := make(map[Source]bool, len(entries))
	for _, s := range entries {
		knownSet[s] = true
	}
	for _, s := range listed {
		if !knownSet[s] {
			entries = append(entries, s)
		}
	}

	// Split does not consume the parent stream, but its output depends on
	// the parent's state: derive all fixed-source seeds before drawing any
	// trial seeds so the trial-seed sequence matches xrand.New(root).
	var fixedRoot uint64
	if restricted {
		fixedRoot = root.Split("custom-fixed").Uint64()
	}
	fixed := make(map[Source]uint64)
	for _, s := range entries {
		if !varied[s] {
			fixed[s] = root.Split("fixed/" + string(s)).Uint64()
		}
	}
	return &trialStream{
		root:      root,
		entries:   entries,
		varied:    varied,
		fixed:     fixed,
		fixedRoot: fixedRoot,
	}
}

// take appends the next n trials of the stream to dst and returns it.
// Callers reuse dst across batches (dst[:0]) so the Trial headers are
// allocated once per batch, not once per MaxRuns.
func (s *trialStream) take(dst []Trial, n int) []Trial {
	for ; n > 0; n-- {
		seed := s.root.Uint64()
		tr := xrand.New(seed)
		seeds := make(map[Source]uint64, len(s.entries))
		for _, src := range s.entries {
			if s.varied[src] {
				// Same derivation as xrand.NewStreams(seed), so plain
				// RunFunc pipelines built on NewStreams agree with
				// SourceSeed for every varied source.
				seeds[src] = tr.Split(string(src)).Uint64()
			} else {
				seeds[src] = s.fixed[src]
			}
		}
		dst = append(dst, Trial{Index: s.next, Seed: seed, seeds: seeds, fixedRoot: s.fixedRoot})
		s.next++
	}
	return dst
}

// makeTrials eagerly materializes the full MaxRuns seed assignment. It is
// the historical eager path, kept for the deprecated CollectPaired wrapper
// and as the reference the lazy stream is pinned against.
func (e *Experiment) makeTrials(dataset string) []Trial {
	return e.trialStream(dataset).take(make([]Trial, 0, e.MaxRuns), e.MaxRuns)
}
