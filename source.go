package varbench

import "varbench/internal/xrand"

// A Source names one source of variation in a learning pipeline, following
// the paper's decomposition ξ = ξO ∪ ξH (Section 2.1). An Experiment draws a
// fresh seed for every varied source on every run and holds the remaining
// sources fixed, which is the paper's protocol for both full randomization
// (vary everything — the default) and per-source variance studies (vary
// exactly one).
type Source string

// The canonical sources of variation studied in the paper (Figure 1).
const (
	// VarDataSplit seeds the bootstrap / out-of-bootstrap resampling of the
	// finite dataset into train+valid and test sets.
	VarDataSplit Source = Source(xrand.VarDataSplit)
	// VarInit seeds model parameter initialization.
	VarInit Source = Source(xrand.VarInit)
	// VarOrder seeds the visit order of examples in SGD.
	VarOrder Source = Source(xrand.VarOrder)
	// VarDropout seeds dropout masks.
	VarDropout Source = Source(xrand.VarDropout)
	// VarAugment seeds stochastic data augmentation.
	VarAugment Source = Source(xrand.VarAugment)
	// VarHOpt seeds the hyperparameter-optimization search (ξH).
	VarHOpt Source = Source(xrand.VarHOpt)
	// VarHOptSplit seeds the train/validation splitting internal to HOpt.
	VarHOptSplit Source = Source(xrand.VarHOptSplit)
	// VarNumericalNoise is a pseudo-source naming runs in which every seed
	// is held fixed and only nondeterministic floating-point accumulation
	// varies (Appendix A). It has no seed stream and is not part of
	// AllSources.
	VarNumericalNoise Source = Source(xrand.VarNumericalNoise)
)

// LearningSources lists the ξO sources in the order used by Figure 1.
func LearningSources() []Source {
	return sourcesOf(xrand.LearningVars())
}

// AllSources lists every seedable source, ξO then ξH. It is the default set
// an Experiment varies per run.
func AllSources() []Source {
	return sourcesOf(xrand.AllVars())
}

func sourcesOf(vars []xrand.Var) []Source {
	out := make([]Source, len(vars))
	for i, v := range vars {
		out[i] = Source(v)
	}
	return out
}

// A Trial is the complete seed assignment of one benchmark run: a root seed
// (what a plain RunFunc receives) plus one derived seed per source of
// variation. Sources listed in the experiment's Sources field receive a
// fresh seed on every trial; all other sources keep a seed fixed across the
// whole experiment, so a TrialFunc can probe exactly the chosen sources.
type Trial struct {
	// Index is the 0-based position of this trial in the experiment;
	// algorithms A and B of a pair share the same Trial.
	Index int
	// Seed is the root seed for this trial. Deriving all per-source seeds
	// from it via xrand.NewStreams(Seed) agrees with SourceSeed for every
	// varied source.
	Seed uint64

	seeds map[Source]uint64
	// fixedRoot derives seeds for custom labels outside a restricted
	// Sources set; 0 means the experiment varies all sources, so unknown
	// labels vary per trial instead.
	fixedRoot uint64
}

// SourceSeed returns the seed assigned to one source of variation for this
// trial: fresh per trial for varied sources, constant across trials for the
// rest. Custom labels follow the same contract: when the experiment
// restricts Sources, a label not in that set yields a seed that is constant
// across trials; when all sources vary (the default), it varies per trial.
func (t Trial) SourceSeed(s Source) uint64 {
	if seed, ok := t.seeds[s]; ok {
		return seed
	}
	if t.fixedRoot != 0 {
		return xrand.New(t.fixedRoot).Split("fixed/" + string(s)).Uint64()
	}
	return xrand.New(t.Seed).Split(string(s)).Uint64()
}
