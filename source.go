package varbench

import (
	"fmt"
	"sort"
	"strings"

	"varbench/internal/estimator"
	"varbench/internal/xrand"
)

// A Source names one source of variation in a learning pipeline, following
// the paper's decomposition ξ = ξO ∪ ξH (Section 2.1). An Experiment draws a
// fresh seed for every varied source on every run and holds the remaining
// sources fixed, which is the paper's protocol for both full randomization
// (vary everything — the default) and per-source variance studies (vary
// exactly one).
type Source string

// The canonical sources of variation studied in the paper (Figure 1).
const (
	// VarDataSplit seeds the bootstrap / out-of-bootstrap resampling of the
	// finite dataset into train+valid and test sets.
	VarDataSplit Source = Source(xrand.VarDataSplit)
	// VarInit seeds model parameter initialization.
	VarInit Source = Source(xrand.VarInit)
	// VarOrder seeds the visit order of examples in SGD.
	VarOrder Source = Source(xrand.VarOrder)
	// VarDropout seeds dropout masks.
	VarDropout Source = Source(xrand.VarDropout)
	// VarAugment seeds stochastic data augmentation.
	VarAugment Source = Source(xrand.VarAugment)
	// VarHOpt seeds the hyperparameter-optimization search (ξH).
	VarHOpt Source = Source(xrand.VarHOpt)
	// VarHOptSplit seeds the train/validation splitting internal to HOpt.
	VarHOptSplit Source = Source(xrand.VarHOptSplit)
	// VarNumericalNoise is a pseudo-source naming runs in which every seed
	// is held fixed and only nondeterministic floating-point accumulation
	// varies (Appendix A). It has no seed stream and is not part of
	// AllSources.
	VarNumericalNoise Source = Source(xrand.VarNumericalNoise)
)

// LearningSources lists the ξO sources in the order used by Figure 1.
func LearningSources() []Source {
	return sourcesOf(xrand.LearningVars())
}

// AllSources lists every seedable source, ξO then ξH. It is the default set
// an Experiment varies per run.
func AllSources() []Source {
	return sourcesOf(xrand.AllVars())
}

func sourcesOf(vars []xrand.Var) []Source {
	out := make([]Source, len(vars))
	for i, v := range vars {
		out[i] = Source(v)
	}
	return out
}

// A SourceSet names a canonical group of sources of variation, bridging the
// randomization subsets of the internal estimators (the FixHOptEst variants
// of Algorithm 2, Section 3.3) to the public Source vocabulary. Sets expand
// through Sources and are accepted anywhere ParseSources specs are, e.g. the
// `varbench variance -sources` flag.
type SourceSet string

// The canonical source sets.
const (
	// SetInit is FixHOptEst(k, Init): weight initialization only — the
	// predominant (and weakest) randomization practice in the literature.
	SetInit SourceSet = "init"
	// SetData is FixHOptEst(k, Data): the dataset split only (bootstrap).
	SetData SourceSet = "data"
	// SetLearning is FixHOptEst(k, All): every ξO source — init, order,
	// dropout, augmentation and data split — everything except HOpt. The
	// paper's recommended cheap randomization.
	SetLearning SourceSet = "learning"
	// SetAll is every seedable source, ξO and ξH (LearningSources plus the
	// hyperparameter-optimization streams).
	SetAll SourceSet = "all"
)

// sourceSets maps each named set to its expansion. The first three delegate
// to the estimator's Subset registry so the public sets can never drift from
// the subsets the internal estimators actually randomize.
func sourceSets() map[SourceSet][]Source {
	return map[SourceSet][]Source{
		SetInit:     sourcesOf(estimator.SubsetInit.Vars()),
		SetData:     sourcesOf(estimator.SubsetData.Vars()),
		SetLearning: sourcesOf(estimator.SubsetAll.Vars()),
		SetAll:      AllSources(),
	}
}

// Sources expands the set into its sources of variation. Unknown sets return
// an error listing the valid names.
func (s SourceSet) Sources() ([]Source, error) {
	if out, ok := sourceSets()[s]; ok {
		return out, nil
	}
	return nil, fmt.Errorf("varbench: unknown source set %q (valid: %s)", s, validSourceNames())
}

// ParseSources resolves a comma-separated spec of source labels and set names
// ("weights-init", "init,data-order", "learning", "all,hopt") into a
// duplicate-free Source list, preserving first-appearance order. It is the
// registry the CLI uses to translate user specs into the estimator's
// randomization subsets.
func ParseSources(spec string) ([]Source, error) {
	var out []Source
	seen := make(map[Source]bool)
	add := func(s Source) {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	known := make(map[Source]bool)
	for _, s := range AllSources() {
		known[s] = true
	}
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		if set, ok := sourceSets()[SourceSet(tok)]; ok {
			for _, s := range set {
				add(s)
			}
			continue
		}
		if known[Source(tok)] {
			add(Source(tok))
			continue
		}
		return nil, fmt.Errorf("varbench: unknown source %q (valid: %s)", tok, validSourceNames())
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("varbench: empty source spec %q", spec)
	}
	return out, nil
}

// canonicalSourceLabels renders a source list as a canonical (sorted,
// deduplicated, comma-joined) string for spec fingerprinting: the trial
// store must treat {init, order} and {order, init} as the same varied set,
// because per-source seeds derive from labels, not list positions.
func canonicalSourceLabels(sources []Source) string {
	labels := make([]string, 0, len(sources))
	seen := make(map[Source]bool, len(sources))
	for _, s := range sources {
		if !seen[s] {
			seen[s] = true
			labels = append(labels, string(s))
		}
	}
	sort.Strings(labels)
	return strings.Join(labels, ",")
}

// validSourceNames lists every accepted ParseSources token, sets first.
func validSourceNames() string {
	sets := make([]string, 0, len(sourceSets()))
	for s := range sourceSets() {
		sets = append(sets, string(s))
	}
	sort.Strings(sets)
	names := sets
	for _, s := range AllSources() {
		names = append(names, string(s))
	}
	return strings.Join(names, ", ")
}

// A Trial is the complete seed assignment of one benchmark run: a root seed
// (what a plain RunFunc receives) plus one derived seed per source of
// variation. Sources listed in the experiment's Sources field receive a
// fresh seed on every trial; all other sources keep a seed fixed across the
// whole experiment, so a TrialFunc can probe exactly the chosen sources.
type Trial struct {
	// Index is the 0-based position of this trial in the experiment;
	// algorithms A and B of a pair share the same Trial.
	Index int
	// Seed is the root seed for this trial. Deriving all per-source seeds
	// from it via xrand.NewStreams(Seed) agrees with SourceSeed for every
	// varied source.
	Seed uint64

	seeds map[Source]uint64
	// fixedRoot derives seeds for custom labels outside a restricted
	// Sources set; 0 means the experiment varies all sources, so unknown
	// labels vary per trial instead.
	fixedRoot uint64
}

// SourceSeed returns the seed assigned to one source of variation for this
// trial: fresh per trial for varied sources, constant across trials for the
// rest. Custom labels follow the same contract: when the experiment
// restricts Sources, a label not in that set yields a seed that is constant
// across trials; when all sources vary (the default), it varies per trial.
func (t Trial) SourceSeed(s Source) uint64 {
	if seed, ok := t.seeds[s]; ok {
		return seed
	}
	if t.fixedRoot != 0 {
		return xrand.New(t.fixedRoot).Split("fixed/" + string(s)).Uint64()
	}
	return xrand.New(t.Seed).Split(string(s)).Uint64()
}
