package varbench

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"varbench/internal/xrand"
	"varbench/store"
)

// renderText renders a Result with the default text renderer, failing the
// test on render errors.
func renderText(t *testing.T, r *Result) string {
	t.Helper()
	var buf bytes.Buffer
	if err := (TextRenderer{}).Render(&buf, r); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestRetryBackoffDeterministic(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 50 * time.Millisecond}
	for attempt := 1; attempt <= 4; attempt++ {
		d1 := p.Backoff(99, attempt)
		d2 := p.Backoff(99, attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: backoff not deterministic: %v vs %v", attempt, d1, d2)
		}
		// Exponential envelope with jitter in [0.5, 1.5): attempt k waits
		// min(MaxDelay, Base·2^(k-1)) scaled by the jitter.
		base := 10 * time.Millisecond << (attempt - 1)
		if base > 50*time.Millisecond {
			base = 50 * time.Millisecond
		}
		lo, hi := base/2, base+base/2
		if d1 < lo || d1 >= hi {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v)", attempt, d1, lo, hi)
		}
	}
	if a, b := p.Backoff(1, 1), p.Backoff(2, 1); a == b {
		t.Fatal("different seeds produced identical jitter — suspicious")
	}
}

func TestRetryPolicyDo(t *testing.T) {
	boom := errors.New("boom")
	t.Run("recovers", func(t *testing.T) {
		p := RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond}
		calls := 0
		err := p.Do(context.Background(), 1, func() error {
			calls++
			if calls < 3 {
				return boom
			}
			return nil
		})
		if err != nil || calls != 3 {
			t.Fatalf("err=%v calls=%d, want nil after 3", err, calls)
		}
	})
	t.Run("exhausts", func(t *testing.T) {
		p := RetryPolicy{MaxAttempts: 2, BaseDelay: time.Microsecond}
		calls := 0
		err := p.Do(context.Background(), 1, func() error { calls++; return boom })
		if !errors.Is(err, boom) || calls != 2 {
			t.Fatalf("err=%v calls=%d, want boom after 2", err, calls)
		}
	})
	t.Run("cancellation is terminal", func(t *testing.T) {
		p := RetryPolicy{MaxAttempts: 5, BaseDelay: time.Microsecond}
		calls := 0
		err := p.Do(context.Background(), 1, func() error { calls++; return context.Canceled })
		if !errors.Is(err, context.Canceled) || calls != 1 {
			t.Fatalf("err=%v calls=%d, want canceled after 1 (never retried)", err, calls)
		}
	})
	t.Run("retryable filter", func(t *testing.T) {
		p := RetryPolicy{MaxAttempts: 5, BaseDelay: time.Microsecond,
			Retryable: func(err error) bool { return !errors.Is(err, boom) }}
		calls := 0
		err := p.Do(context.Background(), 1, func() error { calls++; return boom })
		if !errors.Is(err, boom) || calls != 1 {
			t.Fatalf("err=%v calls=%d, want boom after 1", err, calls)
		}
	})
}

// flaky builds a TrialFunc that fails the first fail attempts of every
// trial, then succeeds with a deterministic score. Attempt bookkeeping is
// mutable shared state, so it is guarded — the scores themselves stay a
// pure function of the trial.
func flaky(fail int, mean float64) TrialFunc {
	var mu sync.Mutex
	attempts := map[int]int{}
	return func(tr Trial) (float64, error) {
		mu.Lock()
		attempts[tr.Index]++
		a := attempts[tr.Index]
		mu.Unlock()
		if a <= fail {
			return 0, fmt.Errorf("transient fault (attempt %d)", a)
		}
		return mean + 0.05*xrand.New(tr.Seed^0x9E3779B9).NormFloat64(), nil
	}
}

func TestRetryRecoversTransientFaults(t *testing.T) {
	e := Experiment{
		ATrial:  flaky(2, 0.9),
		BTrial:  flaky(1, 0.7),
		Seed:    7,
		MaxRuns: 16,
		Retry:   RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond},
	}
	res, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Quarantined != 0 {
		t.Fatalf("%d trials quarantined, want 0 (retries should recover)", res.Quarantined)
	}
	clean := Experiment{
		ATrial: func(tr Trial) (float64, error) {
			return 0.9 + 0.05*xrand.New(tr.Seed^0x9E3779B9).NormFloat64(), nil
		},
		BTrial: func(tr Trial) (float64, error) {
			return 0.7 + 0.05*xrand.New(tr.Seed^0x9E3779B9).NormFloat64(), nil
		},
		Seed:    7,
		MaxRuns: 16,
	}
	want, err := clean.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got, exp := renderText(t, res), renderText(t, want); got != exp {
		t.Fatalf("recovered run differs from clean run:\n--- recovered ---\n%s--- clean ---\n%s", got, exp)
	}
}

func TestRetryInsufficientBudgetFailsFast(t *testing.T) {
	// Two retries cannot beat three consecutive faults; with FailFast set
	// the run aborts with a classified error.
	e := Experiment{
		ATrial:   flaky(3, 0.9),
		BTrial:   flaky(0, 0.7),
		Seed:     7,
		MaxRuns:  8,
		Retry:    RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond},
		FailFast: true,
	}
	_, err := e.Run(context.Background())
	if !errors.Is(err, ErrTrialFailed) {
		t.Fatalf("err = %v, want ErrTrialFailed", err)
	}
}

func TestTrialTimeout(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	hang := func(tr Trial) (float64, error) {
		if tr.Index == 3 {
			<-release
		}
		return 0.5, nil
	}
	e := Experiment{
		ATrial:       hang,
		BTrial:       func(Trial) (float64, error) { return 0.4, nil },
		Seed:         1,
		MaxRuns:      8,
		TrialTimeout: 20 * time.Millisecond,
		FailFast:     true,
		EarlyStop:    EarlyStopOff,
	}
	_, err := e.Run(context.Background())
	if !errors.Is(err, ErrTrialTimeout) {
		t.Fatalf("err = %v, want ErrTrialTimeout", err)
	}
}

func TestPanicIsolation(t *testing.T) {
	bomb := func(tr Trial) (float64, error) {
		if tr.Index == 2 {
			panic("kaboom")
		}
		return 0.5 + 0.01*float64(tr.Index%5), nil
	}
	steady := func(tr Trial) (float64, error) { return 0.4 + 0.01*float64(tr.Index%5), nil }

	t.Run("fail-fast", func(t *testing.T) {
		e := Experiment{ATrial: bomb, BTrial: steady, Seed: 1, MaxRuns: 8, EarlyStop: EarlyStopOff}
		_, err := e.Run(context.Background())
		if !errors.Is(err, ErrTrialPanic) {
			t.Fatalf("err = %v, want ErrTrialPanic", err)
		}
		if !strings.Contains(err.Error(), "kaboom") {
			t.Fatalf("err %q does not carry the panic value", err)
		}
	})
	t.Run("quarantine", func(t *testing.T) {
		e := Experiment{ATrial: bomb, BTrial: steady, Seed: 1, MaxRuns: 8,
			FailFast: false, Retry: RetryPolicy{MaxAttempts: 1}, EarlyStop: EarlyStopOff}
		res, err := e.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if res.Quarantined != 1 || len(res.Datasets[0].Failures) != 1 {
			t.Fatalf("quarantined=%d failures=%d, want 1/1", res.Quarantined, len(res.Datasets[0].Failures))
		}
		f := res.Datasets[0].Failures[0]
		if f.Kind != FailurePanic || f.Index != 2 || f.Side != "A" {
			t.Fatalf("failure = %+v, want panic at trial 2 side A", f)
		}
		if res.Pairs != 7 {
			t.Fatalf("pairs = %d, want 7 (8 attempted − 1 quarantined)", res.Pairs)
		}
	})
}

func TestQuarantineParallelismInvariance(t *testing.T) {
	// Trials 1 and 5 always fail on side B; quarantine must place the same
	// failures and survivors at any worker count.
	broken := func(tr Trial) (float64, error) {
		if tr.Index == 1 || tr.Index == 5 {
			return 0, errors.New("permanent fault")
		}
		return 0.4 + 0.01*float64(tr.Index%5), nil
	}
	spec := Experiment{
		ATrial:    func(tr Trial) (float64, error) { return 0.5 + 0.01*float64(tr.Index%5), nil },
		BTrial:    broken,
		Seed:      3,
		MaxRuns:   12,
		FailFast:  false,
		Retry:     RetryPolicy{MaxAttempts: 1},
		EarlyStop: EarlyStopOff,
	}
	serial := spec
	serial.Parallelism = 1
	parallel := spec
	parallel.Parallelism = 4
	r1, err := serial.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r4, err := parallel.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Quarantined != 2 || r4.Quarantined != 2 {
		t.Fatalf("quarantined: p=1 %d, p=4 %d; want 2", r1.Quarantined, r4.Quarantined)
	}
	if got, exp := renderText(t, r4), renderText(t, r1); got != exp {
		t.Fatalf("quarantined run differs across parallelism:\n--- p=4 ---\n%s--- p=1 ---\n%s", got, exp)
	}
}

// chaosTrial builds a TrialFunc whose attempts fail with seeded probability:
// 10% plain error, 5% panic, 5% hang (until release closes). Decisions
// derive only from the trial seed, the side and the per-cell attempt
// number, so every run of the same spec sees the same fault sequence.
func chaosTrial(side string, mean float64, release <-chan struct{}) TrialFunc {
	var mu sync.Mutex
	attempts := map[int]int{}
	return func(tr Trial) (float64, error) {
		mu.Lock()
		attempts[tr.Index]++
		a := attempts[tr.Index]
		mu.Unlock()
		draw := xrand.New(tr.Seed).Split(fmt.Sprintf("chaos/%s/attempt/%d", side, a)).Float64()
		switch {
		case draw < 0.10:
			return 0, fmt.Errorf("chaos error (attempt %d)", a)
		case draw < 0.15:
			panic(fmt.Sprintf("chaos panic (attempt %d)", a))
		case draw < 0.20:
			<-release
			return 0, errors.New("chaos hang released")
		}
		return mean + 0.05*xrand.New(tr.Seed^0x9E3779B9).NormFloat64(), nil
	}
}

// TestChaosRunMatchesCleanRun is the tentpole's end-to-end proof: a pipeline
// where 20% of attempts fail, panic or hang produces — through timeouts,
// retries and panic isolation — the byte-identical report of the clean
// pipeline, at parallelism 1 and 4.
func TestChaosRunMatchesCleanRun(t *testing.T) {
	clean := Experiment{
		ATrial: func(tr Trial) (float64, error) {
			return 0.9 + 0.05*xrand.New(tr.Seed^0x9E3779B9).NormFloat64(), nil
		},
		BTrial: func(tr Trial) (float64, error) {
			return 0.7 + 0.05*xrand.New(tr.Seed^0x9E3779B9).NormFloat64(), nil
		},
		Seed:      11,
		MaxRuns:   24,
		EarlyStop: EarlyStopOff,
	}
	want, err := clean.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wantText := renderText(t, want)

	for _, par := range []int{1, 4} {
		release := make(chan struct{})
		e := Experiment{
			ATrial:       chaosTrial("A", 0.9, release),
			BTrial:       chaosTrial("B", 0.7, release),
			Seed:         11,
			MaxRuns:      24,
			EarlyStop:    EarlyStopOff,
			Parallelism:  par,
			TrialTimeout: 50 * time.Millisecond,
			Retry:        RetryPolicy{MaxAttempts: 8, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond},
		}
		res, err := e.Run(context.Background())
		close(release)
		if err != nil {
			t.Fatalf("p=%d: %v", par, err)
		}
		if res.Quarantined != 0 {
			t.Fatalf("p=%d: %d trials quarantined, want 0 (retry budget should recover every cell):\n%v",
				par, res.Quarantined, res.Datasets[0].Failures)
		}
		if got := renderText(t, res); got != wantText {
			t.Fatalf("p=%d: chaos run differs from clean run:\n--- chaos ---\n%s--- clean ---\n%s", par, got, wantText)
		}
	}
}

// TestFaultInjectedStoreResumesToClean drives collection through a store
// whose early Puts fail, quarantining trials; re-running over the same
// directory with a healthy store recomputes exactly the quarantined cells
// and converges to the clean result.
func TestFaultInjectedStoreResumesToClean(t *testing.T) {
	a := func(tr Trial) (float64, error) {
		return 0.9 + 0.05*xrand.New(tr.Seed^0x9E3779B9).NormFloat64(), nil
	}
	b := func(tr Trial) (float64, error) {
		return 0.7 + 0.05*xrand.New(tr.Seed^0x9E3779B9).NormFloat64(), nil
	}
	spec := Experiment{ATrial: a, BTrial: b, Seed: 5, MaxRuns: 12, EarlyStop: EarlyStopOff}

	want, err := spec.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wantText := renderText(t, want)

	dir := t.TempDir()
	faulty, err := store.OpenDSN("faultinject:put@4-6:jsonl:" + dir)
	if err != nil {
		t.Fatal(err)
	}
	degradedSpec := spec
	degradedSpec.Store = faulty
	degradedSpec.FailFast = false
	degradedSpec.Retry = RetryPolicy{MaxAttempts: 1}
	degraded, err := degradedSpec.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := faulty.Close(); err != nil {
		t.Fatal(err)
	}
	if degraded.Quarantined == 0 {
		t.Fatal("fault-injected store quarantined nothing — schedule did not engage")
	}
	// The failure records were written durably alongside the trials.
	healthy, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n := healthy.CountPrefix("failure/"); n == 0 {
		t.Fatal("no failure/ records in the store after a degraded run")
	}
	resumedSpec := spec
	resumedSpec.Store = healthy
	resumed, err := resumedSpec.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := healthy.Close(); err != nil {
		t.Fatal(err)
	}
	if resumed.Quarantined != 0 {
		t.Fatalf("resume still quarantined %d trials", resumed.Quarantined)
	}
	if got := renderText(t, resumed); got != wantText {
		t.Fatalf("resumed run differs from clean run:\n--- resumed ---\n%s--- clean ---\n%s", got, wantText)
	}
}

// TestCollectNSimultaneousFailures pins collectN's tie-break: when many
// jobs fail at once, the reported error is the lowest-index one, not
// whichever goroutine lost the race.
func TestCollectNSimultaneousFailures(t *testing.T) {
	const n = 8
	for trial := 0; trial < 20; trial++ {
		var barrier sync.WaitGroup
		barrier.Add(n)
		err := collectN(context.Background(), n, n, func(ctx context.Context, i int) error {
			// Every job arrives before any fails, so all n failures are
			// simultaneous by construction.
			barrier.Done()
			barrier.Wait()
			return fmt.Errorf("job %d failed", i)
		})
		if err == nil || err.Error() != "job 0 failed" {
			t.Fatalf("trial %d: err = %v, want the lowest-index failure (job 0)", trial, err)
		}
	}
}

func TestVarianceStudyQuarantine(t *testing.T) {
	// A seeded ~8% of measures fail permanently, so some realizations drop
	// while enough survive per row; the report must carry the quarantine and
	// still analyze.
	study := VarianceStudy{
		Pipeline: func(tr Trial) (float64, error) {
			if xrand.New(tr.Seed).Split("fault").Float64() < 0.08 {
				return 0, errors.New("permanent fault")
			}
			return 0.8 + 0.05*xrand.New(tr.Seed^0x9E3779B9).NormFloat64(), nil
		},
		Sources:      []Source{VarInit},
		K:            4,
		Realizations: 5,
		Seed:         9,
		FailFast:     false,
		Retry:        RetryPolicy{MaxAttempts: 1},
	}
	rep, err := study.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failures) == 0 {
		t.Fatal("no failures reported despite a permanently failing trial")
	}
	for _, f := range rep.Failures {
		if f.Realization == 0 {
			t.Fatalf("failure %+v: Realization not set (want 1-based)", f)
		}
		if f.Dataset == "" {
			t.Fatalf("failure %+v: row label not set", f)
		}
	}
	var buf bytes.Buffer
	if err := (VarianceTextRenderer{}).Render(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "quarantined:") {
		t.Fatalf("text report lacks the quarantine summary:\n%s", buf.String())
	}
}

func TestVarianceStudyTooFewSurvivors(t *testing.T) {
	study := VarianceStudy{
		Pipeline: func(tr Trial) (float64, error) {
			return 0, errors.New("always broken")
		},
		Sources:      []Source{VarInit},
		K:            3,
		Realizations: 3,
		Seed:         9,
		FailFast:     false,
		Retry:        RetryPolicy{MaxAttempts: 1},
	}
	_, err := study.Run(context.Background())
	if err == nil || !errors.Is(err, ErrTrialFailed) {
		t.Fatalf("err = %v, want ErrTrialFailed (too few surviving realizations)", err)
	}
}

func TestFailFastInference(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
		want bool // effective FailFast
	}{
		{"default", nil, true},
		{"retry opts in", []Option{WithMaxRetries(2)}, false},
		{"timeout opts in", []Option{WithTrialTimeout(time.Second)}, false},
		{"explicit fail-fast wins over retry", []Option{WithMaxRetries(2), WithFailFast(true)}, true},
		{"explicit quarantine alone", []Option{WithFailFast(false)}, false},
	}
	for _, tc := range cases {
		e, err := applyOptions(tc.opts)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if e.FailFast != tc.want {
			t.Errorf("%s: FailFast = %v, want %v", tc.name, e.FailFast, tc.want)
		}
	}
}
