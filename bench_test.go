package varbench

// The benchmark harness: one benchmark per paper table/figure (regenerating
// the artifact at a reduced budget and reporting its headline quantity as a
// custom metric), ablation benchmarks for the design choices called out in
// DESIGN.md §5, and micro-benchmarks of the substrates. Run with:
//
//	go test -bench=. -benchmem
//
// Paper-scale budgets are available through cmd/varbench (without -quick).

import (
	"context"
	"fmt"
	"io"
	"math"
	"runtime"
	"testing"
	"time"

	"varbench/internal/casestudy"
	"varbench/internal/compare"
	"varbench/internal/data"
	"varbench/internal/estimator"
	"varbench/internal/experiments"
	"varbench/internal/gp"
	"varbench/internal/hpo"
	"varbench/internal/nn"
	"varbench/internal/pipeline"
	"varbench/internal/simulate"
	"varbench/internal/stats"
	"varbench/internal/tensor"
	"varbench/internal/xrand"
)

// benchBudget keeps figure benchmarks to a few seconds per iteration.
func benchBudget() experiments.Budget {
	return experiments.Budget{
		SeedsPerSource:       8,
		HOptRepetitions:      3,
		HOptBudget:           4,
		KMax:                 6,
		EstimatorRepetitions: 3,
		SimulationsPerPoint:  60,
	}
}

func benchStudies() []*casestudy.Study {
	return []*casestudy.Study{casestudy.Tiny(1)}
}

// --- Figure/table benchmarks -------------------------------------------

func BenchmarkFig1VarianceSources(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig1(benchStudies(), benchBudget(), uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Tasks[0].BootstrapStd(), "bootstrap-std")
	}
}

func BenchmarkFig2BinomialModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig2(benchStudies(), benchBudget(), uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		t := res.Tasks[0]
		b.ReportMetric(t.ObservedStd/t.ModelStd, "observed/model")
	}
}

func BenchmarkFig3SOTAAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3(map[string]float64{"cifar10": 0.3, "sst2": 0.6}, 0.05)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.DeltaCoefficient, "delta-coef")
	}
}

func BenchmarkFig5Estimators(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(benchStudies(), benchBudget(), uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		sigma2, _, _ := res.Tasks[0].SimulationModel()
		b.ReportMetric(sigma2, "sigma2")
	}
}

func BenchmarkFigH5Decomposition(b *testing.B) {
	budget := benchBudget()
	res, err := experiments.Fig5(benchStudies(), budget, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		decs, err := res.Tasks[0].Decompositions(budget.KMax)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(decs[1].MSE, "fixhopt-init-mse")
	}
}

func BenchmarkFig6DetectionRates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(experiments.DefaultModelStats(), benchBudget(), uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Summary.FalseNegative["prob-outperform/ideal"], "pab-fn")
		b.ReportMetric(res.Summary.FalsePositive["single-point/ideal"], "single-fp")
	}
}

func BenchmarkFigC1SampleSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.FigC1(0.05, 0.05)
		b.ReportMetric(float64(res.Recommended.N), "recommended-n")
	}
}

func BenchmarkFigF2HPOCurves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.FigF2(benchStudies(), benchBudget(), uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		c := res.Tasks[0].Curves[0]
		b.ReportMetric(c.ValidMean[len(c.ValidMean)-1], "final-valid-err")
	}
}

func BenchmarkFigG3Normality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.FigG3(benchStudies(), benchBudget(), uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.NormalShare(), "normal-share")
	}
}

func BenchmarkFigI6Robustness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.FigI6(experiments.DefaultModelStats(), benchBudget(), uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		pts := res.BySampleSize[0.8]
		b.ReportMetric(pts[len(pts)-1].Rates["prob-outperform"], "pab-power-p08")
	}
}

func BenchmarkTable8MHCComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table8(uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].AUC, "mlp-mhc-auc")
	}
}

// --- Ablation benchmarks (DESIGN.md §5) --------------------------------

// BenchmarkAblationPairing quantifies the power gained by pairing (Appendix
// C.2): detection rate of the PAB test on paired vs independently drawn
// measures with a shared noise component.
func BenchmarkAblationPairing(b *testing.B) {
	r := xrand.New(1)
	const n, sims = 29, 100
	run := func(paired bool) float64 {
		detect := 0
		for s := 0; s < sims; s++ {
			pairs := make([]stats.Pair, n)
			for i := range pairs {
				shared := r.NormFloat64() * 0.05 // split noise, shared when paired
				sharedB := shared
				if !paired {
					sharedB = r.NormFloat64() * 0.05
				}
				pairs[i] = stats.Pair{
					A: 0.012 + shared + 0.01*r.NormFloat64(),
					B: sharedB + 0.01*r.NormFloat64(),
				}
			}
			if (compare.PAB{Bootstrap: 200}).Detects(pairs, r) {
				detect++
			}
		}
		return float64(detect) / sims
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(true), "paired-power")
		b.ReportMetric(run(false), "unpaired-power")
	}
}

// BenchmarkAblationResampling contrasts out-of-bootstrap with k-fold
// cross-validation as the data-sampling probe (Appendix B). The fold count
// is chosen so that CV test folds match the bootstrap test size, otherwise
// the comparison is confounded by test-set size; the remaining difference is
// the correlation induced by CV's overlapping training sets.
func BenchmarkAblationResampling(b *testing.B) {
	task := casestudy.Tiny(1)
	p := task.Defaults()
	for i := 0; i < b.N; i++ {
		// Out-of-bootstrap variance over 10 resamples (test size 80).
		boot, err := estimator.SourceMeasures(task, p, xrand.VarDataSplit, 10, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		// 5-fold CV on one fixed pool (test folds ≈ 76).
		split, err := task.Split(xrand.New(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		pool, err := data.Concat(split.Train, split.Test)
		if err != nil {
			b.Fatal(err)
		}
		folds, err := data.KFold(pool.N(), 5, xrand.New(uint64(i)+7))
		if err != nil {
			b.Fatal(err)
		}
		var cv []float64
		for _, fold := range folds {
			streams := xrand.NewStreams(uint64(i))
			cfg, err := task.Build(p)
			if err != nil {
				b.Fatal(err)
			}
			res, err := nn.Train(cfg, pool.Subset(fold[0]), streams)
			if err != nil {
				b.Fatal(err)
			}
			cv = append(cv, task.Measure(res.Model, pool.Subset(fold[1])))
		}
		b.ReportMetric(stats.Std(boot), "bootstrap-std")
		b.ReportMetric(stats.Std(cv), "cv-std")
	}
}

// BenchmarkAblationCI compares the percentile-bootstrap CI against the
// normal-approximation CI for P(A>B), reporting coverage of the true value.
func BenchmarkAblationCI(b *testing.B) {
	r := xrand.New(2)
	const n, sims = 29, 150
	trueP := 0.75
	diff := simulate.MeanDiffForPAB(trueP, 1)
	for i := 0; i < b.N; i++ {
		bootHit, normHit := 0, 0
		for s := 0; s < sims; s++ {
			pairs := make([]stats.Pair, n)
			a := make([]float64, n)
			bb := make([]float64, n)
			for j := range pairs {
				a[j] = r.Normal(diff, 1)
				bb[j] = r.Normal(0, 1)
				pairs[j] = stats.Pair{A: a[j], B: bb[j]}
			}
			est := stats.PairedPAB(a, bb)
			ci := stats.PairedPercentileBootstrap(pairs, func(p []stats.Pair) float64 {
				av := make([]float64, len(p))
				bv := make([]float64, len(p))
				for k, pr := range p {
					av[k], bv[k] = pr.A, pr.B
				}
				return stats.PairedPAB(av, bv)
			}, 300, 0.95, r)
			if ci.Contains(trueP) {
				bootHit++
			}
			se := 1 / (2 * float64(n)) // placeholder scale; replaced below
			_ = se
			normCI := stats.NormalCI(est, stdErrPAB(est, n), 0.95)
			if normCI.Contains(trueP) {
				normHit++
			}
		}
		b.ReportMetric(float64(bootHit)/sims, "bootstrap-coverage")
		b.ReportMetric(float64(normHit)/sims, "normal-coverage")
	}
}

// stdErrPAB is the binomial-style standard error of a proportion.
func stdErrPAB(p float64, n int) float64 {
	if p <= 0 || p >= 1 {
		p = 0.5
	}
	return math.Sqrt(p * (1 - p) / float64(n))
}

// BenchmarkAblationStratification contrasts stratified vs plain bootstrap on
// the balanced image task: stratification removes class-imbalance noise from
// the test sets.
func BenchmarkAblationStratification(b *testing.B) {
	task := casestudy.CIFAR10VGG11(experiments.StructSeed)
	p := task.Defaults()
	for i := 0; i < b.N; i++ {
		strat, err := estimator.SourceMeasures(task, p, xrand.VarDataSplit, 6, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(stats.Std(strat), "stratified-std")
	}
}

// BenchmarkAblationSHA compares successive halving (continuation-based,
// using the resumable trainer) against random search at an equal total
// epoch budget, reporting the achieved validation error of each.
func BenchmarkAblationSHA(b *testing.B) {
	task := casestudy.Tiny(1)
	for i := 0; i < b.N; i++ {
		streams := xrand.NewStreams(uint64(i))
		split, err := task.Split(streams.Get(xrand.VarDataSplit))
		if err != nil {
			b.Fatal(err)
		}
		obj := pipeline.BudgetedObjective(task, split, streams)
		sha := hpo.SuccessiveHalving{Eta: 3, MinBudget: 1, MaxBudget: 9}
		hist, err := sha.Optimize(obj, task.Space(), 9, streams.Get(xrand.VarHOpt))
		if err != nil {
			b.Fatal(err)
		}
		shaBest, _ := hist.Best()

		// Random search with the same total epoch budget (27 epochs → 4
		// full 6-epoch trainings).
		rsStreams := xrand.NewStreams(uint64(i))
		rsSplit, err := task.Split(rsStreams.Get(xrand.VarDataSplit))
		if err != nil {
			b.Fatal(err)
		}
		rsObj := func(p hpo.Params) float64 {
			perf, err := pipeline.TrainEval(task, p, rsSplit.Train, rsSplit.Valid, rsStreams.Clone())
			if err != nil {
				return 1
			}
			return 1 - perf
		}
		rsHist, err := hpo.RandomSearch{}.Optimize(rsObj, task.Space(), 4,
			rsStreams.Get(xrand.VarHOpt))
		if err != nil {
			b.Fatal(err)
		}
		rsBest, _ := rsHist.Best()
		b.ReportMetric(shaBest.Value, "sha-valid-err")
		b.ReportMetric(rsBest.Value, "random-valid-err")
	}
}

// BenchmarkAblationGamma sweeps the meaningfulness threshold (Appendix I).
func BenchmarkAblationGamma(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := simulate.GammaSweep(
			simulate.Config{NSim: 100, Bootstrap: 150, K: 50},
			simulate.Model{Sigma2: 0.0004}, 0.8,
			[]float64{0.65, 0.75, 0.85}, xrand.New(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[1].Rates["prob-outperform"], "pab-rate-g075")
	}
}

// --- Substrate micro-benchmarks ----------------------------------------

func BenchmarkMatMul128(b *testing.B) {
	r := xrand.New(1)
	a := tensor.NewMatrix(128, 128)
	c := tensor.NewMatrix(128, 128)
	for i := range a.Data {
		a.Data[i] = r.NormFloat64()
		c.Data[i] = r.NormFloat64()
	}
	out := tensor.NewMatrix(128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulInto(out, a, c)
	}
}

func BenchmarkCholesky64(b *testing.B) {
	r := xrand.New(2)
	m := tensor.NewMatrix(64, 64)
	for i := range m.Data {
		m.Data[i] = r.NormFloat64()
	}
	spd := tensor.MatMulT(m, m)
	for i := 0; i < 64; i++ {
		spd.Set(i, i, spd.At(i, i)+64)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tensor.Cholesky(spd); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainingEpoch(b *testing.B) {
	task := casestudy.Tiny(1)
	split, err := task.Split(xrand.New(1))
	if err != nil {
		b.Fatal(err)
	}
	cfg, err := task.Build(task.Defaults())
	if err != nil {
		b.Fatal(err)
	}
	cfg.Epochs = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nn.Train(cfg, split.Train, xrand.NewStreams(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBootstrapSplit(b *testing.B) {
	task := casestudy.Tiny(1)
	r := xrand.New(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := task.Split(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMannWhitney(b *testing.B) {
	r := xrand.New(4)
	x := make([]float64, 100)
	y := make([]float64, 100)
	for i := range x {
		x[i] = r.NormFloat64()
		y[i] = r.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.MannWhitney(x, y, stats.TwoTailed)
	}
}

func BenchmarkShapiroWilk(b *testing.B) {
	r := xrand.New(5)
	x := make([]float64, 200)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := stats.ShapiroWilk(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPercentileBootstrap(b *testing.B) {
	r := xrand.New(6)
	pairs := make([]stats.Pair, 50)
	for i := range pairs {
		pairs[i] = stats.Pair{A: r.NormFloat64() + 0.3, B: r.NormFloat64()}
	}
	crit := compare.PAB{Bootstrap: 1000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := crit.Evaluate(pairs, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGPFitPredict(b *testing.B) {
	r := xrand.New(7)
	n := 40
	x := tensor.NewMatrix(n, 3)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < 3; j++ {
			x.Set(i, j, r.Float64())
		}
		y[i] = r.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := gp.Fit(x, y, gp.RBF{LengthScale: 0.3, Variance: 1}, 1e-4)
		if err != nil {
			b.Fatal(err)
		}
		g.Predict([]float64{0.5, 0.5, 0.5})
	}
}

func BenchmarkBayesOptIteration(b *testing.B) {
	obj := func(p hpo.Params) float64 {
		d := p["x"] - 0.3
		return d * d
	}
	space := hpo.Space{{Name: "x", Lo: 0, Hi: 1}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (hpo.BayesOpt{InitRandom: 5, Candidates: 64}).Optimize(
			obj, space, 15, xrand.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineRun(b *testing.B) {
	task := casestudy.Tiny(1)
	for i := 0; i < b.N; i++ {
		if _, err := estimator.FixHOptEst(task, hpo.RandomSearch{}, 3, 3,
			estimator.SubsetAll, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Parallel analysis-engine benchmarks (PR 2 perf trajectory) ---------

// BenchmarkBatchedAnalysis measures the batched-analysis hot path: the
// recommended test (K=1000 bootstrap over n=29 pairs) exactly as the
// early-stop loop re-runs it at every batch boundary, at 1 analysis worker
// (serial reference) vs GOMAXPROCS sharded workers.
func BenchmarkBatchedAnalysis(b *testing.B) {
	r := xrand.New(8)
	n := 29
	a := make([]float64, n)
	bb := make([]float64, n)
	for i := range a {
		base := r.NormFloat64()
		a[i] = base + 0.5
		bb[i] = base + 0.3*r.NormFloat64()
	}
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("analysis-workers-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Analyze(a, bb, WithSeed(uint64(i+1)), WithAnalysisParallelism(workers)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCollectionLazyTrials pins the collection-memory fix: an
// early-stopped experiment with a huge MaxRuns must allocate per collected
// batch, not per MaxRuns — before the lazy trial stream, the 1<<20 cap
// below meant ~1M Trial structs plus seed maps up front (B/op exploded
// with the cap; now it is flat).
func BenchmarkCollectionLazyTrials(b *testing.B) {
	for _, maxRuns := range []int{64, 1 << 20} {
		b.Run(fmt.Sprintf("maxruns-%d", maxRuns), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e := Experiment{
					A:       func(seed uint64) (float64, error) { return 1, nil },
					B:       func(seed uint64) (float64, error) { return 0, nil },
					Seed:    uint64(i + 1),
					MaxRuns: maxRuns,
				}
				res, err := e.Run(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				if !res.EarlyStopped {
					b.Fatal("expected early stop")
				}
			}
		})
	}
}

// BenchmarkMultiDatasetCollection contrasts the concurrent multi-dataset
// engine against per-dataset cost: 4 datasets whose pipelines sleep-free
// compute keeps the benchmark deterministic; wall-clock gains show up once
// RunFuncs do real work.
func BenchmarkMultiDatasetCollection(b *testing.B) {
	datasets := []Dataset{
		{Name: "d1", A: noisyRunner(0.9), B: noisyRunner(0.6)},
		{Name: "d2", A: noisyRunner(0.8), B: noisyRunner(0.5)},
		{Name: "d3", A: noisyRunner(0.7), B: noisyRunner(0.4)},
		{Name: "d4", A: noisyRunner(0.6), B: noisyRunner(0.3)},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := Experiment{Datasets: datasets, Seed: uint64(i + 1), MaxRuns: 24}
		if _, err := e.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

var sinkRender io.Writer = io.Discard

func BenchmarkRenderFig1(b *testing.B) {
	res, err := experiments.Fig1(benchStudies(), benchBudget(), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := res.Render(sinkRender); err != nil {
			b.Fatal(err)
		}
	}
}

// benchGuardTrial is hoisted so the no-fault benchmark measures the guard
// machinery, not a per-iteration closure allocation.
var benchGuardTrial TrialFunc = func(tr Trial) (float64, error) {
	return float64(tr.Seed%1000) * 1e-3, nil
}

var sinkScore float64

// BenchmarkRetryNoFault is the resilience layer's overhead gate: resolving
// a healthy trial through the full guard stack — cache lookup, panic
// recovery, retry bookkeeping — must stay allocation-free, so experiments
// that never fault pay nothing for the machinery.
func BenchmarkRetryNoFault(b *testing.B) {
	g := &guard{
		retry: RetryPolicy{MaxAttempts: 3}.normalized(),
		sleep: sleepCtx,
	}
	ctx := context.Background()
	var cache *trialCache // always-miss: every iteration runs the pipeline
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, f, err := cache.resolve(ctx, g, Trial{Index: i, Seed: uint64(i)}, "A", benchGuardTrial, "")
		if err != nil || f != nil {
			b.Fatal(err, f)
		}
		sinkScore += v
	}
}

// BenchmarkRetryBackoffSchedule measures computing one deterministic
// backoff pause — the seeded split plus jitter draw — which sits on every
// retry between attempts.
func BenchmarkRetryBackoffSchedule(b *testing.B) {
	p := RetryPolicy{MaxAttempts: 8}.normalized()
	b.ReportAllocs()
	var d time.Duration
	for i := 0; i < b.N; i++ {
		d += p.Backoff(uint64(i), 1+i%7)
	}
	sinkScore += float64(d)
}
