package varbench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"

	"varbench/internal/jsonx"
	"varbench/internal/report"
)

// JointLabel names the joint-randomization row of a VarianceReport: the
// pseudo-source in which every probed source receives a fresh seed on every
// measure at once — the paper's recommended randomization.
const JointLabel = "joint"

// SECurve is the standard error of the k-measure mean as a function of k —
// one line of the Figures 5/H.4 plots. Band holds the uncertainty of each SE
// estimate given the number of realizations it was measured from.
type SECurve struct {
	K    []int     `json:"k"`
	SE   []float64 `json:"se"`
	Band []float64 `json:"band,omitempty"`
}

// MarshalJSON implements json.Marshaler, encoding non-finite SE/Band values
// as null (see the package note on jsonx in result.go).
func (c SECurve) MarshalJSON() ([]byte, error) {
	type alias SECurve
	return jsonx.Marshal(alias(c))
}

// Decomposition is the Figure H.5 breakdown of the k-measure mean as an
// estimator of expected performance: its bias against the study's reference
// μ̂, its variance across realizations, the average correlation ρ between
// measures of one realization, and the resulting mean squared error.
type Decomposition struct {
	Bias float64 `json:"bias"`
	Var  float64 `json:"var"`
	Rho  float64 `json:"rho"`
	MSE  float64 `json:"mse"`
}

// MarshalJSON implements json.Marshaler, encoding non-finite fields (ρ of a
// zero-variance sample, for one) as null.
func (d Decomposition) MarshalJSON() ([]byte, error) {
	type alias Decomposition
	return jsonx.Marshal(alias(d))
}

// SourceVariance is one row of a VarianceReport: the variance contributed by
// a single source of variation (or by all probed sources jointly for the
// JointLabel row).
type SourceVariance struct {
	// Source is the probed source's label, or JointLabel.
	Source string `json:"source"`
	// Mean is the average of all the row's measures.
	Mean float64 `json:"mean"`
	// Std is the pooled within-realization standard deviation of single
	// measures — the per-source spread Figure 1 reports.
	Std float64 `json:"std"`
	// Share is this row's variance as a fraction of the summed variance of
	// all probed sources. For the joint row it compares joint randomization
	// to that sum: ≈1 when the sources contribute independently.
	Share float64 `json:"share"`
	// Curve is the SE-vs-k trajectory of the row's k-measure mean.
	Curve SECurve `json:"curve"`
	// Decomposition breaks the K-measure mean into bias/Var/ρ/MSE.
	Decomposition Decomposition `json:"decomposition"`
	// Measures holds the raw realization×K measure matrix.
	Measures [][]float64 `json:"measures,omitempty"`
}

// MarshalJSON implements json.Marshaler, encoding non-finite float fields —
// including non-finite raw measures — as null.
func (s SourceVariance) MarshalJSON() ([]byte, error) {
	type alias SourceVariance
	return jsonx.Marshal(alias(s))
}

// VarianceReport is the outcome of a VarianceStudy: the per-source variance
// decomposition of one benchmark pipeline. Render it with one of the
// VarianceRenderer implementations or read the fields directly.
type VarianceReport struct {
	// Name echoes the study label.
	Name string `json:"name,omitempty"`
	// Seed is the root seed the study derived all randomness from.
	Seed uint64 `json:"seed,omitempty"`
	// K and Realizations echo the study's collection shape.
	K            int `json:"k"`
	Realizations int `json:"realizations"`
	// Mu is the study's reference expected performance: the grand mean of
	// the joint-randomization measures. Decomposition biases are measured
	// against it.
	Mu float64 `json:"mu"`
	// Sources holds one row per probed source, in the study's order.
	Sources []SourceVariance `json:"sources"`
	// Joint is the all-probed-sources row (fresh seed for every probed
	// source on every measure).
	Joint SourceVariance `json:"joint"`
	// Failures lists the quarantined trials of a non-FailFast study. Any
	// quarantined measure drops its whole realization from the analysis;
	// Dataset holds the report row label, Realization is 1-based.
	Failures []TrialFailure `json:"failures,omitempty"`
	// Elapsed is the wall-clock collection time.
	Elapsed time.Duration `json:"elapsed_ns,omitempty"`
}

// MarshalJSON implements json.Marshaler, encoding non-finite float fields
// as null.
func (r VarianceReport) MarshalJSON() ([]byte, error) {
	type alias VarianceReport
	return jsonx.Marshal(alias(r))
}

// Rows returns every report row — the probed sources followed by the joint
// row — in display order.
func (r *VarianceReport) Rows() []SourceVariance {
	return append(append([]SourceVariance(nil), r.Sources...), r.Joint)
}

// String renders the report with the default text renderer.
func (r *VarianceReport) String() string {
	var buf bytes.Buffer
	if err := (VarianceTextRenderer{}).Render(&buf, r); err != nil {
		return fmt.Sprintf("varbench: render error: %v", err)
	}
	return buf.String()
}

// Render writes the report through the given renderer (VarianceTextRenderer
// when nil).
func (r *VarianceReport) Render(w io.Writer, ren VarianceRenderer) error {
	if ren == nil {
		ren = VarianceTextRenderer{}
	}
	return ren.Render(w, r)
}

// A VarianceRenderer serializes a VarianceReport. VarianceTextRenderer,
// VarianceJSONRenderer and VarianceCSVRenderer are provided; external
// packages can plug their own.
type VarianceRenderer interface {
	Render(w io.Writer, r *VarianceReport) error
}

// VarianceTextRenderer writes an aligned human-readable report.
type VarianceTextRenderer struct {
	// Curves additionally renders each row's SE-vs-k trajectory.
	Curves bool
}

// Render implements VarianceRenderer.
func (t VarianceTextRenderer) Render(w io.Writer, r *VarianceReport) error {
	title := "variance decomposition"
	if r.Name != "" {
		title = r.Name + " — " + title
	}
	tb := &report.Table{
		Title:   title,
		Headers: []string{"source", "mean", "std", "share", "bias", "var(μ̃)", "ρ", "MSE"},
	}
	for _, row := range r.Rows() {
		d := row.Decomposition
		tb.AddRow(row.Source, row.Mean, row.Std, row.Share, d.Bias, d.Var, d.Rho, d.MSE)
	}
	if err := tb.Render(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "μ̂=%s  (K=%d, %d realizations, seed %d)\n",
		report.FormatFloat(r.Mu), r.K, r.Realizations, r.Seed); err != nil {
		return err
	}
	err := renderFailuresText(w, len(r.Failures), func(yield func(TrialFailure) error) error {
		for _, f := range r.Failures {
			if err := yield(f); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if !t.Curves {
		return nil
	}
	for _, row := range r.Rows() {
		var series []report.Series
		x := make([]float64, len(row.Curve.K))
		for i, k := range row.Curve.K {
			x[i] = float64(k)
		}
		series = append(series, report.Series{Name: row.Source, X: x, Y: row.Curve.SE})
		if err := report.LinePlot(w, fmt.Sprintf("SE of mean vs k — %s", row.Source),
			series, 60, 10); err != nil {
			return err
		}
	}
	return nil
}

// VarianceJSONRenderer writes the report as a single JSON document.
type VarianceJSONRenderer struct {
	// Indent pretty-prints with two-space indentation.
	Indent bool
}

// Render implements VarianceRenderer.
func (j VarianceJSONRenderer) Render(w io.Writer, r *VarianceReport) error {
	enc := json.NewEncoder(w)
	if j.Indent {
		enc.SetIndent("", "  ")
	}
	return enc.Encode(r)
}

// VarianceCSVRenderer writes one CSV row per source (the joint row last),
// suited to downstream pipelines aggregating many studies.
type VarianceCSVRenderer struct{}

// Render implements VarianceRenderer.
func (VarianceCSVRenderer) Render(w io.Writer, r *VarianceReport) error {
	// Full-precision floats: machine-readable output must not go through the
	// display-oriented report.FormatFloat rounding.
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	tb := &report.Table{
		Headers: []string{"study", "source", "k", "realizations", "mean", "std",
			"share", "bias", "var", "rho", "mse", "quarantined"},
	}
	quarantined := make(map[string]int, len(r.Failures))
	for _, f := range r.Failures {
		quarantined[f.Dataset]++
	}
	for _, row := range r.Rows() {
		d := row.Decomposition
		tb.Rows = append(tb.Rows, []string{
			r.Name, row.Source, strconv.Itoa(r.K), strconv.Itoa(r.Realizations),
			g(row.Mean), g(row.Std), g(row.Share),
			g(d.Bias), g(d.Var), g(d.Rho), g(d.MSE),
			strconv.Itoa(quarantined[row.Source]),
		})
	}
	return tb.WriteCSV(w)
}
