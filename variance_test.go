package varbench

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"varbench/internal/xrand"
)

// synthVariancePipeline builds a pure TrialFunc whose score is a sum of
// independent per-source contributions, each scaled so the sources have
// known, distinct variances. Probing one source while the rest stay fixed
// must then recover (approximately) that source's scale.
func synthVariancePipeline(scales map[Source]float64) TrialFunc {
	return func(t Trial) (float64, error) {
		v := 0.0
		// Iterate sources in fixed order: float addition is order-sensitive,
		// and map iteration order would make the pipeline impure.
		for _, src := range AllSources() {
			scale, ok := scales[src]
			if !ok {
				continue
			}
			// A deterministic uniform-ish value in [-0.5, 0.5) per seed.
			u := float64(xrand.New(t.SourceSeed(src)).Uint64()%100000)/100000.0 - 0.5
			v += scale * u
		}
		return v, nil
	}
}

func synthScales() map[Source]float64 {
	return map[Source]float64{
		VarDataSplit: 4.0,
		VarInit:      2.0,
		VarOrder:     1.0,
	}
}

func synthStudy(parallelism int) VarianceStudy {
	return VarianceStudy{
		Name:         "synthetic",
		Pipeline:     synthVariancePipeline(synthScales()),
		Sources:      []Source{VarDataSplit, VarInit, VarOrder},
		K:            16,
		Realizations: 4,
		Seed:         7,
		Parallelism:  parallelism,
	}
}

// TestVarianceStudyDeterministicAcrossParallelism pins the acceptance
// criterion: the report is bit-identical for worker counts {1, 4,
// GOMAXPROCS} at a fixed seed.
func TestVarianceStudyDeterministicAcrossParallelism(t *testing.T) {
	ctx := context.Background()
	ref, err := synthStudy(1).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{4, runtime.GOMAXPROCS(0)} {
		got, err := synthStudy(p).Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		// Elapsed is wall-clock, the only legitimately varying field.
		got.Elapsed = ref.Elapsed
		if !reflect.DeepEqual(ref, got) {
			t.Errorf("report differs between Parallelism=1 and %d", p)
		}
	}
}

func TestVarianceStudyRecoversKnownScales(t *testing.T) {
	rep, err := synthStudy(0).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Sources) != 3 {
		t.Fatalf("want 3 source rows, got %d", len(rep.Sources))
	}
	// Stds must order by the known scales: data-split > init > order.
	if !(rep.Sources[0].Std > rep.Sources[1].Std && rep.Sources[1].Std > rep.Sources[2].Std) {
		t.Errorf("stds not ordered by scale: %v %v %v",
			rep.Sources[0].Std, rep.Sources[1].Std, rep.Sources[2].Std)
	}
	// Shares over the probed sources sum to 1.
	sum := 0.0
	for _, row := range rep.Sources {
		sum += row.Share
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("source shares sum to %v, want 1", sum)
	}
	// Independent additive sources: the joint variance is approximately the
	// sum of the individual variances, i.e. the joint share is near 1.
	if rep.Joint.Share < 0.4 || rep.Joint.Share > 1.8 {
		t.Errorf("joint share %v implausibly far from 1", rep.Joint.Share)
	}
	if rep.Joint.Source != JointLabel {
		t.Errorf("joint row labeled %q", rep.Joint.Source)
	}
	// MSE = Var + Bias² exactly, per row.
	for _, row := range rep.Rows() {
		d := row.Decomposition
		if math.Abs(d.MSE-(d.Var+d.Bias*d.Bias)) > 1e-12 {
			t.Errorf("%s: MSE %v != Var %v + Bias² %v", row.Source, d.MSE, d.Var, d.Bias*d.Bias)
		}
		if len(row.Curve.K) == 0 || row.Curve.K[len(row.Curve.K)-1] != 16 {
			t.Errorf("%s: curve does not reach K=16: %v", row.Source, row.Curve.K)
		}
		if len(row.Measures) != 4 || len(row.Measures[0]) != 16 {
			t.Errorf("%s: measures shape %dx%d, want 4x16",
				row.Source, len(row.Measures), len(row.Measures[0]))
		}
	}
	if rep.Elapsed <= 0 {
		t.Error("missing elapsed time")
	}
}

// TestVarianceStudyFixedSourcesStayFixed verifies the core protocol: while
// one source is probed, every other source's seed is constant within a
// realization, and the probed source's seed changes on every measure.
func TestVarianceStudyFixedSourcesStayFixed(t *testing.T) {
	study := VarianceStudy{
		// Encode the two seeds into one float — low digits VarInit, high
		// digits VarOrder — so the fixed/varied structure is checkable from
		// the measures alone and the pipeline stays pure.
		Pipeline: func(tr Trial) (float64, error) {
			return float64(tr.SourceSeed(VarInit)%1000) + float64(tr.SourceSeed(VarOrder)%1000)*1000, nil
		},
		Sources:      []Source{VarInit, VarOrder},
		K:            6,
		Realizations: 2,
		Seed:         3,
		Parallelism:  1,
	}
	rep, err := study.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Probing VarInit: the VarOrder contribution (the *1000 digits) must be
	// constant within each realization while the VarInit digits vary.
	initRow := rep.Sources[0]
	for r, row := range initRow.Measures {
		fixed := math.Trunc(row[0] / 1000)
		varied := make(map[float64]bool)
		for _, v := range row {
			if math.Trunc(v/1000) != fixed {
				t.Errorf("realization %d: fixed VarOrder seed changed while probing VarInit", r)
			}
			varied[math.Mod(v, 1000)] = true
		}
		if len(varied) < 2 {
			t.Errorf("realization %d: probed VarInit seed did not vary", r)
		}
	}
	// The joint row varies both.
	for r, row := range rep.Joint.Measures {
		hi := make(map[float64]bool)
		for _, v := range row {
			hi[math.Trunc(v/1000)] = true
		}
		if len(hi) < 2 {
			t.Errorf("joint realization %d: VarOrder did not vary", r)
		}
	}
}

func TestVarianceStudyValidation(t *testing.T) {
	pipe := synthVariancePipeline(synthScales())
	cases := []struct {
		name string
		s    VarianceStudy
		want string
	}{
		{"no pipeline", VarianceStudy{}, "needs a Pipeline"},
		{"k too small", VarianceStudy{Pipeline: pipe, K: 1}, "K must be"},
		{"negative k", VarianceStudy{Pipeline: pipe, K: -1}, "K must not be negative"},
		{"realizations too small", VarianceStudy{Pipeline: pipe, Realizations: 1}, "Realizations must be"},
		{"negative realizations", VarianceStudy{Pipeline: pipe, Realizations: -2}, "Realizations must not be negative"},
		{"negative parallelism", VarianceStudy{Pipeline: pipe, Parallelism: -1}, "Parallelism must not be negative"},
		{"duplicate source", VarianceStudy{Pipeline: pipe, Sources: []Source{VarInit, VarInit}}, "duplicate source"},
		{"numerical noise", VarianceStudy{Pipeline: pipe, Sources: []Source{VarNumericalNoise}}, "pseudo-source"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.s.Run(context.Background())
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

func TestVarianceStudyDefaults(t *testing.T) {
	s, err := VarianceStudy{Pipeline: synthVariancePipeline(synthScales())}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if s.K != DefaultVarianceK || s.Realizations != DefaultVarianceRealizations {
		t.Errorf("defaults: K=%d R=%d", s.K, s.Realizations)
	}
	if !reflect.DeepEqual(s.Sources, LearningSources()) {
		t.Errorf("default sources %v", s.Sources)
	}
	if s.Seed != 1 {
		t.Errorf("default seed %d", s.Seed)
	}
	if s.Parallelism != runtime.GOMAXPROCS(0) {
		t.Errorf("default parallelism %d", s.Parallelism)
	}
}

func TestVarianceStudyPipelineErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	// Parallelism > 1: the failing cell cancels in-flight siblings, whose
	// cancellation errors must never mask the root cause.
	study := VarianceStudy{
		Pipeline:     func(Trial) (float64, error) { return 0, boom },
		Sources:      []Source{VarInit, VarOrder, VarDropout},
		K:            4,
		Realizations: 3,
		Parallelism:  4,
	}
	_, err := study.Run(context.Background())
	if !errors.Is(err, boom) {
		t.Fatalf("want wrapped pipeline error, got %v", err)
	}
	if strings.Contains(err.Error(), "canceled") {
		t.Errorf("sibling cancellation masked the root cause: %v", err)
	}
}

func TestVarianceStudyCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := synthStudy(2).Run(ctx)
	if err == nil || !strings.Contains(err.Error(), "canceled") {
		t.Fatalf("want cancellation error, got %v", err)
	}
}

func TestSourceSetBridge(t *testing.T) {
	init, err := SetInit.Sources()
	if err != nil || !reflect.DeepEqual(init, []Source{VarInit}) {
		t.Errorf("SetInit -> %v, %v", init, err)
	}
	data, err := SetData.Sources()
	if err != nil || !reflect.DeepEqual(data, []Source{VarDataSplit}) {
		t.Errorf("SetData -> %v, %v", data, err)
	}
	learning, err := SetLearning.Sources()
	if err != nil || !reflect.DeepEqual(learning, LearningSources()) {
		t.Errorf("SetLearning -> %v, %v", learning, err)
	}
	all, err := SetAll.Sources()
	if err != nil || !reflect.DeepEqual(all, AllSources()) {
		t.Errorf("SetAll -> %v, %v", all, err)
	}
	if _, err := SourceSet("nope").Sources(); err == nil {
		t.Error("unknown set should error")
	}
}

func TestParseSources(t *testing.T) {
	got, err := ParseSources("init, data-order")
	if err != nil || !reflect.DeepEqual(got, []Source{VarInit, VarOrder}) {
		t.Errorf("ParseSources -> %v, %v", got, err)
	}
	// Sets expand and deduplicate against individual labels.
	got, err = ParseSources("weights-init,learning")
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != VarInit || len(got) != len(LearningSources()) {
		t.Errorf("dedup expansion -> %v", got)
	}
	if _, err := ParseSources("bogus"); err == nil || !strings.Contains(err.Error(), "unknown source") {
		t.Errorf("unknown label: %v", err)
	}
	if _, err := ParseSources(" , "); err == nil || !strings.Contains(err.Error(), "empty source spec") {
		t.Errorf("empty spec: %v", err)
	}
	// The error lists valid names to type next.
	_, err = ParseSources("bogus")
	if !strings.Contains(err.Error(), string(SetLearning)) || !strings.Contains(err.Error(), string(VarDataSplit)) {
		t.Errorf("error should list valid names: %v", err)
	}
}

func TestVarianceReportRowsOrder(t *testing.T) {
	rep := &VarianceReport{
		Sources: []SourceVariance{{Source: "a"}, {Source: "b"}},
		Joint:   SourceVariance{Source: JointLabel},
	}
	rows := rep.Rows()
	want := []string{"a", "b", JointLabel}
	for i, r := range rows {
		if r.Source != want[i] {
			t.Fatalf("row %d = %q, want %q", i, r.Source, want[i])
		}
	}
}

func TestVarianceStudySeedSensitivity(t *testing.T) {
	a := synthStudy(1)
	b := synthStudy(1)
	b.Seed = 8
	ra, err := a.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(ra.Sources[0].Measures) == fmt.Sprint(rb.Sources[0].Measures) {
		t.Error("different seeds produced identical measures")
	}
}
