package varbench

import (
	"fmt"
	"math"
	"strconv"

	"varbench/internal/compare"
	"varbench/internal/stats"
	"varbench/store"
)

// This file is the root-package face of the incremental bootstrap engine
// (internal/stats/incremental.go → internal/compare.AnalysisState): the
// early-stop loop in experiment.go and the streaming Stream front end both
// thread ONE resumable analysis state through all batch boundaries via the
// incAnalysis helper below, instead of re-running the full K-resample
// bootstrap at each — O(K × n) total resample-extension work instead of
// O(batches × K × n). With a store attached the state snapshots to disk
// after every batch, so a resumed run also resumes its analysis.

// analysisSnapshot is the JSON payload persisted per analysis state (see
// store.AnalysisKey for the key/fingerprint scheme). State is the binary
// accumulator blob (bit-exact float round-trip; marshals as base64), Hash
// the hex prefix hash of the N score pairs the state has consumed — no
// float-typed JSON fields, so NaN-safety is moot by construction.
type analysisSnapshot struct {
	N     int    `json:"n"`
	Hash  string `json:"hash"`
	State []byte `json:"state"`
}

// pairHasher folds score pairs into an FNV-1a running hash, in arrival
// order over the little-endian float bit patterns. Restored snapshots are
// verified against the hash of the replayed prefix: a mismatch means the
// persisted state was built from different scores (a poisoned or foreign
// store), and the state is discarded and recomputed — never silently
// served — matching the store's fingerprint philosophy.
type pairHasher struct {
	h uint64
	n int
}

func newPairHasher() pairHasher { return pairHasher{h: 14695981039346656037} }

func (p *pairHasher) add(a, b float64) {
	const prime = 1099511628211
	for _, bits := range [2]uint64{math.Float64bits(a), math.Float64bits(b)} {
		for s := 0; s < 64; s += 8 {
			p.h ^= bits >> s & 0xff
			p.h *= prime
		}
	}
	p.n++
}

// incAnalysis wraps a compare.AnalysisState with prefix verification and
// store persistence. Feeding is idempotent over a restored prefix: pairs
// the restored state already consumed are hash-verified and skipped, pairs
// beyond it extend the state. All methods must be called from one
// goroutine (extensions parallelize internally).
type incAnalysis struct {
	crit    compare.PAB
	seed    uint64
	workers int
	state   *compare.AnalysisState

	hasher       pairHasher
	restoredN    int // pairs covered by the restored snapshot (0 = fresh)
	restoredHash uint64

	st      store.Backend // nil: no persistence
	key, fp string

	pairBuf []stats.Pair // reusable batch staging
}

// newIncAnalysis builds the analysis state, resuming from a persisted
// snapshot when st holds a valid one under (key, fp) whose pair count
// acceptN admits (nil acceptN admits any). Restore failures of any kind
// fall back to a fresh state — recomputing is always correct.
func newIncAnalysis(crit compare.PAB, seed uint64, workers int, st store.Backend, key, fp string, acceptN func(int) bool) (*incAnalysis, error) {
	ia := &incAnalysis{
		crit: crit, seed: seed, workers: workers,
		hasher: newPairHasher(),
		st:     st, key: key, fp: fp,
	}
	state, err := crit.NewAnalysis(seed, workers)
	if err != nil {
		return nil, err
	}
	ia.state = state
	if st == nil {
		return ia, nil
	}
	var snap analysisSnapshot
	ok, err := st.GetJSON(key, fp, &snap)
	if err != nil || !ok || snap.N <= 0 {
		return ia, nil
	}
	if acceptN != nil && !acceptN(snap.N) {
		return ia, nil
	}
	restored, err := crit.RestoreAnalysis(snap.State, workers)
	if err != nil || restored.N() != snap.N || restored.Seed() != seed {
		return ia, nil
	}
	h, err := strconv.ParseUint(snap.Hash, 16, 64)
	if err != nil {
		return ia, nil
	}
	ia.state = restored
	ia.restoredN = snap.N
	ia.restoredHash = h
	return ia, nil
}

// n returns how many pairs the state currently covers — ahead of the pairs
// fed so far while a restored snapshot is being replayed.
func (ia *incAnalysis) n() int { return ia.state.N() }

// fed returns how many pairs have been fed (replayed or extended).
func (ia *incAnalysis) fed() int { return ia.hasher.n }

// feed consumes the newly collected pairs scoresA[lo:hi]/scoresB[lo:hi].
// Calls must be contiguous (each lo equals the previous hi). Pairs the
// restored state already covers are verified against the snapshot's prefix
// hash and skipped; on hash mismatch the restored state is discarded and
// rebuilt from the scores collected so far. Pairs beyond the restored
// prefix extend the state — bit-identically to a from-scratch analysis.
func (ia *incAnalysis) feed(scoresA, scoresB []float64, lo, hi int) error {
	if ia.hasher.n != lo {
		return fmt.Errorf("varbench: analysis fed pairs [%d:%d), want contiguous from %d", lo, hi, ia.hasher.n)
	}
	for i := lo; i < hi; i++ {
		ia.hasher.add(scoresA[i], scoresB[i])
		if ia.restoredN > 0 && ia.hasher.n == ia.restoredN && ia.hasher.h != ia.restoredHash {
			// The replayed scores disagree with what the snapshot consumed:
			// rebuild from scratch over everything observed so far.
			fresh, err := ia.crit.NewAnalysis(ia.seed, ia.workers)
			if err != nil {
				return err
			}
			if err := fresh.Extend(ia.pairs(scoresA[:i+1], scoresB[:i+1])); err != nil {
				return err
			}
			ia.state = fresh
			ia.restoredN = 0
		}
	}
	if start := ia.state.N(); start < hi {
		if start < lo {
			return fmt.Errorf("varbench: analysis state at %d pairs behind batch start %d", start, lo)
		}
		if err := ia.state.Extend(ia.pairs(scoresA[start:hi], scoresB[start:hi])); err != nil {
			return err
		}
	}
	return nil
}

// pairs zips equal-length score slices into the reusable staging buffer.
func (ia *incAnalysis) pairs(a, b []float64) []stats.Pair {
	if cap(ia.pairBuf) < len(a) {
		ia.pairBuf = make([]stats.Pair, len(a))
	}
	buf := ia.pairBuf[:len(a)]
	for i := range a {
		buf[i] = stats.Pair{A: a[i], B: b[i]}
	}
	return buf
}

// save persists the current state snapshot (no-op without a store). Safe to
// call at any batch boundary; the last write wins on restore.
func (ia *incAnalysis) save() error {
	if ia.st == nil {
		return nil
	}
	if ia.state.N() > ia.hasher.n {
		// Mid-replay of a restored snapshot: the state covers pairs whose
		// hash we cannot attest yet, and the store already holds this very
		// snapshot — rewriting it adds nothing.
		return nil
	}
	blob, err := ia.state.Snapshot()
	if err != nil {
		return err
	}
	return ia.st.PutJSON(ia.key, ia.fp, analysisSnapshot{
		N:     ia.state.N(),
		Hash:  strconv.FormatUint(ia.hasher.h, 16),
		State: blob,
	})
}

// comparison evaluates the three-zone decision on the state and shapes it
// as the public Comparison. Callers must only evaluate when the state
// covers exactly the pairs they mean to report on (state.N() == fed).
func (ia *incAnalysis) comparison() (Comparison, error) {
	res, err := ia.state.Evaluate()
	if err != nil {
		return Comparison{}, err
	}
	meanA, meanB := ia.state.Means()
	gamma := ia.crit.Gamma
	return Comparison{
		MeanA:        meanA,
		MeanB:        meanB,
		PAB:          res.PAB,
		CILo:         res.CI.Lo,
		CIHi:         res.CI.Hi,
		Gamma:        gamma,
		Conclusion:   conclusionOf(res.Decision),
		RecommendedN: stats.NoetherSampleSize(gamma, 0.05, 0.05),
		N:            ia.state.N(),
	}, nil
}

// analysisFingerprint hashes everything that must match for a persisted
// analysis snapshot to be resumable into this run: the collection spec
// (whose scores feed the state), the kernel identity and resample count,
// the analysis seed, and every knob that shapes the early-stop decision
// sequence (γ, level, MinRuns, BatchSize, policy) — a restored state skips
// re-evaluating boundaries it already passed, which is only sound when the
// decision schedule is identical. MaxRuns is deliberately excluded: raising
// a budget resumes the same analysis (the batch-alignment acceptance check
// handles schedule compatibility).
func (e *Experiment) analysisFingerprint(gamma float64, seed uint64) string {
	return store.Fingerprint(
		"varbench/analysis/v1",
		e.specFingerprint(),
		fmt.Sprintf("kernel=%s/k=%d/seed=%d/gamma=%v/level=%v/minruns=%d/batch=%d/earlystop=%d",
			stats.AccPAB.ID(), e.Bootstrap, seed, gamma, e.Confidence, e.MinRuns, e.BatchSize, e.EarlyStop),
	)
}

// growFloats extends s by n zero slots in place, amortizing capacity like
// append — without the append(s, make([]float64, n)...) pattern's temporary
// chunk allocation per batch.
func growFloats(s []float64, n int) []float64 {
	if free := cap(s) - len(s); free < n {
		grown := make([]float64, len(s), max(2*cap(s), len(s)+n))
		copy(grown, s)
		s = grown
	}
	return s[: len(s)+n : cap(s)]
}
