module varbench

go 1.24
