module varbench

go 1.23
