package varbench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"time"

	"varbench/internal/compare"
	"varbench/internal/jsonx"
	"varbench/internal/report"
	"varbench/internal/stats"
)

// The report types marshal through jsonx so that NaN and ±Inf float fields
// — an undefined Shapiro-Wilk p-value, a degenerate correlation, a
// non-finite pipeline score — encode as JSON null instead of failing the
// whole document: encoding/json rejects non-finite values outright with
// "json: unsupported value: NaN". Decoding null back into a float64 field
// leaves it at zero, per the encoding/json null rule.

// Conclusion is the three-zone outcome of the recommended test.
type Conclusion string

// The possible conclusions.
const (
	// NotSignificant: the difference could be noise alone; collect more
	// measurements or treat the algorithms as equivalent.
	NotSignificant Conclusion = "not significant"
	// SignificantNotMeaningful: a real but practically negligible
	// difference (P(A>B) below γ).
	SignificantNotMeaningful Conclusion = "significant but not meaningful"
	// SignificantAndMeaningful: algorithm A reliably outperforms B.
	SignificantAndMeaningful Conclusion = "significant and meaningful"
)

// Comparison is the result of the recommended statistical protocol.
type Comparison struct {
	// MeanA, MeanB are the average performances.
	MeanA float64 `json:"mean_a"`
	MeanB float64 `json:"mean_b"`
	// PAB is the estimated probability that A outperforms B on one run
	// (ties counted half) — Equation 9.
	PAB float64 `json:"pab"`
	// CILo, CIHi bound PAB with a percentile-bootstrap confidence interval.
	CILo float64 `json:"ci_lo"`
	CIHi float64 `json:"ci_hi"`
	// Gamma is the meaningfulness threshold the conclusion used.
	Gamma float64 `json:"gamma"`
	// Conclusion is the three-zone decision of Appendix C.6.
	Conclusion Conclusion `json:"conclusion"`
	// RecommendedN is Noether's minimal sample size for this γ at
	// α=β=0.05; if fewer pairs were supplied, the comparison is
	// underpowered and NotSignificant outcomes are inconclusive.
	RecommendedN int `json:"recommended_n"`
	// N is the number of pairs actually used.
	N int `json:"n"`
}

// MarshalJSON implements json.Marshaler, encoding non-finite float fields
// as null.
func (c Comparison) MarshalJSON() ([]byte, error) {
	type alias Comparison // drops methods: no recursion
	return jsonx.Marshal(alias(c))
}

// String renders the comparison in one line.
func (c Comparison) String() string {
	return fmt.Sprintf(
		"P(A>B)=%.3f CI[%.3f, %.3f] γ=%.2f n=%d (recommended ≥%d): %s",
		c.PAB, c.CILo, c.CIHi, c.Gamma, c.N, c.RecommendedN, c.Conclusion)
}

// StopReason records why collection ended.
type StopReason string

// The collection stop reasons.
const (
	// StopCICleared: the bootstrap CI rose entirely above γ — a decisive
	// meaningful win, no further runs needed. Because the CI is examined
	// at every batch boundary, this stop carries the sequential-testing
	// caveat documented on EarlyStopAuto.
	StopCICleared StopReason = "ci-cleared-gamma"
	// StopFutility: the CI fell entirely below 0.5 — A cannot win, more
	// runs are wasted compute.
	StopFutility StopReason = "futility"
	// StopNoetherN: Noether's recommended sample size was reached; the
	// test is fully powered for the chosen γ.
	StopNoetherN StopReason = "noether-n"
	// StopMaxRuns: the MaxRuns cap was reached.
	StopMaxRuns StopReason = "max-runs"
)

// DatasetResult is the outcome of one dataset's collection and test.
type DatasetResult struct {
	Name         string     `json:"name,omitempty"`
	Comparison   Comparison `json:"comparison"`
	ScoresA      []float64  `json:"scores_a,omitempty"`
	ScoresB      []float64  `json:"scores_b,omitempty"`
	Pairs        int        `json:"pairs"`
	EarlyStopped bool       `json:"early_stopped"`
	StopReason   StopReason `json:"stop_reason,omitempty"`
	// Failures lists the trials quarantined during collection, in trial
	// order. Only non-empty in quarantine mode (FailFast false); the
	// quarantined pairs are excluded from Pairs and from the analysis.
	Failures []TrialFailure `json:"failures,omitempty"`
}

// MarshalJSON implements json.Marshaler, encoding non-finite float fields
// (including non-finite scores) as null.
func (d DatasetResult) MarshalJSON() ([]byte, error) {
	type alias DatasetResult
	return jsonx.Marshal(alias(d))
}

// Result is the complete outcome of an Experiment (or of the score-level
// Analyze entry points). Render it with one of the Renderer implementations
// or read the fields directly.
type Result struct {
	// Name echoes the experiment label.
	Name string `json:"name,omitempty"`
	// Gamma is the (unadjusted) meaningfulness threshold of the spec.
	Gamma float64 `json:"gamma"`
	// Seed is the root seed the run derived all randomness from.
	Seed uint64 `json:"seed,omitempty"`
	// Comparison is the single-dataset conclusion; zero-valued when the
	// experiment spans multiple datasets (see Datasets).
	Comparison Comparison `json:"comparison"`
	// Datasets holds per-dataset outcomes; it has one entry for
	// single-dataset experiments. Multi-dataset comparisons are judged at
	// the Bonferroni-adjusted γ recorded in each entry's Comparison.Gamma.
	Datasets []DatasetResult `json:"datasets,omitempty"`
	// AllMeaningful is the Dror et al. (2017) replicability criterion: A
	// beats B significantly and meaningfully on every dataset. Only set
	// for multi-dataset experiments.
	AllMeaningful bool `json:"all_meaningful,omitempty"`
	// WilcoxonP is Demšar's (2006) signed-rank p-value over per-dataset
	// mean scores (one-sided; 1 when fewer than 3 datasets).
	WilcoxonP float64 `json:"wilcoxon_p"`
	// Pairs counts collected pairs across all datasets; Runs counts
	// pipeline executions (2 per pair).
	Pairs int `json:"pairs"`
	Runs  int `json:"runs"`
	// Quarantined counts trials that exhausted their attempts and were
	// excluded from the analysis, across all datasets; the per-dataset
	// Failures entries carry the details. A non-zero count marks a
	// degraded (but still valid) run: re-running with the same store
	// retries exactly the quarantined cells.
	Quarantined int `json:"quarantined,omitempty"`
	// EarlyStopped reports whether collection ended before MaxRuns (for
	// multi-dataset runs: on every dataset).
	EarlyStopped bool `json:"early_stopped"`
	// StopReason is the single-dataset stop reason ("" for multi-dataset
	// runs; see the per-dataset entries).
	StopReason StopReason `json:"stop_reason,omitempty"`
	// Elapsed is the wall-clock collection time (zero for Analyze).
	Elapsed time.Duration `json:"elapsed_ns,omitempty"`
}

// Multi reports whether the result spans multiple datasets.
func (r *Result) Multi() bool { return len(r.Datasets) > 1 }

// MarshalJSON implements json.Marshaler, encoding non-finite float fields
// as null.
func (r Result) MarshalJSON() ([]byte, error) {
	type alias Result
	return jsonx.Marshal(alias(r))
}

// String renders the result with the default text renderer.
func (r *Result) String() string {
	var buf bytes.Buffer
	if err := (TextRenderer{}).Render(&buf, r); err != nil {
		return fmt.Sprintf("varbench: render error: %v", err)
	}
	return buf.String()
}

// Render writes the result through the given renderer (TextRenderer when
// nil).
func (r *Result) Render(w io.Writer, ren Renderer) error {
	if ren == nil {
		ren = TextRenderer{}
	}
	return ren.Render(w, r)
}

// A Renderer serializes a Result. TextRenderer, JSONRenderer and
// CSVRenderer are provided; external packages can plug their own.
type Renderer interface {
	Render(w io.Writer, r *Result) error
}

// TextRenderer writes an aligned human-readable report.
type TextRenderer struct {
	// Scores additionally lists every collected measurement.
	Scores bool
}

// Render implements Renderer.
func (t TextRenderer) Render(w io.Writer, r *Result) error {
	tb := &report.Table{
		Title:   r.Name,
		Headers: []string{"dataset", "n", "mean A", "mean B", "P(A>B)", "CI lo", "CI hi", "γ", "conclusion", "stopped"},
	}
	for _, d := range r.Datasets {
		name := d.Name
		if name == "" {
			name = "-"
		}
		stopped := string(d.StopReason)
		if stopped == "" {
			stopped = "-"
		}
		tb.AddRow(name, d.Pairs, d.Comparison.MeanA, d.Comparison.MeanB,
			d.Comparison.PAB, d.Comparison.CILo, d.Comparison.CIHi,
			d.Comparison.Gamma, string(d.Comparison.Conclusion), stopped)
	}
	if err := tb.Render(w); err != nil {
		return err
	}
	if r.Multi() {
		if _, err := fmt.Fprintf(w, "all-datasets meaningful win (Dror-style): %v\n", r.AllMeaningful); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "Wilcoxon over per-dataset means (Demšar): p=%.4f\n", r.WilcoxonP); err != nil {
			return err
		}
	} else if len(r.Datasets) == 1 {
		c := r.Datasets[0].Comparison
		if _, err := fmt.Fprintf(w, "%s\n", c); err != nil {
			return err
		}
	}
	if r.Runs > 0 {
		if _, err := fmt.Fprintf(w, "runs: %d (%d pairs), early-stopped: %v\n", r.Runs, r.Pairs, r.EarlyStopped); err != nil {
			return err
		}
	}
	if err := renderFailuresText(w, r.Quarantined, func(yield func(TrialFailure) error) error {
		for _, d := range r.Datasets {
			for _, f := range d.Failures {
				if err := yield(f); err != nil {
					return err
				}
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if t.Scores {
		for _, d := range r.Datasets {
			label := d.Name
			if label != "" {
				label += " "
			}
			for i := range d.ScoresA {
				if _, err := fmt.Fprintf(w, "%sscore %d: A=%s B=%s\n", label, i,
					report.FormatFloat(d.ScoresA[i]), report.FormatFloat(d.ScoresB[i])); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// JSONRenderer writes the result as a single JSON document.
type JSONRenderer struct {
	// Indent pretty-prints with two-space indentation.
	Indent bool
}

// Render implements Renderer.
func (j JSONRenderer) Render(w io.Writer, r *Result) error {
	enc := json.NewEncoder(w)
	if j.Indent {
		enc.SetIndent("", "  ")
	}
	return enc.Encode(r)
}

// CSVRenderer writes one CSV row per dataset, suited to downstream
// pipelines aggregating many experiments.
type CSVRenderer struct{}

// Render implements Renderer.
func (CSVRenderer) Render(w io.Writer, r *Result) error {
	// Full-precision floats: this is machine-readable output, so it must
	// not go through the display-oriented report.FormatFloat rounding.
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	tb := &report.Table{
		Headers: []string{"experiment", "dataset", "pairs", "mean_a", "mean_b",
			"pab", "ci_lo", "ci_hi", "gamma", "recommended_n", "conclusion",
			"early_stopped", "stop_reason", "quarantined"},
	}
	for _, d := range r.Datasets {
		tb.Rows = append(tb.Rows, []string{
			r.Name, d.Name, strconv.Itoa(d.Pairs),
			g(d.Comparison.MeanA), g(d.Comparison.MeanB),
			g(d.Comparison.PAB), g(d.Comparison.CILo), g(d.Comparison.CIHi),
			g(d.Comparison.Gamma), strconv.Itoa(d.Comparison.RecommendedN),
			string(d.Comparison.Conclusion),
			strconv.FormatBool(d.EarlyStopped), string(d.StopReason),
			strconv.Itoa(len(d.Failures)),
		})
	}
	return tb.WriteCSV(w)
}

// combineEvidence aggregates per-dataset outcomes per Section 6: the Dror
// et al. all-datasets conjunction and Demšar's one-sided Wilcoxon over
// per-dataset mean scores (p=1 below 3 datasets, where the test is
// meaningless). Both Experiment.Run and AnalyzeDatasets conclude through
// this one implementation.
func combineEvidence(datasets []DatasetResult) (allMeaningful bool, wilcoxonP float64) {
	allMeaningful = true
	meansA := make([]float64, 0, len(datasets))
	meansB := make([]float64, 0, len(datasets))
	for _, d := range datasets {
		if d.Comparison.Conclusion != SignificantAndMeaningful {
			allMeaningful = false
		}
		meansA = append(meansA, d.Comparison.MeanA)
		meansB = append(meansB, d.Comparison.MeanB)
	}
	wilcoxonP = 1
	if len(datasets) >= 3 {
		wilcoxonP = stats.WilcoxonSignedRank(meansA, meansB, stats.GreaterTailed).PValue
	}
	return allMeaningful, wilcoxonP
}

// protocol carries the statistical knobs of one evaluation of the
// recommended test; it is the engine behind Experiment.Run, Analyze and the
// deprecated Compare family. The bootstrap resampling is sharded across
// `workers` goroutines with (seed, bootstrap)-deterministic shard streams,
// so evaluations are bit-identical at any worker count. The P(A>B)
// statistic dispatches as a fused kernel (internal/stats.PABKernel): each
// resample accumulates straight from sampled indices with no resample
// buffer and no steady-state allocation, under a determinism contract that
// keeps the resulting CIs bit-identical to the buffered closure path.
type protocol struct {
	gamma     float64
	level     float64
	bootstrap int
	seed      uint64
	workers   int
}

func conclusionOf(d compare.Decision) Conclusion {
	switch d {
	case compare.SignificantAndMeaningful:
		return SignificantAndMeaningful
	case compare.SignificantNotMeaningful:
		return SignificantNotMeaningful
	default:
		return NotSignificant
	}
}

// paired runs the complete Appendix C protocol on paired scores.
func (p protocol) paired(scoresA, scoresB []float64) (Comparison, error) {
	pairs, err := compare.Pairs(scoresA, scoresB)
	if err != nil {
		return Comparison{}, err
	}
	crit := compare.PAB{Gamma: p.gamma, Level: p.level, Bootstrap: p.bootstrap}
	res, err := crit.EvaluateSharded(pairs, p.seed, p.workers)
	if err != nil {
		return Comparison{}, err
	}
	return Comparison{
		MeanA:        stats.Mean(scoresA),
		MeanB:        stats.Mean(scoresB),
		PAB:          res.PAB,
		CILo:         res.CI.Lo,
		CIHi:         res.CI.Hi,
		Gamma:        p.gamma,
		Conclusion:   conclusionOf(res.Decision),
		RecommendedN: stats.NoetherSampleSize(p.gamma, 0.05, 0.05),
		N:            len(pairs),
	}, nil
}

// unpaired runs the Mann-Whitney variant for scores without shared seeds.
func (p protocol) unpaired(scoresA, scoresB []float64) (Comparison, error) {
	crit := compare.PAB{Gamma: p.gamma, Level: p.level, Bootstrap: p.bootstrap}
	res, err := crit.EvaluateUnpairedSharded(scoresA, scoresB, p.seed, p.workers)
	if err != nil {
		return Comparison{}, err
	}
	return Comparison{
		MeanA:        stats.Mean(scoresA),
		MeanB:        stats.Mean(scoresB),
		PAB:          res.PAB,
		CILo:         res.CI.Lo,
		CIHi:         res.CI.Hi,
		Gamma:        p.gamma,
		Conclusion:   conclusionOf(res.Decision),
		RecommendedN: stats.NoetherSampleSize(p.gamma, 0.05, 0.05),
		N:            min(len(scoresA), len(scoresB)),
	}, nil
}

func (e *Experiment) protocol() protocol {
	return protocol{gamma: e.Gamma, level: e.Confidence, bootstrap: e.Bootstrap,
		seed: e.Seed, workers: e.AnalysisParallelism}
}

// validScores uniformly rejects samples too small for the recommended test
// at the public API boundary: the bootstrap needs at least 2 scores per
// algorithm, and reaching the resampler with an empty sample would panic
// deep inside internal/stats instead of returning a useful error.
func validScores(scoresA, scoresB []float64, dataset string) error {
	where := ""
	if dataset != "" {
		where = "dataset " + dataset + ": "
	}
	if len(scoresA) < 2 || len(scoresB) < 2 {
		return fmt.Errorf("varbench: %sneed at least 2 scores per algorithm, got %d and %d",
			where, len(scoresA), len(scoresB))
	}
	return nil
}

// Analyze applies the recommended test to pre-collected scores and wraps
// the conclusion in a renderable Result. Scores are treated as paired on
// shared seeds unless WithUnpaired is given. This is the score-level entry
// point the varbench compare subcommand and the deprecated Compare family
// are built on; prefer Experiment.Run when you control the pipelines.
func Analyze(scoresA, scoresB []float64, opts ...Option) (*Result, error) {
	e, err := applyOptions(opts)
	if err != nil {
		return nil, err
	}
	if !e.Unpaired && len(scoresA) != len(scoresB) {
		return nil, fmt.Errorf("varbench: unpaired lengths %d vs %d", len(scoresA), len(scoresB))
	}
	if err := validScores(scoresA, scoresB, ""); err != nil {
		return nil, err
	}
	var c Comparison
	if e.Unpaired {
		c, err = e.protocol().unpaired(scoresA, scoresB)
	} else {
		c, err = e.protocol().paired(scoresA, scoresB)
	}
	if err != nil {
		return nil, err
	}
	return &Result{
		Name:       e.Name,
		Gamma:      e.Gamma,
		Seed:       e.Seed,
		Comparison: c,
		Datasets: []DatasetResult{{
			Comparison: c,
			ScoresA:    scoresA,
			ScoresB:    scoresB,
			Pairs:      c.N,
		}},
		WilcoxonP: 1,
		Pairs:     c.N,
	}, nil
}

// DatasetScores carries the paired scores of one dataset for a
// multi-dataset analysis.
type DatasetScores struct {
	Name             string
	ScoresA, ScoresB []float64
}

// AnalyzeDatasets applies the recommended test per dataset with a
// Bonferroni-adjusted meaningfulness threshold and combines the evidence
// across datasets (Section 6), wrapping everything in a renderable Result.
func AnalyzeDatasets(datasets []DatasetScores, opts ...Option) (*Result, error) {
	e, err := applyOptions(opts)
	if err != nil {
		return nil, err
	}
	in := make([]compare.DatasetPairs, 0, len(datasets))
	seen := make(map[string]bool, len(datasets))
	for i, ds := range datasets {
		// Names key the per-dataset bootstrap streams (and the report), so
		// they must be present and unique — the same rule Experiment.Run
		// enforces. A lone unnamed dataset stays legal for parity with
		// single-dataset Analyze.
		if ds.Name == "" && len(datasets) > 1 {
			return nil, fmt.Errorf("varbench: dataset %d needs a name", i)
		}
		if seen[ds.Name] {
			return nil, fmt.Errorf("varbench: duplicate dataset name %q", ds.Name)
		}
		seen[ds.Name] = true
		if err := validScores(ds.ScoresA, ds.ScoresB, ds.Name); err != nil {
			return nil, err
		}
		pairs, err := compare.Pairs(ds.ScoresA, ds.ScoresB)
		if err != nil {
			return nil, fmt.Errorf("varbench: dataset %s: %w", ds.Name, err)
		}
		in = append(in, compare.DatasetPairs{Name: ds.Name, Pairs: pairs})
	}
	crit := compare.PAB{Gamma: e.Gamma, Level: e.Confidence, Bootstrap: e.Bootstrap}
	res, err := compare.AcrossDatasetsSharded(in, crit, 0.05, e.Seed, e.AnalysisParallelism)
	if err != nil {
		return nil, err
	}
	out := &Result{
		Name:  e.Name,
		Gamma: e.Gamma,
		Seed:  e.Seed,
	}
	for i, d := range res.PerDataset {
		c := Comparison{
			MeanA:        stats.Mean(datasets[i].ScoresA),
			MeanB:        stats.Mean(datasets[i].ScoresB),
			PAB:          d.Result.PAB,
			CILo:         d.Result.CI.Lo,
			CIHi:         d.Result.CI.Hi,
			Gamma:        d.AdjustedGamma,
			Conclusion:   conclusionOf(d.Result.Decision),
			RecommendedN: stats.NoetherSampleSize(d.AdjustedGamma, 0.05, 0.05),
			N:            len(datasets[i].ScoresA),
		}
		out.Datasets = append(out.Datasets, DatasetResult{
			Name:       d.Dataset,
			Comparison: c,
			ScoresA:    datasets[i].ScoresA,
			ScoresB:    datasets[i].ScoresB,
			Pairs:      c.N,
		})
		out.Pairs += c.N
	}
	if len(out.Datasets) == 1 {
		// Match Experiment.Run: a single dataset reports through Comparison
		// and leaves the multi-dataset aggregates unset.
		out.Comparison = out.Datasets[0].Comparison
		out.WilcoxonP = 1
	} else {
		// Deliberately recomputed via combineEvidence rather than taken
		// from the MultiResult: the facade keeps ONE implementation of the
		// Section 6 combination rule, shared with Experiment.Run (the
		// internal fields remain for internal/compare's own users).
		out.AllMeaningful, out.WilcoxonP = combineEvidence(out.Datasets)
	}
	return out, nil
}

// SampleSize returns the minimal number of paired measurements for the
// recommended test to detect P(A>B) ≥ gamma with 5% false positives and 5%
// false negatives (Noether 1987; Figure C.1). SampleSize(0.75) = 29.
func SampleSize(gamma float64) int {
	return stats.NoetherSampleSize(gamma, 0.05, 0.05)
}

// VarianceSummary describes the spread of repeated benchmark measurements.
type VarianceSummary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Std    float64 `json:"std"`
	StdErr float64 `json:"std_err"`
	// NormalP is the Shapiro-Wilk p-value (NaN when n outside [3,5000]):
	// small values warn that normal-theory intervals are unreliable. It
	// marshals as null when NaN.
	NormalP float64 `json:"normal_p"`
}

// MarshalJSON implements json.Marshaler, encoding the NaN NormalP sentinel
// as null — encoding/json would otherwise fail the whole document.
func (s VarianceSummary) MarshalJSON() ([]byte, error) {
	type alias VarianceSummary
	return jsonx.Marshal(alias(s))
}

// Summarize computes the variance summary of repeated measurements, e.g. of
// the scores returned by Experiment.Collect in a per-source variance study.
func Summarize(scores []float64) VarianceSummary {
	s := VarianceSummary{
		N:      len(scores),
		Mean:   stats.Mean(scores),
		Std:    stats.Std(scores),
		StdErr: stats.StdErr(scores),
	}
	if _, p, err := stats.ShapiroWilk(scores); err == nil {
		s.NormalP = p
	} else {
		s.NormalP = math.NaN()
	}
	return s
}
