package varbench

import (
	"fmt"
	"runtime"
	"time"

	"varbench/internal/stats"
	"varbench/store"
)

// Default knobs of the recommended protocol.
const (
	// DefaultConfidence is the confidence level of the bootstrap interval.
	DefaultConfidence = 0.95
	// DefaultBootstrap is the number of bootstrap resamples.
	DefaultBootstrap = 1000
	// DefaultBatchSize is the number of pairs collected between early-stop
	// evaluations. It is independent of Parallelism so that results do not
	// depend on the worker count.
	DefaultBatchSize = 8
	// DefaultMinRuns is the smallest sample the early-stop rule will judge.
	DefaultMinRuns = 5
)

// An Option adjusts an Experiment (or, for the score-level entry points
// Analyze, AnalyzeDatasets and the deprecated Compare family, the protocol
// parameters they share with Experiment).
type Option func(*Experiment)

// WithGamma sets the meaningfulness threshold for P(A>B) (default 0.75).
// Unlike the zero Experiment.Gamma field (which means "use the default"),
// an explicit out-of-range value — including 0 — is rejected.
func WithGamma(gamma float64) Option {
	return func(e *Experiment) { e.Gamma = gamma; e.gammaSet = true }
}

// WithConfidence sets the CI confidence level (default 0.95). An explicit
// out-of-range value — including 0 — is rejected.
func WithConfidence(level float64) Option {
	return func(e *Experiment) { e.Confidence = level; e.confidenceSet = true }
}

// WithBootstrap sets the number of bootstrap resamples (default 1000). An
// explicit non-positive value is rejected.
func WithBootstrap(k int) Option {
	return func(e *Experiment) { e.Bootstrap = k; e.bootstrapSet = true }
}

// WithSeed sets the experiment's root seed, from which all collection and
// bootstrap randomness derives (default 1). Unlike the Experiment.Seed
// field, whose zero value means "use the default", an explicit WithSeed(0)
// is honored.
func WithSeed(seed uint64) Option {
	return func(e *Experiment) { e.Seed = seed; e.seedSet = true }
}

// WithParallelism sets the worker-pool size used during collection
// (default: GOMAXPROCS). Results are identical at any parallelism.
// Effective concurrency is bounded by BatchSize, the unit of collection.
// An explicit negative value is rejected; 0 means "use the default".
func WithParallelism(n int) Option { return func(e *Experiment) { e.Parallelism = n } }

// WithAnalysisParallelism sets the worker-pool size of the sharded
// percentile bootstrap behind every confidence-interval computation
// (default: GOMAXPROCS). The resampling is sharded deterministically by
// (seed, resample count) and runs the fused P(A>B) statistic kernel, so
// results are bit-identical at any setting — the parallelism (and the
// kernel fusion) change only the speed; 1 forces the serial reference
// engine. An explicit negative value is rejected; 0 means "use the
// default".
func WithAnalysisParallelism(n int) Option {
	return func(e *Experiment) { e.AnalysisParallelism = n }
}

// WithMaxRuns caps the number of paired measurements collected
// (default: Noether's recommended sample size for the chosen γ).
func WithMaxRuns(n int) Option { return func(e *Experiment) { e.MaxRuns = n } }

// WithMinRuns sets the smallest sample the early-stop rule may judge
// (default 5). An explicit negative value is rejected; 0 means "use the
// default".
func WithMinRuns(n int) Option { return func(e *Experiment) { e.MinRuns = n } }

// WithBatchSize sets how many pairs are collected between early-stop
// evaluations (default 8). Raise it to at least the parallelism when using
// a large worker pool — at most one batch is in flight at a time. An
// explicit negative value is rejected; 0 means "use the default".
func WithBatchSize(n int) Option { return func(e *Experiment) { e.BatchSize = n } }

// WithEarlyStop selects the early-stopping policy (default EarlyStopAuto).
func WithEarlyStop(p EarlyStopPolicy) Option { return func(e *Experiment) { e.EarlyStop = p } }

// WithSources restricts which sources of variation receive a fresh seed on
// every run; the rest stay fixed (default: all sources vary).
func WithSources(sources ...Source) Option {
	return func(e *Experiment) { e.Sources = sources }
}

// WithStore attaches a durable trial store: completed measurements are
// appended as soon as they exist and trials already recorded under the same
// spec fingerprint are served from the store instead of re-running the
// pipeline, making interrupted runs resumable and identical cells shareable
// across overlapping experiments. Any store.Backend works — the JSONL log
// from store.Open, an in-memory store, a seglog, or a DSN-opened backend
// from store.OpenDSN. See Experiment.Store.
func WithStore(s store.Backend) Option { return func(e *Experiment) { e.Store = s } }

// WithPipelineID names the pipeline implementation inside the trial store's
// spec fingerprint, isolating different pipelines that share one store
// directory. See Experiment.PipelineID.
func WithPipelineID(id string) Option { return func(e *Experiment) { e.PipelineID = id } }

// WithUnpaired marks pre-collected scores as unpaired, switching Analyze to
// the Mann-Whitney estimate of P(A>B). It has no effect on Experiment.Run,
// which always pairs runs on shared trials.
func WithUnpaired() Option { return func(e *Experiment) { e.Unpaired = true } }

// WithProgress installs a callback invoked after every collected batch.
func WithProgress(f func(Progress)) Option { return func(e *Experiment) { e.Progress = f } }

// WithTrialTimeout bounds every pipeline invocation: an attempt running
// longer fails with ErrTrialTimeout. Setting a timeout opts the experiment
// into quarantine mode by default; see Experiment.FailFast. An explicit
// negative value is rejected; 0 means "no deadline".
func WithTrialTimeout(d time.Duration) Option {
	return func(e *Experiment) { e.TrialTimeout = d }
}

// WithRetry installs a retry policy for failed trials; see RetryPolicy.
// Setting a policy (any non-zero MaxAttempts) opts the experiment into
// quarantine mode by default; see Experiment.FailFast.
func WithRetry(p RetryPolicy) Option {
	return func(e *Experiment) { e.Retry = p }
}

// WithMaxRetries is shorthand for WithRetry with n retries after the first
// attempt (MaxAttempts = n+1) and default backoff.
func WithMaxRetries(n int) Option {
	return func(e *Experiment) { e.Retry = RetryPolicy{MaxAttempts: n + 1} }
}

// WithFailFast selects explicitly between aborting on the first exhausted
// trial (true) and quarantining failed cells (false), overriding the
// default inferred from the other resilience knobs. Unlike the
// Experiment.FailFast field — whose zero value means "fail fast unless
// TrialTimeout or Retry is configured" — WithFailFast(false) alone is
// honored: it enables quarantine mode with single attempts and no deadline.
func WithFailFast(v bool) Option {
	return func(e *Experiment) { e.FailFast = v; e.failFastSet = true }
}

// withDefaults returns a copy of e with zero-valued protocol knobs replaced
// by their defaults, and rejects out-of-range settings.
func (e *Experiment) withDefaults() (*Experiment, error) {
	c := *e
	if c.Gamma == 0 && !c.gammaSet {
		c.Gamma = DefaultGamma
	}
	if c.Gamma <= 0.5 || c.Gamma >= 1 {
		return nil, fmt.Errorf("varbench: γ must be in (0.5, 1), got %v", c.Gamma)
	}
	if c.Confidence == 0 && !c.confidenceSet {
		c.Confidence = DefaultConfidence
	}
	if c.Confidence <= 0 || c.Confidence >= 1 {
		return nil, fmt.Errorf("varbench: confidence must be in (0, 1), got %v", c.Confidence)
	}
	if c.Bootstrap == 0 && !c.bootstrapSet {
		c.Bootstrap = DefaultBootstrap
	}
	if c.Bootstrap < 1 {
		return nil, fmt.Errorf("varbench: bootstrap resamples must be ≥ 1, got %d", c.Bootstrap)
	}
	if c.Seed == 0 && !c.seedSet {
		c.Seed = 1
	}
	// Zero still means "use the default" for the count knobs, but an
	// explicit negative is an error, matching how WithGamma/WithConfidence/
	// WithBootstrap treat out-of-range input. The zero value of these
	// fields cannot be confused with an explicit setting, so no set flag is
	// needed: any negative must have been written deliberately.
	if c.BatchSize < 0 {
		return nil, fmt.Errorf("varbench: BatchSize must not be negative, got %d (0 means default)", c.BatchSize)
	}
	if c.BatchSize == 0 {
		c.BatchSize = DefaultBatchSize
	}
	if c.MinRuns < 0 {
		return nil, fmt.Errorf("varbench: MinRuns must not be negative, got %d (0 means default)", c.MinRuns)
	}
	if c.MinRuns == 0 {
		c.MinRuns = DefaultMinRuns
	}
	if c.MinRuns < 2 {
		c.MinRuns = 2
	}
	if c.MaxRuns == 0 {
		c.MaxRuns = stats.NoetherSampleSize(c.Gamma, 0.05, 0.05)
	}
	if c.MaxRuns < 2 {
		return nil, fmt.Errorf("varbench: MaxRuns must be ≥ 2, got %d", c.MaxRuns)
	}
	if c.MinRuns > c.MaxRuns {
		c.MinRuns = c.MaxRuns
	}
	if c.Parallelism < 0 {
		return nil, fmt.Errorf("varbench: Parallelism must not be negative, got %d (0 means default)", c.Parallelism)
	}
	if c.Parallelism == 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	if c.AnalysisParallelism < 0 {
		return nil, fmt.Errorf("varbench: AnalysisParallelism must not be negative, got %d (0 means default)", c.AnalysisParallelism)
	}
	if c.AnalysisParallelism == 0 {
		c.AnalysisParallelism = runtime.GOMAXPROCS(0)
	}
	if c.TrialTimeout < 0 {
		return nil, fmt.Errorf("varbench: TrialTimeout must not be negative, got %v (0 means no deadline)", c.TrialTimeout)
	}
	if err := c.Retry.validate(); err != nil {
		return nil, err
	}
	// FailFast defaults on — today's behavior — unless the spec configures
	// a resilience knob, which opts it into quarantine mode. A true field
	// is always honored (fail fast even with retries/deadlines); an
	// explicit WithFailFast(false) forces quarantine mode on its own.
	if !c.failFastSet && !c.FailFast {
		c.FailFast = c.Retry.MaxAttempts == 0 && c.TrialTimeout == 0
	}
	return &c, nil
}

// applyOptions builds a defaulted Experiment carrying only protocol
// parameters, for the score-level entry points.
func applyOptions(opts []Option) (*Experiment, error) {
	var e Experiment
	for _, opt := range opts {
		opt(&e)
	}
	return e.withDefaults()
}
