// Package seeded leaks a goroutine on purpose: an unconditional receive
// loop on a channel nothing ever closes, with no ctx.Done or WaitGroup
// pairing. The integration tests demand a goroline finding and exit 1.
package seeded

// Leak starts a goroutine with no termination edge.
func Leak(ch chan int) {
	go func() {
		for {
			<-ch
		}
	}()
}
