// Package seeded compares a module sentinel error by identity — the match
// that silently breaks once any layer wraps the sentinel with %w. The
// integration tests demand an errsentinel finding and exit 1.
package seeded

import "errors"

// ErrGone is a package-level sentinel.
var ErrGone = errors.New("gone")

// IsGone uses == where errors.Is is required.
func IsGone(err error) bool {
	return err == ErrGone
}
