// Package seeded carries a deliberate lock-order inversion: the two
// methods acquire the same pair of mutexes in opposite orders. The
// integration tests feed this package to varbenchlint standalone and
// through go vet -vettool, demanding a lockorder finding and exit 1.
package seeded

import "sync"

type pair struct {
	a sync.Mutex
	b sync.Mutex
}

func (p *pair) ab() {
	p.a.Lock()
	p.b.Lock()
	p.b.Unlock()
	p.a.Unlock()
}

func (p *pair) ba() {
	p.b.Lock()
	p.a.Lock()
	p.a.Unlock()
	p.b.Unlock()
}

var _ = (&pair{}).ab
var _ = (&pair{}).ba
