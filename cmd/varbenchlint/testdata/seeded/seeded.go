// Package seeded is a deliberately violating fixture: the varbenchlint
// integration test (and, through it, CI) feeds this package to the linter
// and demands a jsonsafe finding plus a nonzero exit — proving the lint
// gate actually fails when a contract is broken. It is under testdata so
// ./... wildcards never build or lint it as production code.
package seeded

import "encoding/json"

// Point carries raw floats with no MarshalJSON sanitizer: marshalling it
// directly is exactly what jsonsafe exists to catch.
type Point struct {
	X float64
	Y float64
}

// Marshal trips the jsonsafe analyzer.
func Marshal(p Point) ([]byte, error) {
	return json.Marshal(p)
}
