// Package seeded reads a buffered store back without a Flush barrier
// between the write and the read. The integration tests demand a
// flushbarrier finding and exit 1.
package seeded

type kv struct{ n int }

func (*kv) Put(key, val string)   {}
func (*kv) Get(key string) string { return "" }
func (*kv) Flush() error          { return nil }

// ReadBack writes then reads with no barrier in between.
func ReadBack(k *kv) string {
	k.Put("a", "1")
	return k.Get("a")
}
