// Command varbenchlint is the multichecker for varbench's project-specific
// static analyzers (internal/lint): nondeterm, jsonsafe, seedflow and
// poolput — the determinism and NaN-safety contracts of the benchmark
// engine — plus the flow-sensitive suite built on internal/lint/flow:
// lockorder, goroline, errsentinel and flushbarrier — the concurrency and
// durability contracts of the store layer, enforced mechanically instead
// of by prose.
//
// Standalone over package patterns (exit 1 on findings):
//
//	go run ./cmd/varbenchlint ./...
//	go run ./cmd/varbenchlint -format github ./...   # CI annotations
//	go run ./cmd/varbenchlint -checks nondeterm,jsonsafe ./internal/stats
//
// Or as a vet tool, speaking go vet's separate-compilation protocol
// (-V=full, -flags, unit.cfg):
//
//	go build -o "$(go env GOPATH)/bin/varbenchlint" ./cmd/varbenchlint
//	go vet -vettool="$(which varbenchlint)" ./...
//
// Intentional violations carry an inline, reasoned escape hatch:
//
//	//lint:allow nondeterm(Elapsed is wall-clock metadata, not result state)
//
// See internal/lint's package documentation for each analyzer's contract.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"varbench/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("varbenchlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	format := fs.String("format", "text", "finding output format: text or github (::error workflow annotations)")
	checks := fs.String("checks", "", "comma-separated analyzer subset to run (default: all)")
	dir := fs.String("C", ".", "directory to resolve package patterns from")
	version := fs.String("V", "", "version query (go vet protocol; -V=full prints the tool identity)")
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON (go vet protocol)")
	printFlags := fs.Bool("flags", false, "print the tool's flags as JSON (go vet protocol)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: varbenchlint [-format text|github] [-checks a,b] [packages]")
		fmt.Fprintln(stderr, "       varbenchlint unit.cfg   (invoked by go vet -vettool)")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version != "" {
		// go vet fingerprints the tool for build caching and requires devel
		// versions to end in a buildID= field; hash the binary so the
		// fingerprint changes whenever the tool does.
		fmt.Fprintf(stdout, "varbenchlint version devel buildID=%s\n", selfSum())
		return 0
	}
	if *printFlags {
		fmt.Fprintln(stdout, "[]")
		return 0
	}

	analyzers, err := selectAnalyzers(*checks)
	if err != nil {
		fmt.Fprintln(stderr, "varbenchlint:", err)
		return 2
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runVet(rest[0], analyzers, *jsonOut, stdout, stderr)
	}

	patterns := rest
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "varbenchlint:", err)
		return 2
	}
	found := 0
	for _, pkg := range pkgs {
		for _, d := range lint.Run(pkg, analyzers) {
			found++
			printDiagnostic(stdout, *format, pkg, d)
		}
	}
	if found > 0 {
		fmt.Fprintf(stderr, "varbenchlint: %d finding(s)\n", found)
		return 1
	}
	return 0
}

// selectAnalyzers resolves a -checks subset ("" means the whole suite).
func selectAnalyzers(checks string) ([]*lint.Analyzer, error) {
	all := lint.Analyzers()
	if checks == "" {
		return all, nil
	}
	byName := make(map[string]*lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(checks, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have: nondeterm, jsonsafe, seedflow, poolput, "+
				"lockorder, goroline, errsentinel, flushbarrier)", name)
		}
		out = append(out, a)
	}
	return out, nil
}

func printDiagnostic(w io.Writer, format string, pkg *lint.Package, d lint.Diagnostic) {
	posn := pkg.Fset.Position(d.Pos)
	file := posn.Filename
	if rel, err := filepath.Rel(".", file); err == nil && !strings.HasPrefix(rel, "..") {
		file = rel
	}
	if format == "github" {
		// One workflow-command line per finding: GitHub renders these as
		// inline PR annotations and in the job summary.
		fmt.Fprintf(w, "::error file=%s,line=%d,col=%d::[%s] %s\n",
			file, posn.Line, posn.Column, d.Analyzer, d.Message)
		return
	}
	fmt.Fprintf(w, "%s:%d:%d: [%s] %s\n", file, posn.Line, posn.Column, d.Analyzer, d.Message)
}

// selfSum hashes the running binary for -V=full build fingerprints.
func selfSum() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}
