package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"varbench/internal/lint"
)

// go vet's separate-compilation protocol: for every package in the build
// graph the go command hands the tool a JSON .cfg describing one
// compilation unit — source files, the resolved import map, and the
// export-data file of every dependency (already produced by the compiler).
// The tool typechecks that one unit, analyzes it, writes its facts file
// (varbenchlint keeps no cross-package facts, so an empty one) and reports
// findings on stderr with a nonzero exit. This mirrors
// golang.org/x/tools/go/analysis/unitchecker without the dependency.

// vetConfig is the wire format of the .cfg file (a subset of the fields the
// go command writes; unknown fields are ignored).
type vetConfig struct {
	ID                        string
	Compiler                  string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runVet(cfgFile string, analyzers []*lint.Analyzer, jsonOut bool, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(stderr, "varbenchlint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "varbenchlint: cannot decode config %s: %v\n", cfgFile, err)
		return 2
	}
	// The facts file must exist for the go command's caching even though
	// varbenchlint has no cross-package facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(stderr, "varbenchlint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0 // the compiler will report it better
			}
			fmt.Fprintln(stderr, "varbenchlint:", err)
			return 2
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	compilerImporter := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			path = importPath
		}
		return compilerImporter.Import(path)
	})
	conf := types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(stderr, "varbenchlint:", err)
		return 2
	}

	// The contracts bind production code: test files are typechecked (the
	// package needs them) but not analyzed — tests use wall clocks and
	// ad-hoc seeds legitimately.
	var analyzed []*ast.File
	for _, f := range files {
		if !strings.HasSuffix(fset.Position(f.Package).Filename, "_test.go") {
			analyzed = append(analyzed, f)
		}
	}
	if len(analyzed) == 0 {
		return 0
	}
	pkg := &lint.Package{Path: cfg.ImportPath, Fset: fset, Files: analyzed, Types: tpkg, Info: info}
	diags := lint.Run(pkg, analyzers)

	if jsonOut {
		// go vet -json merges each tool's stdout JSON: pkgID → analyzer →
		// findings.
		type jsonDiag struct {
			Posn    string `json:"posn"`
			Message string `json:"message"`
		}
		byAnalyzer := make(map[string][]jsonDiag)
		for _, d := range diags {
			byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer],
				jsonDiag{Posn: fset.Position(d.Pos).String(), Message: d.Message})
		}
		tree := map[string]map[string][]jsonDiag{cfg.ID: byAnalyzer}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(tree); err != nil {
			fmt.Fprintln(stderr, "varbenchlint:", err)
			return 2
		}
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
