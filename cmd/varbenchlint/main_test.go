package main

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoIsClean is the acceptance gate as a test: the full suite over the
// whole module must come back with zero findings (every intentional
// violation carries its reasoned //lint:allow).
func TestRepoIsClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", "../..", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("varbenchlint ./... = exit %d, want 0\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
}

// TestSeededViolationFails proves the gate can fail: a package with a known
// jsonsafe violation must produce a finding and exit 1.
func TestSeededViolationFails(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"./testdata/seeded"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "[jsonsafe]") {
		t.Errorf("stdout missing [jsonsafe] finding:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "1 finding(s)") {
		t.Errorf("stderr missing finding count:\n%s", stderr.String())
	}
}

// seededFlowPackages maps each flow-sensitive analyzer to its deliberately
// violating package under testdata.
var seededFlowPackages = []struct{ analyzer, pkg string }{
	{"lockorder", "./testdata/seeded_lockorder"},
	{"goroline", "./testdata/seeded_goroline"},
	{"errsentinel", "./testdata/seeded_errsentinel"},
	{"flushbarrier", "./testdata/seeded_flushbarrier"},
}

// TestSeededFlowViolationsFail proves each flow-sensitive analyzer can fail
// the standalone gate: one seeded violation per analyzer, each demanding
// its finding and exit 1.
func TestSeededFlowViolationsFail(t *testing.T) {
	for _, tc := range seededFlowPackages {
		t.Run(tc.analyzer, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run([]string{tc.pkg}, &stdout, &stderr)
			if code != 1 {
				t.Fatalf("exit %d, want 1\nstdout:\n%s\nstderr:\n%s",
					code, stdout.String(), stderr.String())
			}
			if !strings.Contains(stdout.String(), "["+tc.analyzer+"]") {
				t.Errorf("stdout missing [%s] finding:\n%s", tc.analyzer, stdout.String())
			}
		})
	}
}

// TestVetToolSeededViolationsFail proves the same failures through go
// vet's separate-compilation protocol: the built binary, handed to
// -vettool, must fail each seeded package.
func TestVetToolSeededViolationsFail(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary and shells out to go vet")
	}
	bin := filepath.Join(t.TempDir(), "varbenchlint")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	for _, tc := range seededFlowPackages {
		t.Run(tc.analyzer, func(t *testing.T) {
			out, err := exec.Command("go", "vet", "-vettool="+bin, tc.pkg).CombinedOutput()
			if err == nil {
				t.Fatalf("go vet -vettool on %s succeeded, want failure\n%s", tc.pkg, out)
			}
			if !strings.Contains(string(out), "["+tc.analyzer+"]") {
				t.Errorf("vet output missing [%s] finding:\n%s", tc.analyzer, out)
			}
		})
	}
}

// TestGitHubFormat checks the CI annotation format: one ::error workflow
// command per finding, with file, line and column.
func TestGitHubFormat(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-format", "github", "./testdata/seeded"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	line := strings.TrimSpace(stdout.String())
	if !strings.HasPrefix(line, "::error file=") || !strings.Contains(line, ",line=") ||
		!strings.Contains(line, "::[jsonsafe]") {
		t.Errorf("not a workflow error command: %q", line)
	}
}

func TestChecksSubset(t *testing.T) {
	var stdout, stderr bytes.Buffer
	// Only nondeterm requested: the seeded jsonsafe violation must pass.
	if code := run([]string{"-checks", "nondeterm", "./testdata/seeded"}, &stdout, &stderr); code != 0 {
		t.Errorf("-checks nondeterm = exit %d, want 0\n%s", code, stderr.String())
	}
	stderr.Reset()
	if code := run([]string{"-checks", "bogus", "./testdata/seeded"}, &stdout, &stderr); code != 2 {
		t.Errorf("-checks bogus = exit %d, want 2", code)
	} else if !strings.Contains(stderr.String(), `unknown analyzer "bogus"`) {
		t.Errorf("stderr missing unknown-analyzer error:\n%s", stderr.String())
	}
}

// TestVetProtocolHandshake covers the go vet tool protocol surface that does
// not need a build: -V=full identity and -flags.
func TestVetProtocolHandshake(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-V=full"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-V=full = exit %d", code)
	}
	fields := strings.Fields(stdout.String())
	// go vet requires ≥3 fields, "version" second, and — for devel versions —
	// a final buildID= field (cmd/go/internal/work.(*Builder).toolID).
	if len(fields) < 3 || fields[0] != "varbenchlint" || fields[1] != "version" ||
		(fields[2] == "devel" && !strings.HasPrefix(fields[len(fields)-1], "buildID=")) {
		t.Errorf("-V=full output %q does not satisfy the vet fingerprint format", stdout.String())
	}
	stdout.Reset()
	if code := run([]string{"-flags"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-flags = exit %d", code)
	}
	if strings.TrimSpace(stdout.String()) != "[]" {
		t.Errorf("-flags = %q, want []", stdout.String())
	}
}
