package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"varbench"
	"varbench/internal/xrand"
)

// writeScores writes one CSV score file; dataset "" emits single-column
// rows.
func writeScores(t *testing.T, name, dataset string, scores []float64) string {
	t.Helper()
	var buf bytes.Buffer
	for _, v := range scores {
		if dataset == "" {
			fmt.Fprintf(&buf, "%g\n", v)
		} else {
			fmt.Fprintf(&buf, "%s,%g\n", dataset, v)
		}
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func pairedScores(seed uint64, n int, diff float64) (a, b []float64) {
	r := xrand.New(seed)
	a = make([]float64, n)
	b = make([]float64, n)
	for i := range a {
		base := r.NormFloat64()
		a[i] = base + diff
		b[i] = base + 0.2*r.NormFloat64()
	}
	return a, b
}

func TestCompareSubcommandText(t *testing.T) {
	a, b := pairedScores(1, 40, 2)
	fa := writeScores(t, "a.csv", "", a)
	fb := writeScores(t, "b.csv", "", b)
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"compare", "-a", fa, "-b", fb}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "significant and meaningful") {
		t.Errorf("dominant pair not detected:\n%s", out)
	}
	if !strings.Contains(out, "P(A>B)") {
		t.Errorf("missing P(A>B) line:\n%s", out)
	}
}

func TestCompareSubcommandJSON(t *testing.T) {
	a, b := pairedScores(2, 30, 2)
	fa := writeScores(t, "a.csv", "", a)
	fb := writeScores(t, "b.csv", "", b)
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"compare", "-a", fa, "-b", fb, "-format", "json", "-gamma", "0.6"}, &buf); err != nil {
		t.Fatal(err)
	}
	var res varbench.Result
	if err := json.Unmarshal(buf.Bytes(), &res); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if res.Comparison.Gamma != 0.6 {
		t.Errorf("γ flag ignored: %v", res.Comparison.Gamma)
	}
	if res.Comparison.Conclusion != varbench.SignificantAndMeaningful {
		t.Errorf("conclusion = %s", res.Comparison.Conclusion)
	}
}

func TestCompareSubcommandMultiDataset(t *testing.T) {
	var bufA, bufB bytes.Buffer
	for _, ds := range []string{"mnist", "sst2", "rte"} {
		a, b := pairedScores(uint64(len(ds)), 25, 1.5)
		for i := range a {
			fmt.Fprintf(&bufA, "%s,%g\n", ds, a[i])
			fmt.Fprintf(&bufB, "%s,%g\n", ds, b[i])
		}
	}
	dir := t.TempDir()
	fa := filepath.Join(dir, "a.csv")
	fb := filepath.Join(dir, "b.csv")
	if err := os.WriteFile(fa, bufA.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(fb, bufB.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(context.Background(), []string{"compare", "-a", fa, "-b", fb, "-format", "csv"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, ds := range []string{"mnist", "sst2", "rte"} {
		if !strings.Contains(got, ds) {
			t.Errorf("dataset %s missing from CSV output:\n%s", ds, got)
		}
	}
}

func TestCompareSubcommandHeaderAndUnpaired(t *testing.T) {
	dir := t.TempDir()
	fa := filepath.Join(dir, "a.csv")
	fb := filepath.Join(dir, "b.csv")
	if err := os.WriteFile(fa, []byte("score\n5\n6\n7\n8\n9\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(fb, []byte("score\n1\n2\n3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	// Unequal lengths require -unpaired.
	if err := run(context.Background(), []string{"compare", "-a", fa, "-b", fb}, &buf); err == nil {
		t.Error("unequal paired lengths accepted")
	}
	buf.Reset()
	if err := run(context.Background(), []string{"compare", "-a", fa, "-b", fb, "-unpaired"}, &buf); err != nil {
		t.Fatal(err)
	}
}

func TestCompareSubcommandSingleDatasetNameMismatch(t *testing.T) {
	// Two files each carrying one *differently named* dataset must not be
	// silently paired.
	a, b := pairedScores(4, 10, 1)
	fa := writeScores(t, "a.csv", "mnist", a)
	fb := writeScores(t, "b.csv", "cifar", b)
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"compare", "-a", fa, "-b", fb}, &buf); err == nil {
		t.Error("mismatched single dataset names accepted")
	}
	// Same name is fine.
	fb2 := writeScores(t, "b2.csv", "mnist", b)
	if err := run(context.Background(), []string{"compare", "-a", fa, "-b", fb2}, &buf); err != nil {
		t.Fatal(err)
	}
}

func TestCompareSubcommandErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"compare"}, &buf); err == nil {
		t.Error("missing score files accepted")
	}
	if err := run(context.Background(), []string{"compare", "-a", "nope.csv", "-b", "nope.csv"}, &buf); err == nil {
		t.Error("missing file accepted")
	}
	a, b := pairedScores(3, 10, 1)
	fa := writeScores(t, "a.csv", "", a)
	fb := writeScores(t, "b.csv", "", b)
	if err := run(context.Background(), []string{"compare", "-a", fa, "-b", fb, "-format", "yaml"}, &buf); err == nil {
		t.Error("unknown format accepted")
	}
	if err := run(context.Background(), []string{"compare", "-a", fa, "-b", fb, "-gamma", "0.3"}, &buf); err == nil {
		t.Error("invalid γ accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.csv")
	if err := os.WriteFile(bad, []byte("1\nnot-a-number\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"compare", "-a", bad, "-b", fb}, &buf); err == nil {
		t.Error("malformed score accepted")
	}
	// A malformed *first* score (contains digits) is corruption, not a
	// header, and must not be silently skipped.
	typo := filepath.Join(t.TempDir(), "typo.csv")
	if err := os.WriteFile(typo, []byte("O.85\n0.9\n0.91\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"compare", "-a", typo, "-b", fb, "-unpaired"}, &buf); err == nil {
		t.Error("typo'd first score silently dropped as a header")
	}
}
