// Command varbench regenerates the tables and figures of "Accounting for
// Variance in Machine Learning Benchmarks" (MLSys 2021) on the synthetic
// case studies of this repository, and applies the paper's recommended
// statistical protocol to externally collected score files.
//
// Usage:
//
//	varbench <experiment> [flags]
//	varbench compare -a scoresA.csv -b scoresB.csv [flags]
//	varbench variance [-task name] [-sources spec] [flags]
//	varbench watch -file scores.csv [-follow] [flags]
//
// Experiments: fig1 fig2 fig3 fig5 figH5 fig6 figC1 figF2 figG3 figI6
// table8 appendixC spaces env all (figH4 is accepted as an alias of fig5,
// which renders the same decomposition).
//
// Experiment flags:
//
//	-quick        reduced budget (minutes instead of hours)
//	-tasks list   comma-separated case-study names (default: all five)
//	-seed n       base seed for all experiments (default 1)
//
// The compare subcommand reads CSV score files — one score per line, or
// dataset,score rows for a multi-dataset comparison — and emits the
// three-zone conclusion (not significant / significant but not meaningful /
// significant and meaningful) as text, JSON or CSV; see
// `varbench compare -h` for its flags.
//
// The variance subcommand runs a varbench.VarianceStudy on one case study:
// it decomposes the benchmark's variance across its sources of variation
// (per-source share, joint randomization, SE-vs-k curves, bias/Var/ρ/MSE)
// and renders the VarianceReport as text, JSON or CSV; see
// `varbench variance -h` for its flags.
//
// The watch subcommand streams a growing score file — `a,b` CSV or
// `{"a": .., "b": ..}` JSONL lines, one paired trial each — through the
// incremental analysis engine: each new line costs O(K) bootstrap work,
// never a re-analysis of the history. With -follow it tails the file;
// with -store the analysis snapshot survives interrupts and a rerun
// resumes without recomputation; see `varbench watch -h` for its flags.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"varbench"
	"varbench/internal/casestudy"
	"varbench/internal/estimator"
	"varbench/internal/experiments"
	"varbench/internal/stats"
	"varbench/internal/xrand"
	"varbench/store"
)

// errDegraded marks a run that completed — its report was rendered — but
// quarantined trials along the way, so the results are partial. main turns
// it into exit code 3, distinct from hard failures (1) and interrupts
// (130/143), so CI and supervisors can tell "usable but incomplete" from
// "broken".
var errDegraded = errors.New("run degraded by quarantined trials")

func main() {
	// Ctrl-C and SIGTERM cancel the collection context instead of killing
	// the process mid-write: the worker pool drains, in-flight trials
	// finish and land in the trial store (if -store is set), and the run
	// exits cleanly resumable — with the conventional 128+signum code
	// (130 for SIGINT, 143 for SIGTERM) so supervisors can tell an
	// operator interrupt from a termination. After the first signal the
	// handler unregisters, so a second signal kills immediately.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	var caught atomic.Value // os.Signal
	//lint:allow goroline(signal.Notify relay parks on sigCh for the process lifetime by design; signal.Stop unregisters after the first delivery)
	go func() {
		if sig, ok := <-sigCh; ok {
			caught.Store(sig)
			signal.Stop(sigCh)
			cancel()
		}
	}()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		if sig, _ := caught.Load().(os.Signal); sig != nil && errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "varbench: interrupted (%v) — completed trials were saved if -store was set; rerun the same command to resume\n", sig)
			if sig == syscall.SIGTERM {
				os.Exit(143)
			}
			os.Exit(130)
		}
		// Library errors already carry the package prefix; avoid printing
		// "varbench: varbench: ...".
		fmt.Fprintln(os.Stderr, "varbench:", strings.TrimPrefix(err.Error(), "varbench: "))
		if errors.Is(err, errDegraded) {
			os.Exit(3)
		}
		os.Exit(1)
	}
}

// openStore opens a store DSN for a subcommand. With waitLock > 0 a store
// held by another live process (store.ErrLocked) is retried on the library's
// deterministic backoff until the lock frees or waitLock elapses, instead of
// failing immediately — the CLI face of the non-blocking flock both engines
// take.
func openStore(ctx context.Context, dsn string, waitLock time.Duration) (store.Backend, error) {
	if waitLock <= 0 {
		return store.OpenDSN(dsn)
	}
	ctx, cancel := context.WithTimeout(ctx, waitLock)
	defer cancel()
	policy := varbench.RetryPolicy{
		// Effectively unbounded attempts: the context deadline, not the
		// attempt budget, decides when to give up.
		MaxAttempts: math.MaxInt32,
		BaseDelay:   50 * time.Millisecond,
		MaxDelay:    500 * time.Millisecond,
		Retryable:   func(err error) bool { return errors.Is(err, store.ErrLocked) },
	}
	var st store.Backend
	err := policy.Do(ctx, 0, func() error {
		var err error
		st, err = store.OpenDSN(dsn)
		return err
	})
	if err != nil {
		if errors.Is(err, store.ErrLocked) {
			return nil, fmt.Errorf("store %s: still locked after waiting %v: %w", dsn, waitLock, err)
		}
		return nil, err
	}
	return st, nil
}

func run(ctx context.Context, args []string, w io.Writer) error {
	// The compare and variance subcommands have their own flag sets and no
	// timing footer.
	if len(args) > 0 && args[0] == "compare" {
		return runCompare(ctx, args[1:], w)
	}
	if len(args) > 0 && args[0] == "variance" {
		return runVariance(ctx, args[1:], w)
	}
	if len(args) > 0 && args[0] == "watch" {
		return runWatch(ctx, args[1:], w)
	}

	fs := flag.NewFlagSet("varbench", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "reduced experiment budget")
	tasks := fs.String("tasks", "", "comma-separated case studies (default all)")
	seed := fs.Uint64("seed", 1, "base seed")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: varbench <experiment> [flags]")
		fmt.Fprintln(fs.Output(), "       varbench compare -a scoresA.csv -b scoresB.csv [flags]")
		fmt.Fprintln(fs.Output(), "       varbench variance [-task name] [-sources spec] [flags]")
		fmt.Fprintln(fs.Output(), "       varbench watch -file scores.csv [-follow] [flags]")
		fmt.Fprintln(fs.Output(), "experiments: fig1 fig2 fig3 fig5 (alias figH4) figH5 fig6 figC1 figF2 figG3 figI6 table8 appendixC spaces env all")
		fs.PrintDefaults()
	}
	if len(args) == 0 {
		fs.Usage()
		return fmt.Errorf("missing experiment name")
	}
	name := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}

	budget := experiments.Full()
	if *quick {
		budget = experiments.Quick()
	}
	var taskNames []string
	if *tasks != "" {
		taskNames = strings.Split(*tasks, ",")
	}
	studies, err := experiments.Studies(taskNames)
	if err != nil {
		return err
	}

	start := time.Now()
	defer func() {
		fmt.Fprintf(w, "\n[%s completed in %v]\n", name, time.Since(start).Round(time.Millisecond))
	}()

	switch name {
	case "fig1":
		return runFig1(w, studies, budget, *seed)
	case "fig2":
		return runFig2(w, studies, budget, *seed)
	case "fig3":
		return runFig3(w, studies, budget, *seed)
	case "fig5", "figH4":
		return runFig5(w, studies, budget, *seed, false)
	case "figH5":
		return runFig5(w, studies, budget, *seed, true)
	case "fig6":
		return runFig6(w, studies, budget, *seed)
	case "figC1":
		return experiments.FigC1(0.05, 0.05).Render(w)
	case "figF2":
		res, err := experiments.FigF2(studies, budget, *seed)
		if err != nil {
			return err
		}
		reportIssues(w, "figF2", res.CheckShape())
		return res.Render(w)
	case "figG3":
		res, err := experiments.FigG3(studies, budget, *seed)
		if err != nil {
			return err
		}
		if err := res.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
		if err := res.RenderHistograms(w); err != nil {
			return err
		}
		fmt.Fprintf(w, "share of distributions consistent with normality: %.2f\n", res.NormalShare())
		return nil
	case "figI6":
		res, err := experiments.FigI6(experiments.DefaultModelStats(), budget, *seed)
		if err != nil {
			return err
		}
		reportIssues(w, "figI6", res.CheckShape())
		return res.Render(w)
	case "table8":
		res, err := experiments.Table8(*seed)
		if err != nil {
			return err
		}
		reportIssues(w, "table8", res.CheckShape())
		return res.Render(w)
	case "appendixC":
		res, err := experiments.AppendixC(0.75, *seed)
		if err != nil {
			return err
		}
		return res.Render(w)
	case "spaces":
		return experiments.RenderSpaces(w, studies)
	case "env":
		return experiments.RenderEnv(w)
	case "all":
		for _, sub := range []string{"env", "spaces", "fig1", "fig2", "fig3", "fig5",
			"figH5", "fig6", "figC1", "figF2", "figG3", "figI6", "table8", "appendixC"} {
			fmt.Fprintf(w, "\n===== %s =====\n", sub)
			rebuilt := append([]string{sub}, args[1:]...)
			if err := run(ctx, rebuilt, w); err != nil {
				return fmt.Errorf("%s: %w", sub, err)
			}
		}
		return nil
	default:
		fs.Usage()
		return fmt.Errorf("unknown experiment %q", name)
	}
}

func runFig1(w io.Writer, studies []*casestudy.Study, b experiments.Budget, seed uint64) error {
	res, err := experiments.Fig1(studies, b, seed)
	if err != nil {
		return err
	}
	reportIssues(w, "fig1", res.CheckShape())
	return res.Render(w)
}

func runFig2(w io.Writer, studies []*casestudy.Study, b experiments.Budget, seed uint64) error {
	// Figure 2 only concerns the classification tasks with accuracy
	// metrics; filter the segmentation and regression studies out.
	var cls []*casestudy.Study
	for _, s := range studies {
		switch s.Name() {
		case "pascalvoc-resnet", "mhc-mlp":
		default:
			cls = append(cls, s)
		}
	}
	res, err := experiments.Fig2(cls, b, seed)
	if err != nil {
		return err
	}
	return res.Render(w)
}

func runFig3(w io.Writer, studies []*casestudy.Study, b experiments.Budget, seed uint64) error {
	// Measure the data-split σ (in accuracy points) of the two tasks with
	// embedded SOTA timelines.
	sigmas := map[string]float64{}
	for _, want := range []struct{ study, timeline string }{
		{"cifar10-vgg11", "cifar10"},
		{"sst2-bert", "sst2"},
	} {
		s, err := casestudy.ByName(want.study, experiments.StructSeed)
		if err != nil {
			return err
		}
		m, err := estimator.SourceMeasures(s, s.Defaults(), xrand.VarDataSplit,
			b.SeedsPerSource, seed)
		if err != nil {
			return err
		}
		sigmas[want.timeline] = 100 * stats.Std(m)
		fmt.Fprintf(w, "measured σ(%s) = %.3f%% accuracy\n", want.study, sigmas[want.timeline])
	}
	res, err := experiments.Fig3(sigmas, 0.05)
	if err != nil {
		return err
	}
	return res.Render(w)
}

func runFig5(w io.Writer, studies []*casestudy.Study, b experiments.Budget, seed uint64, h5 bool) error {
	res, err := experiments.Fig5(studies, b, seed)
	if err != nil {
		return err
	}
	reportIssues(w, "fig5", res.CheckShape())
	if h5 {
		return res.RenderH5(w)
	}
	return res.Render(w)
}

func runFig6(w io.Writer, studies []*casestudy.Study, b experiments.Budget, seed uint64) error {
	// Derive the simulation models from a fig5-style measurement on the
	// first selected study, then run the detection-rate sweep.
	sub := studies[:1]
	fmt.Fprintf(w, "deriving simulation model from %s ...\n", sub[0].Name())
	f5, err := experiments.Fig5(sub, b, seed)
	if err != nil {
		return err
	}
	sigma2, biasVar, withinVar := f5.Tasks[0].SimulationModel()
	ms := experiments.ModelStats{
		Task: sub[0].Name(), Sigma2: sigma2, BiasVar: biasVar, WithinVar: withinVar,
	}
	fmt.Fprintf(w, "σ²=%.3g biasVar=%.3g withinVar=%.3g\n", sigma2, biasVar, withinVar)
	res, err := experiments.Fig6(ms, b, seed)
	if err != nil {
		return err
	}
	reportIssues(w, "fig6", res.CheckShape())
	return res.Render(w)
}

func reportIssues(w io.Writer, name string, issues []string) {
	for _, i := range issues {
		fmt.Fprintf(w, "[%s shape warning] %s\n", name, i)
	}
}
