package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"varbench"
)

// runWatch implements the `varbench watch` subcommand: the incremental
// analysis engine over a growing score file. Each line is one paired trial
// — `a,b` CSV or `{"a": .., "b": ..}` JSONL — and every batch of new lines
// is folded into the resumable weighted-bootstrap state in O(K × new)
// work, so the live conclusion is always current without ever re-reading
// the history. With -follow the command tails the file like `tail -f`;
// with -store the analysis snapshot persists across interrupts, and a
// rerun replays the already-consumed prefix without recomputing it.
func runWatch(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("varbench watch", flag.ContinueOnError)
	file := fs.String("file", "", "score file to watch: a,b CSV or {\"a\":..,\"b\":..} JSONL lines (required)")
	follow := fs.Bool("follow", false, "keep tailing after EOF, analyzing lines as they are appended")
	every := fs.Int("every", 0, "render an interim conclusion every N new pairs (0: only the final one)")
	poll := fs.Duration("poll", 500*time.Millisecond, "poll interval while following")
	gamma := fs.Float64("gamma", varbench.DefaultGamma, "meaningfulness threshold for P(A>B)")
	confidence := fs.Float64("confidence", varbench.DefaultConfidence, "bootstrap CI confidence level")
	bootstrap := fs.Int("bootstrap", varbench.DefaultBootstrap, "bootstrap resamples")
	seed := fs.Uint64("seed", 1, "bootstrap seed")
	id := fs.String("id", "", "pipeline ID naming this stream in the store (required with -store)")
	storeDir := fs.String("store", "", "result-store DSN (jsonl:DIR, mem:, seglog:DIR; a bare directory means jsonl): the analysis snapshot is flushed there, and an interrupted watch resumes without recomputation")
	waitLock := fs.Duration("wait-lock", 0, "wait up to this long for another process to release the store lock instead of failing immediately (0: fail immediately)")
	format := fs.String("format", "text", "output format: text, json or csv")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: varbench watch -file scores.csv [-follow] [flags]")
		fmt.Fprintln(fs.Output(), "score lines: `a,b` CSV or `{\"a\": 0.91, \"b\": 0.87}` JSONL, one paired trial per line")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *file == "" {
		fs.Usage()
		return fmt.Errorf("watch needs a -file to tail")
	}
	if *storeDir != "" && *id == "" {
		return fmt.Errorf("-store needs -id to name the stream's snapshot")
	}
	var ren varbench.Renderer
	switch *format {
	case "text":
		ren = varbench.TextRenderer{}
	case "json":
		ren = varbench.JSONRenderer{Indent: true}
	case "csv":
		ren = varbench.CSVRenderer{}
	default:
		return fmt.Errorf("unknown format %q (want text, json or csv)", *format)
	}

	opts := []varbench.Option{
		varbench.WithGamma(*gamma),
		varbench.WithConfidence(*confidence),
		varbench.WithBootstrap(*bootstrap),
		varbench.WithSeed(*seed),
	}
	if *storeDir != "" {
		st, err := openStore(ctx, *storeDir, *waitLock)
		if err != nil {
			return err
		}
		defer st.Close()
		opts = append(opts, varbench.WithStore(st), varbench.WithPipelineID(*id))
	}
	stream, err := varbench.NewStream(opts...)
	if err != nil {
		return err
	}
	defer stream.Close()

	f, err := os.Open(*file)
	if err != nil {
		return err
	}
	defer f.Close()

	var (
		tailer   varbench.LineTailer
		batchA   []float64
		batchB   []float64
		badLines int
		rendered int // pair count at the last interim render
		buf      = make([]byte, 64*1024)
	)
	emit := func(line []byte) error {
		a, b, ok, err := varbench.ParseScorePair(line)
		if err != nil {
			badLines++
			fmt.Fprintf(os.Stderr, "varbench: %s: skipping %v\n", *file, err)
			return nil
		}
		if ok {
			batchA = append(batchA, a)
			batchB = append(batchB, b)
		}
		return nil
	}
	// flush folds the batched pairs into the stream and renders an interim
	// conclusion when -every is due.
	flush := func() error {
		if len(batchA) == 0 {
			return nil
		}
		res, err := stream.Extend(batchA, batchB)
		batchA, batchB = batchA[:0], batchB[:0]
		if err != nil {
			return err
		}
		if res != nil && *every > 0 && stream.N() >= rendered+*every {
			rendered = stream.N()
			fmt.Fprintf(w, "--- after %d pairs ---\n", stream.N())
			if err := res.Render(w, ren); err != nil {
				return err
			}
		}
		return nil
	}
	// final renders the conclusion over everything consumed, settling a
	// stale snapshot if the persisted state ran ahead of this file. The
	// malformed-line count is part of the rendered summary — a conclusion
	// that silently dropped input lines is not the conclusion it claims to
	// be — for the text format; JSON/CSV output must stay machine-parseable,
	// so those formats keep the count on stderr only.
	final := func() error {
		if stream.N() < 2 {
			return fmt.Errorf("%s: %d score pairs is not enough to analyze (want ≥ 2)", *file, stream.N())
		}
		res, err := stream.Result()
		if err != nil {
			return err
		}
		if err := res.Render(w, ren); err != nil {
			return err
		}
		if badLines > 0 && *format == "text" {
			if _, err := fmt.Fprintf(w, "skipped: %d malformed line(s) — not part of the analysis\n", badLines); err != nil {
				return err
			}
		}
		return nil
	}

	for {
		n, readErr := f.Read(buf)
		if n > 0 {
			if err := tailer.Feed(buf[:n], emit); err != nil {
				return err
			}
			if err := flush(); err != nil {
				return err
			}
		}
		if readErr == io.EOF {
			if !*follow {
				break
			}
			// Tail mode: wait for more bytes, or for the interrupt. On
			// SIGINT/SIGTERM the snapshot is flushed so a rerun resumes
			// exactly here, and the context error propagates to main for
			// the conventional 128+signum exit code.
			select {
			case <-ctx.Done():
				if err := stream.Flush(); err != nil {
					return err
				}
				if stream.N() >= 2 {
					if err := final(); err != nil {
						return err
					}
				}
				fmt.Fprintf(os.Stderr, "varbench: watch interrupted after %d pairs — snapshot flushed; rerun to resume\n", stream.N())
				return ctx.Err()
			case <-time.After(*poll):
			}
			continue
		}
		if readErr != nil {
			return fmt.Errorf("%s: %w", *file, readErr)
		}
	}

	// End of a bounded file: a last line without a trailing newline still
	// counts.
	if rem := tailer.Remainder(); len(rem) > 0 {
		if err := emit(rem); err != nil {
			return err
		}
		if err := flush(); err != nil {
			return err
		}
	}
	if badLines > 0 {
		fmt.Fprintf(os.Stderr, "varbench: %s: %d malformed line(s) skipped\n", *file, badLines)
	}
	if err := stream.Flush(); err != nil {
		return err
	}
	return final()
}
