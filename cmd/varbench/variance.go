package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"varbench"
	"varbench/internal/casestudy"
	"varbench/internal/estimator"
	"varbench/internal/experiments"
	"varbench/internal/pipeline"
	"varbench/internal/xrand"
)

// runVariance implements the `varbench variance` subcommand: a
// VarianceStudy over one case study's pipeline, decomposing the benchmark's
// variance across its sources of variation — the paper's Figure 1/Figure 5
// protocol served as a workload instead of a figure generator. The command
// probes each source with fixed default hyperparameters (the FixHOptEst
// regime, O(k+T) trainings); use the fig1/fig5 experiments for the full
// ideal-estimator studies.
func runVariance(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("varbench variance", flag.ContinueOnError)
	taskName := fs.String("task", "tiny", "case study: tiny, rte-bert, sst2-bert, mhc-mlp, pascalvoc-resnet or cifar10-vgg11")
	sources := fs.String("sources", "", "comma-separated ξO sources or sets (init, data, learning, weights-init, ...); default: the task's own ξO sources")
	k := fs.Int("k", 0, fmt.Sprintf("measures per source per realization (0 = default %d)", varbench.DefaultVarianceK))
	realizations := fs.Int("realizations", 0, fmt.Sprintf("independent realizations (0 = default %d)", varbench.DefaultVarianceRealizations))
	seed := fs.Uint64("seed", 1, "study seed")
	structSeed := fs.Uint64("structseed", experiments.StructSeed, "structural seed of the synthetic task distribution")
	par := fs.Int("p", 0, "worker-pool size (0 = GOMAXPROCS); results are identical at any setting")
	format := fs.String("format", "text", "output format: text, json or csv")
	curves := fs.Bool("curves", false, "render SE-vs-k curves (text format only)")
	storeDir := fs.String("store", "", "durable trial-store DSN (jsonl:DIR, mem:, seglog:DIR; a bare directory means jsonl): completed measures are appended as they finish and reused on rerun, so an interrupted study resumes where it stopped")
	waitLock := fs.Duration("wait-lock", 0, "wait up to this long for another process to release the store lock instead of failing immediately (0: fail immediately)")
	trialTimeout := fs.Duration("trial-timeout", 0, "per-trial deadline; a measure running longer fails with a timeout (0: no deadline)")
	maxRetries := fs.Int("max-retries", 0, "retries per failed trial on a deterministic seeded backoff (0: no retries)")
	failFast := fs.Bool("fail-fast", false, "abort on the first exhausted trial even when -max-retries or -trial-timeout are set; by default those flags quarantine failed trials instead, and the run exits with code 3 if any were quarantined")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: varbench variance [-task name] [-sources spec] [flags]")
		fmt.Fprintln(fs.Output(), "decomposes a benchmark's variance across its sources of variation")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}

	task, err := varianceTask(*taskName, *structSeed)
	if err != nil {
		return err
	}
	var probe []varbench.Source
	if *sources != "" {
		if probe, err = varbench.ParseSources(*sources); err != nil {
			return err
		}
		// Probing a source this pipeline never consumes would report
		// spurious zero variance as a measurement: the ξH streams are dead
		// because hyperparameters stay fixed, and each task only reads its
		// own ξO subset (e.g. no augmentation stream on the text tasks).
		// Reject both instead of misleading.
		applicable := make(map[varbench.Source]bool)
		var names []string
		for _, v := range task.Sources() {
			if v != estimator.NumericalNoise {
				applicable[varbench.Source(v)] = true
				names = append(names, string(v))
			}
		}
		for _, s := range probe {
			if s == varbench.VarHOpt || s == varbench.VarHOptSplit {
				return fmt.Errorf("source %q requires rerunning hyperparameter optimization per measure, which this command does not do (it fixes the task defaults, the FixHOptEst regime); probe ξO sources (e.g. -sources learning) and use `varbench fig1` for the ξH rows", s)
			}
			if !applicable[s] {
				return fmt.Errorf("task %s does not use source %q; its sources are %s",
					task.Name(), s, strings.Join(names, ", "))
			}
		}
	} else {
		// The task's own ξO rows of Figure 1, minus the numerical-noise
		// pseudo-source (it has no seed stream to vary).
		for _, v := range task.Sources() {
			if v != estimator.NumericalNoise {
				probe = append(probe, varbench.Source(v))
			}
		}
	}
	var ren varbench.VarianceRenderer
	switch *format {
	case "text":
		ren = varbench.VarianceTextRenderer{Curves: *curves}
	case "json":
		ren = varbench.VarianceJSONRenderer{Indent: true}
	case "csv":
		ren = varbench.VarianceCSVRenderer{}
	default:
		return fmt.Errorf("unknown format %q (want text, json or csv)", *format)
	}

	// One full pipeline run under the trial's per-source seed assignment:
	// probed sources get fresh seeds, everything else stays fixed.
	params := task.Defaults()
	runTrial := func(t varbench.Trial) (float64, error) {
		streams := xrand.NewStreams(0)
		for _, v := range xrand.AllVars() {
			streams.Reseed(v, t.SourceSeed(varbench.Source(v)))
		}
		return pipeline.RunWithParams(task, params, streams)
	}

	study := varbench.VarianceStudy{
		Name:         task.Name(),
		Pipeline:     runTrial,
		Sources:      probe,
		K:            *k,
		Realizations: *realizations,
		Seed:         *seed,
		Parallelism:  *par,
		TrialTimeout: *trialTimeout,
		FailFast:     *failFast,
	}
	if *maxRetries > 0 {
		study.Retry = varbench.RetryPolicy{MaxAttempts: *maxRetries + 1}
	}
	// An explicit -fail-fast=false alone opts into quarantine mode even with
	// no retries and no deadline; the zero Retry field would otherwise read
	// as "no resilience configured" and keep the fail-fast default.
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "fail-fast" && !*failFast && study.Retry.MaxAttempts == 0 {
			study.Retry = varbench.RetryPolicy{MaxAttempts: 1}
		}
	})
	if *storeDir != "" {
		st, err := openStore(ctx, *storeDir, *waitLock)
		if err != nil {
			return err
		}
		defer st.Close()
		study.Store = st
		// The store cannot hash pipeline code; identify this command's
		// pipeline by everything that changes what a trial measures: the
		// task and the structural seed its synthetic distribution (and
		// default hyperparameters) derive from.
		study.PipelineID = fmt.Sprintf("varbench-variance/task=%s/structseed=%d", task.Name(), *structSeed)
		defer func() {
			// The cache note goes to stderr so stdout stays byte-comparable
			// between cached and uncached runs.
			hits, misses := st.Stats()
			fmt.Fprintf(os.Stderr, "varbench: store %s: %d trial(s) reused, %d computed\n",
				*storeDir, hits, misses)
		}()
	}
	rep, err := study.Run(ctx)
	if err != nil {
		return err
	}
	if err := rep.Render(w, ren); err != nil {
		return err
	}
	if len(rep.Failures) > 0 {
		return fmt.Errorf("%d trial(s) quarantined — the report is partial; rerun with the same -store to retry them: %w",
			len(rep.Failures), errDegraded)
	}
	return nil
}

// varianceTask resolves a task name, including the fast "tiny" study the
// paper tasks are too expensive for in tests and demos.
func varianceTask(name string, structSeed uint64) (*casestudy.Study, error) {
	if name == "tiny" {
		return casestudy.Tiny(structSeed), nil
	}
	s, err := casestudy.ByName(name, structSeed)
	if err != nil {
		return nil, fmt.Errorf("%w (or \"tiny\")", err)
	}
	return s, nil
}
