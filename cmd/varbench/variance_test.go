package main

import (
	"bytes"
	"context"
	"encoding/json"
	"regexp"
	"strings"
	"testing"

	"varbench"
)

// varianceArgs are the fast golden settings: the tiny case study, small
// collection shape, fixed seed.
func varianceArgs(extra ...string) []string {
	return append([]string{"variance", "-task", "tiny", "-k", "3", "-realizations", "2", "-seed", "5"}, extra...)
}

// TestVarianceCommandDeterministicAcrossParallelism pins the golden
// requirement: byte-identical text and JSON output at Parallelism 1 and 4.
func TestVarianceCommandDeterministicAcrossParallelism(t *testing.T) {
	// elapsed_ns is wall-clock, the one legitimately varying JSON field.
	elapsed := regexp.MustCompile(`"elapsed_ns": \d+`)
	for _, format := range []string{"text", "json"} {
		var ref bytes.Buffer
		if err := run(context.Background(), varianceArgs("-p", "1", "-format", format), &ref); err != nil {
			t.Fatal(err)
		}
		var par bytes.Buffer
		if err := run(context.Background(), varianceArgs("-p", "4", "-format", format), &par); err != nil {
			t.Fatal(err)
		}
		refOut := elapsed.ReplaceAllString(ref.String(), `"elapsed_ns": 0`)
		parOut := elapsed.ReplaceAllString(par.String(), `"elapsed_ns": 0`)
		if refOut != parOut {
			t.Errorf("%s output differs between -p 1 and -p 4:\n%s\n---\n%s",
				format, refOut, parOut)
		}
	}
}

func TestVarianceCommandTextOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), varianceArgs("-p", "1"), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// The tiny study probes its own ξO sources (no numerical noise) plus
	// the joint row.
	for _, want := range []string{"tiny", "data-split", "data-augment", "data-order",
		"weights-init", "dropout", "joint", "share", "μ̂="} {
		if !strings.Contains(out, want) {
			t.Errorf("variance output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "numerical-noise") {
		t.Error("pseudo-source numerical-noise must not be probed")
	}
	if strings.Contains(out, "SE of mean vs k") {
		t.Error("curves rendered without -curves")
	}
	buf.Reset()
	if err := run(context.Background(), varianceArgs("-p", "1", "-curves"), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "SE of mean vs k") {
		t.Error("-curves did not render curves")
	}
}

func TestVarianceCommandJSONOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), varianceArgs("-p", "1", "-format", "json"), &buf); err != nil {
		t.Fatal(err)
	}
	var rep varbench.VarianceReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if rep.Name != "tiny" || rep.K != 3 || rep.Realizations != 2 || rep.Seed != 5 {
		t.Errorf("report header: %+v", rep)
	}
	if len(rep.Sources) != 5 {
		t.Errorf("want 5 probed sources for tiny, got %d", len(rep.Sources))
	}
	if rep.Joint.Source != varbench.JointLabel {
		t.Errorf("joint row: %+v", rep.Joint)
	}
}

func TestVarianceCommandSourcesFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), varianceArgs("-p", "1", "-sources", "init,data", "-format", "csv"), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Header + two probed sources + joint.
	if lines := strings.Count(strings.TrimSpace(out), "\n") + 1; lines != 4 {
		t.Errorf("want 4 CSV lines, got %d:\n%s", lines, out)
	}
	if !strings.Contains(out, string(varbench.VarInit)) || !strings.Contains(out, string(varbench.VarDataSplit)) {
		t.Errorf("csv output missing probed sources:\n%s", out)
	}
}

func TestVarianceCommandErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"unknown task", []string{"variance", "-task", "nope"}, "unknown study"},
		{"unknown format", varianceArgs("-format", "xml"), "unknown format"},
		{"bad sources", varianceArgs("-sources", "bogus"), "unknown source"},
		{"xi-h source", varianceArgs("-sources", "hopt"), "rerunning hyperparameter optimization"},
		{"xi-h via set", varianceArgs("-sources", "all"), "rerunning hyperparameter optimization"},
		{"inapplicable source", []string{"variance", "-task", "mhc-mlp", "-sources", "data-augment"},
			"does not use source"},
		{"bad k", varianceArgs("-k", "-3"), "K must not be negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			err := run(context.Background(), tc.args, &buf)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}
