package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// writeScoreFile renders n deterministic paired score lines.
func writeScoreFile(t *testing.T, path string, n int) {
	t.Helper()
	var buf bytes.Buffer
	buf.WriteString("# synthetic paired scores\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&buf, "0.%02d,0.%02d\n", 80+i%15, 60+(i*7)%20)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestWatchCommand: a bounded (non-follow) watch over a CSV score file
// renders the same conclusion as `varbench compare` over per-line score
// columns would — and the report is deterministic across reruns.
func TestWatchCommand(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "scores.csv")
	writeScoreFile(t, file, 12)

	var first, second bytes.Buffer
	args := []string{"watch", "-file", file, "-seed", "3", "-gamma", "0.6"}
	if err := run(context.Background(), args, &first); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), args, &second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Errorf("watch reruns differ:\n%s\n---\n%s", first.String(), second.String())
	}
	for _, want := range []string{"P(A>B)", "conclusion"} {
		if !strings.Contains(strings.ToLower(first.String()), strings.ToLower(want)) {
			t.Errorf("watch report lacks %q:\n%s", want, first.String())
		}
	}

	// JSONL input with the same values concludes identically.
	jsonl := filepath.Join(dir, "scores.jsonl")
	var buf bytes.Buffer
	for i := 0; i < 12; i++ {
		fmt.Fprintf(&buf, "{\"a\": 0.%02d, \"b\": 0.%02d}\n", 80+i%15, 60+(i*7)%20)
	}
	if err := os.WriteFile(jsonl, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var fromJSON bytes.Buffer
	if err := run(context.Background(), []string{"watch", "-file", jsonl, "-seed", "3", "-gamma", "0.6"}, &fromJSON); err != nil {
		t.Fatal(err)
	}
	if fromJSON.String() != first.String() {
		t.Errorf("JSONL watch differs from CSV watch:\n%s\n---\n%s", fromJSON.String(), first.String())
	}
}

// TestWatchCommandErrors pins the flag validation and the too-few-pairs
// failure.
func TestWatchCommandErrors(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run(context.Background(), []string{"watch"}, &out); err == nil {
		t.Error("watch without -file accepted")
	}
	if err := run(context.Background(), []string{"watch", "-file", "x", "-store", dir}, &out); err == nil ||
		!strings.Contains(err.Error(), "-id") {
		t.Errorf("watch -store without -id: %v", err)
	}
	one := filepath.Join(dir, "one.csv")
	if err := os.WriteFile(one, []byte("0.5,0.4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"watch", "-file", one}, &out); err == nil ||
		!strings.Contains(err.Error(), "not enough") {
		t.Errorf("1-pair watch: %v", err)
	}
	if err := run(context.Background(), []string{"watch", "-file", one, "-format", "bogus"}, &out); err == nil {
		t.Error("bogus format accepted")
	}
}

// TestWatchCommandFollowInterrupt: a -follow watch with -store, canceled
// while tailing, flushes its snapshot and reports context.Canceled (main
// maps that to exit 130); the resumed bounded run renders a report
// byte-identical to an uninterrupted bounded run.
func TestWatchCommandFollowInterrupt(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "scores.csv")
	writeScoreFile(t, file, 10)
	storeDir := filepath.Join(dir, "store")

	var clean bytes.Buffer
	base := []string{"watch", "-file", file, "-seed", "7"}
	if err := run(context.Background(), base, &clean); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	withStore := append(base[:len(base):len(base)], "-store", storeDir, "-id", "ci")
	followArgs := append(withStore[:len(withStore):len(withStore)], "-follow", "-poll", "10ms")
	done := make(chan error, 1)
	var followed bytes.Buffer
	go func() { done <- run(ctx, followArgs, &followed) }()
	time.Sleep(200 * time.Millisecond) // let the tail consume the file
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("interrupted follow: want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follow watch did not exit after cancel")
	}
	// The interrupt already rendered the conclusion over the pairs so far.
	if followed.String() != clean.String() {
		t.Errorf("interrupted follow report differs:\n%s\n---\n%s", followed.String(), clean.String())
	}

	// Resume: the bounded rerun replays the hash-verified prefix from the
	// flushed snapshot and must render the identical report.
	var resumed bytes.Buffer
	if err := run(context.Background(), withStore, &resumed); err != nil {
		t.Fatal(err)
	}
	if resumed.String() != clean.String() {
		t.Errorf("resumed watch differs from uninterrupted run:\n%s\n---\n%s", resumed.String(), clean.String())
	}
}
