package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestRunRequiresExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), nil, &buf); err == nil {
		t.Fatal("missing experiment should error")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"figZZ"}, &buf); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

func TestRunUnknownTask(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"fig1", "-quick", "-tasks", "nope"}, &buf); err == nil {
		t.Fatal("unknown task should error")
	}
}

func TestRunFigC1(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"figC1"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "N=29") {
		t.Errorf("figC1 output missing recommendation: %s", out)
	}
	if !strings.Contains(out, "completed in") {
		t.Error("missing timing footer")
	}
}

func TestRunSpacesAndEnv(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"spaces", "-tasks", "mhc-mlp"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "hidden") {
		t.Error("spaces output missing hyperparameter")
	}
	buf.Reset()
	if err := run(context.Background(), []string{"env"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "go version") {
		t.Error("env output missing go version")
	}
}

func TestRunFigI6Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"figI6", "-quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "prob-outperform") {
		t.Error("figI6 output missing criterion column")
	}
}

func TestRunTable8(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"table8", "-quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, model := range []string{"MLP-MHC", "NetMHCpan4-like", "MHCflurry-like"} {
		if !strings.Contains(out, model) {
			t.Errorf("table8 missing %s", model)
		}
	}
}
