package main

import (
	"bytes"
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"varbench"
	"varbench/store"
)

// runCompare implements the `varbench compare` subcommand: the recommended
// statistical protocol on pre-collected score files, concluding with the
// three-zone decision. Score files are CSV with either one score per line
// (single benchmark) or dataset,score pairs (multi-dataset comparison with
// a Bonferroni-adjusted threshold); a non-numeric first line is treated as
// a header and skipped.
func runCompare(ctx context.Context, args []string, w io.Writer) error {
	_ = ctx // reserved: the analysis is CPU-bound and completes in one shot
	fs := flag.NewFlagSet("varbench compare", flag.ContinueOnError)
	fileA := fs.String("a", "", "CSV scores of algorithm A (required)")
	fileB := fs.String("b", "", "CSV scores of algorithm B (required)")
	gamma := fs.Float64("gamma", varbench.DefaultGamma, "meaningfulness threshold for P(A>B)")
	confidence := fs.Float64("confidence", varbench.DefaultConfidence, "bootstrap CI confidence level")
	bootstrap := fs.Int("bootstrap", varbench.DefaultBootstrap, "bootstrap resamples")
	seed := fs.Uint64("seed", 1, "bootstrap seed")
	unpaired := fs.Bool("unpaired", false, "scores were not collected under shared seeds (single dataset only)")
	format := fs.String("format", "text", "output format: text, json or csv")
	storeDir := fs.String("store", "", "result-store DSN (jsonl:DIR, mem:, seglog:DIR; a bare directory means jsonl): the analysis is cached by a fingerprint of the score files and protocol flags, and reused verbatim when nothing changed")
	waitLock := fs.Duration("wait-lock", 0, "wait up to this long for another process to release the store lock instead of failing immediately (0: fail immediately)")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: varbench compare -a scoresA.csv -b scoresB.csv [flags]")
		fmt.Fprintln(fs.Output(), "score files: one score per line, or dataset,score rows for multi-dataset runs")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *fileA == "" || *fileB == "" {
		fs.Usage()
		return fmt.Errorf("compare needs both -a and -b score files")
	}
	var ren varbench.Renderer
	switch *format {
	case "text":
		ren = varbench.TextRenderer{}
	case "json":
		ren = varbench.JSONRenderer{Indent: true}
	case "csv":
		ren = varbench.CSVRenderer{}
	default:
		return fmt.Errorf("unknown format %q (want text, json or csv)", *format)
	}

	scoresA, rawA, err := readScores(*fileA)
	if err != nil {
		return err
	}
	scoresB, rawB, err := readScores(*fileB)
	if err != nil {
		return err
	}
	opts := []varbench.Option{
		varbench.WithGamma(*gamma),
		varbench.WithConfidence(*confidence),
		varbench.WithBootstrap(*bootstrap),
		varbench.WithSeed(*seed),
	}

	// With -store, the complete Result is cached under a fingerprint of
	// every input that determines it — the raw score files and the protocol
	// flags (-format is deliberately excluded: one cached analysis renders
	// as text, JSON or CSV alike). An unchanged rerun decodes the cached
	// result instead of redoing the bootstrap; any input change misses the
	// fingerprint and recomputes.
	const compareKey = "varbench-compare/analysis"
	var st store.Backend
	var resultFP string
	if *storeDir != "" {
		if st, err = openStore(ctx, *storeDir, *waitLock); err != nil {
			return err
		}
		defer st.Close()
		resultFP = store.Fingerprint(
			"varbench-compare/v1",
			string(rawA), string(rawB),
			fmt.Sprintf("gamma=%v/confidence=%v/bootstrap=%d/seed=%d/unpaired=%t",
				*gamma, *confidence, *bootstrap, *seed, *unpaired),
		)
		var cached varbench.Result
		ok, err := st.GetJSON(compareKey, resultFP, &cached)
		if err != nil {
			return err
		}
		if ok {
			fmt.Fprintf(os.Stderr, "varbench: store %s: analysis reused\n", *storeDir)
			return cached.Render(w, ren)
		}
	}

	var res *varbench.Result
	if scoresA.named() || scoresB.named() {
		// Any named dataset goes through the dataset-aware path, so names
		// are cross-checked between the files and kept in the report. A
		// single named dataset gets no γ adjustment.
		if *unpaired {
			return fmt.Errorf("-unpaired is only supported for unnamed single-dataset score files")
		}
		var multi []varbench.DatasetScores
		for _, name := range scoresA.datasets {
			b, ok := scoresB.byDataset[name]
			if !ok {
				if name == "" {
					return fmt.Errorf("%s has unnamed scores but %s uses dataset labels", *fileA, *fileB)
				}
				return fmt.Errorf("dataset %q present in %s but missing from %s", name, *fileA, *fileB)
			}
			multi = append(multi, varbench.DatasetScores{
				Name:    name,
				ScoresA: scoresA.byDataset[name],
				ScoresB: b,
			})
		}
		if len(scoresB.datasets) != len(scoresA.datasets) {
			return fmt.Errorf("%s and %s disagree on the dataset list", *fileA, *fileB)
		}
		res, err = varbench.AnalyzeDatasets(multi, opts...)
	} else {
		if *unpaired {
			opts = append(opts, varbench.WithUnpaired())
		}
		res, err = varbench.Analyze(scoresA.all(), scoresB.all(), opts...)
	}
	if err != nil {
		return err
	}
	if st != nil {
		if err := st.PutJSON(compareKey, resultFP, res); err != nil {
			return err
		}
		if err := st.Flush(); err != nil {
			return err
		}
	}
	return res.Render(w, ren)
}

// scoreFile holds the parsed contents of one score CSV, preserving dataset
// order of first appearance.
type scoreFile struct {
	datasets  []string
	byDataset map[string][]float64
}

// named reports whether the file carries dataset labels.
func (s *scoreFile) named() bool {
	return len(s.datasets) > 1 || s.datasets[0] != ""
}

func (s *scoreFile) all() []float64 {
	var out []float64
	for _, name := range s.datasets {
		out = append(out, s.byDataset[name]...)
	}
	return out
}

func (s *scoreFile) add(dataset string, v float64) {
	if s.byDataset == nil {
		s.byDataset = make(map[string][]float64)
	}
	if _, ok := s.byDataset[dataset]; !ok {
		s.datasets = append(s.datasets, dataset)
	}
	s.byDataset[dataset] = append(s.byDataset[dataset], v)
}

// readScores reads and parses one score CSV. The raw bytes are returned
// alongside the parsed scores so the -store fingerprint can hash exactly
// what was analyzed: re-reading the file for hashing would open a window
// in which a concurrently rewritten file poisons the cache (analysis of
// the old bytes stored under the new bytes' fingerprint).
func readScores(path string) (*scoreFile, []byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	cr := csv.NewReader(bytes.NewReader(data))
	cr.FieldsPerRecord = -1
	records, err := cr.ReadAll()
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	out := &scoreFile{}
	for i, rec := range records {
		var dataset, field string
		switch len(rec) {
		case 1:
			field = rec[0]
		case 2:
			dataset, field = rec[0], rec[1]
		default:
			return nil, nil, fmt.Errorf("%s:%d: want `score` or `dataset,score`, got %d fields", path, i+1, len(rec))
		}
		v, err := strconv.ParseFloat(field, 64)
		if err != nil {
			// Only a digit-free first line reads as a header; a malformed
			// first score (e.g. `O.85`) must error, not be skipped.
			if i == 0 && !strings.ContainsAny(field, "0123456789") {
				continue
			}
			return nil, nil, fmt.Errorf("%s:%d: bad score %q", path, i+1, field)
		}
		// NaN/Inf (failed runs in exported logs) would silently bias
		// P(A>B) and break JSON output; reject them up front.
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, nil, fmt.Errorf("%s:%d: non-finite score %q", path, i+1, field)
		}
		out.add(dataset, v)
	}
	if len(out.datasets) == 0 {
		return nil, nil, fmt.Errorf("%s: no scores found", path)
	}
	return out, data, nil
}
