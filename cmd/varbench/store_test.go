package main

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"varbench/store"
)

// TestVarianceCommandStoreResume: with -store, an interrupted `varbench
// variance` run leaves a trial log a rerun resumes from, and the resumed
// report is byte-identical to a storeless run.
func TestVarianceCommandStoreResume(t *testing.T) {
	dir := t.TempDir()

	var clean bytes.Buffer
	if err := run(context.Background(), varianceArgs("-p", "2"), &clean); err != nil {
		t.Fatal(err)
	}

	// An already-canceled context models SIGINT landing before any trial:
	// the run must fail with the context error (main translates it into
	// the "interrupted" message and exit 130), not render a report.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var interrupted bytes.Buffer
	err := run(ctx, varianceArgs("-p", "2", "-store", dir), &interrupted)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled run: want context.Canceled, got %v", err)
	}
	if interrupted.Len() != 0 {
		t.Errorf("canceled run must not render a report, got:\n%s", interrupted.String())
	}

	// First real run populates the store; the rerun is served from it.
	// Both must match the storeless report byte for byte.
	var first, second bytes.Buffer
	if err := run(context.Background(), varianceArgs("-p", "2", "-store", dir), &first); err != nil {
		t.Fatal(err)
	}
	if first.String() != clean.String() {
		t.Errorf("-store run differs from storeless run:\n%s\n---\n%s", first.String(), clean.String())
	}
	if err := run(context.Background(), varianceArgs("-p", "2", "-store", dir), &second); err != nil {
		t.Fatal(err)
	}
	if second.String() != clean.String() {
		t.Errorf("cached rerun differs from storeless run:\n%s\n---\n%s", second.String(), clean.String())
	}
	if _, err := os.Stat(filepath.Join(dir, store.LogName)); err != nil {
		t.Errorf("store log missing: %v", err)
	}
}

// TestVarianceCommandStoreIsolatesSpecs: changing the structural seed (a
// different synthetic task distribution, same task name) must miss the
// cache — the pipeline identity is part of the spec fingerprint.
func TestVarianceCommandStoreIsolatesSpecs(t *testing.T) {
	dir := t.TempDir()
	var a, b bytes.Buffer
	if err := run(context.Background(), varianceArgs("-p", "1", "-store", dir), &a); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), varianceArgs("-p", "1", "-store", dir, "-structseed", "99"), &b); err != nil {
		t.Fatal(err)
	}
	if a.String() == b.String() {
		t.Error("different structseed produced identical reports — stale cache served?")
	}
}

// TestCompareCommandStoreReuse: with -store, an unchanged `varbench
// compare` rerun serves the cached analysis with byte-identical output,
// and any input change recomputes.
func TestCompareCommandStoreReuse(t *testing.T) {
	dir := t.TempDir()
	tmp := t.TempDir()
	fa := filepath.Join(tmp, "a.csv")
	fb := filepath.Join(tmp, "b.csv")
	if err := os.WriteFile(fa, []byte("0.91\n0.93\n0.90\n0.92\n0.94\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(fb, []byte("0.85\n0.86\n0.84\n0.83\n0.87\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	args := []string{"compare", "-a", fa, "-b", fb, "-store", dir, "-format", "json"}

	var fresh, cached bytes.Buffer
	if err := run(context.Background(), args, &fresh); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), args, &cached); err != nil {
		t.Fatal(err)
	}
	if fresh.String() != cached.String() {
		t.Errorf("cached compare differs:\n%s\n---\n%s", fresh.String(), cached.String())
	}
	if !strings.Contains(fresh.String(), `"conclusion"`) {
		t.Errorf("missing conclusion in output:\n%s", fresh.String())
	}

	// One cached analysis renders in every format.
	var asText bytes.Buffer
	textArgs := []string{"compare", "-a", fa, "-b", fb, "-store", dir}
	if err := run(context.Background(), textArgs, &asText); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(asText.String(), "P(A>B)") {
		t.Errorf("text render of cached analysis:\n%s", asText.String())
	}

	// A different protocol flag misses the fingerprint and recomputes.
	var other bytes.Buffer
	if err := run(context.Background(), append(args, "-gamma", "0.6"), &other); err != nil {
		t.Fatal(err)
	}
	if other.String() == fresh.String() {
		t.Error("different -gamma served the old cached analysis")
	}
}
