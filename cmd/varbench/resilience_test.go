package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"varbench/store"
)

// TestVarianceQuarantineExitsDegraded runs the variance subcommand over a
// fault-injected store in quarantine mode: the report renders, the
// quarantine summary is visible, and the returned error classifies as
// errDegraded (exit code 3 in main).
func TestVarianceQuarantineExitsDegraded(t *testing.T) {
	dir := t.TempDir()
	dsn := "faultinject:put@2-4:jsonl:" + dir
	var buf bytes.Buffer
	err := run(context.Background(), []string{"variance",
		"-task", "tiny", "-k", "3", "-realizations", "4",
		"-max-retries", "0", "-fail-fast=false",
		"-store", dsn}, &buf)
	if !errors.Is(err, errDegraded) {
		t.Fatalf("err = %v, want errDegraded", err)
	}
	out := buf.String()
	if !strings.Contains(out, "quarantined:") {
		t.Fatalf("report lacks the quarantine summary:\n%s", out)
	}
	if !strings.Contains(out, "variance decomposition") {
		t.Fatalf("degraded run did not render the partial report:\n%s", out)
	}

	// Resuming over the same directory with a healthy store retries the
	// quarantined cells and matches the never-faulted run byte for byte.
	var resumed bytes.Buffer
	if err := run(context.Background(), []string{"variance",
		"-task", "tiny", "-k", "3", "-realizations", "4",
		"-store", "jsonl:" + dir}, &resumed); err != nil {
		t.Fatalf("resume: %v", err)
	}
	var clean bytes.Buffer
	if err := run(context.Background(), []string{"variance",
		"-task", "tiny", "-k", "3", "-realizations", "4"}, &clean); err != nil {
		t.Fatalf("clean run: %v", err)
	}
	if resumed.String() != clean.String() {
		t.Fatalf("resumed run differs from clean run:\n--- resumed ---\n%s--- clean ---\n%s",
			resumed.String(), clean.String())
	}
}

// TestVarianceResilienceFlagsParse exercises the flag surface without
// needing faults: retries and a generous deadline over a healthy pipeline
// must reproduce the clean report exactly.
func TestVarianceResilienceFlagsParse(t *testing.T) {
	var clean, guarded bytes.Buffer
	base := []string{"variance", "-task", "tiny", "-k", "3", "-realizations", "4"}
	if err := run(context.Background(), base, &clean); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), append(base,
		"-max-retries", "2", "-trial-timeout", "1m"), &guarded); err != nil {
		t.Fatal(err)
	}
	if clean.String() != guarded.String() {
		t.Fatalf("resilience flags perturbed a healthy run:\n--- guarded ---\n%s--- clean ---\n%s",
			guarded.String(), clean.String())
	}
}

// TestWaitLockRetriesUntilFree pins the -wait-lock behavior through the
// shared openStore helper: a held lock fails immediately without the flag,
// waits and succeeds with it, and times out with ErrLocked when the holder
// never lets go.
func TestWaitLockRetriesUntilFree(t *testing.T) {
	dir := t.TempDir()
	holder, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := openStore(context.Background(), "jsonl:"+dir, 0); !errors.Is(err, store.ErrLocked) {
		t.Fatalf("no wait: err = %v, want ErrLocked", err)
	}
	if _, err := openStore(context.Background(), "jsonl:"+dir, 150*time.Millisecond); !errors.Is(err, store.ErrLocked) {
		t.Fatalf("timed-out wait: err = %v, want ErrLocked", err)
	}

	// Release the lock shortly after the waiter starts; the wait must
	// outlive the holder and succeed.
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(100 * time.Millisecond)
		holder.Close()
	}()
	st, err := openStore(context.Background(), "jsonl:"+dir, 10*time.Second)
	<-done
	if err != nil {
		t.Fatalf("wait for released lock: %v", err)
	}
	st.Close()
}

// TestWatchReportsSkippedLines: malformed lines in the watched file are
// skipped, counted, and surfaced in the rendered text summary.
func TestWatchReportsSkippedLines(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "scores.csv")
	var content bytes.Buffer
	for i := 0; i < 10; i++ {
		fmt.Fprintf(&content, "0.%02d,0.%02d\n", 80+i%15, 60+(i*7)%20)
		if i%4 == 1 {
			// Digit-bearing garbage: a digit-free line would read as a
			// header and be skipped silently by design.
			content.WriteString("0.91,corrupted\n")
		}
	}
	if err := os.WriteFile(file, content.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"watch", "-file", file}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "skipped: 3 malformed line(s)") {
		t.Fatalf("summary lacks the malformed-line count:\n%s", out)
	}
	// JSON output must stay parseable: the count is stderr-only there.
	var jsonBuf bytes.Buffer
	if err := run(context.Background(), []string{"watch", "-file", file, "-format", "json"}, &jsonBuf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(jsonBuf.String(), "skipped:") {
		t.Fatalf("JSON output polluted by the text summary:\n%s", jsonBuf.String())
	}
}
