package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestVarianceCommandStoreDSN: the -store flag speaks DSNs — every backend
// scheme produces the byte-identical report, a seglog DSN leaves segment
// files a rerun resumes from, and a bare directory keeps meaning jsonl.
func TestVarianceCommandStoreDSN(t *testing.T) {
	var clean bytes.Buffer
	if err := run(context.Background(), varianceArgs("-p", "2"), &clean); err != nil {
		t.Fatal(err)
	}

	t.Run("seglog resumes", func(t *testing.T) {
		dir := t.TempDir()
		dsn := "seglog:" + dir
		var first, second bytes.Buffer
		if err := run(context.Background(), varianceArgs("-p", "2", "-store", dsn), &first); err != nil {
			t.Fatal(err)
		}
		if first.String() != clean.String() {
			t.Errorf("seglog run differs from storeless run:\n%s\n---\n%s", first.String(), clean.String())
		}
		segs, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
		if err != nil || len(segs) == 0 {
			t.Fatalf("no segment files written (%v, %v)", segs, err)
		}
		if err := run(context.Background(), varianceArgs("-p", "2", "-store", dsn), &second); err != nil {
			t.Fatal(err)
		}
		if second.String() != clean.String() {
			t.Errorf("seglog cached rerun differs from storeless run")
		}
	})

	t.Run("mem matches", func(t *testing.T) {
		var out bytes.Buffer
		if err := run(context.Background(), varianceArgs("-p", "2", "-store", "mem:"), &out); err != nil {
			t.Fatal(err)
		}
		if out.String() != clean.String() {
			t.Errorf("mem run differs from storeless run")
		}
	})

	t.Run("explicit jsonl scheme", func(t *testing.T) {
		dir := t.TempDir()
		var out bytes.Buffer
		if err := run(context.Background(), varianceArgs("-p", "2", "-store", "jsonl:"+dir), &out); err != nil {
			t.Fatal(err)
		}
		if out.String() != clean.String() {
			t.Errorf("jsonl: run differs from storeless run")
		}
		if m, _ := filepath.Glob(filepath.Join(dir, "trials.jsonl")); len(m) != 1 {
			t.Errorf("jsonl: scheme did not write trials.jsonl in %s", dir)
		}
	})

	t.Run("unknown scheme is actionable", func(t *testing.T) {
		var out bytes.Buffer
		err := run(context.Background(), varianceArgs("-p", "1", "-store", "bolt:"+t.TempDir()), &out)
		if err == nil {
			t.Fatal("unknown scheme must fail")
		}
		for _, want := range []string{"unknown scheme", "jsonl:DIR", "mem:", "seglog:DIR"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("error %q does not mention %q", err, want)
			}
		}
	})
}

// TestWatchCommandStoreDSN: watch accepts a seglog DSN and resumes its
// analysis snapshot from it.
func TestWatchCommandStoreDSN(t *testing.T) {
	tmp := t.TempDir()
	scores := filepath.Join(tmp, "scores.csv")
	if err := os.WriteFile(scores, []byte("0.91,0.85\n0.93,0.86\n0.90,0.84\n0.92,0.83\n0.94,0.87\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	dsn := "seglog:" + filepath.Join(tmp, "wstore")
	args := []string{"watch", "-file", scores, "-store", dsn, "-id", "dsn-test", "-format", "json"}
	var first, second bytes.Buffer
	if err := run(context.Background(), args, &first); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(first.String(), `"conclusion"`) {
		t.Fatalf("missing conclusion in output:\n%s", first.String())
	}
	segs, err := filepath.Glob(filepath.Join(tmp, "wstore", "seg-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("watch wrote no segment files (%v, %v)", segs, err)
	}
	if err := run(context.Background(), args, &second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Errorf("snapshot-resumed watch differs:\n%s\n---\n%s", first.String(), second.String())
	}
}
