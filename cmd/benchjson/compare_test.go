package main

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeReport marshals a Report into a temp file and returns its path.
func writeReport(t *testing.T, name string, rep Report) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func baselineReport() Report {
	return Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkPairedBootstrapK1000", Package: "varbench/internal/stats", Iterations: 100,
			Metrics: map[string]float64{"ns/op": 100000, "B/op": 4096, "allocs/op": 12}},
		{Name: "BenchmarkCollectionLazyTrials", Package: "varbench", Iterations: 100,
			Metrics: map[string]float64{"ns/op": 2000, "B/op": 512}},
	}}
}

func TestCompareNoRegression(t *testing.T) {
	old := writeReport(t, "old.json", baselineReport())
	// 10% slower: inside the 20% tolerance.
	rep := baselineReport()
	rep.Benchmarks[0].Metrics["ns/op"] = 110000
	newer := writeReport(t, "new.json", rep)
	var buf bytes.Buffer
	if err := compareFiles(old, newer, 0.20, "ns/op,B/op", false, &buf); err != nil {
		t.Fatalf("10%% drift should pass the 20%% gate: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "no regressions beyond 20%") {
		t.Errorf("missing pass summary:\n%s", buf.String())
	}
}

// TestCompareInjectedRegression pins the acceptance criterion: an injected
// >20% ns/op regression fails the gate.
func TestCompareInjectedRegression(t *testing.T) {
	old := writeReport(t, "old.json", baselineReport())
	rep := baselineReport()
	rep.Benchmarks[0].Metrics["ns/op"] = 125000 // +25%
	newer := writeReport(t, "new.json", rep)
	var buf bytes.Buffer
	err := compareFiles(old, newer, 0.20, "ns/op,B/op", false, &buf)
	if err == nil || !strings.Contains(err.Error(), "regressed beyond 20%") {
		t.Fatalf("25%% ns/op regression must fail the gate, got %v", err)
	}
	if !strings.Contains(buf.String(), "REGRESSION") ||
		!strings.Contains(buf.String(), "BenchmarkPairedBootstrapK1000") {
		t.Errorf("regression not reported:\n%s", buf.String())
	}
}

func TestCompareBOpRegression(t *testing.T) {
	old := writeReport(t, "old.json", baselineReport())
	rep := baselineReport()
	rep.Benchmarks[1].Metrics["B/op"] = 1024 // 2x allocations
	newer := writeReport(t, "new.json", rep)
	var buf bytes.Buffer
	if err := compareFiles(old, newer, 0.20, "ns/op,B/op", false, &buf); err == nil {
		t.Fatal("2x B/op regression must fail the gate")
	}
}

func TestCompareZeroBaselineAllocs(t *testing.T) {
	base := baselineReport()
	base.Benchmarks[1].Metrics["B/op"] = 0
	old := writeReport(t, "old.json", base)
	rep := baselineReport()
	rep.Benchmarks[1].Metrics["B/op"] = 16
	newer := writeReport(t, "new.json", rep)
	var buf bytes.Buffer
	if err := compareFiles(old, newer, 0.20, "ns/op,B/op", false, &buf); err == nil {
		t.Fatal("allocation-free baseline growing to 16 B/op must fail")
	}
}

func TestCompareDisjointBenchmarksTolerated(t *testing.T) {
	old := writeReport(t, "old.json", baselineReport())
	rep := baselineReport()
	// One benchmark retires, a new one appears: neither fails the gate.
	rep.Benchmarks[1] = Benchmark{Name: "BenchmarkNewThing", Package: "varbench",
		Iterations: 100, Metrics: map[string]float64{"ns/op": 1}}
	newer := writeReport(t, "new.json", rep)
	var buf bytes.Buffer
	if err := compareFiles(old, newer, 0.20, "ns/op,B/op", false, &buf); err != nil {
		t.Fatalf("disjoint benchmarks must not fail the gate: %v", err)
	}
	if !strings.Contains(buf.String(), "not compared") {
		t.Errorf("disjoint benchmarks should be reported:\n%s", buf.String())
	}
}

// TestCompareMetricsSelection: -metrics B/op ignores ns/op drift, the mode
// CI uses when the baseline was recorded on different hardware.
func TestCompareMetricsSelection(t *testing.T) {
	old := writeReport(t, "old.json", baselineReport())
	rep := baselineReport()
	rep.Benchmarks[0].Metrics["ns/op"] = 300000 // 3x slower on other hardware
	newer := writeReport(t, "new.json", rep)
	var buf bytes.Buffer
	if err := compareFiles(old, newer, 0.20, "B/op", false, &buf); err != nil {
		t.Fatalf("B/op-only gate must ignore ns/op drift: %v", err)
	}
	rep.Benchmarks[0].Metrics["B/op"] = 8192 // but 2x allocations still fail
	newer = writeReport(t, "new2.json", rep)
	buf.Reset()
	if err := compareFiles(old, newer, 0.20, "B/op", false, &buf); err == nil {
		t.Fatal("B/op-only gate must still catch B/op regressions")
	}
	if err := compareFiles(old, newer, 0.20, " , ", false, &buf); err == nil ||
		!strings.Contains(err.Error(), "empty -metrics") {
		t.Errorf("empty metrics spec must error, got %v", err)
	}
}

func TestCompareNoCommonBenchmarks(t *testing.T) {
	old := writeReport(t, "old.json", baselineReport())
	newer := writeReport(t, "new.json", Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkOther", Iterations: 1, Metrics: map[string]float64{"ns/op": 1}},
	}})
	var buf bytes.Buffer
	if err := compareFiles(old, newer, 0.20, "ns/op,B/op", false, &buf); err == nil ||
		!strings.Contains(err.Error(), "no common benchmarks") {
		t.Fatalf("empty intersection must error, got %v", err)
	}
}

func TestCompareBadInputs(t *testing.T) {
	old := writeReport(t, "old.json", baselineReport())
	var buf bytes.Buffer
	if err := compareFiles(old, filepath.Join(t.TempDir(), "missing.json"), 0.20, "ns/op,B/op", false, &buf); err == nil {
		t.Error("missing file must error")
	}
	if err := compareFiles(old, old, -0.1, "ns/op,B/op", false, &buf); err == nil ||
		!strings.Contains(err.Error(), "tolerance") {
		t.Errorf("negative tolerance must error, got %v", err)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := compareFiles(old, bad, 0.20, "ns/op,B/op", false, &buf); err == nil {
		t.Error("malformed JSON must error")
	}
}

func TestRunCompareFlagParsing(t *testing.T) {
	if err := run([]string{"-compare", "only-one.json"}); err == nil ||
		!strings.Contains(err.Error(), "exactly two files") {
		t.Errorf("one positional arg: %v", err)
	}
	if err := run([]string{"stray-arg"}); err == nil ||
		!strings.Contains(err.Error(), "unexpected arguments") {
		t.Errorf("stray conversion-mode arg: %v", err)
	}
}

// TestCompareAllowMissingBaseline: the CI first-run / expired-artifact
// cases — a missing, undecodable, or disjoint baseline skips the gate with
// a warning instead of red-Xing the PR, but only under the flag, and never
// for problems with the new (just-produced) file.
func TestCompareAllowMissingBaseline(t *testing.T) {
	newer := writeReport(t, "new.json", baselineReport())
	missing := filepath.Join(t.TempDir(), "missing.json")

	var buf bytes.Buffer
	if err := compareFiles(missing, newer, 0.20, "ns/op,B/op", true, &buf); err != nil {
		t.Fatalf("missing baseline with flag: want skip, got %v", err)
	}
	if !strings.Contains(buf.String(), "::warning::") || !strings.Contains(buf.String(), "skipping") {
		t.Errorf("skip must warn loudly:\n%s", buf.String())
	}

	garbage := filepath.Join(t.TempDir(), "garbage.json")
	if err := os.WriteFile(garbage, []byte("not json at {{{"), 0o644); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := compareFiles(garbage, newer, 0.20, "ns/op,B/op", true, &buf); err != nil {
		t.Fatalf("garbage baseline with flag: want skip, got %v", err)
	}
	if !strings.Contains(buf.String(), "::warning::") {
		t.Errorf("garbage skip must warn:\n%s", buf.String())
	}

	disjoint := writeReport(t, "disjoint.json", Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkRetired", Iterations: 1, Metrics: map[string]float64{"ns/op": 1}},
	}})
	buf.Reset()
	if err := compareFiles(disjoint, newer, 0.20, "ns/op,B/op", true, &buf); err != nil {
		t.Fatalf("disjoint baseline with flag: want skip, got %v", err)
	}
	if !strings.Contains(buf.String(), "::warning::") {
		t.Errorf("disjoint skip must warn:\n%s", buf.String())
	}

	// A broken NEW file is the run under test's own artifact: always fail.
	if err := compareFiles(newer, garbage, 0.20, "ns/op,B/op", true, &buf); err == nil {
		t.Error("garbage NEW file must fail even with -allow-missing-baseline")
	}
	if err := compareFiles(newer, missing, 0.20, "ns/op,B/op", true, &buf); err == nil {
		t.Error("missing NEW file must fail even with -allow-missing-baseline")
	}

	// Without the flag, the old strict behavior stands.
	if err := compareFiles(missing, newer, 0.20, "ns/op,B/op", false, &buf); err == nil {
		t.Error("missing baseline without flag must fail")
	}
}

// TestReportMarshalNaNMetric: a NaN custom metric (b.ReportMetric of a
// degenerate ratio) encodes as null instead of failing the document.
func TestReportMarshalNaNMetric(t *testing.T) {
	rep := Report{Benchmarks: []Benchmark{{
		Name: "BenchmarkDegenerate", Iterations: 1,
		Metrics: map[string]float64{"ns/op": 10, "ratio": math.NaN()},
	}}}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal with NaN metric: %v", err)
	}
	if !strings.Contains(string(data), `"ratio":null`) {
		t.Errorf("NaN metric must encode as null: %s", data)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if back.Benchmarks[0].Metrics["ns/op"] != 10 {
		t.Errorf("finite metric lost: %+v", back.Benchmarks[0])
	}
}

// TestCompareAllocsGate pins the tightened gate for the fused bootstrap
// paths: allocs/op is a default-gated metric, and a 0 allocs/op baseline
// fails on ANY allocation growth — relative tolerance has no meaning at
// zero, and the kernels' allocation-freedom is part of their contract.
func TestCompareAllocsGate(t *testing.T) {
	if !strings.Contains(defaultCompareMetrics, "allocs/op") {
		t.Fatalf("default gated metrics %q must include allocs/op", defaultCompareMetrics)
	}
	base := baselineReport()
	base.Benchmarks[0].Metrics["allocs/op"] = 0
	old := writeReport(t, "old.json", base)
	rep := baselineReport()
	rep.Benchmarks[0].Metrics["allocs/op"] = 1
	newer := writeReport(t, "new.json", rep)
	var buf bytes.Buffer
	err := compareFiles(old, newer, 0.20, defaultCompareMetrics, false, &buf)
	if err == nil {
		t.Fatal("0 -> 1 allocs/op must fail the gate")
	}
	if !strings.Contains(buf.String(), "allocs/op") {
		t.Errorf("allocs/op regression not reported:\n%s", buf.String())
	}
	// Unchanged allocs (and tolerated ns/op drift) still pass.
	same := writeReport(t, "same.json", base)
	buf.Reset()
	if err := compareFiles(old, same, 0.20, defaultCompareMetrics, false, &buf); err != nil {
		t.Fatalf("identical allocs must pass: %v\n%s", err, buf.String())
	}
}
