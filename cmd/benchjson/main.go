// Command benchjson converts `go test -bench` text output on stdin into a
// machine-readable JSON document on stdout, so CI can archive benchmark
// trajectories (BENCH_N.json) across PRs.
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson > BENCH.json
//
// Every benchmark line becomes one entry; all reported metrics (ns/op,
// B/op, allocs/op and custom b.ReportMetric units) are kept as a
// unit-keyed map. Non-benchmark lines (goos/pkg headers, PASS/ok) are
// collected into context fields when recognized and otherwise ignored.
//
// With -compare, benchjson instead diffs two archived documents and exits
// nonzero when any benchmark present in both regressed beyond the tolerance
// on ns/op, B/op or allocs/op — the CI benchmark-regression gate (a zero
// baseline on the allocation metrics fails on any growth, keeping
// allocation-free paths allocation-free):
//
//	benchjson -compare old.json new.json -tolerance 0.20
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"varbench/internal/jsonx"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the top-level JSON document.
type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// MarshalJSON implements json.Marshaler, encoding non-finite metric values
// as null: a benchmark reporting b.ReportMetric(math.NaN(), ...) — a
// degenerate ratio, a division by zero iterations — must not make the whole
// document unserializable ("json: unsupported value: NaN"). Decoding null
// back yields 0 for that metric.
func (r Report) MarshalJSON() ([]byte, error) {
	type alias Report
	return jsonx.Marshal(alias(r))
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	compare := fs.Bool("compare", false, "compare two archived JSON documents instead of converting stdin")
	tolerance := fs.Float64("tolerance", 0.20, "allowed relative regression on the gated metrics in compare mode")
	metrics := fs.String("metrics", defaultCompareMetrics, "comma-separated metrics the compare gate checks (use B/op alone for cross-machine baselines)")
	allowMissing := fs.Bool("allow-missing-baseline", false, "in compare mode, skip the gate with a warning when the baseline (old) file is missing, undecodable or shares no benchmarks — for first runs and expired artifacts; problems with the new file still fail")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: go test -bench . -benchmem | benchjson > BENCH.json")
		fmt.Fprintln(fs.Output(), "       benchjson -compare old.json new.json [-tolerance 0.20] [-metrics ns/op,B/op] [-allow-missing-baseline]")
		fs.PrintDefaults()
	}
	// The flag package stops at the first positional; re-parse the remainder
	// so `benchjson -compare old.json new.json -tolerance 0.20` works with
	// the flags in any position.
	var files []string
	if err := fs.Parse(args); err != nil {
		return err
	}
	for fs.NArg() > 0 {
		rest := fs.Args()
		files = append(files, rest[0])
		if err := fs.Parse(rest[1:]); err != nil {
			return err
		}
	}
	if *compare {
		if len(files) != 2 {
			fs.Usage()
			return fmt.Errorf("-compare needs exactly two files, got %d", len(files))
		}
		return compareFiles(files[0], files[1], *tolerance, *metrics, *allowMissing, os.Stdout)
	}
	if len(files) != 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments %v (conversion mode reads stdin)", files)
	}
	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func parse(sc *bufio.Scanner) (*Report, error) {
	rep := &Report{Benchmarks: []Benchmark{}}
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			b.Package = pkg
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	return rep, sc.Err()
}

// parseBenchLine parses one result line of the form
//
//	BenchmarkName-8  1234  5678 ns/op  90 B/op  1 allocs/op  0.95 custom-unit
//
// into its name, iteration count and unit-keyed metric map.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		// The name is kept verbatim, including any -GOMAXPROCS suffix:
		// go test omits that suffix at GOMAXPROCS=1, so stripping it
		// cannot be distinguished from eating a numeric name segment.
		Name:       fields[0],
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, len(b.Metrics) > 0
}
