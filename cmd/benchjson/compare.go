package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// defaultCompareMetrics are the regression-gated units: time, allocated
// bytes and allocations per op. Iteration counts and custom b.ReportMetric
// units are informational only — they are not comparable across -benchtime
// settings. CI narrows the gate to B/op,allocs/op (machine-independent)
// when the baseline was recorded on different hardware. allocs/op gating
// combined with the zero-baseline rule of regressed() is what keeps the
// fused bootstrap kernels at 0 allocs/op: once a path records an
// allocation-free baseline, any allocation at all fails the gate.
const defaultCompareMetrics = "ns/op,B/op,allocs/op"

// compareFiles loads two benchjson reports and fails (returns an error) when
// any benchmark present in both regressed by more than tolerance on a gated
// metric — the CI benchmark-regression gate:
//
//	benchjson -compare old.json new.json -tolerance 0.20
//
// Benchmarks present in only one file are reported but never fail the gate:
// new benchmarks appear and old ones retire as the suite evolves.
//
// With allowMissingBaseline, an unusable baseline — the old file missing,
// undecodable, or sharing no benchmarks with the new one — skips the gate
// with a loud warning instead of failing it: on a new branch, or after the
// previous run's artifact expired or got corrupted in transfer, there is
// nothing meaningful to compare against, and red-Xing an unrelated PR for
// it only teaches people to ignore the gate. Problems with the NEW file
// always fail: that artifact was produced by the run under test.
func compareFiles(oldPath, newPath string, tolerance float64, metricSpec string, allowMissingBaseline bool, w io.Writer) error {
	if tolerance < 0 {
		return fmt.Errorf("tolerance must not be negative, got %v", tolerance)
	}
	var compareMetrics []string
	for _, m := range strings.Split(metricSpec, ",") {
		if m = strings.TrimSpace(m); m != "" {
			compareMetrics = append(compareMetrics, m)
		}
	}
	if len(compareMetrics) == 0 {
		return fmt.Errorf("empty -metrics spec %q", metricSpec)
	}
	skip := func(reason error) error {
		if !allowMissingBaseline {
			return reason
		}
		fmt.Fprintf(w, "::warning::benchjson: baseline %s unusable (%v); skipping the regression gate this run\n",
			oldPath, reason)
		return nil
	}
	oldRep, err := loadReport(oldPath)
	if err != nil {
		return skip(err)
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return err
	}

	oldBy := benchIndex(oldRep)
	newBy := benchIndex(newRep)
	keys := make([]string, 0, len(oldBy))
	for k := range oldBy {
		if _, ok := newBy[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	var regressions []string
	fmt.Fprintf(w, "comparing %s -> %s (tolerance %.0f%% on %v)\n",
		oldPath, newPath, tolerance*100, compareMetrics)
	for _, k := range keys {
		o, n := oldBy[k], newBy[k]
		for _, metric := range compareMetrics {
			ov, okO := o.Metrics[metric]
			nv, okN := n.Metrics[metric]
			if !okO || !okN {
				continue
			}
			status := "ok"
			switch {
			case regressed(ov, nv, tolerance):
				status = "REGRESSION"
				regressions = append(regressions, fmt.Sprintf("%s %s: %s -> %s (%+.1f%%)",
					k, metric, formatMetric(ov), formatMetric(nv), delta(ov, nv)))
			case ov > 0 && nv < ov*(1-tolerance):
				status = "improved"
			}
			fmt.Fprintf(w, "  %-60s %8s  %12s -> %-12s %+7.1f%%  %s\n",
				k, metric, formatMetric(ov), formatMetric(nv), delta(ov, nv), status)
		}
	}
	reportOnly(w, "only in", oldPath, oldBy, newBy)
	reportOnly(w, "only in", newPath, newBy, oldBy)
	if len(keys) == 0 {
		return skip(fmt.Errorf("no common benchmarks between %s and %s", oldPath, newPath))
	}
	if len(regressions) > 0 {
		fmt.Fprintf(w, "%d benchmark regression(s) beyond %.0f%%:\n", len(regressions), tolerance*100)
		for _, r := range regressions {
			fmt.Fprintf(w, "  %s\n", r)
		}
		return fmt.Errorf("%d benchmark(s) regressed beyond %.0f%%", len(regressions), tolerance*100)
	}
	fmt.Fprintf(w, "no regressions beyond %.0f%% across %d common benchmark(s)\n", tolerance*100, len(keys))
	return nil
}

// regressed reports whether nv exceeds ov by more than the tolerance. A zero
// baseline (e.g. 0 B/op) regresses on any growth: relative tolerance has no
// meaning there, and allocation-free paths must stay allocation-free.
func regressed(ov, nv, tolerance float64) bool {
	if ov == 0 {
		return nv > 0
	}
	return nv > ov*(1+tolerance)
}

func delta(ov, nv float64) float64 {
	if ov == 0 {
		if nv == 0 {
			return 0
		}
		return 100
	}
	return (nv/ov - 1) * 100
}

func formatMetric(v float64) string {
	return fmt.Sprintf("%g", v)
}

func reportOnly(w io.Writer, label, path string, a, b map[string]Benchmark) {
	var only []string
	for k := range a {
		if _, ok := b[k]; !ok {
			only = append(only, k)
		}
	}
	sort.Strings(only)
	for _, k := range only {
		fmt.Fprintf(w, "  %s %s: %s (not compared)\n", label, path, k)
	}
}

// benchIndex keys a report's benchmarks by package/name, verbatim. Names
// include any -GOMAXPROCS suffix (sub-benchmark names like "maxruns-64"
// make stripping it ambiguous), so both sides of a comparison must be
// collected at the same GOMAXPROCS — CI pins it to 1. Duplicate keys (e.g.
// repeated -count runs) keep the last entry.
func benchIndex(r *Report) map[string]Benchmark {
	out := make(map[string]Benchmark, len(r.Benchmarks))
	for _, b := range r.Benchmarks {
		out[b.Package+"/"+b.Name] = b
	}
	return out
}

func loadReport(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rep Report
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}
