package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: varbench/internal/stats
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkPairedBootstrapK1000/serial-legacy-8         	    5744	    197645 ns/op	    8672 B/op	       2 allocs/op
BenchmarkCollectionLazyTrials/maxruns-1048576-8       	      50	     71723 ns/op	   20688 B/op	     165 allocs/op
BenchmarkFig1VarianceSources-8                        	       3	 400000000 ns/op	         0.0123 bootstrap-std
PASS
ok  	varbench/internal/stats	6.114s
`

func TestParse(t *testing.T) {
	rep, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" || rep.CPU == "" {
		t.Errorf("context fields wrong: %+v", rep)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkPairedBootstrapK1000/serial-legacy-8" {
		t.Errorf("name = %q", b.Name)
	}
	if b.Package != "varbench/internal/stats" || b.Iterations != 5744 {
		t.Errorf("bookkeeping wrong: %+v", b)
	}
	if b.Metrics["ns/op"] != 197645 || b.Metrics["B/op"] != 8672 || b.Metrics["allocs/op"] != 2 {
		t.Errorf("metrics = %v", b.Metrics)
	}
	// Names are kept verbatim: at GOMAXPROCS=1 go test appends no
	// suffix, so a numeric tail is indistinguishable from a name segment.
	if got := rep.Benchmarks[1].Name; got != "BenchmarkCollectionLazyTrials/maxruns-1048576-8" {
		t.Errorf("name not verbatim: %q", got)
	}
	// Custom b.ReportMetric units survive.
	if rep.Benchmarks[2].Metrics["bootstrap-std"] != 0.0123 {
		t.Errorf("custom metric lost: %v", rep.Benchmarks[2].Metrics)
	}
}
