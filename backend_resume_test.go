package varbench

import (
	"bytes"
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"varbench/store"
)

// TestStoreResumeBackends extends the jsonl resume acceptance test
// (TestVarianceStudyStoreResume) to the other backends: a variance study
// interrupted mid-collection and resumed against the same backend renders
// a byte-identical report to an uninterrupted run, recomputing only the
// missing cells. For seglog the interruption is a real process-style
// boundary (Close drains the group commit, a fresh OpenSegLog replays the
// segments); for mem — which cannot outlive a process — the resumed run
// reuses the live store, pinning the same cache-correctness property
// without the durability leg.
func TestStoreResumeBackends(t *testing.T) {
	type fixture struct {
		name string
		open func(t *testing.T, dir string) store.Backend
		// boundary simulates the death of the interrupted process and
		// returns the backend the resumed run uses.
		boundary func(t *testing.T, dir string, b store.Backend) store.Backend
	}
	fixtures := []fixture{
		{
			name: "mem",
			open: func(t *testing.T, dir string) store.Backend { return store.NewMem() },
			boundary: func(t *testing.T, dir string, b store.Backend) store.Backend {
				return b // nothing to reopen; resume against the live store
			},
		},
		{
			name: "seglog",
			open: func(t *testing.T, dir string) store.Backend {
				s, err := store.OpenSegLog(dir, store.WithFlushInterval(time.Millisecond))
				if err != nil {
					t.Fatal(err)
				}
				return s
			},
			boundary: func(t *testing.T, dir string, b store.Backend) store.Backend {
				if err := b.Close(); err != nil {
					t.Fatal(err)
				}
				s, err := store.OpenSegLog(dir)
				if err != nil {
					t.Fatal(err)
				}
				return s
			},
		},
	}

	study := func(p TrialFunc, st store.Backend) VarianceStudy {
		return VarianceStudy{
			Pipeline:     p,
			Sources:      []Source{VarInit, VarOrder},
			K:            3,
			Realizations: 2,
			Seed:         11,
			Parallelism:  4,
			Store:        st,
			PipelineID:   "backend-resume-test",
		}
	}
	render := func(t *testing.T, rep *VarianceReport) string {
		t.Helper()
		var buf bytes.Buffer
		if err := rep.Render(&buf, VarianceTextRenderer{Curves: true}); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	const total = 3 * 2 * 3 // (2 sources + joint) × realizations × K

	// Golden: uninterrupted, storeless — shared across backends.
	var goldenCalls atomic.Int64
	rep, err := study(countingPipeline(&goldenCalls, 0.2, 0, nil), nil).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	golden := render(t, rep)

	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			dir := t.TempDir()
			st := fx.open(t, dir)
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var calls atomic.Int64
			_, err := study(countingPipeline(&calls, 0.2, 5, cancel), st).Run(ctx)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("interrupted run: want context.Canceled, got %v", err)
			}

			st2 := fx.boundary(t, dir, st)
			defer st2.Close()
			recorded := st2.CountPrefix("trial/")
			if recorded < 5 || recorded >= total {
				t.Fatalf("interrupted run recorded %d trials, want in [5, %d)", recorded, total)
			}
			var resumeCalls atomic.Int64
			rep2, err := study(countingPipeline(&resumeCalls, 0.2, 0, nil), st2).Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if got := render(t, rep2); got != golden {
				t.Errorf("resumed report differs from uninterrupted golden:\n%s\n--- golden ---\n%s", got, golden)
			}
			if got, want := resumeCalls.Load(), int64(total-recorded); got != want {
				t.Errorf("resumed run made %d pipeline calls, want %d (total %d - %d cached)",
					got, want, total, recorded)
			}
		})
	}
}

// TestExperimentResumeBackendEquivalence: one interrupted Experiment.Run
// resumed on each backend lands on the byte-identical report — the report
// must not depend on which engine persisted the trials.
func TestExperimentResumeBackendEquivalence(t *testing.T) {
	const maxRuns = 12
	exp := func(a, b TrialFunc, st store.Backend) Experiment {
		return Experiment{
			ATrial:      a,
			BTrial:      b,
			Seed:        5,
			MaxRuns:     maxRuns,
			BatchSize:   4,
			EarlyStop:   EarlyStopOff,
			Bootstrap:   50,
			Parallelism: 4,
			Store:       st,
			PipelineID:  "backend-equivalence-test",
		}
	}
	render := func(res *Result) string {
		var buf bytes.Buffer
		if err := res.Render(&buf, TextRenderer{Scores: true}); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	var goldenCalls atomic.Int64
	res, err := exp(
		countingPipeline(&goldenCalls, 0.3, 0, nil),
		countingPipeline(&goldenCalls, 0.1, 0, nil), nil).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	golden := render(res)

	backends := map[string]store.Backend{"mem": store.NewMem()}
	if sl, err := store.OpenSegLog(t.TempDir(), store.WithFlushInterval(time.Millisecond)); err != nil {
		t.Fatal(err)
	} else {
		backends["seglog"] = sl
	}
	if js, err := store.Open(t.TempDir()); err != nil {
		t.Fatal(err)
	} else {
		backends["jsonl"] = js
	}
	for name, st := range backends {
		t.Run(name, func(t *testing.T) {
			defer st.Close()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var calls atomic.Int64
			a := countingPipeline(&calls, 0.3, 7, cancel)
			b := countingPipeline(&calls, 0.1, 7, cancel)
			if _, err := exp(a, b, st).Run(ctx); !errors.Is(err, context.Canceled) {
				t.Fatalf("interrupted run: want context.Canceled, got %v", err)
			}
			var resumeCalls atomic.Int64
			rA := countingPipeline(&resumeCalls, 0.3, 0, nil)
			rB := countingPipeline(&resumeCalls, 0.1, 0, nil)
			res2, err := exp(rA, rB, st).Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if got := render(res2); got != golden {
				t.Errorf("%s-resumed report differs from golden:\n%s\n--- golden ---\n%s",
					name, got, golden)
			}
			if resumeCalls.Load() >= 2*maxRuns {
				t.Errorf("resumed run recomputed everything (%d calls): nothing was served from %s",
					resumeCalls.Load(), name)
			}
		})
	}
}
