package varbench

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func clearResult(t *testing.T) *Result {
	t.Helper()
	e := Experiment{A: noisyRunner(1.0), B: noisyRunner(0.5), MaxRuns: 32}
	res, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTextRenderer(t *testing.T) {
	res := clearResult(t)
	out := res.String()
	for _, want := range []string{"P(A>B)", "significant and meaningful", "conclusion", "runs:"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf, TextRenderer{Scores: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "score 0:") {
		t.Error("Scores flag did not list measurements")
	}
	// nil renderer falls back to text.
	buf.Reset()
	if err := res.Render(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("nil renderer produced nothing")
	}
}

func TestJSONRenderer(t *testing.T) {
	res := clearResult(t)
	var buf bytes.Buffer
	if err := res.Render(&buf, JSONRenderer{Indent: true}); err != nil {
		t.Fatal(err)
	}
	var decoded Result
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if decoded.Comparison != res.Comparison {
		t.Error("comparison did not round-trip through JSON")
	}
	if decoded.Pairs != res.Pairs || decoded.StopReason != res.StopReason {
		t.Error("bookkeeping did not round-trip through JSON")
	}
}

func TestCSVRenderer(t *testing.T) {
	e := Experiment{
		Datasets: []Dataset{
			{Name: "d1", A: noisyRunner(0.9), B: noisyRunner(0.6)},
			{Name: "d2", A: noisyRunner(0.8), B: noisyRunner(0.5)},
		},
		MaxRuns: 16,
	}
	res, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf, CSVRenderer{}); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("invalid CSV: %v", err)
	}
	if len(rows) != 3 { // header + 2 datasets
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	if rows[0][1] != "dataset" || rows[1][1] != "d1" || rows[2][1] != "d2" {
		t.Errorf("dataset column wrong: %v", rows)
	}
}

func TestCSVRendererFullPrecision(t *testing.T) {
	// Machine-readable output must not round through the display
	// formatter: a mean with >4 significant digits survives intact.
	scores := []float64{0.8413725, 0.8413725, 0.8413725}
	res, err := Analyze(scores, []float64{0.1, 0.2, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf, CSVRenderer{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0.8413725") {
		t.Errorf("CSV rounded the mean:\n%s", buf.String())
	}
}

func TestAnalyzeMatchesCompare(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	b := []float64{0, 1, 2, 3, 4, 5, 6, 7}
	res, err := Analyze(a, b, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compare(a, b, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Comparison != c {
		t.Errorf("Analyze and Compare disagree:\n %+v\n %+v", res.Comparison, c)
	}
	if res.Pairs != 8 || len(res.Datasets) != 1 {
		t.Error("result shape wrong")
	}
}

func TestAnalyzeUnpaired(t *testing.T) {
	a := []float64{5, 6, 7, 8, 9}
	b := []float64{1, 2, 3}
	res, err := Analyze(a, b, WithUnpaired())
	if err != nil {
		t.Fatal(err)
	}
	if res.Comparison.N != 3 {
		t.Errorf("unpaired N = %d, want 3", res.Comparison.N)
	}
	if _, err := Analyze(a, b); err == nil {
		t.Error("length mismatch accepted without WithUnpaired")
	}
}

func TestAnalyzeDatasetsSingle(t *testing.T) {
	// One dataset: no γ adjustment, and the Comparison convenience field
	// is populated like every other single-dataset result.
	res, err := AnalyzeDatasets(syntheticDatasets(3, 1, 30, 2.0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Multi() {
		t.Fatal("one dataset reported as multi")
	}
	if res.Comparison.Conclusion != SignificantAndMeaningful {
		t.Errorf("Comparison not populated: %+v", res.Comparison)
	}
	if res.Comparison.Gamma != DefaultGamma {
		t.Errorf("γ adjusted for a single dataset: %v", res.Comparison.Gamma)
	}
}

func TestAnalyzeDatasetsRenderable(t *testing.T) {
	res, err := AnalyzeDatasets(syntheticDatasets(1, 3, 30, 2.0))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Multi() {
		t.Fatal("three datasets should be a multi result")
	}
	if !res.AllMeaningful {
		t.Errorf("uniform winner rejected: %+v", res.Datasets)
	}
	out := res.String()
	if !strings.Contains(out, "Dror") || !strings.Contains(out, "Wilcoxon") {
		t.Errorf("multi-dataset text output incomplete:\n%s", out)
	}
}
