package varbench

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"varbench/internal/xrand"
)

// noisyRunner builds a pure RunFunc with the given mean: score = mean +
// 0.05·N(0,1) derived deterministically from the seed.
func noisyRunner(mean float64) RunFunc {
	return func(seed uint64) (float64, error) {
		return mean + 0.05*xrand.New(seed^0x9E3779B9).NormFloat64(), nil
	}
}

func TestRunParallelismInvariance(t *testing.T) {
	spec := Experiment{
		A:       noisyRunner(0.85),
		B:       noisyRunner(0.83),
		Seed:    7,
		MaxRuns: 48,
	}
	serial := spec
	serial.Parallelism = 1
	parallel := spec
	parallel.Parallelism = 8

	r1, err := serial.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r8, err := parallel.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Comparison != r8.Comparison {
		t.Errorf("comparisons differ across parallelism:\n p=1: %+v\n p=8: %+v",
			r1.Comparison, r8.Comparison)
	}
	if !reflect.DeepEqual(r1.Datasets[0].ScoresA, r8.Datasets[0].ScoresA) ||
		!reflect.DeepEqual(r1.Datasets[0].ScoresB, r8.Datasets[0].ScoresB) {
		t.Error("collected scores differ across parallelism")
	}
	if r1.Pairs != r8.Pairs || r1.StopReason != r8.StopReason || r1.EarlyStopped != r8.EarlyStopped {
		t.Errorf("stop bookkeeping differs: p=1 (%d, %s) vs p=8 (%d, %s)",
			r1.Pairs, r1.StopReason, r8.Pairs, r8.StopReason)
	}
}

func TestRunParallelismInvarianceMultiDataset(t *testing.T) {
	spec := Experiment{
		Datasets: []Dataset{
			{Name: "d1", A: noisyRunner(0.9), B: noisyRunner(0.7)},
			{Name: "d2", A: noisyRunner(0.8), B: noisyRunner(0.6)},
			{Name: "d3", A: noisyRunner(0.7), B: noisyRunner(0.5)},
		},
		Seed:    3,
		MaxRuns: 24,
	}
	serial := spec
	serial.Parallelism = 1
	parallel := spec
	parallel.Parallelism = 8
	r1, err := serial.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r8, err := parallel.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Datasets, r8.Datasets) {
		t.Error("per-dataset results differ across parallelism")
	}
	if r1.WilcoxonP != r8.WilcoxonP || r1.AllMeaningful != r8.AllMeaningful {
		t.Error("aggregate statistics differ across parallelism")
	}
	if !r1.AllMeaningful {
		t.Errorf("clear winner not accepted: %+v", r1.Datasets)
	}
}

func TestRunEarlyStopsClearSeparation(t *testing.T) {
	// A dominates B by 10σ: the CI clears γ at the first eligible batch.
	e := Experiment{
		A:           noisyRunner(1.0),
		B:           noisyRunner(0.5),
		MaxRuns:     64,
		Parallelism: 2,
	}
	res, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.EarlyStopped {
		t.Fatal("clearly separated pair did not early-stop")
	}
	if res.Pairs >= 64 {
		t.Errorf("early stop used %d of %d runs", res.Pairs, 64)
	}
	if res.StopReason != StopCICleared {
		t.Errorf("stop reason = %s, want %s", res.StopReason, StopCICleared)
	}
	if res.Comparison.Conclusion != SignificantAndMeaningful {
		t.Errorf("conclusion = %s", res.Comparison.Conclusion)
	}
	if res.Runs != 2*res.Pairs {
		t.Errorf("runs = %d, want %d", res.Runs, 2*res.Pairs)
	}
}

func TestRunEarlyStopBatchBoundaries(t *testing.T) {
	// Collection proceeds in whole batches: with BatchSize 8 the pair
	// count at stop must be a multiple of 8 (MaxRuns not reached).
	var calls atomic.Int64
	count := func(f RunFunc) RunFunc {
		return func(seed uint64) (float64, error) { calls.Add(1); return f(seed) }
	}
	e := Experiment{
		A:         count(noisyRunner(1.0)),
		B:         count(noisyRunner(0.5)),
		MaxRuns:   60,
		BatchSize: 8,
	}
	res, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs%8 != 0 {
		t.Errorf("stopped at %d pairs, not a batch boundary", res.Pairs)
	}
	if got := calls.Load(); got != int64(2*res.Pairs) {
		t.Errorf("pipelines executed %d times, want %d: collection overshot the stop", got, 2*res.Pairs)
	}
	if len(res.Datasets[0].ScoresA) != res.Pairs {
		t.Error("score bookkeeping disagrees with pair count")
	}
}

func TestRunEarlyStopNoetherN(t *testing.T) {
	// Indistinguishable pipelines: no CI verdict, so collection stops at
	// Noether's recommended N (29 at γ=0.75) short of MaxRuns.
	e := Experiment{
		A:       noisyRunner(0.7),
		B:       noisyRunner(0.7),
		Seed:    11,
		MaxRuns: 200,
	}
	res, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.StopReason != StopNoetherN && res.StopReason != StopFutility {
		t.Fatalf("stop reason = %s", res.StopReason)
	}
	if res.StopReason == StopNoetherN && res.Pairs < res.Comparison.RecommendedN {
		t.Errorf("stopped at %d pairs, below recommended %d", res.Pairs, res.Comparison.RecommendedN)
	}
	if res.Pairs >= 200 {
		t.Error("null comparison ran to MaxRuns despite early stopping")
	}
}

func TestRunEarlyStopOff(t *testing.T) {
	e := Experiment{
		A:         noisyRunner(1.0),
		B:         noisyRunner(0.5),
		MaxRuns:   40,
		EarlyStop: EarlyStopOff,
	}
	res, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs != 40 || res.EarlyStopped {
		t.Errorf("early stop off collected %d pairs (early=%v), want all 40", res.Pairs, res.EarlyStopped)
	}
	if res.StopReason != StopMaxRuns {
		t.Errorf("stop reason = %s", res.StopReason)
	}
}

func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	slow := func(seed uint64) (float64, error) {
		// Cancel mid-collection from inside the first run.
		once.Do(cancel)
		time.Sleep(time.Millisecond)
		return 1, nil
	}
	e := Experiment{
		A:           slow,
		B:           noisyRunner(0.5),
		MaxRuns:     64,
		Parallelism: 4,
	}
	if _, err := e.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	// Serial path too.
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	e.Parallelism = 1
	if _, err := e.Run(ctx2); !errors.Is(err, context.Canceled) {
		t.Fatalf("serial err = %v, want context.Canceled", err)
	}
}

func TestRunPropagatesPipelineErrors(t *testing.T) {
	boom := errors.New("boom")
	bad := func(uint64) (float64, error) { return 0, boom }
	e := Experiment{A: bad, B: noisyRunner(0.5), Parallelism: 4}
	if _, err := e.Run(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	e = Experiment{A: noisyRunner(0.5), B: bad, Parallelism: 1}
	if _, err := e.Run(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestRunValidation(t *testing.T) {
	ctx := context.Background()
	ok := noisyRunner(1)
	okT := func(Trial) (float64, error) { return 1, nil }
	cases := map[string]Experiment{
		"no A":          {B: ok},
		"no B":          {A: ok},
		"A and ATrial":  {A: ok, ATrial: okT, B: ok},
		"B and BTrial":  {A: ok, B: ok, BTrial: okT},
		"bad gamma":     {A: ok, B: ok, Gamma: 0.4},
		"gamma one":     {A: ok, B: ok, Gamma: 1},
		"bad conf":      {A: ok, B: ok, Confidence: 1.5},
		"one run":       {A: ok, B: ok, MaxRuns: 1},
		"unnamed ds":    {Datasets: []Dataset{{A: ok, B: ok}}},
		"dup ds":        {Datasets: []Dataset{{Name: "x", A: ok, B: ok}, {Name: "x", A: ok, B: ok}}},
		"ds missing AB": {Datasets: []Dataset{{Name: "x"}}},
		// A plain RunFunc cannot hold sources fixed, so restricting
		// Sources demands TrialFunc pipelines.
		"sources with RunFunc": {A: ok, B: ok, Sources: []Source{VarInit}},
		"sources with ds RunFunc": {ATrial: okT, BTrial: okT, Sources: []Source{VarInit},
			Datasets: []Dataset{{Name: "x", A: ok, B: ok}}},
	}
	for name, e := range cases {
		if _, err := e.Run(ctx); err == nil {
			t.Errorf("%s: invalid spec accepted", name)
		}
	}
}

func TestRunDatasetFallbackPipelines(t *testing.T) {
	// Dataset-level pipelines default to the experiment-level ones.
	e := Experiment{
		A: noisyRunner(1.0),
		B: noisyRunner(0.5),
		Datasets: []Dataset{
			{Name: "custom", A: noisyRunner(0.5), B: noisyRunner(1.0)}, // reversed
			{Name: "default"},
		},
		MaxRuns: 16,
	}
	res, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Datasets[0].Comparison.PAB >= 0.5 {
		t.Error("dataset-level pipelines ignored")
	}
	if res.Datasets[1].Comparison.PAB <= 0.5 {
		t.Error("experiment-level fallback broken")
	}
	if res.AllMeaningful {
		t.Error("reversed dataset cannot be a meaningful win")
	}
}

func TestRunProgressCallback(t *testing.T) {
	var events []Progress
	e := Experiment{
		A:         noisyRunner(1.0),
		B:         noisyRunner(0.5),
		MaxRuns:   24,
		BatchSize: 8,
		EarlyStop: EarlyStopOff,
		Progress:  func(p Progress) { events = append(events, p) },
	}
	if _, err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("progress fired %d times, want 3", len(events))
	}
	for i, ev := range events {
		if ev.Pairs != 8*(i+1) || ev.MaxRuns != 24 {
			t.Errorf("event %d = %+v", i, ev)
		}
	}
}

func TestTrialSourceSeeds(t *testing.T) {
	e := Experiment{Seed: 5, MaxRuns: 10, Sources: []Source{VarInit}}
	cfg, err := e.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	trials := cfg.makeTrials("")
	for i := 1; i < len(trials); i++ {
		if trials[i].SourceSeed(VarInit) == trials[0].SourceSeed(VarInit) {
			t.Errorf("varied source repeated its seed at trial %d", i)
		}
		for _, s := range AllSources() {
			if s == VarInit {
				continue
			}
			if trials[i].SourceSeed(s) != trials[0].SourceSeed(s) {
				t.Errorf("fixed source %s changed at trial %d", s, i)
			}
		}
	}
	// Varied seeds agree with the xrand.NewStreams derivation from the
	// trial's root seed, so RunFunc and TrialFunc pipelines compose.
	streams := xrand.NewStreams(trials[3].Seed)
	if got, want := trials[3].SourceSeed(VarInit), streams.Seed(xrand.VarInit); got != want {
		t.Errorf("SourceSeed(VarInit) = %d, want NewStreams seed %d", got, want)
	}
	// A custom label outside the restricted set obeys the same contract as
	// the known sources: fixed across trials.
	custom := Source("my-noise")
	if trials[2].SourceSeed(custom) != trials[4].SourceSeed(custom) {
		t.Error("unlisted custom label varied despite restricted Sources")
	}
	// Listed in Sources, a custom label varies per trial.
	e = Experiment{Seed: 5, MaxRuns: 10, Sources: []Source{custom}}
	cfg, err = e.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	trials = cfg.makeTrials("")
	if trials[2].SourceSeed(custom) == trials[4].SourceSeed(custom) {
		t.Error("listed custom label did not vary per trial")
	}
	if trials[2].SourceSeed(VarInit) != trials[4].SourceSeed(VarInit) {
		t.Error("known source varied while only the custom label was listed")
	}
	// With all sources varying (the default), custom labels vary too.
	e = Experiment{Seed: 5, MaxRuns: 10}
	cfg, err = e.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	trials = cfg.makeTrials("")
	if trials[2].SourceSeed(custom) == trials[4].SourceSeed(custom) {
		t.Error("custom label fixed despite vary-all default")
	}
}

func TestCollectVariesOnlyChosenSource(t *testing.T) {
	// A pipeline reading only fixed sources returns a constant; reading
	// the varied source returns a spread.
	fixedPipe := func(t Trial) (float64, error) {
		return xrand.New(t.SourceSeed(VarOrder)).Float64(), nil
	}
	variedPipe := func(t Trial) (float64, error) {
		return xrand.New(t.SourceSeed(VarInit)).Float64(), nil
	}
	base := Experiment{Sources: []Source{VarInit}, MaxRuns: 12, Seed: 9}

	e := base
	e.ATrial = fixedPipe
	scores, err := e.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 12 {
		t.Fatalf("collected %d measures", len(scores))
	}
	// Mean() rounding leaves ~1e-17 residue on identical values.
	if Summarize(scores).Std > 1e-12 {
		t.Error("fixed source leaked variance")
	}

	e = base
	e.ATrial = variedPipe
	scores, err = e.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if Summarize(scores).Std < 1e-6 {
		t.Error("varied source produced no variance")
	}
}

func TestCollectProgress(t *testing.T) {
	var events []Progress
	e := Experiment{
		ATrial:    func(t Trial) (float64, error) { return 1, nil },
		MaxRuns:   20,
		BatchSize: 8,
		Progress:  func(p Progress) { events = append(events, p) },
	}
	if _, err := e.Collect(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 { // batches of 8, 8, 4
		t.Fatalf("progress fired %d times, want 3", len(events))
	}
	if events[2].Pairs != 20 || events[2].MaxRuns != 20 {
		t.Errorf("last event = %+v", events[2])
	}
}

func TestCollectParallelismInvariance(t *testing.T) {
	run := func(t Trial) (float64, error) {
		return xrand.New(t.Seed).Float64(), nil
	}
	e := Experiment{ATrial: run, MaxRuns: 32, Seed: 4, Parallelism: 1}
	s1, err := e.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	e.Parallelism = 8
	s8, err := e.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1, s8) {
		t.Error("Collect differs across parallelism")
	}
}

func TestCollectPairedMatchesExperimentSeeds(t *testing.T) {
	// The deprecated wrapper and the Experiment engine draw the same seed
	// sequence for the same base seed.
	var wrapperSeeds, engineSeeds []uint64
	var mu sync.Mutex
	record := func(dst *[]uint64) RunFunc {
		return func(seed uint64) (float64, error) {
			mu.Lock()
			*dst = append(*dst, seed)
			mu.Unlock()
			return float64(seed%1000) / 1000, nil
		}
	}
	if _, _, err := CollectPaired(record(&wrapperSeeds), noisyRunner(0), 6, 99); err != nil {
		t.Fatal(err)
	}
	e := Experiment{
		A: record(&engineSeeds), B: noisyRunner(0),
		Seed: 99, MaxRuns: 6, EarlyStop: EarlyStopOff, Parallelism: 1,
	}
	if _, err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wrapperSeeds, engineSeeds) {
		t.Errorf("seed sequences diverged:\n wrapper: %v\n engine:  %v", wrapperSeeds, engineSeeds)
	}
}

func TestRunSingleNamedDataset(t *testing.T) {
	// One named dataset is still a single-dataset run: no γ adjustment,
	// and the Comparison convenience field is populated.
	e := Experiment{
		Datasets: []Dataset{{Name: "only", A: noisyRunner(1.0), B: noisyRunner(0.5)}},
		MaxRuns:  16,
	}
	res, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Comparison.Conclusion != SignificantAndMeaningful {
		t.Errorf("Comparison not populated for single named dataset: %+v", res.Comparison)
	}
	if res.Comparison.Gamma != DefaultGamma {
		t.Errorf("γ adjusted for a single dataset: %v", res.Comparison.Gamma)
	}
	if res.StopReason == "" {
		t.Error("StopReason missing for single named dataset")
	}
	if res.Datasets[0].Name != "only" {
		t.Error("dataset name lost")
	}
}

func TestWithSeedZeroHonored(t *testing.T) {
	// The zero Seed field means "default 1", but an explicit WithSeed(0)
	// must survive defaulting (the bootstrap then runs from xrand.New(0)).
	var explicit Experiment
	WithSeed(0)(&explicit)
	cfg, err := explicit.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 0 {
		t.Errorf("WithSeed(0) remapped to %d", cfg.Seed)
	}
	var unset Experiment
	cfg, err = unset.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 1 {
		t.Errorf("unset seed defaulted to %d, want 1", cfg.Seed)
	}
}

func TestExplicitZeroOptionsRejected(t *testing.T) {
	// Regression: an explicit WithGamma(0) must be rejected like any other
	// out-of-range γ (the zero *field* still means "use the default").
	a := []float64{1, 2, 3}
	if _, err := Compare(a, a, WithGamma(0)); err == nil {
		t.Error("WithGamma(0) silently replaced by the default")
	}
	if _, err := Compare(a, a, WithConfidence(0)); err == nil {
		t.Error("WithConfidence(0) silently replaced by the default")
	}
	if _, err := Compare(a, a, WithBootstrap(-1)); err == nil {
		t.Error("WithBootstrap(-1) accepted")
	}
	if _, err := Compare(a, a, WithGamma(0.8)); err != nil {
		t.Errorf("valid explicit options rejected: %v", err)
	}
}

func TestAnalyzeDatasetsHonorsProtocolOptions(t *testing.T) {
	// Regression: the multi-dataset path used to drop WithConfidence and
	// WithBootstrap, always bootstrapping at the 0.95/1000 defaults.
	// A weak effect, so the bootstrap distribution of P(A>B) has spread
	// (an overwhelming winner gives CI [1,1] at any confidence level).
	ds := syntheticDatasets(5, 3, 20, 0.2)
	narrow, err := AnalyzeDatasets(ds, WithConfidence(0.5), WithBootstrap(400))
	if err != nil {
		t.Fatal(err)
	}
	wide, err := AnalyzeDatasets(ds, WithConfidence(0.999), WithBootstrap(400))
	if err != nil {
		t.Fatal(err)
	}
	for i := range narrow.Datasets {
		n, w := narrow.Datasets[i].Comparison, wide.Datasets[i].Comparison
		if w.CIHi-w.CILo <= n.CIHi-n.CILo {
			t.Errorf("dataset %d: confidence level ignored (0.5: [%v,%v], 0.999: [%v,%v])",
				i, n.CILo, n.CIHi, w.CILo, w.CIHi)
		}
	}
}

func TestCompareAcrossDatasetsGammaValidation(t *testing.T) {
	// Regression: CompareAcrossDatasets used to skip the γ ∈ (0.5, 1)
	// check that Compare and CompareUnpaired perform.
	ds := syntheticDatasets(1, 2, 10, 1.0)
	if _, err := CompareAcrossDatasets(ds, WithGamma(0.4)); err == nil {
		t.Error("γ ≤ 0.5 accepted")
	}
	if _, err := CompareAcrossDatasets(ds, WithGamma(1.0)); err == nil {
		t.Error("γ ≥ 1 accepted")
	}
	if _, err := CompareAcrossDatasets(ds, WithGamma(0.8)); err != nil {
		t.Errorf("valid γ rejected: %v", err)
	}
}
