// Quickstart: the paper's recommended benchmarking protocol in ~30 lines.
//
// Two "algorithms" (the same small image-classification pipeline with two
// different learning rates) are compared the right way, with a single
// declarative varbench.Experiment:
//
//  1. every run randomizes the data split, initialization, data order,
//     dropout and augmentation, pairing the two algorithms on shared seeds;
//  2. collection fans out across a worker pool and stops early once the
//     bootstrap CI clears γ or Noether's recommended sample size (29 pairs
//     at γ=0.75) is reached;
//  3. the conclusion is the probability of outperforming P(A>B) with its
//     bootstrap confidence interval, not a bare average difference.
//
// Run: go run ./examples/quickstart [-store dir]
//
// With -store dir, collection is durable: every completed run is appended
// to dir/trials.jsonl the moment it finishes, a killed experiment resumes
// where it stopped on rerun, and an unchanged rerun replays entirely from
// cache (watch the Progress lines complete instantly the second time).
//
// With -max-retries or -trial-timeout, collection is also resilient:
// failed runs are retried on a deterministic backoff, and runs that still
// fail are quarantined — recorded in the store, excluded from the
// analysis, retried on the next rerun — instead of aborting the whole
// experiment. A run that quarantined anything exits with code 3 so scripts
// can tell "partial but usable" from success (0) and failure (1).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"varbench"
	"varbench/internal/casestudy"
	"varbench/internal/hpo"
	"varbench/internal/pipeline"
	"varbench/internal/xrand"
	"varbench/store"
)

func main() {
	// quickstart returns the exit code so the deferred store Close runs
	// before os.Exit — a degraded exit must not skip the flush.
	os.Exit(quickstart())
}

func quickstart() int {
	storeDir := flag.String("store", "", "trial store DSN: jsonl:DIR, mem:, seglog:DIR, faultinject:SCHEDULE:INNER or a bare directory (= jsonl); empty = recompute everything")
	maxRetries := flag.Int("max-retries", 0, "retries per failed run on a deterministic seeded backoff")
	trialTimeout := flag.Duration("trial-timeout", 0, "per-run deadline (0: none)")
	failFast := flag.Bool("fail-fast", false, "abort on the first exhausted run instead of quarantining it")
	flag.Parse()
	task := casestudy.Tiny(1)

	// A RunFunc executes one full benchmark measurement: fresh seeds for
	// every source of variation, derived from the seed varbench hands us.
	runner := func(params hpo.Params) varbench.RunFunc {
		return func(seed uint64) (float64, error) {
			return pipeline.RunWithParams(task, params, xrand.NewStreams(seed))
		}
	}

	algoA := task.Defaults() // lr = 0.05
	algoB := task.Defaults()
	algoB["lr"] = 0.004 // deliberately too small: slower convergence

	exp := varbench.Experiment{
		A:       runner(algoA),
		B:       runner(algoB),
		Seed:    2021,
		MaxRuns: 64, // early stopping usually concludes well before this
		Progress: func(p varbench.Progress) {
			fmt.Printf("collected %d/%d pairs...\n", p.Pairs, p.MaxRuns)
		},
		TrialTimeout: *trialTimeout,
		FailFast:     *failFast,
	}
	if *maxRetries > 0 {
		exp.Retry = varbench.RetryPolicy{MaxAttempts: *maxRetries + 1, BaseDelay: 10 * time.Millisecond}
	}
	// An explicit -fail-fast=false alone means "quarantine, no retries":
	// without it the zero Retry/TrialTimeout fields keep the fail-fast
	// default (see varbench.Experiment.FailFast).
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "fail-fast" && !*failFast && exp.Retry.MaxAttempts == 0 {
			exp.Retry = varbench.RetryPolicy{MaxAttempts: 1}
		}
	})
	if *storeDir != "" {
		st, err := store.OpenDSN(*storeDir)
		if err != nil {
			log.Fatal(err)
		}
		defer st.Close()
		exp.Store = st
		// Identify the pipelines: the store serves side A/B cells to any
		// experiment with the same ID and seed, so the ID must change when
		// the algorithms (here, their learning rates) do.
		exp.PipelineID = "quickstart/lr=0.05-vs-0.004"
	}
	res, err := exp.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	d := res.Datasets[0]
	fmt.Printf("\nA: %+v\n", varbench.Summarize(d.ScoresA))
	fmt.Printf("B: %+v\n\n", varbench.Summarize(d.ScoresB))
	if err := res.Render(os.Stdout, varbench.TextRenderer{}); err != nil {
		log.Fatal(err)
	}
	switch res.Comparison.Conclusion {
	case varbench.SignificantAndMeaningful:
		fmt.Println("=> adopt algorithm A")
	case varbench.SignificantNotMeaningful:
		fmt.Println("=> A is reliably but negligibly better; not worth switching")
	default:
		fmt.Println("=> no reliable difference; the gap is within benchmark noise")
	}
	if res.Quarantined > 0 {
		fmt.Fprintf(os.Stderr, "quickstart: %d run(s) quarantined — the conclusion above is partial; rerun with the same -store to retry them\n", res.Quarantined)
		return 3
	}
	return 0
}
