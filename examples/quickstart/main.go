// Quickstart: the paper's recommended benchmarking protocol in ~40 lines.
//
// Two "algorithms" (the same small image-classification pipeline with two
// different learning rates) are compared the right way:
//
//  1. ask for the sample size the test needs (Noether: 29 pairs at γ=0.75),
//  2. run both pipelines under shared, fresh seeds — every run randomizes
//     the data split, initialization, data order, dropout and augmentation,
//  3. conclude with the probability of outperforming P(A>B) and its
//     bootstrap confidence interval, not with a bare average difference.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"varbench"
	"varbench/internal/casestudy"
	"varbench/internal/hpo"
	"varbench/internal/pipeline"
	"varbench/internal/xrand"
)

func main() {
	task := casestudy.Tiny(1)

	// A RunFunc executes one full benchmark measurement: fresh seeds for
	// every source of variation, derived from the seed varbench hands us.
	runner := func(params hpo.Params) varbench.RunFunc {
		return func(seed uint64) (float64, error) {
			return pipeline.RunWithParams(task, params, xrand.NewStreams(seed))
		}
	}

	algoA := task.Defaults() // lr = 0.05
	algoB := task.Defaults()
	algoB["lr"] = 0.004 // deliberately too small: slower convergence

	n := varbench.SampleSize(varbench.DefaultGamma)
	fmt.Printf("collecting %d paired measurements per algorithm...\n", n)

	scoresA, scoresB, err := varbench.CollectPaired(runner(algoA), runner(algoB), n, 2021)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("A: %+v\n", varbench.Summarize(scoresA))
	fmt.Printf("B: %+v\n", varbench.Summarize(scoresB))

	result, err := varbench.Compare(scoresA, scoresB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(result)
	switch result.Conclusion {
	case varbench.SignificantAndMeaningful:
		fmt.Println("=> adopt algorithm A")
	case varbench.SignificantNotMeaningful:
		fmt.Println("=> A is reliably but negligibly better; not worth switching")
	default:
		fmt.Println("=> no reliable difference; the gap is within benchmark noise")
	}
}
