// HPO-study: run the three hyperparameter-optimization algorithms the paper
// studies (noisy grid search, random search, Bayesian optimization) on one
// case study and plot their best-so-far validation curves — a miniature of
// Figure F.2. Repeating with -reps > 1 also shows the ξH variance: the same
// optimizer with a different search seed lands on different hyperparameters.
//
// Run: go run ./examples/hpo-study [-task name] [-budget trials] [-reps n]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"varbench/internal/casestudy"
	"varbench/internal/hpo"
	"varbench/internal/pipeline"
	"varbench/internal/report"
	"varbench/internal/stats"
	"varbench/internal/xrand"
)

func main() {
	taskName := flag.String("task", "tiny", "case study name (tiny is fastest)")
	budget := flag.Int("budget", 16, "trials per optimization (paper: 200)")
	reps := flag.Int("reps", 3, "independent ξH repetitions (paper: 20)")
	flag.Parse()

	var task *casestudy.Study
	var err error
	if *taskName == "tiny" {
		task = casestudy.Tiny(1)
	} else if task, err = casestudy.ByName(*taskName, 20210301); err != nil {
		log.Fatal(err)
	}

	base := xrand.NewStreams(5)
	split, err := task.Split(base.Get(xrand.VarDataSplit))
	if err != nil {
		log.Fatal(err)
	}

	optimizers := []hpo.Optimizer{
		hpo.NoisyGrid{},
		hpo.RandomSearch{},
		hpo.BayesOpt{InitRandom: 4},
	}

	var series []report.Series
	tb := &report.Table{
		Title:   fmt.Sprintf("HPO comparison — %s, budget %d, %d reps", task.Name(), *budget, *reps),
		Headers: []string{"optimizer", "final valid err (mean)", "ξH std", "best params (rep 0)"},
	}
	for _, opt := range optimizers {
		finals := make([]float64, 0, *reps)
		var curve []float64
		var bestParams hpo.Params
		for rep := 0; rep < *reps; rep++ {
			streams := xrand.NewStreams(5)
			streams.Reseed(xrand.VarHOpt, uint64(100+rep))
			res, err := pipeline.HOpt(task, opt, *budget, split, streams)
			if err != nil {
				log.Fatal(err)
			}
			bsf := res.History.BestSoFar()
			if rep == 0 {
				curve = bsf
				bestParams = res.Best
			}
			finals = append(finals, bsf[len(bsf)-1])
		}
		tb.AddRow(opt.Name(), stats.Mean(finals), stats.Std(finals), bestParams.String())
		s := report.Series{Name: opt.Name()}
		for i, v := range curve {
			s.X = append(s.X, float64(i+1))
			s.Y = append(s.Y, v)
		}
		series = append(series, s)
	}

	if err := tb.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := report.LinePlot(os.Stdout, "best-so-far validation error (rep 0)", series, 60, 12); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nThe ξH std column is the hyperparameter-optimization variance of")
	fmt.Println("Figure 1: even 'the same tuning procedure' is a noisy measurement.")
}
