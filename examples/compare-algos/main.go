// Compare-algos: a realistic model comparison under a limited compute
// budget, following Section 3.3: hyperparameters are optimized *once* per
// algorithm (the biased estimator), then the Experiment re-randomizes every
// other source of variation (FixHOptEst(k, All)) — the protocol the paper
// shows is ~51x cheaper than the ideal estimator yet nearly as reliable,
// provided the final decision accounts for variance. Measurement collection
// runs across a worker pool and stops as soon as the evidence is
// conclusive.
//
// The two contenders are MHC binding predictors with different capacities:
// a 32-unit hidden layer versus an 8-unit one.
//
// Run: go run ./examples/compare-algos [-k pairs] [-p workers]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"varbench"
	"varbench/internal/casestudy"
	"varbench/internal/data"
	"varbench/internal/hpo"
	"varbench/internal/pipeline"
	"varbench/internal/xrand"
)

func main() {
	k := flag.Int("k", 29, "max paired measurements per algorithm")
	budget := flag.Int("budget", 12, "HPO trial budget per algorithm")
	workers := flag.Int("p", 0, "collection parallelism (0 = GOMAXPROCS)")
	flag.Parse()

	task, err := casestudy.ByName("mhc-mlp", 20210301)
	if err != nil {
		log.Fatal(err)
	}

	// Constrain the hidden-layer search around each contender's capacity.
	tune := func(name string, lo, hi float64, seed uint64) (hpo.Params, error) {
		space := hpo.Space{
			{Name: "hidden", Lo: lo, Hi: hi},
			{Name: "weight_decay", Lo: 1e-6, Hi: 1, Log: true},
		}
		streams := xrand.NewStreams(seed)
		split, err := task.Split(streams.Get(xrand.VarDataSplit))
		if err != nil {
			return nil, err
		}
		objective := func(p hpo.Params) float64 {
			perf, err := pipeline.TrainEval(task, p, split.Train, split.Valid, streams.Clone())
			if err != nil {
				return 1
			}
			return 1 - perf
		}
		hist, err := hpo.RandomSearch{}.Optimize(objective, space, *budget,
			streams.Get(xrand.VarHOpt))
		if err != nil {
			return nil, err
		}
		best, _ := hist.Best()
		fmt.Printf("%s: tuned hyperparameters %v (valid error %.4f)\n",
			name, best.Params, best.Value)
		return best.Params, nil
	}

	paramsBig, err := tune("wide-MLP (24..64 hidden)", 24, 64, 11)
	if err != nil {
		log.Fatal(err)
	}
	paramsSmall, err := tune("narrow-MLP (4..12 hidden)", 4, 12, 11)
	if err != nil {
		log.Fatal(err)
	}

	// FixHOptEst(k, All): measurements with every ξO source fresh, the
	// tuned hyperparameters fixed. Pairing via shared trial seeds.
	measure := func(p hpo.Params) varbench.RunFunc {
		return func(seed uint64) (float64, error) {
			streams := xrand.NewStreams(seed)
			split, err := task.Split(streams.Get(xrand.VarDataSplit))
			if err != nil {
				return 0, err
			}
			stv, err := data.Concat(split.Train, split.Valid)
			if err != nil {
				return 0, err
			}
			return pipeline.TrainEval(task, p, stv, split.Test, streams)
		}
	}

	fmt.Printf("\ncollecting up to %d paired FixHOptEst(All) measurements...\n", *k)
	exp := varbench.Experiment{
		Name:        "wide vs narrow MLP on MHC binding",
		A:           measure(paramsBig),
		B:           measure(paramsSmall),
		Seed:        33,
		MaxRuns:     *k,
		Parallelism: *workers,
	}
	res, err := exp.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	d := res.Datasets[0]
	fmt.Printf("wide:   %+v\n", varbench.Summarize(d.ScoresA))
	fmt.Printf("narrow: %+v\n\n", varbench.Summarize(d.ScoresB))
	if err := res.Render(os.Stdout, varbench.TextRenderer{}); err != nil {
		log.Fatal(err)
	}
	if res.EarlyStopped {
		fmt.Printf("early stop (%s) saved %d paired runs\n", res.StopReason, *k-res.Pairs)
	}
}
