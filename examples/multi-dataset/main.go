// Multi-dataset: accumulate evidence that one algorithm beats another
// across several benchmarks (Section 6 of the paper). Each dataset gets the
// recommended P(A>B) test at a Bonferroni-adjusted meaningfulness threshold;
// the verdict requires a meaningful win on every dataset (Dror et al. 2017),
// and Demšar's Wilcoxon over per-dataset means is reported alongside.
//
// The contenders here are "train with data augmentation" (A) versus
// "no augmentation" (B) on three classification case studies.
//
// Run: go run ./examples/multi-dataset [-k pairs]
package main

import (
	"flag"
	"fmt"
	"log"

	"varbench"
	"varbench/internal/augment"
	"varbench/internal/casestudy"
	"varbench/internal/nn"
	"varbench/internal/xrand"
)

func main() {
	k := flag.Int("k", 12, "paired measurements per algorithm per dataset")
	flag.Parse()

	taskNames := []string{"cifar10-vgg11", "sst2-bert", "rte-bert"}
	var datasets []varbench.DatasetScores

	for _, name := range taskNames {
		task, err := casestudy.ByName(name, 20210301)
		if err != nil {
			log.Fatal(err)
		}
		run := func(withAug bool) varbench.RunFunc {
			return func(seed uint64) (float64, error) {
				streams := xrand.NewStreams(seed)
				split, err := task.Split(streams.Get(xrand.VarDataSplit))
				if err != nil {
					return 0, err
				}
				cfg, err := task.Build(task.Defaults())
				if err != nil {
					return 0, err
				}
				if withAug {
					// Ensure augmentation is on, adding it where the task
					// doesn't use it by default.
					if cfg.Augment == nil {
						cfg.Augment = augment.Jitter{Std: 0.05}
					}
				} else {
					cfg.Augment = nil
				}
				res, err := nn.Train(cfg, split.Train, streams)
				if err != nil {
					return 0, err
				}
				return task.Measure(res.Model, split.Test), nil
			}
		}
		fmt.Printf("%s: collecting %d paired runs...\n", name, *k)
		a, b, err := varbench.CollectPaired(run(true), run(false), *k, 77)
		if err != nil {
			log.Fatal(err)
		}
		datasets = append(datasets, varbench.DatasetScores{Name: name, ScoresA: a, ScoresB: b})
	}

	res, err := varbench.CompareAcrossDatasets(datasets)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	for i, c := range res.PerDataset {
		fmt.Printf("%-15s %s\n", res.Names[i], c)
	}
	fmt.Printf("\nall-datasets meaningful win (Dror-style): %v\n", res.AllMeaningful)
	fmt.Printf("Demšar Wilcoxon over per-dataset means: p = %.3f\n", res.WilcoxonP)
	fmt.Println("\nNote the adjusted γ per dataset: with 3 simultaneous comparisons the")
	fmt.Println("meaningfulness bar rises, exactly as Section 6 recommends.")
}
