// Multi-dataset: accumulate evidence that one algorithm beats another
// across several benchmarks (Section 6 of the paper) with one declarative
// Experiment. Each dataset gets the recommended P(A>B) test at a
// Bonferroni-adjusted meaningfulness threshold; the verdict requires a
// meaningful win on every dataset (Dror et al. 2017), and Demšar's Wilcoxon
// over per-dataset means is reported alongside.
//
// The contenders here are "train with data augmentation" (A) versus
// "no augmentation" (B) on three classification case studies.
//
// Run: go run ./examples/multi-dataset [-k pairs] [-p workers]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"varbench"
	"varbench/internal/augment"
	"varbench/internal/casestudy"
	"varbench/internal/nn"
	"varbench/internal/xrand"
)

func main() {
	k := flag.Int("k", 12, "max paired measurements per algorithm per dataset")
	workers := flag.Int("p", 0, "collection parallelism (0 = GOMAXPROCS)")
	flag.Parse()

	taskNames := []string{"cifar10-vgg11", "sst2-bert", "rte-bert"}
	var datasets []varbench.Dataset

	for _, name := range taskNames {
		task, err := casestudy.ByName(name, 20210301)
		if err != nil {
			log.Fatal(err)
		}
		run := func(withAug bool) varbench.RunFunc {
			return func(seed uint64) (float64, error) {
				streams := xrand.NewStreams(seed)
				split, err := task.Split(streams.Get(xrand.VarDataSplit))
				if err != nil {
					return 0, err
				}
				cfg, err := task.Build(task.Defaults())
				if err != nil {
					return 0, err
				}
				if withAug {
					// Ensure augmentation is on, adding it where the task
					// doesn't use it by default.
					if cfg.Augment == nil {
						cfg.Augment = augment.Jitter{Std: 0.05}
					}
				} else {
					cfg.Augment = nil
				}
				res, err := nn.Train(cfg, split.Train, streams)
				if err != nil {
					return 0, err
				}
				return task.Measure(res.Model, split.Test), nil
			}
		}
		datasets = append(datasets, varbench.Dataset{Name: name, A: run(true), B: run(false)})
	}

	exp := varbench.Experiment{
		Name:        "augmentation vs none",
		Datasets:    datasets,
		Seed:        77,
		MaxRuns:     *k,
		Parallelism: *workers,
		Progress: func(p varbench.Progress) {
			fmt.Printf("%s: %d/%d pairs\n", p.Dataset, p.Pairs, p.MaxRuns)
		},
	}
	res, err := exp.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := res.Render(os.Stdout, varbench.TextRenderer{}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nNote the adjusted γ per dataset: with 3 simultaneous comparisons the")
	fmt.Println("meaningfulness bar rises, exactly as Section 6 recommends.")
}
