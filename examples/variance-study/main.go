// Variance study: measure how much each source of variation (data split,
// augmentation, data order, weight init, dropout, hyperparameter
// optimization) contributes to the spread of a benchmark's results — a
// miniature of the paper's Figure 1 on one case study.
//
// The ξO sources are probed through the public Experiment API: one
// Experiment per source, with Sources naming the single source that gets a
// fresh seed on every trial while everything else stays fixed.
// Experiment.Collect then gathers the measurements across a worker pool.
//
// Run: go run ./examples/variance-study [-task name] [-n seeds] [-p workers]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"varbench"
	"varbench/internal/casestudy"
	"varbench/internal/estimator"
	"varbench/internal/hpo"
	"varbench/internal/pipeline"
	"varbench/internal/report"
	"varbench/internal/stats"
	"varbench/internal/xrand"
)

func main() {
	taskName := flag.String("task", "rte-bert", "case study name")
	n := flag.Int("n", 15, "seeds per source (paper: 200)")
	hoptBudget := flag.Int("budget", 10, "HPO trial budget (paper: 200)")
	workers := flag.Int("p", 0, "collection parallelism (0 = GOMAXPROCS)")
	flag.Parse()

	task, err := casestudy.ByName(*taskName, 20210301)
	if err != nil {
		log.Fatal(err)
	}

	// One full pipeline run under the trial's per-source seed assignment:
	// sources the experiment varies get fresh seeds, the rest stay fixed.
	runTrial := func(t varbench.Trial) (float64, error) {
		streams := xrand.NewStreams(0)
		for _, v := range xrand.AllVars() {
			streams.Reseed(v, t.SourceSeed(varbench.Source(v)))
		}
		return pipeline.RunWithParams(task, task.Defaults(), streams)
	}

	tb := &report.Table{
		Title:   fmt.Sprintf("Sources of variation — %s (n=%d seeds each)", task.Name(), *n),
		Headers: []string{"source", "std", "relative to data split"},
	}

	var refStd float64
	for _, v := range task.Sources() {
		var measures []float64
		var err error
		if v == xrand.VarNumericalNoise {
			// The pseudo-source: all seeds fixed, only nondeterministic
			// floating-point accumulation varies. It has no seed stream for
			// Sources to vary, so it keeps the estimator's special-cased
			// protocol.
			measures, err = estimator.SourceMeasures(task, task.Defaults(), v, *n, 7)
		} else {
			exp := varbench.Experiment{
				ATrial:      runTrial,
				Sources:     []varbench.Source{varbench.Source(v)},
				Seed:        7,
				MaxRuns:     *n,
				Parallelism: *workers,
			}
			measures, err = exp.Collect(context.Background())
		}
		if err != nil {
			log.Fatal(err)
		}
		sd := stats.Std(measures)
		if v == xrand.VarDataSplit {
			refStd = sd
		}
		tb.AddRow(string(v), sd, sd/refStd)
	}

	// ξH: rerun the hyperparameter search with different search seeds.
	for _, opt := range []hpo.Optimizer{hpo.RandomSearch{}, hpo.NoisyGrid{}, hpo.BayesOpt{}} {
		measures, err := estimator.HOptMeasures(task, opt, *hoptBudget, 5, 7)
		if err != nil {
			log.Fatal(err)
		}
		sd := stats.Std(measures)
		tb.AddRow(opt.Name(), sd, sd/refStd)
	}

	if err := tb.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nReading the table: if any row rivals the data-split row, ignoring")
	fmt.Println("that source in your benchmark makes its conclusions unreliable.")
}
