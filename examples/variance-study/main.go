// Variance study: measure how much each source of variation (data split,
// augmentation, data order, weight init, dropout, hyperparameter
// optimization) contributes to the spread of a benchmark's results — a
// miniature of the paper's Figure 1 on one case study.
//
// Run: go run ./examples/variance-study [-task name] [-n seeds]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"varbench/internal/casestudy"
	"varbench/internal/estimator"
	"varbench/internal/hpo"
	"varbench/internal/report"
	"varbench/internal/stats"
	"varbench/internal/xrand"
)

func main() {
	taskName := flag.String("task", "rte-bert", "case study name")
	n := flag.Int("n", 15, "seeds per source (paper: 200)")
	hoptBudget := flag.Int("budget", 10, "HPO trial budget (paper: 200)")
	flag.Parse()

	task, err := casestudy.ByName(*taskName, 20210301)
	if err != nil {
		log.Fatal(err)
	}

	tb := &report.Table{
		Title:   fmt.Sprintf("Sources of variation — %s (n=%d seeds each)", task.Name(), *n),
		Headers: []string{"source", "std", "relative to data split"},
	}

	var refStd float64
	for _, v := range task.Sources() {
		measures, err := estimator.SourceMeasures(task, task.Defaults(), v, *n, 7)
		if err != nil {
			log.Fatal(err)
		}
		sd := stats.Std(measures)
		if v == xrand.VarDataSplit {
			refStd = sd
		}
		tb.AddRow(string(v), sd, sd/refStd)
	}

	// ξH: rerun the hyperparameter search with different search seeds.
	for _, opt := range []hpo.Optimizer{hpo.RandomSearch{}, hpo.NoisyGrid{}, hpo.BayesOpt{}} {
		measures, err := estimator.HOptMeasures(task, opt, *hoptBudget, 5, 7)
		if err != nil {
			log.Fatal(err)
		}
		sd := stats.Std(measures)
		tb.AddRow(opt.Name(), sd, sd/refStd)
	}

	if err := tb.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nReading the table: if any row rivals the data-split row, ignoring")
	fmt.Println("that source in your benchmark makes its conclusions unreliable.")
}
