// Variance study: measure how much each source of variation (data split,
// augmentation, data order, weight init, dropout) contributes to the spread
// of a benchmark's results — a miniature of the paper's Figure 1 on one case
// study, through the public VarianceStudy API.
//
// One declarative spec replaces the per-source Experiment loop: the study
// probes every source one at a time (fresh seed per measure, everything else
// fixed), adds a joint-randomization row, and summarizes shares, SE-vs-k
// curves and the bias/Var/ρ/MSE decomposition into one VarianceReport. The
// (source × realization) cells fan out across a worker pool and the report
// is bit-identical at any -p.
//
// With -store DIR the study is durable and resumable: every completed
// measure is appended to DIR/trials.jsonl as soon as it exists, so a killed
// run (Ctrl-C, OOM, preemption) reuses all completed work on rerun instead
// of recomputing it — and a later study with a bigger -k or a subset of the
// sources shares the recorded cells too.
//
// Run: go run ./examples/variance-study [-task name] [-k measures] [-r realizations] [-p workers] [-store dir]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"varbench"
	"varbench/internal/casestudy"
	"varbench/internal/pipeline"
	"varbench/internal/xrand"
	"varbench/store"
)

func main() {
	taskName := flag.String("task", "rte-bert", "case study name")
	k := flag.Int("k", 6, "measures per source per realization (paper: 200)")
	realizations := flag.Int("r", 3, "independent realizations (paper: 20)")
	workers := flag.Int("p", 0, "worker-pool size (0 = GOMAXPROCS)")
	curves := flag.Bool("curves", false, "render SE-vs-k curves")
	storeDir := flag.String("store", "", "trial store DSN: jsonl:DIR, mem:, seglog:DIR or a bare directory (= jsonl); empty = recompute everything")
	flag.Parse()

	task, err := casestudy.ByName(*taskName, 20210301)
	if err != nil {
		log.Fatal(err)
	}

	// One full pipeline run under the trial's per-source seed assignment:
	// sources the study varies get fresh seeds, the rest stay fixed. Using
	// fixed default hyperparameters is the FixHOptEst regime (O(k+T)
	// trainings); rerunning HPO per measure would be the ideal estimator.
	params := task.Defaults()
	runTrial := func(t varbench.Trial) (float64, error) {
		streams := xrand.NewStreams(0)
		for _, v := range xrand.AllVars() {
			streams.Reseed(v, t.SourceSeed(varbench.Source(v)))
		}
		return pipeline.RunWithParams(task, params, streams)
	}

	// Probe the task's own ξO sources (the numerical-noise pseudo-source has
	// no seed stream; `varbench fig1` covers it with the internal protocol).
	var probe []varbench.Source
	for _, v := range task.Sources() {
		if v != xrand.VarNumericalNoise {
			probe = append(probe, varbench.Source(v))
		}
	}

	study := varbench.VarianceStudy{
		Name:         task.Name(),
		Pipeline:     runTrial,
		Sources:      probe,
		K:            *k,
		Realizations: *realizations,
		Seed:         7,
		Parallelism:  *workers,
	}
	if *storeDir != "" {
		st, err := store.OpenDSN(*storeDir)
		if err != nil {
			log.Fatal(err)
		}
		defer st.Close()
		study.Store = st
		// The store cannot hash pipeline code: the ID must change whenever
		// the measurement itself would (here, when the task changes).
		study.PipelineID = "variance-study-example/" + task.Name()
		defer func() {
			hits, misses := st.Stats()
			fmt.Fprintf(os.Stderr, "store: %d measure(s) reused, %d computed\n", hits, misses)
		}()
	}
	rep, err := study.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	if err := rep.Render(os.Stdout, varbench.VarianceTextRenderer{Curves: *curves}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nReading the table: if any row's share rivals the data-split row,")
	fmt.Println("ignoring that source in your benchmark makes its conclusions unreliable.")
	fmt.Println("The joint row varies every probed source at once — the paper's")
	fmt.Println("recommendation — and its share ≈ the sum when sources are independent.")
}
