// Sample-size: power analysis for the probability-of-outperforming test.
// Prints the Noether sample-size curve (Figure C.1) and then *verifies* the
// recommendation by simulation: at the recommended N=29 pairs and a true
// effect P(A>B)=0.75, the test should detect at roughly the designed power.
//
// This is the curve behind varbench.Experiment's defaults: MaxRuns defaults
// to Noether's N for the chosen γ, and early stopping ends collection once
// that N is reached (or sooner, if the bootstrap CI is already conclusive).
//
// Run: go run ./examples/sample-size
package main

import (
	"fmt"
	"log"
	"os"

	"varbench"
	"varbench/internal/report"
	"varbench/internal/simulate"
	"varbench/internal/xrand"
)

func main() {
	tb := &report.Table{
		Title:   "Minimal paired sample size for the P(A>B) test (α=β=0.05)",
		Headers: []string{"γ (effect to detect)", "min N"},
	}
	for _, g := range []float64{0.55, 0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95} {
		tb.AddRow(g, varbench.SampleSize(g))
	}
	if err := tb.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Simulation check of the γ=0.75 recommendation.
	const trueP = 0.75
	n := varbench.SampleSize(trueP)
	model := simulate.Model{Sigma2: 0.0004}
	cfg := simulate.Config{NSim: 400, Bootstrap: 200}
	pts, err := simulate.SampleSizeSweep(cfg, model, trueP, []int{n / 2, n, n * 2}, xrand.New(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated detection rate at true P(A>B)=%.2f:\n", trueP)
	for _, pt := range pts {
		fmt.Printf("  N=%3.0f  prob-outperform: %.2f   paired-t: %.2f\n",
			pt.X, pt.Rates["prob-outperform"], pt.Rates["paired-t"])
	}
	fmt.Printf("\nNoether's N=%d is calibrated for ~95%% power against the\n", n)
	fmt.Println("alternative P(A>B)=γ while controlling false positives at 5%.")
}
