package varbench

import (
	"math"
	"testing"

	"varbench/store"
)

func streamScores() (a, b []float64) {
	a = []float64{0.91, 0.89, 0.93, 0.90, 0.92, 0.88, 0.94, 0.91, 0.90, 0.92, 0.87, 0.95}
	b = []float64{0.85, 0.86, 0.84, 0.87, 0.83, 0.85, 0.86, 0.84, 0.85, 0.83, 0.88, 0.82}
	return a, b
}

func comparisonsEqual(t *testing.T, got, want Comparison, what string) {
	t.Helper()
	if got != want &&
		!(math.Float64bits(got.PAB) == math.Float64bits(want.PAB) &&
			math.Float64bits(got.CILo) == math.Float64bits(want.CILo) &&
			math.Float64bits(got.CIHi) == math.Float64bits(want.CIHi)) {
		t.Fatalf("%s:\n got %+v\nwant %+v", what, got, want)
	}
}

// TestStreamResumeByteIdentical: interrupt a store-backed stream mid-feed
// (Flush + drop), resume under the same pipeline ID, and require the final
// conclusion to be identical to an uninterrupted stream — with the replayed
// prefix skipped rather than recomputed.
func TestStreamResumeByteIdentical(t *testing.T) {
	a, b := streamScores()
	opts := func(st store.Backend) []Option {
		return []Option{WithSeed(11), WithGamma(0.65), WithStore(st), WithPipelineID("resume-test")}
	}

	// Reference: uninterrupted, no store.
	clean, err := NewStream(WithSeed(11), WithGamma(0.65))
	if err != nil {
		t.Fatal(err)
	}
	want, err := clean.Extend(a, b)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	first, err := NewStream(opts(st)...)
	if err != nil {
		t.Fatal(err)
	}
	const cut = 7
	if _, err := first.Extend(a[:cut], b[:cut]); err != nil {
		t.Fatal(err)
	}
	if err := first.Flush(); err != nil {
		t.Fatal(err)
	}
	if st.CountPrefix("analysis/") != 1 {
		t.Fatalf("flush wrote %d analysis records, want 1", st.CountPrefix("analysis/"))
	}
	st.Close() // simulate the process dying after the flush

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	resumed, err := NewStream(opts(st2)...)
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Replaying() || resumed.N() != 0 {
		t.Fatalf("resumed stream: Replaying=%v N=%d, want replaying from 0", resumed.Replaying(), resumed.N())
	}
	// Replay the prefix the snapshot covers: no results yet.
	if res, err := resumed.Extend(a[:cut-1], b[:cut-1]); err != nil || res != nil {
		t.Fatalf("mid-replay extend: res=%v err=%v, want nil/nil", res, err)
	}
	got, err := resumed.Extend(a[cut-1:], b[cut-1:])
	if err != nil {
		t.Fatal(err)
	}
	comparisonsEqual(t, got.Comparison, want.Comparison, "resumed vs uninterrupted")
	if resumed.N() != len(a) {
		t.Fatalf("resumed stream consumed %d pairs, want %d", resumed.N(), len(a))
	}

	// The query-time knobs are not part of the fingerprint: a third stream
	// with a different γ resumes the same state.
	st2.Close()
	st3, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	requeried, err := NewStream(WithSeed(11), WithGamma(0.9), WithStore(st3), WithPipelineID("resume-test"))
	if err != nil {
		t.Fatal(err)
	}
	if !requeried.Replaying() {
		t.Fatal("changed γ invalidated the snapshot; it must not")
	}
}

// TestStreamStaleSnapshotSettles: when the persisted snapshot covers more
// pairs than the new stream has replayed, Result discards it and reports
// on exactly the pairs this stream saw.
func TestStreamStaleSnapshotSettles(t *testing.T) {
	a, b := streamScores()
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	long, err := NewStream(WithSeed(5), WithStore(st), WithPipelineID("stale"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := long.Extend(a, b); err != nil {
		t.Fatal(err)
	}
	if err := long.Flush(); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	short, err := NewStream(WithSeed(5), WithStore(st2), WithPipelineID("stale"))
	if err != nil {
		t.Fatal(err)
	}
	const have = 5
	if res, err := short.Extend(a[:have], b[:have]); err != nil || res != nil {
		t.Fatalf("replaying extend: res=%v err=%v, want nil/nil", res, err)
	}
	got, err := short.Result()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewStream(WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Extend(a[:have], b[:have])
	if err != nil {
		t.Fatal(err)
	}
	comparisonsEqual(t, got.Comparison, want.Comparison, "settled vs fresh over the same prefix")
	if got.Pairs != have {
		t.Fatalf("settled result covers %d pairs, want %d", got.Pairs, have)
	}
}

// TestStreamPoisonedSnapshotRebuilds: if the replayed scores disagree with
// the snapshot's hashed prefix — the file changed under the same pipeline
// ID — the state is rebuilt from the observed scores, not the snapshot.
func TestStreamPoisonedSnapshotRebuilds(t *testing.T) {
	a, b := streamScores()
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := NewStream(WithSeed(9), WithStore(st), WithPipelineID("poison"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := orig.Extend(a[:8], b[:8]); err != nil {
		t.Fatal(err)
	}
	if err := orig.Flush(); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// The "same" file now carries different scores.
	a2 := append([]float64(nil), a...)
	a2[3] += 0.5

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	s, err := NewStream(WithSeed(9), WithStore(st2), WithPipelineID("poison"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Extend(a2, b)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewStream(WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Extend(a2, b)
	if err != nil {
		t.Fatal(err)
	}
	comparisonsEqual(t, got.Comparison, want.Comparison, "rebuilt vs fresh over changed scores")
}
