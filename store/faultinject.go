package store

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"varbench/internal/xrand"
)

// ErrInjected marks every failure produced by the FaultInject wrapper, so
// tests (and retry policies) can classify injected faults with errors.Is
// without string matching.
var ErrInjected = errors.New("injected fault")

// A FaultInject wraps any Backend and fails scripted calls, turning the
// conformance suite and the collection engine into a fault-tolerance test
// rig without touching the engines themselves. Faults are scheduled per
// operation by a small DSL (see ParseFaultSchedule) against a per-op call
// counter, or drawn from a seeded Bernoulli stream — both fully
// deterministic, so a faulty run is reproducible bit for bit.
//
// Fault semantics per operation:
//
//   - put/putjson: the write fails with ErrInjected and never reaches the
//     inner backend — as if the medium rejected it.
//   - get: the lookup reports a miss (Get has no error channel), modeling a
//     read path that lost a record; getjson fails with ErrInjected.
//   - flush: the barrier fails with ErrInjected; previously accepted writes
//     keep whatever durability they already had.
//   - close: Close still closes the inner backend — a crashing shutdown
//     must not leak the flock — but reports ErrInjected.
//
// The zero schedule injects nothing: FaultInject is then a transparent
// proxy, which is exactly how the conformance suite exercises it.
type FaultInject struct {
	inner Backend

	mu    sync.Mutex
	rules []faultRule
	calls map[string]uint64
}

var _ Backend = (*FaultInject)(nil)

// faultRule is one parsed schedule clause. Counter rules fire when the op's
// 1-based call number lands in [from, to]; rate rules fire when the seeded
// Bernoulli draw for that call comes up under rate.
type faultRule struct {
	op       string
	from, to uint64 // counter window; to==MaxUint64 for open-ended "N+"
	rate     float64
	seed     uint64
	seeded   bool
}

// The schedulable operations.
var faultOps = map[string]bool{
	"put": true, "putjson": true, "get": true, "getjson": true,
	"flush": true, "close": true,
}

// NewFaultInject wraps inner with the given parsed schedule.
func NewFaultInject(inner Backend, rules []faultRule) *FaultInject {
	return &FaultInject{inner: inner, rules: rules, calls: make(map[string]uint64)}
}

// ParseFaultSchedule parses the fault DSL: semicolon-separated rules of the
// forms
//
//	op@N      fail the Nth call of op (1-based)
//	op@N-M    fail calls N through M inclusive
//	op@N+     fail every call from the Nth on
//	op~R/S    fail each call with probability R, drawn from seed S
//
// where op is one of put, putjson, get, getjson, flush, close. An empty
// schedule is valid and injects nothing. Examples: "put@4-7",
// "flush@1;put~0.2/42".
func ParseFaultSchedule(schedule string) ([]faultRule, error) {
	var rules []faultRule
	for _, clause := range strings.Split(schedule, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		r, err := parseFaultRule(clause)
		if err != nil {
			return nil, fmt.Errorf("store: fault schedule %q: %w", schedule, err)
		}
		rules = append(rules, r)
	}
	return rules, nil
}

func parseFaultRule(clause string) (faultRule, error) {
	if op, spec, ok := strings.Cut(clause, "@"); ok {
		if !faultOps[op] {
			return faultRule{}, fmt.Errorf("rule %q: unknown op %q", clause, op)
		}
		r := faultRule{op: op}
		switch {
		case strings.HasSuffix(spec, "+"):
			n, err := strconv.ParseUint(strings.TrimSuffix(spec, "+"), 10, 64)
			if err != nil || n == 0 {
				return faultRule{}, fmt.Errorf("rule %q: want op@N+ with N ≥ 1", clause)
			}
			r.from, r.to = n, ^uint64(0)
		case strings.Contains(spec, "-"):
			lo, hi, _ := strings.Cut(spec, "-")
			from, err1 := strconv.ParseUint(lo, 10, 64)
			to, err2 := strconv.ParseUint(hi, 10, 64)
			if err1 != nil || err2 != nil || from == 0 || to < from {
				return faultRule{}, fmt.Errorf("rule %q: want op@N-M with 1 ≤ N ≤ M", clause)
			}
			r.from, r.to = from, to
		default:
			n, err := strconv.ParseUint(spec, 10, 64)
			if err != nil || n == 0 {
				return faultRule{}, fmt.Errorf("rule %q: want op@N with N ≥ 1", clause)
			}
			r.from, r.to = n, n
		}
		return r, nil
	}
	if op, spec, ok := strings.Cut(clause, "~"); ok {
		if !faultOps[op] {
			return faultRule{}, fmt.Errorf("rule %q: unknown op %q", clause, op)
		}
		rateStr, seedStr, ok := strings.Cut(spec, "/")
		if !ok {
			return faultRule{}, fmt.Errorf("rule %q: want op~RATE/SEED", clause)
		}
		rate, err1 := strconv.ParseFloat(rateStr, 64)
		seed, err2 := strconv.ParseUint(seedStr, 10, 64)
		if err1 != nil || err2 != nil || rate < 0 || rate > 1 {
			return faultRule{}, fmt.Errorf("rule %q: want op~RATE/SEED with RATE in [0, 1]", clause)
		}
		return faultRule{op: op, rate: rate, seed: seed, seeded: true}, nil
	}
	return faultRule{}, fmt.Errorf("rule %q: want op@N, op@N-M, op@N+ or op~RATE/SEED", clause)
}

// check advances op's call counter and reports whether this call faults.
func (f *FaultInject) check(op string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls[op]++
	n := f.calls[op]
	for _, r := range f.rules {
		if r.op != op {
			continue
		}
		if r.seeded {
			// One independent deterministic draw per (op, call): the stream
			// depends only on the rule's seed and the call number, never on
			// scheduling.
			draw := xrand.New(r.seed).Split(fmt.Sprintf("fault/%s/%d", op, n)).Float64()
			if draw < r.rate {
				return true
			}
			continue
		}
		if n >= r.from && n <= r.to {
			return true
		}
	}
	return false
}

func (f *FaultInject) injected(op string) error {
	return fmt.Errorf("store: %w: %s call %d", ErrInjected, op, f.callCount(op))
}

func (f *FaultInject) callCount(op string) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls[op]
}

// Get implements Backend; a faulted call reports a miss.
func (f *FaultInject) Get(key, fingerprint string) (float64, bool) {
	if f.check("get") {
		return 0, false
	}
	return f.inner.Get(key, fingerprint)
}

// Put implements Backend; a faulted call fails without reaching the inner
// backend.
func (f *FaultInject) Put(key, fingerprint string, score float64) error {
	if f.check("put") {
		return f.injected("put")
	}
	return f.inner.Put(key, fingerprint, score)
}

// GetJSON implements Backend; a faulted call fails with ErrInjected.
func (f *FaultInject) GetJSON(key, fingerprint string, v any) (bool, error) {
	if f.check("getjson") {
		return false, f.injected("getjson")
	}
	return f.inner.GetJSON(key, fingerprint, v)
}

// PutJSON implements Backend; a faulted call fails without reaching the
// inner backend.
func (f *FaultInject) PutJSON(key, fingerprint string, v any) error {
	if f.check("putjson") {
		return f.injected("putjson")
	}
	return f.inner.PutJSON(key, fingerprint, v)
}

// Len implements Backend, delegating to the inner backend.
func (f *FaultInject) Len() int { return f.inner.Len() }

// CountPrefix implements Backend, delegating to the inner backend.
func (f *FaultInject) CountPrefix(prefix string) int { return f.inner.CountPrefix(prefix) }

// Stats implements Backend, delegating to the inner backend.
func (f *FaultInject) Stats() (hits, misses int64) { return f.inner.Stats() }

// Flush implements Backend; a faulted barrier fails with ErrInjected.
func (f *FaultInject) Flush() error {
	if f.check("flush") {
		return f.injected("flush")
	}
	return f.inner.Flush()
}

// Close implements Backend. A faulted Close still closes the inner backend
// — the flock must be released even on a scripted crash — but reports the
// injected error (joined with the real close error, if any).
func (f *FaultInject) Close() error {
	if f.check("close") {
		err := f.inner.Close()
		if err != nil {
			return errors.Join(f.injected("close"), err)
		}
		return f.injected("close")
	}
	return f.inner.Close()
}
