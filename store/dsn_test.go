package store

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestOpenDSNSchemes(t *testing.T) {
	t.Run("jsonl explicit", func(t *testing.T) {
		dir := t.TempDir()
		b, err := OpenDSN("jsonl:" + dir)
		if err != nil {
			t.Fatal(err)
		}
		defer b.Close()
		if _, ok := b.(*Store); !ok {
			t.Fatalf("jsonl: opened %T, want *Store", b)
		}
	})
	t.Run("bare path means jsonl", func(t *testing.T) {
		for _, dsn := range []string{
			t.TempDir(),
			filepath.Join(t.TempDir(), "nested", "cache"),
		} {
			b, err := OpenDSN(dsn)
			if err != nil {
				t.Fatalf("OpenDSN(%q): %v", dsn, err)
			}
			if _, ok := b.(*Store); !ok {
				t.Fatalf("OpenDSN(%q) opened %T, want *Store", dsn, b)
			}
			b.Close()
		}
	})
	t.Run("mem", func(t *testing.T) {
		b, err := OpenDSN("mem:")
		if err != nil {
			t.Fatal(err)
		}
		defer b.Close()
		if _, ok := b.(*Mem); !ok {
			t.Fatalf("mem: opened %T, want *Mem", b)
		}
	})
	t.Run("seglog", func(t *testing.T) {
		b, err := OpenDSN("seglog:" + t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		defer b.Close()
		if _, ok := b.(*SegLog); !ok {
			t.Fatalf("seglog: opened %T, want *SegLog", b)
		}
	})
}

func TestOpenDSNErrors(t *testing.T) {
	cases := []struct {
		dsn  string
		want string // substring of the error
	}{
		{"bolt:/tmp/x", "unknown scheme"},
		{"bolt:/tmp/x", "jsonl:DIR"}, // the error names the valid schemes
		{"mem:/tmp/x", "takes no path"},
		{"jsonl:", "needs a directory"},
		{"seglog:", "needs a directory"},
	}
	for _, c := range cases {
		b, err := OpenDSN(c.dsn)
		if err == nil {
			b.Close()
			t.Errorf("OpenDSN(%q) succeeded, want error containing %q", c.dsn, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("OpenDSN(%q) = %v, want error containing %q", c.dsn, err, c.want)
		}
	}
}
