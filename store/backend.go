package store

import "errors"

// ErrClosed is returned by writes (Put, PutJSON, Flush) on a closed
// backend. Reads are deliberately NOT in that contract: Get and GetJSON
// keep serving the in-memory index after Close — the log is only consulted
// at Open — so readers draining a pipeline never race a shutdown path's
// Close. Check with errors.Is; backends may wrap it with location context.
var ErrClosed = errors.New("store is closed")

// ErrLocked is returned by Open/OpenSegLog when another live process holds
// the store's advisory lock. It is transient by nature — the lock drops the
// moment the other process exits — which makes it the canonical retryable
// open error (the varbench CLI's -wait-lock flag retries exactly this).
// Check with errors.Is.
var ErrLocked = errors.New("store is locked")

// Backend is the trial-store contract every storage engine implements: a
// durable (or deliberately ephemeral) map from (key, fingerprint) cells to
// either a float64 score or a JSON payload, with last-record-wins
// semantics. varbench's collection engine, analysis-snapshot persistence
// and the compare/variance/watch CLIs all speak this interface and nothing
// more; Open/NewMem/OpenSegLog (or the OpenDSN factory) pick the engine.
//
// Semantics every backend must honor — the conformance suite in
// conformance_test.go pins them, run it against any new backend:
//
//   - Identity: a cell is (key, fingerprint). A record under the same key
//     but a different fingerprint is a different cell; Get/GetJSON never
//     serve across fingerprints (stale-spec rejection).
//   - Last record wins: re-putting a cell replaces its visible value, both
//     live and across reopen for durable backends.
//   - Bit-exact floats: Put/Get round-trip every float64 bit pattern,
//     including NaN and ±Inf, live and across reopen.
//   - Payload isolation: a PutJSON cell is invisible to Get and a Put cell
//     to GetJSON. PutJSON encodes non-finite floats in the payload as null
//     (see internal/jsonx) rather than failing.
//   - Concurrency: all methods are safe for concurrent use; collection
//     worker pools call Get and Put from many goroutines at once.
//   - Durability: Put makes a record visible immediately but durable only
//     at the backend's documented commit point. Flush is the explicit
//     barrier — when it returns, every previously accepted write has
//     reached the backend's durable medium. For the jsonl backend each Put
//     is written (one write syscall) before returning and Flush additionally
//     fsyncs; for seglog Puts coalesce in memory until the group committer's
//     size/interval policy, a Flush, or Close commits them; for mem both
//     are no-ops on an open store.
//   - Close: flushes pending writes, releases the log, and is idempotent.
//     After Close, writes fail with ErrClosed and reads keep serving the
//     in-memory index.
type Backend interface {
	// Get returns the score recorded for (key, fingerprint), if any.
	Get(key, fingerprint string) (float64, bool)
	// Put records one trial score for (key, fingerprint).
	Put(key, fingerprint string, score float64) error
	// GetJSON decodes the JSON payload recorded for (key, fingerprint)
	// into v. It reports whether a payload was found; a found-but-
	// undecodable payload returns an error.
	GetJSON(key, fingerprint string, v any) (bool, error)
	// PutJSON records one JSON payload — e.g. a cached analysis snapshot —
	// for (key, fingerprint). Non-finite floats in v are encoded as null.
	PutJSON(key, fingerprint string, v any) error
	// Len returns the number of distinct (key, fingerprint) cells.
	Len() int
	// CountPrefix returns the number of distinct cells whose key starts
	// with prefix — e.g. "trial/" or "analysis/", the two key families
	// varbench writes.
	CountPrefix(prefix string) int
	// Stats returns how many Get/GetJSON lookups hit and missed since the
	// backend was opened.
	Stats() (hits, misses int64)
	// Flush is the durability barrier: every write accepted before Flush
	// is durable when it returns. On a closed backend it fails with
	// ErrClosed.
	Flush() error
	// Close flushes pending writes and releases the backend. Idempotent.
	Close() error
}

// The three shipped backends satisfy the contract.
var (
	_ Backend = (*Store)(nil)
	_ Backend = (*Mem)(nil)
	_ Backend = (*SegLog)(nil)
)
