//go:build unix

package store

import (
	"errors"
	"testing"
)

// TestOpenContentionReturnsErrLocked pins the flock contract both engines
// share: a second open of a live store fails immediately (non-blocking)
// with an errors.Is-able ErrLocked, and succeeds the moment the holder
// closes — the behavior the CLI's -wait-lock retry loop is built on.
func TestOpenContentionReturnsErrLocked(t *testing.T) {
	t.Run("jsonl", func(t *testing.T) {
		dir := t.TempDir()
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir); !errors.Is(err, ErrLocked) {
			t.Fatalf("second Open: %v, want ErrLocked", err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		re, err := Open(dir)
		if err != nil {
			t.Fatalf("Open after holder closed: %v", err)
		}
		re.Close()
	})
	t.Run("seglog", func(t *testing.T) {
		dir := t.TempDir()
		s, err := OpenSegLog(dir)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := OpenSegLog(dir); !errors.Is(err, ErrLocked) {
			t.Fatalf("second OpenSegLog: %v, want ErrLocked", err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		re, err := OpenSegLog(dir)
		if err != nil {
			t.Fatalf("OpenSegLog after holder closed: %v", err)
		}
		re.Close()
	})
}
