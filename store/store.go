// Package store provides durable, content-addressed trial stores that make
// varbench collection resumable and let overlapping studies share
// identical (seed, trial) cells instead of recomputing them. Every engine
// implements the Backend interface (see backend.go); three ship: the
// append-only JSONL log below (the default), an in-memory store (Mem) and
// a segmented binary log with group-commit coalescing (SegLog). OpenDSN
// selects one by DSN ("jsonl:DIR", "mem:", "seglog:DIR"; a bare path means
// jsonl). The rest of this comment documents the JSONL engine; the
// cross-backend semantics — cell identity, last-record-wins, bit-exact
// floats, the Flush durability barrier — live on Backend.
//
// Every record is addressed by a (key, fingerprint) pair. The key names one
// deterministic trial identity — varbench builds it from the experiment or
// study seed, the dataset (or (source, realization) cell, whose seed root
// derives from the study seed and realization index), the trial index and
// the pipeline side (A/B). The fingerprint hashes the parts of the spec
// that change what the trial measures — the varied-source set and the
// caller's pipeline ID — so a stale cache is rejected (the cell is simply
// recomputed and appended under the new fingerprint), never silently
// reused. Because trial seeds in varbench depend only on (seed, dataset,
// index), a record is valid for any MaxRuns/K, any Parallelism and any
// early-stop outcome: raising a study's budget or re-running after an
// interrupt reuses every completed trial bit-for-bit.
//
// Durability model: one JSON line is appended per completed trial, flushed
// to the OS before Put returns. A process killed mid-write leaves at most
// one torn final line, which Open skips; everything before it is intact, so
// an interrupted run resumes exactly where it stopped. The log is
// append-only — rewrites never happen, and duplicate (key, fingerprint)
// appends (e.g. two concurrent studies sharing one Store racing on a
// shared cell) are harmless because both sides computed the same
// deterministic score; the last record wins the in-memory index. One
// PROCESS owns a store at a time: Open takes an exclusive advisory lock
// (auto-released by the kernel when the process exits, however it dies)
// and fails fast when another live process holds the store, which is what
// makes the tail repair safe.
//
// The store does not hash pipeline code. Runs sharing a directory must
// execute the same pipeline per (PipelineID, side); use one directory per
// pipeline, or distinct pipeline IDs, when in doubt.
package store

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"varbench/internal/jsonx"
)

// LogName is the trial log's file name inside the store directory.
const LogName = "trials.jsonl"

// record is one JSONL line. Score is a strconv-formatted float ('g', -1),
// which round-trips every finite float64 exactly and — unlike a JSON number
// — also represents NaN and ±Inf, so a pipeline returning a non-finite
// score resumes to the identical value.
type record struct {
	Key         string          `json:"key"`
	Fingerprint string          `json:"fp"`
	Score       string          `json:"score,omitempty"`
	Value       json.RawMessage `json:"value,omitempty"`
}

type entry struct {
	score    float64
	hasScore bool
	value    json.RawMessage
}

// Store is a durable trial cache backed by an append-only JSONL log. All
// methods are safe for concurrent use; collection worker pools call Get and
// Put from many goroutines at once.
type Store struct {
	mu   sync.Mutex
	f    *os.File
	idx  map[string]entry // key + "\x00" + fingerprint
	path string

	hits   atomic.Int64
	misses atomic.Int64
}

// Open creates dir if needed and loads the trial log inside it. A torn
// final line — the signature of a process killed mid-append — is skipped;
// a malformed line anywhere else reports corruption.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	path := filepath.Join(dir, LogName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	// One process at a time: the exclusive flock (held until Close, auto-
	// released by the kernel even on SIGKILL) keeps a second process from
	// misreading a live writer's in-flight append as a torn tail and
	// truncating a completed record away. Concurrent use within one
	// process — many goroutines, many studies sharing one *Store — is
	// fully supported.
	if err := lockFile(f); err != nil {
		f.Close()
		return nil, err
	}
	s := &Store{f: f, idx: make(map[string]entry), path: path}
	if err := s.load(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// load replays the log into the index and repairs the tail. Later records
// win, so a cell re-recorded under a new fingerprint coexists with the old
// one and a duplicate append is a no-op. A final line without a newline is
// the signature of a process killed mid-append: if it parses, the record is
// kept and the missing newline written; if not, the torn bytes are
// truncated away. Either way the next append starts on a clean line.
func (s *Store) load() error {
	r := bufio.NewReaderSize(s.f, 64*1024)
	var offset int64 // end of the last intact, newline-terminated prefix
	lineno := 0
	for {
		line, err := r.ReadBytes('\n')
		if len(line) > 0 {
			lineno++
			terminated := len(line) > 0 && line[len(line)-1] == '\n'
			parseErr := s.indexLine(bytes.TrimRight(line, "\n"), lineno)
			switch {
			case parseErr == nil && terminated:
				offset += int64(len(line))
			case parseErr == nil: // intact record, torn newline
				if _, werr := s.f.Write([]byte("\n")); werr != nil {
					return fmt.Errorf("store: %s: repairing tail: %w", s.path, werr)
				}
				offset += int64(len(line)) + 1
			case terminated || err == nil:
				// Garbage in the middle of the log is real corruption, not
				// an interrupted append; refuse to guess.
				return parseErr
			default: // torn tail: drop it
				if terr := s.f.Truncate(offset); terr != nil {
					return fmt.Errorf("store: %s: truncating torn tail: %w", s.path, terr)
				}
			}
		}
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("store: %s: %w", s.path, err)
		}
	}
}

// indexLine parses one record line into the index. Empty lines are ignored.
func (s *Store) indexLine(line []byte, lineno int) error {
	if len(line) == 0 {
		return nil
	}
	var rec record
	if err := json.Unmarshal(line, &rec); err != nil {
		return fmt.Errorf("store: %s:%d: corrupt record: %w", s.path, lineno, err)
	}
	e := entry{value: rec.Value}
	if rec.Score != "" {
		v, err := strconv.ParseFloat(rec.Score, 64)
		if err != nil {
			return fmt.Errorf("store: %s:%d: bad score %q: %w", s.path, lineno, rec.Score, err)
		}
		e.score, e.hasScore = v, true
	}
	s.idx[rec.Key+"\x00"+rec.Fingerprint] = e
	return nil
}

// Path returns the location of the trial log.
func (s *Store) Path() string { return s.path }

// Len returns the number of distinct (key, fingerprint) cells in the store.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.idx)
}

// CountPrefix returns the number of distinct (key, fingerprint) cells whose
// key starts with prefix — e.g. "trial/" for trial scores or "analysis/"
// for persisted analysis snapshots, the two key families varbench writes.
func (s *Store) CountPrefix(prefix string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for k := range s.idx {
		if strings.HasPrefix(k, prefix) {
			n++
		}
	}
	return n
}

// Stats returns how many Get/GetJSON lookups hit and missed since Open.
func (s *Store) Stats() (hits, misses int64) {
	return s.hits.Load(), s.misses.Load()
}

// Get returns the score recorded for (key, fingerprint), if any. A record
// with a different fingerprint under the same key — a stale cache from an
// older spec — is never returned. Get keeps answering from the in-memory
// index after Close.
func (s *Store) Get(key, fingerprint string) (float64, bool) {
	s.mu.Lock()
	e, ok := s.idx[key+"\x00"+fingerprint]
	s.mu.Unlock()
	if !ok || !e.hasScore {
		s.misses.Add(1)
		return 0, false
	}
	s.hits.Add(1)
	return e.score, true
}

// Put appends one trial score and indexes it. The record is written in a
// single write call, flushed to the OS before Put returns.
func (s *Store) Put(key, fingerprint string, score float64) error {
	return s.append(record{
		Key:         key,
		Fingerprint: fingerprint,
		Score:       strconv.FormatFloat(score, 'g', -1, 64),
	}, entry{score: score, hasScore: true})
}

// GetJSON decodes the JSON payload recorded for (key, fingerprint) into v.
// It reports whether a payload was found; a found-but-undecodable payload
// returns an error. Like Get, it keeps answering from the in-memory index
// after Close.
func (s *Store) GetJSON(key, fingerprint string, v any) (bool, error) {
	s.mu.Lock()
	e, ok := s.idx[key+"\x00"+fingerprint]
	s.mu.Unlock()
	if !ok || e.value == nil {
		s.misses.Add(1)
		return false, nil
	}
	if err := json.Unmarshal(e.value, v); err != nil {
		s.misses.Add(1)
		return false, fmt.Errorf("store: %s: payload for %q: %w", s.path, key, err)
	}
	s.hits.Add(1)
	return true, nil
}

// PutJSON appends one JSON payload record — e.g. a cached analysis result —
// and indexes it. Non-finite floats in v are encoded as null.
func (s *Store) PutJSON(key, fingerprint string, v any) error {
	raw, err := jsonx.Marshal(v)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return s.append(record{Key: key, Fingerprint: fingerprint, Value: raw},
		entry{value: raw})
}

func (s *Store) append(rec record, e entry) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("store: %s: %w", s.path, ErrClosed)
	}
	if _, err := s.f.Write(line); err != nil {
		return fmt.Errorf("store: %s: %w", s.path, err)
	}
	s.idx[rec.Key+"\x00"+rec.Fingerprint] = e
	return nil
}

// Flush is the durability barrier: every Put/PutJSON accepted before the
// call had already reached the OS (each append is one write syscall), and
// Flush additionally fsyncs the log so the records survive power loss. On
// a closed store it fails with ErrClosed.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("store: %s: %w", s.path, ErrClosed)
	}
	if err := s.f.Sync(); err != nil { //lint:allow lockorder(single-file backend: the fsync IS the serialized commit; seglog is the backend that moves it off the lock)
		return fmt.Errorf("store: %s: %w", s.path, err)
	}
	return nil
}

// Close releases the log file and the process lock. Idempotent. After
// Close, Put/PutJSON/Flush fail with ErrClosed while Get/GetJSON keep
// serving the in-memory index — the log is only consulted at Open, so
// readers draining a pipeline never race a shutdown path's Close.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// Fingerprint hashes canonical spec parts into a short hex digest. Parts
// are length-delimited, so ("ab", "c") and ("a", "bc") differ.
func Fingerprint(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		fmt.Fprintf(h, "%d:", len(p))
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// TrialKey names one deterministic trial identity: the collection seed (an
// experiment's root seed, or a variance cell's realization root), the
// dataset label, the trial index and the pipeline side ("A"/"B"). varbench
// builds every store key through this one function, so external tools can
// address the same cells.
func TrialKey(seed uint64, dataset string, index int, side string) string {
	return fmt.Sprintf("trial/seed=%d/dataset=%s/run=%d/%s", seed, dataset, index, side)
}

// FailureKey names one quarantined trial cell, addressing the same
// (seed, dataset, index, side) coordinates as TrialKey under the failure/
// prefix. The payload is the trial's attempt history (varbench's
// failureRecord JSON); it is written for audit when a non-FailFast run
// exhausts the cell's retry budget and never read back as a result — a
// later successful resume writes the trial/ key and the failure record
// simply stays behind as history.
func FailureKey(seed uint64, dataset string, index int, side string) string {
	return fmt.Sprintf("failure/seed=%d/dataset=%s/run=%d/%s", seed, dataset, index, side)
}

// AnalysisKey names one resumable analysis identity: the root seed of the
// bootstrap randomness plus a scope label (a dataset name for experiment
// runs, a caller-chosen stream ID for streaming analyses). Analysis
// snapshots ride the same append-only log as trials, as JSON payload
// records (PutJSON) of the form
//
//	{"n": <pairs consumed>, "hash": "<prefix hash, hex>", "state": "<base64>"}
//
// where state is the binary accumulator snapshot documented in
// internal/stats/incremental.go (running per-resample sums; float bit
// patterns preserved exactly) wrapped in the analysis header of
// internal/compare. The fingerprint covers the kernel ID/version, the
// resample count K, the analysis seed and the spec fingerprint of the
// scores feeding it, so a snapshot is invalidated — recomputed, never
// silently reused — whenever K, the kernel, the seed derivation or the
// collection spec changes. Later snapshots for the same key supersede
// earlier ones via the last-record-wins index, and a torn final snapshot
// line is repaired by the same Open machinery that repairs torn trials.
func AnalysisKey(seed uint64, scope string) string {
	return fmt.Sprintf("analysis/seed=%d/scope=%s", seed, scope)
}
