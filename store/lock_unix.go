//go:build unix

package store

import (
	"errors"
	"fmt"
	"os"
	"syscall"
)

// lockFile takes a non-blocking exclusive advisory flock on the trial log
// for the lifetime of the Store. The kernel releases the lock when the file
// descriptor closes — including on SIGKILL or a crash — so an interrupted
// run never leaves the store wedged. The lock is what makes Open's tail
// repair (truncating torn bytes) safe: without it, a second process could
// read a live writer's in-flight append as a torn tail and truncate away a
// completed record.
func lockFile(f *os.File) error {
	err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
	if errors.Is(err, syscall.EWOULDBLOCK) {
		return fmt.Errorf("store: %w: %s is held by another process (the lock is released automatically when that process exits)", ErrLocked, f.Name())
	}
	if err != nil {
		return fmt.Errorf("store: locking %s: %w", f.Name(), err)
	}
	return nil
}
