package store

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzOpenRepairsTail throws arbitrary bytes at the log's recovery path.
// The contract under fuzzing: Open either rejects the log with an error or
// returns a fully working store — never panics, and never leaves the log in
// a state a second Open would refuse. The torn-tail repair (parse-and-keep
// an unterminated final record, truncate unparseable tail bytes) is exactly
// the code a crashed run depends on, so it must hold for every input, not
// just the truncations the unit tests enumerate.
func FuzzOpenRepairsTail(f *testing.F) {
	intact := `{"key":"k1","fp":"f1","score":"0x1p-1"}` + "\n"
	f.Add([]byte(nil))
	f.Add([]byte("\n"))
	f.Add([]byte(intact))
	f.Add([]byte(intact + `{"key":"k2","fp":"f2","sco`))        // torn mid-append
	f.Add([]byte(intact + `{"key":"k2","fp":"f2","score":""}`)) // intact, torn newline
	f.Add([]byte(`{"key":"k1"`))                                // torn first line
	f.Add([]byte("not json at all\n" + intact))                 // garbage mid-log
	f.Add([]byte(`{"key":"k1","fp":"f1","score":"NaN"}` + "\n"))
	f.Add([]byte{0xff, 0xfe, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, LogName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir)
		if err != nil {
			return // rejecting corruption is fine; crashing is not
		}
		// The repaired store must be fully usable: append one record...
		key := TrialKey(7, "fuzz-ds", 0, "A")
		fp := Fingerprint("fuzz")
		if err := s.Put(key, fp, 0.5); err != nil {
			t.Fatalf("Put on repaired store: %v", err)
		}
		if got, ok := s.Get(key, fp); !ok || got != 0.5 {
			t.Fatalf("Get after Put = (%v, %v), want (0.5, true)", got, ok)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		// ...and the repair must be durable: a second Open of the same log
		// has to succeed and still serve both the new record and any record
		// the first Open indexed.
		s2, err := Open(dir)
		if err != nil {
			t.Fatalf("reopen after repair: %v", err)
		}
		defer s2.Close()
		if got, ok := s2.Get(key, fp); !ok || got != 0.5 {
			t.Fatalf("Get after reopen = (%v, %v), want (0.5, true)", got, ok)
		}
	})
}
