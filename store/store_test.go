package store

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	key := TrialKey(7, "cifar", 3, "A")
	fp := Fingerprint("spec/v1", "varied=weights-init")
	if _, ok := s.Get(key, fp); ok {
		t.Fatal("empty store should miss")
	}
	if err := s.Put(key, fp, 0.8125); err != nil {
		t.Fatal(err)
	}
	v, ok := s.Get(key, fp)
	if !ok || v != 0.8125 {
		t.Fatalf("Get = %v, %v; want 0.8125, true", v, ok)
	}
	if hits, misses := s.Stats(); hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits, %d misses; want 1, 1", hits, misses)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
}

// TestFingerprintRejectsStaleCache: a record is only served to the exact
// spec that wrote it; the same key under a new fingerprint misses.
func TestFingerprintRejectsStaleCache(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	key := TrialKey(1, "", 0, "A")
	if err := s.Put(key, "fp-old", 1); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key, "fp-new"); ok {
		t.Fatal("stale record must not be served under a different fingerprint")
	}
	// Both fingerprints coexist after recomputation.
	if err := s.Put(key, "fp-new", 2); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Get(key, "fp-old"); !ok || v != 1 {
		t.Errorf("old record lost: %v, %v", v, ok)
	}
	if v, ok := s.Get(key, "fp-new"); !ok || v != 2 {
		t.Errorf("new record missing: %v, %v", v, ok)
	}
}

// TestReopenPersistence: scores survive Close/Open, bit-exactly — including
// values JSON cannot represent as numbers and floats needing all 17 digits.
func TestReopenPersistence(t *testing.T) {
	dir := t.TempDir()
	scores := map[string]float64{
		"exact":  0.1 + 0.2, // 0.30000000000000004
		"tiny":   5e-324,
		"big":    1.7976931348623157e308,
		"neg":    -0.0,
		"nan":    math.NaN(),
		"posinf": math.Inf(1),
		"neginf": math.Inf(-1),
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range scores {
		if err := s.Put(k, "fp", v); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != len(scores) {
		t.Fatalf("Len after reopen = %d, want %d", s2.Len(), len(scores))
	}
	for k, want := range scores {
		got, ok := s2.Get(k, "fp")
		if !ok {
			t.Errorf("%s missing after reopen", k)
			continue
		}
		if math.IsNaN(want) {
			if !math.IsNaN(got) {
				t.Errorf("%s = %v, want NaN", k, got)
			}
		} else if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("%s = %x, want %x (not bit-identical)", k, got, want)
		}
	}
}

// TestTornFinalLineSkipped: a process killed mid-append leaves a truncated
// last line; Open must keep every complete record and drop only the torn
// tail, so an interrupted run stays resumable.
func TestTornFinalLineSkipped(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Put(TrialKey(1, "", i, "A"), "fp", float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	path := filepath.Join(dir, LogName)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"trial/seed=1/dataset=/run=3/A","fp":"fp","sco`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("torn tail must not fail Open: %v", err)
	}
	defer s2.Close()
	if s2.Len() != 3 {
		t.Errorf("Len = %d, want 3 (torn line dropped)", s2.Len())
	}
	// Open truncated the torn bytes, so the next append starts on a clean
	// line and the store stays fully loadable.
	if err := s2.Put(TrialKey(1, "", 3, "A"), "fp", 3); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if v, ok := s3.Get(TrialKey(1, "", 2, "A"), "fp"); !ok || v != 2 {
		t.Errorf("record before torn tail lost: %v %v", v, ok)
	}
	if v, ok := s3.Get(TrialKey(1, "", 3, "A"), "fp"); !ok || v != 3 {
		t.Errorf("record appended after repair lost: %v %v", v, ok)
	}
}

// TestUnterminatedButCompleteTailKept: a kill can land after the record's
// JSON bytes but before its newline; the record is complete and must be
// kept, with the newline repaired so the next append stays on its own line.
func TestUnterminatedButCompleteTailKept(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, LogName)
	content := `{"key":"a","fp":"f","score":"1"}` + "\n" +
		`{"key":"b","fp":"f","score":"2"}` // no trailing newline
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Get("b", "f"); !ok || v != 2 {
		t.Fatalf("unterminated complete record lost: %v %v", v, ok)
	}
	if err := s.Put("c", "f", 3); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 3 {
		t.Errorf("Len = %d, want 3", s2.Len())
	}
}

// TestCorruptMiddleLineErrors: garbage anywhere but the tail is real
// corruption and must be reported, not silently dropped.
func TestCorruptMiddleLineErrors(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, LogName)
	content := `{"key":"a","fp":"f","score":"1"}` + "\n" +
		"garbage not json\n" +
		`{"key":"b","fp":"f","score":"2"}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("want corrupt-record error, got %v", err)
	}
}

func TestConcurrentPutGet(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += 8 {
				key := TrialKey(1, "ds", i, "A")
				if err := s.Put(key, "fp", float64(i)); err != nil {
					t.Error(err)
					return
				}
				if v, ok := s.Get(key, "fp"); !ok || v != float64(i) {
					t.Errorf("Get(%d) = %v, %v", i, v, ok)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != n {
		t.Errorf("Len after concurrent writes = %d, want %d", s2.Len(), n)
	}
}

func TestJSONPayload(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	type payload struct {
		Name string    `json:"name"`
		P    float64   `json:"p"`
		Xs   []float64 `json:"xs"`
	}
	in := payload{Name: "analysis", P: 0.97, Xs: []float64{1, 2}}
	if ok, err := s.GetJSON("k", "fp", &payload{}); ok || err != nil {
		t.Fatalf("empty GetJSON = %v, %v", ok, err)
	}
	if err := s.PutJSON("k", "fp", in); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	var out payload
	ok, err := s2.GetJSON("k", "fp", &out)
	if err != nil || !ok {
		t.Fatalf("GetJSON = %v, %v", ok, err)
	}
	if out.Name != in.Name || out.P != in.P || len(out.Xs) != 2 {
		t.Errorf("payload round-trip: %+v", out)
	}
	// A payload record is invisible to the score API and vice versa.
	if _, ok := s2.Get("k", "fp"); ok {
		t.Error("Get must not serve a JSON payload as a score")
	}
	// NaN payloads encode as null rather than failing the append.
	if err := s2.PutJSON("k2", "fp", payload{P: math.NaN()}); err != nil {
		t.Fatalf("NaN payload: %v", err)
	}
}

// TestOpenExcludesSecondOpener: the advisory lock makes the tail repair
// safe — a second Open of a live store fails fast instead of racing the
// writer, and the lock dies with the holder (here: with Close).
func TestOpenExcludesSecondOpener(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "locked") {
		s1.Close()
		t.Fatalf("second Open of a live store: want locked error, got %v", err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("Open after Close must succeed: %v", err)
	}
	s2.Close()
}

func TestFingerprintProperties(t *testing.T) {
	if Fingerprint("ab", "c") == Fingerprint("a", "bc") {
		t.Error("fingerprint must be length-delimited")
	}
	if Fingerprint("x") != Fingerprint("x") {
		t.Error("fingerprint must be deterministic")
	}
	if len(Fingerprint()) != 32 {
		t.Errorf("fingerprint length = %d, want 32 hex chars", len(Fingerprint()))
	}
}
