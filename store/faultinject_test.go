package store

import (
	"errors"
	"strings"
	"testing"
)

func TestParseFaultSchedule(t *testing.T) {
	valid := []struct {
		in   string
		want int
	}{
		{"", 0},
		{"  ;  ", 0},
		{"put@4", 1},
		{"put@4-7", 1},
		{"flush@2+", 1},
		{"get~0.25/42", 1},
		{"put@1;putjson@2-3;close@1;get~1/7", 4},
	}
	for _, tc := range valid {
		rules, err := ParseFaultSchedule(tc.in)
		if err != nil {
			t.Errorf("ParseFaultSchedule(%q): %v", tc.in, err)
			continue
		}
		if len(rules) != tc.want {
			t.Errorf("ParseFaultSchedule(%q): %d rules, want %d", tc.in, len(rules), tc.want)
		}
	}
	invalid := []string{
		"put", "put@", "put@0", "put@7-4", "put@x", "put@1-",
		"frobnicate@1", "put~0.5", "put~2/1", "put~-0.1/1", "put~0.5/x",
	}
	for _, in := range invalid {
		if _, err := ParseFaultSchedule(in); err == nil {
			t.Errorf("ParseFaultSchedule(%q): want error", in)
		}
	}
}

func TestFaultInjectCounterWindow(t *testing.T) {
	rules, err := ParseFaultSchedule("put@2-3")
	if err != nil {
		t.Fatal(err)
	}
	f := NewFaultInject(NewMem(), rules)
	for i, wantErr := range []bool{false, true, true, false, false} {
		err := f.Put("k", "fp", float64(i))
		if gotErr := err != nil; gotErr != wantErr {
			t.Fatalf("put %d: err=%v, want fault=%v", i+1, err, wantErr)
		}
		if err != nil && !errors.Is(err, ErrInjected) {
			t.Fatalf("put %d: %v is not ErrInjected", i+1, err)
		}
	}
	// The failed writes never reached the inner backend: the visible value
	// is from the last successful call.
	if v, ok := f.Get("k", "fp"); !ok || v != 4 {
		t.Fatalf("Get = %v, %v; want 4, true", v, ok)
	}
}

func TestFaultInjectOpenEnded(t *testing.T) {
	rules, err := ParseFaultSchedule("flush@2+")
	if err != nil {
		t.Fatal(err)
	}
	f := NewFaultInject(NewMem(), rules)
	if err := f.Flush(); err != nil {
		t.Fatalf("flush 1: %v", err)
	}
	for i := 2; i <= 4; i++ {
		if err := f.Flush(); !errors.Is(err, ErrInjected) {
			t.Fatalf("flush %d: %v, want ErrInjected", i, err)
		}
	}
}

func TestFaultInjectGetFaultIsMiss(t *testing.T) {
	rules, err := ParseFaultSchedule("get@1")
	if err != nil {
		t.Fatal(err)
	}
	f := NewFaultInject(NewMem(), rules)
	if err := f.Put("k", "fp", 7); err != nil {
		t.Fatal(err)
	}
	if _, ok := f.Get("k", "fp"); ok {
		t.Fatal("faulted Get reported a hit")
	}
	if v, ok := f.Get("k", "fp"); !ok || v != 7 {
		t.Fatalf("second Get = %v, %v; want 7, true", v, ok)
	}
}

func TestFaultInjectSeededDeterminism(t *testing.T) {
	run := func() []bool {
		rules, err := ParseFaultSchedule("put~0.5/42")
		if err != nil {
			t.Fatal(err)
		}
		f := NewFaultInject(NewMem(), rules)
		outcomes := make([]bool, 64)
		for i := range outcomes {
			outcomes[i] = f.Put("k", "fp", float64(i)) != nil
		}
		return outcomes
	}
	a, b := run(), run()
	faults := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d: outcomes diverge across identical runs", i+1)
		}
		if a[i] {
			faults++
		}
	}
	// A 50% Bernoulli over 64 draws lands well inside (8, 56) — this guards
	// against a stream that is constant, not against exact probabilities.
	if faults <= 8 || faults >= 56 {
		t.Fatalf("%d/64 faults for rate 0.5: stream looks degenerate", faults)
	}
}

// TestFaultInjectCrashedClose scripts the torn-write-then-crash scenario:
// the final Put is rejected, Close reports an injected crash — but the
// inner log's flock must still be released, so a reopen succeeds and serves
// every write accepted before the fault.
func TestFaultInjectCrashedClose(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDSN("faultinject:put@3;close@1:jsonl:" + dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", "fp", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", "fp", 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("c", "fp", 3); !errors.Is(err, ErrInjected) {
		t.Fatalf("third put: %v, want ErrInjected", err)
	}
	if err := s.Close(); !errors.Is(err, ErrInjected) {
		t.Fatalf("close: %v, want ErrInjected", err)
	}
	// The crashing close still released the lock: reopening plain works and
	// the accepted writes survived, the faulted one does not exist.
	re, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after crashed close: %v", err)
	}
	defer re.Close()
	if v, ok := re.Get("a", "fp"); !ok || v != 1 {
		t.Fatalf("a = %v, %v; want 1, true", v, ok)
	}
	if v, ok := re.Get("b", "fp"); !ok || v != 2 {
		t.Fatalf("b = %v, %v; want 2, true", v, ok)
	}
	if _, ok := re.Get("c", "fp"); ok {
		t.Fatal("faulted write c is visible after reopen")
	}
}

func TestFaultInjectDSNErrors(t *testing.T) {
	for _, dsn := range []string{
		"faultinject:",            // no inner DSN
		"faultinject:put@1",       // no inner DSN either
		"faultinject:put@0:mem:",  // bad schedule
		"faultinject:nope@1:mem:", // unknown op
	} {
		if _, err := OpenDSN(dsn); err == nil {
			t.Errorf("OpenDSN(%q): want error", dsn)
		} else if !strings.Contains(err.Error(), "faultinject") && !strings.Contains(err.Error(), "fault schedule") {
			t.Errorf("OpenDSN(%q): unhelpful error %v", dsn, err)
		}
	}
}
