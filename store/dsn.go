package store

import (
	"fmt"
	"strings"
)

// OpenDSN opens a Backend named by a DSN of the form "scheme:rest":
//
//	jsonl:DIR    the append-only JSONL log (the default engine)
//	mem:         an in-memory store; nothing survives the process
//	seglog:DIR   the segmented binary log with group-commit coalescing
//
//	faultinject:SCHEDULE:INNER_DSN
//	             a fault-injection wrapper around any of the above, failing
//	             scripted calls per SCHEDULE (see ParseFaultSchedule), e.g.
//	             faultinject:put@4-7:jsonl:cache or
//	             faultinject:put~0.2/42:seglog:cache. An empty SCHEDULE
//	             injects nothing. For testing fault tolerance.
//
// A DSN with no recognizable scheme — a bare directory like "cache",
// "./cache" or "/tmp/cache", including Windows drive paths — opens the
// jsonl backend on that directory, so every pre-DSN store argument keeps
// meaning what it meant. An unknown lowercase scheme is an error naming
// the valid ones rather than a surprise directory with a colon in it.
func OpenDSN(dsn string, opts ...SegLogOption) (Backend, error) {
	scheme, rest, ok := splitScheme(dsn)
	if !ok {
		scheme, rest = "jsonl", dsn
	}
	switch scheme {
	case "jsonl":
		if rest == "" {
			return nil, fmt.Errorf("store: DSN %q: jsonl: needs a directory, e.g. jsonl:cache", dsn)
		}
		return Open(rest)
	case "mem":
		if rest != "" {
			return nil, fmt.Errorf("store: DSN %q: mem: takes no path", dsn)
		}
		return NewMem(), nil
	case "seglog":
		if rest == "" {
			return nil, fmt.Errorf("store: DSN %q: seglog: needs a directory, e.g. seglog:cache", dsn)
		}
		return OpenSegLog(rest, opts...)
	case "faultinject":
		schedule, inner, ok := strings.Cut(rest, ":")
		if !ok {
			return nil, fmt.Errorf("store: DSN %q: faultinject: want faultinject:SCHEDULE:INNER_DSN, e.g. faultinject:put@4-7:jsonl:cache", dsn)
		}
		rules, err := ParseFaultSchedule(schedule)
		if err != nil {
			return nil, fmt.Errorf("store: DSN %q: %w", dsn, err)
		}
		b, err := OpenDSN(inner, opts...)
		if err != nil {
			return nil, err
		}
		return NewFaultInject(b, rules), nil
	default:
		return nil, fmt.Errorf("store: DSN %q: unknown scheme %q (valid: jsonl:DIR, mem:, seglog:DIR, faultinject:SCHEDULE:INNER_DSN; a bare path means jsonl)", dsn, scheme)
	}
}

// splitScheme splits "scheme:rest" when the text before the first colon is
// shaped like a scheme: one or more lowercase ASCII letters. Anything else
// — no colon, "./x", "C:\x", an empty prefix — is not a scheme, so the
// whole string reads as a bare path.
func splitScheme(dsn string) (scheme, rest string, ok bool) {
	i := strings.IndexByte(dsn, ':')
	if i < 1 {
		return "", "", false
	}
	for _, c := range dsn[:i] {
		if c < 'a' || c > 'z' {
			return "", "", false
		}
	}
	return dsn[:i], dsn[i+1:], true
}
