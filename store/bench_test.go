package store

// The coalescing benchmarks behind BENCH_8.json: per-append-flush JSONL
// Put (one write+fsync commit per record) versus group-committed seglog
// Put (memcpy into the pending batch; the committer amortizes write+fsync
// over the whole batch). The two are durability-equivalent — every record
// has reached its commit point when the timer stops — which is exactly the
// trade group commit makes: the same commits, amortized. CI gates on the
// ratio: seglog must stay ≥5x faster per op. The plain per-append (write,
// no fsync) JSONL number rides along uncontested for context.

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func benchKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = TrialKey(uint64(i%8), "bench-ds", i, "A")
	}
	return keys
}

// BenchmarkStorePutJSONLPerAppendFlush commits every record before moving
// on: one Put (write syscall) plus one Flush (fsync) per op — the
// per-append durability seglog's group committer provides in batches.
func BenchmarkStorePutJSONLPerAppendFlush(b *testing.B) {
	s, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	keys := benchKeys(b.N)
	fp := Fingerprint("bench/v1")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put(keys[i], fp, float64(i)); err != nil {
			b.Fatal(err)
		}
		if err := s.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStorePutJSONLPerAppend measures today's default durability
// point: every Put is one write syscall before it returns, with no fsync.
func BenchmarkStorePutJSONLPerAppend(b *testing.B) {
	s, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	keys := benchKeys(b.N)
	fp := Fingerprint("bench/v1")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put(keys[i], fp, float64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStorePutSegLogCoalesced measures the group-committed append:
// Put stages the frame in memory and the committer batches the I/O. The
// final Flush keeps the comparison honest — every record is durable when
// the timer stops, just like the JSONL side.
func BenchmarkStorePutSegLogCoalesced(b *testing.B) {
	s, err := OpenSegLog(b.TempDir(), WithFlushInterval(2*time.Millisecond))
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	keys := benchKeys(b.N)
	fp := Fingerprint("bench/v1")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put(keys[i], fp, float64(i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkStorePutParallel runs both backends under a worker-pool write
// pattern — the shape a Parallelism-N collection produces — so the
// coalescing win is measured under lock contention too.
func BenchmarkStorePutParallel(b *testing.B) {
	for _, bk := range []struct {
		name string
		open func(b *testing.B) Backend
	}{
		{"jsonl", func(b *testing.B) Backend {
			s, err := Open(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			return s
		}},
		{"seglog", func(b *testing.B) Backend {
			s, err := OpenSegLog(b.TempDir(), WithFlushInterval(2*time.Millisecond))
			if err != nil {
				b.Fatal(err)
			}
			return s
		}},
	} {
		b.Run(bk.name, func(b *testing.B) {
			s := bk.open(b)
			defer s.Close()
			fp := Fingerprint("bench/v1")
			var worker atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				w := worker.Add(1)
				i := 0
				for pb.Next() {
					key := fmt.Sprintf("trial/seed=%d/dataset=bench-ds/run=%d/A", w, i)
					if err := s.Put(key, fp, float64(i)); err != nil {
						b.Fatal(err)
					}
					i++
				}
			})
			b.StopTimer()
			if err := s.Flush(); err != nil {
				b.Fatal(err)
			}
		})
	}
}
