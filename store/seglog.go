// The seglog backend: a segmented binary record log with group-commit
// coalescing. The JSONL backend issues one write syscall per Put — the
// right durability-by-default when every trial costs seconds of training,
// but the wrong constant factor once trials are cheap or arrive from a
// many-worker fleet, where persistence becomes the hot path. SegLog moves
// the durability point: Put appends the encoded record to an in-memory
// batch and returns after updating the index; a committer goroutine writes
// and fsyncs the batch when a size threshold or coalescing interval
// elapses (group commit — many logical appends, one write+fsync), and
// Flush/Close are explicit barriers. In exchange for the documented
// durability window, Put drops from a syscall to a memcpy under a mutex.
package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"varbench/internal/jsonx"
)

// Segment files are named seg-%08d.log; the zero-padded index makes
// lexical order replay order. The LOCK file guards the whole directory.
const (
	segPrefix   = "seg-"
	segSuffix   = ".log"
	segLockName = "LOCK"
)

// Frame layout: u32 payload length, u32 CRC-32C of the payload, payload.
// Payload: u8 kind, u32 key length, key, u32 fingerprint length,
// fingerprint, value (8 little-endian float bits for scores, raw JSON for
// payloads). All integers little-endian.
const (
	segFrameHeader = 8
	segKindScore   = 1
	segKindJSON    = 2
	// segMaxPayload bounds a frame's declared size; a larger declaration
	// is framing corruption, not an allocation request.
	segMaxPayload = 1 << 30
)

var segCRC = crc32.MakeTable(crc32.Castagnoli)

// SegLogOption adjusts a SegLog's group-commit and rotation policy.
type SegLogOption func(*segCfg)

type segCfg struct {
	flushBytes    int
	flushInterval time.Duration
	segmentBytes  int64
}

// WithFlushBytes sets the pending-batch size that triggers an immediate
// group commit (default 256 KiB).
func WithFlushBytes(n int) SegLogOption { return func(c *segCfg) { c.flushBytes = n } }

// WithFlushInterval sets how long the committer coalesces appends before
// committing a non-empty batch (default 2ms). It bounds the durability
// window: a crash loses at most the appends of the last interval.
func WithFlushInterval(d time.Duration) SegLogOption { return func(c *segCfg) { c.flushInterval = d } }

// WithSegmentBytes sets the size at which the active segment is sealed and
// a new one started (default 64 MiB).
func WithSegmentBytes(n int64) SegLogOption { return func(c *segCfg) { c.segmentBytes = n } }

// SegLog is the segmented binary-log Backend with group-commit coalescing.
// All methods are safe for concurrent use. See OpenSegLog and the Backend
// contract in backend.go for the durability model.
type SegLog struct {
	dir string
	cfg segCfg

	mu   sync.Mutex
	cond *sync.Cond // broadcast when committed advances, err sets, or Close drains
	idx  map[string]entry

	pending   []byte // frames accepted but not yet handed to the committer
	accepted  int64  // total frame bytes accepted since Open
	committed int64  // total frame bytes written+fsynced since Open
	err       error  // sticky commit error: later Put/Flush/Close report it
	closed    bool

	wake chan struct{} // first pending byte of a batch arrived
	kick chan struct{} // commit now: size threshold or Flush barrier
	quit chan struct{} // Close: drain and exit
	done chan struct{} // committer exited

	active     *os.File // the unsealed segment; owned by the committer after Open
	activeIdx  int
	activeSize int64
	lockf      *os.File

	hits   atomic.Int64
	misses atomic.Int64
}

// OpenSegLog creates dir if needed, replays its segments into the index,
// repairs a torn tail in the final segment, and starts the group
// committer. Like the jsonl backend, one PROCESS owns a seglog at a time:
// an exclusive advisory lock on dir/LOCK fails fast when another live
// process holds it, which is what makes the tail repair safe. A torn or
// CRC-failing frame at the end of the FINAL segment is the signature of a
// crash mid-commit and is truncated away; the same damage in a sealed
// (non-final) segment is real corruption — a sealed segment was fully
// committed before its successor existed — and is reported, never guessed
// at.
func OpenSegLog(dir string, opts ...SegLogOption) (*SegLog, error) {
	cfg := segCfg{
		flushBytes:    256 << 10,
		flushInterval: 2 * time.Millisecond,
		segmentBytes:  64 << 20,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	lockf, err := os.OpenFile(filepath.Join(dir, segLockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := lockFile(lockf); err != nil {
		lockf.Close()
		return nil, err
	}
	s := &SegLog{
		dir:   dir,
		cfg:   cfg,
		idx:   make(map[string]entry),
		wake:  make(chan struct{}, 1),
		kick:  make(chan struct{}, 1),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
		lockf: lockf,
	}
	s.cond = sync.NewCond(&s.mu)
	if err := s.load(); err != nil {
		lockf.Close()
		return nil, err
	}
	go s.committer()
	return s, nil
}

// segName formats the file name of segment n.
func segName(n int) string { return fmt.Sprintf("%s%08d%s", segPrefix, n, segSuffix) }

// segments lists the segment indices present in dir, ascending.
func segments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var ns []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		var n int
		if _, err := fmt.Sscanf(name, segPrefix+"%d"+segSuffix, &n); err != nil || n < 1 {
			return nil, fmt.Errorf("store: %s: unrecognized segment name %q", dir, name)
		}
		ns = append(ns, n)
	}
	sort.Ints(ns)
	return ns, nil
}

// load replays every segment into the index and opens the final one for
// appending, truncating a torn tail first.
func (s *SegLog) load() error {
	ns, err := segments(s.dir)
	if err != nil {
		return err
	}
	if len(ns) == 0 {
		ns = []int{1}
	}
	for i, n := range ns {
		final := i == len(ns)-1
		path := filepath.Join(s.dir, segName(n))
		data, err := os.ReadFile(path)
		if err != nil && !(final && os.IsNotExist(err)) {
			return fmt.Errorf("store: %w", err)
		}
		good, perr := s.replaySegment(path, data)
		if perr != nil {
			if !final {
				return perr // sealed segment: corruption, not a torn tail
			}
			if terr := os.Truncate(path, int64(good)); terr != nil {
				return fmt.Errorf("store: %s: truncating torn tail: %w", path, terr)
			}
		}
		if final {
			f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
			if err != nil {
				return fmt.Errorf("store: %w", err)
			}
			s.active = f
			s.activeIdx = n
			s.activeSize = int64(good)
		}
	}
	return nil
}

// replaySegment indexes every intact frame of one segment and returns the
// byte offset after the last intact frame, plus the error that stopped the
// scan (nil when the segment ends exactly on a frame boundary).
func (s *SegLog) replaySegment(path string, data []byte) (int, error) {
	off := 0
	for off < len(data) {
		rec, e, n, err := decodeFrame(data[off:])
		if err != nil {
			return off, fmt.Errorf("store: %s: offset %d: %w", path, off, err)
		}
		s.idx[rec.Key+"\x00"+rec.Fingerprint] = e
		off += n
	}
	return off, nil
}

// appendFrame encodes one record as a length-prefixed, checksummed frame
// appended to dst.
func appendFrame(dst []byte, kind byte, key, fp string, value []byte) []byte {
	payload := 1 + 4 + len(key) + 4 + len(fp) + len(value)
	start := len(dst)
	var scratch [segFrameHeader]byte
	dst = append(dst, scratch[:]...) // length+CRC, patched below
	dst = append(dst, kind)
	binary.LittleEndian.PutUint32(scratch[:4], uint32(len(key)))
	dst = append(dst, scratch[:4]...)
	dst = append(dst, key...)
	binary.LittleEndian.PutUint32(scratch[:4], uint32(len(fp)))
	dst = append(dst, scratch[:4]...)
	dst = append(dst, fp...)
	dst = append(dst, value...)
	body := dst[start+segFrameHeader:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(payload))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(body, segCRC))
	return dst
}

// decodeFrame parses one frame from the head of data, returning the
// record, its index entry and the frame's total size. A short,
// CRC-failing or malformed frame is an error; the caller decides whether
// that means a torn tail (truncate) or corruption (refuse).
func decodeFrame(data []byte) (record, entry, int, error) {
	if len(data) < segFrameHeader {
		return record{}, entry{}, 0, fmt.Errorf("torn frame header (%d bytes)", len(data))
	}
	payload := int(binary.LittleEndian.Uint32(data[0:4]))
	if payload < 9 || payload > segMaxPayload {
		return record{}, entry{}, 0, fmt.Errorf("implausible frame length %d", payload)
	}
	if len(data) < segFrameHeader+payload {
		return record{}, entry{}, 0, fmt.Errorf("torn frame (%d of %d payload bytes)", len(data)-segFrameHeader, payload)
	}
	body := data[segFrameHeader : segFrameHeader+payload]
	if crc := crc32.Checksum(body, segCRC); crc != binary.LittleEndian.Uint32(data[4:8]) {
		return record{}, entry{}, 0, fmt.Errorf("frame checksum mismatch")
	}
	kind := body[0]
	keyLen := int(binary.LittleEndian.Uint32(body[1:5]))
	if keyLen < 0 || 5+keyLen+4 > len(body) {
		return record{}, entry{}, 0, fmt.Errorf("frame key length %d exceeds payload", keyLen)
	}
	key := string(body[5 : 5+keyLen])
	fpLen := int(binary.LittleEndian.Uint32(body[5+keyLen : 9+keyLen]))
	valOff := 9 + keyLen + fpLen
	if fpLen < 0 || valOff > len(body) {
		return record{}, entry{}, 0, fmt.Errorf("frame fingerprint length %d exceeds payload", fpLen)
	}
	fp := string(body[9+keyLen : valOff])
	value := body[valOff:]
	rec := record{Key: key, Fingerprint: fp}
	var e entry
	switch kind {
	case segKindScore:
		if len(value) != 8 {
			return record{}, entry{}, 0, fmt.Errorf("score frame with %d value bytes, want 8", len(value))
		}
		e = entry{score: math.Float64frombits(binary.LittleEndian.Uint64(value)), hasScore: true}
	case segKindJSON:
		e = entry{value: append([]byte(nil), value...)}
	default:
		// A valid checksum over an unknown kind is a foreign or future
		// writer, not a torn append. The caller treats it like any other
		// decode failure: corruption in a sealed segment, torn tail in the
		// final one — safe either way, since tail truncation only drops
		// bytes our own committer never acknowledged.
		return record{}, entry{}, 0, fmt.Errorf("unknown frame kind %d", kind)
	}
	return rec, e, segFrameHeader + payload, nil
}

// Get returns the score recorded for (key, fingerprint), if any.
func (s *SegLog) Get(key, fingerprint string) (float64, bool) {
	s.mu.Lock()
	e, ok := s.idx[key+"\x00"+fingerprint]
	s.mu.Unlock()
	if !ok || !e.hasScore {
		s.misses.Add(1)
		return 0, false
	}
	s.hits.Add(1)
	return e.score, true
}

// Put accepts one trial score: the record is visible to Get immediately
// and durable at the next group commit (size/interval policy, Flush or
// Close). A commit failure is sticky and reported by every later write.
func (s *SegLog) Put(key, fingerprint string, score float64) error {
	var value [8]byte
	binary.LittleEndian.PutUint64(value[:], math.Float64bits(score))
	return s.append(segKindScore, key, fingerprint, value[:],
		entry{score: score, hasScore: true})
}

// GetJSON decodes the JSON payload recorded for (key, fingerprint) into v.
func (s *SegLog) GetJSON(key, fingerprint string, v any) (bool, error) {
	s.mu.Lock()
	e, ok := s.idx[key+"\x00"+fingerprint]
	s.mu.Unlock()
	if !ok || e.value == nil {
		s.misses.Add(1)
		return false, nil
	}
	if err := json.Unmarshal(e.value, v); err != nil {
		s.misses.Add(1)
		return false, fmt.Errorf("store: %s: payload for %q: %w", s.dir, key, err)
	}
	s.hits.Add(1)
	return true, nil
}

// PutJSON accepts one JSON payload record; non-finite floats in v are
// encoded as null. Durability follows the same group-commit policy as Put.
func (s *SegLog) PutJSON(key, fingerprint string, v any) error {
	raw, err := jsonx.Marshal(v)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return s.append(segKindJSON, key, fingerprint, raw, entry{value: raw})
}

// append stages one frame for the committer and indexes it. Index order
// equals log order because both happen under one critical section — the
// invariant that makes a replayed log agree with the live view.
func (s *SegLog) append(kind byte, key, fp string, value []byte, e entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: %s: %w", s.dir, ErrClosed)
	}
	if s.err != nil {
		return s.err
	}
	wasEmpty := len(s.pending) == 0
	before := len(s.pending)
	s.pending = appendFrame(s.pending, kind, key, fp, value)
	s.accepted += int64(len(s.pending) - before)
	s.idx[key+"\x00"+fp] = e
	if len(s.pending) >= s.cfg.flushBytes {
		select {
		case s.kick <- struct{}{}:
		default:
		}
	} else if wasEmpty {
		select {
		case s.wake <- struct{}{}:
		default:
		}
	}
	return nil
}

// Len returns the number of distinct (key, fingerprint) cells.
func (s *SegLog) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.idx)
}

// CountPrefix returns the number of distinct cells whose key starts with
// prefix.
func (s *SegLog) CountPrefix(prefix string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for k := range s.idx {
		if strings.HasPrefix(k, prefix) {
			n++
		}
	}
	return n
}

// Stats returns how many Get/GetJSON lookups hit and missed since Open.
func (s *SegLog) Stats() (hits, misses int64) {
	return s.hits.Load(), s.misses.Load()
}

// Dir returns the segment directory.
func (s *SegLog) Dir() string { return s.dir }

// Flush is the group-commit barrier: it returns once every append
// accepted before the call has been written and fsynced (or with the
// commit error that prevented that).
func (s *SegLog) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: %s: %w", s.dir, ErrClosed)
	}
	target := s.accepted
	for s.committed < target && s.err == nil && !s.closed {
		select {
		case s.kick <- struct{}{}:
		default:
		}
		s.cond.Wait()
	}
	return s.err
}

// Close drains the committer (a final group commit), closes the active
// segment and releases the directory lock. Idempotent; later writes fail
// with ErrClosed while reads keep serving the index.
func (s *SegLog) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()

	close(s.quit)
	<-s.done // the committer's exit path committed all pending frames

	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.err
	if s.active != nil {
		if cerr := s.active.Close(); err == nil && cerr != nil {
			err = fmt.Errorf("store: %s: %w", s.dir, cerr)
		}
		s.active = nil
	}
	if s.lockf != nil {
		s.lockf.Close()
		s.lockf = nil
	}
	s.cond.Broadcast()
	return err
}

// committer is the single goroutine that turns accepted appends into
// write+fsync batches. Wake-up sources: the first pending byte (then a
// coalescing window of flushInterval), the size threshold or a Flush
// barrier (immediate), and Close (drain and exit).
func (s *SegLog) committer() {
	defer close(s.done)
	for {
		select {
		case <-s.quit:
			s.commit()
			return
		case <-s.kick:
		case <-s.wake:
			// Coalesce: let the batch accumulate for one interval unless a
			// kick (threshold/Flush) or Close asks for the commit now.
			if s.cfg.flushInterval > 0 {
				timer := time.NewTimer(s.cfg.flushInterval)
				select {
				case <-timer.C:
				case <-s.kick:
					timer.Stop()
				case <-s.quit:
					timer.Stop()
					s.commit()
					return
				}
			}
		}
		s.commit()
	}
}

// commit writes the staged batch to the active segment in one write call,
// fsyncs it, publishes the new committed watermark and rotates the
// segment past the size threshold. Only the committer (and Close, after
// the committer exited) touches the file, so file I/O runs outside the
// lock.
func (s *SegLog) commit() {
	s.mu.Lock()
	if len(s.pending) == 0 || s.err != nil {
		s.cond.Broadcast()
		s.mu.Unlock()
		return
	}
	batch := s.pending
	s.pending = nil
	target := s.accepted
	s.mu.Unlock()

	var err error
	if _, werr := s.active.Write(batch); werr != nil {
		err = fmt.Errorf("store: %s: %w", s.dir, werr)
	} else if serr := s.active.Sync(); serr != nil {
		err = fmt.Errorf("store: %s: %w", s.dir, serr)
	}
	if err == nil {
		s.activeSize += int64(len(batch))
		if s.activeSize >= s.cfg.segmentBytes {
			err = s.rotate()
		}
	}

	s.mu.Lock()
	if err != nil {
		s.err = err
	} else {
		s.committed = target
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// rotate seals the active segment and starts the next one. Called by the
// committer only.
func (s *SegLog) rotate() error {
	if err := s.active.Close(); err != nil {
		return fmt.Errorf("store: %s: sealing segment: %w", s.dir, err)
	}
	s.activeIdx++
	f, err := os.OpenFile(filepath.Join(s.dir, segName(s.activeIdx)), os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: %s: opening segment: %w", s.dir, err)
	}
	s.active = f
	s.activeSize = 0
	return nil
}
