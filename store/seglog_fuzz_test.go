package store

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// FuzzSegLogRepairsTail throws arbitrary bytes at the seglog recovery
// path, as FuzzOpenRepairsTail does for the JSONL log. The contract is the
// same: OpenSegLog either rejects the directory with an error or returns a
// fully working store — never panics, and never leaves the final segment
// in a state a second OpenSegLog would refuse. Because the fuzzed bytes
// become the FINAL segment, every decode failure is by policy a torn tail;
// the frames before it must survive the truncation.
func FuzzSegLogRepairsTail(f *testing.F) {
	// One intact frame to prefix variants with.
	intact := appendFrame(nil, segKindScore, "k1", "f1", []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte(nil))
	f.Add(append([]byte(nil), intact...))
	f.Add(append(append([]byte(nil), intact...), intact[:len(intact)-3]...)) // torn mid-frame
	f.Add(intact[:segFrameHeader])                                           // header only
	f.Add(intact[:3])                                                        // torn header
	f.Add([]byte{0xF0, 0x00, 0x00, 0x00, 0xDE, 0xAD, 0xBE, 0xEF})            // length > data
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x00, 0x00, 0x00, 0x00})            // implausible length
	func() {
		// A checksum-valid frame of unknown kind.
		bad := appendFrame(nil, 9, "k", "f", []byte("x"))
		f.Add(bad)
	}()

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := OpenSegLog(dir, WithFlushInterval(time.Millisecond))
		if err != nil {
			return // rejecting corruption is fine; crashing is not
		}
		// The repaired store must be fully usable: append, flush, read back.
		key := TrialKey(7, "fuzz-ds", 0, "A")
		fp := Fingerprint("fuzz")
		if err := s.Put(key, fp, 0.5); err != nil {
			t.Fatalf("Put on repaired store: %v", err)
		}
		if err := s.Flush(); err != nil {
			t.Fatalf("Flush on repaired store: %v", err)
		}
		if got, ok := s.Get(key, fp); !ok || got != 0.5 {
			t.Fatalf("Get after Put = (%v, %v), want (0.5, true)", got, ok)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		// ...and the repair must be durable: a reopen has to succeed and
		// still serve the new record and any frame the first open indexed.
		s2, err := OpenSegLog(dir)
		if err != nil {
			t.Fatalf("reopen after repair: %v", err)
		}
		defer s2.Close()
		if got, ok := s2.Get(key, fp); !ok || got != 0.5 {
			t.Fatalf("Get after reopen = (%v, %v), want (0.5, true)", got, ok)
		}
	})
}
