package store

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSegLogRotation: crossing the segment-size threshold seals the active
// segment and starts the next; every record stays readable live and across
// reopen, and sealed segments are never rewritten.
func TestSegLogRotation(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegLog(dir, WithSegmentBytes(512), WithFlushInterval(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		if err := s.Put(TrialKey(1, "ds", i, "A"), "fp", float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	ns, err := segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) < 2 {
		t.Fatalf("wrote %d records over a 512-byte threshold but got %d segment(s)", n, len(ns))
	}
	s2, err := OpenSegLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != n {
		t.Fatalf("Len after multi-segment reopen = %d, want %d", s2.Len(), n)
	}
	for i := 0; i < n; i++ {
		if v, ok := s2.Get(TrialKey(1, "ds", i, "A"), "fp"); !ok || v != float64(i) {
			t.Fatalf("record %d lost across rotation: %v, %v", i, v, ok)
		}
	}
}

// TestSegLogFlushBarrier: a record is on disk no later than Flush's return
// — proven by reading the segment bytes directly, without Close's drain.
func TestSegLogFlushBarrier(t *testing.T) {
	dir := t.TempDir()
	// An hour-long coalescing window: nothing reaches disk unless the
	// barrier (or the size threshold) forces it.
	s, err := OpenSegLog(dir, WithFlushInterval(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put("k", "fp", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.PutJSON("j", "fp", map[string]int{"n": 3}); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, segName(1)))
	if err != nil {
		t.Fatal(err)
	}
	probe := &SegLog{idx: make(map[string]entry)}
	good, perr := probe.replaySegment("probe", data)
	if perr != nil {
		t.Fatalf("flushed segment does not replay cleanly: %v", perr)
	}
	if good != len(data) {
		t.Fatalf("flushed segment has %d trailing bytes past the last frame", len(data)-good)
	}
	if len(probe.idx) != 2 {
		t.Fatalf("flushed segment replays %d cells, want 2", len(probe.idx))
	}
}

// TestSegLogCoalescing: many Puts inside one coalescing window reach the
// disk, and group commit keeps the file consistent under concurrency.
func TestSegLogCoalescing(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegLog(dir, WithFlushInterval(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	const n, workers = 400, 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				if err := s.Put(TrialKey(2, "ds", i, "B"), "fp", float64(i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenSegLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != n {
		t.Fatalf("Len after coalesced writes = %d, want %d", s2.Len(), n)
	}
}

// TestSegLogSealedSegmentCorruptionErrors: damage in a non-final segment
// is real corruption — a sealed segment was fully committed before its
// successor existed — and must be reported, never truncated away.
func TestSegLogSealedSegmentCorruptionErrors(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegLog(dir, WithSegmentBytes(256), WithFlushInterval(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := s.Put(TrialKey(1, "ds", i, "A"), "fp", float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	ns, err := segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) < 2 {
		t.Fatalf("need ≥2 segments, got %d", len(ns))
	}
	// Flip one payload byte in the FIRST (sealed) segment.
	first := filepath.Join(dir, segName(ns[0]))
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(first, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSegLog(dir); err == nil || !strings.Contains(err.Error(), segName(ns[0])) {
		t.Fatalf("corrupt sealed segment: want error naming %s, got %v", segName(ns[0]), err)
	}
}

// TestSegLogExcludesSecondOpener: like the jsonl backend, one process owns
// a seglog directory at a time, and the lock dies with Close.
func TestSegLogExcludesSecondOpener(t *testing.T) {
	dir := t.TempDir()
	s1, err := OpenSegLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSegLog(dir); err == nil || !strings.Contains(err.Error(), "locked") {
		s1.Close()
		t.Fatalf("second OpenSegLog of a live store: want locked error, got %v", err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenSegLog(dir)
	if err != nil {
		t.Fatalf("OpenSegLog after Close must succeed: %v", err)
	}
	s2.Close()
}

// TestSegLogCloseDrains: records accepted but not yet flushed are
// committed by Close — the shutdown path a CLI's deferred Close relies on.
func TestSegLogCloseDrains(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegLog(dir, WithFlushInterval(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := s.Put(TrialKey(3, "ds", i, "A"), "fp", float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenSegLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 20 {
		t.Fatalf("Len after Close-drain reopen = %d, want 20 (Close lost pending records)", s2.Len())
	}
}
