package store

// The backend conformance suite: every semantic the Backend doc comment
// promises, executed against every shipped backend. A new backend earns
// its place by adding a fixture here and passing unchanged.

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// A backendFixture adapts one backend to the shared suite. open opens (or,
// for durable backends, reopens) the backend over dir; tear simulates a
// crash mid-commit by damaging the tail of the final log file, and is nil
// for backends with nothing durable to tear.
type backendFixture struct {
	name    string
	durable bool
	open    func(t *testing.T, dir string) Backend
	tear    func(t *testing.T, dir string)
}

func conformanceFixtures() []backendFixture {
	return []backendFixture{
		{
			name:    "jsonl",
			durable: true,
			open: func(t *testing.T, dir string) Backend {
				s, err := Open(dir)
				if err != nil {
					t.Fatal(err)
				}
				return s
			},
			tear: func(t *testing.T, dir string) {
				appendBytes(t, filepath.Join(dir, LogName),
					[]byte(`{"key":"torn","fp":"f","sco`))
			},
		},
		{
			name: "mem",
			open: func(t *testing.T, dir string) Backend { return NewMem() },
		},
		{
			name:    "seglog",
			durable: true,
			open: func(t *testing.T, dir string) Backend {
				// A short coalescing window keeps timer-driven commits from
				// stalling tests; correctness must not depend on it.
				s, err := OpenSegLog(dir, WithFlushInterval(time.Millisecond))
				if err != nil {
					t.Fatal(err)
				}
				return s
			},
			tear: func(t *testing.T, dir string) {
				ns, err := segments(dir)
				if err != nil || len(ns) == 0 {
					t.Fatalf("segments: %v (%d)", err, len(ns))
				}
				// A torn frame: a header promising more payload than follows.
				appendBytes(t, filepath.Join(dir, segName(ns[len(ns)-1])),
					[]byte{0xF0, 0x00, 0x00, 0x00, 0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02})
			},
		},
		// The fault-injection wrapper with an empty schedule must be a
		// transparent proxy: the whole contract holds through it, over both
		// durable engines. Opened through the DSN factory so the
		// faultinject:SCHEDULE:INNER_DSN parsing rides the suite too.
		{
			name:    "faultinject-jsonl",
			durable: true,
			open: func(t *testing.T, dir string) Backend {
				s, err := OpenDSN("faultinject::jsonl:" + dir)
				if err != nil {
					t.Fatal(err)
				}
				return s
			},
			tear: func(t *testing.T, dir string) {
				appendBytes(t, filepath.Join(dir, LogName),
					[]byte(`{"key":"torn","fp":"f","sco`))
			},
		},
		{
			name:    "faultinject-seglog",
			durable: true,
			open: func(t *testing.T, dir string) Backend {
				s, err := OpenDSN("faultinject::seglog:"+dir,
					WithFlushInterval(time.Millisecond))
				if err != nil {
					t.Fatal(err)
				}
				return s
			},
			tear: func(t *testing.T, dir string) {
				ns, err := segments(dir)
				if err != nil || len(ns) == 0 {
					t.Fatalf("segments: %v (%d)", err, len(ns))
				}
				appendBytes(t, filepath.Join(dir, segName(ns[len(ns)-1])),
					[]byte{0xF0, 0x00, 0x00, 0x00, 0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02})
			},
		},
	}
}

func appendBytes(t *testing.T, path string, b []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

// forEachBackend runs fn once per fixture as a named subtest.
func forEachBackend(t *testing.T, fn func(t *testing.T, fx backendFixture, dir string)) {
	for _, fx := range conformanceFixtures() {
		t.Run(fx.name, func(t *testing.T) { fn(t, fx, t.TempDir()) })
	}
}

// reopen closes b and, on durable backends, opens the same dir again to
// prove the state survived. Non-durable backends return the closed b so
// read-after-Close keeps being exercised.
func reopen(t *testing.T, fx backendFixture, dir string, b Backend) Backend {
	t.Helper()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if !fx.durable {
		return b
	}
	return fx.open(t, dir)
}

func TestConformanceBasicRoundTrip(t *testing.T) {
	forEachBackend(t, func(t *testing.T, fx backendFixture, dir string) {
		b := fx.open(t, dir)
		defer b.Close()
		key := TrialKey(7, "cifar", 3, "A")
		fp := Fingerprint("spec/v1")
		if _, ok := b.Get(key, fp); ok {
			t.Fatal("empty backend should miss")
		}
		if err := b.Put(key, fp, 0.8125); err != nil {
			t.Fatal(err)
		}
		if v, ok := b.Get(key, fp); !ok || v != 0.8125 {
			t.Fatalf("Get = %v, %v; want 0.8125, true", v, ok)
		}
		if hits, misses := b.Stats(); hits != 1 || misses != 1 {
			t.Errorf("stats = %d hits, %d misses; want 1, 1", hits, misses)
		}
		if b.Len() != 1 {
			t.Errorf("Len = %d, want 1", b.Len())
		}
		if n := b.CountPrefix("trial/"); n != 1 {
			t.Errorf("CountPrefix(trial/) = %d, want 1", n)
		}
		if n := b.CountPrefix("analysis/"); n != 0 {
			t.Errorf("CountPrefix(analysis/) = %d, want 0", n)
		}
	})
}

func TestConformanceLastRecordWins(t *testing.T) {
	forEachBackend(t, func(t *testing.T, fx backendFixture, dir string) {
		b := fx.open(t, dir)
		for i, v := range []float64{1, 2, 3} {
			if err := b.Put("k", "fp", v); err != nil {
				t.Fatalf("put %d: %v", i, err)
			}
		}
		if v, ok := b.Get("k", "fp"); !ok || v != 3 {
			t.Fatalf("live Get = %v, %v; want 3", v, ok)
		}
		if b.Len() != 1 {
			t.Fatalf("Len = %d, want 1 (re-puts replace, not accumulate)", b.Len())
		}
		b = reopen(t, fx, dir, b)
		defer b.Close()
		if v, ok := b.Get("k", "fp"); !ok || v != 3 {
			t.Fatalf("reopened Get = %v, %v; want 3", v, ok)
		}
	})
}

func TestConformanceFingerprintRejection(t *testing.T) {
	forEachBackend(t, func(t *testing.T, fx backendFixture, dir string) {
		b := fx.open(t, dir)
		defer b.Close()
		if err := b.Put("k", "fp-old", 1); err != nil {
			t.Fatal(err)
		}
		if _, ok := b.Get("k", "fp-new"); ok {
			t.Fatal("stale record served under a different fingerprint")
		}
		if err := b.Put("k", "fp-new", 2); err != nil {
			t.Fatal(err)
		}
		if v, ok := b.Get("k", "fp-old"); !ok || v != 1 {
			t.Errorf("old cell lost: %v, %v", v, ok)
		}
		if v, ok := b.Get("k", "fp-new"); !ok || v != 2 {
			t.Errorf("new cell missing: %v, %v", v, ok)
		}
	})
}

func TestConformanceBitExactScores(t *testing.T) {
	scores := map[string]float64{
		"exact":  0.1 + 0.2, // 0.30000000000000004
		"tiny":   5e-324,
		"big":    1.7976931348623157e308,
		"neg":    math.Copysign(0, -1),
		"nan":    math.NaN(),
		"posinf": math.Inf(1),
		"neginf": math.Inf(-1),
	}
	check := func(t *testing.T, b Backend, when string) {
		t.Helper()
		for k, want := range scores {
			got, ok := b.Get(k, "fp")
			if !ok {
				t.Errorf("%s: %s missing", when, k)
				continue
			}
			if math.IsNaN(want) {
				if !math.IsNaN(got) {
					t.Errorf("%s: %s = %v, want NaN", when, k, got)
				}
			} else if math.Float64bits(got) != math.Float64bits(want) {
				t.Errorf("%s: %s = %x, want %x (not bit-identical)", when, k, got, want)
			}
		}
	}
	forEachBackend(t, func(t *testing.T, fx backendFixture, dir string) {
		b := fx.open(t, dir)
		for k, v := range scores {
			if err := b.Put(k, "fp", v); err != nil {
				t.Fatal(err)
			}
		}
		check(t, b, "live")
		b = reopen(t, fx, dir, b)
		defer b.Close()
		check(t, b, "reopened")
	})
}

func TestConformancePayloadIsolation(t *testing.T) {
	type payload struct {
		Name string    `json:"name"`
		P    float64   `json:"p"`
		Xs   []float64 `json:"xs"`
	}
	forEachBackend(t, func(t *testing.T, fx backendFixture, dir string) {
		b := fx.open(t, dir)
		in := payload{Name: "analysis", P: 0.97, Xs: []float64{1, 2}}
		if ok, err := b.GetJSON("k", "fp", &payload{}); ok || err != nil {
			t.Fatalf("empty GetJSON = %v, %v", ok, err)
		}
		if err := b.PutJSON("k", "fp", in); err != nil {
			t.Fatal(err)
		}
		if err := b.Put("score", "fp", 1); err != nil {
			t.Fatal(err)
		}
		// NaN payloads encode as null rather than failing the append.
		if err := b.PutJSON("k2", "fp", payload{P: math.NaN()}); err != nil {
			t.Fatalf("NaN payload: %v", err)
		}
		b = reopen(t, fx, dir, b)
		defer b.Close()
		var out payload
		if ok, err := b.GetJSON("k", "fp", &out); err != nil || !ok {
			t.Fatalf("GetJSON = %v, %v", ok, err)
		}
		if out.Name != in.Name || out.P != in.P || len(out.Xs) != 2 {
			t.Errorf("payload round-trip: %+v", out)
		}
		if _, ok := b.Get("k", "fp"); ok {
			t.Error("Get must not serve a JSON payload as a score")
		}
		if ok, _ := b.GetJSON("score", "fp", &out); ok {
			t.Error("GetJSON must not serve a score as a payload")
		}
		var nanOut payload
		if ok, err := b.GetJSON("k2", "fp", &nanOut); err != nil || !ok {
			t.Fatalf("NaN payload GetJSON = %v, %v", ok, err)
		}
		if nanOut.P != 0 {
			t.Errorf("NaN-as-null payload decoded to %v, want 0", nanOut.P)
		}
	})
}

func TestConformanceConcurrentPutGet(t *testing.T) {
	forEachBackend(t, func(t *testing.T, fx backendFixture, dir string) {
		b := fx.open(t, dir)
		const n, workers = 200, 8
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < n; i += workers {
					key := TrialKey(1, "ds", i, "A")
					if err := b.Put(key, "fp", float64(i)); err != nil {
						t.Error(err)
						return
					}
					if v, ok := b.Get(key, "fp"); !ok || v != float64(i) {
						t.Errorf("Get(%d) = %v, %v", i, v, ok)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		if b.Len() != n {
			t.Errorf("live Len = %d, want %d", b.Len(), n)
		}
		b = reopen(t, fx, dir, b)
		defer b.Close()
		if b.Len() != n {
			t.Errorf("reopened Len = %d, want %d", b.Len(), n)
		}
	})
}

// TestConformanceCloseSemantics: Close is idempotent; afterwards writes
// fail with ErrClosed (checkable via errors.Is through any wrapping) while
// reads keep serving the in-memory index.
func TestConformanceCloseSemantics(t *testing.T) {
	forEachBackend(t, func(t *testing.T, fx backendFixture, dir string) {
		b := fx.open(t, dir)
		if err := b.Put("k", "fp", 42); err != nil {
			t.Fatal(err)
		}
		if err := b.Close(); err != nil {
			t.Fatal(err)
		}
		if err := b.Close(); err != nil {
			t.Fatalf("second Close = %v, want nil", err)
		}
		if err := b.Put("k2", "fp", 1); !errors.Is(err, ErrClosed) {
			t.Errorf("Put after Close = %v, want ErrClosed", err)
		}
		if err := b.PutJSON("k2", "fp", 1); !errors.Is(err, ErrClosed) {
			t.Errorf("PutJSON after Close = %v, want ErrClosed", err)
		}
		if err := b.Flush(); !errors.Is(err, ErrClosed) {
			t.Errorf("Flush after Close = %v, want ErrClosed", err)
		}
		if v, ok := b.Get("k", "fp"); !ok || v != 42 {
			t.Errorf("Get after Close = %v, %v; want 42 (reads keep serving)", v, ok)
		}
		if b.Len() != 1 {
			t.Errorf("Len after Close = %d, want 1", b.Len())
		}
	})
}

// TestConformanceCrashDurability: on durable backends, records accepted
// before a Flush survive a crash that tears the log tail mid-commit — the
// reopen repairs the tail instead of failing or losing flushed data.
func TestConformanceCrashDurability(t *testing.T) {
	forEachBackend(t, func(t *testing.T, fx backendFixture, dir string) {
		if !fx.durable {
			t.Skip("nothing durable to crash")
		}
		b := fx.open(t, dir)
		for i := 0; i < 10; i++ {
			if err := b.Put(TrialKey(1, "ds", i, "A"), "fp", float64(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := b.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := b.Close(); err != nil {
			t.Fatal(err)
		}
		fx.tear(t, dir)
		b = fx.open(t, dir)
		defer b.Close()
		if b.Len() != 10 {
			t.Fatalf("Len after torn-tail reopen = %d, want 10", b.Len())
		}
		for i := 0; i < 10; i++ {
			if v, ok := b.Get(TrialKey(1, "ds", i, "A"), "fp"); !ok || v != float64(i) {
				t.Errorf("flushed record %d lost to tail repair: %v, %v", i, v, ok)
			}
		}
		// The repaired log accepts appends and survives another cycle.
		if err := b.Put(TrialKey(1, "ds", 10, "A"), "fp", 10); err != nil {
			t.Fatal(err)
		}
		b = reopen(t, fx, dir, b)
		defer b.Close()
		if b.Len() != 11 {
			t.Errorf("Len after post-repair append = %d, want 11", b.Len())
		}
	})
}
