//go:build !unix

package store

import "os"

// lockFile is a no-op on platforms without flock: single-process use (the
// supported mode everywhere) is unaffected; sharing one store directory
// across concurrent processes is only guarded on unix.
func lockFile(*os.File) error { return nil }
