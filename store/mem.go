package store

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"varbench/internal/jsonx"
)

// Mem is the in-memory Backend: the full store semantics — cell identity,
// last-record-wins, fingerprint rejection, payload isolation, ErrClosed —
// with no files behind them. Nothing survives the process; Flush is a
// no-op barrier. It is the right backend for tests, benchmarks that must
// not measure the filesystem, and deliberately ephemeral runs (DSN "mem:").
type Mem struct {
	mu     sync.Mutex
	idx    map[string]entry
	closed bool

	hits   atomic.Int64
	misses atomic.Int64
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	return &Mem{idx: make(map[string]entry)}
}

// Get returns the score recorded for (key, fingerprint), if any.
func (m *Mem) Get(key, fingerprint string) (float64, bool) {
	m.mu.Lock()
	e, ok := m.idx[key+"\x00"+fingerprint]
	m.mu.Unlock()
	if !ok || !e.hasScore {
		m.misses.Add(1)
		return 0, false
	}
	m.hits.Add(1)
	return e.score, true
}

// Put records one trial score. The float is kept verbatim, so every bit
// pattern — NaN, ±Inf, -0 — round-trips exactly.
func (m *Mem) Put(key, fingerprint string, score float64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return fmt.Errorf("store: mem: %w", ErrClosed)
	}
	m.idx[key+"\x00"+fingerprint] = entry{score: score, hasScore: true}
	return nil
}

// GetJSON decodes the JSON payload recorded for (key, fingerprint) into v.
func (m *Mem) GetJSON(key, fingerprint string, v any) (bool, error) {
	m.mu.Lock()
	e, ok := m.idx[key+"\x00"+fingerprint]
	m.mu.Unlock()
	if !ok || e.value == nil {
		m.misses.Add(1)
		return false, nil
	}
	if err := json.Unmarshal(e.value, v); err != nil {
		m.misses.Add(1)
		return false, fmt.Errorf("store: mem: payload for %q: %w", key, err)
	}
	m.hits.Add(1)
	return true, nil
}

// PutJSON records one JSON payload. Marshalling at Put time (not Get time)
// snapshots v — later mutations of the caller's value cannot leak into the
// store — and matches the durable backends' NaN-as-null encoding.
func (m *Mem) PutJSON(key, fingerprint string, v any) error {
	raw, err := jsonx.Marshal(v)
	if err != nil {
		return fmt.Errorf("store: mem: %w", err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return fmt.Errorf("store: mem: %w", ErrClosed)
	}
	m.idx[key+"\x00"+fingerprint] = entry{value: raw}
	return nil
}

// Len returns the number of distinct (key, fingerprint) cells.
func (m *Mem) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.idx)
}

// CountPrefix returns the number of distinct cells whose key starts with
// prefix.
func (m *Mem) CountPrefix(prefix string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for k := range m.idx {
		if strings.HasPrefix(k, prefix) {
			n++
		}
	}
	return n
}

// Stats returns how many Get/GetJSON lookups hit and missed since NewMem.
func (m *Mem) Stats() (hits, misses int64) {
	return m.hits.Load(), m.misses.Load()
}

// Flush is the durability barrier; memory is the durable medium here, so
// it only checks for Close.
func (m *Mem) Flush() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return fmt.Errorf("store: mem: %w", ErrClosed)
	}
	return nil
}

// Close marks the store closed: writes fail with ErrClosed, reads keep
// serving the index. Idempotent.
func (m *Mem) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}
