package varbench

import (
	"context"
	"fmt"
	"sync"

	"varbench/internal/compare"
	"varbench/internal/stats"
	"varbench/internal/xrand"
	"varbench/store"
)

// A Stream is the incremental analysis engine as a long-lived sidecar:
// paired scores arrive continuously — from a live training fleet, a log
// tailer (see varbench watch), a message queue — and every Extend folds
// them into one resumable weighted-bootstrap state (O(K × n_new) per call)
// whose current three-zone conclusion is available at any moment. Feeding
// chunks of any size is bit-identical to a single batch analysis of the
// full sequence.
//
// With a store attached (WithStore), Flush persists the analysis snapshot;
// a new Stream over the same (seed, WithPipelineID id, store) resumes it:
// replayed score pairs are hash-verified against the snapshot's prefix and
// skipped instead of recomputed, and the final result is byte-identical to
// an uninterrupted stream. γ and the confidence level are query-time knobs:
// changing them reuses the persisted state.
//
// A Stream is not safe for concurrent use; one goroutine feeds it
// (extensions parallelize internally per WithAnalysisParallelism), while
// Subscribe delivers results to any number of consumers.
type Stream struct {
	cfg  *Experiment
	ana  *incAnalysis
	crit compare.PAB

	// The full score history backs snapshot-mismatch rebuilds and the
	// stale-snapshot settle in Result.
	outA, outB []float64

	mu     sync.Mutex // guards subs/closed; the feeding path is single-goroutine
	subs   map[chan *Result]context.Context
	closed bool
}

// NewStream opens an incremental analysis stream. The statistical knobs
// come from the same Options as Analyze (WithGamma, WithConfidence,
// WithBootstrap, WithSeed, WithAnalysisParallelism); WithStore plus
// WithPipelineID make the stream resumable under that ID.
func NewStream(opts ...Option) (*Stream, error) {
	cfg, err := applyOptions(opts)
	if err != nil {
		return nil, err
	}
	crit := compare.PAB{Gamma: cfg.Gamma, Level: cfg.Confidence, Bootstrap: cfg.Bootstrap}
	seed := xrand.New(cfg.Seed).Split("analysis/stream").Uint64()
	// The fingerprint pins state validity only (kernel algebra/version, K,
	// seed derivation, stream identity): unlike experiment snapshots, no
	// early-stop decision schedule is replayed, so γ/level/batching stay
	// out and changing them resumes the same state.
	fp := store.Fingerprint(
		"varbench/stream/v1",
		"pipeline="+cfg.PipelineID,
		fmt.Sprintf("kernel=%s/k=%d/seed=%d", stats.AccPAB.ID(), cfg.Bootstrap, seed),
	)
	ana, err := newIncAnalysis(crit, seed, cfg.AnalysisParallelism, cfg.Store,
		store.AnalysisKey(cfg.Seed, "stream/"+cfg.PipelineID), fp, nil)
	if err != nil {
		return nil, err
	}
	return &Stream{
		cfg:  cfg,
		ana:  ana,
		crit: crit,
		subs: make(map[chan *Result]context.Context),
	}, nil
}

// N returns how many score pairs the stream has consumed.
func (s *Stream) N() int { return s.ana.fed() }

// Replaying reports whether the stream is still replaying pairs a restored
// snapshot already covers; results are unavailable until the replay
// catches up (or Result settles the stream early).
func (s *Stream) Replaying() bool { return s.ana.n() > s.ana.fed() }

// Extend feeds newly arrived paired scores (a[i] and b[i] from the same
// trial) and returns the updated conclusion, publishing it to subscribers.
// The result is nil without error while fewer than two pairs exist or
// while a restored snapshot is still being replayed.
func (s *Stream) Extend(a, b []float64) (*Result, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("varbench: unpaired lengths %d vs %d", len(a), len(b))
	}
	if s.isClosed() {
		return nil, fmt.Errorf("varbench: stream is closed")
	}
	lo := len(s.outA)
	s.outA = append(s.outA, a...)
	s.outB = append(s.outB, b...)
	if err := s.ana.feed(s.outA, s.outB, lo, lo+len(a)); err != nil {
		return nil, err
	}
	if s.ana.fed() < 2 || s.Replaying() {
		return nil, nil
	}
	res, err := s.result()
	if err != nil {
		return nil, err
	}
	s.publish(res)
	return res, nil
}

// Result returns the conclusion over every pair consumed so far. If a
// restored snapshot covers more pairs than this stream has replayed (the
// persisted state came from a longer run), the state is rebuilt from the
// replayed scores first, so the result always describes exactly the pairs
// this stream saw.
func (s *Stream) Result() (*Result, error) {
	if s.ana.n() > s.ana.fed() {
		// Settle: discard the too-far snapshot and recompute from the
		// buffered history — correct by construction.
		fresh, err := s.crit.NewAnalysis(s.ana.seed, s.ana.workers)
		if err != nil {
			return nil, err
		}
		if err := fresh.Extend(s.ana.pairs(s.outA, s.outB)); err != nil {
			return nil, err
		}
		s.ana.state = fresh
		s.ana.restoredN = 0
	}
	return s.result()
}

// result shapes the current state as a renderable Result.
func (s *Stream) result() (*Result, error) {
	c, err := s.ana.comparison()
	if err != nil {
		return nil, err
	}
	return &Result{
		Name:       s.cfg.Name,
		Gamma:      s.cfg.Gamma,
		Seed:       s.cfg.Seed,
		Comparison: c,
		Datasets: []DatasetResult{{
			Comparison: c,
			ScoresA:    s.outA,
			ScoresB:    s.outB,
			Pairs:      c.N,
		}},
		WilcoxonP: 1,
		Pairs:     c.N,
	}, nil
}

// Flush persists the analysis snapshot to the stream's store (no-op
// without one) and then invokes the backend's own Flush as a durability
// barrier, so when it returns the snapshot — and, on a coalescing backend
// like seglog, every previously accepted write — has reached the durable
// medium.
func (s *Stream) Flush() error {
	if err := s.ana.save(); err != nil {
		return err
	}
	if s.cfg.Store == nil {
		return nil
	}
	return s.cfg.Store.Flush()
}

// Subscribe returns a channel delivering the latest conclusion after each
// Extend. Delivery is latest-wins: a slow consumer observes the newest
// result, never a backlog. The channel closes when ctx is done or the
// stream closes.
func (s *Stream) Subscribe(ctx context.Context) <-chan *Result {
	ch := make(chan *Result, 1)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		close(ch)
		return ch
	}
	s.subs[ch] = ctx
	s.mu.Unlock()
	if done := ctx.Done(); done != nil {
		go func() {
			<-done
			s.mu.Lock()
			if _, ok := s.subs[ch]; ok {
				delete(s.subs, ch)
				close(ch)
			}
			s.mu.Unlock()
		}()
	}
	return ch
}

// publish delivers res to every subscriber, replacing any undelivered
// previous result.
func (s *Stream) publish(res *Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for ch := range s.subs {
		select {
		case <-ch: // drop the stale undelivered result
		default:
		}
		ch <- res
	}
}

func (s *Stream) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Close ends the stream: subscriber channels close and further Extends
// fail. It does not flush; call Flush first to persist the final state.
func (s *Stream) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	for ch := range s.subs {
		delete(s.subs, ch)
		close(ch)
	}
	return nil
}
