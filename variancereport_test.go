package varbench

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func synthReport(t *testing.T) *VarianceReport {
	t.Helper()
	rep, err := synthStudy(1).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestVarianceTextRenderer(t *testing.T) {
	rep := synthReport(t)
	var buf bytes.Buffer
	if err := rep.Render(&buf, VarianceTextRenderer{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"synthetic", "source", "share", string(VarDataSplit), JointLabel, "μ̂="} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "SE of mean vs k") {
		t.Error("curves rendered without Curves flag")
	}
	buf.Reset()
	if err := rep.Render(&buf, VarianceTextRenderer{Curves: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "SE of mean vs k — "+JointLabel) {
		t.Error("Curves flag did not render curves")
	}
	// String() and a nil renderer both default to the text renderer.
	var ref bytes.Buffer
	if err := rep.Render(&ref, nil); err != nil {
		t.Fatal(err)
	}
	if rep.String() != ref.String() || ref.String() != out {
		t.Error("String()/nil renderer differ from the default text rendering")
	}
}

func TestVarianceJSONRenderer(t *testing.T) {
	rep := synthReport(t)
	var buf bytes.Buffer
	if err := rep.Render(&buf, VarianceJSONRenderer{Indent: true}); err != nil {
		t.Fatal(err)
	}
	var back VarianceReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if back.K != rep.K || back.Realizations != rep.Realizations || back.Mu != rep.Mu {
		t.Errorf("round-trip lost fields: %+v", back)
	}
	if len(back.Sources) != len(rep.Sources) {
		t.Errorf("round-trip lost sources")
	}
	if back.Joint.Source != JointLabel {
		t.Errorf("joint row lost: %+v", back.Joint)
	}
}

func TestVarianceCSVRenderer(t *testing.T) {
	rep := synthReport(t)
	var buf bytes.Buffer
	if err := rep.Render(&buf, VarianceCSVRenderer{}); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Header + 3 sources + joint.
	if len(rows) != 5 {
		t.Fatalf("want 5 CSV rows, got %d: %v", len(rows), rows)
	}
	if rows[0][1] != "source" {
		t.Errorf("header row: %v", rows[0])
	}
	if rows[len(rows)-1][1] != JointLabel {
		t.Errorf("last row should be joint: %v", rows[len(rows)-1])
	}
}
