package tensor

import (
	"errors"
	"math"
)

// ErrNotPositiveDefinite is returned by Cholesky when the input matrix is not
// (numerically) symmetric positive definite.
var ErrNotPositiveDefinite = errors.New("tensor: matrix is not positive definite")

// Cholesky computes the lower-triangular L with L·Lᵀ = a for a symmetric
// positive-definite matrix. Only the lower triangle of a is read.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("tensor: Cholesky of non-square matrix")
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		lrowj := l.Row(j)
		for k := 0; k < j; k++ {
			d -= lrowj[k] * lrowj[k]
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotPositiveDefinite
		}
		d = math.Sqrt(d)
		lrowj[j] = d
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			lrowi := l.Row(i)
			for k := 0; k < j; k++ {
				s -= lrowi[k] * lrowj[k]
			}
			lrowi[j] = s / d
		}
	}
	return l, nil
}

// SolveLower solves L·x = b for lower-triangular L by forward substitution.
func SolveLower(l *Matrix, b []float64) []float64 {
	n := l.Rows
	if len(b) != n {
		panic("tensor: SolveLower dimension mismatch")
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		row := l.Row(i)
		for k := 0; k < i; k++ {
			s -= row[k] * x[k]
		}
		x[i] = s / row[i]
	}
	return x
}

// SolveUpperT solves Lᵀ·x = b for lower-triangular L by back substitution,
// reading L directly (no transpose is materialized).
func SolveUpperT(l *Matrix, b []float64) []float64 {
	n := l.Rows
	if len(b) != n {
		panic("tensor: SolveUpperT dimension mismatch")
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}

// CholeskySolve solves a·x = b given the Cholesky factor L of a:
// first L·y = b, then Lᵀ·x = y.
func CholeskySolve(l *Matrix, b []float64) []float64 {
	return SolveUpperT(l, SolveLower(l, b))
}

// LogDetFromCholesky returns log|A| = 2·Σ log L_ii given the Cholesky factor.
func LogDetFromCholesky(l *Matrix) float64 {
	s := 0.0
	for i := 0; i < l.Rows; i++ {
		s += math.Log(l.At(i, i))
	}
	return 2 * s
}
