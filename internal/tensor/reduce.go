package tensor

import (
	"runtime"
	"sync"
)

// Reducer selects how gradient and loss reductions are accumulated.
//
// The paper could not fully seed one of its pipelines and therefore measured
// a residual "numerical noise" caused by non-deterministic accumulation order
// on the GPU (Figure 1, Appendix A). ReduceNondeterministic reproduces that
// mechanism faithfully in software: partial sums are folded in goroutine
// *completion* order, so the floating-point rounding of the total varies from
// run to run even with all seeds fixed.
type Reducer int

const (
	// ReduceSequential accumulates left to right; bit-deterministic.
	ReduceSequential Reducer = iota
	// ReduceParallelDeterministic accumulates fixed-size chunks in parallel
	// but folds the partial sums in chunk order; bit-deterministic.
	ReduceParallelDeterministic
	// ReduceNondeterministic folds partial sums in completion order;
	// simulates GPU atomics / cudnn non-determinism.
	ReduceNondeterministic
)

// minParallel is the slice length below which the parallel reducers fall back
// to sequential accumulation; launching goroutines for tiny slices costs more
// than it saves and adds no useful nondeterminism.
const minParallel = 2048

// Reduce sums x according to the reducer policy.
func (r Reducer) Reduce(x []float64) float64 {
	if len(x) < minParallel || r == ReduceSequential {
		return Sum(x)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	chunk := (len(x) + workers - 1) / workers
	switch r {
	case ReduceParallelDeterministic:
		partials := make([]float64, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > len(x) {
				hi = len(x)
			}
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				partials[w] = Sum(x[lo:hi])
			}(w, lo, hi)
		}
		wg.Wait()
		return Sum(partials)
	case ReduceNondeterministic:
		ch := make(chan float64, workers)
		launched := 0
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > len(x) {
				hi = len(x)
			}
			if lo >= hi {
				continue
			}
			launched++
			//lint:allow goroline(ch is buffered to workers capacity, so each one-shot send completes without a receiver)
			go func(lo, hi int) {
				ch <- Sum(x[lo:hi])
			}(lo, hi)
		}
		total := 0.0
		for i := 0; i < launched; i++ {
			total += <-ch // completion order: nondeterministic fold
		}
		return total
	default:
		return Sum(x)
	}
}
