// Package tensor implements the dense float64 linear algebra needed by the
// benchmark substrates: matrices and vectors with the usual BLAS-like
// operations, a Cholesky factorization for the Gaussian-process
// hyperparameter optimizer, and (deliberately) a non-deterministic parallel
// reduction that reproduces the floating-point "numerical noise" the paper
// measures on GPU pipelines (Figure 1, Appendix A).
package tensor

import (
	"fmt"
	"math"
)

// Matrix is a dense, row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zeroed Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("tensor: ragged rows")
		}
		copy(m.Data[i*m.Cols:], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero sets every element to 0 in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// MatMul returns a×b. Panics on dimension mismatch.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul dims %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Cols)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes out = a×b without allocating. out must be a.Rows×b.Cols
// and must not alias a or b.
func MatMulInto(out, a, b *Matrix) {
	if a.Cols != b.Rows || out.Rows != a.Rows || out.Cols != b.Cols {
		panic("tensor: matmul-into dimension mismatch")
	}
	out.Zero()
	// ikj loop order: the inner loop streams over contiguous rows of b and
	// out, which is the cache-friendly order for row-major storage.
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MatMulT returns a×bᵀ without materializing the transpose.
func MatMulT(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic("tensor: matmulT dimension mismatch")
	}
	out := NewMatrix(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := 0; j < b.Rows; j++ {
			orow[j] = Dot(arow, b.Row(j))
		}
	}
	return out
}

// TMatMul returns aᵀ×b without materializing the transpose.
func TMatMul(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic("tensor: TmatMul dimension mismatch")
	}
	out := NewMatrix(a.Cols, b.Cols)
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Row(i)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MulVec returns m×v as a new vector.
func (m *Matrix) MulVec(v []float64) []float64 {
	if len(v) != m.Cols {
		panic("tensor: mulvec dimension mismatch")
	}
	out := make([]float64, m.Rows)
	for i := range out {
		out[i] = Dot(m.Row(i), v)
	}
	return out
}

// Add computes a += b element-wise.
func (m *Matrix) Add(b *Matrix) {
	checkSameShape(m, b)
	for i, v := range b.Data {
		m.Data[i] += v
	}
}

// Sub computes a -= b element-wise.
func (m *Matrix) Sub(b *Matrix) {
	checkSameShape(m, b)
	for i, v := range b.Data {
		m.Data[i] -= v
	}
}

// Scale multiplies every element by s.
func (m *Matrix) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AddScaled computes m += s·b (axpy).
func (m *Matrix) AddScaled(s float64, b *Matrix) {
	checkSameShape(m, b)
	for i, v := range b.Data {
		m.Data[i] += s * v
	}
}

// Apply replaces every element x with f(x).
func (m *Matrix) Apply(f func(float64) float64) {
	for i, v := range m.Data {
		m.Data[i] = f(v)
	}
}

// MaxAbs returns the largest absolute element, 0 for an empty matrix.
func (m *Matrix) MaxAbs() float64 {
	max := 0.0
	for _, v := range m.Data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// FrobeniusNorm returns sqrt(Σ x²).
func (m *Matrix) FrobeniusNorm() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

func checkSameShape(a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("tensor: dot length mismatch")
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Axpy computes y += alpha·x in place.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("tensor: axpy length mismatch")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Sum returns Σ x with sequential left-to-right accumulation, the
// deterministic reference reduction.
func Sum(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean, NaN for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return math.NaN()
	}
	return Sum(x) / float64(len(x))
}

// Scale multiplies every element of x by s in place.
func Scale(s float64, x []float64) {
	for i := range x {
		x[i] *= s
	}
}
