package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"varbench/internal/xrand"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := MatMul(a, b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	for i := range c.Data {
		if c.Data[i] != want.Data[i] {
			t.Fatalf("matmul = %v, want %v", c.Data, want.Data)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	r := xrand.New(1)
	a := NewMatrix(7, 7)
	eye := NewMatrix(7, 7)
	for i := 0; i < 7; i++ {
		eye.Set(i, i, 1)
		for j := 0; j < 7; j++ {
			a.Set(i, j, r.NormFloat64())
		}
	}
	c := MatMul(a, eye)
	for i := range c.Data {
		if c.Data[i] != a.Data[i] {
			t.Fatal("A·I != A")
		}
	}
}

func TestMatMulDimsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched matmul did not panic")
		}
	}()
	MatMul(NewMatrix(2, 3), NewMatrix(2, 3))
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		rows, cols := 1+r.Intn(10), 1+r.Intn(10)
		m := NewMatrix(rows, cols)
		for i := range m.Data {
			m.Data[i] = r.NormFloat64()
		}
		tt := m.T().T()
		if tt.Rows != m.Rows || tt.Cols != m.Cols {
			return false
		}
		for i := range m.Data {
			if tt.Data[i] != m.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMatMulTAgreesWithExplicitTranspose(t *testing.T) {
	r := xrand.New(3)
	a := NewMatrix(4, 6)
	b := NewMatrix(5, 6)
	for i := range a.Data {
		a.Data[i] = r.NormFloat64()
	}
	for i := range b.Data {
		b.Data[i] = r.NormFloat64()
	}
	got := MatMulT(a, b)
	want := MatMul(a, b.T())
	for i := range got.Data {
		if !almostEqual(got.Data[i], want.Data[i], 1e-12) {
			t.Fatalf("MatMulT mismatch at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestTMatMulAgreesWithExplicitTranspose(t *testing.T) {
	r := xrand.New(4)
	a := NewMatrix(6, 4)
	b := NewMatrix(6, 5)
	for i := range a.Data {
		a.Data[i] = r.NormFloat64()
	}
	for i := range b.Data {
		b.Data[i] = r.NormFloat64()
	}
	got := TMatMul(a, b)
	want := MatMul(a.T(), b)
	for i := range got.Data {
		if !almostEqual(got.Data[i], want.Data[i], 1e-12) {
			t.Fatalf("TMatMul mismatch at %d", i)
		}
	}
}

func TestMulVec(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got := m.MulVec([]float64{1, 1, 1})
	if got[0] != 6 || got[1] != 15 {
		t.Fatalf("MulVec = %v", got)
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{1, 1}, {1, 1}})
	a.Add(b)
	if a.At(0, 0) != 2 || a.At(1, 1) != 5 {
		t.Fatal("Add wrong")
	}
	a.Sub(b)
	if a.At(0, 0) != 1 || a.At(1, 1) != 4 {
		t.Fatal("Sub wrong")
	}
	a.Scale(2)
	if a.At(1, 0) != 6 {
		t.Fatal("Scale wrong")
	}
	a.AddScaled(0.5, b)
	if a.At(0, 1) != 4.5 {
		t.Fatal("AddScaled wrong")
	}
}

func TestCholeskyRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 1 + r.Intn(12)
		// Build SPD matrix A = B·Bᵀ + n·I.
		b := NewMatrix(n, n)
		for i := range b.Data {
			b.Data[i] = r.NormFloat64()
		}
		a := MatMulT(b, b)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		// L·Lᵀ should reproduce A.
		llt := MatMulT(l, l)
		for i := range a.Data {
			if !almostEqual(llt.Data[i], a.Data[i], 1e-8*(1+math.Abs(a.Data[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 0}, {0, -1}})
	if _, err := Cholesky(a); err == nil {
		t.Fatal("Cholesky accepted an indefinite matrix")
	}
}

func TestCholeskySolve(t *testing.T) {
	a := FromRows([][]float64{{4, 2}, {2, 3}})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x := CholeskySolve(l, []float64{8, 7})
	// Verify A·x = b.
	b := a.MulVec(x)
	if !almostEqual(b[0], 8, 1e-10) || !almostEqual(b[1], 7, 1e-10) {
		t.Fatalf("CholeskySolve: A·x = %v, want [8 7]", b)
	}
}

func TestLogDetFromCholesky(t *testing.T) {
	a := FromRows([][]float64{{2, 0}, {0, 8}})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log(16)
	if got := LogDetFromCholesky(l); !almostEqual(got, want, 1e-12) {
		t.Fatalf("logdet = %v, want %v", got, want)
	}
}

func TestDotAxpy(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot wrong")
	}
	y := []float64{1, 1}
	Axpy(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatal("Axpy wrong")
	}
}

func TestReducersAgreeInValue(t *testing.T) {
	r := xrand.New(5)
	x := make([]float64, 10000)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	seq := ReduceSequential.Reduce(x)
	par := ReduceParallelDeterministic.Reduce(x)
	nd := ReduceNondeterministic.Reduce(x)
	if !almostEqual(seq, par, 1e-9) || !almostEqual(seq, nd, 1e-9) {
		t.Fatalf("reducers disagree: %v %v %v", seq, par, nd)
	}
}

func TestParallelDeterministicIsBitStable(t *testing.T) {
	r := xrand.New(6)
	x := make([]float64, 50000)
	for i := range x {
		x[i] = r.NormFloat64() * 1e3
	}
	first := ReduceParallelDeterministic.Reduce(x)
	for i := 0; i < 20; i++ {
		if got := ReduceParallelDeterministic.Reduce(x); got != first {
			t.Fatalf("deterministic parallel reduce changed: %v vs %v", got, first)
		}
	}
}

func TestSmallSlicesUseSequentialPath(t *testing.T) {
	x := []float64{1, 2, 3}
	if ReduceNondeterministic.Reduce(x) != 6 {
		t.Fatal("small-slice reduce wrong")
	}
}

func TestMeanAndMaxAbs(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean wrong")
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean of empty should be NaN")
	}
	m := FromRows([][]float64{{-5, 2}, {3, 4}})
	if m.MaxAbs() != 5 {
		t.Fatal("MaxAbs wrong")
	}
	if m.FrobeniusNorm() != math.Sqrt(25+4+9+16) {
		t.Fatal("FrobeniusNorm wrong")
	}
}
