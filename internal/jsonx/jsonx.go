// Package jsonx marshals values like encoding/json but encodes NaN and ±Inf
// floating-point values as JSON null instead of failing. encoding/json
// rejects non-finite numbers outright ("json: unsupported value: NaN"),
// which turns a single undefined statistic — a Shapiro-Wilk p-value outside
// its supported n range, a correlation of a zero-variance sample — into a
// render error for the whole report. JSON has no non-finite literals, so
// null is the faithful encoding of "this number is undefined".
//
// The walker honors the encoding/json conventions the report types use:
// `json:"name,omitempty"` tags, `json:"-"`, json.Marshaler implementations,
// []byte-as-base64, sorted map keys and struct field order. It does not
// support the `,string` tag option or anonymous-field name conflicts, which
// none of this module's types use.
package jsonx

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"reflect"
	"sort"
	"strings"
)

// Marshal is a drop-in replacement for json.Marshal that encodes non-finite
// floats as null.
func Marshal(v any) ([]byte, error) {
	tree, err := sanitize(reflect.ValueOf(v))
	if err != nil {
		return nil, err
	}
	return json.Marshal(tree) //lint:allow jsonsafe(tree is the sanitizer's own output: every non-finite float is already a string)
}

// MarshalIndent is the indented counterpart of Marshal.
func MarshalIndent(v any, prefix, indent string) ([]byte, error) {
	tree, err := sanitize(reflect.ValueOf(v))
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(tree, prefix, indent) //lint:allow jsonsafe(tree is the sanitizer's own output: every non-finite float is already a string)
}

var marshalerType = reflect.TypeOf((*json.Marshaler)(nil)).Elem()

// sanitize converts v into a tree of plain values (orderedObject, []any,
// finite numbers, nil) that json.Marshal encodes exactly as it would have
// encoded v, except that non-finite floats become nil.
func sanitize(v reflect.Value) (any, error) {
	if !v.IsValid() {
		return nil, nil
	}
	// A type's own MarshalJSON wins, as in encoding/json; its output is
	// passed through verbatim as a RawMessage.
	if v.Type().Implements(marshalerType) {
		if v.Kind() == reflect.Pointer && v.IsNil() {
			return nil, nil
		}
		b, err := v.Interface().(json.Marshaler).MarshalJSON()
		if err != nil {
			return nil, err
		}
		return json.RawMessage(b), nil
	}
	if v.CanAddr() && reflect.PointerTo(v.Type()).Implements(marshalerType) {
		return sanitize(v.Addr())
	}

	switch v.Kind() {
	case reflect.Float32, reflect.Float64:
		f := v.Float()
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return nil, nil
		}
		return v.Interface(), nil
	case reflect.Pointer, reflect.Interface:
		if v.IsNil() {
			return nil, nil
		}
		return sanitize(v.Elem())
	case reflect.Slice:
		if v.IsNil() {
			return nil, nil
		}
		if v.Type().Elem().Kind() == reflect.Uint8 {
			return v.Interface(), nil // []byte stays base64
		}
		fallthrough
	case reflect.Array:
		out := make([]any, v.Len())
		for i := range out {
			e, err := sanitize(v.Index(i))
			if err != nil {
				return nil, err
			}
			out[i] = e
		}
		return out, nil
	case reflect.Map:
		if v.IsNil() {
			return nil, nil
		}
		if v.Type().Key().Kind() != reflect.String {
			// The module only marshals string-keyed maps; anything else is
			// passed through to encoding/json untouched.
			return v.Interface(), nil
		}
		obj := &orderedObject{}
		keys := v.MapKeys()
		names := make([]string, len(keys))
		byName := make(map[string]reflect.Value, len(keys))
		for i, k := range keys {
			names[i] = k.String()
			byName[names[i]] = k
		}
		sort.Strings(names)
		for _, name := range names {
			e, err := sanitize(v.MapIndex(byName[name]))
			if err != nil {
				return nil, err
			}
			obj.add(name, e)
		}
		return obj, nil
	case reflect.Struct:
		obj := &orderedObject{}
		if err := sanitizeStruct(v, obj); err != nil {
			return nil, err
		}
		return obj, nil
	default:
		return v.Interface(), nil
	}
}

// sanitizeStruct appends v's fields to obj, flattening untagged anonymous
// struct fields the way encoding/json promotes them.
func sanitizeStruct(v reflect.Value, obj *orderedObject) error {
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		tag := f.Tag.Get("json")
		if tag == "-" {
			continue
		}
		name, opts, _ := strings.Cut(tag, ",")
		// An untagged embedded struct promotes its exported fields, even
		// when the embedded type itself is unexported.
		if f.Anonymous && name == "" && f.Type.Kind() == reflect.Struct {
			if err := sanitizeStruct(v.Field(i), obj); err != nil {
				return err
			}
			continue
		}
		if !f.IsExported() {
			continue
		}
		fv := v.Field(i)
		if hasOpt(opts, "omitempty") && isEmpty(fv) {
			continue
		}
		if name == "" {
			name = f.Name
		}
		e, err := sanitize(fv)
		if err != nil {
			return fmt.Errorf("field %s: %w", f.Name, err)
		}
		obj.add(name, e)
	}
	return nil
}

func hasOpt(opts, want string) bool {
	for opts != "" {
		var o string
		o, opts, _ = strings.Cut(opts, ",")
		if o == want {
			return true
		}
	}
	return false
}

// isEmpty mirrors the encoding/json omitempty rule.
func isEmpty(v reflect.Value) bool {
	switch v.Kind() {
	case reflect.Array, reflect.Map, reflect.Slice, reflect.String:
		return v.Len() == 0
	case reflect.Bool, reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32,
		reflect.Int64, reflect.Uint, reflect.Uint8, reflect.Uint16,
		reflect.Uint32, reflect.Uint64, reflect.Uintptr,
		reflect.Float32, reflect.Float64:
		return v.IsZero()
	case reflect.Pointer, reflect.Interface:
		return v.IsNil()
	}
	return false
}

// orderedObject is a JSON object that marshals its keys in insertion order,
// preserving struct field order the way encoding/json does (a plain map
// would sort them).
type orderedObject struct {
	names []string
	vals  []any
}

func (o *orderedObject) add(name string, v any) {
	o.names = append(o.names, name)
	o.vals = append(o.vals, v)
}

// MarshalJSON implements json.Marshaler.
func (o *orderedObject) MarshalJSON() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte('{')
	for i, name := range o.names {
		if i > 0 {
			buf.WriteByte(',')
		}
		k, err := json.Marshal(name)
		if err != nil {
			return nil, err
		}
		buf.Write(k)
		buf.WriteByte(':')
		v, err := json.Marshal(o.vals[i]) //lint:allow jsonsafe(vals hold sanitized subtrees built by sanitize, never raw floats)
		if err != nil {
			return nil, err
		}
		buf.Write(v)
	}
	buf.WriteByte('}')
	return buf.Bytes(), nil
}
