package jsonx

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"
	"time"
)

type inner struct {
	X float64 `json:"x"`
}

type sample struct {
	Name    string             `json:"name,omitempty"`
	Seed    uint64             `json:"seed,omitempty"`
	P       float64            `json:"p"`
	Skip    float64            `json:"-"`
	Scores  []float64          `json:"scores,omitempty"`
	Nested  inner              `json:"nested"`
	Ptr     *inner             `json:"ptr,omitempty"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
	Matrix  [][]float64        `json:"matrix,omitempty"`
	Raw     []byte             `json:"raw,omitempty"`
	Elapsed time.Duration      `json:"elapsed_ns,omitempty"`
}

// TestMarshalMatchesEncodingJSON pins the compatibility contract: for any
// value free of non-finite floats, Marshal must produce byte-identical
// output to encoding/json.
func TestMarshalMatchesEncodingJSON(t *testing.T) {
	cases := []any{
		sample{
			Name: "exp", Seed: 7, P: 0.25,
			Scores:  []float64{1, 2.5, -3e-9, 1e21, 0.1},
			Nested:  inner{X: 1.5},
			Ptr:     &inner{X: -2},
			Metrics: map[string]float64{"ns/op": 123.5, "B/op": 0, "allocs/op": 9},
			Matrix:  [][]float64{{1, 2}, {3}},
			Raw:     []byte("hello"),
			Elapsed: 1500 * time.Millisecond,
		},
		sample{}, // every omitempty field empty
		map[string]any{"b": 1, "a": []any{nil, "s", 2.5}},
		[]float64{0.1, 0.2},
		3.14,
		nil,
		"plain",
		struct {
			A int
			B string `json:"b,omitempty"`
		}{A: 4},
	}
	for _, c := range cases {
		want, err := json.Marshal(c)
		if err != nil {
			t.Fatalf("json.Marshal(%+v): %v", c, err)
		}
		got, err := Marshal(c)
		if err != nil {
			t.Fatalf("Marshal(%+v): %v", c, err)
		}
		if string(got) != string(want) {
			t.Errorf("Marshal(%+v):\n got %s\nwant %s", c, got, want)
		}
	}
}

func TestMarshalIndentMatchesEncodingJSON(t *testing.T) {
	v := sample{Name: "exp", P: 0.5, Scores: []float64{1, 2}}
	want, _ := json.MarshalIndent(v, "", "  ")
	got, err := MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("indent mismatch:\n got %s\nwant %s", got, want)
	}
}

// TestMarshalNonFinite is the point of the package: NaN and ±Inf encode as
// null wherever they appear, instead of failing the whole document.
func TestMarshalNonFinite(t *testing.T) {
	v := sample{
		Name:    "nan",
		P:       math.NaN(),
		Scores:  []float64{1, math.Inf(1), math.Inf(-1)},
		Nested:  inner{X: math.NaN()},
		Metrics: map[string]float64{"rho": math.NaN(), "ok": 2},
		Matrix:  [][]float64{{math.NaN()}},
	}
	if _, err := json.Marshal(v); err == nil {
		t.Fatal("sanity: encoding/json should reject NaN")
	}
	got, err := Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"name":"nan","p":null,"scores":[1,null,null],` +
		`"nested":{"x":null},"metrics":{"ok":2,"rho":null},"matrix":[[null]]}`
	if string(got) != want {
		t.Errorf("non-finite encoding:\n got %s\nwant %s", got, want)
	}
	// The output must round-trip through a plain decode: null leaves float
	// fields at their zero value, per the encoding/json null rule.
	var back sample
	if err := json.Unmarshal(got, &back); err != nil {
		t.Fatalf("round-trip decode: %v", err)
	}
	if back.P != 0 || back.Metrics["ok"] != 2 {
		t.Errorf("round-trip values: %+v", back)
	}
}

// TestMarshalHonorsCustomMarshaler: a nested json.Marshaler implementation
// wins, exactly as in encoding/json.
func TestMarshalHonorsCustomMarshaler(t *testing.T) {
	v := struct {
		T time.Time `json:"t"`
	}{T: time.Date(2021, 3, 1, 0, 0, 0, 0, time.UTC)}
	want, _ := json.Marshal(v)
	got, err := Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("marshaler passthrough:\n got %s\nwant %s", got, want)
	}
}

// TestMarshalAnonymousPromotion: untagged embedded structs flatten into the
// parent object, as encoding/json promotes them.
func TestMarshalAnonymousPromotion(t *testing.T) {
	type base struct {
		A int `json:"a"`
	}
	v := struct {
		base
		B float64 `json:"b"`
	}{base: base{A: 1}, B: math.NaN()}
	got, err := Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != `{"a":1,"b":null}` {
		t.Errorf("got %s", got)
	}
}

func TestMarshalNilsAndPointers(t *testing.T) {
	f := math.NaN()
	cases := []struct {
		in   any
		want string
	}{
		{(*inner)(nil), "null"},
		{&f, "null"},
		{[]any{nil}, "[null]"},
		{map[string][]float64{"a": nil}, `{"a":null}`},
	}
	for _, c := range cases {
		got, err := Marshal(c.in)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != c.want {
			t.Errorf("Marshal(%v) = %s, want %s", reflect.TypeOf(c.in), got, c.want)
		}
	}
}
