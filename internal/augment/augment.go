// Package augment implements seedable stochastic data augmentation, one of
// the ξO sources of variation studied in Figure 1. Augmentations draw their
// randomness from a dedicated stream (xrand.VarAugment) so the benchmark can
// vary augmentation noise in isolation, and they are approximately
// label-preserving for the synthetic tasks: small feature jitter, occlusion
// masking (the random-crop analogue) and multiplicative scaling (the
// brightness analogue).
package augment

import (
	"varbench/internal/tensor"
	"varbench/internal/xrand"
)

// Augmenter perturbs one feature row in place using randomness from r.
type Augmenter interface {
	Apply(row []float64, r *xrand.Source)
}

// Jitter adds isotropic Gaussian noise with standard deviation Std.
type Jitter struct {
	Std float64
}

// Apply implements Augmenter.
func (j Jitter) Apply(row []float64, r *xrand.Source) {
	for i := range row {
		row[i] += j.Std * r.NormFloat64()
	}
}

// Mask zeroes a random contiguous block covering Frac of the features: the
// vector analogue of random cropping / cutout occlusion.
type Mask struct {
	Frac float64
}

// Apply implements Augmenter.
func (m Mask) Apply(row []float64, r *xrand.Source) {
	w := int(m.Frac * float64(len(row)))
	if w <= 0 {
		return
	}
	if w >= len(row) {
		w = len(row) - 1
	}
	start := r.Intn(len(row) - w + 1)
	for i := start; i < start+w; i++ {
		row[i] = 0
	}
}

// Scale multiplies the whole row by a factor drawn uniformly from
// [1-Range, 1+Range]: the brightness/contrast analogue.
type Scale struct {
	Range float64
}

// Apply implements Augmenter.
func (s Scale) Apply(row []float64, r *xrand.Source) {
	f := r.Uniform(1-s.Range, 1+s.Range)
	for i := range row {
		row[i] *= f
	}
}

// Pipeline applies augmenters in sequence.
type Pipeline []Augmenter

// Apply implements Augmenter.
func (p Pipeline) Apply(row []float64, r *xrand.Source) {
	for _, a := range p {
		a.Apply(row, r)
	}
}

// Batch returns an augmented copy of the rows of x indexed by idx, leaving x
// untouched. A nil augmenter just gathers the rows.
func Batch(x *tensor.Matrix, idx []int, a Augmenter, r *xrand.Source) *tensor.Matrix {
	out := tensor.NewMatrix(len(idx), x.Cols)
	for i, j := range idx {
		row := out.Row(i)
		copy(row, x.Row(j))
		if a != nil {
			a.Apply(row, r)
		}
	}
	return out
}
