package augment

import (
	"math"
	"testing"

	"varbench/internal/tensor"
	"varbench/internal/xrand"
)

func TestJitterMovesEveryFeature(t *testing.T) {
	row := []float64{1, 2, 3, 4}
	orig := append([]float64(nil), row...)
	Jitter{Std: 0.5}.Apply(row, xrand.New(1))
	for i := range row {
		if row[i] == orig[i] {
			t.Fatalf("feature %d unchanged", i)
		}
	}
}

func TestJitterMagnitude(t *testing.T) {
	r := xrand.New(2)
	const n = 20000
	row := make([]float64, n)
	Jitter{Std: 0.3}.Apply(row, r)
	var sq float64
	for _, v := range row {
		sq += v * v
	}
	std := math.Sqrt(sq / n)
	if math.Abs(std-0.3) > 0.01 {
		t.Errorf("jitter std = %v, want 0.3", std)
	}
}

func TestMaskZeroesContiguousBlock(t *testing.T) {
	row := []float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}
	Mask{Frac: 0.3}.Apply(row, xrand.New(3))
	zeros, first, last := 0, -1, -1
	for i, v := range row {
		if v == 0 {
			zeros++
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	if zeros != 3 {
		t.Fatalf("masked %d features, want 3", zeros)
	}
	if last-first+1 != zeros {
		t.Fatal("mask is not contiguous")
	}
}

func TestMaskEdgeCases(t *testing.T) {
	row := []float64{1, 2}
	Mask{Frac: 0}.Apply(row, xrand.New(1))
	if row[0] != 1 || row[1] != 2 {
		t.Fatal("zero-fraction mask changed data")
	}
	// Frac ≥ 1 must never wipe the whole row.
	row = []float64{1, 2, 3}
	Mask{Frac: 5}.Apply(row, xrand.New(1))
	nonzero := 0
	for _, v := range row {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Fatal("mask wiped entire row")
	}
}

func TestScaleRange(t *testing.T) {
	row := []float64{2, 4}
	Scale{Range: 0.1}.Apply(row, xrand.New(4))
	f := row[0] / 2
	if f < 0.9 || f > 1.1 {
		t.Fatalf("scale factor %v outside [0.9, 1.1]", f)
	}
	if math.Abs(row[1]/4-f) > 1e-12 {
		t.Fatal("scale not uniform across features")
	}
}

func TestPipelineOrderAndSeeding(t *testing.T) {
	p := Pipeline{Jitter{Std: 0.1}, Scale{Range: 0.2}}
	a := []float64{1, 2, 3}
	b := []float64{1, 2, 3}
	p.Apply(a, xrand.New(9))
	p.Apply(b, xrand.New(9))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed gave different augmentation")
		}
	}
}

func TestBatchLeavesSourceUntouched(t *testing.T) {
	x := tensor.FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	orig := append([]float64(nil), x.Data...)
	out := Batch(x, []int{2, 0}, Jitter{Std: 1}, xrand.New(5))
	if out.Rows != 2 || out.Cols != 2 {
		t.Fatal("bad batch shape")
	}
	for i, v := range x.Data {
		if v != orig[i] {
			t.Fatal("augmentation mutated the dataset")
		}
	}
	// nil augmenter = pure gather.
	gathered := Batch(x, []int{1}, nil, nil)
	if gathered.At(0, 0) != 3 || gathered.At(0, 1) != 4 {
		t.Fatal("gather wrong")
	}
}
