package data

import (
	"bytes"
	"strings"
	"testing"

	"varbench/internal/xrand"
)

func TestCSVRoundTrip(t *testing.T) {
	orig := makeToyDataset(50, 3, 7)
	var buf bytes.Buffer
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "toy", 3)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != orig.N() || back.Dim() != orig.Dim() || back.NumClasses != 3 {
		t.Fatalf("shape changed: %d×%d", back.N(), back.Dim())
	}
	for i := 0; i < orig.N(); i++ {
		if back.Y[i] != orig.Y[i] {
			t.Fatal("labels changed")
		}
		for j := 0; j < orig.Dim(); j++ {
			if back.X.At(i, j) != orig.X.At(i, j) {
				t.Fatal("features changed (should be exact: 'g' -1 formatting)")
			}
		}
	}
}

func TestCSVRoundTripWithGroups(t *testing.T) {
	sg := NewSegmentation("seg", 4, 3, 6, 2, 0.3, 9)
	orig := sg.Sample(32, xrand.New(1))
	var buf bytes.Buffer
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "seg", 3)
	if err != nil {
		t.Fatal(err)
	}
	if back.Group == nil {
		t.Fatal("groups lost")
	}
	for i := range orig.Group {
		if back.Group[i] != orig.Group[i] {
			t.Fatal("group values changed")
		}
	}
}

func TestReadCSVValidation(t *testing.T) {
	cases := map[string]string{
		"no rows":       "x0,y\n",
		"ragged row":    "x0,x1,y\n1,2,0\n1,0\n",
		"bad float":     "x0,y\nabc,0\n",
		"bad label":     "x0,y\n1,5\n", // numClasses=2 below
		"frac label":    "x0,y\n1,0.5\n",
		"negative":      "x0,y\n1,-1\n",
		"no features":   "y\n0\n",
		"bad group int": "x0,y,group\n1,0,zz\n",
	}
	for name, csvText := range cases {
		if _, err := ReadCSV(strings.NewReader(csvText), "t", 2); err == nil {
			t.Errorf("%s: accepted invalid csv", name)
		}
	}
	// Regression targets accept any float.
	d, err := ReadCSV(strings.NewReader("x0,y\n1,0.37\n2,-4.2\n"), "r", 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.IsClassification() || d.Y[1] != -4.2 {
		t.Error("regression parsing wrong")
	}
}
