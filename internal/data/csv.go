package data

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"varbench/internal/tensor"
)

// WriteCSV serializes a dataset: a header row (feature names x0..xd-1, then
// "y" and optionally "group"), followed by one row per example.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, d.Dim()+2)
	for j := 0; j < d.Dim(); j++ {
		header = append(header, fmt.Sprintf("x%d", j))
	}
	header = append(header, "y")
	if d.Group != nil {
		header = append(header, "group")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for i := 0; i < d.N(); i++ {
		for j, v := range d.X.Row(i) {
			row[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		row[d.Dim()] = strconv.FormatFloat(d.Y[i], 'g', -1, 64)
		if d.Group != nil {
			row[d.Dim()+1] = strconv.Itoa(d.Group[i])
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV loads a dataset written by WriteCSV (or any CSV whose last column
// — or last two, when a "group" column is present — hold the target and
// group). numClasses 0 marks regression targets.
func ReadCSV(r io.Reader, name string, numClasses int) (*Dataset, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("data: csv read: %w", err)
	}
	if len(records) < 2 {
		return nil, fmt.Errorf("data: csv needs a header and at least one row")
	}
	header := records[0]
	hasGroup := header[len(header)-1] == "group"
	dim := len(header) - 1
	if hasGroup {
		dim--
	}
	if dim < 1 {
		return nil, fmt.Errorf("data: csv has no feature columns")
	}
	n := len(records) - 1
	d := &Dataset{
		Name:       name,
		X:          tensor.NewMatrix(n, dim),
		Y:          make([]float64, n),
		NumClasses: numClasses,
	}
	if hasGroup {
		d.Group = make([]int, n)
	}
	for i, rec := range records[1:] {
		if len(rec) != len(header) {
			return nil, fmt.Errorf("data: csv row %d has %d fields, want %d", i+1, len(rec), len(header))
		}
		row := d.X.Row(i)
		for j := 0; j < dim; j++ {
			v, err := strconv.ParseFloat(rec[j], 64)
			if err != nil {
				return nil, fmt.Errorf("data: csv row %d col %d: %w", i+1, j, err)
			}
			row[j] = v
		}
		y, err := strconv.ParseFloat(rec[dim], 64)
		if err != nil {
			return nil, fmt.Errorf("data: csv row %d target: %w", i+1, err)
		}
		if numClasses > 0 && (y != float64(int(y)) || y < 0 || y >= float64(numClasses)) {
			return nil, fmt.Errorf("data: csv row %d label %v outside [0, %d)", i+1, y, numClasses)
		}
		d.Y[i] = y
		if hasGroup {
			g, err := strconv.Atoi(rec[dim+1])
			if err != nil {
				return nil, fmt.Errorf("data: csv row %d group: %w", i+1, err)
			}
			d.Group[i] = g
		}
	}
	return d, nil
}
