// Package data provides the dataset substrate for the benchmark: a dataset
// container, random train/valid/test splitting, the bootstrap /
// out-of-bootstrap resampling scheme the paper uses to probe data-sampling
// variance (Appendix B), stratified bootstrap for balanced tasks (Appendix
// D.1), cross-validation (for the Appendix B comparison), and synthetic
// generators standing in for the five case-study datasets.
package data

import (
	"fmt"

	"varbench/internal/tensor"
)

// Dataset is a supervised dataset. For classification, Y holds class indices
// (0..NumClasses-1) stored as float64; for regression NumClasses is 0 and Y
// holds real targets. Group optionally assigns each example to a group (e.g.
// the image an individual cell belongs to in the segmentation task) so
// metrics can aggregate per group.
type Dataset struct {
	Name       string
	X          *tensor.Matrix
	Y          []float64
	NumClasses int
	Group      []int
}

// N returns the number of examples.
func (d *Dataset) N() int { return d.X.Rows }

// Dim returns the feature dimension.
func (d *Dataset) Dim() int { return d.X.Cols }

// IsClassification reports whether the targets are class indices.
func (d *Dataset) IsClassification() bool { return d.NumClasses > 0 }

// Subset returns a new dataset containing the rows idx (duplicates allowed:
// bootstrap resamples are legitimate subsets).
func (d *Dataset) Subset(idx []int) *Dataset {
	sub := &Dataset{
		Name:       d.Name,
		X:          tensor.NewMatrix(len(idx), d.Dim()),
		Y:          make([]float64, len(idx)),
		NumClasses: d.NumClasses,
	}
	if d.Group != nil {
		sub.Group = make([]int, len(idx))
	}
	for i, j := range idx {
		copy(sub.X.Row(i), d.X.Row(j))
		sub.Y[i] = d.Y[j]
		if d.Group != nil {
			sub.Group[i] = d.Group[j]
		}
	}
	return sub
}

// Classes returns, for each class, the indices of its examples.
func (d *Dataset) Classes() ([][]int, error) {
	if !d.IsClassification() {
		return nil, fmt.Errorf("data: %s is not a classification dataset", d.Name)
	}
	byClass := make([][]int, d.NumClasses)
	for i, y := range d.Y {
		c := int(y)
		if c < 0 || c >= d.NumClasses {
			return nil, fmt.Errorf("data: label %v out of range [0,%d)", y, d.NumClasses)
		}
		byClass[c] = append(byClass[c], i)
	}
	return byClass, nil
}

// Concat appends other to d, returning a new dataset. Dimensions and target
// types must match.
func Concat(a, b *Dataset) (*Dataset, error) {
	if a.Dim() != b.Dim() || a.NumClasses != b.NumClasses {
		return nil, fmt.Errorf("data: incompatible datasets %s / %s", a.Name, b.Name)
	}
	out := &Dataset{
		Name:       a.Name,
		X:          tensor.NewMatrix(a.N()+b.N(), a.Dim()),
		Y:          make([]float64, 0, a.N()+b.N()),
		NumClasses: a.NumClasses,
	}
	copy(out.X.Data[:len(a.X.Data)], a.X.Data)
	copy(out.X.Data[len(a.X.Data):], b.X.Data)
	out.Y = append(out.Y, a.Y...)
	out.Y = append(out.Y, b.Y...)
	if a.Group != nil && b.Group != nil {
		out.Group = append(append([]int{}, a.Group...), b.Group...)
	}
	return out, nil
}

// TrainValidTest bundles the three splits of one benchmark replication:
// Stv = (Train, Valid) and So = Test in the paper's notation.
type TrainValidTest struct {
	Train, Valid, Test *Dataset
}

// Sizes returns the three split sizes.
func (s TrainValidTest) Sizes() (int, int, int) {
	return s.Train.N(), s.Valid.N(), s.Test.N()
}
