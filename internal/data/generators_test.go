package data

import (
	"math"
	"testing"

	"varbench/internal/xrand"
)

func TestGaussianMixtureShape(t *testing.T) {
	gm := NewGaussianMixture("gm", 4, 8, 3, 1, 7)
	d := gm.Sample(500, xrand.New(1))
	if d.N() != 500 || d.Dim() != 8 || d.NumClasses != 4 {
		t.Fatalf("bad shape: n=%d dim=%d classes=%d", d.N(), d.Dim(), d.NumClasses)
	}
	counts := make([]int, 4)
	for _, y := range d.Y {
		counts[int(y)]++
	}
	for c, n := range counts {
		if n < 60 {
			t.Errorf("class %d count %d: classes should be roughly balanced", c, n)
		}
	}
}

func TestGaussianMixtureStructStable(t *testing.T) {
	// Same structural seed ⇒ same distribution: large samples have close
	// per-class means even with different sampling seeds.
	gmA := NewGaussianMixture("gm", 2, 4, 5, 0.5, 42)
	gmB := NewGaussianMixture("gm", 2, 4, 5, 0.5, 42)
	dA := gmA.Sample(4000, xrand.New(1))
	dB := gmB.Sample(4000, xrand.New(2))
	meanOfClass := func(d *Dataset, c int) []float64 {
		m := make([]float64, d.Dim())
		n := 0
		for i := 0; i < d.N(); i++ {
			if int(d.Y[i]) == c {
				for j := 0; j < d.Dim(); j++ {
					m[j] += d.X.At(i, j)
				}
				n++
			}
		}
		for j := range m {
			m[j] /= float64(n)
		}
		return m
	}
	for c := 0; c < 2; c++ {
		ma, mb := meanOfClass(dA, c), meanOfClass(dB, c)
		for j := range ma {
			if math.Abs(ma[j]-mb[j]) > 0.15 {
				t.Fatalf("class %d mean differs across samples: %v vs %v", c, ma[j], mb[j])
			}
		}
	}
}

func TestGaussianMixtureSeparable(t *testing.T) {
	// With large separation a nearest-mean classifier should be near-perfect,
	// i.e. the task is learnable.
	gm := NewGaussianMixture("gm", 3, 6, 5, 0.5, 11)
	d := gm.Sample(600, xrand.New(3))
	correct := 0
	for i := 0; i < d.N(); i++ {
		best, bestDist := -1, math.Inf(1)
		for c := 0; c < 3; c++ {
			dist := 0.0
			for j := 0; j < d.Dim(); j++ {
				diff := d.X.At(i, j) - gm.means.At(c, j)
				dist += diff * diff
			}
			if dist < bestDist {
				best, bestDist = c, dist
			}
		}
		if best == int(d.Y[i]) {
			correct++
		}
	}
	if acc := float64(correct) / float64(d.N()); acc < 0.95 {
		t.Errorf("nearest-mean accuracy %v, want > 0.95 for well separated mixture", acc)
	}
}

func TestTextTopicsShapeAndSignal(t *testing.T) {
	tt := NewTextTopics("sst2-like", 200, 30, 16, 1.5, 0.5, 5)
	d := tt.Sample(800, xrand.New(1))
	if d.N() != 800 || d.Dim() != 16 || d.NumClasses != 2 {
		t.Fatalf("bad shape")
	}
	// Embeddings are unit-normalized.
	for i := 0; i < 20; i++ {
		norm := 0.0
		for j := 0; j < d.Dim(); j++ {
			norm += d.X.At(i, j) * d.X.At(i, j)
		}
		if math.Abs(norm-1) > 1e-9 {
			t.Fatalf("embedding %d norm %v, want 1", i, norm)
		}
	}
	// Class centroids must differ: the task carries signal.
	cent := [2][]float64{make([]float64, d.Dim()), make([]float64, d.Dim())}
	n := [2]int{}
	for i := 0; i < d.N(); i++ {
		c := int(d.Y[i])
		n[c]++
		for j := 0; j < d.Dim(); j++ {
			cent[c][j] += d.X.At(i, j)
		}
	}
	dist := 0.0
	for j := 0; j < d.Dim(); j++ {
		diff := cent[0][j]/float64(n[0]) - cent[1][j]/float64(n[1])
		dist += diff * diff
	}
	if math.Sqrt(dist) < 0.05 {
		t.Errorf("class centroid distance %v too small: no class signal", math.Sqrt(dist))
	}
}

func TestTextTopicsImbalance(t *testing.T) {
	tt := NewTextTopics("rte-like", 100, 20, 8, 1, 0.3, 5)
	d := tt.Sample(2000, xrand.New(2))
	pos := 0
	for _, y := range d.Y {
		if y == 1 {
			pos++
		}
	}
	rate := float64(pos) / float64(d.N())
	if math.Abs(rate-0.3) > 0.04 {
		t.Errorf("positive rate %v, want ≈0.3", rate)
	}
}

func TestSegmentationGroupsAndLabels(t *testing.T) {
	sg := NewSegmentation("voc-like", 8, 5, 12, 3, 0.5, 9)
	d := sg.Sample(8*8*10, xrand.New(1))
	if d.N() != 640 {
		t.Fatalf("n = %d, want 640", d.N())
	}
	if d.Group == nil {
		t.Fatal("segmentation dataset must carry groups")
	}
	// Cells of one image share the group id; groups are contiguous blocks.
	for i := 0; i < d.N(); i++ {
		if d.Group[i] != i/64 {
			t.Fatalf("group[%d] = %d, want %d", i, d.Group[i], i/64)
		}
	}
	// Background plus at least one object class must appear.
	seen := map[int]bool{}
	for _, y := range d.Y {
		seen[int(y)] = true
	}
	if !seen[0] || len(seen) < 2 {
		t.Errorf("label diversity too low: %v", seen)
	}
}

func TestSegmentationRoundsUpToImages(t *testing.T) {
	sg := NewSegmentation("voc-like", 4, 3, 6, 2, 0.3, 9)
	d := sg.Sample(17, xrand.New(1)) // 17 cells → 2 images of 16 cells
	if d.N() != 32 {
		t.Fatalf("n = %d, want 32", d.N())
	}
}

func TestPeptideShapeAndTargets(t *testing.T) {
	p := NewPeptide("mhc-like", 20, 9, 6, 10, 0.3, 13)
	d := p.Sample(400, xrand.New(1))
	if d.Dim() != (6+9)*20 {
		t.Fatalf("dim = %d", d.Dim())
	}
	if d.IsClassification() {
		t.Fatal("peptide task must be regression")
	}
	for i, y := range d.Y {
		if y <= 0 || y >= 1 {
			t.Fatalf("affinity %d = %v outside (0,1)", i, y)
		}
	}
	// Each row is one-hot per position: row sum = pocketLen + pepLen.
	for i := 0; i < 10; i++ {
		sum := 0.0
		for j := 0; j < d.Dim(); j++ {
			sum += d.X.At(i, j)
		}
		if sum != 15 {
			t.Fatalf("row %d one-hot sum = %v, want 15", i, sum)
		}
	}
}

func TestPeptideHasMotifSignal(t *testing.T) {
	// Targets should not be pure noise: variance of y must exceed the noise
	// contribution alone (σ=0.3 through a sigmoid).
	p := NewPeptide("mhc-like", 20, 9, 6, 5, 0.1, 13)
	d := p.Sample(2000, xrand.New(2))
	mean, sq := 0.0, 0.0
	for _, y := range d.Y {
		mean += y
	}
	mean /= float64(d.N())
	for _, y := range d.Y {
		sq += (y - mean) * (y - mean)
	}
	if v := sq / float64(d.N()-1); v < 0.01 {
		t.Errorf("target variance %v too small: motifs carry no signal", v)
	}
}

func TestSubsetAndConcat(t *testing.T) {
	d := makeToyDataset(20, 2, 1)
	sub := d.Subset([]int{0, 5, 5, 19})
	if sub.N() != 4 {
		t.Fatal("subset size wrong")
	}
	if sub.Y[1] != d.Y[5] || sub.Y[2] != d.Y[5] {
		t.Fatal("subset must allow duplicate rows (bootstrap)")
	}
	joined, err := Concat(d, sub)
	if err != nil {
		t.Fatal(err)
	}
	if joined.N() != 24 {
		t.Fatal("concat size wrong")
	}
	if joined.Y[20] != d.Y[0] {
		t.Fatal("concat misaligned")
	}
	other := makeToyDataset(5, 2, 1)
	other.X = other.X.T() // break dimensions
	if _, err := Concat(d, other); err == nil {
		t.Fatal("incompatible concat should error")
	}
}

func TestClassesIndex(t *testing.T) {
	d := makeToyDataset(50, 3, 2)
	byClass, err := d.Classes()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for c, members := range byClass {
		for _, i := range members {
			if int(d.Y[i]) != c {
				t.Fatal("class index wrong")
			}
		}
		total += len(members)
	}
	if total != 50 {
		t.Fatal("class index incomplete")
	}
	reg := NewPeptide("r", 4, 3, 2, 2, 0.1, 1).Sample(10, xrand.New(1))
	if _, err := reg.Classes(); err == nil {
		t.Fatal("Classes on regression should error")
	}
}
