package data

import (
	"math"
	"testing"
	"testing/quick"

	"varbench/internal/xrand"
)

func TestBootstrapIndicesRanges(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 1 + r.Intn(200)
		k := 1 + r.Intn(300)
		sample, oob := BootstrapIndices(n, k, r)
		if len(sample) != k {
			return false
		}
		inSample := make(map[int]bool)
		for _, i := range sample {
			if i < 0 || i >= n {
				return false
			}
			inSample[i] = true
		}
		for _, i := range oob {
			if i < 0 || i >= n || inSample[i] {
				return false // OOB must be disjoint from the sample
			}
		}
		// sample ∪ oob covers [0,n)
		return len(inSample)+len(oob) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBootstrapOOBFraction(t *testing.T) {
	// With k = n the OOB pool converges to (1-1/n)^n ≈ e^{-1} ≈ 36.8% of n.
	r := xrand.New(3)
	const n = 2000
	total := 0
	const reps = 50
	for i := 0; i < reps; i++ {
		_, oob := BootstrapIndices(n, n, r)
		total += len(oob)
	}
	frac := float64(total) / float64(reps*n)
	if math.Abs(frac-1/math.E) > 0.01 {
		t.Errorf("OOB fraction = %v, want ≈ %v", frac, 1/math.E)
	}
}

func TestSampleWithoutReplacementDistinct(t *testing.T) {
	r := xrand.New(5)
	pool := []int{2, 4, 6, 8, 10, 12}
	got := SampleWithoutReplacement(pool, 4, r)
	seen := map[int]bool{}
	valid := map[int]bool{2: true, 4: true, 6: true, 8: true, 10: true, 12: true}
	for _, v := range got {
		if seen[v] || !valid[v] {
			t.Fatalf("invalid draw %v", got)
		}
		seen[v] = true
	}
	// Pool argument must not be mutated.
	if pool[0] != 2 || pool[5] != 12 {
		t.Fatal("pool mutated")
	}
}

func makeToyDataset(n, classes int, seed uint64) *Dataset {
	gm := NewGaussianMixture("toy", classes, 4, 2, 1, 99)
	return gm.Sample(n, xrand.New(seed))
}

func TestOOBSplitDisjointRoles(t *testing.T) {
	d := makeToyDataset(300, 3, 1)
	r := xrand.New(2)
	s, err := OOBSplit(d, 300, 30, 30, r)
	if err != nil {
		t.Fatal(err)
	}
	nt, nv, ne := s.Sizes()
	if nt != 300 || nv != 30 || ne != 30 {
		t.Fatalf("sizes = %d %d %d", nt, nv, ne)
	}
}

func TestOOBSplitErrorsWhenPoolTooSmall(t *testing.T) {
	d := makeToyDataset(50, 2, 1)
	r := xrand.New(2)
	if _, err := OOBSplit(d, 50, 40, 40, r); err == nil {
		t.Fatal("expected pool-too-small error")
	}
}

func TestOOBSplitIsSeeded(t *testing.T) {
	d := makeToyDataset(200, 2, 1)
	a, err := OOBSplit(d, 200, 20, 20, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := OOBSplit(d, 200, 20, 20, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Train.Y {
		if a.Train.Y[i] != b.Train.Y[i] {
			t.Fatal("same seed produced different splits")
		}
	}
	c, err := OOBSplit(d, 200, 20, 20, xrand.New(8))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Test.Y {
		if a.Test.Y[i] != c.Test.Y[i] {
			same = false
			break
		}
	}
	if same && a.Test.N() > 5 {
		t.Error("different seeds produced identical test sets")
	}
}

func TestStratifiedOOBSplitBalance(t *testing.T) {
	d := makeToyDataset(3000, 5, 1)
	r := xrand.New(11)
	s, err := StratifiedOOBSplit(d, 200, 40, 40, r)
	if err != nil {
		t.Fatal(err)
	}
	for _, split := range []*Dataset{s.Train, s.Valid, s.Test} {
		counts := make([]int, 5)
		for _, y := range split.Y {
			counts[int(y)]++
		}
		for c := 1; c < 5; c++ {
			if counts[c] != counts[0] {
				t.Fatalf("stratified split unbalanced: %v", counts)
			}
		}
	}
	if s.Train.N() != 5*200 || s.Valid.N() != 5*40 || s.Test.N() != 5*40 {
		t.Fatalf("stratified sizes wrong: %d %d %d", s.Train.N(), s.Valid.N(), s.Test.N())
	}
}

func TestRandomSplitDisjoint(t *testing.T) {
	d := makeToyDataset(100, 2, 1)
	// Tag each row uniquely through the first feature to detect overlap.
	for i := 0; i < d.N(); i++ {
		d.X.Set(i, 0, float64(i))
	}
	s, err := RandomSplit(d, 60, 20, 20, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[float64]bool{}
	for _, split := range []*Dataset{s.Train, s.Valid, s.Test} {
		for i := 0; i < split.N(); i++ {
			id := split.X.At(i, 0)
			if seen[id] {
				t.Fatalf("example %v in two splits", id)
			}
			seen[id] = true
		}
	}
	if _, err := RandomSplit(d, 90, 20, 20, xrand.New(3)); err == nil {
		t.Fatal("oversized split should error")
	}
}

func TestKFoldPartition(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 10 + r.Intn(100)
		k := 2 + r.Intn(8)
		folds, err := KFold(n, k, r)
		if err != nil {
			return false
		}
		testCount := make([]int, n)
		for _, fold := range folds {
			train, test := fold[0], fold[1]
			if len(train)+len(test) != n {
				return false
			}
			inTest := make(map[int]bool)
			for _, i := range test {
				testCount[i]++
				inTest[i] = true
			}
			for _, i := range train {
				if inTest[i] {
					return false
				}
			}
		}
		// Every example appears in exactly one test fold.
		for _, c := range testCount {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestKFoldInvalid(t *testing.T) {
	if _, err := KFold(5, 1, xrand.New(1)); err == nil {
		t.Error("k=1 should error")
	}
	if _, err := KFold(5, 6, xrand.New(1)); err == nil {
		t.Error("k>n should error")
	}
}
