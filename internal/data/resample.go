package data

import (
	"fmt"

	"varbench/internal/xrand"
)

// BootstrapIndices draws k indices with replacement from [0, n) and returns
// them together with the out-of-bootstrap pool: the indices never drawn
// (Efron 1979; Breiman 1996 out-of-bag). The OOB pool is returned in
// ascending order.
func BootstrapIndices(n, k int, r *xrand.Source) (sample, oob []int) {
	sample = make([]int, k)
	seen := make([]bool, n)
	for i := range sample {
		j := r.Intn(n)
		sample[i] = j
		seen[j] = true
	}
	for i, s := range seen {
		if !s {
			oob = append(oob, i)
		}
	}
	return sample, oob
}

// SampleWithoutReplacement draws k distinct values from pool (partial
// Fisher-Yates on a copy). It panics if k > len(pool).
func SampleWithoutReplacement(pool []int, k int, r *xrand.Source) []int {
	if k > len(pool) {
		panic(fmt.Sprintf("data: cannot draw %d from pool of %d", k, len(pool)))
	}
	p := append([]int(nil), pool...)
	for i := 0; i < k; i++ {
		j := i + r.Intn(len(p)-i)
		p[i], p[j] = p[j], p[i]
	}
	return p[:k]
}

// OOBSplit draws one bootstrap benchmark replication following Appendix B:
// the training set St is a bootstrap resample (with replacement) of size
// nTrain, and the validation and test sets are drawn from the
// out-of-bootstrap pool S\St, guaranteeing no example appears in more than
// one role. nValid+nTest must not exceed the expected OOB pool (~36.8% of n
// when nTrain = n); an error is returned when the realized pool is too small.
func OOBSplit(d *Dataset, nTrain, nValid, nTest int, r *xrand.Source) (TrainValidTest, error) {
	trainIdx, oob := BootstrapIndices(d.N(), nTrain, r)
	if len(oob) < nValid+nTest {
		return TrainValidTest{}, fmt.Errorf(
			"data: out-of-bootstrap pool %d too small for valid %d + test %d",
			len(oob), nValid, nTest)
	}
	rest := SampleWithoutReplacement(oob, nValid+nTest, r)
	return TrainValidTest{
		Train: d.Subset(trainIdx),
		Valid: d.Subset(rest[:nValid]),
		Test:  d.Subset(rest[nValid : nValid+nTest]),
	}, nil
}

// StratifiedOOBSplit performs the per-class variant used for CIFAR10
// (Appendix D.1): for each class independently it bootstrap-samples
// perTrain training examples and draws perValid and perTest out-of-bootstrap
// examples, preserving exact class balance in every split.
func StratifiedOOBSplit(d *Dataset, perTrain, perValid, perTest int, r *xrand.Source) (TrainValidTest, error) {
	byClass, err := d.Classes()
	if err != nil {
		return TrainValidTest{}, err
	}
	var trainIdx, validIdx, testIdx []int
	for c, members := range byClass {
		if len(members) == 0 {
			return TrainValidTest{}, fmt.Errorf("data: class %d empty", c)
		}
		sample, oobLocal := BootstrapIndices(len(members), perTrain, r)
		for _, s := range sample {
			trainIdx = append(trainIdx, members[s])
		}
		if len(oobLocal) < perValid+perTest {
			return TrainValidTest{}, fmt.Errorf(
				"data: class %d OOB pool %d too small for %d+%d",
				c, len(oobLocal), perValid, perTest)
		}
		rest := SampleWithoutReplacement(oobLocal, perValid+perTest, r)
		for _, s := range rest[:perValid] {
			validIdx = append(validIdx, members[s])
		}
		for _, s := range rest[perValid:] {
			testIdx = append(testIdx, members[s])
		}
	}
	return TrainValidTest{
		Train: d.Subset(trainIdx),
		Valid: d.Subset(validIdx),
		Test:  d.Subset(testIdx),
	}, nil
}

// RandomSplit partitions the dataset into disjoint train/valid/test sets of
// the given sizes without replacement (a plain random split, the fixed-split
// baseline the paper argues against reusing across a whole benchmark).
func RandomSplit(d *Dataset, nTrain, nValid, nTest int, r *xrand.Source) (TrainValidTest, error) {
	if nTrain+nValid+nTest > d.N() {
		return TrainValidTest{}, fmt.Errorf("data: split sizes %d+%d+%d exceed n=%d",
			nTrain, nValid, nTest, d.N())
	}
	all := make([]int, d.N())
	for i := range all {
		all[i] = i
	}
	idx := SampleWithoutReplacement(all, nTrain+nValid+nTest, r)
	return TrainValidTest{
		Train: d.Subset(idx[:nTrain]),
		Valid: d.Subset(idx[nTrain : nTrain+nValid]),
		Test:  d.Subset(idx[nTrain+nValid:]),
	}, nil
}

// KFold returns k cross-validation folds: fold i is (train indices, test
// indices). Used for the Appendix B ablation comparing cross-validation with
// the out-of-bootstrap scheme. The assignment is a random partition.
func KFold(n, k int, r *xrand.Source) ([][2][]int, error) {
	if k < 2 || k > n {
		return nil, fmt.Errorf("data: k=%d invalid for n=%d", k, n)
	}
	perm := r.Perm(n)
	folds := make([][2][]int, k)
	for f := 0; f < k; f++ {
		lo := f * n / k
		hi := (f + 1) * n / k
		test := append([]int(nil), perm[lo:hi]...)
		train := make([]int, 0, n-(hi-lo))
		train = append(train, perm[:lo]...)
		train = append(train, perm[hi:]...)
		folds[f] = [2][]int{train, test}
	}
	return folds, nil
}
