package data

import (
	"math"

	"varbench/internal/tensor"
	"varbench/internal/xrand"
)

// Distribution is a "true" data distribution D from which finite datasets
// S ~ D^n can be drawn. The benchmark treats the dataset itself as a random
// variable (Section 2); having an explicit D lets tests validate that
// bootstrap resampling of one finite S approximates true resampling from D.
type Distribution interface {
	Name() string
	// Sample draws n i.i.d. examples using the provided source.
	Sample(n int, r *xrand.Source) *Dataset
}

// GaussianMixture is a C-class mixture of Gaussians in dim dimensions, the
// stand-in for image classification (CIFAR10-like): class identity is
// determined by cluster membership, with controllable separation (class
// difficulty). The class means are a deterministic function of StructSeed so
// that independently drawn datasets come from the same distribution.
type GaussianMixture struct {
	TaskName   string
	Classes    int
	Dim        int
	Sep        float64 // scale of class-mean separation
	Within     float64 // within-class standard deviation
	StructSeed uint64

	means *tensor.Matrix // Classes × Dim, lazily built
}

// NewGaussianMixture builds the distribution and materializes its class means.
func NewGaussianMixture(name string, classes, dim int, sep, within float64, structSeed uint64) *GaussianMixture {
	g := &GaussianMixture{
		TaskName: name, Classes: classes, Dim: dim,
		Sep: sep, Within: within, StructSeed: structSeed,
	}
	r := xrand.New(structSeed)
	g.means = tensor.NewMatrix(classes, dim)
	for i := range g.means.Data {
		g.means.Data[i] = sep * r.NormFloat64()
	}
	return g
}

// Name implements Distribution.
func (g *GaussianMixture) Name() string { return g.TaskName }

// Sample implements Distribution.
func (g *GaussianMixture) Sample(n int, r *xrand.Source) *Dataset {
	d := &Dataset{
		Name:       g.TaskName,
		X:          tensor.NewMatrix(n, g.Dim),
		Y:          make([]float64, n),
		NumClasses: g.Classes,
	}
	for i := 0; i < n; i++ {
		c := r.Intn(g.Classes)
		d.Y[i] = float64(c)
		mean := g.means.Row(c)
		row := d.X.Row(i)
		for j := range row {
			row[j] = mean[j] + g.Within*r.NormFloat64()
		}
	}
	return d
}

// TextTopics simulates a GLUE-style binary sentence-classification task fed
// through a frozen pretrained encoder (the BERT fine-tuning regime of
// Appendix D.2/D.3, where only the final classifier head is trained and
// randomly initialized). Raw "sentences" are bags of words with
// class-dependent word frequencies; the frozen encoder is a fixed random
// projection derived from StructSeed — the analogue of loading the same
// pretrained checkpoint for every run.
type TextTopics struct {
	TaskName   string
	Vocab      int
	DocLen     int
	EmbedDim   int
	ClassSkew  float64 // how strongly word use differs between the classes
	PosRate    float64 // marginal probability of the positive class
	StructSeed uint64

	encoder  *tensor.Matrix // Vocab × EmbedDim, frozen
	logitsW  []float64      // per-word class-discriminating weight
	wordBase []float64      // per-word base popularity (unnormalized)
}

// NewTextTopics builds the distribution, its vocabulary statistics, and the
// frozen encoder.
func NewTextTopics(name string, vocab, docLen, embedDim int, skew, posRate float64, structSeed uint64) *TextTopics {
	t := &TextTopics{
		TaskName: name, Vocab: vocab, DocLen: docLen, EmbedDim: embedDim,
		ClassSkew: skew, PosRate: posRate, StructSeed: structSeed,
	}
	r := xrand.New(structSeed)
	t.encoder = tensor.NewMatrix(vocab, embedDim)
	scale := 1 / math.Sqrt(float64(embedDim))
	for i := range t.encoder.Data {
		t.encoder.Data[i] = scale * r.NormFloat64()
	}
	t.logitsW = make([]float64, vocab)
	t.wordBase = make([]float64, vocab)
	for w := 0; w < vocab; w++ {
		t.logitsW[w] = r.NormFloat64()
		t.wordBase[w] = math.Exp(0.8 * r.NormFloat64()) // Zipf-ish popularity
	}
	return t
}

// Name implements Distribution.
func (t *TextTopics) Name() string { return t.TaskName }

// Sample implements Distribution.
func (t *TextTopics) Sample(n int, r *xrand.Source) *Dataset {
	d := &Dataset{
		Name:       t.TaskName,
		X:          tensor.NewMatrix(n, t.EmbedDim),
		Y:          make([]float64, n),
		NumClasses: 2,
	}
	// Precompute per-class word sampling weights.
	weights := [2][]float64{make([]float64, t.Vocab), make([]float64, t.Vocab)}
	totals := [2]float64{}
	for w := 0; w < t.Vocab; w++ {
		weights[0][w] = t.wordBase[w] * math.Exp(-t.ClassSkew*t.logitsW[w]/2)
		weights[1][w] = t.wordBase[w] * math.Exp(t.ClassSkew*t.logitsW[w]/2)
		totals[0] += weights[0][w]
		totals[1] += weights[1][w]
	}
	counts := make([]float64, t.Vocab)
	for i := 0; i < n; i++ {
		c := 0
		if r.Bernoulli(t.PosRate) {
			c = 1
		}
		d.Y[i] = float64(c)
		for j := range counts {
			counts[j] = 0
		}
		for w := 0; w < t.DocLen; w++ {
			counts[sampleWeighted(weights[c], totals[c], r)]++
		}
		// Frozen-encoder embedding of the bag of words, L2-normalized like a
		// sentence embedding.
		row := d.X.Row(i)
		for w, cnt := range counts {
			if cnt == 0 {
				continue
			}
			tensor.Axpy(cnt, t.encoder.Row(w), row)
		}
		norm := 0.0
		for _, v := range row {
			norm += v * v
		}
		if norm > 0 {
			tensor.Scale(1/math.Sqrt(norm), row)
		}
	}
	return d
}

func sampleWeighted(w []float64, total float64, r *xrand.Source) int {
	u := r.Float64() * total
	acc := 0.0
	for i, v := range w {
		acc += v
		if u < acc {
			return i
		}
	}
	return len(w) - 1
}

// Segmentation simulates a PascalVOC-like dense labelling task. Each "image"
// is a GridSize×GridSize grid of cells; a few object blobs of random classes
// are placed on a background. Each cell is one example whose features mix
// its own class template with its neighbours' (context blur) plus noise; the
// Group field records the image so mean-IoU can be computed per benchmark
// split. Class 0 is background, like the VOC background class.
type Segmentation struct {
	TaskName   string
	GridSize   int
	Classes    int // including background class 0
	FeatDim    int
	MaxObjects int
	NoiseStd   float64
	StructSeed uint64

	templates *tensor.Matrix // Classes × FeatDim
}

// NewSegmentation builds the distribution and its class templates.
func NewSegmentation(name string, grid, classes, featDim, maxObjects int, noise float64, structSeed uint64) *Segmentation {
	s := &Segmentation{
		TaskName: name, GridSize: grid, Classes: classes, FeatDim: featDim,
		MaxObjects: maxObjects, NoiseStd: noise, StructSeed: structSeed,
	}
	r := xrand.New(structSeed)
	s.templates = tensor.NewMatrix(classes, featDim)
	for i := range s.templates.Data {
		s.templates.Data[i] = r.NormFloat64()
	}
	return s
}

// Name implements Distribution.
func (s *Segmentation) Name() string { return s.TaskName }

// CellsPerImage returns the number of examples one image contributes.
func (s *Segmentation) CellsPerImage() int { return s.GridSize * s.GridSize }

// Sample draws n cells (n is rounded up to whole images).
func (s *Segmentation) Sample(n int, r *xrand.Source) *Dataset {
	cells := s.CellsPerImage()
	images := (n + cells - 1) / cells
	total := images * cells
	d := &Dataset{
		Name:       s.TaskName,
		X:          tensor.NewMatrix(total, s.FeatDim),
		Y:          make([]float64, total),
		NumClasses: s.Classes,
		Group:      make([]int, total),
	}
	g := s.GridSize
	labels := make([]int, cells)
	for img := 0; img < images; img++ {
		for i := range labels {
			labels[i] = 0 // background
		}
		nObj := 1 + r.Intn(s.MaxObjects)
		for o := 0; o < nObj; o++ {
			cls := 1 + r.Intn(s.Classes-1)
			cx, cy := r.Intn(g), r.Intn(g)
			radius := 1 + r.Intn(g/3+1)
			for x := 0; x < g; x++ {
				for y := 0; y < g; y++ {
					dx, dy := x-cx, y-cy
					if dx*dx+dy*dy <= radius*radius {
						labels[x*g+y] = cls
					}
				}
			}
		}
		base := img * cells
		for x := 0; x < g; x++ {
			for y := 0; y < g; y++ {
				i := base + x*g + y
				d.Y[i] = float64(labels[x*g+y])
				d.Group[i] = img
				row := d.X.Row(i)
				// Own template plus blurred neighbour context plus noise.
				copy(row, s.templates.Row(labels[x*g+y]))
				for _, nb := range [][2]int{{x - 1, y}, {x + 1, y}, {x, y - 1}, {x, y + 1}} {
					if nb[0] < 0 || nb[0] >= g || nb[1] < 0 || nb[1] >= g {
						continue
					}
					tensor.Axpy(0.15, s.templates.Row(labels[nb[0]*g+nb[1]]), row)
				}
				for j := range row {
					row[j] += s.NoiseStd * r.NormFloat64()
				}
			}
		}
	}
	return d
}

// Peptide simulates the MHC-I binding-affinity regression task (Appendix
// D.5): inputs are one-hot encoded (allele pocket, peptide) sequence pairs
// and the target is a normalized binding affinity determined by a per-allele
// position-weight motif, plus measurement noise. Alleles and motifs are
// fixed by StructSeed.
type Peptide struct {
	TaskName   string
	Alphabet   int // amino-acid alphabet size (20 in nature)
	PepLen     int
	PocketLen  int
	NumAlleles int
	NoiseStd   float64
	StructSeed uint64

	pockets [][]int          // allele → pocket residue sequence
	motifs  []*tensor.Matrix // allele → PepLen × Alphabet position weights
}

// NewPeptide builds the distribution with its alleles and binding motifs.
func NewPeptide(name string, alphabet, pepLen, pocketLen, alleles int, noise float64, structSeed uint64) *Peptide {
	p := &Peptide{
		TaskName: name, Alphabet: alphabet, PepLen: pepLen,
		PocketLen: pocketLen, NumAlleles: alleles, NoiseStd: noise,
		StructSeed: structSeed,
	}
	r := xrand.New(structSeed)
	p.pockets = make([][]int, alleles)
	p.motifs = make([]*tensor.Matrix, alleles)
	for a := 0; a < alleles; a++ {
		p.pockets[a] = make([]int, pocketLen)
		for i := range p.pockets[a] {
			p.pockets[a][i] = r.Intn(alphabet)
		}
		m := tensor.NewMatrix(pepLen, alphabet)
		for i := range m.Data {
			m.Data[i] = r.NormFloat64()
		}
		p.motifs[a] = m
	}
	return p
}

// Name implements Distribution.
func (p *Peptide) Name() string { return p.TaskName }

// Dim returns the one-hot input dimension.
func (p *Peptide) Dim() int { return (p.PocketLen + p.PepLen) * p.Alphabet }

// Sample implements Distribution. Targets are affinities in (0, 1);
// values above 0.5 are conventionally "binders" for AUC evaluation.
func (p *Peptide) Sample(n int, r *xrand.Source) *Dataset {
	d := &Dataset{
		Name: p.TaskName,
		X:    tensor.NewMatrix(n, p.Dim()),
		Y:    make([]float64, n),
	}
	for i := 0; i < n; i++ {
		a := r.Intn(p.NumAlleles)
		row := d.X.Row(i)
		for pos, res := range p.pockets[a] {
			row[pos*p.Alphabet+res] = 1
		}
		score := 0.0
		off := p.PocketLen * p.Alphabet
		for pos := 0; pos < p.PepLen; pos++ {
			res := r.Intn(p.Alphabet)
			row[off+pos*p.Alphabet+res] = 1
			score += p.motifs[a].At(pos, res)
		}
		score = score/math.Sqrt(float64(p.PepLen)) + p.NoiseStd*r.NormFloat64()
		d.Y[i] = 1 / (1 + math.Exp(-score)) // normalized affinity
	}
	return d
}
