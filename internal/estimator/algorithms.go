package estimator

import (
	"fmt"

	"varbench/internal/data"
	"varbench/internal/hpo"
	"varbench/internal/pipeline"
	"varbench/internal/xrand"
)

// IdealEst is Algorithm 1: k independent executions of the complete pipeline
// — fresh ξO and ξH (including a full hyperparameter optimization) for every
// performance measure. O(k·T) trainings; unbiased. It returns the k raw
// measures; callers compute μ̂(k) = mean and σ̂(k) = std.
func IdealEst(t pipeline.Task, opt hpo.Optimizer, budget, k int, baseSeed uint64) ([]float64, error) {
	if k < 1 {
		return nil, fmt.Errorf("estimator: k must be ≥ 1")
	}
	seeder := xrand.New(baseSeed ^ 0x1DEA1E57)
	out := make([]float64, 0, k)
	for i := 0; i < k; i++ {
		streams := xrand.NewStreams(seeder.Uint64())
		res, err := pipeline.Run(t, opt, budget, streams)
		if err != nil {
			return nil, err
		}
		out = append(out, res.TestPerf)
	}
	return out, nil
}

// Subset selects which ξO sources the biased estimator re-randomizes between
// its k measures (Section 3.3's FixHOptEst variants).
type Subset int

const (
	// SubsetInit randomizes weight initialization only — the predominant
	// practice in the deep-learning literature.
	SubsetInit Subset = iota
	// SubsetData randomizes the dataset split only (bootstrap).
	SubsetData
	// SubsetAll randomizes every ξO source (init, order, dropout,
	// augmentation, data split) — everything except HOpt.
	SubsetAll
)

// String returns the paper's label for the subset.
func (s Subset) String() string {
	switch s {
	case SubsetInit:
		return "FixHOptEst(k,Init)"
	case SubsetData:
		return "FixHOptEst(k,Data)"
	case SubsetAll:
		return "FixHOptEst(k,All)"
	default:
		return fmt.Sprintf("Subset(%d)", int(s))
	}
}

// Vars returns the ξO sources the subset re-randomizes.
func (s Subset) Vars() []xrand.Var {
	switch s {
	case SubsetInit:
		return []xrand.Var{xrand.VarInit}
	case SubsetData:
		return []xrand.Var{xrand.VarDataSplit}
	case SubsetAll:
		return xrand.LearningVars()
	default:
		return nil
	}
}

// FixHOptEst is Algorithm 2: one hyperparameter optimization fixes λ̂*, then
// k performance measures re-randomize only the subset's ξO sources. O(k+T)
// trainings; biased for k>1 because all k measures share the single λ̂*
// (and, outside the subset, the remaining fixed ξO values).
func FixHOptEst(t pipeline.Task, opt hpo.Optimizer, budget, k int, subset Subset,
	baseSeed uint64) ([]float64, error) {
	if k < 1 {
		return nil, fmt.Errorf("estimator: k must be ≥ 1")
	}
	base := xrand.NewStreams(baseSeed)
	split, err := t.Split(base.Get(xrand.VarDataSplit))
	if err != nil {
		return nil, err
	}
	hres, err := pipeline.HOpt(t, opt, budget, split, base)
	if err != nil {
		return nil, err
	}

	seeder := xrand.New(baseSeed ^ 0xF17ED0E57)
	vars := subset.Vars()
	randomizesData := false
	for _, v := range vars {
		if v == xrand.VarDataSplit {
			randomizesData = true
		}
	}

	out := make([]float64, 0, k)
	for i := 0; i < k; i++ {
		streams := xrand.NewStreams(baseSeed)
		for _, v := range vars {
			streams.Reseed(v, seeder.Uint64())
		}
		var perf float64
		if randomizesData {
			// Fresh split per measure, like Algorithm 2's Stv,So ~ sp(S;ξO).
			perf, err = pipeline.RunWithParams(t, hres.Best, streams)
		} else {
			// Split stays fixed; only the chosen sources vary.
			perf, err = trainEvalOnSplit(t, hres.Best, split, streams)
		}
		if err != nil {
			return nil, err
		}
		out = append(out, perf)
	}
	return out, nil
}

// trainEvalOnSplit trains on Stv = train∪valid of a fixed split and measures
// on its test set.
func trainEvalOnSplit(t pipeline.Task, p hpo.Params, split data.TrainValidTest,
	streams *xrand.Streams) (float64, error) {
	stv, err := data.Concat(split.Train, split.Valid)
	if err != nil {
		return 0, err
	}
	return pipeline.TrainEval(t, p, stv, split.Test, streams)
}

// CostModel reports the training counts of the two estimators: the paper's
// 51× compute argument (Section 3.3: IdealEst(100) took 1070 hours vs 21
// hours per FixHOptEst(100) with a 200-trial budget).
type CostModel struct {
	K, Budget int
}

// IdealTrainings returns k·(T+1): every measure pays a full HOpt plus its
// final retrain.
func (c CostModel) IdealTrainings() int { return c.K * (c.Budget + 1) }

// FixHOptTrainings returns T+k: one HOpt then k retrains.
func (c CostModel) FixHOptTrainings() int { return c.Budget + c.K }

// Speedup returns the compute ratio between the ideal and biased estimators.
func (c CostModel) Speedup() float64 {
	return float64(c.IdealTrainings()) / float64(c.FixHOptTrainings())
}
