package estimator

import (
	"testing"

	"varbench/internal/casestudy"
	"varbench/internal/stats"
)

func TestAllSourcesMeasures(t *testing.T) {
	task := casestudy.Tiny(1)
	m, err := AllSourcesMeasures(task, task.Defaults(), 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 6 {
		t.Fatalf("got %d measures", len(m))
	}
	if stats.Std(m) == 0 {
		t.Error("jointly randomized runs should vary")
	}
	// Deterministic given the base seed.
	again, err := AllSourcesMeasures(task, task.Defaults(), 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m {
		if m[i] != again[i] {
			t.Fatal("AllSourcesMeasures not reproducible")
		}
	}
	if _, err := AllSourcesMeasures(task, task.Defaults(), 1, 3); err == nil {
		t.Error("n=1 should error")
	}
	// Joint randomization should have at least the variance of any single
	// source (statistically; compare with init-only at same n).
	initM, err := SourceMeasures(task, task.Defaults(), "weights-init", 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("all-sources std %v vs init-only std %v", stats.Std(m), stats.Std(initM))
}

func TestSubsetStringUnknown(t *testing.T) {
	if Subset(42).String() == "" {
		t.Error("unknown subset should still render")
	}
	if Subset(42).Vars() != nil {
		t.Error("unknown subset should have no vars")
	}
	if SubsetInit.String() != "FixHOptEst(k,Init)" || SubsetData.String() != "FixHOptEst(k,Data)" {
		t.Error("subset labels wrong")
	}
}
