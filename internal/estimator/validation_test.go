package estimator

import (
	"testing"

	"varbench/internal/data"
	"varbench/internal/nn"
	"varbench/internal/stats"
	"varbench/internal/xrand"
)

// TestBootstrapApproximatesTrueDataVariance validates the core substitution
// of Appendix B: the variance measured by bootstrap/out-of-bootstrap
// resampling of ONE finite dataset should approximate the variance across
// genuinely fresh datasets drawn from the true distribution D. The synthetic
// substrate makes the comparison possible because we actually hold D.
func TestBootstrapApproximatesTrueDataVariance(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	dist := data.NewGaussianMixture("val", 3, 8, 0.8, 1.0, 42)
	cfg := nn.TrainConfig{
		Hidden:     []int{8},
		Activation: nn.ReLU,
		Loss:       nn.CrossEntropy,
		OutDim:     3,
		Init:       nn.GlorotUniform{},
		LR:         0.05, Momentum: 0.9, WeightDecay: 1e-4,
		Epochs: 6, BatchSize: 32,
	}
	const nTrain, nTest, reps = 300, 100, 24

	accuracy := func(m *nn.MLP, d *data.Dataset) float64 {
		pred := m.PredictLabels(d.X)
		hits := 0
		for i, p := range pred {
			if p == int(d.Y[i]) {
				hits++
			}
		}
		return float64(hits) / float64(d.N())
	}

	// (a) Truth: fresh train and test sets from D each repetition, fixed ξO.
	var trueMeasures []float64
	for i := 0; i < reps; i++ {
		train := dist.Sample(nTrain, xrand.New(uint64(1000+i)))
		test := dist.Sample(nTest, xrand.New(uint64(2000+i)))
		res, err := nn.Train(cfg, train, xrand.NewStreams(5))
		if err != nil {
			t.Fatal(err)
		}
		trueMeasures = append(trueMeasures, accuracy(res.Model, test))
	}

	// (b) Bootstrap: one finite dataset S, OOB resampling, fixed ξO.
	pool := dist.Sample(nTrain+nTest*3, xrand.New(99))
	var bootMeasures []float64
	for i := 0; i < reps; i++ {
		split, err := data.OOBSplit(pool, nTrain, 1, nTest, xrand.New(uint64(3000+i)))
		if err != nil {
			t.Fatal(err)
		}
		res, err := nn.Train(cfg, split.Train, xrand.NewStreams(5))
		if err != nil {
			t.Fatal(err)
		}
		bootMeasures = append(bootMeasures, accuracy(res.Model, split.Test))
	}

	trueStd := stats.Std(trueMeasures)
	bootStd := stats.Std(bootMeasures)
	t.Logf("true-D std = %v, bootstrap std = %v, ratio = %v",
		trueStd, bootStd, bootStd/trueStd)
	// The bootstrap should estimate the right order of magnitude. A wide
	// band is deliberate: both sides are themselves noisy with 24 reps.
	if bootStd < trueStd/3 || bootStd > trueStd*3 {
		t.Errorf("bootstrap std %v not within 3x of true std %v", bootStd, trueStd)
	}
}
