// Package estimator implements the paper's core contribution: measurement of
// the individual sources of variation in a benchmark (Section 2.2, Figure 1),
// the ideal estimator that re-runs hyperparameter optimization for every
// performance measure (Algorithm 1), the cheap biased estimator that fixes
// hyperparameters once (Algorithm 2) with its randomization subsets, the
// standard-error-vs-k curves of Figures 5/H.4 and the bias/variance/ρ/MSE
// decomposition of Figure H.5.
package estimator

import (
	"fmt"

	"varbench/internal/hpo"
	"varbench/internal/nn"
	"varbench/internal/pipeline"
	"varbench/internal/stats"
	"varbench/internal/tensor"
	"varbench/internal/xrand"
)

// NumericalNoise is the pseudo-source label for runs where every seed is
// fixed and only nondeterministic gradient reduction varies (Figure 1's
// "Numerical noise" row, Appendix A).
const NumericalNoise = xrand.VarNumericalNoise

// SourceMeasures returns n test-performance measures obtained by varying
// only the source v (fresh seed per run) while holding every other source
// fixed to the base seed — the experimental protocol of Section 2.2:
// "iteratively for each source of variance, we randomized the seeds 200
// times, while keeping all other sources fixed to initial values".
//
// For v == NumericalNoise all seeds stay fixed and the training runs with
// nondeterministic data-parallel gradient reduction instead.
func SourceMeasures(t pipeline.Task, p hpo.Params, v xrand.Var, n int, baseSeed uint64) ([]float64, error) {
	if n < 2 {
		return nil, fmt.Errorf("estimator: need at least 2 measures, got %d", n)
	}
	task := t
	if v == NumericalNoise {
		task = WithReducer(t, tensor.ReduceNondeterministic, 4)
	}
	seeder := xrand.New(baseSeed ^ 0x9E3779B97F4A7C15)
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		streams := xrand.NewStreams(baseSeed)
		if v != NumericalNoise {
			streams.Reseed(v, seeder.Uint64())
		}
		perf, err := pipeline.RunWithParams(task, p, streams)
		if err != nil {
			return nil, err
		}
		out = append(out, perf)
	}
	return out, nil
}

// AllSourcesMeasures returns n measures with every ξO source randomized
// jointly (a fresh root seed per run) under fixed hyperparameters — the
// "Altogether" row of Figure G.3.
func AllSourcesMeasures(t pipeline.Task, p hpo.Params, n int, baseSeed uint64) ([]float64, error) {
	if n < 2 {
		return nil, fmt.Errorf("estimator: need at least 2 measures, got %d", n)
	}
	seeder := xrand.New(baseSeed ^ 0xA17067E7)
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		perf, err := pipeline.RunWithParams(t, p, xrand.NewStreams(seeder.Uint64()))
		if err != nil {
			return nil, err
		}
		out = append(out, perf)
	}
	return out, nil
}

// HOptMeasures returns n test-performance measures obtained by re-running
// the hyperparameter optimization with n different ξH seeds while all ξO
// stay fixed: the final model for each run is trained with the base ξO using
// that run's optimized hyperparameters. This isolates the ξH variance rows
// of Figure 1 (Random Search, Noisy Grid Search, Bayes Opt).
func HOptMeasures(t pipeline.Task, opt hpo.Optimizer, budget, n int, baseSeed uint64) ([]float64, error) {
	if n < 2 {
		return nil, fmt.Errorf("estimator: need at least 2 measures, got %d", n)
	}
	base := xrand.NewStreams(baseSeed)
	split, err := t.Split(base.Get(xrand.VarDataSplit))
	if err != nil {
		return nil, err
	}
	seeder := xrand.New(baseSeed ^ 0xA5A5A5A5A5A5A5A5)
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		streams := xrand.NewStreams(baseSeed)
		streams.Reseed(xrand.VarHOpt, seeder.Uint64())
		hres, err := pipeline.HOpt(t, opt, budget, split, streams)
		if err != nil {
			return nil, err
		}
		perf, err := pipeline.TrainEval(t, hres.Best, split.Train, split.Test, streams.Clone())
		if err != nil {
			return nil, err
		}
		out = append(out, perf)
	}
	return out, nil
}

// SourceReport is the Figure 1 cell for one task × source.
type SourceReport struct {
	Task     string
	Source   string
	Measures []float64
	Std      float64
}

// NewSourceReport computes the summary of a measure vector.
func NewSourceReport(task, source string, measures []float64) SourceReport {
	return SourceReport{
		Task:     task,
		Source:   source,
		Measures: measures,
		Std:      stats.Std(measures),
	}
}

// RelativeTo returns this source's standard deviation as a fraction of the
// reference std (Figure 1 normalizes every source by the bootstrap/data
// variance).
func (r SourceReport) RelativeTo(refStd float64) float64 {
	if refStd == 0 {
		return 0
	}
	return r.Std / refStd
}

// WithReducer wraps a task so that every built training configuration uses
// the given gradient reducer — the hook for numerical-noise experiments.
func WithReducer(t pipeline.Task, reducer tensor.Reducer, shards int) pipeline.Task {
	return &reducerTask{Task: t, reducer: reducer, shards: shards}
}

type reducerTask struct {
	pipeline.Task
	reducer tensor.Reducer
	shards  int
}

func (rt *reducerTask) Build(p hpo.Params) (nn.TrainConfig, error) {
	c, err := rt.Task.Build(p)
	if err != nil {
		return c, err
	}
	c.Reducer = rt.reducer
	c.Shards = rt.shards
	return c, nil
}
