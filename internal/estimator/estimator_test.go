package estimator

import (
	"math"
	"testing"

	"varbench/internal/casestudy"
	"varbench/internal/hpo"
	"varbench/internal/stats"
	"varbench/internal/xrand"
)

func TestSourceMeasuresVaryOnlyWhenSourceVaries(t *testing.T) {
	task := casestudy.Tiny(1)
	p := task.Defaults()
	measures, err := SourceMeasures(task, p, xrand.VarInit, 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(measures) != 5 {
		t.Fatalf("got %d measures", len(measures))
	}
	// Deterministic: same call gives identical results.
	again, err := SourceMeasures(task, p, xrand.VarInit, 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := range measures {
		if measures[i] != again[i] {
			t.Fatal("SourceMeasures not reproducible")
		}
		if measures[i] < 0 || measures[i] > 1 {
			t.Fatalf("measure %v out of [0,1]", measures[i])
		}
	}
	if stats.Std(measures) == 0 {
		t.Error("varying init produced identical performances — source not wired")
	}
}

func TestSourceMeasuresRejectsTinyN(t *testing.T) {
	task := casestudy.Tiny(1)
	if _, err := SourceMeasures(task, task.Defaults(), xrand.VarInit, 1, 1); err == nil {
		t.Fatal("n=1 should error")
	}
}

func TestDataSourceDominatesInit(t *testing.T) {
	// The headline of Figure 1: data-split variance ≥ init variance.
	// Uses the tiny task with enough seeds for a stable comparison.
	task := casestudy.Tiny(1)
	p := task.Defaults()
	dataM, err := SourceMeasures(task, p, xrand.VarDataSplit, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	initM, err := SourceMeasures(task, p, xrand.VarInit, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	sdData, sdInit := stats.Std(dataM), stats.Std(initM)
	t.Logf("std(data)=%v std(init)=%v", sdData, sdInit)
	if sdData < sdInit*0.8 {
		t.Errorf("data-split std %v unexpectedly below init std %v", sdData, sdInit)
	}
}

func TestNumericalNoiseSmallest(t *testing.T) {
	task := casestudy.Tiny(1)
	p := task.Defaults()
	numM, err := SourceMeasures(task, p, NumericalNoise, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	dataM, err := SourceMeasures(task, p, xrand.VarDataSplit, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Std(numM) > stats.Std(dataM) {
		t.Errorf("numerical noise std %v exceeds data std %v",
			stats.Std(numM), stats.Std(dataM))
	}
}

func TestHOptMeasures(t *testing.T) {
	task := casestudy.Tiny(1)
	m, err := HOptMeasures(task, hpo.RandomSearch{}, 4, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 4 {
		t.Fatalf("got %d measures", len(m))
	}
	if stats.Std(m) == 0 {
		t.Error("HOpt variance exactly zero — ξH not wired through")
	}
}

func TestIdealEstProducesIndependentMeasures(t *testing.T) {
	task := casestudy.Tiny(1)
	m, err := IdealEst(task, hpo.RandomSearch{}, 3, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 6 {
		t.Fatalf("got %d measures", len(m))
	}
	if stats.Std(m) == 0 {
		t.Error("ideal estimator measures identical")
	}
	if _, err := IdealEst(task, hpo.RandomSearch{}, 3, 0, 5); err == nil {
		t.Error("k=0 should error")
	}
}

func TestFixHOptEstSubsets(t *testing.T) {
	task := casestudy.Tiny(1)
	for _, sub := range []Subset{SubsetInit, SubsetData, SubsetAll} {
		m, err := FixHOptEst(task, hpo.RandomSearch{}, 4, 5, sub, 9)
		if err != nil {
			t.Fatalf("%v: %v", sub, err)
		}
		if len(m) != 5 {
			t.Fatalf("%v: got %d measures", sub, len(m))
		}
		if stats.Std(m) == 0 {
			t.Errorf("%v: no variation across measures", sub)
		}
	}
}

func TestSubsetVars(t *testing.T) {
	if len(SubsetInit.Vars()) != 1 || SubsetInit.Vars()[0] != xrand.VarInit {
		t.Error("SubsetInit vars wrong")
	}
	if len(SubsetData.Vars()) != 1 || SubsetData.Vars()[0] != xrand.VarDataSplit {
		t.Error("SubsetData vars wrong")
	}
	if len(SubsetAll.Vars()) != len(xrand.LearningVars()) {
		t.Error("SubsetAll should cover all learning vars")
	}
	if SubsetAll.String() != "FixHOptEst(k,All)" {
		t.Errorf("label = %q", SubsetAll.String())
	}
}

func TestAllSubsetBeatsInitSubset(t *testing.T) {
	// The core Section 3.3 result: randomizing more sources decorrelates the
	// biased estimator's measures and shrinks Var(μ̃(k)).
	if testing.Short() {
		t.Skip("integration experiment")
	}
	task := casestudy.Tiny(1)
	const reps, k, budget = 8, 12, 4
	collect := func(sub Subset) [][]float64 {
		rows := make([][]float64, reps)
		for r := 0; r < reps; r++ {
			m, err := FixHOptEst(task, hpo.RandomSearch{}, budget, k, sub, uint64(100+r))
			if err != nil {
				t.Fatal(err)
			}
			rows[r] = m
		}
		return rows
	}
	ks := []int{k}
	initCurve, err := BiasedCurve("init", collect(SubsetInit), ks)
	if err != nil {
		t.Fatal(err)
	}
	allCurve, err := BiasedCurve("all", collect(SubsetAll), ks)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("std init=%v all=%v", initCurve.Std[0], allCurve.Std[0])
	if allCurve.Std[0] > initCurve.Std[0]*1.15 {
		t.Errorf("FixHOpt(All) std %v should not exceed FixHOpt(Init) std %v",
			allCurve.Std[0], initCurve.Std[0])
	}
}

func TestIdealCurveAnalytic(t *testing.T) {
	measures := []float64{1, 2, 3, 4, 5}
	sigma := stats.Std(measures)
	c := IdealCurve(measures, []int{1, 4, 25})
	if c.Std[0] != sigma {
		t.Error("k=1 std should equal σ")
	}
	if math.Abs(c.Std[1]-sigma/2) > 1e-12 {
		t.Error("k=4 std should be σ/2")
	}
	if math.Abs(c.Std[2]-sigma/5) > 1e-12 {
		t.Error("k=25 std should be σ/5")
	}
	for i := 1; i < len(c.Std); i++ {
		if c.Std[i] >= c.Std[i-1] {
			t.Error("ideal curve must decrease")
		}
	}
}

func TestBiasedCurveSyntheticCorrelation(t *testing.T) {
	// Realizations with a strong shared bias per row: Var(μ̃(k)) should
	// plateau near Var(bias) instead of decaying 1/k (Equation 7).
	r := xrand.New(1)
	const reps, kmax = 200, 50
	rows := make([][]float64, reps)
	for i := range rows {
		b := r.NormFloat64() // per-realization bias, σ²=1
		rows[i] = make([]float64, kmax)
		for j := range rows[i] {
			rows[i][j] = b + 0.3*r.NormFloat64()
		}
	}
	c, err := BiasedCurve("corr", rows, []int{1, kmax})
	if err != nil {
		t.Fatal(err)
	}
	// At k=1: std ≈ sqrt(1+0.09) ≈ 1.044. At k=50: std ≈ sqrt(1+0.09/50) ≈ 1.
	if math.Abs(c.Std[0]-1.044) > 0.12 {
		t.Errorf("k=1 std = %v, want ≈1.044", c.Std[0])
	}
	if math.Abs(c.Std[1]-1.0) > 0.12 {
		t.Errorf("k=50 std = %v, want ≈1 (plateau)", c.Std[1])
	}
	// The plateau is far above the uncorrelated 1/√k prediction.
	if c.Std[1] < 0.5 {
		t.Error("correlated estimator should not decay like 1/√k")
	}
}

func TestBiasedCurveErrors(t *testing.T) {
	if _, err := BiasedCurve("x", [][]float64{{1, 2}}, []int{1}); err == nil {
		t.Error("single realization should error")
	}
	if _, err := BiasedCurve("x", [][]float64{{1, 2}, {1}}, []int{1}); err == nil {
		t.Error("ragged realizations should error")
	}
	if _, err := BiasedCurve("x", [][]float64{{1, 2}, {3, 4}}, []int{5}); err == nil {
		t.Error("k beyond kmax should error")
	}
}

func TestDecomposeSynthetic(t *testing.T) {
	// Biased rows: shared offset +0.5 from mu, within-noise 0.2, shared
	// bias noise 0.1.
	r := xrand.New(2)
	const reps, k = 400, 20
	rows := make([][]float64, reps)
	for i := range rows {
		b := 0.5 + 0.1*r.NormFloat64()
		rows[i] = make([]float64, k)
		for j := range rows[i] {
			rows[i][j] = b + 0.2*r.NormFloat64()
		}
	}
	d, err := Decompose("test", rows, 0 /* mu */)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Bias-0.5) > 0.03 {
		t.Errorf("bias = %v, want ≈0.5", d.Bias)
	}
	// Var(μ̃) = Var(b) + Var(noise)/k = 0.01 + 0.04/20 = 0.012.
	if math.Abs(d.Var-0.012) > 0.004 {
		t.Errorf("var = %v, want ≈0.012", d.Var)
	}
	// ρ = Var(b)/(Var(b)+Var(noise)) = 0.01/0.05 = 0.2.
	if math.Abs(d.Rho-0.2) > 0.06 {
		t.Errorf("rho = %v, want ≈0.2", d.Rho)
	}
	if math.Abs(d.MSE-(d.Var+d.Bias*d.Bias)) > 1e-12 {
		t.Error("MSE ≠ Var + Bias²")
	}
}

func TestDecomposeIdeal(t *testing.T) {
	m := []float64{0.1, 0.2, 0.3, 0.4}
	d := DecomposeIdeal(m, 4)
	if d.Bias != 0 || d.Rho != 0 {
		t.Error("ideal estimator must have zero bias and rho")
	}
	if math.Abs(d.Var-stats.Variance(m)/4) > 1e-12 {
		t.Error("ideal variance wrong")
	}
}

func TestEquivalentIdealK(t *testing.T) {
	// If biased std equals σ/√10, it is equivalent to 10 ideal samples.
	sigma := 2.0
	if got := EquivalentIdealK(sigma, sigma/math.Sqrt(10)); math.Abs(got-10) > 1e-9 {
		t.Errorf("EquivalentIdealK = %v, want 10", got)
	}
	if !math.IsInf(EquivalentIdealK(1, 0), 1) {
		t.Error("zero biased std should map to +Inf")
	}
}

func TestCostModelPaperNumbers(t *testing.T) {
	c := CostModel{K: 100, Budget: 200}
	if c.IdealTrainings() != 100*201 {
		t.Errorf("ideal trainings = %d", c.IdealTrainings())
	}
	if c.FixHOptTrainings() != 300 {
		t.Errorf("fixhopt trainings = %d", c.FixHOptTrainings())
	}
	// The paper reports a 51× wall-clock ratio (1070h vs 21h); the raw
	// training-count ratio at k=100, T=200 is ~67×. Same order of magnitude.
	if s := c.Speedup(); s < 50 || s > 80 {
		t.Errorf("speedup = %v, want ∈ [50, 80]", s)
	}
}

func TestKsThinning(t *testing.T) {
	ks := Ks(100, 10)
	if ks[0] != 1 || ks[len(ks)-1] != 100 {
		t.Errorf("Ks endpoints wrong: %v", ks)
	}
	if len(ks) > 11 {
		t.Errorf("Ks too long: %v", ks)
	}
	for i := 1; i < len(ks); i++ {
		if ks[i] <= ks[i-1] {
			t.Errorf("Ks not strictly increasing: %v", ks)
		}
	}
	full := Ks(5, 10)
	if len(full) != 5 {
		t.Errorf("small kmax should enumerate: %v", full)
	}
	if Ks(0, 3) != nil {
		t.Error("kmax=0 should be nil")
	}
}

func TestSourceReportRelative(t *testing.T) {
	rep := NewSourceReport("task", "init", []float64{0.5, 0.7})
	if rep.Std == 0 {
		t.Fatal("std should be positive")
	}
	if rep.RelativeTo(rep.Std) != 1 {
		t.Error("self-relative should be 1")
	}
	if rep.RelativeTo(0) != 0 {
		t.Error("zero reference should clamp to 0")
	}
}
