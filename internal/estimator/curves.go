package estimator

import (
	"fmt"
	"math"

	"varbench/internal/stats"
)

// Curve is the standard error of an estimator as a function of the number of
// samples k it averages — the y-axis of Figures 5 and H.4. Band holds the
// analytic uncertainty of each std estimate (std of the std of a normal on
// the number of realizations).
type Curve struct {
	Label string
	K     []int
	Std   []float64
	Band  []float64
}

// IdealCurve builds the ideal estimator's curve σ/√k from one realization of
// measures (the ideal estimator is unbiased, so a single realization
// suffices — Section 3.3).
func IdealCurve(measures []float64, ks []int) Curve {
	sigma := stats.Std(measures)
	c := Curve{Label: "IdealEst(k)"}
	for _, k := range ks {
		c.K = append(c.K, k)
		c.Std = append(c.Std, sigma/math.Sqrt(float64(k)))
		c.Band = append(c.Band, stats.StdOfStd(sigma, len(measures))/math.Sqrt(float64(k)))
	}
	return c
}

// BiasedCurve builds a biased estimator's curve from repeated realizations:
// realizations[r][i] is the i-th of kmax measures in repetition r. For each
// k it computes the standard deviation across repetitions of the k-prefix
// mean μ̃(k) — exactly the paper's protocol with 20 repetitions.
func BiasedCurve(label string, realizations [][]float64, ks []int) (Curve, error) {
	if len(realizations) < 2 {
		return Curve{}, fmt.Errorf("estimator: need ≥ 2 realizations, got %d", len(realizations))
	}
	kmax := len(realizations[0])
	for _, r := range realizations {
		if len(r) != kmax {
			return Curve{}, fmt.Errorf("estimator: ragged realizations")
		}
	}
	c := Curve{Label: label}
	for _, k := range ks {
		if k < 1 || k > kmax {
			return Curve{}, fmt.Errorf("estimator: k=%d outside [1, %d]", k, kmax)
		}
		means := make([]float64, len(realizations))
		for r, row := range realizations {
			means[r] = stats.Mean(row[:k])
		}
		sd := stats.Std(means)
		c.K = append(c.K, k)
		c.Std = append(c.Std, sd)
		c.Band = append(c.Band, stats.StdOfStd(sd, len(realizations)))
	}
	return c, nil
}

// EquivalentIdealK returns the number of ideal-estimator samples that yields
// the same standard error as the given biased-estimator std: the "converges
// to the equivalent of μ̂(k=…)" comparison of Section 3.3.
func EquivalentIdealK(sigmaIdeal, biasedStd float64) float64 {
	if biasedStd <= 0 {
		return math.Inf(1)
	}
	r := sigmaIdeal / biasedStd
	return r * r
}

// Decomposition is one row of Figure H.5: the bias, variance, average
// inter-measure correlation ρ, and mean squared error of an estimator at a
// given k.
type Decomposition struct {
	Label string
	Bias  float64
	Var   float64
	Rho   float64
	MSE   float64
}

// Decompose computes the Figure H.5 quantities for a biased estimator from
// its repeated realizations, using mu as the reference expected empirical
// risk (estimated from the ideal estimator's mean).
func Decompose(label string, realizations [][]float64, mu float64) (Decomposition, error) {
	if len(realizations) < 2 || len(realizations[0]) < 2 {
		return Decomposition{}, fmt.Errorf("estimator: need a ≥2×≥2 realization matrix")
	}
	k := len(realizations[0])
	means := make([]float64, len(realizations))
	for r, row := range realizations {
		if len(row) != k {
			return Decomposition{}, fmt.Errorf("estimator: ragged realizations")
		}
		means[r] = stats.Mean(row)
	}
	bias := stats.Mean(means) - mu
	variance := stats.Variance(means)
	rho := stats.MeanCorrelation(realizations)
	return Decomposition{
		Label: label,
		Bias:  bias,
		Var:   variance,
		Rho:   rho,
		MSE:   variance + bias*bias,
	}, nil
}

// DecomposeIdeal computes the same quantities for the ideal estimator from a
// single realization: bias 0 by construction, variance σ²/k, ρ 0.
func DecomposeIdeal(measures []float64, k int) Decomposition {
	sigma2 := stats.Variance(measures)
	return Decomposition{
		Label: fmt.Sprintf("IdealEst(%d)", k),
		Bias:  0,
		Var:   sigma2 / float64(k),
		Rho:   0,
		MSE:   sigma2 / float64(k),
	}
}

// Ks returns 1..kmax suitable for curve x-axes, thinned to at most points
// entries (always including 1 and kmax).
func Ks(kmax, points int) []int {
	if kmax < 1 {
		return nil
	}
	if points < 2 || kmax <= points {
		out := make([]int, kmax)
		for i := range out {
			out[i] = i + 1
		}
		return out
	}
	out := []int{1}
	step := float64(kmax-1) / float64(points-1)
	for i := 1; i < points-1; i++ {
		k := 1 + int(math.Round(step*float64(i)))
		if k > out[len(out)-1] {
			out = append(out, k)
		}
	}
	if out[len(out)-1] != kmax {
		out = append(out, kmax)
	}
	return out
}
