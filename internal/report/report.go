// Package report renders experiment results as aligned ASCII tables, simple
// terminal line plots, and CSV — the output layer for every regenerated
// table and figure.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple aligned-column text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(t.Headers); err != nil {
		return err
	}
	seps := make([]string, len(t.Headers))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	if err := line(seps); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// WriteCSV writes headers and rows as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	if err := cw.WriteAll(t.Rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// FormatFloat renders a float compactly (4 significant digits, NaN/Inf
// spelled out).
func FormatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e6 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4g", v)
}

// Series is one named line for a plot.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// LinePlot renders series as an ASCII plot of the given size. Each series is
// drawn with its own marker character; a legend follows the plot.
func LinePlot(w io.Writer, title string, series []Series, width, height int) error {
	if width < 10 {
		width = 10
	}
	if height < 5 {
		height = 5
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if math.IsInf(xmin, 1) {
		return fmt.Errorf("report: no finite data to plot")
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	markers := []byte{'*', '+', 'o', 'x', '#', '@', '%', '~'}
	for si, s := range series {
		m := markers[si%len(markers)]
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			col := int(math.Round((s.X[i] - xmin) / (xmax - xmin) * float64(width-1)))
			row := height - 1 - int(math.Round((s.Y[i]-ymin)/(ymax-ymin)*float64(height-1)))
			if row >= 0 && row < height && col >= 0 && col < width {
				grid[row][col] = m
			}
		}
	}
	if title != "" {
		if _, err := fmt.Fprintf(w, "-- %s --\n", title); err != nil {
			return err
		}
	}
	for i, row := range grid {
		label := "         "
		switch i {
		case 0:
			label = fmt.Sprintf("%8.3g ", ymax)
		case height - 1:
			label = fmt.Sprintf("%8.3g ", ymin)
		}
		if _, err := fmt.Fprintf(w, "%s|%s|\n", label, string(row)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%9s%-*.3g%*.3g\n", "", width/2+1, xmin, width/2, xmax); err != nil {
		return err
	}
	for si, s := range series {
		if _, err := fmt.Fprintf(w, "  %c %s\n", markers[si%len(markers)], s.Name); err != nil {
			return err
		}
	}
	return nil
}
