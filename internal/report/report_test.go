package report

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestTableRenderAligned(t *testing.T) {
	tb := &Table{
		Title:   "demo",
		Headers: []string{"name", "value"},
	}
	tb.AddRow("alpha", 1.0)
	tb.AddRow("a-very-long-name", 0.123456)
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "== demo ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "a-very-long-name") {
		t.Error("missing row")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title + header + separator + 2 rows.
	if len(lines) != 5 {
		t.Errorf("line count = %d: %q", len(lines), out)
	}
	// Separator matches header width.
	if !strings.HasPrefix(lines[2], "----") {
		t.Errorf("separator missing: %q", lines[2])
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{Headers: []string{"a", "b"}}
	tb.AddRow(1.0, "x,y") // comma must be quoted
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "a,b") || !strings.Contains(out, `"x,y"`) {
		t.Errorf("csv = %q", out)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		3:            "3",
		-2:           "-2",
		0.12345:      "0.1235",
		math.NaN():   "NaN",
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestLinePlot(t *testing.T) {
	s := []Series{
		{Name: "up", X: []float64{0, 1, 2}, Y: []float64{0, 1, 2}},
		{Name: "down", X: []float64{0, 1, 2}, Y: []float64{2, 1, 0}},
	}
	var buf bytes.Buffer
	if err := LinePlot(&buf, "trend", s, 20, 8); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "trend") || !strings.Contains(out, "up") || !strings.Contains(out, "down") {
		t.Errorf("plot missing elements: %q", out)
	}
	// Both markers must appear.
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Error("markers missing")
	}
}

func TestLinePlotRejectsEmptyData(t *testing.T) {
	var buf bytes.Buffer
	err := LinePlot(&buf, "empty", []Series{{Name: "nan", X: []float64{math.NaN()}, Y: []float64{math.NaN()}}}, 20, 8)
	if err == nil {
		t.Error("all-NaN plot should error")
	}
}

func TestLinePlotDegenerateRange(t *testing.T) {
	// Constant series should not divide by zero.
	var buf bytes.Buffer
	err := LinePlot(&buf, "flat", []Series{{Name: "c", X: []float64{1, 1}, Y: []float64{2, 2}}}, 15, 6)
	if err != nil {
		t.Fatal(err)
	}
}
