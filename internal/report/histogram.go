package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Histogram renders a horizontal ASCII histogram of x with the given number
// of bins — the terminal stand-in for the per-source density plots of
// Figure G.3.
func Histogram(w io.Writer, title string, x []float64, bins, width int) error {
	if len(x) == 0 {
		return fmt.Errorf("report: no data to histogram")
	}
	if bins < 1 {
		bins = 10
	}
	if width < 5 {
		width = 40
	}
	lo, hi := x[0], x[0]
	for _, v := range x {
		if math.IsNaN(v) {
			return fmt.Errorf("report: NaN in histogram data")
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi == lo {
		hi = lo + 1
	}
	counts := make([]int, bins)
	for _, v := range x {
		b := int(float64(bins) * (v - lo) / (hi - lo))
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if title != "" {
		if _, err := fmt.Fprintf(w, "-- %s (n=%d) --\n", title, len(x)); err != nil {
			return err
		}
	}
	for b, c := range counts {
		left := lo + (hi-lo)*float64(b)/float64(bins)
		bar := ""
		if max > 0 {
			bar = strings.Repeat("#", c*width/max)
		}
		if _, err := fmt.Fprintf(w, "%10.4g |%-*s| %d\n", left, width, bar, c); err != nil {
			return err
		}
	}
	return nil
}
