package report

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestHistogramBasic(t *testing.T) {
	x := []float64{1, 1, 1, 2, 2, 3}
	var buf bytes.Buffer
	if err := Histogram(&buf, "demo", x, 3, 20); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "demo (n=6)") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // title + 3 bins
		t.Errorf("lines = %d: %q", len(lines), out)
	}
	// The modal bin has the longest bar.
	if !strings.Contains(lines[1], strings.Repeat("#", 20)) {
		t.Errorf("modal bin bar wrong: %q", lines[1])
	}
}

func TestHistogramValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := Histogram(&buf, "", nil, 3, 20); err == nil {
		t.Error("empty data accepted")
	}
	if err := Histogram(&buf, "", []float64{math.NaN()}, 3, 20); err == nil {
		t.Error("NaN accepted")
	}
	// Constant data must not divide by zero.
	if err := Histogram(&buf, "", []float64{5, 5, 5}, 4, 20); err != nil {
		t.Fatal(err)
	}
	// Degenerate parameters fall back to defaults.
	if err := Histogram(&buf, "", []float64{1, 2}, 0, 1); err != nil {
		t.Fatal(err)
	}
}
