// Package casestudy defines the five benchmark case studies of the paper
// (Section 2.2, Appendix D), each mapped onto a synthetic substrate that
// preserves the original's variance structure:
//
//   - CIFAR10-VGG11  → 10-class Gaussian mixture + MLP with augmentation
//   - Glue-SST2 BERT → frozen-encoder text task + small fine-tuned head
//   - Glue-RTE BERT  → same family, tiny dataset and test set
//   - PascalVOC FCN  → grid segmentation task, mean-IoU metric
//   - MHC-I MLP      → peptide binding-affinity regression, AUC metric
//
// Search spaces and default hyperparameters mirror the shapes of Tables 2,
// 3, 5 and 6 (log vs linear dimensions, which parameters are tuned), scaled
// to substrate-appropriate ranges. See DESIGN.md for the substitution table.
package casestudy

import (
	"fmt"
	"math"

	"varbench/internal/augment"
	"varbench/internal/data"
	"varbench/internal/hpo"
	"varbench/internal/metrics"
	"varbench/internal/nn"
	"varbench/internal/pipeline"
	"varbench/internal/xrand"
)

// Study is a concrete pipeline.Task backed by a synthetic distribution.
type Study struct {
	name     string
	space    hpo.Space
	defaults hpo.Params
	sources  []xrand.Var
	split    func(r *xrand.Source) (data.TrainValidTest, error)
	build    func(p hpo.Params) (nn.TrainConfig, error)
	measure  func(m *nn.MLP, d *data.Dataset) float64
}

// Sources returns the ξO sources of variation that apply to this study (the
// Figure 1 rows present for its column; e.g. augmentation only exists for
// the image task, dropout only where the model uses it).
func (s *Study) Sources() []xrand.Var { return append([]xrand.Var(nil), s.sources...) }

var _ pipeline.Task = (*Study)(nil)

// Name implements pipeline.Task.
func (s *Study) Name() string { return s.name }

// Space implements pipeline.Task.
func (s *Study) Space() hpo.Space { return s.space }

// Defaults implements pipeline.Task.
func (s *Study) Defaults() hpo.Params { return s.defaults.Clone() }

// Split implements pipeline.Task.
func (s *Study) Split(r *xrand.Source) (data.TrainValidTest, error) { return s.split(r) }

// Build implements pipeline.Task.
func (s *Study) Build(p hpo.Params) (nn.TrainConfig, error) { return s.build(p) }

// Measure implements pipeline.Task.
func (s *Study) Measure(m *nn.MLP, d *data.Dataset) float64 { return s.measure(m, d) }

// accuracyMeasure evaluates classification accuracy.
func accuracyMeasure(m *nn.MLP, d *data.Dataset) float64 {
	pred := m.PredictLabels(d.X)
	target := make([]int, d.N())
	for i, y := range d.Y {
		target[i] = int(y)
	}
	return metrics.Accuracy(pred, target)
}

// CIFAR10VGG11 is the image-classification case study: a 10-class Gaussian
// mixture with jitter/crop-style augmentation, stratified bootstrap splits
// (Appendix D.1), and the Table 2 search space shape (log lr, log weight
// decay, linear momentum, linear LR-decay γ).
func CIFAR10VGG11(structSeed uint64) *Study {
	dist := data.NewGaussianMixture("cifar10-vgg11", 10, 16, 0.78, 1.0, structSeed)
	pool := dist.Sample(6000, xrand.New(structSeed^0x5EED))
	return &Study{
		name:    "cifar10-vgg11",
		sources: []xrand.Var{xrand.VarDataSplit, xrand.VarAugment, xrand.VarOrder, xrand.VarInit},
		space: hpo.Space{
			{Name: "lr", Lo: 0.001, Hi: 0.3, Log: true},
			{Name: "weight_decay", Lo: 1e-6, Hi: 1e-2, Log: true},
			{Name: "momentum", Lo: 0.5, Hi: 0.99},
			{Name: "lr_decay", Lo: 0.96, Hi: 0.999},
		},
		defaults: hpo.Params{
			"lr": 0.03, "weight_decay": 0.002, "momentum": 0.9, "lr_decay": 0.97,
		},
		split: func(r *xrand.Source) (data.TrainValidTest, error) {
			// Per class: 120 train (bootstrap), 30 valid, 100 test —
			// the large-test-set regime of the original (n′=10000).
			return data.StratifiedOOBSplit(pool, 120, 30, 100, r)
		},
		build: func(p hpo.Params) (nn.TrainConfig, error) {
			if err := requireParams(p, "lr", "weight_decay", "momentum", "lr_decay"); err != nil {
				return nn.TrainConfig{}, err
			}
			return nn.TrainConfig{
				Hidden:      []int{32},
				Activation:  nn.ReLU,
				Loss:        nn.CrossEntropy,
				OutDim:      10,
				Init:        nn.GlorotUniform{},
				LR:          p["lr"],
				WeightDecay: p["weight_decay"],
				Momentum:    p["momentum"],
				LRDecay:     p["lr_decay"],
				Epochs:      12,
				BatchSize:   128,
				Augment:     augment.Pipeline{augment.Jitter{Std: 0.15}, augment.Mask{Frac: 0.1}},
			}, nil
		},
		measure: accuracyMeasure,
	}
}

// SST2BERT is the large sentiment task: a frozen "pretrained" encoder with a
// small trainable head whose initialization std is itself a hyperparameter
// (Table 3). Splits are plain (non-stratified) out-of-bootstrap, like
// Appendix D.2.
func SST2BERT(structSeed uint64) *Study {
	dist := data.NewTextTopics("sst2-bert", 300, 24, 24, 2.4, 0.55, structSeed+1)
	pool := dist.Sample(4000, xrand.New(structSeed^0xBEEF))
	return textStudy("sst2-bert", pool, 1200, 200, 250)
}

// RTEBERT is the small entailment task: same family as SST2 but with ~2.5k
// examples and a tiny test set (the paper's n′=277 high-variance regime),
// and a weaker class signal (RTE accuracy ≈ 66% vs SST2 ≈ 95%).
func RTEBERT(structSeed uint64) *Study {
	dist := data.NewTextTopics("rte-bert", 300, 16, 24, 0.55, 0.5, structSeed+2)
	pool := dist.Sample(1200, xrand.New(structSeed^0xFACE))
	return textStudy("rte-bert", pool, 450, 120, 70)
}

func textStudy(name string, pool *data.Dataset, nTrain, nValid, nTest int) *Study {
	return &Study{
		name:    name,
		sources: []xrand.Var{xrand.VarDataSplit, xrand.VarOrder, xrand.VarInit, xrand.VarDropout},
		space: hpo.Space{
			{Name: "lr", Lo: 0.005, Hi: 0.5, Log: true},
			{Name: "weight_decay", Lo: 1e-5, Hi: 0.1, Log: true},
			{Name: "init_std", Lo: 0.01, Hi: 0.5, Log: true},
		},
		defaults: hpo.Params{
			"lr": 0.1, "weight_decay": 1e-4, "init_std": 0.2,
		},
		split: func(r *xrand.Source) (data.TrainValidTest, error) {
			return data.OOBSplit(pool, nTrain, nValid, nTest, r)
		},
		build: func(p hpo.Params) (nn.TrainConfig, error) {
			if err := requireParams(p, "lr", "weight_decay", "init_std"); err != nil {
				return nn.TrainConfig{}, err
			}
			return nn.TrainConfig{
				Hidden:     []int{16},
				Activation: nn.Tanh,
				Loss:       nn.CrossEntropy,
				OutDim:     2,
				Init:       nn.Normal{Std: p["init_std"]},
				Dropout:    0.1, // fixed, like the original BERT head
				// Adam with the Table 3 fixed coefficients (β1=0.9,
				// β2=0.999), like the original BERT fine-tuning.
				Algo:        nn.Adam,
				Beta1:       0.9,
				Beta2:       0.999,
				LR:          p["lr"] / 10, // Adam needs a smaller step than SGD
				WeightDecay: p["weight_decay"],
				Epochs:      8,
				BatchSize:   32,
			}, nil
		},
		measure: accuracyMeasure,
	}
}

// PascalVOCResNet is the segmentation case study: a grid-cell labelling task
// measured in mean IoU, with bootstrap performed over whole images (cells of
// one image never straddle splits). The search space follows Table 5: log
// lr, linear momentum, log weight decay.
func PascalVOCResNet(structSeed uint64) *Study {
	const grid = 6
	dist := data.NewSegmentation("pascalvoc-resnet", grid, 6, 24, 3, 2.6, structSeed+3)
	cells := dist.CellsPerImage()
	const poolImages = 130
	pool := dist.Sample(poolImages*cells, xrand.New(structSeed^0xD06))
	return &Study{
		name:    "pascalvoc-resnet",
		sources: []xrand.Var{xrand.VarDataSplit, xrand.VarOrder, xrand.VarInit, xrand.VarNumericalNoise},
		space: hpo.Space{
			{Name: "lr", Lo: 1e-4, Hi: 0.5, Log: true},
			{Name: "momentum", Lo: 0.5, Hi: 0.99},
			{Name: "weight_decay", Lo: 1e-8, Hi: 0.1, Log: true},
		},
		defaults: hpo.Params{
			"lr": 0.05, "momentum": 0.9, "weight_decay": 1e-6,
		},
		split: func(r *xrand.Source) (data.TrainValidTest, error) {
			return groupOOBSplit(pool, poolImages, cells, 70, 25, 25, r)
		},
		build: func(p hpo.Params) (nn.TrainConfig, error) {
			if err := requireParams(p, "lr", "momentum", "weight_decay"); err != nil {
				return nn.TrainConfig{}, err
			}
			return nn.TrainConfig{
				Hidden:      []int{32},
				Activation:  nn.ReLU,
				Loss:        nn.CrossEntropy,
				OutDim:      6,
				Init:        nn.He{},
				LR:          p["lr"],
				WeightDecay: p["weight_decay"],
				Momentum:    p["momentum"],
				Epochs:      8,
				BatchSize:   64,
			}, nil
		},
		measure: func(m *nn.MLP, d *data.Dataset) float64 {
			pred := m.PredictLabels(d.X)
			target := make([]int, d.N())
			for i, y := range d.Y {
				target[i] = int(y)
			}
			return metrics.MeanIoU(pred, target, 6)
		},
	}
}

// groupOOBSplit bootstraps whole groups (images): train images are drawn
// with replacement, valid/test images from the out-of-bootstrap pool.
func groupOOBSplit(pool *data.Dataset, nGroups, groupSize, nTrain, nValid, nTest int,
	r *xrand.Source) (data.TrainValidTest, error) {
	gTrain, oob := data.BootstrapIndices(nGroups, nTrain, r)
	if len(oob) < nValid+nTest {
		return data.TrainValidTest{}, fmt.Errorf(
			"casestudy: image OOB pool %d too small for %d+%d", len(oob), nValid, nTest)
	}
	rest := data.SampleWithoutReplacement(oob, nValid+nTest, r)
	expand := func(groups []int) []int {
		idx := make([]int, 0, len(groups)*groupSize)
		for _, g := range groups {
			for c := 0; c < groupSize; c++ {
				idx = append(idx, g*groupSize+c)
			}
		}
		return idx
	}
	return data.TrainValidTest{
		Train: pool.Subset(expand(gTrain)),
		Valid: pool.Subset(expand(rest[:nValid])),
		Test:  pool.Subset(expand(rest[nValid:])),
	}, nil
}

// MHCMLP is the peptide-binding regression case study (Appendix D.5): a
// shallow MLP on one-hot (allele, peptide) pairs, trained with MSE and
// evaluated by ROC-AUC for binder prediction (Table 8). Its hidden-layer
// width is a tuned hyperparameter (Table 6), and the three data pools are
// bootstrapped independently like the original's separate train/valid/test
// sources.
func MHCMLP(structSeed uint64) *Study {
	_, trainPool, validPool, testPool, _ := MHCPools(structSeed)
	return &Study{
		name:    "mhc-mlp",
		sources: []xrand.Var{xrand.VarDataSplit, xrand.VarOrder, xrand.VarInit},
		space: hpo.Space{
			{Name: "hidden", Lo: 4, Hi: 64},
			{Name: "weight_decay", Lo: 1e-6, Hi: 1, Log: true},
		},
		defaults: hpo.Params{"hidden": 16, "weight_decay": 1e-3},
		split: func(r *xrand.Source) (data.TrainValidTest, error) {
			boot := func(d *data.Dataset) *data.Dataset {
				idx, _ := data.BootstrapIndices(d.N(), d.N(), r)
				return d.Subset(idx)
			}
			return data.TrainValidTest{
				Train: boot(trainPool),
				Valid: boot(validPool),
				Test:  boot(testPool),
			}, nil
		},
		build: func(p hpo.Params) (nn.TrainConfig, error) {
			if err := requireParams(p, "hidden", "weight_decay"); err != nil {
				return nn.TrainConfig{}, err
			}
			hidden := int(math.Round(p["hidden"]))
			if hidden < 1 {
				hidden = 1
			}
			return nn.TrainConfig{
				Hidden:      []int{hidden},
				Activation:  nn.Tanh,
				Loss:        nn.MSELoss,
				OutDim:      1,
				Init:        nn.GlorotUniform{},
				LR:          0.05,
				WeightDecay: p["weight_decay"],
				Momentum:    0.9,
				Epochs:      12,
				BatchSize:   32,
			}, nil
		},
		measure: AUCMeasure,
	}
}

// MHCPools returns the peptide distribution and the fixed train/valid/test
// pools used by MHCMLP, plus an out-of-domain "HPV-like" evaluation pool:
// the same alleles and binding motifs measured with substantially higher
// assay noise, standing in for the external HPV test set of Table 8 on which
// every model's AUC degrades.
func MHCPools(structSeed uint64) (dist *data.Peptide, train, valid, test, hpv *data.Dataset) {
	dist = data.NewPeptide("mhc-mlp", 8, 6, 4, 8, 0.35, structSeed+4)
	train = dist.Sample(1600, xrand.New(structSeed^0xAAA))
	valid = dist.Sample(400, xrand.New(structSeed^0xBBB))
	test = dist.Sample(400, xrand.New(structSeed^0xCCC))
	// Same structural seed ⇒ identical pockets and motifs; only the
	// measurement noise differs.
	hpvDist := data.NewPeptide("mhc-hpv", 8, 6, 4, 8, 1.1, structSeed+4)
	hpv = hpvDist.Sample(400, xrand.New(structSeed^0xDDD))
	return dist, train, valid, test, hpv
}

// AUCMeasure scores a regression model by ROC-AUC of predicting binders
// (affinity > 0.5), the MHC evaluation of Table 8.
func AUCMeasure(m *nn.MLP, d *data.Dataset) float64 {
	pred := m.PredictValues(d.X)
	pos := make([]bool, d.N())
	for i, y := range d.Y {
		pos[i] = y > 0.5
	}
	return metrics.AUC(pred, pos)
}

// PCCMeasure scores a regression model by Pearson correlation with the true
// affinities (the PCC column of Table 8).
func PCCMeasure(m *nn.MLP, d *data.Dataset) float64 {
	return metrics.Pearson(m.PredictValues(d.X), d.Y)
}

// All returns the five case studies in the paper's Figure 1 column order.
func All(structSeed uint64) []*Study {
	return []*Study{
		RTEBERT(structSeed),
		SST2BERT(structSeed),
		MHCMLP(structSeed),
		PascalVOCResNet(structSeed),
		CIFAR10VGG11(structSeed),
	}
}

// ByName returns the case study with the given name.
func ByName(name string, structSeed uint64) (*Study, error) {
	for _, s := range All(structSeed) {
		if s.Name() == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("casestudy: unknown study %q", name)
}

// Tiny returns a miniature three-class task for fast tests and examples: the
// same structure as CIFAR10VGG11 at a fraction of the cost.
func Tiny(structSeed uint64) *Study {
	dist := data.NewGaussianMixture("tiny", 3, 8, 0.8, 1.0, structSeed)
	pool := dist.Sample(900, xrand.New(structSeed^0x717))
	return &Study{
		name:    "tiny",
		sources: []xrand.Var{xrand.VarDataSplit, xrand.VarAugment, xrand.VarOrder, xrand.VarInit, xrand.VarDropout},
		space: hpo.Space{
			{Name: "lr", Lo: 0.001, Hi: 0.5, Log: true},
			{Name: "weight_decay", Lo: 1e-6, Hi: 0.1, Log: true},
		},
		defaults: hpo.Params{"lr": 0.05, "weight_decay": 1e-4},
		split: func(r *xrand.Source) (data.TrainValidTest, error) {
			return data.OOBSplit(pool, 300, 60, 80, r)
		},
		build: func(p hpo.Params) (nn.TrainConfig, error) {
			if err := requireParams(p, "lr", "weight_decay"); err != nil {
				return nn.TrainConfig{}, err
			}
			return nn.TrainConfig{
				Hidden:      []int{8},
				Activation:  nn.ReLU,
				Loss:        nn.CrossEntropy,
				OutDim:      3,
				Init:        nn.GlorotUniform{},
				Dropout:     0.1,
				LR:          p["lr"],
				WeightDecay: p["weight_decay"],
				Momentum:    0.9,
				Epochs:      6,
				BatchSize:   32,
				Augment:     augment.Jitter{Std: 0.1},
			}, nil
		},
		measure: accuracyMeasure,
	}
}

func requireParams(p hpo.Params, names ...string) error {
	for _, n := range names {
		if _, ok := p[n]; !ok {
			return fmt.Errorf("casestudy: missing hyperparameter %q", n)
		}
	}
	return nil
}
