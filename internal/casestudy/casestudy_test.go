package casestudy

import (
	"testing"

	"varbench/internal/data"
	"varbench/internal/hpo"
	"varbench/internal/pipeline"
	"varbench/internal/xrand"
)

const seed = 20210301

func TestAllStudiesRunEndToEnd(t *testing.T) {
	// Each case study must train with its defaults and produce a sane
	// performance value, well above chance where applicable.
	type expect struct {
		floor, ceil float64
	}
	expects := map[string]expect{
		"cifar10-vgg11":    {0.60, 1.0},  // 10-class, chance 0.1
		"sst2-bert":        {0.75, 1.0},  // binary, strong signal
		"rte-bert":         {0.50, 0.92}, // binary, weak signal
		"pascalvoc-resnet": {0.25, 1.0},  // mIoU
		"mhc-mlp":          {0.60, 1.0},  // AUC, chance 0.5
	}
	for _, s := range All(seed) {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			t.Parallel()
			streams := xrand.NewStreams(1)
			split, err := s.Split(streams.Get(xrand.VarDataSplit))
			if err != nil {
				t.Fatal(err)
			}
			perf, err := pipeline.TrainEval(s, s.Defaults(), split.Train, split.Test, streams)
			if err != nil {
				t.Fatal(err)
			}
			e := expects[s.Name()]
			if perf < e.floor || perf > e.ceil {
				t.Errorf("%s default-hyperparameter performance = %v, want in [%v, %v]",
					s.Name(), perf, e.floor, e.ceil)
			}
		})
	}
}

func TestDefaultsInsideSearchSpace(t *testing.T) {
	for _, s := range All(seed) {
		def := s.Defaults()
		for _, d := range s.Space() {
			v, ok := def[d.Name]
			if !ok {
				t.Errorf("%s: default missing dimension %s", s.Name(), d.Name)
				continue
			}
			if v < d.Lo || v > d.Hi {
				t.Errorf("%s: default %s=%v outside [%v, %v]",
					s.Name(), d.Name, v, d.Lo, d.Hi)
			}
		}
		if err := s.Space().Validate(); err != nil {
			t.Errorf("%s: invalid space: %v", s.Name(), err)
		}
	}
}

func TestBuildRejectsMissingParams(t *testing.T) {
	for _, s := range All(seed) {
		if _, err := s.Build(hpo.Params{}); err == nil {
			t.Errorf("%s accepted empty hyperparameters", s.Name())
		}
	}
}

func TestSplitsAreSeeded(t *testing.T) {
	for _, s := range All(seed) {
		a, err := s.Split(xrand.New(5))
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		b, err := s.Split(xrand.New(5))
		if err != nil {
			t.Fatal(err)
		}
		if a.Train.N() != b.Train.N() {
			t.Errorf("%s: same seed different split sizes", s.Name())
		}
		for i := range a.Test.Y {
			if a.Test.Y[i] != b.Test.Y[i] {
				t.Errorf("%s: same seed different test labels", s.Name())
				break
			}
		}
	}
}

func TestSegmentationSplitKeepsImagesWhole(t *testing.T) {
	s := PascalVOCResNet(seed)
	split, err := s.Split(xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	// Every group in Test must appear a multiple of 36 times (whole images,
	// 6×6 grid), and no test group may appear in Valid.
	countTest := map[int]int{}
	for _, g := range split.Test.Group {
		countTest[g]++
	}
	for g, c := range countTest {
		if c%36 != 0 {
			t.Errorf("image %d split across sets: %d cells", g, c)
		}
	}
	inValid := map[int]bool{}
	for _, g := range split.Valid.Group {
		inValid[g] = true
	}
	for g := range countTest {
		if inValid[g] {
			t.Errorf("image %d appears in both valid and test", g)
		}
	}
}

func TestMHCSplitUsesSeparatePools(t *testing.T) {
	s := MHCMLP(seed)
	split, err := s.Split(xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if split.Train.N() != 1600 || split.Valid.N() != 400 || split.Test.N() != 400 {
		t.Errorf("pool sizes: %d/%d/%d", split.Train.N(), split.Valid.N(), split.Test.N())
	}
}

func TestRTEHasSmallerTestThanSST2(t *testing.T) {
	// The whole point of the RTE case: a small test set with high
	// data-sampling variance (Figure 2).
	rte, err := RTEBERT(seed).Split(xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	sst2, err := SST2BERT(seed).Split(xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if rte.Test.N() >= sst2.Test.N() {
		t.Errorf("RTE test %d should be smaller than SST2 test %d",
			rte.Test.N(), sst2.Test.N())
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("mhc-mlp", seed)
	if err != nil || s.Name() != "mhc-mlp" {
		t.Fatalf("ByName failed: %v", err)
	}
	if _, err := ByName("nope", seed); err == nil {
		t.Fatal("unknown name should error")
	}
}

func TestTinyStudyFast(t *testing.T) {
	s := Tiny(1)
	streams := xrand.NewStreams(2)
	split, err := s.Split(streams.Get(xrand.VarDataSplit))
	if err != nil {
		t.Fatal(err)
	}
	perf, err := pipeline.TrainEval(s, s.Defaults(), split.Train, split.Test, streams)
	if err != nil {
		t.Fatal(err)
	}
	if perf < 0.5 {
		t.Errorf("tiny study accuracy %v, want > 0.5", perf)
	}
}

func TestPCCMeasureOnTrainedModel(t *testing.T) {
	s := MHCMLP(seed)
	streams := xrand.NewStreams(3)
	split, err := s.Split(streams.Get(xrand.VarDataSplit))
	if err != nil {
		t.Fatal(err)
	}
	model, err := pipeline.Fit(s, s.Defaults(), split.Train, streams)
	if err != nil {
		t.Fatal(err)
	}
	pcc := PCCMeasure(model, split.Test)
	if pcc < 0.3 {
		t.Errorf("PCC = %v, want > 0.3 for trained regressor", pcc)
	}
	var _ *data.Dataset = split.Test
}
