package experiments

import (
	"fmt"
	"io"

	"varbench/internal/report"
	"varbench/internal/simulate"
	"varbench/internal/xrand"
)

// FigI6Result is the robustness analysis of the comparison methods
// (Appendix I): detection rates as functions of sample size and of the
// threshold γ, for several true P(A>B).
type FigI6Result struct {
	Stats       ModelStats
	TruePs      []float64
	SampleSizes []int
	Gammas      []float64
	// BySampleSize[p] holds the sweep over sample sizes at true P = p.
	BySampleSize map[float64][]simulate.RobustnessPoint
	// ByGamma[p] holds the sweep over γ at true P = p.
	ByGamma map[float64][]simulate.RobustnessPoint
}

// FigI6 runs both sweeps of Figure I.6.
func FigI6(ms ModelStats, b Budget, seed uint64) (FigI6Result, error) {
	res := FigI6Result{
		Stats:        ms,
		TruePs:       []float64{0.5, 0.6, 0.7, 0.8},
		SampleSizes:  []int{5, 10, 20, 30, 50, 75, 100},
		Gammas:       []float64{0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9},
		BySampleSize: map[float64][]simulate.RobustnessPoint{},
		ByGamma:      map[float64][]simulate.RobustnessPoint{},
	}
	cfg := simulate.Config{NSim: b.SimulationsPerPoint, Bootstrap: 200}
	ideal := simulate.Model{Sigma2: ms.Sigma2}
	r := xrand.New(seed)
	for _, p := range res.TruePs {
		pts, err := simulate.SampleSizeSweep(cfg, ideal, p, res.SampleSizes, r)
		if err != nil {
			return FigI6Result{}, err
		}
		res.BySampleSize[p] = pts
		gpts, err := simulate.GammaSweep(cfg, ideal, p, res.Gammas, r)
		if err != nil {
			return FigI6Result{}, err
		}
		res.ByGamma[p] = gpts
	}
	return res, nil
}

// Render writes both sweeps as tables.
func (r FigI6Result) Render(w io.Writer) error {
	for _, p := range r.TruePs {
		tb := &report.Table{
			Title:   fmt.Sprintf("Figure I.6 — detection rate vs sample size (true P(A>B)=%.1f)", p),
			Headers: []string{"N", "average", "prob-outperform", "paired-t"},
		}
		for _, pt := range r.BySampleSize[p] {
			tb.AddRow(int(pt.X), pt.Rates["average"], pt.Rates["prob-outperform"], pt.Rates["paired-t"])
		}
		if err := tb.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	for _, p := range r.TruePs {
		tb := &report.Table{
			Title:   fmt.Sprintf("Figure I.6 — detection rate vs γ (true P(A>B)=%.1f)", p),
			Headers: []string{"gamma", "average", "prob-outperform", "paired-t"},
		}
		for _, pt := range r.ByGamma[p] {
			tb.AddRow(pt.X, pt.Rates["average"], pt.Rates["prob-outperform"], pt.Rates["paired-t"])
		}
		if err := tb.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// CheckShape verifies the Appendix I qualitative findings: the statistical
// tests (PAB, paired-t) control the null at every sample size — the
// threshold-based average comparison does NOT at small N, which is exactly
// the paper's argument against it — and at P=0.8 the PAB detection rate
// grows with N.
func (r FigI6Result) CheckShape() []string {
	var issues []string
	for _, pt := range r.BySampleSize[0.5] {
		for _, name := range []string{"prob-outperform", "paired-t"} {
			if rate := pt.Rates[name]; rate > 0.15 {
				issues = append(issues, fmt.Sprintf(
					"null not controlled: %s at N=%.0f has rate %.3f", name, pt.X, rate))
			}
		}
	}
	pts := r.BySampleSize[0.8]
	if len(pts) >= 2 {
		first := pts[0].Rates["prob-outperform"]
		last := pts[len(pts)-1].Rates["prob-outperform"]
		if last+0.05 < first {
			issues = append(issues, fmt.Sprintf(
				"PAB power decreased with N at P=0.8: %.3f → %.3f", first, last))
		}
	}
	return issues
}
