package experiments

import (
	"fmt"
	"io"

	"varbench/internal/report"
	"varbench/internal/sota"
)

// Fig3Result is the Figure 3 analysis: published SOTA improvements compared
// to benchmark variance, plus the δ = coef·σ regression of Section 4.2.
type Fig3Result struct {
	Analyses []sota.Analysis
	// DeltaCoefficient is the through-origin fit of mean improvement on σ
	// (the paper obtains 1.9952 on paperswithcode data).
	DeltaCoefficient float64
}

// Fig3 analyzes the embedded SOTA timelines against per-task benchmark
// standard deviations (in accuracy points). sigmas maps timeline task name
// ("cifar10", "sst2") to σ in percent.
func Fig3(sigmas map[string]float64, alpha float64) (Fig3Result, error) {
	res := Fig3Result{}
	var imps, sds []float64
	for _, task := range []string{"cifar10", "sst2"} {
		sigma, ok := sigmas[task]
		if !ok || sigma <= 0 {
			return Fig3Result{}, fmt.Errorf("fig3: missing σ for %s", task)
		}
		entries, err := sota.Timelines(task)
		if err != nil {
			return Fig3Result{}, err
		}
		a := sota.Analyze(task, entries, sigma, alpha)
		res.Analyses = append(res.Analyses, a)
		imps = append(imps, a.MeanImprovement())
		sds = append(sds, sigma)
	}
	coef, err := sota.DeltaCoefficient(imps, sds)
	if err != nil {
		return Fig3Result{}, err
	}
	res.DeltaCoefficient = coef
	return res, nil
}

// Render writes the per-publication verdicts and the summary.
func (r Fig3Result) Render(w io.Writer) error {
	for _, a := range r.Analyses {
		tb := &report.Table{
			Title: fmt.Sprintf("Figure 3 — %s (σ=%.2f%%, significance threshold %.2f%%)",
				a.Task, a.SigmaPct, a.ThresholdPct),
			Headers: []string{"year", "method", "acc%", "improvement", "verdict"},
		}
		for _, v := range a.Verdicts {
			verdict := "below SOTA"
			if v.IsSOTA {
				switch {
				case v.Significant:
					verdict = "significant"
				default:
					verdict = "NON-significant"
				}
			}
			tb.AddRow(v.Year, v.Method, v.Acc, v.Improvement, verdict)
		}
		if err := tb.Render(w); err != nil {
			return err
		}
		fmt.Fprintf(w, "significant share of SOTA improvements: %.2f\n\n", a.SignificantShare())
	}
	fmt.Fprintf(w, "δ regression through origin: δ = %.4f·σ (paper: δ = 1.9952·σ)\n",
		r.DeltaCoefficient)
	return nil
}
