// Package experiments contains one driver per table and figure of the
// paper's evaluation. Each driver runs the experiment at a configurable
// budget (the full paper-scale protocol or a quick reduced version), returns
// a typed result, and renders it as text tables/plots. The cmd/varbench CLI
// and the root-level benchmark harness are thin wrappers around this
// package. See DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
// paper-vs-measured outcomes.
package experiments

import (
	"varbench/internal/casestudy"
)

// Budget scales an experiment between the quick smoke-test protocol and the
// paper-scale protocol.
type Budget struct {
	// SeedsPerSource is the number of seeds per source of variation
	// (paper: 200).
	SeedsPerSource int
	// HOptRepetitions is the number of independent HOpt runs per optimizer
	// (paper: 20).
	HOptRepetitions int
	// HOptBudget is the trial budget per HOpt run (paper: 200).
	HOptBudget int
	// KMax is the largest estimator sample count (paper: 100).
	KMax int
	// EstimatorRepetitions is the number of biased-estimator realizations
	// (paper: 20).
	EstimatorRepetitions int
	// SimulationsPerPoint is the simulation count per grid point for the
	// detection-rate studies.
	SimulationsPerPoint int
}

// Quick is a reduced protocol that finishes in minutes on a laptop while
// preserving every qualitative conclusion.
func Quick() Budget {
	return Budget{
		SeedsPerSource:       15,
		HOptRepetitions:      4,
		HOptBudget:           10,
		KMax:                 10,
		EstimatorRepetitions: 4,
		SimulationsPerPoint:  150,
	}
}

// Full is the paper-scale protocol (hours of CPU time).
func Full() Budget {
	return Budget{
		SeedsPerSource:       200,
		HOptRepetitions:      20,
		HOptBudget:           200,
		KMax:                 100,
		EstimatorRepetitions: 20,
		SimulationsPerPoint:  1000,
	}
}

// StructSeed fixes the synthetic data distributions across all experiments
// so results are comparable between figures.
const StructSeed uint64 = 20210301

// Studies returns the case studies filtered by names (nil/empty = all five).
func Studies(names []string) ([]*casestudy.Study, error) {
	if len(names) == 0 {
		return casestudy.All(StructSeed), nil
	}
	out := make([]*casestudy.Study, 0, len(names))
	for _, n := range names {
		s, err := casestudy.ByName(n, StructSeed)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}
