package experiments

import (
	"fmt"
	"io"

	"varbench/internal/casestudy"
	"varbench/internal/data"
	"varbench/internal/metrics"
	"varbench/internal/nn"
	"varbench/internal/report"
	"varbench/internal/tensor"
	"varbench/internal/xrand"
)

// Table8Result compares the three MHC binding predictors of Tables 8/9 on
// the in-domain test pool ("CV-splits") and the noisy out-of-domain pool
// ("HPV"): the paper's MLP-MHC (allele+peptide, sparse one-hot), a
// NetMHCpan4-like model (allele+peptide through a dense BLOSUM-like residue
// embedding), and an MHCflurry-like model (peptide-only ensemble).
type Table8Result struct {
	Rows []Table8Row
}

// Table8Row is one model × dataset evaluation.
type Table8Row struct {
	Model    string
	Dataset  string
	AUC, PCC float64
}

// Table8 trains the three models and evaluates AUC and PCC on both pools.
func Table8(seed uint64) (Table8Result, error) {
	dist, train, _, test, hpv := casestudy.MHCPools(StructSeed)
	res := Table8Result{}

	evalBoth := func(name string, predict func(d *data.Dataset) []float64) {
		for _, ds := range []struct {
			label string
			d     *data.Dataset
		}{{"NetMHC-CVsplits", test}, {"HPV", hpv}} {
			pred := predict(ds.d)
			pos := make([]bool, ds.d.N())
			for i, y := range ds.d.Y {
				pos[i] = y > 0.5
			}
			res.Rows = append(res.Rows, Table8Row{
				Model:   name,
				Dataset: ds.label,
				AUC:     metrics.AUC(pred, pos),
				PCC:     metrics.Pearson(pred, ds.d.Y),
			})
		}
	}

	baseCfg := nn.TrainConfig{
		Hidden:      []int{16},
		Activation:  nn.Tanh,
		Loss:        nn.MSELoss,
		OutDim:      1,
		Init:        nn.GlorotUniform{},
		LR:          0.05,
		WeightDecay: 1e-3,
		Momentum:    0.9,
		Epochs:      12,
		BatchSize:   32,
	}

	// 1. MLP-MHC: sparse one-hot allele+peptide features (the repository's
	// case-study model).
	mlpRes, err := nn.Train(baseCfg, train, xrand.NewStreams(seed))
	if err != nil {
		return Table8Result{}, fmt.Errorf("table8 mlp-mhc: %w", err)
	}
	evalBoth("MLP-MHC", func(d *data.Dataset) []float64 {
		return mlpRes.Model.PredictValues(d.X)
	})

	// 2. NetMHCpan4-like: dense BLOSUM-style residue embedding of the same
	// allele+peptide input.
	embed := blosumLikeEmbedding(dist.Alphabet, 4, seed)
	embTrain := embedDataset(train, dist.Alphabet, embed)
	netRes, err := nn.Train(baseCfg, embTrain, xrand.NewStreams(seed+1))
	if err != nil {
		return Table8Result{}, fmt.Errorf("table8 netmhc: %w", err)
	}
	evalBoth("NetMHCpan4-like", func(d *data.Dataset) []float64 {
		return netRes.Model.PredictValues(embedDataset(d, dist.Alphabet, embed).X)
	})

	// 3. MHCflurry-like: peptide-only features, ensemble of four MLPs on
	// bootstrap resamples.
	pepCols := dist.PocketLen * dist.Alphabet // drop allele columns [0, pepCols)
	pepTrain := dropColumns(train, pepCols)
	const ensembleSize = 4
	models := make([]*nn.MLP, 0, ensembleSize)
	for e := 0; e < ensembleSize; e++ {
		//lint:allow seedflow(published Table 8 reproduction: the golden ensemble scores derive from exactly this historical seed arithmetic)
		idx, _ := data.BootstrapIndices(pepTrain.N(), pepTrain.N(), xrand.New(seed+uint64(10+e)))
		sub := pepTrain.Subset(idx)
		//lint:allow seedflow(published Table 8 reproduction: the golden ensemble scores derive from exactly this historical seed arithmetic)
		r, err := nn.Train(baseCfg, sub, xrand.NewStreams(seed+uint64(20+e)))
		if err != nil {
			return Table8Result{}, fmt.Errorf("table8 flurry %d: %w", e, err)
		}
		models = append(models, r.Model)
	}
	evalBoth("MHCflurry-like", func(d *data.Dataset) []float64 {
		dd := dropColumns(d, pepCols)
		sum := make([]float64, dd.N())
		for _, m := range models {
			for i, v := range m.PredictValues(dd.X) {
				sum[i] += v
			}
		}
		for i := range sum {
			sum[i] /= float64(len(models))
		}
		return sum
	})

	return res, nil
}

// blosumLikeEmbedding returns a fixed residue embedding matrix
// (alphabet × dim), the dense-encoding analogue of BLOSUM62.
func blosumLikeEmbedding(alphabet, dim int, seed uint64) *tensor.Matrix {
	r := xrand.New(seed ^ 0xB105)
	m := tensor.NewMatrix(alphabet, dim)
	for i := range m.Data {
		m.Data[i] = r.NormFloat64()
	}
	return m
}

// embedDataset maps each one-hot residue block through the embedding.
func embedDataset(d *data.Dataset, alphabet int, embed *tensor.Matrix) *data.Dataset {
	blocks := d.Dim() / alphabet
	dim := blocks * embed.Cols
	out := &data.Dataset{
		Name: d.Name + "-embedded",
		X:    tensor.NewMatrix(d.N(), dim),
		Y:    append([]float64(nil), d.Y...),
	}
	for i := 0; i < d.N(); i++ {
		src := d.X.Row(i)
		dst := out.X.Row(i)
		for b := 0; b < blocks; b++ {
			for a := 0; a < alphabet; a++ {
				if src[b*alphabet+a] == 0 {
					continue
				}
				for e := 0; e < embed.Cols; e++ {
					dst[b*embed.Cols+e] += embed.At(a, e)
				}
			}
		}
	}
	return out
}

// dropColumns removes the first n feature columns (the allele block).
func dropColumns(d *data.Dataset, n int) *data.Dataset {
	out := &data.Dataset{
		Name: d.Name + "-peponly",
		X:    tensor.NewMatrix(d.N(), d.Dim()-n),
		Y:    append([]float64(nil), d.Y...),
	}
	for i := 0; i < d.N(); i++ {
		copy(out.X.Row(i), d.X.Row(i)[n:])
	}
	return out
}

// Render writes the comparison table.
func (r Table8Result) Render(w io.Writer) error {
	tb := &report.Table{
		Title:   "Table 8 — MHC binding predictors (AUC / PCC)",
		Headers: []string{"model", "dataset", "AUC", "PCC"},
	}
	for _, row := range r.Rows {
		tb.AddRow(row.Model, row.Dataset, row.AUC, row.PCC)
	}
	return tb.Render(w)
}

// CheckShape verifies the Table 8 shape: every model performs better on the
// in-domain CV pool than on the noisy HPV pool, and the allele-aware models
// are not worse than the peptide-only ensemble in-domain.
func (r Table8Result) CheckShape() []string {
	var issues []string
	auc := map[string]map[string]float64{}
	for _, row := range r.Rows {
		if auc[row.Model] == nil {
			auc[row.Model] = map[string]float64{}
		}
		auc[row.Model][row.Dataset] = row.AUC
	}
	for model, byDS := range auc {
		if byDS["HPV"] > byDS["NetMHC-CVsplits"] {
			issues = append(issues, fmt.Sprintf(
				"%s: HPV AUC %.3f exceeds in-domain %.3f", model, byDS["HPV"], byDS["NetMHC-CVsplits"]))
		}
	}
	return issues
}
