package experiments

import (
	"fmt"
	"io"

	"varbench/internal/casestudy"
	"varbench/internal/pipeline"
	"varbench/internal/report"
	"varbench/internal/stats"
	"varbench/internal/xrand"
)

// FigF2Result holds the hyperparameter-optimization curves of Figure F.2:
// for each task and optimizer, the mean and std (across ξH repetitions) of
// the best-so-far validation error and the matching test error.
type FigF2Result struct {
	Tasks []FigF2Task
}

// FigF2Task is one panel row of Figure F.2.
type FigF2Task struct {
	Task   string
	Curves []FigF2Curve
}

// FigF2Curve is one optimizer's averaged optimization trajectory.
type FigF2Curve struct {
	Optimizer  string
	Iterations []int
	ValidMean  []float64 // best-so-far validation error (1 - perf)
	ValidStd   []float64
	TestMean   []float64 // test error of the best-so-far trial
	TestStd    []float64
}

// FigF2 runs HOptRepetitions independent optimizations per optimizer and
// task, varying only ξH, and aggregates best-so-far curves.
func FigF2(studies []*casestudy.Study, b Budget, baseSeed uint64) (FigF2Result, error) {
	res := FigF2Result{}
	for _, s := range studies {
		taskRes := FigF2Task{Task: s.Name()}
		base := xrand.NewStreams(baseSeed)
		split, err := s.Split(base.Get(xrand.VarDataSplit))
		if err != nil {
			return FigF2Result{}, err
		}
		for _, opt := range hoptOptimizers() {
			validRuns := make([][]float64, 0, b.HOptRepetitions)
			testRuns := make([][]float64, 0, b.HOptRepetitions)
			seeder := xrand.New(baseSeed ^ 0xF16F2)
			for rep := 0; rep < b.HOptRepetitions; rep++ {
				streams := xrand.NewStreams(baseSeed)
				streams.Reseed(xrand.VarHOpt, seeder.Uint64())
				hres, err := pipeline.HOpt(s, opt, b.HOptBudget, split, streams)
				if err != nil {
					return FigF2Result{}, fmt.Errorf("figF2 %s/%s: %w", s.Name(), opt.Name(), err)
				}
				valid := hres.History.BestSoFar()
				// Test error of the best-so-far trial at each iteration.
				test := make([]float64, len(valid))
				bestVal, bestTest := 2.0, 0.0
				for i, tr := range hres.History {
					if tr.Value < bestVal {
						bestVal = tr.Value
						bestTest = 1 - hres.TestCurve[i]
					}
					test[i] = bestTest
				}
				validRuns = append(validRuns, valid)
				testRuns = append(testRuns, test)
			}
			curve := FigF2Curve{Optimizer: opt.Name()}
			iters := minLen(validRuns)
			for i := 0; i < iters; i++ {
				col := func(runs [][]float64) []float64 {
					c := make([]float64, len(runs))
					for r := range runs {
						c[r] = runs[r][i]
					}
					return c
				}
				v := col(validRuns)
				tt := col(testRuns)
				curve.Iterations = append(curve.Iterations, i+1)
				curve.ValidMean = append(curve.ValidMean, stats.Mean(v))
				curve.ValidStd = append(curve.ValidStd, stats.Std(v))
				curve.TestMean = append(curve.TestMean, stats.Mean(tt))
				curve.TestStd = append(curve.TestStd, stats.Std(tt))
			}
			taskRes.Curves = append(taskRes.Curves, curve)
		}
		res.Tasks = append(res.Tasks, taskRes)
	}
	return res, nil
}

func minLen(runs [][]float64) int {
	m := -1
	for _, r := range runs {
		if m < 0 || len(r) < m {
			m = len(r)
		}
	}
	if m < 0 {
		return 0
	}
	return m
}

// Render writes the final-iteration summary table and validation curves.
func (r FigF2Result) Render(w io.Writer) error {
	for _, t := range r.Tasks {
		tb := &report.Table{
			Title: fmt.Sprintf("Figure F.2 — HPO optimization curves (%s)", t.Task),
			Headers: []string{"optimizer", "iters",
				"final valid err (mean±std)", "final test err (mean±std)"},
		}
		var series []report.Series
		for _, c := range t.Curves {
			last := len(c.Iterations) - 1
			tb.AddRow(c.Optimizer, c.Iterations[last],
				fmt.Sprintf("%.4f±%.4f", c.ValidMean[last], c.ValidStd[last]),
				fmt.Sprintf("%.4f±%.4f", c.TestMean[last], c.TestStd[last]))
			s := report.Series{Name: c.Optimizer}
			for i := range c.Iterations {
				s.X = append(s.X, float64(c.Iterations[i]))
				s.Y = append(s.Y, c.ValidMean[i])
			}
			series = append(series, s)
		}
		if err := tb.Render(w); err != nil {
			return err
		}
		if err := report.LinePlot(w, "best-so-far validation error", series, 60, 10); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// CheckShape verifies the F.2 qualitative observations: best-so-far curves
// are non-increasing, and the ξH std at the final iteration is finite and
// stabilized (greater than zero for at least one optimizer).
func (r FigF2Result) CheckShape() []string {
	var issues []string
	for _, t := range r.Tasks {
		anyStd := false
		for _, c := range t.Curves {
			for i := 1; i < len(c.ValidMean); i++ {
				if c.ValidMean[i] > c.ValidMean[i-1]+1e-12 {
					issues = append(issues, fmt.Sprintf(
						"%s/%s: best-so-far increased at iter %d", t.Task, c.Optimizer, i+1))
					break
				}
			}
			if c.ValidStd[len(c.ValidStd)-1] > 0 {
				anyStd = true
			}
		}
		if !anyStd {
			issues = append(issues, fmt.Sprintf("%s: no ξH variance in any optimizer", t.Task))
		}
	}
	return issues
}
