package experiments

import (
	"bytes"
	"strings"
	"testing"

	"varbench/internal/casestudy"
	"varbench/internal/stats"
	"varbench/internal/xrand"
)

// micro is the smallest budget that still exercises every code path.
func micro() Budget {
	return Budget{
		SeedsPerSource:       8,
		HOptRepetitions:      3,
		HOptBudget:           4,
		KMax:                 6,
		EstimatorRepetitions: 3,
		SimulationsPerPoint:  60,
	}
}

func tinyStudies() []*casestudy.Study {
	return []*casestudy.Study{casestudy.Tiny(1)}
}

func TestBudgets(t *testing.T) {
	q, f := Quick(), Full()
	if q.SeedsPerSource >= f.SeedsPerSource || q.HOptBudget >= f.HOptBudget {
		t.Error("quick budget should be strictly smaller than full")
	}
	if f.SeedsPerSource != 200 || f.HOptBudget != 200 || f.KMax != 100 || f.EstimatorRepetitions != 20 {
		t.Error("full budget must match the paper protocol")
	}
}

func TestStudiesSelector(t *testing.T) {
	all, err := Studies(nil)
	if err != nil || len(all) != 5 {
		t.Fatalf("Studies(nil) = %d studies, err %v", len(all), err)
	}
	one, err := Studies([]string{"mhc-mlp"})
	if err != nil || len(one) != 1 || one[0].Name() != "mhc-mlp" {
		t.Fatalf("Studies by name failed: %v", err)
	}
	if _, err := Studies([]string{"bogus"}); err == nil {
		t.Error("unknown study should error")
	}
}

func TestFig1EndToEnd(t *testing.T) {
	res, err := Fig1(tinyStudies(), micro(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tasks) != 1 {
		t.Fatalf("tasks = %d", len(res.Tasks))
	}
	task := res.Tasks[0]
	// ξO rows + 3 optimizers.
	wantRows := len(casestudy.Tiny(1).Sources()) + 3
	if len(task.Order) != wantRows {
		t.Errorf("rows = %d, want %d (%v)", len(task.Order), wantRows, task.Order)
	}
	if task.BootstrapStd() <= 0 {
		t.Error("bootstrap std must be positive")
	}
	for label, m := range task.Rows {
		if len(m) < 2 {
			t.Errorf("row %s has %d measures", label, len(m))
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "data-split") {
		t.Error("render missing data-split row")
	}
	for _, issue := range res.CheckShape() {
		t.Logf("fig1 shape note: %s", issue)
	}
}

func TestFig2EndToEnd(t *testing.T) {
	res, err := Fig2(tinyStudies(), micro(), 7)
	if err != nil {
		t.Fatal(err)
	}
	task := res.Tasks[0]
	if task.ModelStd <= 0 || task.ObservedStd <= 0 {
		t.Fatalf("stds must be positive: %+v", task)
	}
	// The binomial model should agree with the observation within a small
	// factor (Figure 2's finding).
	ratio := task.ObservedStd / task.ModelStd
	if ratio < 0.3 || ratio > 4 {
		t.Errorf("observed/model ratio = %v, binomial model badly off", ratio)
	}
	// Model curve decreases with test size.
	for i := 1; i < len(task.ModelCurve); i++ {
		if task.ModelCurve[i] >= task.ModelCurve[i-1] {
			t.Error("binomial curve must decrease with n")
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFig3EndToEnd(t *testing.T) {
	res, err := Fig3(map[string]float64{"cifar10": 0.3, "sst2": 0.6}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Analyses) != 2 {
		t.Fatalf("analyses = %d", len(res.Analyses))
	}
	if res.DeltaCoefficient <= 0 {
		t.Errorf("delta coefficient = %v", res.DeltaCoefficient)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1.9952") {
		t.Error("render should cite the paper coefficient")
	}
	if _, err := Fig3(map[string]float64{"cifar10": 0.3}, 0.05); err == nil {
		t.Error("missing sigma should error")
	}
}

func TestFig5EndToEnd(t *testing.T) {
	res, err := Fig5(tinyStudies(), micro(), 9)
	if err != nil {
		t.Fatal(err)
	}
	task := res.Tasks[0]
	if len(task.Curves) != 4 { // 3 subsets + ideal
		t.Fatalf("curves = %d", len(task.Curves))
	}
	sigma2, biasVar, withinVar := task.SimulationModel()
	if sigma2 <= 0 || withinVar <= 0 || biasVar < 0 {
		t.Errorf("simulation model invalid: %v %v %v", sigma2, biasVar, withinVar)
	}
	decs, err := task.Decompositions(res.KMax)
	if err != nil {
		t.Fatal(err)
	}
	if len(decs) != 5 {
		t.Errorf("decompositions = %d, want 5", len(decs))
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if err := res.RenderH5(&buf); err != nil {
		t.Fatal(err)
	}
	for _, issue := range res.CheckShape() {
		t.Logf("fig5 shape note: %s", issue)
	}
}

func TestFig6EndToEnd(t *testing.T) {
	res, err := Fig6(DefaultModelStats(), micro(), 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no points")
	}
	if issues := res.CheckShape(); len(issues) > 0 {
		t.Errorf("fig6 shape violations: %v", issues)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "oracle") {
		t.Error("render missing oracle column")
	}
}

func TestFigC1(t *testing.T) {
	res := FigC1(0.05, 0.05)
	if res.Recommended.N != 29 {
		t.Errorf("recommended N = %d, want 29", res.Recommended.N)
	}
	for i := 1; i < len(res.N); i++ {
		if res.N[i] > res.N[i-1] {
			t.Error("sample size must not grow with γ")
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFigF2EndToEnd(t *testing.T) {
	res, err := FigF2(tinyStudies(), micro(), 13)
	if err != nil {
		t.Fatal(err)
	}
	task := res.Tasks[0]
	if len(task.Curves) != 3 {
		t.Fatalf("curves = %d", len(task.Curves))
	}
	if issues := res.CheckShape(); len(issues) > 0 {
		t.Errorf("figF2 shape violations: %v", issues)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFigG3EndToEnd(t *testing.T) {
	res, err := FigG3(tinyStudies(), micro(), 15)
	if err != nil {
		t.Fatal(err)
	}
	// Sources + "altogether".
	want := len(casestudy.Tiny(1).Sources()) + 1
	if len(res.Cells) != want {
		t.Fatalf("cells = %d, want %d", len(res.Cells), want)
	}
	for _, c := range res.Cells {
		if c.PValue < 0 || c.PValue > 1 || c.W <= 0 || c.W > 1 {
			t.Errorf("invalid SW stats: %+v", c)
		}
	}
	share := res.NormalShare()
	if share < 0 || share > 1 {
		t.Errorf("normal share = %v", share)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFigI6EndToEnd(t *testing.T) {
	res, err := FigI6(DefaultModelStats(), micro(), 17)
	if err != nil {
		t.Fatal(err)
	}
	if issues := res.CheckShape(); len(issues) > 0 {
		t.Errorf("figI6 shape violations: %v", issues)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestTable8EndToEnd(t *testing.T) {
	res, err := Table8(19)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 { // 3 models × 2 datasets
		t.Fatalf("rows = %d, want 6", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.AUC < 0.3 || row.AUC > 1 {
			t.Errorf("%s/%s AUC = %v", row.Model, row.Dataset, row.AUC)
		}
	}
	if issues := res.CheckShape(); len(issues) > 0 {
		t.Errorf("table8 shape violations: %v", issues)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestRenderSpacesAndEnv(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderSpaces(&buf, tinyStudies()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "lr") {
		t.Error("spaces table missing lr")
	}
	buf.Reset()
	if err := RenderEnv(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "go version") {
		t.Error("env table missing go version")
	}
}

func TestFig1HOptVarianceComparableToInit(t *testing.T) {
	// The paper's second headline: HOpt-induced variance is on par with
	// weight-init variance (within an order of magnitude).
	if testing.Short() {
		t.Skip("integration experiment")
	}
	b := micro()
	b.SeedsPerSource = 12
	b.HOptRepetitions = 6
	res, err := Fig1(tinyStudies(), b, 23)
	if err != nil {
		t.Fatal(err)
	}
	task := res.Tasks[0]
	initStd := stats.Std(task.Rows[string(xrand.VarInit)])
	for _, opt := range []string{"random-search", "noisy-grid-search", "bayes-opt"} {
		hoptStd := stats.Std(task.Rows[opt])
		if hoptStd > initStd*20 {
			t.Errorf("%s std %v wildly above init std %v", opt, hoptStd, initStd)
		}
	}
}
