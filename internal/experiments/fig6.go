package experiments

import (
	"fmt"
	"io"

	"varbench/internal/report"
	"varbench/internal/simulate"
	"varbench/internal/xrand"
)

// ModelStats parameterizes the Figure 6 simulation for one task. The
// defaults below were measured with this repository's own fig5 experiment at
// the quick budget on the RTE-like study (see EXPERIMENTS.md); pass your own
// measurements for other tasks.
type ModelStats struct {
	Task      string
	Sigma2    float64
	BiasVar   float64
	WithinVar float64
}

// DefaultModelStats returns simulation statistics in the regime the paper
// reports for the Glue-RTE case (σ ≈ 2% accuracy; HOpt bias a few percent of
// the total variance).
func DefaultModelStats() ModelStats {
	return ModelStats{
		Task:      "rte-bert",
		Sigma2:    0.0004,        // σ = 2% accuracy
		BiasVar:   0.0004 * 0.06, // Var(μ̃|ξ): ~6% of σ²
		WithinVar: 0.0004 * 0.94, // Var(R̂e|ξ)
	}
}

// Fig6Result is the detection-rate study of the comparison criteria.
type Fig6Result struct {
	Stats   ModelStats
	Gamma   float64
	Points  []simulate.Point
	Summary simulate.ErrorSummary
}

// Fig6 sweeps the true P(A>B) across [0.4, 1] and measures detection rates
// of the single-point, average-threshold and probability-of-outperforming
// criteria under the ideal and biased estimator models (Figure 6).
func Fig6(ms ModelStats, b Budget, seed uint64) (Fig6Result, error) {
	cfg := simulate.Config{NSim: b.SimulationsPerPoint, Bootstrap: 200}
	cfg = cfg.Defaults(ms.Sigma2)
	grid := []float64{0.40, 0.44, 0.48, 0.50, 0.55, 0.60, 0.65, 0.70,
		0.75, 0.80, 0.85, 0.90, 0.95, 0.99}
	ideal := simulate.Model{Sigma2: ms.Sigma2}
	biased := simulate.Model{Sigma2: ms.Sigma2, BiasVar: ms.BiasVar, WithinVar: ms.WithinVar}
	points, err := simulate.DetectionCurve(cfg, ideal, biased, grid, xrand.New(seed))
	if err != nil {
		return Fig6Result{}, err
	}
	return Fig6Result{
		Stats:   ms,
		Gamma:   cfg.Gamma,
		Points:  points,
		Summary: simulate.Summarize(points, cfg.Gamma),
	}, nil
}

// criteriaOrder fixes the column order of the rendering.
func criteriaOrder() []string {
	return []string{
		"oracle",
		"single-point/ideal", "single-point/biased",
		"average/ideal", "average/biased",
		"prob-outperform/ideal", "prob-outperform/biased",
	}
}

// Render writes the detection-rate table, plot, and error summary.
func (r Fig6Result) Render(w io.Writer) error {
	tb := &report.Table{
		Title: fmt.Sprintf(
			"Figure 6 — rate of detections (task model %s, γ=%.2f)", r.Stats.Task, r.Gamma),
		Headers: append([]string{"P(A>B)"}, criteriaOrder()...),
	}
	for _, pt := range r.Points {
		row := []interface{}{pt.TrueP}
		for _, c := range criteriaOrder() {
			row = append(row, pt.Rates[c])
		}
		tb.AddRow(row...)
	}
	if err := tb.Render(w); err != nil {
		return err
	}

	var series []report.Series
	for _, c := range []string{"oracle", "single-point/ideal", "average/ideal", "prob-outperform/ideal", "prob-outperform/biased"} {
		s := report.Series{Name: c}
		for _, pt := range r.Points {
			s.X = append(s.X, pt.TrueP)
			s.Y = append(s.Y, pt.Rates[c])
		}
		series = append(series, s)
	}
	fmt.Fprintln(w)
	if err := report.LinePlot(w, "detection rate vs true P(A>B)", series, 64, 14); err != nil {
		return err
	}

	sm := &report.Table{
		Title:   "error summary (FP over H0 region, FN over H1 region)",
		Headers: []string{"criterion", "false positive", "false negative"},
	}
	for _, c := range criteriaOrder() {
		sm.AddRow(c, r.Summary.FalsePositive[c], r.Summary.FalseNegative[c])
	}
	fmt.Fprintln(w)
	return sm.Render(w)
}

// CheckShape verifies the Figure 6 qualitative results.
func (r Fig6Result) CheckShape() []string {
	var issues []string
	fp := r.Summary.FalsePositive
	fn := r.Summary.FalseNegative
	if fp["single-point/ideal"] < fp["average/ideal"] {
		issues = append(issues, "single-point FP should exceed average FP")
	}
	if fn["average/ideal"] < fn["prob-outperform/ideal"] {
		issues = append(issues, "average FN should exceed PAB FN")
	}
	if fp["prob-outperform/ideal"] > 0.15 {
		issues = append(issues, fmt.Sprintf("PAB FP too high: %.3f", fp["prob-outperform/ideal"]))
	}
	if fn["single-point/ideal"] < fn["prob-outperform/ideal"] {
		issues = append(issues, "single-point FN should exceed PAB FN")
	}
	return issues
}
