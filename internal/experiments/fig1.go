package experiments

import (
	"fmt"
	"io"

	"varbench/internal/casestudy"
	"varbench/internal/estimator"
	"varbench/internal/hpo"
	"varbench/internal/report"
	"varbench/internal/stats"
	"varbench/internal/xrand"
)

// Fig1Result holds, per task, the standard deviation of test performance
// attributable to each source of variation — Figure 1 of the paper.
type Fig1Result struct {
	Tasks []Fig1Task
}

// Fig1Task is one column of Figure 1.
type Fig1Task struct {
	Task string
	// Rows maps source label → measures; includes ξO sources and the three
	// hyperparameter optimizers.
	Rows map[string][]float64
	// Order lists row labels in display order.
	Order []string
}

// BootstrapStd returns the data-sampling standard deviation, the reference
// every other source is normalized by in Figure 1.
func (t Fig1Task) BootstrapStd() float64 {
	return stats.Std(t.Rows[string(xrand.VarDataSplit)])
}

// hoptOptimizers returns the three ξH rows of Figure 1.
func hoptOptimizers() []hpo.Optimizer {
	return []hpo.Optimizer{
		hpo.NoisyGrid{},
		hpo.RandomSearch{},
		hpo.BayesOpt{InitRandom: 4, Candidates: 128},
	}
}

// Fig1 measures the variance contributed by every applicable source of
// variation on each study (Section 2.2's protocol: per source, vary that
// seed only; for ξH, rerun the whole hyperparameter optimization).
func Fig1(studies []*casestudy.Study, b Budget, baseSeed uint64) (Fig1Result, error) {
	res := Fig1Result{}
	for _, s := range studies {
		taskRes := Fig1Task{Task: s.Name(), Rows: map[string][]float64{}}
		for _, v := range s.Sources() {
			m, err := estimator.SourceMeasures(s, s.Defaults(), v, b.SeedsPerSource, baseSeed)
			if err != nil {
				return Fig1Result{}, fmt.Errorf("fig1 %s/%s: %w", s.Name(), v, err)
			}
			taskRes.Rows[string(v)] = m
			taskRes.Order = append(taskRes.Order, string(v))
		}
		for _, opt := range hoptOptimizers() {
			m, err := estimator.HOptMeasures(s, opt, b.HOptBudget, b.HOptRepetitions, baseSeed)
			if err != nil {
				return Fig1Result{}, fmt.Errorf("fig1 %s/%s: %w", s.Name(), opt.Name(), err)
			}
			taskRes.Rows[opt.Name()] = m
			taskRes.Order = append(taskRes.Order, opt.Name())
		}
		res.Tasks = append(res.Tasks, taskRes)
	}
	return res, nil
}

// Render writes the Figure 1 table: per task and source, the absolute std
// and the std relative to the bootstrap (data) variance.
func (r Fig1Result) Render(w io.Writer) error {
	tb := &report.Table{
		Title:   "Figure 1 — sources of variation (std of test performance)",
		Headers: []string{"task", "source", "std", "rel. to bootstrap", "mean perf"},
	}
	for _, task := range r.Tasks {
		ref := task.BootstrapStd()
		for _, src := range task.Order {
			m := task.Rows[src]
			sd := stats.Std(m)
			rel := 0.0
			if ref > 0 {
				rel = sd / ref
			}
			tb.AddRow(task.Task, src, sd, rel, stats.Mean(m))
		}
	}
	return tb.Render(w)
}

// CheckShape verifies the paper's qualitative conclusions on this run:
// (1) data sampling is the largest ξO source on every task (within slack),
// (2) HOpt variance is non-negligible — at least a quarter of init variance
// on average. Returns a list of violated expectations (empty = consistent).
func (r Fig1Result) CheckShape() []string {
	var issues []string
	for _, task := range r.Tasks {
		ref := task.BootstrapStd()
		for _, src := range task.Order {
			if src == string(xrand.VarDataSplit) {
				continue
			}
			sd := stats.Std(task.Rows[src])
			if isXiO(src) && sd > ref*1.5 {
				issues = append(issues, fmt.Sprintf(
					"%s: source %s std %.4g exceeds bootstrap %.4g by >1.5x",
					task.Task, src, sd, ref))
			}
		}
	}
	return issues
}

func isXiO(src string) bool {
	for _, v := range xrand.LearningVars() {
		if src == string(v) {
			return true
		}
	}
	return src == string(xrand.VarNumericalNoise)
}
