package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestG3CellDegenerateConstantSample(t *testing.T) {
	// Bit-identical measures (numerical noise below metric resolution) must
	// be reported as degenerate, not crash the normality screen — this is a
	// regression test for the pascalvoc numerical-noise case.
	m := make([]float64, 15)
	for i := range m {
		m[i] = 0.6709412627753913
	}
	cell, err := g3Cell("task", "numerical-noise", m)
	if err != nil {
		t.Fatal(err)
	}
	if !cell.Degenerate {
		t.Fatal("constant sample not marked degenerate")
	}
	if !math.IsNaN(cell.W) || !math.IsNaN(cell.PValue) {
		t.Error("degenerate cell should have NaN statistics")
	}

	// NormalShare must skip degenerate cells.
	res := FigG3Result{Cells: []FigG3Cell{
		cell,
		{PValue: 0.5},
		{PValue: 0.01},
	}}
	if got := res.NormalShare(); got != 0.5 {
		t.Errorf("NormalShare = %v, want 0.5 (degenerate excluded)", got)
	}

	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "degenerate") {
		t.Error("render should mark the degenerate row")
	}
}

func TestG3CellAllDegenerate(t *testing.T) {
	res := FigG3Result{Cells: []FigG3Cell{{Degenerate: true}}}
	if got := res.NormalShare(); got != 0 {
		t.Errorf("all-degenerate NormalShare = %v, want 0", got)
	}
}
