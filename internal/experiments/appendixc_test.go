package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestAppendixCWorkedExample(t *testing.T) {
	res, err := AppendixC(0.75, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.SampleSize != 29 {
		t.Errorf("sample size = %d, want 29", res.SampleSize)
	}
	if len(res.ScoresA) != 29 || len(res.ScoresB) != 29 {
		t.Fatalf("collected %d/%d pairs", len(res.ScoresA), len(res.ScoresB))
	}
	// The deliberately crippled learning rate should lose clearly.
	if res.Result.PAB < 0.75 {
		t.Errorf("P(A>B) = %v, expected clear dominance", res.Result.PAB)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, step := range []string{"C.1", "C.2", "C.3", "C.4", "C.5", "C.6"} {
		if !strings.Contains(out, step) {
			t.Errorf("narration missing step %s", step)
		}
	}
}

func TestAppendixCDeterministic(t *testing.T) {
	a, err := AppendixC(0.75, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AppendixC(0.75, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.Result.PAB != b.Result.PAB || a.Result.CI.Lo != b.Result.CI.Lo {
		t.Error("worked example not reproducible")
	}
}
