package experiments

import (
	"fmt"
	"io"
	"math"

	"varbench/internal/casestudy"
	"varbench/internal/estimator"
	"varbench/internal/hpo"
	"varbench/internal/report"
	"varbench/internal/stats"
)

// Fig5Result holds, per task, the standard-error-vs-k curves of the four
// estimators (Figures 5 and H.4) plus everything needed for the Figure H.5
// decomposition and the Figure 6 simulation models.
type Fig5Result struct {
	Tasks []Fig5Task
	KMax  int
}

// Fig5Task is one task's estimator study.
type Fig5Task struct {
	Task string
	// IdealMeasures is one kmax-sized realization of the ideal estimator.
	IdealMeasures []float64
	// Realizations maps subset label → repetitions×kmax measures.
	Realizations map[string][][]float64
	// Curves holds the rendered curves in plot order.
	Curves []estimator.Curve
}

// fig5Subsets lists the biased-estimator variants in Figure 5's legend order.
func fig5Subsets() []estimator.Subset {
	return []estimator.Subset{
		estimator.SubsetInit,
		estimator.SubsetData,
		estimator.SubsetAll,
	}
}

// Fig5 runs the estimator-quality study: one ideal-estimator realization and
// EstimatorRepetitions realizations of each biased variant per task.
func Fig5(studies []*casestudy.Study, b Budget, baseSeed uint64) (Fig5Result, error) {
	res := Fig5Result{KMax: b.KMax}
	opt := hpo.RandomSearch{}
	ks := estimator.Ks(b.KMax, 12)
	for _, s := range studies {
		task := Fig5Task{Task: s.Name(), Realizations: map[string][][]float64{}}

		ideal, err := estimator.IdealEst(s, opt, b.HOptBudget, b.KMax, baseSeed)
		if err != nil {
			return Fig5Result{}, fmt.Errorf("fig5 %s ideal: %w", s.Name(), err)
		}
		task.IdealMeasures = ideal

		for _, sub := range fig5Subsets() {
			rows := make([][]float64, b.EstimatorRepetitions)
			for rep := 0; rep < b.EstimatorRepetitions; rep++ {
				m, err := estimator.FixHOptEst(s, opt, b.HOptBudget, b.KMax, sub,
					baseSeed+uint64(1000*rep+7))
				if err != nil {
					return Fig5Result{}, fmt.Errorf("fig5 %s %v: %w", s.Name(), sub, err)
				}
				rows[rep] = m
			}
			task.Realizations[sub.String()] = rows
			curve, err := estimator.BiasedCurve(sub.String(), rows, ks)
			if err != nil {
				return Fig5Result{}, err
			}
			task.Curves = append(task.Curves, curve)
		}
		task.Curves = append(task.Curves, estimator.IdealCurve(ideal, ks))
		res.Tasks = append(res.Tasks, task)
	}
	return res, nil
}

// Render writes per-task curves as a table and ASCII plot.
func (r Fig5Result) Render(w io.Writer) error {
	for _, t := range r.Tasks {
		tb := &report.Table{
			Title:   fmt.Sprintf("Figure 5/H.4 — std of estimators vs k (%s)", t.Task),
			Headers: []string{"k"},
		}
		for _, c := range t.Curves {
			tb.Headers = append(tb.Headers, c.Label)
		}
		for i, k := range t.Curves[0].K {
			row := []interface{}{k}
			for _, c := range t.Curves {
				row = append(row, c.Std[i])
			}
			tb.AddRow(row...)
		}
		if err := tb.Render(w); err != nil {
			return err
		}
		var series []report.Series
		for _, c := range t.Curves {
			x := make([]float64, len(c.K))
			for i, k := range c.K {
				x[i] = float64(k)
			}
			series = append(series, report.Series{Name: c.Label, X: x, Y: c.Std})
		}
		if err := report.LinePlot(w, "std vs k", series, 60, 12); err != nil {
			return err
		}
		sigma := stats.Std(t.IdealMeasures)
		fmt.Fprintf(w, "equivalent ideal k at kmax: ")
		for _, c := range t.Curves[:len(t.Curves)-1] {
			eq := estimator.EquivalentIdealK(sigma, c.Std[len(c.Std)-1])
			fmt.Fprintf(w, "%s≈%.1f  ", c.Label, eq)
		}
		cost := estimator.CostModel{K: r.KMax, Budget: len(t.IdealMeasures)}
		fmt.Fprintf(w, "\ncompute: IdealEst %d trainings vs FixHOptEst %d (%.0fx)\n\n",
			cost.IdealTrainings(), cost.FixHOptTrainings(), cost.Speedup())
	}
	return nil
}

// CheckShape verifies the Section 3.3 ordering at kmax:
// std(All) ≤ std(Init)·slack, and FixHOpt(All) is the best biased variant.
func (r Fig5Result) CheckShape() []string {
	var issues []string
	for _, t := range r.Tasks {
		last := len(t.Curves[0].Std) - 1
		byLabel := map[string]float64{}
		for _, c := range t.Curves {
			byLabel[c.Label] = c.Std[last]
		}
		initStd := byLabel[estimator.SubsetInit.String()]
		allStd := byLabel[estimator.SubsetAll.String()]
		if allStd > initStd*1.25 {
			issues = append(issues, fmt.Sprintf(
				"%s: FixHOpt(All) std %.4g exceeds FixHOpt(Init) %.4g",
				t.Task, allStd, initStd))
		}
	}
	return issues
}

// Decompositions computes the Figure H.5 rows for one task at k = kmax.
func (t Fig5Task) Decompositions(kmax int) ([]estimator.Decomposition, error) {
	mu := stats.Mean(t.IdealMeasures)
	out := []estimator.Decomposition{estimator.DecomposeIdeal(t.IdealMeasures, kmax)}
	for _, sub := range fig5Subsets() {
		rows := t.Realizations[sub.String()]
		d, err := estimator.Decompose(sub.String(), rows, mu)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	// IdealEst(1) reference row.
	one := estimator.DecomposeIdeal(t.IdealMeasures, 1)
	out = append(out, one)
	return out, nil
}

// SimulationModel derives the Figure 6 generative models from the measured
// realizations: σ² from the ideal measures; for the biased model, the
// within-realization variance and the bias variance of FixHOpt(All).
func (t Fig5Task) SimulationModel() (sigma2, biasVar, withinVar float64) {
	sigma2 = stats.Variance(t.IdealMeasures)
	rows := t.Realizations[estimator.SubsetAll.String()]
	if len(rows) == 0 {
		return sigma2, 0, sigma2
	}
	k := len(rows[0])
	means := make([]float64, len(rows))
	within := 0.0
	for i, row := range rows {
		means[i] = stats.Mean(row)
		within += stats.Variance(row)
	}
	withinVar = within / float64(len(rows))
	biasVar = stats.Variance(means) - withinVar/float64(k)
	if biasVar < 0 || math.IsNaN(biasVar) {
		biasVar = 0
	}
	return sigma2, biasVar, withinVar
}

// RenderH5 writes the Figure H.5 decomposition tables.
func (r Fig5Result) RenderH5(w io.Writer) error {
	for _, t := range r.Tasks {
		decs, err := t.Decompositions(r.KMax)
		if err != nil {
			return err
		}
		tb := &report.Table{
			Title:   fmt.Sprintf("Figure H.5 — MSE decomposition at k=%d (%s)", r.KMax, t.Task),
			Headers: []string{"estimator", "bias", "var", "rho", "MSE"},
		}
		for _, d := range decs {
			tb.AddRow(d.Label, d.Bias, d.Var, d.Rho, d.MSE)
		}
		if err := tb.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}
