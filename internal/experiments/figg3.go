package experiments

import (
	"fmt"
	"io"
	"math"

	"varbench/internal/casestudy"
	"varbench/internal/estimator"
	"varbench/internal/report"
	"varbench/internal/stats"
)

// FigG3Result holds the Shapiro-Wilk normality screen of the performance
// distributions (Figure G.3): one p-value per task × source of variation,
// plus an "altogether" row with every ξO source randomized jointly.
type FigG3Result struct {
	Cells []FigG3Cell
}

// FigG3Cell is one task × source entry.
type FigG3Cell struct {
	Task    string
	Source  string
	N       int
	W       float64
	PValue  float64
	MeanPct float64
	// Degenerate marks sources whose measures were all identical (e.g.
	// numerical noise too small to flip any prediction): normality is then
	// untestable, which the paper's pipeline would report as zero variance.
	Degenerate bool
	// Measures holds the raw performance values (for histograms).
	Measures []float64
}

// FigG3 reuses the Figure 1 measurement protocol and tests each measure
// vector for normality.
func FigG3(studies []*casestudy.Study, b Budget, baseSeed uint64) (FigG3Result, error) {
	res := FigG3Result{}
	for _, s := range studies {
		sources := s.Sources()
		for _, v := range sources {
			m, err := estimator.SourceMeasures(s, s.Defaults(), v, b.SeedsPerSource, baseSeed)
			if err != nil {
				return FigG3Result{}, fmt.Errorf("figG3 %s/%s: %w", s.Name(), v, err)
			}
			cell, err := g3Cell(s.Name(), string(v), m)
			if err != nil {
				return FigG3Result{}, err
			}
			res.Cells = append(res.Cells, cell)
		}
		// "Altogether": all ξO sources randomized jointly — equivalent to
		// the biased estimator with SubsetAll but without HOpt, which is
		// exactly one fresh Streams root per run.
		all, err := estimator.AllSourcesMeasures(s, s.Defaults(), b.SeedsPerSource, baseSeed)
		if err != nil {
			return FigG3Result{}, err
		}
		cell, err := g3Cell(s.Name(), "altogether", all)
		if err != nil {
			return FigG3Result{}, err
		}
		res.Cells = append(res.Cells, cell)
	}
	return res, nil
}

func g3Cell(task, source string, m []float64) (FigG3Cell, error) {
	if min, max := stats.MinMax(m); min == max {
		return FigG3Cell{
			Task: task, Source: source, N: len(m),
			W: math.NaN(), PValue: math.NaN(),
			MeanPct: 100 * stats.Mean(m), Degenerate: true,
			Measures: append([]float64(nil), m...),
		}, nil
	}
	w, p, err := stats.ShapiroWilk(m)
	if err != nil {
		return FigG3Cell{}, fmt.Errorf("figG3 %s/%s: %w", task, source, err)
	}
	return FigG3Cell{
		Task: task, Source: source, N: len(m),
		W: w, PValue: p, MeanPct: 100 * stats.Mean(m),
		Measures: append([]float64(nil), m...),
	}, nil
}

// Render writes the normality table.
func (r FigG3Result) Render(w io.Writer) error {
	tb := &report.Table{
		Title:   "Figure G.3 — Shapiro-Wilk normality of performance distributions",
		Headers: []string{"task", "source", "n", "W", "p-value", "normal at 5%?"},
	}
	for _, c := range r.Cells {
		verdict := "yes"
		switch {
		case c.Degenerate:
			verdict = "degenerate (zero variance)"
		case c.PValue < 0.05:
			verdict = "no"
		}
		tb.AddRow(c.Task, c.Source, c.N, c.W, c.PValue, verdict)
	}
	return tb.Render(w)
}

// RenderHistograms writes an ASCII histogram per "altogether" row — the
// terminal stand-in for Figure G.3's kernel-density column.
func (r FigG3Result) RenderHistograms(w io.Writer) error {
	for _, c := range r.Cells {
		if c.Source != "altogether" || c.Degenerate {
			continue
		}
		if err := report.Histogram(w,
			fmt.Sprintf("%s — all ξO randomized", c.Task), c.Measures, 8, 40); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// NormalShare returns the fraction of testable cells consistent with
// normality at 5%.
func (r FigG3Result) NormalShare() float64 {
	n, total := 0, 0
	for _, c := range r.Cells {
		if c.Degenerate {
			continue
		}
		total++
		if c.PValue >= 0.05 {
			n++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(n) / float64(total)
}
