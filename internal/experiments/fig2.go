package experiments

import (
	"fmt"
	"io"
	"math"

	"varbench/internal/casestudy"
	"varbench/internal/estimator"
	"varbench/internal/report"
	"varbench/internal/stats"
	"varbench/internal/xrand"
)

// Fig2Result compares the binomial model of test-set sampling noise with the
// std observed when bootstrapping the data (Figure 2).
type Fig2Result struct {
	Tasks []Fig2Task
	// ModelSizes is the x-axis of the dotted model curves.
	ModelSizes []int
}

// Fig2Task is one case study's entry.
type Fig2Task struct {
	Task        string
	TestSize    int
	MeanAcc     float64
	ObservedStd float64   // std of accuracy under data bootstrap
	ModelStd    float64   // binomial prediction at TestSize
	ModelCurve  []float64 // binomial prediction at each ModelSizes entry
}

// Fig2 runs the data-bootstrap measurement on the classification studies and
// evaluates the binomial model over test sizes 10²..10⁶.
func Fig2(studies []*casestudy.Study, b Budget, baseSeed uint64) (Fig2Result, error) {
	res := Fig2Result{
		ModelSizes: []int{100, 300, 1000, 3000, 10000, 30000, 100000, 1000000},
	}
	for _, s := range studies {
		split, err := s.Split(xrand.New(baseSeed))
		if err != nil {
			return Fig2Result{}, err
		}
		measures, err := estimator.SourceMeasures(s, s.Defaults(), xrand.VarDataSplit,
			b.SeedsPerSource, baseSeed)
		if err != nil {
			return Fig2Result{}, fmt.Errorf("fig2 %s: %w", s.Name(), err)
		}
		mean := stats.Mean(measures)
		task := Fig2Task{
			Task:        s.Name(),
			TestSize:    split.Test.N(),
			MeanAcc:     mean,
			ObservedStd: stats.Std(measures),
			ModelStd:    stats.Binomial{N: split.Test.N(), P: mean}.AccuracyStd(),
		}
		for _, n := range res.ModelSizes {
			task.ModelCurve = append(task.ModelCurve,
				stats.Binomial{N: n, P: mean}.AccuracyStd())
		}
		res.Tasks = append(res.Tasks, task)
	}
	return res, nil
}

// Render writes the comparison table and the model curves plot.
func (r Fig2Result) Render(w io.Writer) error {
	tb := &report.Table{
		Title: "Figure 2 — test-set sampling noise: binomial model vs observed",
		Headers: []string{"task", "n_test", "mean acc",
			"observed std", "binomial std", "ratio obs/model"},
	}
	for _, t := range r.Tasks {
		ratio := 0.0
		if t.ModelStd > 0 {
			ratio = t.ObservedStd / t.ModelStd
		}
		tb.AddRow(t.Task, t.TestSize, t.MeanAcc, t.ObservedStd, t.ModelStd, ratio)
	}
	if err := tb.Render(w); err != nil {
		return err
	}
	var series []report.Series
	for _, t := range r.Tasks {
		x := make([]float64, len(r.ModelSizes))
		for i, n := range r.ModelSizes {
			x[i] = float64(n)
		}
		series = append(series, report.Series{
			Name: fmt.Sprintf("Binom(n', %.2f) [%s]", t.MeanAcc, t.Task),
			X:    logged(x), Y: t.ModelCurve,
		})
	}
	fmt.Fprintln(w)
	return report.LinePlot(w, "std(acc) vs log10(test size)", series, 60, 14)
}

func logged(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = math.Log10(v)
	}
	return out
}
