package experiments

import (
	"fmt"
	"io"

	"varbench/internal/casestudy"
	"varbench/internal/compare"
	"varbench/internal/data"
	"varbench/internal/hpo"
	"varbench/internal/pipeline"
	"varbench/internal/stats"
	"varbench/internal/xrand"
)

// AppendixCResult is the worked example of the paper's Appendix C: the
// complete recommended statistical protocol applied to two concrete
// algorithms on one case study.
type AppendixCResult struct {
	Task         string
	Gamma        float64
	SampleSize   int
	ScoresA      []float64
	ScoresB      []float64
	Result       compare.Result
	ShapiroPValA float64
	ShapiroPValB float64
}

// AppendixC runs the protocol end to end on the tiny study: algorithm A is
// the tuned default configuration, algorithm B trains with a deliberately
// small learning rate. Steps C.1 (randomize all ξO sources), C.2 (pair via
// shared seeds), C.3 (Noether sample size), C.4–C.5 (P(A>B) with percentile
// bootstrap), C.6 (three-zone decision).
func AppendixC(gamma float64, seed uint64) (AppendixCResult, error) {
	task := casestudy.Tiny(seed)
	paramsA := task.Defaults()
	paramsB := task.Defaults()
	paramsB["lr"] = paramsB["lr"] / 12

	n := stats.NoetherSampleSize(gamma, 0.05, 0.05)
	res := AppendixCResult{Task: task.Name(), Gamma: gamma, SampleSize: n}

	measure := func(p hpo.Params, runSeed uint64) (float64, error) {
		streams := xrand.NewStreams(runSeed)
		split, err := task.Split(streams.Get(xrand.VarDataSplit))
		if err != nil {
			return 0, err
		}
		stv, err := data.Concat(split.Train, split.Valid)
		if err != nil {
			return 0, err
		}
		return pipeline.TrainEval(task, p, stv, split.Test, streams)
	}

	seeder := xrand.New(seed ^ 0xAC)
	for i := 0; i < n; i++ {
		runSeed := seeder.Uint64() // shared: pairs the two algorithms
		a, err := measure(paramsA, runSeed)
		if err != nil {
			return AppendixCResult{}, err
		}
		b, err := measure(paramsB, runSeed)
		if err != nil {
			return AppendixCResult{}, err
		}
		res.ScoresA = append(res.ScoresA, a)
		res.ScoresB = append(res.ScoresB, b)
	}

	if _, p, err := stats.ShapiroWilk(res.ScoresA); err == nil {
		res.ShapiroPValA = p
	}
	if _, p, err := stats.ShapiroWilk(res.ScoresB); err == nil {
		res.ShapiroPValB = p
	}

	pairs, err := compare.Pairs(res.ScoresA, res.ScoresB)
	if err != nil {
		return AppendixCResult{}, err
	}
	out, err := compare.PAB{Gamma: gamma}.Evaluate(pairs, xrand.New(seed^0xC1))
	if err != nil {
		return AppendixCResult{}, err
	}
	res.Result = out
	return res, nil
}

// Render narrates each protocol step.
func (r AppendixCResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Appendix C worked example — task %q, γ = %.2f\n\n", r.Task, r.Gamma)
	fmt.Fprintf(w, "C.1  Randomized sources: data split, init, order, dropout, augment\n")
	fmt.Fprintf(w, "     (every run derives all ξO streams from a fresh seed).\n")
	fmt.Fprintf(w, "C.2  Pairing: both algorithms consume the SAME seed per run,\n")
	fmt.Fprintf(w, "     so shared variation cancels in the comparison.\n")
	fmt.Fprintf(w, "C.3  Sample size (Noether, α=β=0.05): N = %d\n", r.SampleSize)
	fmt.Fprintf(w, "     Collected %d paired measurements.\n", len(r.ScoresA))
	fmt.Fprintf(w, "     mean A = %.4f (SW normality p=%.2f), mean B = %.4f (p=%.2f)\n",
		stats.Mean(r.ScoresA), r.ShapiroPValA, stats.Mean(r.ScoresB), r.ShapiroPValB)
	fmt.Fprintf(w, "C.4  P(A>B) = %.3f\n", r.Result.PAB)
	fmt.Fprintf(w, "C.5  Percentile-bootstrap CI: [%.3f, %.3f]\n", r.Result.CI.Lo, r.Result.CI.Hi)
	fmt.Fprintf(w, "C.6  Decision: CI.Lo %.3f vs 0.5 (significance), CI.Hi %.3f vs γ=%.2f (meaningfulness)\n",
		r.Result.CI.Lo, r.Result.CI.Hi, r.Gamma)
	fmt.Fprintf(w, "     → %s\n", r.Result.Decision)
	return nil
}
