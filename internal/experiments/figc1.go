package experiments

import (
	"fmt"
	"io"
	"math"

	"varbench/internal/report"
	"varbench/internal/stats"
)

// FigC1Result is the Noether sample-size determination curve of Figure C.1.
type FigC1Result struct {
	Gammas      []float64
	N           []int
	Recommended struct {
		Gamma float64
		N     int
	}
	Alpha, Beta float64
}

// FigC1 computes the minimal number of paired measurements to detect
// P(A>B) > γ at false-positive rate alpha and false-negative rate beta.
func FigC1(alpha, beta float64) FigC1Result {
	res := FigC1Result{Alpha: alpha, Beta: beta}
	for g := 0.55; g <= 0.9951; g += 0.01 {
		res.Gammas = append(res.Gammas, g)
		res.N = append(res.N, stats.NoetherSampleSize(g, alpha, beta))
	}
	res.Recommended.Gamma = 0.75
	res.Recommended.N = stats.NoetherSampleSize(0.75, alpha, beta)
	return res
}

// Render writes the sample-size table and plot.
func (r FigC1Result) Render(w io.Writer) error {
	tb := &report.Table{
		Title: fmt.Sprintf(
			"Figure C.1 — minimal sample size vs γ (α=%.2g, β=%.2g)", r.Alpha, r.Beta),
		Headers: []string{"gamma", "min N"},
	}
	for i := range r.Gammas {
		if i%5 != 0 && r.Gammas[i] != r.Recommended.Gamma {
			continue
		}
		tb.AddRow(r.Gammas[i], r.N[i])
	}
	if err := tb.Render(w); err != nil {
		return err
	}
	series := report.Series{Name: "min N (capped at 200 for display)"}
	for i := range r.Gammas {
		series.X = append(series.X, r.Gammas[i])
		series.Y = append(series.Y, math.Min(float64(r.N[i]), 200))
	}
	fmt.Fprintln(w)
	if err := report.LinePlot(w, "sample size vs γ", []report.Series{series}, 60, 12); err != nil {
		return err
	}
	fmt.Fprintf(w, "recommended: γ=%.2f → N=%d (paper: 29)\n",
		r.Recommended.Gamma, r.Recommended.N)
	return nil
}
