package experiments

import (
	"fmt"
	"io"
	"runtime"

	"varbench/internal/casestudy"
	"varbench/internal/report"
)

// RenderSpaces writes the hyperparameter search spaces and defaults of every
// case study — the content of Tables 2, 3, 5 and 6/7.
func RenderSpaces(w io.Writer, studies []*casestudy.Study) error {
	for _, s := range studies {
		tb := &report.Table{
			Title:   fmt.Sprintf("Search space — %s", s.Name()),
			Headers: []string{"hyperparameter", "default", "low", "high", "scale"},
		}
		def := s.Defaults()
		for _, d := range s.Space() {
			scale := "linear"
			if d.Log {
				scale = "log"
			}
			tb.AddRow(d.Name, def[d.Name], d.Lo, d.Hi, scale)
		}
		if err := tb.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// RenderEnv writes the computational-environment table (the analogue of
// Tables 1, 4 and 10: the paper records hardware/driver versions because
// they affect reproducibility; here the runtime is pure Go).
func RenderEnv(w io.Writer) error {
	tb := &report.Table{
		Title:   "Computational environment",
		Headers: []string{"component", "value"},
	}
	tb.AddRow("go version", runtime.Version())
	tb.AddRow("GOOS/GOARCH", runtime.GOOS+"/"+runtime.GOARCH)
	tb.AddRow("logical CPUs", runtime.NumCPU())
	tb.AddRow("GOMAXPROCS", runtime.GOMAXPROCS(0))
	tb.AddRow("numerics", "float64 throughout; deterministic unless ReduceNondeterministic")
	return tb.Render(w)
}
