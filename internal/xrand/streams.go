package xrand

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// A Var names one source of variation in a learning pipeline, following the
// paper's decomposition ξ = ξO ∪ ξH (Section 2.1): the learning-procedure
// sources ξO (data split, weight initialization, data visit order, dropout
// masks, stochastic data augmentation) and the hyperparameter-optimization
// sources ξH (search randomness and its internal data splitting).
type Var string

// The canonical sources of variation studied in the paper (Figure 1).
const (
	// VarDataSplit seeds the bootstrap / out-of-bootstrap resampling of the
	// finite dataset into train+valid and test sets.
	VarDataSplit Var = "data-split"
	// VarInit seeds model parameter initialization.
	VarInit Var = "weights-init"
	// VarOrder seeds the visit order of examples in SGD.
	VarOrder Var = "data-order"
	// VarDropout seeds dropout masks.
	VarDropout Var = "dropout"
	// VarAugment seeds stochastic data augmentation.
	VarAugment Var = "data-augment"
	// VarHOpt seeds the hyperparameter-optimization search (ξH): random
	// search draws, noisy-grid perturbation, BayesOpt candidate sampling.
	VarHOpt Var = "hopt"
	// VarHOptSplit seeds the train/validation splitting internal to HOpt.
	VarHOptSplit Var = "hopt-split"
	// VarNumericalNoise is a pseudo-source: it names runs in which every
	// seed is held fixed and only nondeterministic floating-point
	// accumulation varies (Figure 1's "Numerical noise", Appendix A). It has
	// no stream of its own.
	VarNumericalNoise Var = "numerical-noise"
)

// LearningVars lists the ξO sources in the order used by Figure 1.
func LearningVars() []Var {
	return []Var{VarDataSplit, VarAugment, VarOrder, VarInit, VarDropout}
}

// AllVars lists every source, ξO then ξH.
func AllVars() []Var {
	return append(LearningVars(), VarHOpt, VarHOptSplit)
}

// Streams hands out one independent Source per source of variation, all
// derived from per-source seeds. It implements the paper's seeding protocol:
// an experiment that probes one source assigns it a fresh seed while keeping
// all other sources' seeds fixed.
type Streams struct {
	seeds   map[Var]uint64
	sources map[Var]*Source
}

// NewStreams builds a stream set in which every known source is seeded
// deterministically from root. Individual sources can then be re-seeded with
// Reseed to vary exactly one ξ component.
func NewStreams(root uint64) *Streams {
	s := &Streams{
		seeds:   make(map[Var]uint64),
		sources: make(map[Var]*Source),
	}
	base := New(root)
	for _, v := range AllVars() {
		s.seeds[v] = base.Split(string(v)).Uint64()
	}
	return s
}

// Clone returns a deep copy with identical seeds but fresh, unconsumed
// sources. Used to rerun a pipeline under the exact same ξ.
func (s *Streams) Clone() *Streams {
	c := &Streams{
		seeds:   make(map[Var]uint64, len(s.seeds)),
		sources: make(map[Var]*Source),
	}
	for v, seed := range s.seeds { //lint:allow nondeterm(map-to-map copy; no order-dependent state escapes)
		c.seeds[v] = seed
	}
	return c
}

// Reseed assigns a new seed to one source of variation, resetting its stream.
func (s *Streams) Reseed(v Var, seed uint64) {
	s.seeds[v] = seed
	delete(s.sources, v)
}

// ReseedAll assigns fresh seeds, derived from root, to every listed source.
func (s *Streams) ReseedAll(root uint64, vars ...Var) {
	base := New(root)
	for _, v := range vars {
		s.Reseed(v, base.Split(string(v)).Uint64())
	}
}

// Seed reports the seed currently assigned to v.
func (s *Streams) Seed(v Var) uint64 { return s.seeds[v] }

// Get returns the stream for source v, creating it lazily from its seed.
// Repeated calls return the same stream instance (it keeps its position).
func (s *Streams) Get(v Var) *Source {
	if src, ok := s.sources[v]; ok {
		return src
	}
	seed, ok := s.seeds[v]
	if !ok {
		// Unknown custom label: derive deterministically so user-defined
		// sources are still reproducible.
		seed = hashLabel(string(v))
		s.seeds[v] = seed
	}
	src := New(seed)
	s.sources[v] = src
	return src
}

// Checkpoint serializes the seeds and the live stream states so a run can be
// resumed mid-training with bit-identical behaviour (the Appendix A test
// protocol: interrupt after each epoch, resume later, demand identical
// results).
func (s *Streams) Checkpoint() []byte {
	vars := make([]string, 0, len(s.seeds))
	for v := range s.seeds { //lint:allow nondeterm(keys are sorted below before any byte is serialized)
		vars = append(vars, string(v))
	}
	sort.Strings(vars)
	var buf []byte
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(vars)))
	for _, v := range vars {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v)))
		buf = append(buf, v...)
		buf = binary.LittleEndian.AppendUint64(buf, s.seeds[Var(v)])
		if src, ok := s.sources[Var(v)]; ok {
			buf = append(buf, 1)
			buf = append(buf, src.State()...)
		} else {
			buf = append(buf, 0)
		}
	}
	return buf
}

// RestoreCheckpoint rebuilds the stream set from a Checkpoint buffer.
func RestoreCheckpoint(data []byte) (*Streams, error) {
	s := &Streams{
		seeds:   make(map[Var]uint64),
		sources: make(map[Var]*Source),
	}
	if len(data) < 4 {
		return nil, fmt.Errorf("xrand: truncated checkpoint")
	}
	n := int(binary.LittleEndian.Uint32(data))
	data = data[4:]
	for i := 0; i < n; i++ {
		if len(data) < 4 {
			return nil, fmt.Errorf("xrand: truncated checkpoint entry %d", i)
		}
		l := int(binary.LittleEndian.Uint32(data))
		data = data[4:]
		if len(data) < l+9 {
			return nil, fmt.Errorf("xrand: truncated checkpoint entry %d", i)
		}
		v := Var(data[:l])
		data = data[l:]
		s.seeds[v] = binary.LittleEndian.Uint64(data)
		data = data[8:]
		hasState := data[0] == 1
		data = data[1:]
		if hasState {
			if len(data) < stateSize {
				return nil, fmt.Errorf("xrand: truncated stream state for %q", v)
			}
			src := New(0)
			if err := src.Restore(data[:stateSize]); err != nil {
				return nil, err
			}
			s.sources[v] = src
			data = data[stateSize:]
		}
	}
	return s, nil
}
