// Package xrand provides deterministic, splittable and checkpointable random
// number generation for benchmark experiments.
//
// The paper (Bouthillier et al., MLSys 2021, Appendix A) stresses that every
// source of variation in a learning pipeline must be independently seedable
// and that RNG state must survive checkpoint/resume so that experiments are
// bit-reproducible. This package gives each source of variation (ξ component)
// its own independent stream derived from a root seed, and every stream can
// be saved and restored exactly.
//
// The generator is xoshiro256** seeded through SplitMix64, a standard,
// well-tested combination with period 2^256-1 and no observable correlation
// between streams derived from distinct labels.
package xrand

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
)

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used to expand seeds into full xoshiro state vectors.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Source is a deterministic pseudo-random stream. It is not safe for
// concurrent use; derive one Source per goroutine with Split.
type Source struct {
	s [4]uint64
	// cached second value of the last Box-Muller pair, see NormFloat64.
	gauss    float64
	hasGauss bool
}

// New returns a Source seeded from seed. Distinct seeds yield streams with no
// detectable correlation.
func New(seed uint64) *Source {
	var src Source
	src.Seed(seed)
	return &src
}

// Seed resets the stream to the deterministic state derived from seed,
// discarding any cached values.
func (r *Source) Seed(seed uint64) {
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	r.gauss = 0
	r.hasGauss = false
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Int63 returns a non-negative 63-bit integer.
func (r *Source) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform sample in [0, 1) with 53 bits of precision.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform sample in [lo, hi).
func (r *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// LogUniform returns a sample whose logarithm is uniform over
// [log(lo), log(hi)). Both bounds must be positive.
func (r *Source) LogUniform(lo, hi float64) float64 {
	return math.Exp(r.Uniform(math.Log(lo), math.Log(hi)))
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Lemire's nearly-divisionless method keeps the distribution exactly uniform.
// The first draw is accepted with probability 1 - n/2^64, so the loop lives
// in intnRetry and this fast path stays small enough to inline into the
// bootstrap resampling loops.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	bound := uint64(n)
	hi, lo := bits.Mul64(r.Uint64(), bound)
	if lo >= bound || lo >= (-bound)%bound {
		return int(hi)
	}
	return r.intnRetry(bound)
}

// intnRetry redraws until Lemire's acceptance test passes. It consumes the
// stream exactly like the historical rejection loop: one Uint64 per attempt.
func (r *Source) intnRetry(bound uint64) int {
	thresh := (-bound) % bound
	for {
		hi, lo := bits.Mul64(r.Uint64(), bound)
		if lo >= thresh {
			return int(hi)
		}
	}
}

// Bulk with-replacement sampling for the bootstrap kernels. Each Sample*
// call is observationally identical to the equivalent sequence of Intn
// draws — same Uint64 consumption (one per Lemire attempt), same accepted
// indices, and for the accumulating variants the same floating-point (or
// integer) addition order — but runs the generator on a register-local
// state copy with the rejection threshold hoisted, removing the two
// non-inlinable calls per draw that dominate the per-element cost. The
// xoshiro step below must stay in sync with Uint64; TestSampleBulkMatchesIntn
// pins the equivalence.
//
// Lemire's acceptance test `lo >= bound || lo >= (-bound)%bound` reduces to
// `lo >= thresh` with thresh = (-bound)%bound, since thresh < bound: both
// sides of the || are implied by it and imply it respectively, so hoisting
// thresh changes no accept/reject decision.

// SampleSum returns the sum of n with-replacement draws from x, added in
// draw order: bit-identical to `for i := 0; i < n; i++ { sum += x[r.Intn(len(x))] }`.
// It panics if x is empty and n > 0, as Intn would.
func (r *Source) SampleSum(x []float64, n int) float64 {
	return sampleSumOf(r, x, n)
}

// SampleSumInt is SampleSum over integer weights: the sum of n
// with-replacement draws from w, accumulated in draw order. Integer
// accumulation breaks the floating-point add latency chain for statistics
// whose per-element contributions are exact (the P(A>B) win count).
func (r *Source) SampleSumInt(w []int64, n int) int64 {
	return sampleSumOf(r, w, n)
}

// sampleSumOf is the shared accumulator loop behind SampleSum and
// SampleSumInt. float64 and int64 stencil to separate instantiations, so
// the register-local generator loop survives the generic factoring.
func sampleSumOf[T float64 | int64](r *Source, x []T, n int) T {
	var sum T
	if len(x) == 0 {
		if n > 0 {
			panic("xrand: bulk sample from an empty sample")
		}
		return sum
	}
	bound := uint64(len(x))
	thresh := (-bound) % bound
	s0, s1, s2, s3 := r.s[0], r.s[1], r.s[2], r.s[3]
	for i := 0; i < n; i++ {
		for {
			res := rotl(s1*5, 7) * 9
			t := s1 << 17
			s2 ^= s0
			s3 ^= s1
			s1 ^= s2
			s0 ^= s3
			s2 ^= t
			s3 = rotl(s3, 45)
			hi, lo := bits.Mul64(res, bound)
			if lo >= thresh {
				sum += x[hi]
				break
			}
		}
	}
	r.s[0], r.s[1], r.s[2], r.s[3] = s0, s1, s2, s3
	return sum
}

// SampleInto fills dst with with-replacement draws from src:
// bit-identical to `for i := range dst { dst[i] = src[r.Intn(len(src))] }`.
// It is generic so that element types beyond float64 (e.g. measurement
// pairs) materialize resamples through the same bulk path. It panics if src
// is empty and dst is not, as Intn would.
func SampleInto[T any](r *Source, dst, src []T) {
	if len(src) == 0 {
		if len(dst) > 0 {
			panic("xrand: SampleInto from an empty sample")
		}
		return
	}
	bound := uint64(len(src))
	thresh := (-bound) % bound
	s0, s1, s2, s3 := r.s[0], r.s[1], r.s[2], r.s[3]
	for i := range dst {
		for {
			res := rotl(s1*5, 7) * 9
			t := s1 << 17
			s2 ^= s0
			s3 ^= s1
			s1 ^= s2
			s0 ^= s3
			s2 ^= t
			s3 = rotl(s3, 45)
			hi, lo := bits.Mul64(res, bound)
			if lo >= thresh {
				dst[i] = src[hi]
				break
			}
		}
	}
	r.s[0], r.s[1], r.s[2], r.s[3] = s0, s1, s2, s3
}

// NormFloat64 returns a standard normal sample using the Marsaglia polar
// method. The second value of each generated pair is cached, so consecutive
// draws consume a deterministic amount of the underlying stream.
func (r *Source) NormFloat64() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.gauss = v * f
		r.hasGauss = true
		return u * f
	}
}

// Normal returns a sample from N(mu, sigma^2).
func (r *Source) Normal(mu, sigma float64) float64 {
	return mu + sigma*r.NormFloat64()
}

// Bernoulli returns true with probability p.
func (r *Source) Bernoulli(p float64) bool { return r.Float64() < p }

// Binomial returns the number of successes in n Bernoulli(p) trials.
// Intended for the moderate n used in benchmark simulation; O(n).
func (r *Source) Binomial(n int, p float64) int {
	k := 0
	for i := 0; i < n; i++ {
		if r.Float64() < p {
			k++
		}
	}
	return k
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles p in place (Fisher-Yates).
func (r *Source) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle performs a Fisher-Yates shuffle of n elements through swap.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Split derives an independent child stream identified by label. The child
// depends only on the parent's original identity (not on how much of the
// parent has been consumed), so pipeline components may be reordered without
// perturbing one another's streams: this is what lets the benchmark vary one
// source of variation while holding all others fixed.
func (r *Source) Split(label string) *Source {
	return New(r.splitSeed(hashLabel(label)))
}

// SplitSeedBytes returns the seed of the child stream Split(string(label))
// would create, without allocating: Seed-ing a Source with it continues the
// exact same sequence as the equivalent Split. It exists for hot paths (the
// sharded bootstrap's per-shard streams) that derive many child streams from
// labels built in a reusable byte buffer.
func (r *Source) SplitSeedBytes(label []byte) uint64 {
	return r.splitSeed(hashLabel(label))
}

// splitSeed derives a child seed from a label hash.
// Mix the parent identity (its seed-derived first state word is already
// consumed; use the full current state hashed with the label) — but to be
// consumption-independent we instead fold the label hash with the
// original state snapshot stored at seed time. Simpler and sufficient:
// child seed = label hash mixed with parent's state[3] at creation.
// To guarantee consumption independence Split must be called on a
// dedicated, never-consumed parent; Streams (below) enforces that.
func (r *Source) splitSeed(h uint64) uint64 {
	return h ^ r.s[0] ^ rotl(r.s[1], 13) ^ rotl(r.s[2], 29) ^ rotl(r.s[3], 47)
}

func hashLabel[T string | []byte](label T) uint64 {
	// FNV-1a 64-bit.
	const offset = 0xcbf29ce484222325
	const prime = 0x100000001b3
	h := uint64(offset)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime
	}
	return h
}

// stateSize is the encoded size of a Source state in bytes.
const stateSize = 4*8 + 8 + 1

// State encodes the complete generator state, including the cached normal
// value, so that a restored Source continues the exact same sequence.
func (r *Source) State() []byte {
	buf := make([]byte, stateSize)
	for i, w := range r.s {
		binary.LittleEndian.PutUint64(buf[i*8:], w)
	}
	binary.LittleEndian.PutUint64(buf[32:], math.Float64bits(r.gauss))
	if r.hasGauss {
		buf[40] = 1
	}
	return buf
}

// Restore replaces the generator state with a state produced by State.
func (r *Source) Restore(state []byte) error {
	if len(state) != stateSize {
		return fmt.Errorf("xrand: bad state size %d, want %d", len(state), stateSize)
	}
	for i := range r.s {
		r.s[i] = binary.LittleEndian.Uint64(state[i*8:])
	}
	r.gauss = math.Float64frombits(binary.LittleEndian.Uint64(state[32:]))
	r.hasGauss = state[40] == 1
	return nil
}
