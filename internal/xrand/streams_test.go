package xrand

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestStreamsIndependentSources(t *testing.T) {
	s := NewStreams(1)
	init := s.Get(VarInit)
	order := s.Get(VarOrder)
	same := 0
	for i := 0; i < 1000; i++ {
		if init.Uint64() == order.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct sources collided %d times", same)
	}
}

func TestStreamsReseedVariesOneSource(t *testing.T) {
	// Vary VarInit only; every other source must produce identical output.
	a := NewStreams(7)
	b := NewStreams(7)
	b.Reseed(VarInit, 12345)

	for _, v := range AllVars() {
		x := a.Get(v).Uint64()
		y := b.Get(v).Uint64()
		if v == VarInit {
			if x == y {
				t.Errorf("reseeded source %s did not change", v)
			}
		} else if x != y {
			t.Errorf("untouched source %s changed after reseeding %s", v, VarInit)
		}
	}
}

func TestStreamsCloneRestartsStreams(t *testing.T) {
	s := NewStreams(3)
	first := s.Get(VarDropout).Uint64()
	s.Get(VarDropout).Uint64() // consume more
	c := s.Clone()
	if got := c.Get(VarDropout).Uint64(); got != first {
		t.Fatalf("clone did not restart stream: got %d want %d", got, first)
	}
}

func TestStreamsGetIsStateful(t *testing.T) {
	s := NewStreams(3)
	a := s.Get(VarInit).Uint64()
	b := s.Get(VarInit).Uint64()
	if a == b {
		t.Fatal("repeated Get returned a restarted stream")
	}
}

func TestStreamsCustomLabel(t *testing.T) {
	s := NewStreams(5)
	v := Var("my-custom-noise")
	a := s.Get(v).Uint64()
	s2 := NewStreams(99) // different root: custom labels hash independently of root
	b := s2.Get(v).Uint64()
	if a != b {
		t.Fatal("custom label stream not deterministic across stream sets")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	f := func(root uint64, consume uint8) bool {
		s := NewStreams(root)
		for i := 0; i < int(consume); i++ {
			s.Get(VarInit).NormFloat64()
			s.Get(VarOrder).Uint64()
		}
		ckpt := s.Checkpoint()
		restored, err := RestoreCheckpoint(ckpt)
		if err != nil {
			return false
		}
		for _, v := range AllVars() {
			for i := 0; i < 10; i++ {
				if s.Get(v).Uint64() != restored.Get(v).Uint64() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCheckpointStable(t *testing.T) {
	s := NewStreams(11)
	s.Get(VarInit).Uint64()
	a := s.Checkpoint()
	b := s.Checkpoint()
	if !bytes.Equal(a, b) {
		t.Fatal("checkpoint is not deterministic")
	}
}

func TestRestoreCheckpointRejectsGarbage(t *testing.T) {
	if _, err := RestoreCheckpoint([]byte{1, 2}); err == nil {
		t.Fatal("accepted truncated checkpoint")
	}
	// A length prefix promising entries that are not there.
	if _, err := RestoreCheckpoint([]byte{5, 0, 0, 0, 1}); err == nil {
		t.Fatal("accepted checkpoint with missing entries")
	}
}

func TestLearningVarsSubsetOfAllVars(t *testing.T) {
	all := make(map[Var]bool)
	for _, v := range AllVars() {
		all[v] = true
	}
	for _, v := range LearningVars() {
		if !all[v] {
			t.Errorf("learning var %s missing from AllVars", v)
		}
	}
	if len(AllVars()) != len(LearningVars())+2 {
		t.Errorf("AllVars should add exactly the two ξH sources")
	}
}

func TestResumeMidSequence(t *testing.T) {
	// The Appendix A protocol: interrupt, restore, and demand the exact
	// continuation of every stream.
	s := NewStreams(21)
	var reference []uint64
	for i := 0; i < 5; i++ {
		reference = append(reference, s.Get(VarAugment).Uint64())
	}

	s2 := NewStreams(21)
	for i := 0; i < 2; i++ {
		if got := s2.Get(VarAugment).Uint64(); got != reference[i] {
			t.Fatalf("prefix diverged at %d", i)
		}
	}
	ckpt := s2.Checkpoint()
	s3, err := RestoreCheckpoint(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 2; i < 5; i++ {
		if got := s3.Get(VarAugment).Uint64(); got != reference[i] {
			t.Fatalf("resumed stream diverged at %d", i)
		}
	}
}
