package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with same seed diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds collided %d/1000 times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Moments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		f := r.Float64()
		sum += f
		sq += f * f
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.005 {
		t.Errorf("uniform variance = %v, want ~%v", variance, 1.0/12)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sq, cube float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sq += x * x
		cube += x * x * x
	}
	mean := sum / n
	variance := sq/n - mean*mean
	skew := cube / n
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
	if math.Abs(skew) > 0.05 {
		t.Errorf("normal third moment = %v, want ~0", skew)
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(17)
	const n, buckets = 100000, 10
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d deviates too far from %v", b, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUniformBounds(t *testing.T) {
	r := New(19)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(-3, 5)
		if v < -3 || v >= 5 {
			t.Fatalf("Uniform(-3,5) out of range: %v", v)
		}
	}
}

func TestLogUniform(t *testing.T) {
	r := New(23)
	lo, hi := 1e-4, 1e-1
	belowMid := 0
	const n = 20000
	mid := math.Sqrt(lo * hi) // geometric midpoint
	for i := 0; i < n; i++ {
		v := r.LogUniform(lo, hi)
		if v < lo || v >= hi {
			t.Fatalf("LogUniform out of range: %v", v)
		}
		if v < mid {
			belowMid++
		}
	}
	// Log-uniform puts half the mass below the geometric midpoint.
	if math.Abs(float64(belowMid)/n-0.5) > 0.02 {
		t.Errorf("log-uniform median fraction = %v, want ~0.5", float64(belowMid)/n)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		n := 1 + int(seed%57)
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStateRoundTrip(t *testing.T) {
	f := func(seed uint64, warmup uint8) bool {
		r := New(seed)
		for i := 0; i < int(warmup); i++ {
			r.NormFloat64() // exercises the gauss cache
		}
		state := r.State()
		clone := New(0)
		if err := clone.Restore(state); err != nil {
			return false
		}
		for i := 0; i < 100; i++ {
			if r.NormFloat64() != clone.NormFloat64() {
				return false
			}
			if r.Uint64() != clone.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRestoreRejectsBadSize(t *testing.T) {
	if err := New(0).Restore(make([]byte, 3)); err == nil {
		t.Fatal("Restore accepted truncated state")
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(99)
	a := root.Split("alpha")
	b := root.Split("beta")
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams collided %d/1000 times", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(5).Split("x")
	b := New(5).Split("x")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same split label produced different streams")
		}
	}
}

func TestBinomialMoments(t *testing.T) {
	r := New(31)
	const n, trials = 100, 20000
	p := 0.3
	var sum, sq float64
	for i := 0; i < trials; i++ {
		k := float64(r.Binomial(n, p))
		sum += k
		sq += k * k
	}
	mean := sum / trials
	variance := sq/trials - mean*mean
	if math.Abs(mean-float64(n)*p) > 0.3 {
		t.Errorf("binomial mean = %v, want %v", mean, float64(n)*p)
	}
	wantVar := float64(n) * p * (1 - p)
	if math.Abs(variance-wantVar) > 1.5 {
		t.Errorf("binomial variance = %v, want %v", variance, wantVar)
	}
}

func TestShuffleIntsPreservesMultiset(t *testing.T) {
	r := New(41)
	p := []int{1, 1, 2, 3, 5, 8, 13}
	sum := 0
	for _, v := range p {
		sum += v
	}
	r.ShuffleInts(p)
	got := 0
	for _, v := range p {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed contents: sum %d != %d", got, sum)
	}
}

func TestSplitSeedBytesMatchesSplit(t *testing.T) {
	labels := []string{"", "bootstrap/shard/0", "bootstrap/shard/63", "dataset/cifar10", "变"}
	for _, seed := range []uint64{0, 1, 42, 1 << 63} {
		parent := New(seed)
		for _, label := range labels {
			want := New(seed).Split(label)
			var got Source
			got.Seed(parent.SplitSeedBytes([]byte(label)))
			for i := 0; i < 8; i++ {
				if g, w := got.Uint64(), want.Uint64(); g != w {
					t.Fatalf("seed %d label %q draw %d: SplitSeedBytes stream %d != Split stream %d",
						seed, label, i, g, w)
				}
			}
		}
	}
}

// TestSampleBulkMatchesIntn pins the bulk samplers to the sequential Intn
// contract: same accepted indices, same accumulation order, same stream
// consumption — the invariant the fused bootstrap kernels rely on. Small n
// near powers of two exercises the Lemire rejection path.
func TestSampleBulkMatchesIntn(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 29, 64, 1000} {
		x := make([]float64, n)
		w := make([]int64, n)
		ref := New(uint64(n))
		for i := range x {
			x[i] = ref.NormFloat64()
			w[i] = int64(ref.Intn(5))
		}
		for _, draws := range []int{0, 1, 5, 200} {
			seed := uint64(100*n + draws)
			// SampleSum vs sequential float accumulation.
			ra, rb := New(seed), New(seed)
			sum := 0.0
			for i := 0; i < draws; i++ {
				sum += x[ra.Intn(n)]
			}
			if got := rb.SampleSum(x, draws); math.Float64bits(got) != math.Float64bits(sum) {
				t.Fatalf("n=%d draws=%d: SampleSum %v != sequential %v", n, draws, got, sum)
			}
			if ra.Uint64() != rb.Uint64() {
				t.Fatalf("n=%d draws=%d: SampleSum consumed the stream differently", n, draws)
			}
			// SampleSumInt vs sequential integer accumulation.
			ra, rb = New(seed), New(seed)
			var isum int64
			for i := 0; i < draws; i++ {
				isum += w[ra.Intn(n)]
			}
			if got := rb.SampleSumInt(w, draws); got != isum {
				t.Fatalf("n=%d draws=%d: SampleSumInt %v != sequential %v", n, draws, got, isum)
			}
			if ra.Uint64() != rb.Uint64() {
				t.Fatalf("n=%d draws=%d: SampleSumInt consumed the stream differently", n, draws)
			}
			// SampleInto vs sequential gather, on a non-float64 element type.
			type pair struct{ a, b float64 }
			src := make([]pair, n)
			for i := range src {
				src[i] = pair{x[i], -x[i]}
			}
			ra, rb = New(seed), New(seed)
			want := make([]pair, draws)
			for i := range want {
				want[i] = src[ra.Intn(n)]
			}
			got := make([]pair, draws)
			SampleInto(rb, got, src)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d draws=%d: SampleInto[%d] = %v, want %v", n, draws, i, got[i], want[i])
				}
			}
			if ra.Uint64() != rb.Uint64() {
				t.Fatalf("n=%d draws=%d: SampleInto consumed the stream differently", n, draws)
			}
		}
	}
}

func TestSampleBulkEmptyPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s on empty sample did not panic", name)
			}
		}()
		f()
	}
	r := New(1)
	mustPanic("SampleSum", func() { r.SampleSum(nil, 3) })
	mustPanic("SampleSumInt", func() { r.SampleSumInt(nil, 3) })
	mustPanic("SampleInto", func() { SampleInto(r, make([]float64, 2), nil) })
	// Zero draws from an empty sample is a no-op, like zero Intn calls.
	if got := r.SampleSum(nil, 0); got != 0 {
		t.Errorf("SampleSum(nil, 0) = %v, want 0", got)
	}
	before := New(1).Uint64()
	if r.Uint64() != before {
		t.Error("empty-sample panics consumed randomness")
	}
}
