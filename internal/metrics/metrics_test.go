package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"varbench/internal/xrand"
)

func TestAccuracy(t *testing.T) {
	if got := Accuracy([]int{1, 2, 3, 4}, []int{1, 2, 0, 4}); got != 0.75 {
		t.Errorf("Accuracy = %v", got)
	}
	if got := ErrorRate([]int{1, 2, 3, 4}, []int{1, 2, 0, 4}); got != 0.25 {
		t.Errorf("ErrorRate = %v", got)
	}
	if !math.IsNaN(Accuracy(nil, nil)) {
		t.Error("empty accuracy should be NaN")
	}
	if !math.IsNaN(Accuracy([]int{1}, []int{1, 2})) {
		t.Error("mismatched lengths should be NaN")
	}
}

func TestMeanIoUPerfect(t *testing.T) {
	p := []int{0, 1, 2, 1, 0}
	if got := MeanIoU(p, p, 3); got != 1 {
		t.Errorf("perfect mIoU = %v", got)
	}
}

func TestMeanIoUKnown(t *testing.T) {
	// pred:   0 0 1 1
	// target: 0 1 1 1
	// class0: inter=1, union=2 → 0.5 ; class1: inter=2, union=3 → 2/3.
	got := MeanIoU([]int{0, 0, 1, 1}, []int{0, 1, 1, 1}, 2)
	want := (0.5 + 2.0/3) / 2
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("mIoU = %v, want %v", got, want)
	}
}

func TestMeanIoUSkipsAbsentClasses(t *testing.T) {
	// Class 2 never appears: should not drag the mean down.
	got := MeanIoU([]int{0, 1}, []int{0, 1}, 3)
	if got != 1 {
		t.Errorf("mIoU with absent class = %v, want 1", got)
	}
}

func TestMeanIoUBounds(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 1 + r.Intn(100)
		classes := 2 + r.Intn(5)
		p := make([]int, n)
		g := make([]int, n)
		for i := range p {
			p[i] = r.Intn(classes)
			g[i] = r.Intn(classes)
		}
		iou := MeanIoU(p, g, classes)
		return iou >= 0 && iou <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAUCPerfectAndRandom(t *testing.T) {
	score := []float64{0.9, 0.8, 0.3, 0.1}
	pos := []bool{true, true, false, false}
	if got := AUC(score, pos); got != 1 {
		t.Errorf("perfect AUC = %v", got)
	}
	// Inverted scores: AUC = 0.
	if got := AUC([]float64{0.1, 0.2, 0.8, 0.9}, pos); got != 0 {
		t.Errorf("inverted AUC = %v", got)
	}
	// Ties everywhere: AUC = 0.5.
	if got := AUC([]float64{1, 1, 1, 1}, pos); got != 0.5 {
		t.Errorf("tied AUC = %v", got)
	}
	if !math.IsNaN(AUC(score, []bool{true, true, true, true})) {
		t.Error("single-class AUC should be NaN")
	}
}

func TestAUCMatchesProbabilisticInterpretation(t *testing.T) {
	// AUC = P(score_pos > score_neg) + 0.5·P(tie), checked by brute force.
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 4 + r.Intn(40)
		score := make([]float64, n)
		pos := make([]bool, n)
		npos := 0
		for i := range score {
			score[i] = float64(r.Intn(6))
			pos[i] = r.Bernoulli(0.5)
			if pos[i] {
				npos++
			}
		}
		if npos == 0 || npos == n {
			return true
		}
		var wins, pairs float64
		for i := range score {
			if !pos[i] {
				continue
			}
			for j := range score {
				if pos[j] {
					continue
				}
				pairs++
				switch {
				case score[i] > score[j]:
					wins++
				case score[i] == score[j]:
					wins += 0.5
				}
			}
		}
		return math.Abs(AUC(score, pos)-wins/pairs) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 4, 6, 8}
	if got := Pearson(x, y); math.Abs(got-1) > 1e-12 {
		t.Errorf("Pearson = %v", got)
	}
	if !math.IsNaN(Pearson(x, []float64{1, 1, 1, 1})) {
		t.Error("constant target should give NaN")
	}
}

func TestMSE(t *testing.T) {
	if got := MSE([]float64{1, 2}, []float64{0, 4}); got != (1.0+4.0)/2 {
		t.Errorf("MSE = %v", got)
	}
}
