// Package metrics implements the evaluation metrics of the five case
// studies: classification accuracy / error rate (CIFAR10, GLUE tasks), mean
// intersection-over-union (PascalVOC), and ROC-AUC plus Pearson correlation
// (MHC binding affinity). All metrics are plain functions of predictions and
// targets so they compose with any model substrate.
package metrics

import (
	"math"
	"sort"
)

// Accuracy returns the fraction of matching labels.
func Accuracy(pred, target []int) float64 {
	if len(pred) != len(target) || len(pred) == 0 {
		return math.NaN()
	}
	hits := 0
	for i := range pred {
		if pred[i] == target[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(pred))
}

// ErrorRate returns 1 - Accuracy.
func ErrorRate(pred, target []int) float64 { return 1 - Accuracy(pred, target) }

// MeanIoU returns the mean intersection-over-union across classes, the
// PascalVOC segmentation metric: for each class, |pred∩target| /
// |pred∪target| over all cells, averaged over classes that appear in either
// prediction or target.
func MeanIoU(pred, target []int, classes int) float64 {
	if len(pred) != len(target) || len(pred) == 0 {
		return math.NaN()
	}
	inter := make([]int, classes)
	union := make([]int, classes)
	for i := range pred {
		p, t := pred[i], target[i]
		if p == t {
			inter[p]++
			union[p]++
			continue
		}
		union[p]++
		union[t]++
	}
	sum, n := 0.0, 0
	for c := 0; c < classes; c++ {
		if union[c] == 0 {
			continue // class absent everywhere: conventionally skipped
		}
		sum += float64(inter[c]) / float64(union[c])
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// AUC returns the area under the ROC curve for scores against binary labels
// (true = positive), computed with the rank formulation (equivalent to the
// Mann-Whitney statistic), ties handled by midranks.
func AUC(score []float64, positive []bool) float64 {
	n := len(score)
	if n == 0 || len(positive) != n {
		return math.NaN()
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return score[idx[a]] < score[idx[b]] })
	// Midranks.
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && score[idx[j+1]] == score[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	var rankSum float64
	var nPos int
	for i, p := range positive {
		if p {
			rankSum += ranks[i]
			nPos++
		}
	}
	nNeg := n - nPos
	if nPos == 0 || nNeg == 0 {
		return math.NaN()
	}
	u := rankSum - float64(nPos)*float64(nPos+1)/2
	return u / (float64(nPos) * float64(nNeg))
}

// Pearson returns the Pearson correlation coefficient between predictions
// and targets (the PCC column of Table 8).
func Pearson(pred, target []float64) float64 {
	n := len(pred)
	if n != len(target) || n < 2 {
		return math.NaN()
	}
	var mx, my float64
	for i := range pred {
		mx += pred[i]
		my += target[i]
	}
	mx /= float64(n)
	my /= float64(n)
	var sxy, sxx, syy float64
	for i := range pred {
		dx, dy := pred[i]-mx, target[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// MSE returns the mean squared error.
func MSE(pred, target []float64) float64 {
	if len(pred) != len(target) || len(pred) == 0 {
		return math.NaN()
	}
	s := 0.0
	for i := range pred {
		d := pred[i] - target[i]
		s += d * d
	}
	return s / float64(len(pred))
}
