package gp

import (
	"math"
	"testing"

	"varbench/internal/tensor"
	"varbench/internal/xrand"
)

func gridX(vals ...float64) *tensor.Matrix {
	m := tensor.NewMatrix(len(vals), 1)
	for i, v := range vals {
		m.Set(i, 0, v)
	}
	return m
}

func TestGPInterpolatesWithSmallNoise(t *testing.T) {
	x := gridX(0, 1, 2, 3, 4)
	y := []float64{0, 1, 0, -1, 0} // one period of a sine-ish shape
	g, err := Fit(x, y, RBF{LengthScale: 1, Variance: 1}, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < x.Rows; i++ {
		mu, v := g.Predict(x.Row(i))
		if math.Abs(mu-y[i]) > 1e-3 {
			t.Errorf("GP does not interpolate at %v: %v vs %v", x.Row(i), mu, y[i])
		}
		if v > 1e-3 {
			t.Errorf("variance at training point = %v, want ≈0", v)
		}
	}
}

func TestGPVarianceGrowsAwayFromData(t *testing.T) {
	x := gridX(0, 1)
	y := []float64{0, 1}
	g, err := Fit(x, y, RBF{LengthScale: 0.5, Variance: 1}, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	_, vNear := g.Predict([]float64{0.5})
	_, vFar := g.Predict([]float64{5})
	if vFar <= vNear {
		t.Errorf("variance should grow away from data: near=%v far=%v", vNear, vFar)
	}
	// Far from all data the posterior reverts to the prior.
	muFar, _ := g.Predict([]float64{100})
	if math.Abs(muFar-0.5) > 1e-6 { // prior mean = mean(y) = 0.5
		t.Errorf("far mean = %v, want prior mean 0.5", muFar)
	}
	if math.Abs(vFar-1) > 0.5 {
		t.Errorf("far variance = %v, want ≈ prior variance", vFar)
	}
}

func TestGPRecoversSmoothFunction(t *testing.T) {
	r := xrand.New(1)
	n := 40
	x := tensor.NewMatrix(n, 1)
	y := make([]float64, n)
	f := func(v float64) float64 { return math.Sin(3*v) + 0.5*v }
	for i := 0; i < n; i++ {
		v := r.Uniform(0, 3)
		x.Set(i, 0, v)
		y[i] = f(v) + 0.01*r.NormFloat64()
	}
	g, err := FitMLE(x, y, []float64{0.1, 0.3, 1, 3}, []float64{1e-4, 1e-2})
	if err != nil {
		t.Fatal(err)
	}
	var maxErr float64
	for v := 0.2; v < 2.8; v += 0.1 {
		mu, _ := g.Predict([]float64{v})
		if e := math.Abs(mu - f(v)); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 0.2 {
		t.Errorf("GP max error %v on smooth function, want < 0.2", maxErr)
	}
}

func TestFitMLEPrefersBetterLengthScale(t *testing.T) {
	// Data from a long-lengthscale function: MLE should not pick the
	// shortest scale available.
	r := xrand.New(2)
	n := 30
	x := tensor.NewMatrix(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		v := r.Uniform(0, 10)
		x.Set(i, 0, v)
		y[i] = 0.3*v + 0.001*r.NormFloat64()
	}
	g, err := FitMLE(x, y, []float64{0.01, 5}, []float64{1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if g.Kernel.LengthScale != 5 {
		t.Errorf("MLE picked lengthscale %v for near-linear data, want 5", g.Kernel.LengthScale)
	}
}

func TestExpectedImprovementProperties(t *testing.T) {
	x := gridX(0, 1, 2)
	y := []float64{1, 0.5, 1}
	g, err := Fit(x, y, RBF{LengthScale: 0.7, Variance: 1}, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	fBest := 0.5
	// EI is non-negative everywhere.
	for v := -1.0; v < 4; v += 0.2 {
		if ei := g.ExpectedImprovement([]float64{v}, fBest); ei < 0 {
			t.Fatalf("EI negative at %v: %v", v, ei)
		}
	}
	// EI at a training point equal to the best value ≈ 0 (no improvement,
	// no uncertainty).
	if ei := g.ExpectedImprovement([]float64{1}, fBest); ei > 1e-3 {
		t.Errorf("EI at best observed point = %v, want ≈0", ei)
	}
	// EI in unexplored territory is positive.
	if ei := g.ExpectedImprovement([]float64{10}, fBest); ei <= 0 {
		t.Errorf("EI far away = %v, want > 0", ei)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(gridX(1, 2), []float64{1}, RBF{1, 1}, 1e-6); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Fit(gridX(1, 2), []float64{1, 2}, RBF{1, 1}, 0); err == nil {
		t.Error("zero noise should error")
	}
	if _, err := Fit(tensor.NewMatrix(0, 1), nil, RBF{1, 1}, 1e-6); err == nil {
		t.Error("empty fit should error")
	}
}

func TestLogMarginalLikelihoodSane(t *testing.T) {
	x := gridX(0, 1, 2, 3)
	y := []float64{0, 0.1, 0.2, 0.3}
	good, err := Fit(x, y, RBF{LengthScale: 2, Variance: 0.1}, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := Fit(x, y, RBF{LengthScale: 0.001, Variance: 0.1}, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if good.LogMarginalLikelihood() <= bad.LogMarginalLikelihood() {
		t.Errorf("smooth-data LML ordering wrong: good=%v bad=%v",
			good.LogMarginalLikelihood(), bad.LogMarginalLikelihood())
	}
}
