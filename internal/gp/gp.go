// Package gp implements Gaussian-process regression with an RBF kernel,
// Cholesky-based posterior inference and marginal-likelihood model selection.
// It is the substrate of the Bayesian hyperparameter optimizer (the paper
// used RoBO, Appendix A; this is the same algorithm family built from
// scratch).
package gp

import (
	"errors"
	"fmt"
	"math"

	"varbench/internal/tensor"
)

// RBF is the squared-exponential kernel
// k(a,b) = Variance · exp(-‖a-b‖² / (2·LengthScale²)).
type RBF struct {
	LengthScale float64
	Variance    float64
}

// Eval computes the kernel between two points.
func (k RBF) Eval(a, b []float64) float64 {
	d2 := 0.0
	for i := range a {
		d := a[i] - b[i]
		d2 += d * d
	}
	return k.Variance * math.Exp(-d2/(2*k.LengthScale*k.LengthScale))
}

// GP is a fitted Gaussian-process posterior.
type GP struct {
	Kernel RBF
	Noise  float64 // observation noise variance

	x     *tensor.Matrix
	meanY float64
	alpha []float64      // (K+σ²I)⁻¹ (y - meanY)
	chol  *tensor.Matrix // Cholesky factor of K+σ²I
	lml   float64
}

// Fit conditions a GP prior on observations (x, y). The target mean is
// subtracted (constant-mean GP). Noise must be positive.
func Fit(x *tensor.Matrix, y []float64, kernel RBF, noise float64) (*GP, error) {
	n := x.Rows
	if n == 0 || len(y) != n {
		return nil, fmt.Errorf("gp: bad shapes n=%d len(y)=%d", n, len(y))
	}
	if noise <= 0 {
		return nil, errors.New("gp: noise must be positive")
	}
	k := tensor.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := kernel.Eval(x.Row(i), x.Row(j))
			k.Set(i, j, v)
			k.Set(j, i, v)
		}
		k.Set(i, i, k.At(i, i)+noise)
	}
	chol, err := tensor.Cholesky(k)
	if err != nil {
		return nil, fmt.Errorf("gp: kernel matrix not PD: %w", err)
	}
	meanY := tensor.Mean(y)
	centered := make([]float64, n)
	for i, v := range y {
		centered[i] = v - meanY
	}
	alpha := tensor.CholeskySolve(chol, centered)
	// Log marginal likelihood: -½ yᵀα − Σ log L_ii − n/2 log 2π.
	lml := -0.5*tensor.Dot(centered, alpha) -
		0.5*tensor.LogDetFromCholesky(chol) -
		float64(n)/2*math.Log(2*math.Pi)
	return &GP{
		Kernel: kernel, Noise: noise,
		x: x.Clone(), meanY: meanY, alpha: alpha, chol: chol, lml: lml,
	}, nil
}

// LogMarginalLikelihood returns the evidence of the fitted model.
func (g *GP) LogMarginalLikelihood() float64 { return g.lml }

// Predict returns the posterior mean and variance at query point q.
func (g *GP) Predict(q []float64) (mean, variance float64) {
	n := g.x.Rows
	ks := make([]float64, n)
	for i := 0; i < n; i++ {
		ks[i] = g.Kernel.Eval(g.x.Row(i), q)
	}
	mean = g.meanY + tensor.Dot(ks, g.alpha)
	v := tensor.SolveLower(g.chol, ks)
	variance = g.Kernel.Eval(q, q) - tensor.Dot(v, v)
	if variance < 0 {
		variance = 0
	}
	return mean, variance
}

// FitMLE fits GPs over a small grid of length-scales and noise levels and
// returns the one with the highest marginal likelihood — the simple, robust
// hyperparameter selection used inside the Bayesian optimizer.
func FitMLE(x *tensor.Matrix, y []float64, lengthScales, noises []float64) (*GP, error) {
	variance := varOf(y)
	if variance <= 0 {
		variance = 1e-4
	}
	var best *GP
	for _, ls := range lengthScales {
		for _, ns := range noises {
			g, err := Fit(x, y, RBF{LengthScale: ls, Variance: variance}, ns*variance)
			if err != nil {
				continue
			}
			if best == nil || g.lml > best.lml {
				best = g
			}
		}
	}
	if best == nil {
		return nil, errors.New("gp: no hyperparameter setting produced a valid fit")
	}
	return best, nil
}

func varOf(y []float64) float64 {
	if len(y) < 2 {
		return 0
	}
	m := tensor.Mean(y)
	s := 0.0
	for _, v := range y {
		s += (v - m) * (v - m)
	}
	return s / float64(len(y)-1)
}

// ExpectedImprovement returns EI at query q for minimization given the best
// observed value fBest: EI = (fBest-μ)Φ(z) + σφ(z), z = (fBest-μ)/σ.
func (g *GP) ExpectedImprovement(q []float64, fBest float64) float64 {
	mu, v := g.Predict(q)
	sigma := math.Sqrt(v)
	if sigma < 1e-12 {
		if imp := fBest - mu; imp > 0 {
			return imp
		}
		return 0
	}
	z := (fBest - mu) / sigma
	phi := math.Exp(-0.5*z*z) / math.Sqrt(2*math.Pi)
	capPhi := 0.5 * math.Erfc(-z/math.Sqrt2)
	return (fBest-mu)*capPhi + sigma*phi
}
