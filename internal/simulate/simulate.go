// Package simulate implements the Section 4.2 simulation study: given
// variance statistics measured on the case studies, it simulates
// realizations of the ideal and biased estimators for two algorithms whose
// true probability of outperforming P(A>B) is swept across [0.4, 1], applies
// each comparison criterion, and records detection rates (Figures 6 and
// I.6).
package simulate

import (
	"fmt"
	"math"

	"varbench/internal/compare"
	"varbench/internal/stats"
	"varbench/internal/xrand"
)

// Model describes how performance measures of one algorithm are generated.
type Model struct {
	// Sigma2 is Var(R̂e), the per-measure variance under the ideal
	// estimator.
	Sigma2 float64
	// BiasVar is Var(μ̃(k)|ξ): the variance of the biased estimator's bias
	// across hyperparameter-optimization outcomes. Zero simulates the ideal
	// estimator.
	BiasVar float64
	// WithinVar is Var(R̂e|ξ): the within-realization variance of the
	// biased estimator. Ignored when BiasVar is 0.
	WithinVar float64
}

// Ideal reports whether the model is the ideal (unbiased) generator.
func (m Model) Ideal() bool { return m.BiasVar == 0 }

// Sample draws k performance measures for an algorithm with mean mu.
// Ideal model: R̂e ~ N(mu, Sigma2), i.i.d.
// Biased model (two-stage, Section 4.2): b ~ N(0, BiasVar), then
// R̂e ~ N(mu+b, WithinVar).
func (m Model) Sample(mu float64, k int, r *xrand.Source) []float64 {
	out := make([]float64, k)
	if m.Ideal() {
		sd := math.Sqrt(m.Sigma2)
		for i := range out {
			out[i] = r.Normal(mu, sd)
		}
		return out
	}
	b := r.Normal(0, math.Sqrt(m.BiasVar))
	sd := math.Sqrt(m.WithinVar)
	for i := range out {
		out[i] = r.Normal(mu+b, sd)
	}
	return out
}

// MeanDiffForPAB returns the mean difference µA−µB that produces a true
// probability of outperforming P(A>B) = p for two independent algorithms
// with per-measure variance sigma2 each: µA−µB = Φ⁻¹(p)·√(2σ²).
func MeanDiffForPAB(p, sigma2 float64) float64 {
	return stats.NormQuantile(p) * math.Sqrt(2*sigma2)
}

// TruePAB inverts MeanDiffForPAB.
func TruePAB(meanDiff, sigma2 float64) float64 {
	return stats.NormCDF(meanDiff / math.Sqrt(2*sigma2))
}

// Config parameterizes one detection-rate study.
type Config struct {
	K         int     // measures per algorithm per simulation (paper: 50)
	NSim      int     // simulations per grid point
	Gamma     float64 // PAB meaningfulness threshold (paper: 0.75)
	Delta     float64 // average/single-point threshold (paper: 1.9952σ)
	Alpha     float64 // significance level for t-test and oracle
	Bootstrap int     // PAB bootstrap resamples
}

// Defaults fills unset fields with the paper's values, deriving Delta from
// sigma2 when it is zero.
func (c Config) Defaults(sigma2 float64) Config {
	if c.K == 0 {
		c.K = 50
	}
	if c.NSim == 0 {
		c.NSim = 200
	}
	if c.Gamma == 0 {
		c.Gamma = compare.DefaultGamma
	}
	if c.Delta == 0 {
		c.Delta = compare.DefaultDeltaCoefficient * math.Sqrt(sigma2)
	}
	if c.Alpha == 0 {
		c.Alpha = 0.05
	}
	if c.Bootstrap == 0 {
		c.Bootstrap = 200
	}
	return c
}

// Point is the detection rate of every criterion at one true P(A>B).
type Point struct {
	TrueP float64
	// Rates maps criterion label → fraction of simulations that declared
	// "A better than B".
	Rates map[string]float64
}

// Region classifies a true P(A>B) into the three zones of Figure 6.
type Region int

const (
	// RegionH0: P ≤ 0.5, any detection is a false positive.
	RegionH0 Region = iota
	// RegionGrey: 0.5 < P < γ, significant but not meaningful.
	RegionGrey
	// RegionH1: P ≥ γ, a miss is a false negative.
	RegionH1
)

// Classify returns the region of trueP relative to gamma.
func Classify(trueP, gamma float64) Region {
	switch {
	case trueP <= 0.5:
		return RegionH0
	case trueP < gamma:
		return RegionGrey
	default:
		return RegionH1
	}
}

// DetectionCurve sweeps true P(A>B) over grid and measures the detection
// rate of each criterion under both the ideal and the biased sampling
// models. Labels follow Figure 6: "<criterion>/<ideal|biased>" plus
// "oracle".
func DetectionCurve(cfg Config, ideal, biased Model, grid []float64,
	r *xrand.Source) ([]Point, error) {
	if ideal.Sigma2 <= 0 {
		return nil, fmt.Errorf("simulate: ideal model needs positive Sigma2")
	}
	cfg = cfg.Defaults(ideal.Sigma2)

	criteria := []compare.Criterion{
		compare.SinglePoint{Delta: cfg.Delta},
		compare.AverageThreshold{Delta: cfg.Delta},
		compare.PAB{Gamma: cfg.Gamma, Bootstrap: cfg.Bootstrap},
	}
	oracle := compare.Oracle{Sigma: math.Sqrt(ideal.Sigma2), Alpha: cfg.Alpha}

	points := make([]Point, 0, len(grid))
	for _, p := range grid {
		diff := MeanDiffForPAB(p, ideal.Sigma2)
		counts := map[string]int{}
		for sim := 0; sim < cfg.NSim; sim++ {
			for _, model := range []struct {
				label string
				m     Model
			}{{"ideal", ideal}, {"biased", biased}} {
				a := model.m.Sample(diff, cfg.K, r)
				b := model.m.Sample(0, cfg.K, r)
				pairs, err := compare.Pairs(a, b)
				if err != nil {
					return nil, err
				}
				for _, c := range criteria {
					if c.Detects(pairs, r) {
						counts[c.Name()+"/"+model.label]++
					}
				}
				if model.label == "ideal" && oracle.Detects(pairs, r) {
					counts["oracle"]++
				}
			}
		}
		rates := make(map[string]float64, len(counts))
		for _, c := range criteria {
			for _, ml := range []string{"ideal", "biased"} {
				key := c.Name() + "/" + ml
				rates[key] = float64(counts[key]) / float64(cfg.NSim)
			}
		}
		rates["oracle"] = float64(counts["oracle"]) / float64(cfg.NSim)
		points = append(points, Point{TrueP: p, Rates: rates})
	}
	return points, nil
}

// ErrorSummary aggregates a detection curve into the Figure 6 headline
// numbers: the false-positive rate over the H0 region and the
// false-negative rate over the H1 region, per criterion.
type ErrorSummary struct {
	FalsePositive map[string]float64
	FalseNegative map[string]float64
}

// Summarize computes region-averaged error rates from a detection curve.
func Summarize(points []Point, gamma float64) ErrorSummary {
	fpSum := map[string]float64{}
	fnSum := map[string]float64{}
	fpN, fnN := 0, 0
	for _, pt := range points {
		switch Classify(pt.TrueP, gamma) {
		case RegionH0:
			fpN++
			for k, v := range pt.Rates {
				fpSum[k] += v
			}
		case RegionH1:
			fnN++
			for k, v := range pt.Rates {
				fnSum[k] += 1 - v
			}
		}
	}
	out := ErrorSummary{
		FalsePositive: map[string]float64{},
		FalseNegative: map[string]float64{},
	}
	for k, v := range fpSum {
		out.FalsePositive[k] = v / float64(fpN)
	}
	for k, v := range fnSum {
		out.FalseNegative[k] = v / float64(fnN)
	}
	return out
}

// RobustnessPoint is one cell of Figure I.6: detection rate as a function of
// sample size or γ for a fixed true P(A>B).
type RobustnessPoint struct {
	TrueP  float64
	X      float64 // sample size N or threshold γ
	Rates  map[string]float64
	Sweep  string // "n" or "gamma"
	Gamma  float64
	Deltas float64
}

// SampleSizeSweep measures detection rates of the average, PAB, and paired-t
// criteria as the number of paired measures varies (Figure I.6, top row).
// The average threshold is converted from γ via δ = Φ⁻¹(γ)·σ, as in
// Appendix I.
func SampleSizeSweep(cfg Config, ideal Model, trueP float64, ns []int,
	r *xrand.Source) ([]RobustnessPoint, error) {
	if ideal.Sigma2 <= 0 {
		return nil, fmt.Errorf("simulate: ideal model needs positive Sigma2")
	}
	cfg = cfg.Defaults(ideal.Sigma2)
	delta := stats.NormQuantile(cfg.Gamma) * math.Sqrt(ideal.Sigma2)
	diff := MeanDiffForPAB(trueP, ideal.Sigma2)
	out := make([]RobustnessPoint, 0, len(ns))
	for _, n := range ns {
		counts := map[string]int{}
		criteria := []compare.Criterion{
			compare.AverageThreshold{Delta: delta},
			compare.PAB{Gamma: cfg.Gamma, Bootstrap: cfg.Bootstrap},
			compare.PairedT{Alpha: cfg.Alpha},
		}
		for sim := 0; sim < cfg.NSim; sim++ {
			a := ideal.Sample(diff, n, r)
			b := ideal.Sample(0, n, r)
			pairs, err := compare.Pairs(a, b)
			if err != nil {
				return nil, err
			}
			for _, c := range criteria {
				if c.Detects(pairs, r) {
					counts[c.Name()]++
				}
			}
		}
		rates := map[string]float64{}
		for k, v := range counts {
			rates[k] = float64(v) / float64(cfg.NSim)
		}
		for _, c := range criteria {
			if _, ok := rates[c.Name()]; !ok {
				rates[c.Name()] = 0
			}
		}
		out = append(out, RobustnessPoint{
			TrueP: trueP, X: float64(n), Rates: rates, Sweep: "n",
			Gamma: cfg.Gamma, Deltas: delta,
		})
	}
	return out, nil
}

// GammaSweep measures detection rates as the meaningfulness threshold γ
// varies (Figure I.6, bottom row), with the average threshold following
// δ = Φ⁻¹(γ)·σ.
func GammaSweep(cfg Config, ideal Model, trueP float64, gammas []float64,
	r *xrand.Source) ([]RobustnessPoint, error) {
	if ideal.Sigma2 <= 0 {
		return nil, fmt.Errorf("simulate: ideal model needs positive Sigma2")
	}
	cfg = cfg.Defaults(ideal.Sigma2)
	diff := MeanDiffForPAB(trueP, ideal.Sigma2)
	out := make([]RobustnessPoint, 0, len(gammas))
	for _, g := range gammas {
		delta := stats.NormQuantile(g) * math.Sqrt(ideal.Sigma2)
		criteria := []compare.Criterion{
			compare.AverageThreshold{Delta: delta},
			compare.PAB{Gamma: g, Bootstrap: cfg.Bootstrap},
			compare.PairedT{Alpha: cfg.Alpha},
		}
		counts := map[string]int{}
		for sim := 0; sim < cfg.NSim; sim++ {
			a := ideal.Sample(diff, cfg.K, r)
			b := ideal.Sample(0, cfg.K, r)
			pairs, err := compare.Pairs(a, b)
			if err != nil {
				return nil, err
			}
			for _, c := range criteria {
				if c.Detects(pairs, r) {
					counts[c.Name()]++
				}
			}
		}
		rates := map[string]float64{}
		for _, c := range criteria {
			rates[c.Name()] = float64(counts[c.Name()]) / float64(cfg.NSim)
		}
		out = append(out, RobustnessPoint{
			TrueP: trueP, X: g, Rates: rates, Sweep: "gamma",
			Gamma: g, Deltas: delta,
		})
	}
	return out, nil
}
