package simulate

import (
	"math"
	"testing"

	"varbench/internal/stats"
	"varbench/internal/xrand"
)

func TestMeanDiffAndTruePABRoundTrip(t *testing.T) {
	for _, p := range []float64{0.4, 0.5, 0.6, 0.75, 0.9, 0.99} {
		diff := MeanDiffForPAB(p, 0.04)
		back := TruePAB(diff, 0.04)
		if math.Abs(back-p) > 1e-9 {
			t.Errorf("round trip %v → %v", p, back)
		}
	}
	if MeanDiffForPAB(0.5, 1) != 0 {
		t.Error("P=0.5 should give zero mean difference")
	}
}

func TestModelSampleMoments(t *testing.T) {
	r := xrand.New(1)
	ideal := Model{Sigma2: 0.09}
	x := ideal.Sample(2, 50000, r)
	if math.Abs(stats.Mean(x)-2) > 0.01 {
		t.Errorf("ideal mean = %v", stats.Mean(x))
	}
	if math.Abs(stats.Std(x)-0.3) > 0.01 {
		t.Errorf("ideal std = %v", stats.Std(x))
	}

	// Biased model: per-realization mean shifts by N(0, BiasVar).
	biased := Model{Sigma2: 0.09, BiasVar: 0.04, WithinVar: 0.01}
	means := make([]float64, 500)
	for i := range means {
		means[i] = stats.Mean(biased.Sample(0, 30, r))
	}
	sd := stats.Std(means)
	want := math.Sqrt(0.04 + 0.01/30)
	if math.Abs(sd-want) > 0.02 {
		t.Errorf("biased realization-mean std = %v, want ≈ %v", sd, want)
	}
}

func TestClassify(t *testing.T) {
	g := 0.75
	if Classify(0.45, g) != RegionH0 || Classify(0.5, g) != RegionH0 {
		t.Error("H0 region wrong")
	}
	if Classify(0.6, g) != RegionGrey {
		t.Error("grey region wrong")
	}
	if Classify(0.75, g) != RegionH1 || Classify(0.95, g) != RegionH1 {
		t.Error("H1 region wrong")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.Defaults(0.04)
	if c.K != 50 || c.Gamma != 0.75 || c.Alpha != 0.05 {
		t.Errorf("defaults wrong: %+v", c)
	}
	wantDelta := 1.9952 * 0.2
	if math.Abs(c.Delta-wantDelta) > 1e-9 {
		t.Errorf("delta = %v, want %v", c.Delta, wantDelta)
	}
	// Explicit values survive.
	c2 := Config{K: 10, Delta: 0.5}.Defaults(0.04)
	if c2.K != 10 || c2.Delta != 0.5 {
		t.Error("explicit values overwritten")
	}
}

func TestDetectionCurveFigure6Orderings(t *testing.T) {
	// The Figure 6 qualitative results, at reduced simulation size:
	//  - single point: high FP and high FN
	//  - average with δ≈2σ: very low FP, very high FN
	//  - PAB: low FP, moderate FN; close to oracle with ideal estimator
	r := xrand.New(7)
	sigma2 := 0.0004 // σ = 2% accuracy, a realistic benchmark scale
	ideal := Model{Sigma2: sigma2}
	// Bias variance at the scale measured in Figure 5: a few percent of σ².
	biased := Model{Sigma2: sigma2, BiasVar: sigma2 * 0.06, WithinVar: sigma2 * 0.94}
	cfg := Config{NSim: 120, Bootstrap: 100}
	grid := []float64{0.42, 0.46, 0.5, 0.8, 0.9, 0.98}
	points, err := DetectionCurve(cfg, ideal, biased, grid, r)
	if err != nil {
		t.Fatal(err)
	}
	sum := Summarize(points, 0.75)

	fpSingle := sum.FalsePositive["single-point/ideal"]
	fpAvg := sum.FalsePositive["average/ideal"]
	fpPAB := sum.FalsePositive["prob-outperform/ideal"]
	fnSingle := sum.FalseNegative["single-point/ideal"]
	fnAvg := sum.FalseNegative["average/ideal"]
	fnPAB := sum.FalseNegative["prob-outperform/ideal"]
	t.Logf("FP: single=%.3f avg=%.3f pab=%.3f", fpSingle, fpAvg, fpPAB)
	t.Logf("FN: single=%.3f avg=%.3f pab=%.3f", fnSingle, fnAvg, fnPAB)

	if fpSingle < fpAvg {
		t.Error("single-point FP should exceed average FP")
	}
	if fpPAB > 0.15 {
		t.Errorf("PAB FP = %v, want ≤ 0.15", fpPAB)
	}
	if fnAvg < fnPAB {
		t.Error("average FN should exceed PAB FN")
	}
	if fnSingle < fnPAB {
		t.Error("single-point FN should exceed PAB FN")
	}
	// Oracle dominates at the H1 end.
	if sum.FalseNegative["oracle"] > fnPAB+0.05 {
		t.Error("oracle should not miss more than PAB")
	}
}

func TestDetectionCurveBiasedDegradesPAB(t *testing.T) {
	// The biased estimator hurts but does not break the PAB test
	// (Section 4.2 observations).
	r := xrand.New(9)
	sigma2 := 0.0004
	ideal := Model{Sigma2: sigma2}
	// Realistic bias scale (Figure 5): Var(bias) ≈ 6% of σ². The paper
	// observes the biased estimator degrades the PAB test's error control
	// without breaking it ("we cannot guarantee a nominal control").
	biased := Model{Sigma2: sigma2, BiasVar: sigma2 * 0.06, WithinVar: sigma2 * 0.94}
	cfg := Config{NSim: 150, Bootstrap: 100}
	points, err := DetectionCurve(cfg, ideal, biased, []float64{0.5}, r)
	if err != nil {
		t.Fatal(err)
	}
	fpIdeal := points[0].Rates["prob-outperform/ideal"]
	fpBiased := points[0].Rates["prob-outperform/biased"]
	t.Logf("PAB FP at P=0.5: ideal=%v biased=%v", fpIdeal, fpBiased)
	if fpBiased > 0.25 {
		t.Errorf("biased PAB FP = %v, should remain controlled", fpBiased)
	}
	if fpBiased+0.03 < fpIdeal {
		t.Errorf("biased FP %v should not be far below ideal FP %v", fpBiased, fpIdeal)
	}
}

func TestDetectionCurveErrors(t *testing.T) {
	if _, err := DetectionCurve(Config{}, Model{}, Model{}, []float64{0.5}, xrand.New(1)); err == nil {
		t.Error("zero Sigma2 should error")
	}
}

func TestSampleSizeSweepPowerGrows(t *testing.T) {
	r := xrand.New(11)
	ideal := Model{Sigma2: 0.0004}
	pts, err := SampleSizeSweep(Config{NSim: 120, Bootstrap: 100}, ideal, 0.8,
		[]int{5, 20, 60}, r)
	if err != nil {
		t.Fatal(err)
	}
	// PAB detection rate should grow with sample size at true P=0.8 > γ...
	first := pts[0].Rates["prob-outperform"]
	last := pts[len(pts)-1].Rates["prob-outperform"]
	t.Logf("PAB rate: n=5 → %v, n=60 → %v", first, last)
	if last < first {
		t.Errorf("PAB power should grow with n: %v → %v", first, last)
	}
	if last < 0.5 {
		t.Errorf("PAB power at n=60, P=0.8 = %v, want > 0.5", last)
	}
}

func TestSampleSizeSweepNullControlled(t *testing.T) {
	r := xrand.New(13)
	ideal := Model{Sigma2: 0.0004}
	pts, err := SampleSizeSweep(Config{NSim: 200, Bootstrap: 100}, ideal, 0.5,
		[]int{30}, r)
	if err != nil {
		t.Fatal(err)
	}
	for name, rate := range pts[0].Rates {
		if rate > 0.12 {
			t.Errorf("%s false-positive rate at P=0.5: %v", name, rate)
		}
	}
}

func TestGammaSweepTradeoff(t *testing.T) {
	r := xrand.New(17)
	ideal := Model{Sigma2: 0.0004}
	pts, err := GammaSweep(Config{NSim: 120, Bootstrap: 100, K: 50}, ideal, 0.8,
		[]float64{0.6, 0.9}, r)
	if err != nil {
		t.Fatal(err)
	}
	// Raising γ above the true P should reduce PAB detections.
	lo := pts[0].Rates["prob-outperform"]
	hi := pts[1].Rates["prob-outperform"]
	t.Logf("PAB rate: γ=0.6 → %v, γ=0.9 → %v", lo, hi)
	if hi > lo {
		t.Errorf("detections should fall as γ passes the true effect: %v → %v", lo, hi)
	}
}
