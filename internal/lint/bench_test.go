package lint

import "testing"

// BenchmarkLintRepo measures one full lint pass over the module: load (go
// list is memoized process-wide, so iterations after the first measure the
// parse+typecheck+analyze cost the cache is meant to expose), then every
// analyzer over every package. This is the varbenchlint hot path; B/op and
// allocs/op are gated in CI against BENCH_9.json.
func BenchmarkLintRepo(b *testing.B) {
	// Warm the go list cache outside the timed region so iteration 0 does
	// not pay the one-time export-data build.
	if _, err := Load("../..", "./..."); err != nil {
		b.Fatal(err)
	}
	analyzers := Analyzers()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkgs, err := Load("../..", "./...")
		if err != nil {
			b.Fatal(err)
		}
		for _, pkg := range pkgs {
			if diags := Run(pkg, analyzers); len(diags) != 0 {
				b.Fatalf("lint pass found %d violations; the repo must stay clean", len(diags))
			}
		}
	}
}
