package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The poolput analyzer: the aliasing bug class of pooled buffers. The
// engine's idiom pools slices BY POINTER (*[]T) and updates the header
// through the pooled pointer (*p = (*p)[:n]), so the pointer put back
// always owns the buffer actually used. Two deviations break that:
//
//  1. pool.Put(p) after a local alias of *p was reassigned (buf := *p;
//     buf = append(buf, ...)) without writing the new header back through
//     p — the pool retains the stale header, silently dropping the grown
//     buffer or resurfacing a short one.
//
//  2. pool.Put(&buf) where buf was reassigned under a condition — which
//     header goes back now depends on branch history, and on the
//     not-reassigned path &buf can alias an allocation whose original
//     pooled pointer is put back elsewhere, yielding two pool entries that
//     share one backing array.
//
// Unconditional fresh-buffer puts (s := make(...); pool.Put(&s)) and
// writebacks through the pooled pointer are untouched.

// PoolPut is the suite's sync.Pool aliasing analyzer.
var PoolPut = &Analyzer{
	Name: "poolput",
	Doc: "catch sync.Pool.Put of a buffer whose slice header was reassigned " +
		"out from under the pooled pointer",
	Run: runPoolPut,
}

func runPoolPut(p *Pass) {
	for _, file := range p.Files {
		inspectWithStack(file, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			fn := callee(p.TypesInfo, call)
			if fn == nil {
				return true
			}
			if k := keyOf(fn); k.pkg != "sync" || k.recv != "Pool" || k.name != "Put" {
				return true
			}
			body := enclosingFuncBody(stack)
			if body == nil {
				return true
			}
			switch arg := ast.Unparen(call.Args[0]).(type) {
			case *ast.Ident: // pool.Put(p)
				obj := p.TypesInfo.Uses[arg]
				if obj == nil {
					return true
				}
				if alias := staleAlias(p, body, obj); alias != "" {
					p.Reportf(call.Pos(),
						"sync.Pool.Put(%s) but %q, an alias of *%s, was reassigned without a "+
							"writeback through the pooled pointer; the pool retains a stale "+
							"slice header — assign *%s = %s before Put",
						arg.Name, alias, arg.Name, arg.Name, alias)
				}
			case *ast.UnaryExpr: // pool.Put(&buf)
				if arg.Op != token.AND {
					return true
				}
				id, ok := ast.Unparen(arg.X).(*ast.Ident)
				if !ok {
					return true
				}
				obj := p.TypesInfo.Uses[id]
				if obj == nil {
					return true
				}
				if _, cond := assignments(p, body, obj); cond {
					p.Reportf(call.Pos(),
						"sync.Pool.Put(&%s) of a conditionally reassigned buffer: which slice "+
							"header is pooled depends on branch history, and the untouched path "+
							"can alias a buffer pooled elsewhere; pool by pointer and update it "+
							"with *p = %s instead",
						id.Name, id.Name)
				}
			}
			return true
		})
	}
}

// assignments reports whether obj is plainly reassigned (tok =) anywhere in
// body, and whether any such assignment is conditional — nested under an
// if, for, range, switch, select, case body or function literal.
func assignments(p *Pass, body *ast.BlockStmt, obj types.Object) (reassigned, conditional bool) {
	inspectWithStack(body, func(n ast.Node, stack []ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN {
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || p.TypesInfo.Uses[id] != obj {
				continue
			}
			reassigned = true
			if underBranch(stack) {
				conditional = true
			}
		}
		return true
	})
	return reassigned, conditional
}

// underBranch reports whether the innermost node of stack sits under a
// control-flow construct (relative to the walk root, which is a function
// body).
func underBranch(stack []ast.Node) bool {
	for _, n := range stack[:len(stack)-1] {
		switch n.(type) {
		case *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt,
			*ast.TypeSwitchStmt, *ast.SelectStmt, *ast.CaseClause,
			*ast.CommClause, *ast.FuncLit:
			return true
		}
	}
	return false
}

// staleAlias looks for the classic pooled-slice bug around pool.Put(p):
// a local alias of the pooled buffer (buf := *p, possibly resliced) that is
// later reassigned, with no writeback assignment through *p anywhere in the
// function. It returns the alias's name, or "" when the put is clean.
func staleAlias(p *Pass, body *ast.BlockStmt, pooled types.Object) string {
	var aliases []types.Object
	aliasName := make(map[types.Object]string)
	writeback := false

	// refersToPooled reports whether e is *pooled or a reslice of *pooled.
	var refersToPooled func(e ast.Expr) bool
	refersToPooled = func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.StarExpr:
			id, ok := ast.Unparen(e.X).(*ast.Ident)
			return ok && p.TypesInfo.Uses[id] == pooled
		case *ast.SliceExpr:
			return refersToPooled(e.X)
		}
		return false
	}

	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			// Writeback: *p = ... anywhere in the function clears the hazard.
			if as.Tok == token.ASSIGN && refersToPooled(lhs) {
				writeback = true
				continue
			}
			// Alias creation: buf := *p (or buf := (*p)[:n]).
			if as.Tok == token.DEFINE && i < len(as.Rhs) && refersToPooled(as.Rhs[i]) {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := p.TypesInfo.Defs[id]; obj != nil {
						aliases = append(aliases, obj)
						aliasName[obj] = id.Name
					}
				}
			}
		}
		return true
	})
	if writeback {
		return ""
	}
	for _, alias := range aliases {
		if reassigned, _ := assignments(p, body, alias); reassigned {
			return aliasName[alias]
		}
	}
	return ""
}
