package flow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"sort"
	"testing"
)

// The CFG/dataflow tests run a one-fact gen/kill analysis over small
// function bodies: gen() adds the fact, kill() removes it, and probe()
// records whether the fact MAY hold at its program point. Expectations are
// written per probe call in source order, so each test reads as a little
// execution-path argument.

func parseFunc(t *testing.T, body string) (*token.FileSet, *ast.FuncDecl) {
	t.Helper()
	fset := token.NewFileSet()
	src := "package p\nfunc gen()\nfunc kill()\nfunc probe()\nfunc f() {\n" + body + "\n}\n"
	file, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			return fset, fd
		}
	}
	t.Fatal("no func f")
	return nil, nil
}

// probeFacts runs the gen/kill analysis and returns, per probe() call in
// source order, whether the fact may hold just before the call.
func probeFacts(t *testing.T, body string) []bool {
	t.Helper()
	fset, fd := parseFunc(t, body)
	g := Build(fd.Body)

	type probeAt struct {
		pos  token.Pos
		held bool
	}
	var probes []probeAt
	transfer := func(record bool) Transfer[string] {
		return func(n ast.Node, facts Facts[string]) Facts[string] {
			ast.Inspect(n, func(c ast.Node) bool {
				call, ok := c.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok {
					return true
				}
				switch id.Name {
				case "gen":
					facts["x"] = true
				case "kill":
					delete(facts, "x")
				case "probe":
					if record {
						probes = append(probes, probeAt{pos: call.Pos(), held: facts["x"]})
					}
				}
				return true
			})
			return facts
		}
	}
	in := Forward(g, Facts[string]{}, transfer(false))
	// Replay each reachable block from its fixpoint entry facts, recording
	// probe observations.
	for _, b := range g.Blocks {
		entry, ok := in[b]
		if !ok {
			continue
		}
		facts := entry.Clone()
		for _, n := range b.Nodes {
			facts = transfer(true)(n, facts)
		}
	}
	// Report in source order: block indices follow construction order, not
	// source order (an if's join block is created before its else branch).
	sort.Slice(probes, func(i, j int) bool { return probes[i].pos < probes[j].pos })
	out := make([]bool, len(probes))
	for i, p := range probes {
		out[i] = p.held
	}
	_ = fset
	return out
}

func wantProbes(t *testing.T, body string, want ...bool) {
	t.Helper()
	got := probeFacts(t, body)
	if len(got) != len(want) {
		t.Fatalf("probe count = %d, want %d (%v)", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("probe %d = %v, want %v (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestStraightLine(t *testing.T) {
	wantProbes(t, `
probe()
gen()
probe()
kill()
probe()
`, false, true, false)
}

func TestIfJoinIsMay(t *testing.T) {
	// The fact is genned on one branch only: at the join it MAY hold.
	wantProbes(t, `
if cond {
	gen()
	probe()
} else {
	probe()
}
probe()
`, true, false, true)
}

func TestIfWithoutElseFallThrough(t *testing.T) {
	wantProbes(t, `
if cond {
	gen()
}
probe()
`, true)
}

func TestKillOnOneBranchKeepsMayFact(t *testing.T) {
	wantProbes(t, `
gen()
if cond {
	kill()
}
probe()
`, true)
}

func TestLoopBackEdge(t *testing.T) {
	// gen() late in the body must reach the loop head via the back edge, so
	// the probe at the TOP of the body sees the fact on iterations ≥ 2 —
	// i.e. MAY hold.
	wantProbes(t, `
for i := 0; i < n; i++ {
	probe()
	gen()
}
probe()
`, true, true)
}

func TestForInitCondPost(t *testing.T) {
	// A fact genned before the loop survives a loop that never kills it;
	// the post-loop probe still sees it even when the body never runs (the
	// cond→after edge carries entry facts).
	wantProbes(t, `
gen()
for i := 0; i < n; i++ {
}
probe()
`, true)
}

func TestInfiniteLoopNoFallThrough(t *testing.T) {
	// for{} without break: code after it is unreachable, so its probe
	// records nothing.
	wantProbes(t, `
gen()
for {
	probe()
}
probe()
`, true)
}

func TestBreakReachesAfter(t *testing.T) {
	wantProbes(t, `
for {
	gen()
	if cond {
		break
	}
	kill()
}
probe()
`, true)
}

func TestLabeledBreak(t *testing.T) {
	// The collect.go feed pattern: a labeled break out of a select inside a
	// loop must land after the LOOP, not after the select.
	wantProbes(t, `
feed:
for i := 0; i < n; i++ {
	select {
	case idx <- i:
		gen()
	case <-done:
		break feed
	}
	kill()
}
probe()
`, false)
}

func TestContinueSkipsTail(t *testing.T) {
	wantProbes(t, `
for i := 0; i < n; i++ {
	gen()
	if cond {
		continue
	}
	kill()
	probe()
}
`, false)
}

func TestRangeLoop(t *testing.T) {
	wantProbes(t, `
for range xs {
	gen()
}
probe()
`, true)
}

func TestSwitchCasesJoin(t *testing.T) {
	wantProbes(t, `
switch v {
case 1:
	gen()
case 2:
	probe()
}
probe()
`, false, true)
}

func TestSwitchFallthrough(t *testing.T) {
	wantProbes(t, `
switch v {
case 1:
	gen()
	fallthrough
case 2:
	probe()
default:
	probe()
}
`, true, false)
}

func TestSelectCommBranches(t *testing.T) {
	wantProbes(t, `
select {
case <-a:
	gen()
	probe()
case b <- 1:
	probe()
}
probe()
`, true, false, true)
}

func TestReturnDiverges(t *testing.T) {
	wantProbes(t, `
if cond {
	gen()
	return
}
probe()
`, false)
}

func TestDefersRecorded(t *testing.T) {
	_, fd := parseFunc(t, `
defer kill()
gen()
defer gen()
probe()
`)
	g := Build(fd.Body)
	if len(g.Defers) != 2 {
		t.Fatalf("Defers = %d, want 2", len(g.Defers))
	}
	if g.Defers[0].Pos() > g.Defers[1].Pos() {
		t.Error("defers out of source order")
	}
}

func TestUnreachableBlockAbsentFromForward(t *testing.T) {
	_, fd := parseFunc(t, `
return
probe()
`)
	g := Build(fd.Body)
	in := Forward(g, Facts[string]{}, func(n ast.Node, f Facts[string]) Facts[string] { return f })
	for b, facts := range in {
		_ = facts
		for _, n := range b.Nodes {
			if call, ok := n.(*ast.ExprStmt); ok {
				if id, ok := call.X.(*ast.CallExpr); ok {
					if fun, ok := id.Fun.(*ast.Ident); ok && fun.Name == "probe" {
						t.Error("unreachable probe block present in Forward result")
					}
				}
			}
		}
	}
}

// typecheckPkg checks a self-contained (import-free) source as one package.
func typecheckPkg(t *testing.T, src string) (*token.FileSet, []*ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Defs: make(map[*ast.Ident]types.Object),
		Uses: make(map[*ast.Ident]types.Object),
	}
	if _, err := (&types.Config{}).Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{file}, info
}

func TestCallGraphReachable(t *testing.T) {
	_, files, info := typecheckPkg(t, `
package p

type S struct{}

func (s *S) Put()  { s.stage() }
func (s *S) stage() { helper() }
func helper()      {}
func island()      { helper() }
func (s *S) Get()  {}
`)
	cg := NewCallGraph(info, files)
	if len(cg.Funcs()) != 5 {
		t.Fatalf("Funcs = %d, want 5", len(cg.Funcs()))
	}
	reach := cg.ReachableFrom(func(fn *types.Func) bool { return fn.Name() == "Put" })
	names := map[string]bool{}
	for fn := range reach {
		names[fn.Name()] = true
	}
	for _, want := range []string{"Put", "stage", "helper"} {
		if !names[want] {
			t.Errorf("%s not reachable from Put", want)
		}
	}
	for _, not := range []string{"island", "Get"} {
		if names[not] {
			t.Errorf("%s wrongly reachable from Put", not)
		}
	}
}
