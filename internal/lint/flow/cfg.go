// Package flow is the flow-analysis layer under varbench's static
// analyzers: a per-function control-flow graph over go/ast, a forward
// dataflow engine (gen/kill over CFG blocks, worklist to fixpoint) and a
// conservative intra-package call graph. Like internal/lint itself it is
// stdlib-only — no golang.org/x/tools — and deliberately small: precise
// enough to see lock ordering, goroutine lifetimes and durability barriers
// THROUGH statements, conservative everywhere Go's dynamism (interface
// calls, function values, goto into loops) would demand a real SSA.
//
// Granularity: a Block holds the atomic nodes that execute when control
// reaches it — plain statements, and the control EXPRESSIONS of compound
// statements (an if's condition, a range's operand, a switch's tag, a
// select case's comm statement). The statements nested under a compound
// statement live in successor blocks, never inside the compound node
// itself, so an analyzer that walks every block node with ast.Inspect sees
// each executed node exactly once.
package flow

import (
	"go/ast"
	"go/token"
)

// A Block is one straight-line run of nodes with its control-flow
// successors.
type Block struct {
	Index int        // position in Graph.Blocks; stable, deterministic
	Nodes []ast.Node // statements and control expressions in execution order
	Succs []*Block
}

// A Graph is the control-flow graph of one function body.
type Graph struct {
	Entry  *Block
	Exit   *Block // synthetic; returns, panics and os.Exit edge here
	Blocks []*Block

	// Defers are the function's defer statements in source order. Deferred
	// calls run on every path to Exit; analyses that model cleanup
	// (Unlock, Flush, Close) consult this list at exit checks instead of
	// finding the calls in blocks.
	Defers []*ast.DeferStmt
}

// NewBlock appends a fresh empty block to the graph.
func (g *Graph) NewBlock() *Block {
	b := &Block{Index: len(g.Blocks)}
	g.Blocks = append(g.Blocks, b)
	return b
}

// builder threads the current block and the break/continue resolution
// state through the statement walk.
type builder struct {
	g *Graph

	// breakTargets / continueTargets mirror the enclosing breakable and
	// continuable statements, innermost last. label is "" for plain
	// for/switch/select and the label name for labeled ones.
	breaks    []branchTarget
	continues []branchTarget
}

type branchTarget struct {
	label string
	block *Block
}

// Build constructs the CFG of one function body. It never fails: constructs
// the builder does not model precisely (goto) degrade to conservative
// edges rather than errors.
func Build(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	b := &builder{g: g}
	g.Entry = g.NewBlock()
	g.Exit = g.NewBlock()
	last := b.stmts(g.Entry, body.List)
	if last != nil {
		last.addSucc(g.Exit)
	}
	return g
}

func (b *Block) addSucc(s *Block) {
	for _, have := range b.Succs {
		if have == s {
			return
		}
	}
	b.Succs = append(b.Succs, s)
}

// stmts lowers a statement list starting in cur and returns the block that
// falls through past the last statement, or nil when every path diverged
// (returned, branched or looped away).
func (b *builder) stmts(cur *Block, list []ast.Stmt) *Block {
	for _, s := range list {
		if cur == nil {
			// Unreachable code after return/branch: give it its own island
			// block so its nodes still exist for position queries, without
			// an edge from the live graph.
			cur = b.g.NewBlock()
		}
		cur = b.stmt(cur, s, "")
	}
	return cur
}

// stmt lowers one statement; label is the pending label when s was wrapped
// in a LabeledStmt. It returns the fall-through block or nil.
func (b *builder) stmt(cur *Block, s ast.Stmt, label string) *Block {
	switch s := s.(type) {
	case *ast.LabeledStmt:
		return b.stmt(cur, s.Stmt, s.Label.Name)

	case *ast.BlockStmt:
		return b.stmts(cur, s.List)

	case *ast.ReturnStmt:
		cur.Nodes = append(cur.Nodes, s)
		cur.addSucc(b.g.Exit)
		return nil

	case *ast.DeferStmt:
		b.g.Defers = append(b.g.Defers, s)
		return cur

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := findTarget(b.breaks, s.Label); t != nil {
				cur.addSucc(t)
			} else {
				cur.addSucc(b.g.Exit) // malformed/unknown label: stay safe
			}
			return nil
		case token.CONTINUE:
			if t := findTarget(b.continues, s.Label); t != nil {
				cur.addSucc(t)
			} else {
				cur.addSucc(b.g.Exit)
			}
			return nil
		case token.FALLTHROUGH:
			// Handled structurally by the switch lowering (each case body
			// already gets an edge to the next on fallthrough); treat as
			// fall-through end of the clause.
			return cur
		default: // GOTO: not modeled — conservatively an exit edge AND a fall-through
			cur.Nodes = append(cur.Nodes, s)
			cur.addSucc(b.g.Exit)
			return cur
		}

	case *ast.IfStmt:
		if s.Init != nil {
			cur = b.stmt(cur, s.Init, "")
		}
		cur.Nodes = append(cur.Nodes, s.Cond)
		thenB := b.g.NewBlock()
		cur.addSucc(thenB)
		after := b.g.NewBlock()
		if end := b.stmts(thenB, s.Body.List); end != nil {
			end.addSucc(after)
		}
		if s.Else != nil {
			elseB := b.g.NewBlock()
			cur.addSucc(elseB)
			if end := b.stmt(elseB, s.Else, ""); end != nil {
				end.addSucc(after)
			}
		} else {
			cur.addSucc(after)
		}
		return after

	case *ast.ForStmt:
		if s.Init != nil {
			cur = b.stmt(cur, s.Init, "")
		}
		head := b.g.NewBlock()
		cur.addSucc(head)
		after := b.g.NewBlock()
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
			head.addSucc(after)
		}
		post := head
		if s.Post != nil {
			post = b.g.NewBlock()
			post.Nodes = append(post.Nodes, s.Post)
			post.addSucc(head)
		}
		b.pushLoop(label, after, post)
		bodyB := b.g.NewBlock()
		head.addSucc(bodyB)
		if end := b.stmts(bodyB, s.Body.List); end != nil {
			end.addSucc(post)
		}
		b.popLoop()
		return after

	case *ast.RangeStmt:
		head := b.g.NewBlock()
		// The range operand is evaluated once, but the per-iteration
		// receive (for channels) happens at the head: model X at the head
		// so held-fact analyses see it on every iteration.
		head.Nodes = append(head.Nodes, s.X)
		cur.addSucc(head)
		after := b.g.NewBlock()
		head.addSucc(after)
		b.pushLoop(label, after, head)
		bodyB := b.g.NewBlock()
		head.addSucc(bodyB)
		if end := b.stmts(bodyB, s.Body.List); end != nil {
			end.addSucc(head)
		}
		b.popLoop()
		return after

	case *ast.SwitchStmt:
		if s.Init != nil {
			cur = b.stmt(cur, s.Init, "")
		}
		if s.Tag != nil {
			cur.Nodes = append(cur.Nodes, s.Tag)
		}
		return b.switchBody(cur, label, s.Body, nil)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			cur = b.stmt(cur, s.Init, "")
		}
		cur.Nodes = append(cur.Nodes, s.Assign)
		return b.switchBody(cur, label, s.Body, nil)

	case *ast.SelectStmt:
		after := b.g.NewBlock()
		b.breaks = append(b.breaks, branchTarget{label: label, block: after})
		reachable := false
		for _, c := range s.Body.List {
			comm := c.(*ast.CommClause)
			caseB := b.g.NewBlock()
			cur.addSucc(caseB)
			start := caseB
			if comm.Comm != nil {
				start = b.stmt(caseB, comm.Comm, "")
				if start == nil { // a comm that diverges: impossible, but stay safe
					continue
				}
			}
			if end := b.stmts(start, comm.Body); end != nil {
				end.addSucc(after)
				reachable = true
			}
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		if len(s.Body.List) == 0 || !reachable {
			// select{} blocks forever; all-diverging cases never fall
			// through. after stays edgeless unless a break reached it.
		}
		return after

	default:
		// Plain statements: expressions, assignments, declarations, sends,
		// inc/dec, go, empty. One node, straight through.
		if _, ok := s.(*ast.EmptyStmt); !ok {
			cur.Nodes = append(cur.Nodes, s)
		}
		return cur
	}
}

// switchBody lowers the case clauses of a switch/type-switch, wiring
// fallthrough edges case-to-case.
func (b *builder) switchBody(cur *Block, label string, body *ast.BlockStmt, _ *Block) *Block {
	after := b.g.NewBlock()
	b.breaks = append(b.breaks, branchTarget{label: label, block: after})
	clauses := body.List
	starts := make([]*Block, len(clauses))
	hasDefault := false
	for i := range clauses {
		starts[i] = b.g.NewBlock()
		cur.addSucc(starts[i])
		if cc, ok := clauses[i].(*ast.CaseClause); ok && cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		cur.addSucc(after) // no case matched
	}
	for i, clause := range clauses {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		start := starts[i]
		for _, e := range cc.List {
			start.Nodes = append(start.Nodes, e)
		}
		end := b.stmts(start, cc.Body)
		if end != nil {
			if fallsThrough(cc.Body) && i+1 < len(starts) {
				end.addSucc(starts[i+1])
			} else {
				end.addSucc(after)
			}
		}
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	return after
}

// fallsThrough reports whether a case body ends in a fallthrough statement.
func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

func (b *builder) pushLoop(label string, brk, cont *Block) {
	b.breaks = append(b.breaks, branchTarget{label: label, block: brk})
	b.continues = append(b.continues, branchTarget{label: label, block: cont})
}

func (b *builder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

// findTarget resolves a break/continue label against the target stack,
// innermost first. A nil label matches the innermost target.
func findTarget(stack []branchTarget, label *ast.Ident) *Block {
	for i := len(stack) - 1; i >= 0; i-- {
		if label == nil || stack[i].label == label.Name {
			return stack[i].block
		}
	}
	return nil
}
