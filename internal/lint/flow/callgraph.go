package flow

import (
	"go/ast"
	"go/types"
	"sort"
)

// The conservative intra-package call graph: an edge F → G exists when F's
// body contains a static call to G and G is declared in the package under
// analysis. Dynamic calls — interface methods, function values, calls into
// other packages — produce no edges; analyses that gate on reachability
// (lockorder's hot-path check) therefore under-approximate reachability
// and over-approximate nothing, and analyses that resolve a single callee
// (goroline's `go s.run()`) simply fail to resolve and fall back to their
// conservative default.

// CallGraph maps a package's declared functions to their bodies and their
// static in-package callees.
type CallGraph struct {
	decls map[*types.Func]*ast.FuncDecl
	calls map[*types.Func][]*types.Func
}

// Callee resolves the *types.Func a static call invokes, or nil for
// conversions, built-ins and dynamic calls through function values.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// NewCallGraph builds the call graph of one typechecked package.
func NewCallGraph(info *types.Info, files []*ast.File) *CallGraph {
	cg := &CallGraph{
		decls: make(map[*types.Func]*ast.FuncDecl),
		calls: make(map[*types.Func][]*types.Func),
	}
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			cg.decls[fn] = fd
		}
	}
	for fn, fd := range cg.decls {
		seen := make(map[*types.Func]bool)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := Callee(info, call)
			if callee == nil || seen[callee] {
				return true
			}
			if _, declared := cg.decls[callee]; declared {
				seen[callee] = true
				cg.calls[fn] = append(cg.calls[fn], callee)
			}
			return true
		})
		// Deterministic edge order for any traversal-derived output.
		sort.Slice(cg.calls[fn], func(i, j int) bool {
			return cg.decls[cg.calls[fn][i]].Pos() < cg.decls[cg.calls[fn][j]].Pos()
		})
	}
	return cg
}

// Decl returns fn's declaration in the analyzed package, or nil.
func (cg *CallGraph) Decl(fn *types.Func) *ast.FuncDecl { return cg.decls[fn] }

// Funcs returns every declared function, in declaration order.
func (cg *CallGraph) Funcs() []*types.Func {
	out := make([]*types.Func, 0, len(cg.decls))
	for fn := range cg.decls {
		out = append(out, fn)
	}
	sort.Slice(out, func(i, j int) bool { return cg.decls[out[i]].Pos() < cg.decls[out[j]].Pos() })
	return out
}

// ReachableFrom returns the set of functions reachable (by static
// in-package calls, including the roots themselves) from every declared
// function satisfying root.
func (cg *CallGraph) ReachableFrom(root func(*types.Func) bool) map[*types.Func]bool {
	reach := make(map[*types.Func]bool)
	var stack []*types.Func
	for _, fn := range cg.Funcs() {
		if root(fn) {
			reach[fn] = true
			stack = append(stack, fn)
		}
	}
	for len(stack) > 0 {
		fn := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, callee := range cg.calls[fn] {
			if !reach[callee] {
				reach[callee] = true
				stack = append(stack, callee)
			}
		}
	}
	return reach
}
