package flow

import "go/ast"

// The forward dataflow engine: facts are small sets over a comparable key
// type (a lock identity, a dirty store receiver), the transfer function is
// per-node gen/kill, and joins union facts — a MAY analysis: a fact holds
// at a point if it holds on ANY path there, which is the conservative
// direction for "is a lock possibly held" and "is a write possibly
// unflushed". The worklist iterates to fixpoint; with union joins and
// monotone per-node transfers over finite key sets, termination is
// guaranteed.

// Facts is one dataflow fact set.
type Facts[K comparable] map[K]bool

// Clone returns an independent copy of f.
func (f Facts[K]) Clone() Facts[K] {
	out := make(Facts[K], len(f))
	for k := range f {
		out[k] = true
	}
	return out
}

// Equal reports whether f and g hold the same facts.
func (f Facts[K]) Equal(g Facts[K]) bool {
	if len(f) != len(g) {
		return false
	}
	for k := range f {
		if !g[k] {
			return false
		}
	}
	return true
}

// union adds g's facts into f, reporting whether f changed.
func (f Facts[K]) union(g Facts[K]) bool {
	changed := false
	for k := range g {
		if !f[k] {
			f[k] = true
			changed = true
		}
	}
	return changed
}

// Transfer applies one node's gen/kill effect to facts IN PLACE and
// returns the updated set (returning a different map is also allowed).
type Transfer[K comparable] func(n ast.Node, facts Facts[K]) Facts[K]

// Forward runs transfer over g to fixpoint and returns each block's entry
// fact set. Blocks unreachable from Entry are absent from the result: no
// path reaches them, so no fact holds there. Callers that need per-node
// facts replay transfer over a block's Nodes starting from its entry set —
// the same fold Forward itself uses, so the replay is exact.
func Forward[K comparable](g *Graph, entry Facts[K], transfer Transfer[K]) map[*Block]Facts[K] {
	in := make(map[*Block]Facts[K], len(g.Blocks))
	in[g.Entry] = entry.Clone()

	// Worklist seeded in block order; Index order keeps the iteration — and
	// with it any diagnostic ordering derived from it — deterministic.
	work := []*Block{g.Entry}
	queued := map[*Block]bool{g.Entry: true}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false

		out := in[b].Clone()
		for _, n := range b.Nodes {
			out = transfer(n, out)
		}
		for _, s := range b.Succs {
			have, ok := in[s]
			if !ok {
				in[s] = out.Clone()
			} else if !have.union(out) {
				continue
			}
			if !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}
	return in
}
