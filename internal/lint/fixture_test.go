package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// The fixture harness: each testdata/<name> directory is one package of
// golden inputs. A finding is expected exactly where a `// want "regexp"`
// (or backquoted) comment sits; the regexp matches against
// "[analyzer] message". Fixtures are typechecked for real — imports resolve
// through the same go list export-data path the driver uses — so the
// analyzers run here exactly as they do in CI.

// fixturePath is the synthetic import-path prefix fixtures are checked
// under; nondeterm zones in tests reference it.
const fixturePath = "fixture/"

type wantComment struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// loadFixture parses and typechecks testdata/<name> as one package.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	dir := filepath.Join("testdata", name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	importSet := make(map[string]bool)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			if path, err := strconv.Unquote(imp.Path.Value); err == nil {
				importSet[path] = true
			}
		}
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}
	exports, importMap := map[string]string{}, map[string]string{}
	if len(importSet) > 0 {
		imports := make([]string, 0, len(importSet))
		for path := range importSet {
			imports = append(imports, path)
		}
		sort.Strings(imports)
		exports, importMap, err = Deps(".", imports...)
		if err != nil {
			t.Fatal(err)
		}
	}
	pkg, err := Typecheck(fset, fixturePath+name, files, exports, importMap)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// parseWants collects the `// want` expectations of every fixture file.
func parseWants(t *testing.T, pkg *Package) []*wantComment {
	t.Helper()
	var wants []*wantComment
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				posn := pkg.Fset.Position(c.Slash)
				for {
					rest = strings.TrimSpace(rest)
					if rest == "" {
						break
					}
					quoted, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s:%d: malformed want comment %q", posn.Filename, posn.Line, c.Text)
					}
					expr, err := strconv.Unquote(quoted)
					if err != nil {
						t.Fatalf("%s:%d: %v", posn.Filename, posn.Line, err)
					}
					re, err := regexp.Compile(expr)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp: %v", posn.Filename, posn.Line, err)
					}
					wants = append(wants, &wantComment{file: posn.Filename, line: posn.Line, pattern: re})
					rest = rest[len(quoted):]
				}
			}
		}
	}
	return wants
}

// checkFixture runs analyzers over testdata/<name> and diffs the findings
// against the fixture's want comments.
func checkFixture(t *testing.T, name string, analyzers []*Analyzer) {
	t.Helper()
	pkg := loadFixture(t, name)
	wants := parseWants(t, pkg)
	for _, d := range Run(pkg, analyzers) {
		posn := pkg.Fset.Position(d.Pos)
		text := fmt.Sprintf("[%s] %s", d.Analyzer, d.Message)
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == posn.Filename && w.line == posn.Line && w.pattern.MatchString(text) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected finding: %s", posn.Filename, posn.Line, text)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no finding matched %q", w.file, w.line, w.pattern)
		}
	}
}

func TestNondetermFixture(t *testing.T) {
	zones := []Zone{{Path: fixturePath + "nondeterm"}}
	checkFixture(t, "nondeterm", []*Analyzer{NewNondeterm(zones)})
}

func TestNondetermOutOfZone(t *testing.T) {
	// Same constructs, but the fixture package is outside every zone: the
	// fixture has zero want comments, so any finding fails the test.
	zones := []Zone{{Path: fixturePath + "nondeterm"}}
	checkFixture(t, "nondeterm_outzone", []*Analyzer{NewNondeterm(zones)})
}

func TestNondetermFileScopedZone(t *testing.T) {
	// The zone names only inzone.go: outzone.go's identical call must not
	// be reported.
	zones := []Zone{{Path: fixturePath + "nondetermfiles", Files: []string{"inzone.go"}}}
	checkFixture(t, "nondetermfiles", []*Analyzer{NewNondeterm(zones)})
}

func TestJSONSafeFixture(t *testing.T) {
	checkFixture(t, "jsonsafe", []*Analyzer{JSONSafe})
}

func TestSeedFlowFixture(t *testing.T) {
	checkFixture(t, "seedflow", []*Analyzer{SeedFlow})
}

func TestPoolPutFixture(t *testing.T) {
	checkFixture(t, "poolput", []*Analyzer{PoolPut})
}

func TestLockOrderFixture(t *testing.T) {
	checkFixture(t, "lockorder", []*Analyzer{LockOrder})
}

func TestGoroLineFixture(t *testing.T) {
	checkFixture(t, "goroline", []*Analyzer{GoroLine})
}

func TestErrSentinelFixture(t *testing.T) {
	checkFixture(t, "errsentinel", []*Analyzer{ErrSentinel})
}

func TestFlushBarrierFixture(t *testing.T) {
	checkFixture(t, "flushbarrier", []*Analyzer{FlushBarrier})
}
