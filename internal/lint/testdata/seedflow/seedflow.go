// Package seedflow is a lint fixture: seeds invented from loop-variable
// arithmetic at an xrand constructor's call site must be flagged; seed
// tables, Split-derived labels and named derivation helpers are declared
// derivations and stay clean.
package seedflow

import (
	"fmt"

	"varbench/internal/xrand"
)

func perRealization(seed uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		out[i] = xrand.New(seed + uint64(i)).Uint64() // want `seed for xrand.New derives from loop variable "i"`
	}
	return out
}

func perStream(seed uint64, vars []string) []*xrand.Streams {
	out := make([]*xrand.Streams, 0, len(vars))
	for e := range vars {
		out = append(out, xrand.NewStreams(seed^uint64(e))) // want `seed for xrand.NewStreams derives from loop variable "e"`
	}
	return out
}

func reseeded(src *xrand.Source, rounds int) {
	for r := 0; r < rounds; r++ {
		src.Seed(uint64(r) * 2654435761) // want `seed for xrand.Seed derives from loop variable "r"`
	}
}

func fromTable(roots []uint64) []uint64 {
	out := make([]uint64, len(roots))
	for i := range roots {
		out[i] = xrand.New(roots[i]).Uint64() // table lookup: declared derivation, no finding
	}
	return out
}

func viaSplit(seed uint64, n int) []uint64 {
	root := xrand.New(seed)
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		// A named derivation call owns its arguments: no finding.
		out[i] = root.Split(fmt.Sprintf("realization/%d", i)).Uint64()
	}
	return out
}

func historical(seed uint64) uint64 {
	var last uint64
	for e := 0; e < 4; e++ {
		//lint:allow seedflow(fixture: golden sequence derives from this historical arithmetic)
		last = xrand.New(seed + uint64(e)).Uint64()
	}
	return last
}
