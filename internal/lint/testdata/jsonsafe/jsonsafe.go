// Package jsonsafe is a lint fixture: encoding/json calls over float-bearing
// and interface-typed arguments must be flagged; types that own their
// encoding via json.Marshaler, and byte slices, are safe.
package jsonsafe

import "encoding/json"

type Stats struct {
	Name string
	Mean float64
}

// Safe implements json.Marshaler, standing in for the jsonx-backed report
// wrappers: its floats are sanitized inside MarshalJSON.
type Safe struct {
	Mean float64
}

func (Safe) MarshalJSON() ([]byte, error) { return []byte(`{}`), nil }

type Wrapped struct {
	Inner Safe
	Count int
}

type Nested struct {
	Tag   string
	Cells []Stats
}

func marshalStats(s Stats) ([]byte, error) {
	return json.Marshal(s) // want `the argument's Mean \(float64\) is a float`
}

func marshalNested(n Nested) ([]byte, error) {
	return json.Marshal(n) // want `Cells\[\]\.Mean \(float64\) is a float`
}

func marshalAny(v any) ([]byte, error) {
	return json.Marshal(v) // want `interface-typed, so its dynamic value may carry non-finite floats`
}

func encodeStats(enc *json.Encoder, s Stats) error {
	return enc.Encode(s) // want `json\.Encode of Stats`
}

func marshalSafe(w Wrapped) ([]byte, error) {
	return json.Marshal(w) // Safe implements json.Marshaler: no finding
}

func marshalBytes(b []byte) ([]byte, error) {
	return json.Marshal(b) // []byte marshals to base64: no finding
}

func marshalAllowed(s Stats) ([]byte, error) {
	return json.Marshal(s) //lint:allow jsonsafe(fixture: all values proven finite upstream)
}
