// Package errsentinel exercises the errsentinel analyzer: module sentinel
// errors are compared via errors.Is and wrapped with %w, never matched by
// identity or flattened into text. Standard-library sentinels (io.EOF) are
// exempt — the stdlib documents identity comparison for them.
package errsentinel

import (
	"errors"
	"fmt"
	"io"
)

var ErrClosed = errors.New("store is closed")
var errStale = errors.New("stale snapshot")

// The resilience-layer sentinel family: classification must go through
// errors.Is so retry/quarantine decisions survive wrapping.
var ErrTrialTimeout = errors.New("trial timed out")
var ErrInjected = errors.New("injected fault")

func classify(err error) string {
	if err == ErrTrialTimeout { // want `\[errsentinel\] sentinel error ErrTrialTimeout compared with ==; a wrapped error never matches`
		return "timeout"
	}
	if errors.Is(err, ErrInjected) {
		return "injected"
	}
	return "other"
}

func injectOK(op string, n int) error {
	return fmt.Errorf("store: %w: %s call %d", ErrInjected, op, n)
}

func timeoutBad(err error) error {
	return fmt.Errorf("giving up: %s", ErrTrialTimeout) // want `\[errsentinel\] sentinel error ErrTrialTimeout formatted with %s`
}

func compare(err error) bool {
	if err == ErrClosed { // want `\[errsentinel\] sentinel error ErrClosed compared with ==; a wrapped error never matches`
		return true
	}
	if err != errStale { // want `\[errsentinel\] sentinel error errStale compared with !=`
		return false
	}
	return errors.Is(err, ErrClosed)
}

func stdlib(err error) bool {
	return err == io.EOF // the documented idiom for unwrapped stdlib sentinels
}

func nilCheck() bool {
	return ErrClosed == nil // nil comparison is not an identity match bug
}

func tag(err error) string {
	switch err {
	case ErrClosed: // want `\[errsentinel\] switch case compares an error against sentinel ErrClosed by identity`
		return "closed"
	case nil:
		return "ok"
	}
	return "other"
}

func wrapOK(key string) error {
	return fmt.Errorf("get %q: %w", key, ErrClosed)
}

func wrapBad(key string) error {
	return fmt.Errorf("get %q: %v", key, ErrClosed) // want `\[errsentinel\] sentinel error ErrClosed formatted with %v`
}

func wrapAligned(n int) error {
	// Width, precision and * must not shift the verb/argument alignment.
	return fmt.Errorf("after %5.1f%% (%*d tries): %w", 99.9, 8, n, ErrClosed)
}

func legacy(err error) bool {
	return err == ErrClosed //lint:allow errsentinel(replay loop compares load's unwrapped return directly)
}
