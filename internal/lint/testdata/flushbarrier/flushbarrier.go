// The flushbarrier fixture is package main on purpose: the CLI-exit
// checks (return with unflushed writes) only fire there, while the
// read-after-write and os.Exit checks fire everywhere.
package main

import "os"

// KV is store-like: its method set has both Put and Flush.
type KV struct{ n int }

func (k *KV) Put(key, val string)       {}
func (k *KV) PutJSON(key string, v any) {}
func (k *KV) Get(key string) string     { return "" }
func (k *KV) GetJSON(key string) error  { return nil }
func (k *KV) Flush() error              { return nil }
func (k *KV) Close() error              { return nil }

// plain has Flush but no Put: not store-like, never tracked.
type plain struct{}

func (plain) Flush() {}

func readBack(kv *KV) {
	kv.Put("a", "1")
	_ = kv.Get("a") // want `\[flushbarrier\] Get read from kv while a Put on this path is unflushed`
	kv.Flush()
}

func barrier(kv *KV) {
	kv.Put("a", "1")
	kv.Flush()
	_ = kv.Get("a")
}

func condDirty(kv *KV, retry bool) {
	if retry {
		kv.PutJSON("a", 1)
	}
	_ = kv.Get("a") // want `\[flushbarrier\] Get read from kv while a Put on this path is unflushed`
	kv.Flush()
}

func exitDirty(kv *KV) {
	kv.Put("a", "1")
	return // want `\[flushbarrier\] CLI exit path returns with unflushed writes to kv`
}

func exitClean(kv *KV) {
	kv.Put("a", "1")
	kv.Flush()
	return
}

func deferredBarrier(kv *KV) {
	defer kv.Close()
	kv.Put("a", "1")
	return
}

func mayFail() error { return nil }

func errorBailout(kv *KV) error {
	kv.Put("a", "1")
	if err := mayFail(); err != nil {
		return err // failure paths owe no durability
	}
	return kv.Flush()
}

func hardExit(kv *KV) {
	defer kv.Flush() // defers do not run past os.Exit
	kv.Put("a", "1")
	os.Exit(1) // want `\[flushbarrier\] os\.Exit with unflushed writes to kv`
}

func flushOnly(w plain) {
	w.Flush()
}

func snapshot(kv *KV) {
	kv.Put("a", "1")
	_ = kv.Get("a") //lint:allow flushbarrier(read-your-writes cache probe; callers own the durability barrier)
	kv.Flush()
}

func main() {
	kv := &KV{}
	readBack(kv)
	barrier(kv)
	condDirty(kv, true)
	exitDirty(kv)
	exitClean(kv)
	deferredBarrier(kv)
	_ = errorBailout(kv)
	flushOnly(plain{})
	snapshot(kv)
	hardExit(kv)
}
