// Package outzone is a lint fixture: the same constructs the nondeterm
// fixture flags, in a package OUTSIDE every deterministic zone. Nothing here
// may be reported.
package outzone

import (
	"math/rand"
	"time"
)

func clocked() time.Duration {
	start := time.Now()
	return time.Since(start)
}

func mapOrder(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total + rand.Int()
}
