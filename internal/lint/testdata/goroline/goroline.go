// Package goroline exercises the goroline analyzer: every `go` statement
// must show a termination edge — a ctx.Done()/closed-channel receive or a
// WaitGroup.Done with a reachable Wait — or stay trivially bounded.
package goroline

import (
	"context"
	"sync"
)

type Pump struct {
	quit chan struct{}
	data chan int
}

// Start launches the committer-style loop; close(p.quit) in Close is the
// package-wide termination evidence, matched by (type, field).
func (p *Pump) Start() {
	go p.loop()
}

func (p *Pump) loop() {
	for {
		select {
		case <-p.quit:
			return
		case v := <-p.data:
			_ = v
		}
	}
}

func (p *Pump) Close() { close(p.quit) }

// watch threads ctx.Done() through a variable: still evidence.
func watch(ctx context.Context, ch chan int) {
	done := ctx.Done()
	go func() {
		for {
			select {
			case <-done:
				return
			case v := <-ch:
				_ = v
			}
		}
	}()
}

// workers pair WaitGroup.Done with a reachable Wait; the unclosed jobs
// range would otherwise be a hazard.
func workers(jobs chan int) {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				_ = j
			}
		}()
	}
	wg.Wait()
}

// drain ranges over a channel the package closes: the range itself ends.
func drain(res chan int) {
	go func() {
		for v := range res {
			_ = v
		}
	}()
	close(res)
}

// bounded has no hazard at all: it runs to completion on its own.
func bounded(out *int) {
	go func() {
		*out = 42
	}()
}

// leak spins forever with no termination edge.
func leak(ch chan int) {
	go func() { // want `\[goroline\] goroutine has no provable termination edge and contains an unconditional for loop`
		for {
			v := <-ch
			_ = v
		}
	}()
}

// block parks forever on a channel nothing closes.
func block(ch chan int) {
	go func() { // want `\[goroline\] goroutine has no provable termination edge and contains a blocking receive`
		v := <-ch
		_ = v
	}()
}

// launch cannot be resolved to a body: unreviewable, so reported.
func launch(f func()) {
	go f() // want `\[goroline\] goroutine launched through a value the analyzer cannot resolve`
}

// relay is a deliberate one-shot leak, with the reasoned escape hatch.
func relay(sig chan int) {
	//lint:allow goroline(one-shot signal relay; exits with the process by design)
	go func() {
		v := <-sig
		_ = v
	}()
}
