// Package nondetermfiles is a lint fixture for file-scoped zones: the zone
// names only inzone.go, so this file is governed and outzone.go is not.
package nondetermfiles

import "time"

func clockedIn() time.Time {
	return time.Now() // want `call to time.Now inside a deterministic zone`
}
