package nondetermfiles

import "time"

func clockedOut() time.Time {
	return time.Now() // not in the zone's file list: no finding
}
