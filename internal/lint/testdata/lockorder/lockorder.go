// Package lockorder exercises the lockorder analyzer: blocking under a
// mutex on hot paths (direct and via the call graph), non-blocking kick
// idioms, cond.Wait exemption, self-deadlock, and the global
// acquisition-order graph.
package lockorder

import (
	"os"
	"sync"
	"time"
)

type Cache struct {
	mu    sync.Mutex
	bufMu sync.Mutex
	f     *os.File
	kick  chan struct{}
	cond  *sync.Cond
}

// Put is a hot root by name; append and flushNow are hot by call-graph
// reachability.
func (c *Cache) Put(b []byte) {
	c.append(b)
	c.flushNow()
}

func (c *Cache) append(b []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.f.Sync() // want `\[lockorder\] fsync \(\(\*os\.File\)\.Sync\) while holding c\.mu on a store hot path`
}

// Get blocks on a bare send while holding the lock.
func (c *Cache) Get(out chan []byte) {
	c.mu.Lock()
	out <- nil // want `\[lockorder\] channel send while holding c\.mu on a store hot path`
	c.mu.Unlock()
}

// PutJSON parks on a default-less select while holding the lock.
func (c *Cache) PutJSON() {
	c.mu.Lock()
	select { // want `\[lockorder\] select with no default case while holding c\.mu`
	case <-c.kick:
	}
	c.mu.Unlock()
}

// GetJSON kicks the committer without blocking: a select WITH a default
// under the lock is the sanctioned idiom.
func (c *Cache) GetJSON() {
	c.bufMu.Lock()
	select {
	case c.kick <- struct{}{}:
	default:
	}
	c.bufMu.Unlock()
}

// Flush waits on a condition variable: Cond.Wait releases the mutex while
// waiting and is exempt by design.
func (c *Cache) Flush() {
	c.mu.Lock()
	for c.f == nil {
		c.cond.Wait()
	}
	c.mu.Unlock()
}

// sync mirrors the jsonl backend's fsync-under-mu, with the reasoned
// escape hatch instead of a restructure; reached from Put via flushNow.
func (c *Cache) flushNow() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.f.Sync() //lint:allow lockorder(single-writer fsync under mu mirrors the jsonl backend's Flush)
}

// cold is unreachable from any hot root: sleeping under the lock is not
// this analyzer's business outside the hot path.
func (c *Cache) cold() {
	c.mu.Lock()
	time.Sleep(time.Millisecond)
	c.mu.Unlock()
}

// relock deadlocks against itself regardless of hot-path gating.
func (c *Cache) relock() {
	c.mu.Lock()
	c.mu.Lock() // want `\[lockorder\] mutex c\.mu locked while already held on this path: self-deadlock`
	c.mu.Unlock()
	c.mu.Unlock()
}

// stageThenCommit and commitThenStage acquire the two locks in opposite
// orders: each inner acquisition completes the cycle.
func (c *Cache) stageThenCommit() {
	c.mu.Lock()
	c.bufMu.Lock() // want `\[lockorder\] lock order inversion: acquiring Cache\.bufMu while holding Cache\.mu completes the cycle Cache\.mu → Cache\.bufMu → Cache\.mu`
	c.bufMu.Unlock()
	c.mu.Unlock()
}

func (c *Cache) commitThenStage() {
	c.bufMu.Lock()
	c.mu.Lock() // want `\[lockorder\] lock order inversion: acquiring Cache\.mu while holding Cache\.bufMu completes the cycle Cache\.bufMu → Cache\.mu → Cache\.bufMu`
	c.mu.Unlock()
	c.bufMu.Unlock()
}

// transfer takes the same lock class on two instances with no order.
func transfer(a, b *Cache) {
	a.mu.Lock()
	b.mu.Lock() // want `\[lockorder\] two Cache\.mu mutexes \(a\.mu, then b\.mu\) acquired together with no defined order`
	b.mu.Unlock()
	a.mu.Unlock()
}

// release pairs cleanly: lock, unlock, then block — no finding.
func (c *Cache) release(out chan []byte) {
	c.mu.Lock()
	c.mu.Unlock()
	out <- nil
}

func init() {
	_ = (&Cache{}).cold
	_ = (&Cache{}).relock
	_ = (&Cache{}).stageThenCommit
	_ = (&Cache{}).commitThenStage
	_ = (&Cache{}).flushNow
	_ = transfer
	_ = (&Cache{}).release
}
