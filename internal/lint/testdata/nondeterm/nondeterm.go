// Package nondeterm is a lint fixture: the whole package sits inside a
// deterministic zone, so every ambient-entropy read below must be flagged
// unless an allow directive covers it.
package nondeterm

import (
	"math/rand" // want `import math/rand inside a deterministic zone`
	"time"
)

func clocked() time.Duration {
	start := time.Now()      // want `call to time.Now inside a deterministic zone`
	return time.Since(start) // want `call to time.Since inside a deterministic zone`
}

func allowedClock() time.Time {
	return time.Now() //lint:allow nondeterm(fixture: wall-clock metadata, not result state)
}

func mapOrder(m map[string]int) int {
	total := 0
	for _, v := range m { // want `range over map inside a deterministic zone`
		total += v
	}
	keys := make([]string, 0, len(m))
	//lint:allow nondeterm(fixture: order-independent key collection, sorted by the caller)
	for k := range m {
		keys = append(keys, k)
	}
	return total + len(keys) + rand.Int()
}
