// Package poolput is a lint fixture: sync.Pool.Put of a stale or
// branch-dependent slice header must be flagged; the engine's
// writeback-through-the-pooled-pointer idiom stays clean.
package poolput

import "sync"

var pool = sync.Pool{New: func() any {
	s := make([]float64, 0, 64)
	return &s
}}

func stale(n int) {
	p := pool.Get().(*[]float64)
	buf := (*p)[:0]
	for i := 0; i < n; i++ {
		buf = append(buf, float64(i))
	}
	pool.Put(p) // want `the pool retains a stale slice header`
}

func writeback(n int) {
	p := pool.Get().(*[]float64)
	buf := (*p)[:0]
	for i := 0; i < n; i++ {
		buf = append(buf, float64(i))
	}
	*p = buf // header written back through the pooled pointer: no finding
	pool.Put(p)
}

func conditional(grow bool) {
	buf := make([]float64, 0, 8)
	if grow {
		buf = append(buf, 1)
	}
	pool.Put(&buf) // want `conditionally reassigned buffer`
}

func unconditional() {
	buf := make([]float64, 0, 8)
	buf = append(buf, 1) // plain straight-line reassignment: no finding
	pool.Put(&buf)
}

func allowed(grow bool) {
	buf := make([]float64, 0, 8)
	if grow {
		buf = append(buf, 1)
	}
	pool.Put(&buf) //lint:allow poolput(fixture: single-goroutine scratch pool, header identity is irrelevant)
}
