package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"varbench/internal/lint/flow"
)

// The lockorder analyzer: flow-sensitive mutex discipline over the CFG.
// It tracks which sync.Mutex/RWMutex instances MAY be held at each program
// point (forward may-analysis, union joins) and enforces two contracts:
//
//  1. A package-wide acquisition order. Every point where lock B is
//     acquired while lock A is held contributes an edge A → B to a global
//     order graph over lock CLASSES — (named type, field) for struct
//     mutexes, the variable name for package-level ones. A cycle in that
//     graph is the classic AB/BA deadlock: each edge completing a cycle is
//     reported at its acquisition site. Re-acquiring a mutex already held
//     on some path is reported as a self-deadlock.
//
//  2. No blocking while holding a mutex on a store hot path. In functions
//     reachable (via the conservative intra-package call graph) from a
//     method named Put, PutJSON, Get, GetJSON or Flush, a blocking
//     operation — (*os.File).Sync, time.Sleep, (*sync.WaitGroup).Wait, a
//     channel send/receive outside a select with a default, a
//     range-over-channel, a select without a default — executed while a
//     mutex may be held stalls every writer and reader queued behind that
//     lock. (*sync.Cond).Wait is exempt: it releases the mutex while
//     waiting, which is exactly the idiom (seglog's watermark waits) this
//     check exists to steer code toward. Non-blocking kicks — sends and
//     receives under a select WITH a default — pass untouched.
//
// Both checks are intraprocedural over lock state: a lock held across a
// call into another function is not followed into the callee. The hot-path
// GATING is interprocedural (call-graph reachability); the lock tracking
// is per-function, which keeps the analysis O(function) and the findings
// local enough to act on.

// LockOrder is the suite's mutex-ordering and blocking-under-lock analyzer.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "enforce a consistent global mutex acquisition order and forbid " +
		"blocking calls while a mutex is held on a store hot path",
	Run: runLockOrder,
}

// mutexOp classifies fn as a mutex operation: "lock", "rlock", "unlock",
// "runlock" or "" for anything else (TryLock/TryRLock never block and are
// deliberately ignored).
func mutexOp(fn *types.Func) string {
	k := keyOf(fn)
	if k.pkg != "sync" || (k.recv != "Mutex" && k.recv != "RWMutex") {
		return ""
	}
	switch k.name {
	case "Lock":
		return "lock"
	case "RLock":
		return "rlock"
	case "Unlock":
		return "unlock"
	case "RUnlock":
		return "runlock"
	}
	return ""
}

// exprPath renders a receiver chain (s.mu, c.store.mu, *p) as a stable
// instance identity rooted at a types.Object. It refuses anything that is
// not a plain ident/selector/star chain.
func exprPath(info *types.Info, e ast.Expr) (types.Object, string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if obj == nil {
			return nil, "", false
		}
		return obj, e.Name, true
	case *ast.SelectorExpr:
		root, path, ok := exprPath(info, e.X)
		if !ok {
			return nil, "", false
		}
		return root, path + "." + e.Sel.Name, true
	case *ast.StarExpr:
		return exprPath(info, e.X)
	}
	return nil, "", false
}

// lockClass names the package-wide equivalence class of a mutex receiver:
// "Type.field" for struct mutexes, the variable name for package-level
// vars, "local <name>" otherwise. The order graph runs over classes so
// that s.mu in one method and other.mu in another method of the same type
// mean the same lock role.
func lockClass(info *types.Info, e ast.Expr) string {
	e = ast.Unparen(e)
	if sel, ok := e.(*ast.SelectorExpr); ok {
		if tv, ok := info.Types[sel.X]; ok && tv.Type != nil {
			t := tv.Type
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				return named.Obj().Name() + "." + sel.Sel.Name
			}
		}
		return sel.Sel.Name
	}
	if id, ok := e.(*ast.Ident); ok {
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return obj.Name()
		}
		return "local " + id.Name
	}
	return "local " + types.ExprString(e)
}

// hotPathRoots are the method names whose call trees form the store hot
// path for the blocking-under-mutex check.
var hotPathRoots = map[string]bool{
	"Put": true, "PutJSON": true, "Get": true, "GetJSON": true, "Flush": true,
}

// lockEdge is one held→acquired observation in the order graph.
type lockEdge struct{ from, to string }

type lockEdgeSite struct {
	pos      token.Pos
	fromPath string // instance spelling at the site, for messages
	toPath   string
}

func runLockOrder(p *Pass) {
	cg := flow.NewCallGraph(p.TypesInfo, p.Files)
	hotSet := cg.ReachableFrom(func(fn *types.Func) bool { return hotPathRoots[fn.Name()] })

	edges := make(map[lockEdge]lockEdgeSite)
	var edgeOrder []lockEdge // discovery order: deterministic reporting

	for _, fb := range funcBodies(p.TypesInfo, p.Files) {
		fn := fb.Fn
		if fn == nil && fb.Decl != nil {
			// A literal runs in its enclosing function's hot context.
			fn, _ = p.TypesInfo.Defs[fb.Decl.Name].(*types.Func)
		}
		hot := fn != nil && hotSet[fn]
		lo := &lockOrderFunc{
			pass:    p,
			hot:     hot,
			classOf: make(map[string]string),
			record: func(e lockEdge, s lockEdgeSite) {
				if _, seen := edges[e]; !seen {
					edges[e] = s
					edgeOrder = append(edgeOrder, e)
				}
			},
		}
		lo.analyze(fb.Body)
	}

	// Cycle detection over lock classes: report every recorded edge that
	// participates in a cycle, at its first acquisition site.
	adj := make(map[string][]string)
	for e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	for from := range adj {
		sort.Strings(adj[from])
	}
	var cycleFindings []Diagnostic
	for _, e := range edgeOrder {
		site := edges[e]
		if e.from == e.to {
			p.Reportf(site.pos,
				"two %s mutexes (%s, then %s) acquired together with no defined order; "+
					"a goroutine taking them in the opposite order deadlocks",
				e.from, site.fromPath, site.toPath)
			continue
		}
		if path := lockPath(adj, e.to, e.from); path != nil {
			cycle := append([]string{e.from}, path...)
			cycleFindings = append(cycleFindings, Diagnostic{
				Pos: site.pos,
				Message: "lock order inversion: acquiring " + e.to + " while holding " +
					e.from + " completes the cycle " + strings.Join(cycle, " → "),
			})
		}
	}
	for _, d := range cycleFindings {
		p.Reportf(d.Pos, "%s", d.Message)
	}
}

// lockPath finds a path from → to in the class graph, or nil.
func lockPath(adj map[string][]string, from, to string) []string {
	seen := map[string]bool{from: true}
	var dfs func(cur string, path []string) []string
	dfs = func(cur string, path []string) []string {
		if cur == to {
			return path
		}
		for _, next := range adj[cur] {
			if seen[next] {
				continue
			}
			seen[next] = true
			if found := dfs(next, append(path, next)); found != nil {
				return found
			}
		}
		return nil
	}
	return dfs(from, []string{from})
}

// lockOrderFunc analyzes one function body.
type lockOrderFunc struct {
	pass    *Pass
	hot     bool
	classOf map[string]string // instance path → class
	record  func(lockEdge, lockEdgeSite)

	selHasDefault map[*ast.SelectStmt]bool
	commOf        map[ast.Node]*ast.SelectStmt
	rangeChan     map[ast.Node]bool
	reportedSel   map[*ast.SelectStmt]bool
}

func (lo *lockOrderFunc) analyze(body *ast.BlockStmt) {
	lo.selHasDefault = make(map[*ast.SelectStmt]bool)
	lo.commOf = make(map[ast.Node]*ast.SelectStmt)
	lo.rangeChan = make(map[ast.Node]bool)
	lo.reportedSel = make(map[*ast.SelectStmt]bool)
	inspectShallow(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectStmt:
			for _, c := range n.Body.List {
				cc := c.(*ast.CommClause)
				if cc.Comm == nil {
					lo.selHasDefault[n] = true
				} else {
					lo.commOf[cc.Comm] = n
				}
			}
		case *ast.RangeStmt:
			if t := lo.pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					lo.rangeChan[n.X] = true
				}
			}
		}
		return true
	})

	g := flow.Build(body)
	in := flow.Forward(g, flow.Facts[string]{}, func(n ast.Node, facts flow.Facts[string]) flow.Facts[string] {
		return lo.transfer(n, facts, false)
	})
	// Replay each reachable block once from its fixpoint entry facts; checks
	// fire during the replay, so each node is checked exactly once against
	// its final may-held set.
	for _, b := range g.Blocks {
		entry, ok := in[b]
		if !ok {
			continue
		}
		facts := entry.Clone()
		for _, n := range b.Nodes {
			facts = lo.transfer(n, facts, true)
		}
	}
}

// transfer applies one CFG node's lock effects; with check set it also
// reports order edges, self-deadlocks and blocking-under-lock.
func (lo *lockOrderFunc) transfer(n ast.Node, facts flow.Facts[string], check bool) flow.Facts[string] {
	info := lo.pass.TypesInfo

	// A select comm node: if the select blocks (no default) while a lock is
	// held, that is the finding; its channel operations are then subsumed.
	sel := lo.commOf[n]
	if sel != nil && check && lo.hot && len(facts) > 0 &&
		!lo.selHasDefault[sel] && !lo.reportedSel[sel] {
		lo.reportedSel[sel] = true
		lo.pass.Reportf(sel.Pos(),
			"select with no default case while holding %s on a store hot path; "+
				"every Put/Get queues behind the lock until a channel is ready",
			heldString(facts))
	}
	skipChanOps := sel != nil // select semantics handled above (or non-blocking via default)

	if check && lo.hot && lo.rangeChan[n] && len(facts) > 0 {
		lo.pass.Reportf(n.Pos(),
			"range over a channel while holding %s on a store hot path; each "+
				"iteration blocks until a value arrives", heldString(facts))
	}

	inspectShallow(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.CallExpr:
			fn := callee(info, c)
			if fn == nil {
				return true
			}
			if op := mutexOp(fn); op != "" {
				lo.applyMutexOp(c, op, facts, check)
				return true
			}
			if check && lo.hot && len(facts) > 0 {
				if desc := blockingCall(fn); desc != "" {
					lo.pass.Reportf(c.Pos(),
						"%s while holding %s on a store hot path; release the mutex "+
							"before waiting", desc, heldString(facts))
				}
			}
		case *ast.SendStmt:
			if check && lo.hot && !skipChanOps && len(facts) > 0 {
				lo.pass.Reportf(c.Pos(),
					"channel send while holding %s on a store hot path; an "+
						"unready receiver stalls every caller queued on the lock",
					heldString(facts))
			}
		case *ast.UnaryExpr:
			if c.Op == token.ARROW && check && lo.hot && !skipChanOps && len(facts) > 0 {
				lo.pass.Reportf(c.Pos(),
					"channel receive while holding %s on a store hot path; an "+
						"unready sender stalls every caller queued on the lock",
					heldString(facts))
			}
		}
		return true
	})
	return facts
}

// applyMutexOp updates facts for one Lock/RLock/Unlock/RUnlock call and,
// when checking, records order edges and self-deadlocks.
func (lo *lockOrderFunc) applyMutexOp(call *ast.CallExpr, op string, facts flow.Facts[string], check bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	recv := sel.X
	_, path, ok := exprPath(lo.pass.TypesInfo, recv)
	if !ok {
		return
	}
	switch op {
	case "unlock", "runlock":
		delete(facts, path)
		return
	}
	class := lockClass(lo.pass.TypesInfo, recv)
	lo.classOf[path] = class
	if check {
		if facts[path] && op == "lock" {
			lo.pass.Reportf(call.Pos(),
				"mutex %s locked while already held on this path: self-deadlock", path)
		}
		held := make([]string, 0, len(facts))
		for h := range facts {
			if h != path {
				held = append(held, h)
			}
		}
		sort.Strings(held)
		for _, h := range held {
			lo.record(
				lockEdge{from: lo.classOf[h], to: class},
				lockEdgeSite{pos: call.Pos(), fromPath: h, toPath: path},
			)
		}
	}
	facts[path] = true
}

// blockingCall names fn if it is a call that can block indefinitely while
// a mutex is held, or "". (*sync.Cond).Wait is exempt by design: it
// releases the mutex while waiting.
func blockingCall(fn *types.Func) string {
	switch k := keyOf(fn); {
	case k.pkg == "os" && k.recv == "File" && k.name == "Sync":
		return "fsync ((*os.File).Sync)"
	case k.pkg == "time" && k.recv == "" && k.name == "Sleep":
		return "time.Sleep"
	case k.pkg == "sync" && k.recv == "WaitGroup" && k.name == "Wait":
		return "sync.WaitGroup.Wait"
	}
	return ""
}

// heldString renders a held-lock set for messages, sorted for determinism.
func heldString(facts flow.Facts[string]) string {
	held := make([]string, 0, len(facts))
	for h := range facts {
		held = append(held, h)
	}
	sort.Strings(held)
	return strings.Join(held, ", ")
}
