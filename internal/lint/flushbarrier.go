package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"varbench/internal/lint/flow"
)

// The flushbarrier analyzer: writes to a buffered store must reach a Flush
// barrier before anything observes their durability. The store backends
// buffer on Put (jsonl in its bufio writer, seglog in its staging segment),
// so a path that Puts and then exits — or reads back expecting the write —
// without Flush is exactly the torn-tail-on-SIGKILL bug class the
// conformance suite hunts dynamically; this check catches it statically.
//
// A "store-like" value is any type (interface or concrete) whose method
// set has both Put and Flush — store.Backend and every backend satisfy
// this; types with an incidental Flush (bufio.Writer) don't, for lack of
// Put. Dirtiness is a forward may-fact per receiver spelling: Put/PutJSON
// gen it, Flush/Close kill it.
//
// Findings, checked against the may-dirty set at each point:
//   - Get/GetJSON on a receiver that may be dirty — a read-after-write
//     with no barrier in between;
//   - in package main only: a return while a receiver may be dirty. Error
//     bailouts are exempt — a return whose error result is non-nil (or a
//     bare return in a function that HAS an error result) is already a
//     failure path and owes no durability. Deferred Flush/Close on the
//     receiver counts as the barrier;
//   - os.Exit while a receiver may be dirty, in ANY package — deferred
//     flushes do not run past os.Exit, so here defers do NOT count.
//
// The analysis is per-function: a helper that Puts and returns dirty is
// not tracked into its caller. That keeps findings local; the CLI-level
// sweep relies on command mains doing their own Put→Flush pairing, which
// is how cmd/varbench is written.

// FlushBarrier is the suite's write-durability analyzer.
var FlushBarrier = &Analyzer{
	Name: "flushbarrier",
	Doc: "require a Flush barrier between buffered store writes and reads, " +
		"CLI exits and os.Exit",
	Run: runFlushBarrier,
}

func runFlushBarrier(p *Pass) {
	for _, fb := range funcBodies(p.TypesInfo, p.Files) {
		f := &flushFunc{pass: p, fb: fb}
		f.analyze()
	}
}

// storeLike reports whether t's method set has both Put and Flush.
func storeLike(pkg *types.Package, t types.Type) bool {
	if t == nil {
		return false
	}
	for _, name := range [...]string{"Put", "Flush"} {
		obj, _, _ := types.LookupFieldOrMethod(t, true, pkg, name)
		if _, ok := obj.(*types.Func); !ok {
			return false
		}
	}
	return true
}

type flushFunc struct {
	pass *Pass
	fb   funcBody

	deferKills map[string]bool // receivers flushed/closed by a defer
}

func (f *flushFunc) analyze() {
	g := flow.Build(f.fb.Body)

	f.deferKills = make(map[string]bool)
	for _, d := range g.Defers {
		// defer st.Flush() / defer st.Close(), possibly wrapped in a
		// closure: any Flush/Close call in the deferred tree counts.
		ast.Inspect(d, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if path, op := f.storeOp(call); op == "Flush" || op == "Close" {
					f.deferKills[path] = true
				}
			}
			return true
		})
	}

	in := flow.Forward(g, flow.Facts[string]{}, func(n ast.Node, facts flow.Facts[string]) flow.Facts[string] {
		return f.transfer(n, facts, false)
	})
	for _, b := range g.Blocks {
		entry, ok := in[b]
		if !ok {
			continue
		}
		facts := entry.Clone()
		for _, n := range b.Nodes {
			facts = f.transfer(n, facts, true)
		}
	}
}

// storeOp classifies call as a method call on a store-like receiver,
// returning the receiver's spelling and the method name ("" when not a
// store op).
func (f *flushFunc) storeOp(call *ast.CallExpr) (path, op string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	if f.pass.TypesInfo.Selections[sel] == nil {
		return "", "" // package-qualified function, not a method
	}
	switch sel.Sel.Name {
	case "Put", "PutJSON", "Get", "GetJSON", "Flush", "Close":
	default:
		return "", ""
	}
	if !storeLike(f.pass.Pkg, f.pass.TypesInfo.TypeOf(sel.X)) {
		return "", ""
	}
	return types.ExprString(sel.X), sel.Sel.Name
}

func (f *flushFunc) transfer(n ast.Node, facts flow.Facts[string], check bool) flow.Facts[string] {
	info := f.pass.TypesInfo

	inspectShallow(n, func(c ast.Node) bool {
		call, ok := c.(*ast.CallExpr)
		if !ok {
			return true
		}
		if path, op := f.storeOp(call); op != "" {
			switch op {
			case "Put", "PutJSON":
				facts[path] = true
			case "Flush", "Close":
				delete(facts, path)
			case "Get", "GetJSON":
				if check && facts[path] {
					f.pass.Reportf(call.Pos(),
						"%s read from %s while a Put on this path is unflushed; "+
							"call %s.Flush() between the write and the read",
						op, path, path)
				}
			}
			return true
		}
		if check && len(facts) > 0 {
			if fn := callee(info, call); fn != nil {
				if k := keyOf(fn); k.pkg == "os" && k.recv == "" && k.name == "Exit" {
					// Deferred flushes do not run past os.Exit: full set.
					f.pass.Reportf(call.Pos(),
						"os.Exit with unflushed writes to %s; deferred Flush does "+
							"not run past os.Exit — flush explicitly first",
						dirtyString(facts, nil))
				}
			}
		}
		return true
	})

	// The return's expressions (including a trailing kv.Flush()) evaluate
	// before control leaves, so the exit check runs on the post-walk facts.
	if ret, ok := n.(*ast.ReturnStmt); ok && check && f.pass.Pkg.Name() == "main" {
		f.checkReturn(ret, facts)
	}
	return facts
}

// checkReturn reports a main-package return that leaves a store dirty,
// unless the return is an error bailout or a deferred Flush/Close covers
// the receiver.
func (f *flushFunc) checkReturn(ret *ast.ReturnStmt, facts flow.Facts[string]) {
	live := dirtyString(facts, f.deferKills)
	if live == "" {
		return
	}
	info := f.pass.TypesInfo
	errType := types.Universe.Lookup("error").Type()
	if len(ret.Results) == 0 {
		// A bare return in a function with a (named) error result may be
		// propagating a failure; give it the benefit of the doubt.
		if results := f.resultTypes(); results != nil {
			for _, t := range results {
				if types.AssignableTo(t, errType) {
					return
				}
			}
		}
	}
	for _, r := range ret.Results {
		t := info.TypeOf(r)
		if t == nil || !types.AssignableTo(t, errType) {
			continue
		}
		if id, ok := ast.Unparen(r).(*ast.Ident); ok && id.Name == "nil" {
			continue
		}
		return // error bailout: failure paths owe no durability
	}
	f.pass.Reportf(ret.Pos(),
		"CLI exit path returns with unflushed writes to %s; call Flush (or "+
			"Close, or defer one) before returning", live)
}

// resultTypes returns the enclosing function's declared result types, or
// nil when it has none.
func (f *flushFunc) resultTypes() []types.Type {
	var fields *ast.FieldList
	if f.fb.Fn != nil && f.fb.Decl != nil {
		fields = f.fb.Decl.Type.Results
	} else {
		// A literal: find its own type via the body's parent is not tracked;
		// conservatively treat literals as having an error result so bare
		// returns in closures never fire.
		return []types.Type{types.Universe.Lookup("error").Type()}
	}
	if fields == nil {
		return nil
	}
	var out []types.Type
	for _, field := range fields.List {
		t := f.pass.TypesInfo.TypeOf(field.Type)
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			out = append(out, t)
		}
	}
	return out
}

// dirtyString renders the dirty set minus kills, sorted; "" when empty.
func dirtyString(facts flow.Facts[string], kills map[string]bool) string {
	var live []string
	for path := range facts {
		if !kills[path] {
			live = append(live, path)
		}
	}
	sort.Strings(live)
	return strings.Join(live, ", ")
}
