package lint

import (
	"go/ast"
	"go/types"
)

// callee resolves the *types.Func a call invokes, or nil for conversions,
// built-ins and dynamic calls through function values.
func callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// funcKey identifies a function or method by package path, receiver type
// name ("" for package-level functions) and name.
type funcKey struct {
	pkg  string
	recv string
	name string
}

// keyOf returns fn's funcKey, dereferencing a pointer receiver.
func keyOf(fn *types.Func) funcKey {
	if fn.Pkg() == nil {
		return funcKey{}
	}
	k := funcKey{pkg: fn.Pkg().Path(), name: fn.Name()}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			k.recv = named.Obj().Name()
		}
	}
	return k
}

// isConversion reports whether call is a type conversion, not a function
// call.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[ast.Unparen(call.Fun)]
	return ok && tv.IsType()
}

// enclosingFuncBody returns the body of the innermost function literal or
// declaration on stack (a root-to-node ancestor path), or nil.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncLit:
			return fn.Body
		case *ast.FuncDecl:
			return fn.Body
		}
	}
	return nil
}

// inspectShallow walks root like ast.Inspect but does not descend into
// function literals: a literal's body executes when the closure is CALLED,
// not where it is written, so flow-sensitive transfer functions must not
// attribute its effects to the enclosing program point. Each literal body
// is analyzed as its own function (see funcBodies).
func inspectShallow(root ast.Node, f func(ast.Node) bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return f(n)
	})
}

// A funcBody is one analyzable function: a declaration or a function
// literal. For literals, Decl is the innermost enclosing declaration (nil
// for literals in package-level initializers) and Fn is nil.
type funcBody struct {
	Body *ast.BlockStmt
	Fn   *types.Func   // declared functions only
	Decl *ast.FuncDecl // enclosing declaration, nil at package level
	Name string        // display name: "Put", "Put.func", ...
}

// funcBodies returns every function body in files — declarations first,
// then literals in source order — each exactly once.
func funcBodies(info *types.Info, files []*ast.File) []funcBody {
	var out []funcBody
	for _, file := range files {
		var enclosing *ast.FuncDecl
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				enclosing = n
				if n.Body == nil {
					return false
				}
				fn, _ := info.Defs[n.Name].(*types.Func)
				out = append(out, funcBody{Body: n.Body, Fn: fn, Decl: n, Name: n.Name.Name})
			case *ast.FuncLit:
				name := "func"
				if enclosing != nil {
					name = enclosing.Name.Name + ".func"
				}
				out = append(out, funcBody{Body: n.Body, Decl: enclosing, Name: name})
			}
			return true
		})
	}
	return out
}

// inspectWithStack walks root like ast.Inspect while maintaining the
// ancestor path; fn receives each node with stack[len-1] == n.
func inspectWithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if !fn(n, stack) {
			// Inspect sends no closing nil when f returns false: pop now.
			stack = stack[:len(stack)-1]
			return false
		}
		return true
	})
}
