package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// Loader error paths: the driver leans on go list and gc export data, and
// each failure mode must surface as a diagnosable error instead of a
// panic or a silently empty package list.

func parseOne(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

func TestTypecheckMissingExportData(t *testing.T) {
	// The source imports fmt but the exports map is empty: the importer
	// must fail with the no-export-data error, wrapped per package.
	fset, files := parseOne(t, `package x

import "fmt"

var _ = fmt.Sprint
`)
	_, err := Typecheck(fset, "fixture/x", files, map[string]string{}, nil)
	if err == nil {
		t.Fatal("Typecheck succeeded with no export data for fmt")
	}
	if !strings.Contains(err.Error(), `no export data for "fmt"`) {
		t.Errorf("error = %v, want no-export-data for fmt", err)
	}
}

func TestTypecheckVendoredImportMap(t *testing.T) {
	// A vendored-style import map: the source imports "vendored/fmt", the
	// map resolves it to the real fmt, and the real export data satisfies
	// the importer.
	exports, _, err := Deps(".", "fmt")
	if err != nil {
		t.Fatal(err)
	}
	fset, files := parseOne(t, `package x

import f "vendored/fmt"

var _ = f.Sprint
`)
	pkg, err := Typecheck(fset, "fixture/x", files, exports, map[string]string{"vendored/fmt": "fmt"})
	if err != nil {
		t.Fatalf("Typecheck with import map: %v", err)
	}
	if pkg.Types == nil || pkg.Types.Name() != "x" {
		t.Errorf("typechecked package = %v, want package x", pkg.Types)
	}
}

func TestParseGoListMalformed(t *testing.T) {
	if _, err := parseGoList([]byte(`{"ImportPath": "a"} {truncated`)); err == nil {
		t.Error("parseGoList accepted malformed JSON")
	} else if !strings.Contains(err.Error(), "decoding go list output") {
		t.Errorf("error = %v, want decode error", err)
	}
}

func TestParseGoListPackageError(t *testing.T) {
	out := []byte(`{"ImportPath": "broken/pkg", "Error": {"Err": "no Go files in /tmp/broken"}}`)
	if _, err := parseGoList(out); err == nil {
		t.Error("parseGoList accepted a package with a load error")
	} else if !strings.Contains(err.Error(), "broken/pkg") || !strings.Contains(err.Error(), "no Go files") {
		t.Errorf("error = %v, want the package's own error surfaced", err)
	}
}

func TestParseGoListStream(t *testing.T) {
	// go list emits concatenated JSON objects, not an array.
	out := []byte(`{"ImportPath": "a", "Export": "/tmp/a.a"}
{"ImportPath": "b", "DepOnly": true}
`)
	pkgs, err := parseGoList(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 || pkgs[0].ImportPath != "a" || !pkgs[1].DepOnly {
		t.Errorf("parsed %+v, want packages a and b", pkgs)
	}
}

func TestLoadBadDir(t *testing.T) {
	if _, err := Load("/nonexistent-varbench-dir", "./..."); err == nil {
		t.Error("Load from a nonexistent directory succeeded")
	}
}

func TestLoadBadPattern(t *testing.T) {
	if _, err := Load(".", "./no-such-subdir-xyzzy"); err == nil {
		t.Error("Load of a nonexistent pattern succeeded")
	}
}

func TestGoListCached(t *testing.T) {
	// Two identical loads must run go list once: the second comes from the
	// process-wide cache. Distinct patterns still miss.
	countExecs := func() int {
		listCacheMu.Lock()
		defer listCacheMu.Unlock()
		return goListExecs
	}
	if _, _, err := Deps(".", "errors"); err != nil {
		t.Fatal(err)
	}
	before := countExecs()
	if _, _, err := Deps(".", "errors"); err != nil {
		t.Fatal(err)
	}
	if after := countExecs(); after != before {
		t.Errorf("repeated Deps ran go list again (%d → %d execs), want cache hit", before, after)
	}
	if _, _, err := Deps(".", "errors", "strconv"); err != nil {
		t.Fatal(err)
	}
	if after := countExecs(); after != before+1 {
		t.Errorf("distinct patterns: %d → %d execs, want exactly one more", before, after)
	}
}
