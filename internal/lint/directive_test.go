package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// The //lint:allow parser must fail closed: a directive that cannot be
// trusted (unknown analyzer, missing reason, wrong line) never suppresses
// anything and is itself reported.

func TestDirectiveParse(t *testing.T) {
	cases := []struct {
		body         string // text after "//lint:allow"
		analyzer     string // expected on success
		reason       string
		badSubstring string // expected failure, "" = must parse
	}{
		{body: " nondeterm(wall-clock metadata)", analyzer: "nondeterm", reason: "wall-clock metadata"},
		{body: " jsonsafe(  padded reason  )", analyzer: "jsonsafe", reason: "padded reason"},
		{body: " seedflow(nested (parens) survive)", analyzer: "seedflow", reason: "nested (parens) survive"},
		{body: "", badSubstring: "want //lint:allow analyzer(reason)"},
		{body: "   ", badSubstring: "want //lint:allow analyzer(reason)"},
		{body: "nondeterm(no word boundary)", badSubstring: "unrecognized directive"},
		{body: " nosuchanalyzer(reason)", badSubstring: `unknown analyzer "nosuchanalyzer"`},
		// The pseudo-analyzer for directive findings is deliberately not
		// allowable: malformed directives cannot be allowed away.
		{body: " lintdirective(reason)", badSubstring: `unknown analyzer "lintdirective"`},
		{body: " nondeterm", badSubstring: "missing (reason)"},
		{body: " nondeterm()", badSubstring: "empty reason"},
		{body: " nondeterm(   )", badSubstring: "empty reason"},
		{body: " nondeterm(reason) trailing", badSubstring: "must end with (reason)"},
		{body: " nondeterm reason", badSubstring: "missing (reason)"},
	}
	for _, tc := range cases {
		d := &directive{}
		d.parse(tc.body)
		if tc.badSubstring != "" {
			if d.bad == "" {
				t.Errorf("parse(%q): accepted, want failure containing %q", tc.body, tc.badSubstring)
			} else if !strings.Contains(d.bad, tc.badSubstring) {
				t.Errorf("parse(%q): bad = %q, want substring %q", tc.body, d.bad, tc.badSubstring)
			}
			continue
		}
		if d.bad != "" {
			t.Errorf("parse(%q): rejected with %q, want analyzer %q", tc.body, d.bad, tc.analyzer)
			continue
		}
		if d.analyzer != tc.analyzer || d.reason != tc.reason {
			t.Errorf("parse(%q) = (%q, %q), want (%q, %q)", tc.body, d.analyzer, d.reason, tc.analyzer, tc.reason)
		}
	}
}

// checkSource typechecks src as a zero-import package under fixture/directive
// and runs nondeterm (zoned onto that path) plus the directive pass.
func checkSource(t *testing.T, src string) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "directive.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := Typecheck(fset, fixturePath+"directive", []*ast.File{f}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	zones := []Zone{{Path: fixturePath + "directive"}}
	return Run(pkg, []*Analyzer{NewNondeterm(zones)})
}

func TestUnusedDirectiveReported(t *testing.T) {
	diags := checkSource(t, `package directive

func f() int {
	//lint:allow nondeterm(nothing to suppress here)
	return 1
}
`)
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(diags), diags)
	}
	if diags[0].Analyzer != DirectiveAnalyzer || !strings.Contains(diags[0].Message, "unused") {
		t.Errorf("got %q finding %q, want unused-directive", diags[0].Analyzer, diags[0].Message)
	}
}

func TestDirectiveOnUnrelatedLineFailsClosed(t *testing.T) {
	// The directive sits two lines above the violation: the violation must
	// still be reported AND the directive must be reported as unused.
	diags := checkSource(t, `package directive

func f(m map[string]int) int {
	//lint:allow nondeterm(too far from the range to count)

	for _, v := range m {
		return v
	}
	return 0
}
`)
	if len(diags) != 2 {
		t.Fatalf("got %d findings, want 2 (violation + unused directive): %v", len(diags), diags)
	}
	var sawViolation, sawUnused bool
	for _, d := range diags {
		switch d.Analyzer {
		case "nondeterm":
			sawViolation = true
		case DirectiveAnalyzer:
			sawUnused = strings.Contains(d.Message, "unused")
		}
	}
	if !sawViolation || !sawUnused {
		t.Errorf("violation reported=%v, unused directive reported=%v, want both", sawViolation, sawUnused)
	}
}

func TestMalformedDirectiveFailsClosed(t *testing.T) {
	// Wrong analyzer name and missing reason: neither suppresses the
	// violation, and both are reported as malformed.
	diags := checkSource(t, `package directive

func f(m map[string]int) int {
	for _, v := range m { //lint:allow nosuch(wrong analyzer name)
		return v
	}
	for k := range m { //lint:allow nondeterm()
		_ = k
	}
	return 0
}
`)
	var violations, malformed int
	for _, d := range diags {
		switch d.Analyzer {
		case "nondeterm":
			violations++
		case DirectiveAnalyzer:
			if strings.Contains(d.Message, "malformed") {
				malformed++
			}
		}
	}
	if violations != 2 || malformed != 2 {
		t.Errorf("got %d violations and %d malformed-directive findings, want 2 and 2: %v",
			violations, malformed, diags)
	}
}

// checkSourceImports is checkSource for sources that import packages,
// resolved through the go list export-data path.
func checkSourceImports(t *testing.T, src string, imports ...string) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "directive.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	exports, importMap, err := Deps(".", imports...)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := Typecheck(fset, fixturePath+"directive", []*ast.File{f}, exports, importMap)
	if err != nil {
		t.Fatal(err)
	}
	zones := []Zone{{Path: fixturePath + "directive"}}
	return Run(pkg, []*Analyzer{NewNondeterm(zones)})
}

func TestDirectiveCoversMultiLineStatement(t *testing.T) {
	// Regression: the violation sits on the SECOND line of a statement whose
	// first line is directly below the directive. Line-pair matching alone
	// would miss it; the statement-span rule must suppress it.
	diags := checkSourceImports(t, `package directive

import "time"

func f() time.Time {
	//lint:allow nondeterm(wall-clock metadata, recorded outside the result)
	t :=
		time.Now()
	return t
}
`, "time")
	if len(diags) != 0 {
		t.Fatalf("got %d findings, want 0 (directive must cover the whole statement span): %v", len(diags), diags)
	}
}

func TestDirectiveTrailingMultiLineStatement(t *testing.T) {
	// The directive trails the statement's LAST line; the violation is on an
	// earlier line of the same statement.
	diags := checkSourceImports(t, `package directive

import "time"

func f() time.Time {
	t := time.Now().
		Add(0) //lint:allow nondeterm(wall-clock metadata, recorded outside the result)
	return t
}
`, "time")
	if len(diags) != 0 {
		t.Fatalf("got %d findings, want 0 (trailing directive must cover the statement span): %v", len(diags), diags)
	}
}

func TestDirectiveSpanDoesNotLeakToSiblings(t *testing.T) {
	// Two separate statements: the directive above the first must not cover
	// the second, and a directive inside a block must not silence the
	// enclosing statement tree.
	diags := checkSourceImports(t, `package directive

import "time"

func f() time.Time {
	//lint:allow nondeterm(only the first read is metadata)
	a :=
		time.Now()
	b := time.Now()
	_ = a
	return b
}
`, "time")
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want 1 (second statement stays reported): %v", len(diags), diags)
	}
	if diags[0].Analyzer != "nondeterm" {
		t.Errorf("finding = %v, want the sibling nondeterm violation", diags[0])
	}
}

func TestWellFormedDirectiveSuppresses(t *testing.T) {
	diags := checkSource(t, `package directive

func f(m map[string]int) int {
	for _, v := range m { //lint:allow nondeterm(order-independent sum)
		return v
	}
	return 0
}
`)
	if len(diags) != 0 {
		t.Fatalf("got %d findings, want 0: %v", len(diags), diags)
	}
}
