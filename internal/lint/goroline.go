package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"varbench/internal/lint/flow"
)

// The goroline analyzer: every `go` statement must carry a provable
// termination edge, because a leaked collector or committer goroutine in a
// long benchmark run is a quiet memory/FD leak that -race never sees.
//
// The check is evidence-versus-hazard, resolved per goroutine body (a
// function literal, or a declared function found through the intra-package
// call graph):
//
// Evidence — any one suffices:
//   - a receive (including select comms and range) from a TERMINATION
//     channel: ctx.Done(), a variable assigned from ctx.Done() (resolved
//     transitively through assignments), or a channel some function in the
//     package passes to close();
//   - a sync.WaitGroup.Done whose WaitGroup has a reachable Wait anywhere
//     in the package (matched by object for locals, by (type, field) for
//     struct-held groups).
//
// Hazards — the body can run or block forever:
//   - an unconditional `for { ... }` loop;
//   - a range over a channel never closed in the package;
//   - a blocking send/receive on a non-termination channel outside a
//     select WITH a default case.
//
// A goroutine is reported iff it has a hazard and no evidence: bounded
// bodies (compute-and-send under a WaitGroup, one-shot helpers) pass, and
// evidence anywhere in the body — including inside deferred closures —
// counts. A `go` through a function value the call graph cannot resolve is
// itself a finding: an unreviewable goroutine is treated as a leak.

// GoroLine is the suite's goroutine-lifetime analyzer.
var GoroLine = &Analyzer{
	Name: "goroline",
	Doc: "require a provable termination edge (ctx.Done/closed channel/" +
		"WaitGroup pairing) for every started goroutine",
	Run: runGoroLine,
}

func runGoroLine(p *Pass) {
	info := p.TypesInfo
	cg := flow.NewCallGraph(info, p.Files)

	// Package-wide pre-pass: channels that some function closes, WaitGroups
	// that some function Waits on, and variables holding termination
	// channels (assigned from ctx.Done() or a closed channel), to fixpoint.
	termKeys := make(map[string]bool)
	waitKeys := make(map[string]bool)
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && len(call.Args) == 1 {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "close" {
					if k := chanKey(info, call.Args[0]); k != "" {
						termKeys[k] = true
					}
				}
				return true
			}
			fn := callee(info, call)
			if fn == nil {
				return true
			}
			if k := keyOf(fn); k.pkg == "sync" && k.recv == "WaitGroup" && k.name == "Wait" {
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					if key := chanKey(info, sel.X); key != "" {
						waitKeys[key] = true
					}
				}
			}
			return true
		})
	}
	isTerm := func(e ast.Expr) bool { return isTermExpr(info, e, termKeys) }
	for changed := true; changed; {
		changed = false
		for _, file := range p.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				var lhs, rhs []ast.Expr
				switch n := n.(type) {
				case *ast.AssignStmt:
					lhs, rhs = n.Lhs, n.Rhs
				case *ast.ValueSpec:
					for _, name := range n.Names {
						lhs = append(lhs, name)
					}
					rhs = n.Values
				default:
					return true
				}
				if len(lhs) != len(rhs) {
					return true
				}
				for i := range lhs {
					if !isTerm(rhs[i]) {
						continue
					}
					if k := chanKey(info, lhs[i]); k != "" && !termKeys[k] {
						termKeys[k] = true
						changed = true
					}
				}
				return true
			})
		}
	}

	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGoStmt(p, cg, g, termKeys, waitKeys)
			return true
		})
	}
}

// chanKey identifies a channel or WaitGroup expression across functions:
// by object for plain variables, by (named type, field) for struct fields
// — so close(s.quit) in Close matches <-s.quit in the committer even
// though the receivers are different objects.
func chanKey(info *types.Info, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if obj == nil {
			return ""
		}
		return fmt.Sprintf("obj:%d", obj.Pos())
	case *ast.SelectorExpr:
		if tv, ok := info.Types[e.X]; ok && tv.Type != nil {
			t := tv.Type
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
				return "field:" + named.Obj().Pkg().Path() + "." +
					named.Obj().Name() + "." + e.Sel.Name
			}
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return chanKey(info, e.X)
		}
	}
	return ""
}

// isTermExpr reports whether e evaluates to a termination channel: a
// ctx.Done() call, or a channel in termKeys.
func isTermExpr(info *types.Info, e ast.Expr, termKeys map[string]bool) bool {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		fn := callee(info, call)
		if fn == nil {
			return false
		}
		k := keyOf(fn)
		return k.pkg == "context" && k.recv == "Context" && k.name == "Done"
	}
	if k := chanKey(info, e); k != "" {
		return termKeys[k]
	}
	return false
}

// checkGoStmt resolves one go statement's body and applies the
// evidence/hazard verdict.
func checkGoStmt(p *Pass, cg *flow.CallGraph, g *ast.GoStmt, termKeys, waitKeys map[string]bool) {
	info := p.TypesInfo
	var body *ast.BlockStmt
	var params *ast.FieldList
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		body, params = fun.Body, fun.Type.Params
	default:
		fn := flow.Callee(info, g.Call)
		if fn != nil {
			if decl := cg.Decl(fn); decl != nil {
				body, params = decl.Body, decl.Type.Params
			}
		}
	}
	if body == nil {
		p.Reportf(g.Pos(),
			"goroutine launched through a value the analyzer cannot resolve; "+
				"its termination cannot be checked — start a named in-package "+
				"function instead")
		return
	}

	// Arguments that are termination channels make the matching parameters
	// termination channels inside this body.
	local := termKeys
	copied := false
	if params != nil && len(g.Call.Args) == params.NumFields() {
		i := 0
		for _, f := range params.List {
			for _, name := range f.Names {
				if i < len(g.Call.Args) && isTermExpr(info, g.Call.Args[i], termKeys) {
					if !copied {
						copied = true
						local = make(map[string]bool, len(termKeys)+1)
						for k := range termKeys {
							local[k] = true
						}
					}
					if obj := info.Defs[name]; obj != nil {
						local[fmt.Sprintf("obj:%d", obj.Pos())] = true
					}
				}
				i++
			}
		}
	}
	isTerm := func(e ast.Expr) bool { return isTermExpr(info, e, local) }

	// Evidence: full walk, nested literals included — a deferred closure
	// calling wg.Done is real evidence.
	evidence := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && isTerm(n.X) {
				evidence = true
			}
		case *ast.RangeStmt:
			if isTerm(n.X) {
				evidence = true
			}
		case *ast.CallExpr:
			fn := callee(info, n)
			if fn == nil {
				return true
			}
			if k := keyOf(fn); k.pkg == "sync" && k.recv == "WaitGroup" && k.name == "Done" {
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
					if waitKeys[chanKey(info, sel.X)] {
						evidence = true
					}
				}
			}
		}
		return true
	})
	if evidence {
		return
	}

	// Hazards: shallow walk (a nested literal is its own goroutine's
	// problem only if started), channel ops under a select WITH a default
	// exempt.
	exemptComms := make(map[ast.Stmt]bool)
	inspectShallow(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, c := range sel.Body.List {
			if c.(*ast.CommClause).Comm == nil {
				hasDefault = true
			}
		}
		if hasDefault {
			for _, c := range sel.Body.List {
				if comm := c.(*ast.CommClause).Comm; comm != nil {
					exemptComms[comm] = true
				}
			}
		}
		return true
	})
	hazard := ""
	inspectShallow(body, func(n ast.Node) bool {
		if hazard != "" {
			return false
		}
		if s, ok := n.(ast.Stmt); ok && exemptComms[s] {
			return false
		}
		switch n := n.(type) {
		case *ast.ForStmt:
			if n.Cond == nil {
				hazard = "an unconditional for loop"
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					hazard = "a range over a channel never closed in this package"
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				hazard = "a blocking receive on a channel with no close/ctx.Done termination"
			}
		case *ast.SendStmt:
			hazard = "a blocking send outside a select with a default case"
		}
		return true
	})
	if hazard != "" {
		p.Reportf(g.Pos(),
			"goroutine has no provable termination edge and contains %s; "+
				"select on ctx.Done() or a package-closed channel, or pair "+
				"WaitGroup.Done with a reachable Wait", hazard)
	}
}
