package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The seedflow analyzer: every xrand stream in varbench derives from a
// declared identity — (Seed, realization, source, shard) tuples flowing
// through Split/SplitSeedBytes labels, precomputed seed tables, or named
// derivation helpers. Seeds invented at the call site from loop-variable
// arithmetic (xrand.New(seed + uint64(i))) silently couple streams, break
// the "reorderable sources" contract and make resumed runs depend on how a
// loop was batched. The analyzer flags any loop variable reaching an xrand
// constructor's seed argument through arithmetic or conversions. Reading a
// precomputed table by loop index (xrand.New(roots[i])) and passing loop
// variables into a derivation CALL (root.Split(label(i))) are both fine —
// the derivation is declared, not invented — so the walk stops at index
// positions and non-conversion calls.

// xrandPath is the import path of the RNG layer whose constructors are
// guarded.
const xrandPath = "varbench/internal/xrand"

// SeedFlow is the suite's seed-derivation analyzer.
var SeedFlow = &Analyzer{
	Name: "seedflow",
	Doc: "require seeds passed to xrand constructors to derive from declared " +
		"(Seed, realization, source, shard) tuples, not loop-variable " +
		"arithmetic at the call site",
	Run: runSeedFlow,
}

func runSeedFlow(p *Pass) {
	for _, file := range p.Files {
		loopVars := collectLoopVars(p, file)
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := callee(p.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != xrandPath {
				return true
			}
			k := keyOf(fn)
			isCtor := (k.recv == "" && (k.name == "New" || k.name == "NewStreams")) ||
				(k.recv == "Source" && k.name == "Seed")
			if !isCtor {
				return true
			}
			if bad := firstLoopVar(p, call.Args[0], loopVars); bad != nil {
				p.Reportf(call.Args[0].Pos(),
					"seed for xrand.%s derives from loop variable %q at the call site; "+
						"derive it from a declared (seed, realization, source, shard) tuple "+
						"via Split/SplitSeedBytes, a seed table, or a named derivation function",
					k.name, bad.Name)
			}
			return true
		})
	}
}

// collectLoopVars gathers the object of every for/range-declared variable
// in file. Object identity is per-declaration, so one flat set per file is
// scope-correct.
func collectLoopVars(p *Pass, file *ast.File) map[types.Object]bool {
	vars := make(map[types.Object]bool)
	addDef := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := p.TypesInfo.Defs[id]; obj != nil {
				vars[obj] = true
			}
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if n.Tok == token.DEFINE {
				addDef(n.Key)
				if n.Value != nil {
					addDef(n.Value)
				}
			}
		case *ast.ForStmt:
			if init, ok := n.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
				for _, lhs := range init.Lhs {
					addDef(lhs)
				}
			}
		}
		return true
	})
	return vars
}

// firstLoopVar returns the first loop-variable identifier reachable from e
// through arithmetic, conversions, parens and pointer wrappers. It does not
// descend into index positions (a table lookup is a declared derivation)
// nor into real call arguments (a named function owns its derivation), but
// does descend into type conversions, which merely relabel the arithmetic.
func firstLoopVar(p *Pass, e ast.Expr, loopVars map[types.Object]bool) *ast.Ident {
	var find func(e ast.Expr) *ast.Ident
	find = func(e ast.Expr) *ast.Ident {
		switch e := e.(type) {
		case *ast.Ident:
			if obj := p.TypesInfo.Uses[e]; obj != nil && loopVars[obj] {
				return e
			}
		case *ast.BinaryExpr:
			if bad := find(e.X); bad != nil {
				return bad
			}
			return find(e.Y)
		case *ast.UnaryExpr:
			return find(e.X)
		case *ast.ParenExpr:
			return find(e.X)
		case *ast.StarExpr:
			return find(e.X)
		case *ast.IndexExpr:
			return find(e.X) // the index itself is a lookup, not a derivation
		case *ast.CallExpr:
			if isConversion(p.TypesInfo, e) && len(e.Args) == 1 {
				return find(e.Args[0])
			}
		}
		return nil
	}
	return find(e)
}
