// Package lint implements varbench's project-specific static analyzers:
// mechanical enforcement of the contracts every report, golden test and
// resumable store depend on but that ordinary tests only catch when a case
// happens to exercise the offending path.
//
// The suite (see Analyzers):
//
//   - nondeterm: no wall-clock, process-entropy or map-iteration-order
//     nondeterminism inside the deterministic zones (DeterministicZones) —
//     the packages whose outputs must be bit-identical at any worker count.
//   - jsonsafe: every encoding/json Marshal/Encode whose argument can carry
//     a float must go through a MarshalJSON sanitizer (internal/jsonx), so
//     NaN/±Inf standard errors cannot make a report unserializable.
//   - seedflow: seeds handed to xrand constructors must come from declared
//     derivations (Split, seed tables, named helpers), never from
//     loop-variable arithmetic invented at the call site.
//   - poolput: sync.Pool.Put of a buffer whose slice header was reassigned
//     out from under the pooled pointer — the aliasing bug class of the
//     pooled bootstrap engine.
//
// The flow-sensitive checks (built on internal/lint/flow — a per-function
// CFG, a forward dataflow engine and a conservative intra-package call
// graph):
//
//   - lockorder: a consistent package-wide mutex acquisition order, and no
//     blocking call (fsync, sleep, WaitGroup.Wait, bare channel ops,
//     default-less selects) while a mutex is held on a store hot path.
//   - goroline: every `go` statement carries a provable termination edge —
//     a ctx.Done()/closed-channel receive or a WaitGroup.Done paired with
//     a reachable Wait.
//   - errsentinel: module sentinel errors are only compared via errors.Is
//     and only wrapped with %w.
//   - flushbarrier: buffered store writes reach Flush before a read of the
//     same receiver, a CLI exit path, or os.Exit.
//
// A finding that is intentional carries an explicit, reasoned escape hatch
// on its line (or the line above):
//
//	//lint:allow nondeterm(Elapsed is wall-clock metadata, not part of the result)
//
// The directive parser fails closed: an unknown analyzer name, a missing
// reason or a directive that suppresses nothing is itself a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// A Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// An Analyzer is one named invariant checker, the stdlib-only analogue of
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// A Pass carries one typechecked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Analyzer: p.Analyzer.Name, Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{Nondeterm, JSONSafe, SeedFlow, PoolPut, LockOrder, GoroLine, ErrSentinel, FlushBarrier}
}

// knownAnalyzers is the closed set of names an allow directive may cite.
var knownAnalyzers = map[string]bool{
	"nondeterm":    true,
	"jsonsafe":     true,
	"seedflow":     true,
	"poolput":      true,
	"lockorder":    true,
	"goroline":     true,
	"errsentinel":  true,
	"flushbarrier": true,
}

// Run executes analyzers over pkg and applies the //lint:allow directives:
// suppressed findings are dropped, malformed and unused directives are
// reported. Diagnostics come back in position order.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var raw []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			report:    func(d Diagnostic) { raw = append(raw, d) },
		}
		a.Run(pass)
	}
	out := applyDirectives(pkg.Fset, pkg.Files, analyzers, raw)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}
