package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strconv"
	"strings"
)

// The nondeterm analyzer: inside the deterministic zones — the packages and
// files whose outputs are contractually bit-identical at any worker count,
// on any machine, across any resume — nothing may read wall clocks, process
// identity or other ambient entropy, import a non-seeded RNG, or iterate a
// map (Go randomizes map iteration order per run). Legitimate uses (an
// Elapsed wall-clock metadata field, CLI progress timing) carry a reasoned
// //lint:allow nondeterm(...) on the offending line.

// A Zone names a deterministic region: an import path (which covers its
// subpackages too — new packages under a zone are in the zone by default)
// and, optionally, specific file basenames when only part of a package is
// deterministic.
type Zone struct {
	Path  string
	Files []string
}

// DeterministicZones is varbench's deterministic surface: the statistical
// core, the RNG layer, the comparison engine, and the collection/analysis
// paths of the public API (the root package's collect.go, variance.go and
// experiment.go — renderers and options stay outside the zone).
var DeterministicZones = []Zone{
	{Path: "varbench", Files: []string{"collect.go", "variance.go", "experiment.go", "incremental.go", "retry.go"}},
	{Path: "varbench/internal/stats"},
	{Path: "varbench/internal/xrand"},
	{Path: "varbench/internal/compare"},
}

// bannedImports are entropy sources with no place in a deterministic zone.
var bannedImports = map[string]string{
	"math/rand":    "use internal/xrand streams derived from the experiment seed",
	"math/rand/v2": "use internal/xrand streams derived from the experiment seed",
	"crypto/rand":  "deterministic zones must not consume OS entropy",
}

// bannedCalls are ambient-entropy reads. time.Since is listed separately
// from time.Now because it reads the clock itself.
var bannedCalls = map[funcKey]string{
	{pkg: "time", name: "Now"}:             "wall-clock time is nondeterministic",
	{pkg: "time", name: "Since"}:           "wall-clock time is nondeterministic",
	{pkg: "os", name: "Getpid"}:            "process identity is nondeterministic",
	{pkg: "os", name: "Getppid"}:           "process identity is nondeterministic",
	{pkg: "os", name: "Hostname"}:          "host identity is nondeterministic",
	{pkg: "os", name: "Environ"}:           "ambient environment is nondeterministic",
	{pkg: "os", name: "Getenv"}:            "ambient environment is nondeterministic",
	{pkg: "os", name: "LookupEnv"}:         "ambient environment is nondeterministic",
	{pkg: "runtime", name: "NumGoroutine"}: "scheduler state is nondeterministic",
}

// Nondeterm is the suite's nondeterminism analyzer over DeterministicZones.
var Nondeterm = NewNondeterm(DeterministicZones)

// NewNondeterm returns a nondeterm analyzer over custom zones (used by the
// fixture tests; production code uses the Nondeterm instance).
func NewNondeterm(zones []Zone) *Analyzer {
	a := &Analyzer{
		Name: "nondeterm",
		Doc: "forbid wall-clock, process-entropy and map-iteration-order " +
			"nondeterminism inside the deterministic zones",
	}
	a.Run = func(p *Pass) { runNondeterm(p, zones) }
	return a
}

// inZone reports whether file (of package pkgPath) is governed by zones.
func inZone(zones []Zone, pkgPath, filename string) bool {
	base := filepath.Base(filename)
	for _, z := range zones {
		if pkgPath != z.Path && !strings.HasPrefix(pkgPath, z.Path+"/") {
			continue
		}
		if len(z.Files) == 0 {
			return true
		}
		for _, f := range z.Files {
			if base == f {
				return true
			}
		}
	}
	return false
}

func runNondeterm(p *Pass, zones []Zone) {
	for _, file := range p.Files {
		if !inZone(zones, p.Pkg.Path(), p.Fset.Position(file.Package).Filename) {
			continue
		}
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, ok := bannedImports[path]; ok {
				p.Reportf(imp.Pos(), "import %s inside a deterministic zone: %s", path, why)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := callee(p.TypesInfo, n)
				if fn == nil {
					return true
				}
				if why, ok := bannedCalls[keyOf(fn)]; ok {
					p.Reportf(n.Pos(), "call to %s.%s inside a deterministic zone: %s",
						fn.Pkg().Path(), fn.Name(), why)
				}
			case *ast.RangeStmt:
				if tv, ok := p.TypesInfo.Types[n.X]; ok && tv.Type != nil {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						p.Reportf(n.Pos(), "range over map inside a deterministic zone: "+
							"iteration order is randomized per run; iterate a sorted key slice instead")
					}
				}
			}
			return true
		})
	}
}
