package lint

import (
	"go/ast"
	"go/types"
	"reflect"
	"strings"
)

// The jsonsafe analyzer: encoding/json rejects NaN and ±Inf outright
// ("json: unsupported value: NaN"), so a single undefined statistic — a
// NaN standard error at degenerate n, an Inf ratio — turns a whole report
// into a marshalling error at render time. Every json.Marshal /
// json.MarshalIndent / (*json.Encoder).Encode call whose argument type can
// transitively carry a float must therefore route through a MarshalJSON
// implementation (in this module, the internal/jsonx sanitizer). A type
// implementing json.Marshaler is trusted: the jsonx-backed MarshalJSON
// wrappers on the report types are exactly that path. Interface-typed
// arguments (any, []any) are flagged too — the analyzer cannot see the
// dynamic type, so the call site must prove finiteness with a reasoned
// //lint:allow jsonsafe(...) or marshal through jsonx.

// JSONSafe is the suite's float-safety analyzer for encoding/json calls.
var JSONSafe = &Analyzer{
	Name: "jsonsafe",
	Doc: "flag encoding/json marshalling of float-bearing types that do not " +
		"implement the jsonx MarshalJSON path (NaN/Inf would fail to encode)",
	Run: runJSONSafe,
}

func runJSONSafe(p *Pass) {
	var marshaler *types.Interface // encoding/json.Marshaler, resolved lazily
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := callee(p.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/json" {
				return true
			}
			k := keyOf(fn)
			isMarshal := k.recv == "" && (k.name == "Marshal" || k.name == "MarshalIndent")
			isEncode := k.recv == "Encoder" && k.name == "Encode"
			if (!isMarshal && !isEncode) || len(call.Args) == 0 {
				return true
			}
			tv, ok := p.TypesInfo.Types[call.Args[0]]
			if !ok || tv.Type == nil || tv.IsNil() {
				return true
			}
			if marshaler == nil {
				obj := fn.Pkg().Scope().Lookup("Marshaler")
				if obj == nil {
					return true
				}
				marshaler, _ = obj.Type().Underlying().(*types.Interface)
				if marshaler == nil {
					return true
				}
			}
			w := witness{marshaler: marshaler, seen: make(map[types.Type]bool)}
			path, kind := w.find(tv.Type, "")
			switch kind {
			case witnessFloat:
				p.Reportf(call.Args[0].Pos(),
					"json.%s of %s: %s is a float with no MarshalJSON sanitizer on the path; "+
						"a NaN or ±Inf value fails to encode — route through internal/jsonx",
					k.name, types.TypeString(tv.Type, types.RelativeTo(p.Pkg)), describe(path))
			case witnessInterface:
				p.Reportf(call.Args[0].Pos(),
					"json.%s of %s: %s is interface-typed, so its dynamic value may carry "+
						"non-finite floats; route through internal/jsonx or prove finiteness "+
						"with //lint:allow jsonsafe(...)",
					k.name, types.TypeString(tv.Type, types.RelativeTo(p.Pkg)), describe(path))
			}
			return true
		})
	}
}

func describe(path string) string {
	// A top-level witness carries only the " (type)" suffix, no field path.
	if path == "" || strings.HasPrefix(path, " ") {
		return "the argument" + path
	}
	return "the argument's " + path
}

type witnessKind int

const (
	witnessNone witnessKind = iota
	witnessFloat
	witnessInterface
)

// witness walks a type the way encoding/json would marshal a value of it,
// looking for a reachable float (or an interface that could hide one).
type witness struct {
	marshaler *types.Interface
	seen      map[types.Type]bool
}

// find returns the access path to the first float or non-Marshaler
// interface reachable from t, preferring the concrete float (the stronger
// finding) over an interface when both exist.
func (w *witness) find(t types.Type, path string) (string, witnessKind) {
	if w.safe(t) {
		return "", witnessNone
	}
	if w.seen[t] {
		return "", witnessNone
	}
	w.seen[t] = true
	defer delete(w.seen, t)

	switch u := t.Underlying().(type) {
	case *types.Basic:
		if u.Kind() == types.Float32 || u.Kind() == types.Float64 ||
			u.Kind() == types.Complex64 || u.Kind() == types.Complex128 {
			return path + " (" + u.String() + ")", witnessFloat
		}
	case *types.Pointer:
		return w.find(u.Elem(), path)
	case *types.Slice:
		// []byte marshals to base64, never element-wise.
		if b, ok := u.Elem().Underlying().(*types.Basic); ok && b.Kind() == types.Uint8 {
			return "", witnessNone
		}
		return w.find(u.Elem(), path+"[]")
	case *types.Array:
		if b, ok := u.Elem().Underlying().(*types.Basic); ok && b.Kind() == types.Uint8 {
			return "", witnessNone
		}
		return w.find(u.Elem(), path+"[]")
	case *types.Map:
		return w.find(u.Elem(), path+"[value]")
	case *types.Struct:
		bestPath, best := "", witnessNone
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if !f.Exported() {
				continue
			}
			if reflect.StructTag(u.Tag(i)).Get("json") == "-" {
				continue
			}
			fieldPath := strings.TrimPrefix(path+"."+f.Name(), ".")
			p, kind := w.find(f.Type(), fieldPath)
			if kind == witnessFloat {
				return p, kind
			}
			if kind == witnessInterface && best == witnessNone {
				bestPath, best = p, kind
			}
		}
		return bestPath, best
	case *types.Interface:
		return path + " (" + types.TypeString(t, nil) + ")", witnessInterface
	}
	return "", witnessNone
}

// safe reports whether t handles its own encoding via json.Marshaler
// (checked on both the value and the pointer method set, matching
// encoding/json's addressable-value behavior).
func (w *witness) safe(t types.Type) bool {
	return types.Implements(t, w.marshaler) ||
		types.Implements(types.NewPointer(t), w.marshaler)
}
