package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
)

// The package loader behind the varbenchlint driver and the fixture tests.
// It shells out to `go list -export -deps -json`, which compiles every
// dependency's export data into the build cache, then typechecks only the
// target packages from source with the standard gc importer reading that
// export data. This is the same modular strategy `go vet` uses, and it
// needs nothing outside the standard library and the go command.

// A Package is one typechecked compilation unit ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	DepOnly    bool
	Standard   bool
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Deps resolves package metadata for patterns: the export-data location of
// every transitive dependency (path → file) and the vendoring import map
// (source import path → resolved path). dir is the directory `go list` runs
// in; it must be inside the module.
func Deps(dir string, patterns ...string) (exports, importMap map[string]string, err error) {
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, nil, err
	}
	exports = make(map[string]string, len(pkgs))
	importMap = make(map[string]string)
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		for from, to := range p.ImportMap {
			importMap[from] = to
		}
	}
	return exports, importMap, nil
}

// Load lists patterns (e.g. "./...") from dir and returns every matched
// module package typechecked from source. Test files are not loaded: the
// determinism and JSON contracts bind production code, and tests routinely
// use wall clocks and ad-hoc seeds legitimately.
func Load(dir string, patterns ...string) ([]*Package, error) {
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(pkgs))
	importMap := make(map[string]string)
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		for from, to := range p.ImportMap {
			importMap[from] = to
		}
	}

	fset := token.NewFileSet()
	var out []*Package
	for _, m := range pkgs {
		if m.DepOnly || m.Standard {
			continue
		}
		if len(m.CgoFiles) > 0 {
			return nil, fmt.Errorf("lint: %s: cgo packages are not supported", m.ImportPath)
		}
		if len(m.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range m.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(m.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: %w", err)
			}
			files = append(files, f)
		}
		pkg, err := Typecheck(fset, m.ImportPath, files, exports, importMap)
		if err != nil {
			return nil, err
		}
		pkg.Dir = m.Dir
		out = append(out, pkg)
	}
	return out, nil
}

// Typecheck checks files as one package named path, resolving imports
// through the export-data map produced by Deps or Load. importMap may be
// nil when the module does not vendor.
func Typecheck(fset *token.FileSet, path string, files []*ast.File, exports, importMap map[string]string) (*Package, error) {
	compilerImporter := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		return openExport(exports, path)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if mapped, ok := importMap[importPath]; ok {
			importPath = mapped
		}
		return compilerImporter.(types.ImporterFrom).ImportFrom(importPath, "", 0)
	})
	conf := types.Config{Importer: imp}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typechecking %s: %w", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

func openExport(exports map[string]string, path string) (io.ReadCloser, error) {
	file, ok := exports[path]
	if !ok {
		return nil, fmt.Errorf("lint: no export data for %q", path)
	}
	return os.Open(file)
}

// The go list cache: one varbenchlint invocation (or one test binary)
// resolves the same (dir, patterns) pair repeatedly — the driver for the
// target packages, every fixture for its import closure, each benchmark
// iteration for the whole repo. `go list -export -deps` is by far the
// most expensive step (it compiles export data for the dependency
// closure), so successful listings are memoized for the process lifetime.
// varbenchlint is one-shot and tests don't rewrite packages mid-process,
// so staleness is not a concern; errors are never cached.
var (
	listCacheMu sync.Mutex
	listCache   = make(map[string][]*listPackage)

	// goListExecs counts actual go list executions; the cache tests assert
	// repeated loads coalesce into one.
	goListExecs int
)

// goList runs `go list -export -deps -json` — memoized per (dir, patterns)
// — and decodes the package stream.
func goList(dir string, patterns []string) ([]*listPackage, error) {
	key := dir + "\x00" + strings.Join(patterns, "\x00")
	listCacheMu.Lock()
	cached, ok := listCache[key]
	listCacheMu.Unlock()
	if ok {
		return cached, nil
	}

	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,CgoFiles,Export,DepOnly,Standard,ImportMap,Error",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	listCacheMu.Lock()
	goListExecs++
	listCacheMu.Unlock()
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list: %v\n%s", err, stderr.String())
	}
	pkgs, err := parseGoList(out)
	if err != nil {
		return nil, err
	}
	listCacheMu.Lock()
	listCache[key] = pkgs
	listCacheMu.Unlock()
	return pkgs, nil
}

// parseGoList decodes a `go list -json` package stream, rejecting packages
// that carry load errors.
func parseGoList(out []byte) ([]*listPackage, error) {
	var pkgs []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
