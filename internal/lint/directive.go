package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// The //lint:allow escape hatch. Form:
//
//	//lint:allow analyzer(reason)
//
// placed on the flagged line or alone on the line directly above it. The
// analyzer name must be one of the suite's analyzers and the reason must be
// non-empty: the directive is the project's record of WHY a violation is
// legitimate, so a reasonless one is rejected. Parsing fails closed — any
// malformed directive is itself reported, and a well-formed directive that
// suppresses nothing is reported as unused rather than silently ignored.

// DirectiveAnalyzer is the pseudo-analyzer name under which malformed and
// unused //lint:allow directives are reported. It is deliberately not in
// knownAnalyzers: directive problems cannot be allowed away.
const DirectiveAnalyzer = "lintdirective"

const allowPrefix = "//lint:allow"

type directive struct {
	analyzer string
	reason   string
	file     string
	line     int
	pos      token.Pos
	bad      string // non-empty: why the directive is malformed
	used     bool
}

// parseDirectives collects every //lint:allow directive in files.
func parseDirectives(fset *token.FileSet, files []*ast.File) []*directive {
	var dirs []*directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				posn := fset.Position(c.Slash)
				d := &directive{file: posn.Filename, line: posn.Line, pos: c.Slash}
				d.parse(strings.TrimPrefix(c.Text, allowPrefix))
				dirs = append(dirs, d)
			}
		}
	}
	return dirs
}

// parse fills d from the directive body following "//lint:allow".
func (d *directive) parse(body string) {
	spec := strings.TrimSpace(body)
	if spec == "" {
		d.bad = "want //lint:allow analyzer(reason)"
		return
	}
	if body == spec { // "//lint:allowxyz": not a word boundary
		d.bad = fmt.Sprintf("unrecognized directive %q, want //lint:allow analyzer(reason)", allowPrefix+body)
		return
	}
	open := strings.IndexByte(spec, '(')
	if open < 0 {
		d.bad = fmt.Sprintf("missing (reason) after analyzer name %q", spec)
		return
	}
	name := strings.TrimSpace(spec[:open])
	if !knownAnalyzers[name] {
		d.bad = fmt.Sprintf("unknown analyzer %q", name)
		return
	}
	rest := spec[open+1:]
	end := strings.LastIndexByte(rest, ')')
	if end < 0 || strings.TrimSpace(rest[end+1:]) != "" {
		d.bad = fmt.Sprintf("directive for %q must end with (reason)", name)
		return
	}
	reason := strings.TrimSpace(rest[:end])
	if reason == "" {
		d.bad = fmt.Sprintf("empty reason for %q: say why the violation is legitimate", name)
		return
	}
	d.analyzer = name
	d.reason = reason
}

// applyDirectives drops findings covered by a well-formed directive on the
// same or the preceding line, and appends findings for malformed directives
// and for directives that suppressed nothing.
func applyDirectives(fset *token.FileSet, files []*ast.File, analyzers []*Analyzer, raw []Diagnostic) []Diagnostic {
	dirs := parseDirectives(fset, files)
	if len(dirs) == 0 {
		return raw
	}
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	var out []Diagnostic
	for _, diag := range raw {
		posn := fset.Position(diag.Pos)
		suppressed := false
		for _, d := range dirs {
			if d.bad != "" || d.analyzer != diag.Analyzer || d.file != posn.Filename {
				continue
			}
			if d.line == posn.Line || d.line == posn.Line-1 {
				d.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, diag)
		}
	}
	for _, d := range dirs {
		switch {
		case d.bad != "":
			out = append(out, Diagnostic{
				Analyzer: DirectiveAnalyzer,
				Pos:      d.pos,
				Message:  "malformed //lint:allow directive: " + d.bad,
			})
		case !d.used && ran[d.analyzer]:
			out = append(out, Diagnostic{
				Analyzer: DirectiveAnalyzer,
				Pos:      d.pos,
				Message: fmt.Sprintf("unused //lint:allow directive: no %s finding on this line or the next",
					d.analyzer),
			})
		}
	}
	return out
}
