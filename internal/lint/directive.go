package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// The //lint:allow escape hatch. Form:
//
//	//lint:allow analyzer(reason)
//
// placed on the flagged line or alone on the line directly above it. The
// analyzer name must be one of the suite's analyzers and the reason must be
// non-empty: the directive is the project's record of WHY a violation is
// legitimate, so a reasonless one is rejected. Parsing fails closed — any
// malformed directive is itself reported, and a well-formed directive that
// suppresses nothing is reported as unused rather than silently ignored.
//
// A directive covers whole STATEMENTS, not just lines: one sitting on (or
// directly above) a statement that spans several lines suppresses findings
// anywhere inside that statement's span — fmt.Errorf's argument on its own
// line, the body of a go func literal. The statement matched is the
// outermost one starting on the directive's line or the next (or ending on
// the directive's line, for trailing comments), so a directive inside a
// block never silences its enclosing loop.

// DirectiveAnalyzer is the pseudo-analyzer name under which malformed and
// unused //lint:allow directives are reported. It is deliberately not in
// knownAnalyzers: directive problems cannot be allowed away.
const DirectiveAnalyzer = "lintdirective"

const allowPrefix = "//lint:allow"

type directive struct {
	analyzer string
	reason   string
	file     string
	line     int
	pos      token.Pos
	bad      string // non-empty: why the directive is malformed
	used     bool
}

// parseDirectives collects every //lint:allow directive in files.
func parseDirectives(fset *token.FileSet, files []*ast.File) []*directive {
	var dirs []*directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				posn := fset.Position(c.Slash)
				d := &directive{file: posn.Filename, line: posn.Line, pos: c.Slash}
				d.parse(strings.TrimPrefix(c.Text, allowPrefix))
				dirs = append(dirs, d)
			}
		}
	}
	return dirs
}

// parse fills d from the directive body following "//lint:allow".
func (d *directive) parse(body string) {
	spec := strings.TrimSpace(body)
	if spec == "" {
		d.bad = "want //lint:allow analyzer(reason)"
		return
	}
	if body == spec { // "//lint:allowxyz": not a word boundary
		d.bad = fmt.Sprintf("unrecognized directive %q, want //lint:allow analyzer(reason)", allowPrefix+body)
		return
	}
	open := strings.IndexByte(spec, '(')
	if open < 0 {
		d.bad = fmt.Sprintf("missing (reason) after analyzer name %q", spec)
		return
	}
	name := strings.TrimSpace(spec[:open])
	if !knownAnalyzers[name] {
		d.bad = fmt.Sprintf("unknown analyzer %q", name)
		return
	}
	rest := spec[open+1:]
	end := strings.LastIndexByte(rest, ')')
	if end < 0 || strings.TrimSpace(rest[end+1:]) != "" {
		d.bad = fmt.Sprintf("directive for %q must end with (reason)", name)
		return
	}
	reason := strings.TrimSpace(rest[:end])
	if reason == "" {
		d.bad = fmt.Sprintf("empty reason for %q: say why the violation is legitimate", name)
		return
	}
	d.analyzer = name
	d.reason = reason
}

// span is one covered source range.
type span struct{ pos, end token.Pos }

func (s span) contains(p token.Pos) bool { return s.pos <= p && p < s.end }

// attachSpans gives each well-formed directive the spans of the statements
// it covers: the outermost statement (or spec) starting on the directive's
// line or the line below, or ending on the directive's line. Pre-order
// traversal visits ancestors first, so once a statement matches, its
// nested statements are skipped — a directive covers exactly one
// statement tree per anchor line.
func attachSpans(fset *token.FileSet, files []*ast.File, dirs []*directive) map[*directive][]span {
	spans := make(map[*directive][]span)
	for _, f := range files {
		name := fset.Position(f.Pos()).Filename
		var fileDirs []*directive
		for _, d := range dirs {
			if d.bad == "" && d.file == name {
				fileDirs = append(fileDirs, d)
			}
		}
		if len(fileDirs) == 0 {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n.(type) {
			case ast.Stmt, ast.Spec:
			default:
				return true
			}
			start := fset.Position(n.Pos()).Line
			end := fset.Position(n.End()).Line
			for _, d := range fileDirs {
				if start != d.line && start != d.line+1 && end != d.line {
					continue
				}
				covered := false
				for _, s := range spans[d] {
					if s.contains(n.Pos()) {
						covered = true
						break
					}
				}
				if !covered {
					spans[d] = append(spans[d], span{pos: n.Pos(), end: n.End()})
				}
			}
			return true
		})
	}
	return spans
}

// applyDirectives drops findings covered by a well-formed directive — on
// the same or the preceding line, or anywhere within a statement the
// directive anchors to — and appends findings for malformed directives and
// for directives that suppressed nothing.
func applyDirectives(fset *token.FileSet, files []*ast.File, analyzers []*Analyzer, raw []Diagnostic) []Diagnostic {
	dirs := parseDirectives(fset, files)
	if len(dirs) == 0 {
		return raw
	}
	spans := attachSpans(fset, files, dirs)
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	var out []Diagnostic
	for _, diag := range raw {
		posn := fset.Position(diag.Pos)
		suppressed := false
		for _, d := range dirs {
			if d.bad != "" || d.analyzer != diag.Analyzer || d.file != posn.Filename {
				continue
			}
			match := d.line == posn.Line || d.line == posn.Line-1
			for _, s := range spans[d] {
				if match {
					break
				}
				match = s.contains(diag.Pos)
			}
			if match {
				d.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, diag)
		}
	}
	for _, d := range dirs {
		switch {
		case d.bad != "":
			out = append(out, Diagnostic{
				Analyzer: DirectiveAnalyzer,
				Pos:      d.pos,
				Message:  "malformed //lint:allow directive: " + d.bad,
			})
		case !d.used && ran[d.analyzer]:
			out = append(out, Diagnostic{
				Analyzer: DirectiveAnalyzer,
				Pos:      d.pos,
				Message: fmt.Sprintf("unused //lint:allow directive: no %s finding on this line or the next",
					d.analyzer),
			})
		}
	}
	return out
}
