package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// The errsentinel analyzer: package-level sentinel errors (store.ErrClosed
// and friends) must stay errors.Is-compatible. Once any layer wraps a
// sentinel with fmt.Errorf("...: %w", ErrX), a direct ==/!= comparison
// silently stops matching — the bug class where a retry loop keeps
// retrying a store that already reported "closed".
//
// A sentinel is a package-level `var Err.../err...` of error type declared
// in THIS module (path sharing the analyzed package's module root).
// Standard-library sentinels are exempt on purpose: io.EOF is specified to
// be returned unwrapped and `err == io.EOF` is the documented idiom the
// store's log replay uses.
//
// Findings:
//   - err == ErrX / err != ErrX (any operand order; comparing the sentinel
//     variable itself against nil is fine and skipped);
//   - switch err { case ErrX: } — the same comparison spelled as a switch;
//   - fmt.Errorf passing a sentinel to any verb but %w — %v/%s flatten the
//     sentinel into text and break errors.Is for every caller downstream.
//     The verb parser handles flags, width/precision and *; formats using
//     explicit argument indexes (%[1]d) are skipped wholesale rather than
//     risk misalignment.

// ErrSentinel is the suite's sentinel-error hygiene analyzer.
var ErrSentinel = &Analyzer{
	Name: "errsentinel",
	Doc: "require errors.Is for sentinel comparisons and %w for sentinel " +
		"wrapping so wrapped errors keep matching",
	Run: runErrSentinel,
}

func runErrSentinel(p *Pass) {
	info := p.TypesInfo
	errType := types.Universe.Lookup("error").Type()
	moduleRoot := func(path string) string {
		if i := strings.IndexByte(path, '/'); i >= 0 {
			return path[:i]
		}
		return path
	}
	root := moduleRoot(p.Pkg.Path())

	sentinel := func(e ast.Expr) *types.Var {
		id, ok := ast.Unparen(e).(*ast.Ident)
		var obj types.Object
		if ok {
			obj = info.Uses[id]
		} else if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
			obj = info.Uses[sel.Sel]
		}
		v, ok := obj.(*types.Var)
		if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
			return nil
		}
		name := v.Name()
		if !strings.HasPrefix(name, "Err") && !strings.HasPrefix(name, "err") {
			return nil
		}
		if !types.AssignableTo(v.Type(), errType) {
			return nil
		}
		if moduleRoot(v.Pkg().Path()) != root {
			return nil
		}
		return v
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil" && info.Uses[id] == types.Universe.Lookup("nil")
	}

	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				v := sentinel(n.X)
				other := n.Y
				if v == nil {
					v = sentinel(n.Y)
					other = n.X
				}
				if v == nil || isNil(other) {
					return true
				}
				p.Reportf(n.Pos(),
					"sentinel error %s compared with %s; a wrapped error never "+
						"matches — use errors.Is(%s, %s)",
					v.Name(), n.Op, types.ExprString(other), v.Name())
			case *ast.SwitchStmt:
				if n.Tag == nil {
					return true
				}
				if t := info.TypeOf(n.Tag); t == nil || !types.AssignableTo(t, errType) {
					return true
				}
				for _, c := range n.Body.List {
					cc, ok := c.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if v := sentinel(e); v != nil {
							p.Reportf(e.Pos(),
								"switch case compares an error against sentinel %s "+
									"by identity; a wrapped error never matches — use "+
									"errors.Is in an if/else chain", v.Name())
						}
					}
				}
			case *ast.CallExpr:
				fn := callee(info, n)
				if fn == nil {
					return true
				}
				if k := keyOf(fn); k.pkg != "fmt" || k.recv != "" || k.name != "Errorf" {
					return true
				}
				if len(n.Args) < 2 {
					return true
				}
				lit, ok := ast.Unparen(n.Args[0]).(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					return true
				}
				format, err := strconv.Unquote(lit.Value)
				if err != nil {
					return true
				}
				verbs, ok := formatVerbs(format)
				if !ok {
					return true
				}
				for i, arg := range n.Args[1:] {
					if i >= len(verbs) || verbs[i] == 'w' {
						continue
					}
					if v := sentinel(arg); v != nil {
						p.Reportf(arg.Pos(),
							"sentinel error %s formatted with %%%c, which flattens it "+
								"to text; wrap with %%w so errors.Is keeps matching",
							v.Name(), verbs[i])
					}
				}
			}
			return true
		})
	}
}

// formatVerbs returns the verb consuming each variadic argument of a
// Printf-style format, with '*' entries for width/precision arguments. It
// reports ok=false for formats with explicit argument indexes (%[1]d),
// which it does not model.
func formatVerbs(format string) ([]byte, bool) {
	var verbs []byte
	for i := 0; i < len(format); {
		if format[i] != '%' {
			i++
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			i++
			continue
		}
		for i < len(format) && strings.IndexByte("+-# 0", format[i]) >= 0 {
			i++
		}
		for i < len(format) && format[i] >= '0' && format[i] <= '9' {
			i++
		}
		if i < len(format) && format[i] == '*' {
			verbs = append(verbs, '*')
			i++
		}
		if i < len(format) && format[i] == '.' {
			i++
			for i < len(format) && format[i] >= '0' && format[i] <= '9' {
				i++
			}
			if i < len(format) && format[i] == '*' {
				verbs = append(verbs, '*')
				i++
			}
		}
		if i < len(format) && format[i] == '[' {
			return nil, false
		}
		if i >= len(format) {
			break
		}
		verbs = append(verbs, format[i])
		i++
	}
	return verbs, true
}
