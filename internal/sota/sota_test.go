package sota

import (
	"math"
	"testing"
)

func TestTimelinesKnownTasks(t *testing.T) {
	for _, task := range []string{"cifar10", "sst2"} {
		entries, err := Timelines(task)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) < 8 {
			t.Errorf("%s timeline too short: %d", task, len(entries))
		}
		for i := 1; i < len(entries); i++ {
			if entries[i].Year < entries[i-1].Year {
				t.Errorf("%s timeline not year-ordered", task)
			}
		}
		for _, e := range entries {
			if e.Acc <= 0 || e.Acc > 100 {
				t.Errorf("%s accuracy out of range: %+v", task, e)
			}
		}
	}
	if _, err := Timelines("imagenet"); err == nil {
		t.Error("unknown task should error")
	}
}

func TestAnalyzeMarksSOTA(t *testing.T) {
	entries := []Entry{
		{2015, 90, "a"},
		{2016, 91, "b"},
		{2017, 90.5, "c"}, // not SOTA
		{2018, 93, "d"},
	}
	a := Analyze("toy", entries, 0.5, 0.05)
	if !a.Verdicts[0].IsSOTA || !a.Verdicts[1].IsSOTA || a.Verdicts[2].IsSOTA || !a.Verdicts[3].IsSOTA {
		t.Fatalf("SOTA flags wrong: %+v", a.Verdicts)
	}
	// Threshold = 1.645·√2·0.5 ≈ 1.163: the 1-point improvement in 2016 is
	// not significant; the 2.0-point improvement in 2018 is.
	if a.Verdicts[1].Significant {
		t.Error("1.0-point improvement should not be significant at σ=0.5")
	}
	if !a.Verdicts[3].Significant {
		t.Error("2.0-point improvement should be significant at σ=0.5")
	}
	if math.Abs(a.ThresholdPct-1.645*math.Sqrt2*0.5) > 0.01 {
		t.Errorf("threshold = %v", a.ThresholdPct)
	}
}

func TestAnalyzeSharesAndMeans(t *testing.T) {
	entries := []Entry{
		{2015, 90, "a"},
		{2016, 92, "b"},
		{2017, 92.5, "c"},
	}
	a := Analyze("toy", entries, 0.3, 0.05)
	// Improvements: 2.0 (significant), 0.5 (not: threshold ≈ 0.698).
	if got := a.SignificantShare(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("significant share = %v, want 0.5", got)
	}
	if got := a.MeanImprovement(); math.Abs(got-1.25) > 1e-12 {
		t.Errorf("mean improvement = %v, want 1.25", got)
	}
}

func TestAnalyzeWithRealTimelines(t *testing.T) {
	// With a CIFAR10-like σ of 0.3 accuracy points, a majority of the
	// curated increments should be significant, but not all — the paper's
	// point is exactly that several published SOTA steps sit inside the
	// noise band.
	entries, err := Timelines("cifar10")
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze("cifar10", entries, 0.3, 0.05)
	share := a.SignificantShare()
	if math.IsNaN(share) || share <= 0.3 || share > 1 {
		t.Errorf("cifar10 significant share = %v", share)
	}
	// With an RTE-like σ of 2 points, almost nothing would be significant.
	noisy := Analyze("cifar10", entries, 2.0, 0.05)
	if noisy.SignificantShare() >= share {
		t.Error("larger σ must reduce the significant share")
	}
}

func TestDeltaCoefficient(t *testing.T) {
	// Perfect proportionality recovers the coefficient.
	sigmas := []float64{0.5, 1, 2}
	imps := []float64{1, 2, 4}
	c, err := DeltaCoefficient(imps, sigmas)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-2) > 1e-12 {
		t.Errorf("coef = %v, want 2", c)
	}
	if _, err := DeltaCoefficient([]float64{1}, []float64{}); err == nil {
		t.Error("mismatched lengths should error")
	}
	if _, err := DeltaCoefficient([]float64{1}, []float64{0}); err == nil {
		t.Error("zero sigmas should error (degenerate)")
	}
}
