// Package sota reproduces the Figure 3 analysis: published state-of-the-art
// improvements compared against the benchmark variance σ measured in the
// variance study. The embedded timelines are curated approximations of the
// paperswithcode.com data the paper plots (accuracy in %, by year) — the
// paper itself only uses them to show that typical year-over-year increments
// are on the order of the benchmark's σ, which these curated values
// preserve. It also fits the δ = coef·σ regression that Section 4.2 uses to
// set the average-comparison threshold (the paper obtains coef = 1.9952).
package sota

import (
	"fmt"
	"math"
	"sort"

	"varbench/internal/stats"
)

// Entry is one published result.
type Entry struct {
	Year   int
	Acc    float64 // accuracy in percent
	Method string
}

// Timelines returns the embedded published-results history for a task
// ("cifar10" or "sst2"), ordered by year.
func Timelines(task string) ([]Entry, error) {
	switch task {
	case "cifar10":
		return []Entry{
			{2011, 80.5, "improved sparse coding"},
			{2012, 84.9, "multi-column DNN"},
			{2013, 90.7, "Maxout"},
			{2013, 91.2, "Network in Network"},
			{2014, 91.8, "Deeply-Supervised Nets"},
			{2015, 93.6, "ResNet"},
			{2016, 96.1, "Wide ResNet"},
			{2016, 96.5, "DenseNet"},
			{2017, 97.1, "Shake-Shake"},
			{2018, 98.5, "AutoAugment"},
			{2019, 99.0, "GPipe"},
			{2020, 99.4, "BiT-L"},
		}, nil
	case "sst2":
		return []Entry{
			{2013, 85.4, "RNTN"},
			{2014, 88.1, "CNN-multichannel"},
			{2015, 88.8, "Tree-LSTM"},
			{2016, 89.7, "byte-mLSTM (early)"},
			{2017, 91.8, "bmLSTM"},
			{2018, 94.9, "BERT-large"},
			{2019, 96.8, "XLNet"},
			{2019, 97.1, "ALBERT"},
			{2020, 97.5, "T5-11B"},
		}, nil
	default:
		return nil, fmt.Errorf("sota: unknown task %q (want cifar10 or sst2)", task)
	}
}

// Verdict classifies one published increment against benchmark noise.
type Verdict struct {
	Entry
	PrevBest    float64
	Improvement float64 // over the running best, in accuracy points
	IsSOTA      bool    // strictly improves the running best
	Significant bool    // improvement exceeds the significance threshold
}

// Analysis is the Figure 3 output for one task.
type Analysis struct {
	Task string
	// SigmaPct is the benchmark standard deviation in accuracy points (the
	// red band of Figure 3).
	SigmaPct float64
	// ThresholdPct is the significance threshold on an improvement between
	// two independently measured results: z_{1-α}·√2·σ (the yellow band).
	ThresholdPct float64
	Verdicts     []Verdict
}

// Analyze walks the timeline, marking each SOTA improvement significant or
// not relative to the benchmark σ (both in accuracy points). alpha is the
// one-sided false-positive level (the paper uses 0.05).
func Analyze(task string, entries []Entry, sigmaPct, alpha float64) Analysis {
	sorted := append([]Entry(nil), entries...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Year < sorted[j].Year })
	threshold := stats.NormQuantile(1-alpha) * math.Sqrt2 * sigmaPct
	a := Analysis{Task: task, SigmaPct: sigmaPct, ThresholdPct: threshold}
	best := math.Inf(-1)
	for _, e := range sorted {
		v := Verdict{Entry: e, PrevBest: best}
		if e.Acc > best {
			v.IsSOTA = true
			if !math.IsInf(best, -1) {
				v.Improvement = e.Acc - best
				v.Significant = v.Improvement > threshold
			} else {
				v.Improvement = math.NaN() // first entry has no reference
				v.Significant = true
			}
			best = e.Acc
		}
		a.Verdicts = append(a.Verdicts, v)
	}
	return a
}

// SignificantShare returns the fraction of SOTA improvements (first entry
// excluded) that clear the significance threshold.
func (a Analysis) SignificantShare() float64 {
	sig, tot := 0, 0
	for _, v := range a.Verdicts {
		if !v.IsSOTA || math.IsNaN(v.Improvement) {
			continue
		}
		tot++
		if v.Significant {
			sig++
		}
	}
	if tot == 0 {
		return math.NaN()
	}
	return float64(sig) / float64(tot)
}

// MeanImprovement returns the average SOTA increment (first entry excluded).
func (a Analysis) MeanImprovement() float64 {
	var sum float64
	n := 0
	for _, v := range a.Verdicts {
		if v.IsSOTA && !math.IsNaN(v.Improvement) {
			sum += v.Improvement
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// DeltaCoefficient regresses mean published improvements on benchmark σ
// through the origin, yielding the coefficient c in δ = c·σ. The paper's
// fit across its case studies gives 1.9952; ours depends on the synthetic
// benchmarks' measured σ but serves the same role.
func DeltaCoefficient(meanImprovements, sigmas []float64) (float64, error) {
	if len(meanImprovements) != len(sigmas) || len(sigmas) == 0 {
		return 0, fmt.Errorf("sota: need equal non-empty slices")
	}
	fit := stats.RegressionThroughOrigin(sigmas, meanImprovements)
	if math.IsNaN(fit.Slope) {
		return 0, fmt.Errorf("sota: degenerate regression")
	}
	return fit.Slope, nil
}
