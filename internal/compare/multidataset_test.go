package compare

import (
	"testing"

	"varbench/internal/stats"
	"varbench/internal/xrand"
)

func datasetsWithEffect(r *xrand.Source, nDatasets, nPairs int, diff float64) []DatasetPairs {
	out := make([]DatasetPairs, nDatasets)
	for d := range out {
		pairs := make([]stats.Pair, nPairs)
		for i := range pairs {
			base := r.NormFloat64()
			pairs[i] = stats.Pair{A: base + diff, B: base + 0.3*r.NormFloat64()}
		}
		out[d] = DatasetPairs{Name: string(rune('a' + d)), Pairs: pairs}
	}
	return out
}

func TestAcrossDatasetsAcceptsUniformWinner(t *testing.T) {
	r := xrand.New(1)
	ds := datasetsWithEffect(r, 4, 40, 2.0)
	res, err := AcrossDatasets(ds, 0.75, 0.05, r)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllMeaningful {
		t.Errorf("uniform dominance should be accepted: %+v", res.PerDataset)
	}
	if res.WilcoxonP > 0.1 {
		t.Errorf("Wilcoxon p = %v, want small for uniform dominance", res.WilcoxonP)
	}
	// Adjusted γ must be stricter than the nominal one.
	if res.PerDataset[0].AdjustedGamma <= 0.75 {
		t.Errorf("adjusted γ = %v, want > 0.75", res.PerDataset[0].AdjustedGamma)
	}
}

func TestAcrossDatasetsRejectsWhenOneDatasetFails(t *testing.T) {
	r := xrand.New(2)
	ds := datasetsWithEffect(r, 3, 40, 2.0)
	// Break the third dataset: no effect at all.
	for i := range ds[2].Pairs {
		base := r.NormFloat64()
		ds[2].Pairs[i] = stats.Pair{A: base, B: base + 0.3*r.NormFloat64()}
	}
	res, err := AcrossDatasets(ds, 0.75, 0.05, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.AllMeaningful {
		t.Error("one null dataset must block all-datasets acceptance")
	}
}

func TestAcrossDatasetsNullControlled(t *testing.T) {
	r := xrand.New(3)
	ds := datasetsWithEffect(r, 4, 30, 0)
	res, err := AcrossDatasets(ds, 0.75, 0.05, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.AllMeaningful {
		t.Error("null effect accepted across datasets")
	}
}

func TestAcrossDatasetsSmallCounts(t *testing.T) {
	r := xrand.New(4)
	// Two datasets: Wilcoxon is not applicable, must report p=1.
	ds := datasetsWithEffect(r, 2, 20, 1.5)
	res, err := AcrossDatasets(ds, 0.75, 0.05, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.WilcoxonP != 1 {
		t.Errorf("Wilcoxon with 2 datasets should be 1, got %v", res.WilcoxonP)
	}
	if _, err := AcrossDatasets(nil, 0.75, 0.05, r); err == nil {
		t.Error("empty dataset list should error")
	}
}
