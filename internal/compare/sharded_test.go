package compare

import (
	"reflect"
	"runtime"
	"testing"

	"varbench/internal/stats"
	"varbench/internal/xrand"
)

func shardedPairs(n int, diff float64, seed uint64) []stats.Pair {
	r := xrand.New(seed)
	pairs := make([]stats.Pair, n)
	for i := range pairs {
		base := r.NormFloat64()
		pairs[i] = stats.Pair{A: base + diff, B: base + 0.3*r.NormFloat64()}
	}
	return pairs
}

func TestEvaluateShardedWorkerInvariance(t *testing.T) {
	pairs := shardedPairs(29, 1.0, 3)
	ref, err := PAB{}.EvaluateSharded(pairs, 11, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, runtime.GOMAXPROCS(0), 64} {
		res, err := PAB{}.EvaluateSharded(pairs, 11, w)
		if err != nil {
			t.Fatal(err)
		}
		if res != ref {
			t.Errorf("workers=%d: %+v != serial reference %+v", w, res, ref)
		}
	}
	if ref.Decision != SignificantAndMeaningful {
		t.Errorf("dominant pairs judged %v", ref.Decision)
	}
}

func TestEvaluateShardedTooFewPairs(t *testing.T) {
	if _, err := (PAB{}).EvaluateSharded(nil, 1, 4); err == nil {
		t.Error("empty pairs accepted")
	}
	if _, err := (PAB{}).EvaluateSharded(shardedPairs(1, 1, 1), 1, 4); err == nil {
		t.Error("single pair accepted")
	}
}

func TestEvaluateUnpairedShardedWorkerInvariance(t *testing.T) {
	r := xrand.New(5)
	a := make([]float64, 30)
	b := make([]float64, 25)
	for i := range a {
		a[i] = r.NormFloat64() + 1
	}
	for i := range b {
		b[i] = r.NormFloat64()
	}
	ref, err := PAB{}.EvaluateUnpairedSharded(a, b, 13, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		res, err := PAB{}.EvaluateUnpairedSharded(a, b, 13, w)
		if err != nil {
			t.Fatal(err)
		}
		if res != ref {
			t.Errorf("workers=%d: %+v != serial reference %+v", w, res, ref)
		}
	}
	if _, err := (PAB{}).EvaluateUnpairedSharded(a[:1], b, 13, 2); err == nil {
		t.Error("single measure accepted")
	}
}

func TestAcrossDatasetsShardedOrderAndWorkerInvariance(t *testing.T) {
	ds := []DatasetPairs{
		{Name: "d1", Pairs: shardedPairs(30, 2.0, 1)},
		{Name: "d2", Pairs: shardedPairs(30, 1.5, 2)},
		{Name: "d3", Pairs: shardedPairs(30, 2.5, 3)},
	}
	ref, err := AcrossDatasetsSharded(ds, PAB{}, 0.05, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	many, err := AcrossDatasetsSharded(ds, PAB{}, 0.05, 7, runtime.GOMAXPROCS(0))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, many) {
		t.Error("sharded multi-dataset result depends on worker count")
	}
	// Per-dataset streams are keyed by (seed, name): shuffling the dataset
	// list permutes the outcomes without changing any of them.
	shuffled := []DatasetPairs{ds[2], ds[0], ds[1]}
	perm, err := AcrossDatasetsSharded(shuffled, PAB{}, 0.05, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]DatasetOutcome{}
	for _, d := range perm.PerDataset {
		byName[d.Dataset] = d
	}
	for _, d := range ref.PerDataset {
		if got := byName[d.Dataset]; got != d {
			t.Errorf("dataset %s changed under reordering:\n %+v\n %+v", d.Dataset, got, d)
		}
	}
	if !ref.AllMeaningful {
		t.Errorf("uniform winner rejected: %+v", ref.PerDataset)
	}
}

func TestSaturatedGammaKeepsMeaningfulReachable(t *testing.T) {
	// Regression for the γ=1 clamp: at the saturation ceiling a total
	// winner (every pair A>B, CI [1,1]) must still be judged meaningful,
	// and the old clamp at exactly 1.0 made that impossible.
	pairs := make([]stats.Pair, 20)
	for i := range pairs {
		pairs[i] = stats.Pair{A: 1, B: 0}
	}
	res, err := PAB{Gamma: stats.GammaMax}.EvaluateSharded(pairs, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != SignificantAndMeaningful {
		t.Errorf("total winner at saturated γ judged %v", res.Decision)
	}
	if res.CI.Lo <= stats.GammaMax {
		t.Errorf("CI.Lo = %v, expected the degenerate [1,1] interval", res.CI.Lo)
	}
}
