package compare

import (
	"testing"

	"varbench/internal/xrand"
)

func TestEvaluateUnpairedDominance(t *testing.T) {
	r := xrand.New(1)
	a := make([]float64, 40)
	b := make([]float64, 40)
	for i := range a {
		a[i] = r.Normal(2, 1)
		b[i] = r.NormFloat64()
	}
	res, err := PAB{}.EvaluateUnpaired(a, b, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != SignificantAndMeaningful {
		t.Errorf("2σ dominance: %v (PAB=%v CI=%+v)", res.Decision, res.PAB, res.CI)
	}
	if res.PAB < 0.85 {
		t.Errorf("PAB = %v, want ≈ Φ(2/√2) ≈ 0.92", res.PAB)
	}
}

func TestEvaluateUnpairedNull(t *testing.T) {
	r := xrand.New(2)
	const trials = 60
	fp := 0
	for trial := 0; trial < trials; trial++ {
		a := make([]float64, 30)
		b := make([]float64, 30)
		for i := range a {
			a[i] = r.NormFloat64()
			b[i] = r.NormFloat64()
		}
		res, err := PAB{Bootstrap: 200}.EvaluateUnpaired(a, b, r)
		if err != nil {
			t.Fatal(err)
		}
		if res.Decision == SignificantAndMeaningful {
			fp++
		}
	}
	if rate := float64(fp) / trials; rate > 0.15 {
		t.Errorf("unpaired null FP rate = %v", rate)
	}
}

func TestEvaluateUnpairedUnequalSizes(t *testing.T) {
	r := xrand.New(3)
	a := make([]float64, 15)
	b := make([]float64, 50)
	for i := range a {
		a[i] = r.Normal(3, 1)
	}
	for i := range b {
		b[i] = r.NormFloat64()
	}
	res, err := PAB{}.EvaluateUnpaired(a, b, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.PAB < 0.9 {
		t.Errorf("unequal-size dominance PAB = %v", res.PAB)
	}
}

func TestEvaluateUnpairedErrors(t *testing.T) {
	if _, err := (PAB{}).EvaluateUnpaired([]float64{1}, []float64{1, 2}, xrand.New(1)); err == nil {
		t.Error("single-measure sample accepted")
	}
}

func TestUnpairedLessPowerfulThanPaired(t *testing.T) {
	// With strong shared noise, pairing should detect what the unpaired
	// analysis cannot.
	r := xrand.New(4)
	n := 29
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		shared := r.NormFloat64() * 0.2 // dominant shared component
		a[i] = shared + 0.02 + 0.005*r.NormFloat64()
		b[i] = shared + 0.005*r.NormFloat64()
	}
	pairs, err := Pairs(a, b)
	if err != nil {
		t.Fatal(err)
	}
	paired, err := PAB{}.Evaluate(pairs, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	unpaired, err := PAB{}.EvaluateUnpaired(a, b, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if paired.Decision != SignificantAndMeaningful {
		t.Errorf("paired analysis missed the consistent improvement: %+v", paired)
	}
	if unpaired.PAB > paired.PAB {
		t.Errorf("unpaired PAB %v should not exceed paired %v under shared noise",
			unpaired.PAB, paired.PAB)
	}
}
