package compare

import (
	"bytes"
	"math"
	"runtime"
	"testing"

	"varbench/internal/stats"
	"varbench/internal/xrand"
)

func testPairs(r *xrand.Source, n int) []stats.Pair {
	p := make([]stats.Pair, n)
	for i := range p {
		base := r.NormFloat64()
		a := base + 0.4 + 0.3*r.NormFloat64()
		b := base + 0.3*r.NormFloat64()
		if r.Bernoulli(0.15) {
			b = a // exercise the tie arm
		}
		p[i] = stats.Pair{A: a, B: b}
	}
	return p
}

// TestAnalysisStateBitIdentical: feeding pairs batch by batch — at any
// worker count — matches the single-shot analysis of the full sequence
// bit for bit, including the serialized accumulator state.
func TestAnalysisStateBitIdentical(t *testing.T) {
	r := xrand.New(17)
	crit := PAB{Gamma: 0.75, Level: 0.95, Bootstrap: 300}
	for trial := 0; trial < 6; trial++ {
		n := 5 + r.Intn(25)
		seed := r.Uint64()
		pairs := testPairs(r, n)

		ref, err := crit.NewAnalysis(seed, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := ref.Extend(pairs); err != nil {
			t.Fatal(err)
		}
		refRes, err := ref.Evaluate()
		if err != nil {
			t.Fatal(err)
		}
		refSnap, err := ref.Snapshot()
		if err != nil {
			t.Fatal(err)
		}

		for _, w := range []int{1, 4, runtime.GOMAXPROCS(0)} {
			for _, batch := range []int{1, 3, n} {
				st, err := crit.NewAnalysis(seed, w)
				if err != nil {
					t.Fatal(err)
				}
				for lo := 0; lo < n; lo += batch {
					if err := st.Extend(pairs[lo:min(lo+batch, n)]); err != nil {
						t.Fatal(err)
					}
				}
				res, err := st.Evaluate()
				if err != nil {
					t.Fatal(err)
				}
				if res != refRes {
					t.Fatalf("workers=%d batch=%d: %+v != %+v", w, batch, res, refRes)
				}
				snap, err := st.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(snap, refSnap) {
					t.Fatalf("workers=%d batch=%d: snapshot differs", w, batch)
				}
			}
		}
	}
}

// TestAnalysisStatePointMatchesKernel: the incremental point estimate and
// means are bit-identical to their one-shot counterparts (PABKernel.Stat
// and stats.Mean) — only the CI changes resampling scheme.
func TestAnalysisStatePointMatchesKernel(t *testing.T) {
	r := xrand.New(23)
	for trial := 0; trial < 10; trial++ {
		n := 2 + r.Intn(40)
		pairs := testPairs(r, n)
		st, err := PAB{}.NewAnalysis(1, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Extend(pairs); err != nil {
			t.Fatal(err)
		}
		if got, want := st.Point(), pabKernel.Stat(pairs); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("Point() = %v, PABKernel.Stat = %v", got, want)
		}
		a := make([]float64, n)
		b := make([]float64, n)
		for i, p := range pairs {
			a[i], b[i] = p.A, p.B
		}
		ma, mb := st.Means()
		if math.Float64bits(ma) != math.Float64bits(stats.Mean(a)) ||
			math.Float64bits(mb) != math.Float64bits(stats.Mean(b)) {
			t.Fatalf("Means() = (%v, %v), want (%v, %v)", ma, mb, stats.Mean(a), stats.Mean(b))
		}
	}
}

// TestAnalysisStateSnapshotResume: snapshot mid-stream, restore, feed the
// rest — the final evaluation and state match the uninterrupted run.
func TestAnalysisStateSnapshotResume(t *testing.T) {
	r := xrand.New(29)
	crit := PAB{Bootstrap: 500}
	n := 24
	pairs := testPairs(r, n)

	ref, _ := crit.NewAnalysis(9, 1)
	if err := ref.Extend(pairs); err != nil {
		t.Fatal(err)
	}
	refSnap, _ := ref.Snapshot()

	half, _ := crit.NewAnalysis(9, 1)
	if err := half.Extend(pairs[:10]); err != nil {
		t.Fatal(err)
	}
	blob, err := half.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := crit.RestoreAnalysis(blob, 2)
	if err != nil {
		t.Fatal(err)
	}
	if restored.N() != 10 || restored.Seed() != 9 || restored.Bootstrap() != 500 {
		t.Fatalf("restored identity: n=%d seed=%d k=%d", restored.N(), restored.Seed(), restored.Bootstrap())
	}
	if err := restored.Extend(pairs[10:]); err != nil {
		t.Fatal(err)
	}
	got, _ := restored.Snapshot()
	if !bytes.Equal(got, refSnap) {
		t.Fatal("restore→extend differs from uninterrupted analysis")
	}
}

// TestRestoreAnalysisRejects: K mismatches, foreign accumulator kinds and
// corrupt blobs are rejected whole.
func TestRestoreAnalysisRejects(t *testing.T) {
	crit := PAB{Bootstrap: 100}
	st, _ := crit.NewAnalysis(1, 1)
	if err := st.Extend(testPairs(xrand.New(2), 8)); err != nil {
		t.Fatal(err)
	}
	good, _ := st.Snapshot()

	if _, err := (PAB{Bootstrap: 200}).RestoreAnalysis(good, 1); err == nil {
		t.Fatal("accepted a snapshot with mismatched K")
	}
	if _, err := crit.RestoreAnalysis(good[:20], 1); err == nil {
		t.Fatal("accepted a truncated snapshot")
	}
	if _, err := crit.RestoreAnalysis([]byte("not a snapshot at all......"), 1); err == nil {
		t.Fatal("accepted garbage")
	}
	// A mean-kind accumulator blob wrapped in an analysis header must be
	// rejected as the wrong kernel.
	acc, _ := stats.NewAccum(stats.AccMean, 100, 1)
	if err := acc.ExtendFloats([]float64{1, 2, 3}, 1); err != nil {
		t.Fatal(err)
	}
	wrong := bytes.Clone(good[:analysisHeaderSize])
	accBlob, _ := acc.MarshalBinary()
	wrong = append(wrong, accBlob...)
	if _, err := crit.RestoreAnalysis(wrong, 1); err == nil {
		t.Fatal("accepted a foreign accumulator kind")
	}
	if _, err := crit.RestoreAnalysis(good, 1); err != nil {
		t.Fatalf("rejected its own snapshot: %v", err)
	}
	if _, err := (PAB{Bootstrap: -1}).NewAnalysis(1, 1); err == nil {
		t.Fatal("NewAnalysis accepted an invalid criterion")
	}
}

// TestAnalysisStateDecisions: the incremental three-zone decision agrees
// with the one-shot path on clearly separated and clearly tied data.
func TestAnalysisStateDecisions(t *testing.T) {
	r := xrand.New(37)
	crit := PAB{Gamma: 0.75}

	sep := make([]stats.Pair, 30)
	for i := range sep {
		sep[i] = stats.Pair{A: 1 + 0.05*r.NormFloat64(), B: 0.05 * r.NormFloat64()}
	}
	st, _ := crit.NewAnalysis(3, 1)
	if err := st.Extend(sep); err != nil {
		t.Fatal(err)
	}
	res, err := st.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != SignificantAndMeaningful {
		t.Fatalf("separated pairs: %v, want significant and meaningful", res.Decision)
	}

	tied := make([]stats.Pair, 30)
	for i := range tied {
		v := r.NormFloat64()
		tied[i] = stats.Pair{A: v + 0.01*r.NormFloat64(), B: v + 0.01*r.NormFloat64()}
	}
	st2, _ := crit.NewAnalysis(3, 1)
	if err := st2.Extend(tied); err != nil {
		t.Fatal(err)
	}
	res2, err := st2.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Decision == SignificantAndMeaningful {
		t.Fatalf("noise-only pairs judged meaningful: %+v", res2)
	}

	// Too few pairs is an error, as on the one-shot path.
	empty, _ := crit.NewAnalysis(3, 1)
	if _, err := empty.Evaluate(); err == nil {
		t.Fatal("Evaluate accepted an empty state")
	}
}
