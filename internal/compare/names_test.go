package compare

import (
	"testing"

	"varbench/internal/stats"
	"varbench/internal/xrand"
)

func TestCriterionNames(t *testing.T) {
	cases := map[string]Criterion{
		"single-point":    SinglePoint{},
		"average":         AverageThreshold{},
		"paired-t":        PairedT{},
		"prob-outperform": PAB{},
		"oracle":          Oracle{},
	}
	for want, c := range cases {
		if c.Name() != want {
			t.Errorf("Name() = %q, want %q", c.Name(), want)
		}
	}
}

func TestPABDetectsInterface(t *testing.T) {
	r := xrand.New(1)
	pairs := make([]stats.Pair, 40)
	for i := range pairs {
		pairs[i] = stats.Pair{A: r.Normal(3, 1), B: r.NormFloat64()}
	}
	if !(PAB{Bootstrap: 200}).Detects(pairs, r) {
		t.Error("PAB.Detects missed strong dominance")
	}
	// Too few pairs: Detects must be false, not panic.
	if (PAB{}).Detects([]stats.Pair{{A: 1, B: 0}}, r) {
		t.Error("single pair should not detect")
	}
}

func TestPABCustomLevel(t *testing.T) {
	c := PAB{Level: 0.9, Gamma: 0.6, Bootstrap: 300}
	if c.level() != 0.9 || c.gamma() != 0.6 || c.boots() != 300 {
		t.Error("explicit settings ignored")
	}
	r := xrand.New(2)
	pairs := make([]stats.Pair, 30)
	for i := range pairs {
		pairs[i] = stats.Pair{A: r.Normal(2, 1), B: r.NormFloat64()}
	}
	res, err := c.Evaluate(pairs, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.CI.Level != 0.9 || res.Gamma != 0.6 {
		t.Errorf("result carries wrong settings: %+v", res)
	}
}

func TestOracleEmptyPairs(t *testing.T) {
	if (Oracle{Sigma: 1}).Detects(nil, nil) {
		t.Error("empty pairs should not detect")
	}
}
