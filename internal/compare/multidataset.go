package compare

import (
	"fmt"

	"varbench/internal/stats"
	"varbench/internal/xrand"
)

// Section 6 of the paper discusses accumulating evidence across multiple
// datasets. Two families are implemented here: Demšar's (2006) Wilcoxon
// signed-rank test over per-dataset mean performances (better with many
// datasets), and Dror et al.'s (2017) replicability analysis that accepts an
// algorithm only when it improves on every dataset under a partial-
// conjunction multiple-comparison correction (better with few datasets,
// which is the common case — papers typically use 3 to 5).

// DatasetOutcome is the per-dataset piece of a multi-dataset comparison.
type DatasetOutcome struct {
	Dataset       string
	Result        Result  // the recommended P(A>B) test on this dataset
	AdjustedGamma float64 // γ after the multiple-comparison adjustment
}

// MultiResult aggregates evidence across datasets.
type MultiResult struct {
	PerDataset []DatasetOutcome
	// AllMeaningful reports Dror-style acceptance: A beats B significantly
	// and meaningfully on every dataset at the corrected threshold.
	AllMeaningful bool
	// WilcoxonP is Demšar's signed-rank p-value over per-dataset means
	// (one-sided, A greater).
	WilcoxonP float64
}

// DatasetPairs carries the paired measures of one dataset.
type DatasetPairs struct {
	Name  string
	Pairs []stats.Pair
}

// AcrossDatasets runs the recommended test on each dataset with a
// Bonferroni-adjusted meaningfulness threshold (Section 6's suggestion) and
// combines the outcomes: Dror-style all-datasets acceptance plus Demšar's
// Wilcoxon over per-dataset mean differences.
func AcrossDatasets(datasets []DatasetPairs, gamma, alpha float64, r *xrand.Source) (MultiResult, error) {
	return AcrossDatasetsCrit(datasets, PAB{Gamma: gamma}, alpha, r)
}

// AcrossDatasetsCrit is AcrossDatasets with an explicit criterion carrying
// the CI level and bootstrap count; crit.Gamma is the unadjusted γ.
func AcrossDatasetsCrit(datasets []DatasetPairs, crit PAB, alpha float64, r *xrand.Source) (MultiResult, error) {
	if len(datasets) == 0 {
		return MultiResult{}, fmt.Errorf("compare: no datasets")
	}
	adjGamma := stats.GammaBonferroni(crit.gamma(), alpha, len(datasets))
	res := MultiResult{AllMeaningful: true}
	meansA := make([]float64, 0, len(datasets))
	meansB := make([]float64, 0, len(datasets))
	for _, ds := range datasets {
		crit := PAB{Gamma: adjGamma, Level: crit.Level, Bootstrap: crit.Bootstrap}
		out, err := crit.Evaluate(ds.Pairs, r)
		if err != nil {
			return MultiResult{}, fmt.Errorf("compare: dataset %s: %w", ds.Name, err)
		}
		res.PerDataset = append(res.PerDataset, DatasetOutcome{
			Dataset: ds.Name, Result: out, AdjustedGamma: adjGamma,
		})
		if out.Decision != SignificantAndMeaningful {
			res.AllMeaningful = false
		}
		var ma, mb float64
		for _, p := range ds.Pairs {
			ma += p.A
			mb += p.B
		}
		meansA = append(meansA, ma/float64(len(ds.Pairs)))
		meansB = append(meansB, mb/float64(len(ds.Pairs)))
	}
	if len(datasets) >= 3 {
		res.WilcoxonP = stats.WilcoxonSignedRank(meansA, meansB, stats.GreaterTailed).PValue
	} else {
		// Demšar's test is meaningless below 3 datasets; report 1.
		res.WilcoxonP = 1
	}
	return res, nil
}
