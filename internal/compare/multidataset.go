package compare

import (
	"fmt"

	"varbench/internal/stats"
	"varbench/internal/xrand"
)

// Section 6 of the paper discusses accumulating evidence across multiple
// datasets. Two families are implemented here: Demšar's (2006) Wilcoxon
// signed-rank test over per-dataset mean performances (better with many
// datasets), and Dror et al.'s (2017) replicability analysis that accepts an
// algorithm only when it improves on every dataset under a partial-
// conjunction multiple-comparison correction (better with few datasets,
// which is the common case — papers typically use 3 to 5).

// DatasetOutcome is the per-dataset piece of a multi-dataset comparison.
type DatasetOutcome struct {
	Dataset       string
	Result        Result  // the recommended P(A>B) test on this dataset
	AdjustedGamma float64 // γ after the multiple-comparison adjustment
}

// MultiResult aggregates evidence across datasets.
type MultiResult struct {
	PerDataset []DatasetOutcome
	// AllMeaningful reports Dror-style acceptance: A beats B significantly
	// and meaningfully on every dataset at the corrected threshold.
	AllMeaningful bool
	// WilcoxonP is Demšar's signed-rank p-value over per-dataset means
	// (one-sided, A greater).
	WilcoxonP float64
}

// DatasetPairs carries the paired measures of one dataset.
type DatasetPairs struct {
	Name  string
	Pairs []stats.Pair
}

// AcrossDatasets runs the recommended test on each dataset with a
// Bonferroni-adjusted meaningfulness threshold (Section 6's suggestion) and
// combines the outcomes: Dror-style all-datasets acceptance plus Demšar's
// Wilcoxon over per-dataset mean differences.
func AcrossDatasets(datasets []DatasetPairs, gamma, alpha float64, r *xrand.Source) (MultiResult, error) {
	return AcrossDatasetsCrit(datasets, PAB{Gamma: gamma}, alpha, r)
}

// AcrossDatasetsCrit is AcrossDatasets with an explicit criterion carrying
// the CI level and bootstrap count; crit.Gamma is the unadjusted γ.
func AcrossDatasetsCrit(datasets []DatasetPairs, crit PAB, alpha float64, r *xrand.Source) (MultiResult, error) {
	if len(datasets) == 0 {
		return MultiResult{}, fmt.Errorf("compare: no datasets")
	}
	adjGamma := stats.GammaBonferroni(crit.gamma(), alpha, len(datasets))
	if err := validAdjustedGamma(adjGamma); err != nil {
		return MultiResult{}, err
	}
	res := MultiResult{AllMeaningful: true}
	meansA := make([]float64, 0, len(datasets))
	meansB := make([]float64, 0, len(datasets))
	for _, ds := range datasets {
		crit := PAB{Gamma: adjGamma, Level: crit.Level, Bootstrap: crit.Bootstrap}
		out, err := crit.Evaluate(ds.Pairs, r)
		if err != nil {
			return MultiResult{}, fmt.Errorf("compare: dataset %s: %w", ds.Name, err)
		}
		res.PerDataset = append(res.PerDataset, DatasetOutcome{
			Dataset: ds.Name, Result: out, AdjustedGamma: adjGamma,
		})
		if out.Decision != SignificantAndMeaningful {
			res.AllMeaningful = false
		}
		appendMeans(&meansA, &meansB, ds.Pairs)
	}
	res.WilcoxonP = wilcoxonAcross(meansA, meansB)
	return res, nil
}

// AcrossDatasetsSharded is AcrossDatasetsCrit with the per-dataset bootstrap
// sharded across `workers` goroutines. Each dataset's resampling stream is
// derived from (seed, dataset name) alone, so the outcome is independent of
// both the worker count and the dataset evaluation order.
func AcrossDatasetsSharded(datasets []DatasetPairs, crit PAB, alpha float64, seed uint64, workers int) (MultiResult, error) {
	if len(datasets) == 0 {
		return MultiResult{}, fmt.Errorf("compare: no datasets")
	}
	adjGamma := stats.GammaBonferroni(crit.gamma(), alpha, len(datasets))
	if err := validAdjustedGamma(adjGamma); err != nil {
		return MultiResult{}, err
	}
	root := xrand.New(seed)
	res := MultiResult{AllMeaningful: true}
	meansA := make([]float64, 0, len(datasets))
	meansB := make([]float64, 0, len(datasets))
	for _, ds := range datasets {
		crit := PAB{Gamma: adjGamma, Level: crit.Level, Bootstrap: crit.Bootstrap}
		dsSeed := root.Split("dataset/" + ds.Name).Uint64()
		out, err := crit.EvaluateSharded(ds.Pairs, dsSeed, workers)
		if err != nil {
			return MultiResult{}, fmt.Errorf("compare: dataset %s: %w", ds.Name, err)
		}
		res.PerDataset = append(res.PerDataset, DatasetOutcome{
			Dataset: ds.Name, Result: out, AdjustedGamma: adjGamma,
		})
		if out.Decision != SignificantAndMeaningful {
			res.AllMeaningful = false
		}
		appendMeans(&meansA, &meansB, ds.Pairs)
	}
	res.WilcoxonP = wilcoxonAcross(meansA, meansB)
	return res, nil
}

// validAdjustedGamma guards the threshold the decision rule consumes: the
// Bonferroni adjustment saturates at stats.GammaMax < 1, and anything at or
// beyond 1 would make "significant and meaningful" unreachable.
func validAdjustedGamma(g float64) error {
	if g <= 0.5 || g >= 1 {
		return fmt.Errorf("compare: adjusted γ = %v out of (0.5, 1)", g)
	}
	return nil
}

func appendMeans(meansA, meansB *[]float64, pairs []stats.Pair) {
	var ma, mb float64
	for _, p := range pairs {
		ma += p.A
		mb += p.B
	}
	*meansA = append(*meansA, ma/float64(len(pairs)))
	*meansB = append(*meansB, mb/float64(len(pairs)))
}

// wilcoxonAcross is Demšar's one-sided signed-rank test over per-dataset
// means; meaningless below 3 datasets, where it reports 1.
func wilcoxonAcross(meansA, meansB []float64) float64 {
	if len(meansA) < 3 {
		return 1
	}
	return stats.WilcoxonSignedRank(meansA, meansB, stats.GreaterTailed).PValue
}
