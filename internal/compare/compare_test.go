package compare

import (
	"math"
	"testing"

	"varbench/internal/stats"
	"varbench/internal/xrand"
)

func makePairs(r *xrand.Source, n int, diff, sigma float64) []stats.Pair {
	pairs := make([]stats.Pair, n)
	for i := range pairs {
		pairs[i] = stats.Pair{
			A: r.Normal(diff, sigma),
			B: r.Normal(0, sigma),
		}
	}
	return pairs
}

func TestSinglePoint(t *testing.T) {
	c := SinglePoint{Delta: 0.5}
	if !c.Detects([]stats.Pair{{A: 1.0, B: 0.2}}, nil) {
		t.Error("should detect: diff 0.8 > 0.5")
	}
	if c.Detects([]stats.Pair{{A: 0.6, B: 0.2}}, nil) {
		t.Error("should not detect: diff 0.4 < 0.5")
	}
	if c.Detects(nil, nil) {
		t.Error("empty pairs should not detect")
	}
	// Only the first pair matters.
	if c.Detects([]stats.Pair{{A: 0, B: 0}, {A: 9, B: 0}}, nil) {
		t.Error("single point must ignore later pairs")
	}
}

func TestAverageThreshold(t *testing.T) {
	c := AverageThreshold{Delta: 0.5}
	pairs := []stats.Pair{{A: 1, B: 0}, {A: 1.4, B: 0.2}}
	// mean diff = (1 + 1.2)/2 = 1.1 > 0.5.
	if !c.Detects(pairs, nil) {
		t.Error("should detect")
	}
	if c.Detects([]stats.Pair{{A: 0.4, B: 0}}, nil) {
		t.Error("should not detect small diff")
	}
}

func TestPairedTDetectsConsistentDifference(t *testing.T) {
	r := xrand.New(1)
	pairs := make([]stats.Pair, 30)
	for i := range pairs {
		base := r.NormFloat64()
		pairs[i] = stats.Pair{A: base + 0.5 + 0.1*r.NormFloat64(), B: base}
	}
	if !(PairedT{Alpha: 0.05}).Detects(pairs, nil) {
		t.Error("paired t missed a consistent paired difference")
	}
	// Identical pairs: no detection, no NaN panic.
	same := []stats.Pair{{A: 1, B: 1}, {A: 2, B: 2}, {A: 3, B: 3}}
	if (PairedT{Alpha: 0.05}).Detects(same, nil) {
		t.Error("identical pairs should not detect")
	}
}

func TestPABEvaluateZones(t *testing.T) {
	r := xrand.New(2)

	// Strong dominance: significant and meaningful.
	strong := makePairs(r, 60, 3, 1)
	res, err := PAB{}.Evaluate(strong, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != SignificantAndMeaningful {
		t.Errorf("strong dominance decision = %v (PAB=%v CI=%+v)",
			res.Decision, res.PAB, res.CI)
	}
	if res.PAB < 0.9 {
		t.Errorf("strong dominance PAB = %v", res.PAB)
	}

	// No difference: not significant.
	null := makePairs(r, 60, 0, 1)
	res, err = PAB{}.Evaluate(null, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision == SignificantAndMeaningful {
		t.Errorf("null decision = %v (PAB=%v CI=%+v)", res.Decision, res.PAB, res.CI)
	}

	// Tiny but consistent difference with many samples: significant, not
	// meaningful. diff chosen so true PAB ≈ 0.58.
	small := makePairs(r, 4000, 0.29, 1)
	res, err = PAB{}.Evaluate(small, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != SignificantNotMeaningful {
		t.Errorf("small-effect decision = %v (PAB=%v CI=%+v)", res.Decision, res.PAB, res.CI)
	}
}

func TestPABDefaults(t *testing.T) {
	c := PAB{}
	if c.gamma() != DefaultGamma || c.level() != 0.95 || c.boots() != 1000 {
		t.Error("defaults wrong")
	}
	if _, err := c.Evaluate([]stats.Pair{{A: 1, B: 0}}, xrand.New(1)); err == nil {
		t.Error("single pair should error")
	}
}

func TestPABTieHandling(t *testing.T) {
	// All ties: PAB = 0.5 exactly, never significant.
	pairs := make([]stats.Pair, 40)
	for i := range pairs {
		pairs[i] = stats.Pair{A: 1, B: 1}
	}
	res, err := PAB{}.Evaluate(pairs, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.PAB != 0.5 || res.Decision != NotSignificant {
		t.Errorf("all-tied: PAB=%v decision=%v", res.PAB, res.Decision)
	}
}

func TestOracleCalibration(t *testing.T) {
	// Under H0 the oracle must false-positive at ≈ alpha.
	r := xrand.New(4)
	oracle := Oracle{Sigma: 1, Alpha: 0.05}
	const trials = 2000
	fp := 0
	for i := 0; i < trials; i++ {
		if oracle.Detects(makePairs(r, 50, 0, 1), nil) {
			fp++
		}
	}
	rate := float64(fp) / trials
	if rate < 0.02 || rate > 0.09 {
		t.Errorf("oracle false-positive rate = %v, want ≈0.05", rate)
	}
	// Under strong H1 the oracle detects almost always.
	det := 0
	for i := 0; i < 200; i++ {
		if oracle.Detects(makePairs(r, 50, 1, 1), nil) {
			det++
		}
	}
	if det < 195 {
		t.Errorf("oracle power too low: %d/200", det)
	}
}

func TestPairs(t *testing.T) {
	p, err := Pairs([]float64{1, 2}, []float64{3, 4})
	if err != nil || p[1].A != 2 || p[1].B != 4 {
		t.Fatalf("Pairs = %v, %v", p, err)
	}
	if _, err := Pairs([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestRecommendedSampleSize(t *testing.T) {
	if n := RecommendedSampleSize(0.75, 0.05, 0.05); n != 29 {
		t.Errorf("recommended N = %d, want 29", n)
	}
}

func TestDecisionString(t *testing.T) {
	if NotSignificant.String() == "" || SignificantAndMeaningful.String() == "" {
		t.Error("empty decision strings")
	}
	if Decision(99).String() == "" {
		t.Error("unknown decision should still render")
	}
}

func TestPABMonotoneInEffect(t *testing.T) {
	// Larger true differences should (weakly) raise the measured PAB.
	r := xrand.New(5)
	prev := -1.0
	for _, diff := range []float64{0, 1, 2, 4} {
		pairs := makePairs(r, 400, diff, 1)
		res, err := PAB{Bootstrap: 200}.Evaluate(pairs, r)
		if err != nil {
			t.Fatal(err)
		}
		if res.PAB < prev-0.05 {
			t.Errorf("PAB not monotone: %v after %v", res.PAB, prev)
		}
		prev = res.PAB
	}
	if math.Abs(prev-1) > 0.02 {
		t.Errorf("PAB at 4σ separation = %v, want ≈1", prev)
	}
}

// TestPABValidation covers the degenerate-knob guard: an explicit negative
// bootstrap count or a confidence level outside (0,1) errors on every
// evaluation path instead of reaching the resampler (or silently answering
// with a NaN interval).
func TestPABValidation(t *testing.T) {
	r := xrand.New(9)
	pairs := makePairs(r, 10, 1, 1)
	a := []float64{1, 2, 3, 4}
	b := []float64{0, 1, 2, 3}
	bad := []PAB{
		{Bootstrap: -1},
		{Level: -0.5},
		{Level: 1},
		{Level: 1.5},
		{Level: math.NaN()},
	}
	for _, crit := range bad {
		if _, err := crit.Evaluate(pairs, xrand.New(1)); err == nil {
			t.Errorf("Evaluate with %+v: expected error", crit)
		}
		if _, err := crit.EvaluateSharded(pairs, 1, 4); err == nil {
			t.Errorf("EvaluateSharded with %+v: expected error", crit)
		}
		if _, err := crit.EvaluateUnpaired(a, b, xrand.New(1)); err == nil {
			t.Errorf("EvaluateUnpaired with %+v: expected error", crit)
		}
		if _, err := crit.EvaluateUnpairedSharded(a, b, 1, 4); err == nil {
			t.Errorf("EvaluateUnpairedSharded with %+v: expected error", crit)
		}
		if crit.Detects(pairs, xrand.New(1)) {
			t.Errorf("Detects with %+v: degenerate knobs must not detect", crit)
		}
	}
	// The zero values still mean "use the defaults".
	if _, err := (PAB{}).Evaluate(pairs, xrand.New(1)); err != nil {
		t.Errorf("zero-valued PAB should default, got %v", err)
	}
}

// TestEvaluateShardedUsesFusedKernel locks the sharded protocol evaluation
// to the serial reference: the fused P(A>B) kernel must neither perturb the
// resampling stream nor the decision, at any worker count.
func TestEvaluateShardedFusedMatchesSerialStream(t *testing.T) {
	r := xrand.New(11)
	pairs := makePairs(r, 29, 1, 1)
	crit := PAB{Bootstrap: 1000}
	ref, err := crit.EvaluateSharded(pairs, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4} {
		got, err := crit.EvaluateSharded(pairs, 7, w)
		if err != nil {
			t.Fatal(err)
		}
		if got != ref {
			t.Errorf("workers=%d: %+v != serial %+v", w, got, ref)
		}
	}
}
