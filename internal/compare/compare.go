// Package compare implements the criteria used to conclude that one learning
// algorithm outperforms another (Section 4) and the paper's recommended
// statistical protocol (Appendix C): the naive single-point comparison, the
// average comparison against a threshold δ, the paired t-test, and the
// recommended probability-of-outperforming test P(A>B) with a
// percentile-bootstrap confidence interval and the three-zone decision rule.
package compare

import (
	"fmt"
	"math"

	"varbench/internal/stats"
	"varbench/internal/xrand"
)

// Decision is the three-zone outcome of the recommended test (Appendix C.6).
type Decision int

const (
	// NotSignificant: CI.Lo ≤ 0.5 — the result could be noise alone.
	NotSignificant Decision = iota
	// SignificantNotMeaningful: CI.Lo > 0.5 but CI.Hi ≤ γ — a real but
	// negligibly small difference.
	SignificantNotMeaningful
	// SignificantAndMeaningful: CI.Lo > 0.5 and CI.Hi > γ — conclude that A
	// outperforms B.
	SignificantAndMeaningful
)

// String renders the decision.
func (d Decision) String() string {
	switch d {
	case NotSignificant:
		return "not significant"
	case SignificantNotMeaningful:
		return "significant but not meaningful"
	case SignificantAndMeaningful:
		return "significant and meaningful"
	default:
		return fmt.Sprintf("Decision(%d)", int(d))
	}
}

// DefaultGamma is the paper's recommended meaningfulness threshold for
// P(A>B), found to separate benchmark fluctuations from published
// improvements across all five case studies (Section 5).
const DefaultGamma = 0.75

// DefaultDeltaCoefficient is the paper's regression coefficient relating the
// average-comparison threshold δ to the benchmark standard deviation σ:
// δ = 1.9952·σ matches the average improvements on paperswithcode.com
// (Section 4.2).
const DefaultDeltaCoefficient = 1.9952

// Criterion decides, from k paired performance measures, whether algorithm A
// should be declared better than algorithm B.
type Criterion interface {
	Name() string
	Detects(pairs []stats.Pair, r *xrand.Source) bool
}

// SinglePoint compares one run of each algorithm against the threshold
// Delta: the weakest common practice (k is ignored beyond the first pair).
type SinglePoint struct {
	Delta float64
}

// Name implements Criterion.
func (SinglePoint) Name() string { return "single-point" }

// Detects implements Criterion.
func (c SinglePoint) Detects(pairs []stats.Pair, _ *xrand.Source) bool {
	if len(pairs) == 0 {
		return false
	}
	return pairs[0].A-pairs[0].B > c.Delta
}

// AverageThreshold declares A better when the average difference exceeds
// Delta — the prevalent comparison method in the deep-learning literature.
type AverageThreshold struct {
	Delta float64
}

// Name implements Criterion.
func (AverageThreshold) Name() string { return "average" }

// Detects implements Criterion.
func (c AverageThreshold) Detects(pairs []stats.Pair, _ *xrand.Source) bool {
	if len(pairs) == 0 {
		return false
	}
	var diff float64
	for _, p := range pairs {
		diff += p.A - p.B
	}
	return diff/float64(len(pairs)) > c.Delta
}

// PairedT declares A better when a paired t-test rejects equality at level
// Alpha in favour of A — "a t-test only differs from an average in that the
// threshold is computed based on the variance of the model performances and
// the sample size" (Section 4.2).
type PairedT struct {
	Alpha float64
}

// Name implements Criterion.
func (PairedT) Name() string { return "paired-t" }

// Detects implements Criterion.
func (c PairedT) Detects(pairs []stats.Pair, _ *xrand.Source) bool {
	if len(pairs) < 2 {
		return false
	}
	a := make([]float64, len(pairs))
	b := make([]float64, len(pairs))
	allEqual := true
	for i, p := range pairs {
		a[i], b[i] = p.A, p.B
		if p.A != p.B {
			allEqual = false
		}
	}
	if allEqual {
		return false
	}
	res := stats.PairedTTest(a, b, stats.GreaterTailed)
	return res.PValue < c.Alpha
}

// PAB is the paper's recommended criterion: estimate P(A>B) from the paired
// measures (Equation 9), attach a percentile-bootstrap confidence interval
// (Appendix C.5), and require the result to be both statistically
// significant (CI.Lo > 0.5) and meaningful (CI.Hi > Gamma).
type PAB struct {
	Gamma     float64 // meaningfulness threshold (default 0.75)
	Level     float64 // CI confidence level (default 0.95)
	Bootstrap int     // resamples (default 1000)
}

// Name implements Criterion.
func (PAB) Name() string { return "prob-outperform" }

func (c PAB) gamma() float64 {
	if c.Gamma == 0 {
		return DefaultGamma
	}
	return c.Gamma
}

func (c PAB) level() float64 {
	if c.Level == 0 {
		return 0.95
	}
	return c.Level
}

func (c PAB) boots() int {
	if c.Bootstrap == 0 {
		return 1000
	}
	return c.Bootstrap
}

// Result is the full outcome of the recommended test.
type Result struct {
	PAB      float64
	CI       stats.CI
	Gamma    float64
	Decision Decision
}

// pabKernel is the plug-in estimator of P(A>B) over paired measures
// (Equation 9) as a fused bootstrap kernel: the fraction of pairs A wins,
// ties counted half, accumulated straight from sampled indices — the
// recommended protocol's hot loop runs with no resample buffer and no
// per-resample allocation.
var pabKernel = stats.PABKernel{}

// validate rejects statistical knobs the bootstrap cannot honor before they
// reach the resampler: an explicit negative resample count or a confidence
// level outside (0, 1). The zero values keep meaning "use the default".
func (c PAB) validate() error {
	if c.Bootstrap < 0 {
		return fmt.Errorf("compare: bootstrap resamples must not be negative, got %d (0 means default)", c.Bootstrap)
	}
	if l := c.level(); math.IsNaN(l) || l <= 0 || l >= 1 {
		return fmt.Errorf("compare: confidence level must be in (0, 1), got %v", c.Level)
	}
	return nil
}

// decide applies the three-zone decision rule of Appendix C.6.
func (c PAB) decide(point float64, ci stats.CI) Result {
	res := Result{PAB: point, CI: ci, Gamma: c.gamma()}
	switch {
	case ci.Lo <= 0.5:
		res.Decision = NotSignificant
	case ci.Hi <= c.gamma():
		res.Decision = SignificantNotMeaningful
	default:
		res.Decision = SignificantAndMeaningful
	}
	return res
}

// Evaluate runs the complete Appendix C protocol on paired measures.
func (c PAB) Evaluate(pairs []stats.Pair, r *xrand.Source) (Result, error) {
	if len(pairs) < 2 {
		return Result{}, fmt.Errorf("compare: need ≥ 2 pairs, got %d", len(pairs))
	}
	if err := c.validate(); err != nil {
		return Result{}, err
	}
	point := pabKernel.Stat(pairs)
	ci := stats.PairedPercentileBootstrapWith(pairs, pabKernel, c.boots(), c.level(), r)
	return c.decide(point, ci), nil
}

// EvaluateSharded is Evaluate with the bootstrap resampling sharded across
// `workers` goroutines. It draws its randomness from seed instead of a
// caller-owned stream: shard boundaries and per-shard RNG streams depend
// only on (seed, Bootstrap), so the result is bit-identical at any worker
// count — including workers ≤ 1, the serial reference.
func (c PAB) EvaluateSharded(pairs []stats.Pair, seed uint64, workers int) (Result, error) {
	if len(pairs) < 2 {
		return Result{}, fmt.Errorf("compare: need ≥ 2 pairs, got %d", len(pairs))
	}
	if err := c.validate(); err != nil {
		return Result{}, err
	}
	point := pabKernel.Stat(pairs)
	ci := stats.PairedPercentileBootstrapKernel(pairs, pabKernel, c.boots(), c.level(), seed, workers)
	return c.decide(point, ci), nil
}

// Detects implements Criterion.
func (c PAB) Detects(pairs []stats.Pair, r *xrand.Source) bool {
	res, err := c.Evaluate(pairs, r)
	if err != nil {
		return false
	}
	return res.Decision == SignificantAndMeaningful
}

// EvaluateUnpaired runs the P(A>B) protocol on *unpaired* measures: P(A>B)
// is the Mann-Whitney U statistic scaled to [0,1], and the confidence
// interval bootstraps the two samples independently. Use when pairing is
// impossible (e.g. algorithms evaluated by different parties — the Section 6
// "models instead of procedures" setting); pairing, when available, gives
// strictly more power (Appendix C.2).
func (c PAB) EvaluateUnpaired(a, b []float64, r *xrand.Source) (Result, error) {
	if len(a) < 2 || len(b) < 2 {
		return Result{}, fmt.Errorf("compare: need ≥ 2 measures per algorithm")
	}
	if err := c.validate(); err != nil {
		return Result{}, err
	}
	point := stats.MannWhitney(a, b, stats.TwoTailed).PAB
	ci := stats.TwoSampleBootstrapWith(a, b, stats.TwoSampleStatFunc(mwPAB), c.boots(), c.level(), r)
	return c.decide(point, ci), nil
}

// mwPAB is the Mann-Whitney U statistic scaled to [0,1]: the unpaired
// plug-in estimate of P(A>B). Rank-based, so it takes the buffered
// (TwoSampleStatFunc) bootstrap path rather than a fused kernel.
func mwPAB(x, y []float64) float64 {
	return stats.MannWhitney(x, y, stats.TwoTailed).PAB
}

// EvaluateUnpairedSharded is EvaluateUnpaired with the two-sample bootstrap
// sharded across `workers` goroutines, seeded like EvaluateSharded.
func (c PAB) EvaluateUnpairedSharded(a, b []float64, seed uint64, workers int) (Result, error) {
	if len(a) < 2 || len(b) < 2 {
		return Result{}, fmt.Errorf("compare: need ≥ 2 measures per algorithm")
	}
	if err := c.validate(); err != nil {
		return Result{}, err
	}
	point := stats.MannWhitney(a, b, stats.TwoTailed).PAB
	ci := stats.TwoSampleBootstrapKernel(a, b, stats.TwoSampleStatFunc(mwPAB), c.boots(), c.level(), seed, workers)
	return c.decide(point, ci), nil
}

// Oracle detects with perfect knowledge of the measurement noise: a z-test
// with the true per-measure standard deviation Sigma at level Alpha. It
// upper-bounds what any criterion can achieve from k noisy measures and is
// the blue reference line of Figure 6.
type Oracle struct {
	Sigma float64
	Alpha float64
}

// Name implements Criterion.
func (Oracle) Name() string { return "oracle" }

// Detects implements Criterion.
func (c Oracle) Detects(pairs []stats.Pair, _ *xrand.Source) bool {
	if len(pairs) == 0 {
		return false
	}
	alpha := c.Alpha
	if alpha == 0 {
		alpha = 0.05
	}
	var diff float64
	for _, p := range pairs {
		diff += p.A - p.B
	}
	diff /= float64(len(pairs))
	// Var of the mean difference for independent A, B with equal σ.
	se := c.Sigma * math.Sqrt(2/float64(len(pairs)))
	return diff > stats.NormQuantile(1-alpha)*se
}

// Pairs zips two equal-length measure vectors into pairs.
func Pairs(a, b []float64) ([]stats.Pair, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("compare: unpaired lengths %d vs %d", len(a), len(b))
	}
	out := make([]stats.Pair, len(a))
	for i := range a {
		out[i] = stats.Pair{A: a[i], B: b[i]}
	}
	return out, nil
}

// RecommendedSampleSize returns Noether's minimal number of paired
// measurements for the PAB test (Appendix C.3): 29 for the recommended
// γ=0.75, α=β=0.05.
func RecommendedSampleSize(gamma, alpha, beta float64) int {
	return stats.NoetherSampleSize(gamma, alpha, beta)
}
