package compare

import (
	"encoding/binary"
	"fmt"
	"math"

	"varbench/internal/stats"
)

// AnalysisState is the incremental form of the recommended test: it holds a
// resumable weighted-bootstrap accumulator of P(A>B) (stats.AccPAB) plus the
// exact running sums behind the point estimate and the report means, and
// extends in place as new paired measures arrive. Feeding pairs in one call
// or many is bit-identical (the stats.Accum extension contract), so an
// early-stop loop threads one state through all batch boundaries instead of
// re-running the full analysis at each, and a snapshot taken at any point
// resumes exactly.
//
// The incremental protocol is paired-only: the unpaired P(A>B) point
// estimate is the Mann-Whitney U statistic, a rank statistic that is not
// decomposable into extendable per-element sums — unpaired comparisons stay
// on the one-shot EvaluateUnpaired* paths.
//
// Note the confidence interval comes from the weighted (Bayesian) bootstrap,
// which is statistically equivalent to — but not numerically identical to —
// the classic multinomial percentile bootstrap of Evaluate/EvaluateSharded;
// see internal/stats/incremental.go. The point estimate is the same plug-in
// P(A>B) of Equation 9, bit-identical to PABKernel.Stat.
type AnalysisState struct {
	crit    PAB
	workers int
	acc     *stats.Accum
	// Exact running sums: the plug-in point estimate and the report means
	// must not drift from their one-shot counterparts, so wins are kept as
	// the PR-5 integer 2×-weights (exact dyadic recovery) and the means as
	// running float sums in arrival order — the same order and operations
	// stats.Mean and PABKernel.Stat perform.
	winsX2     int64
	sumA, sumB float64
	n          int
}

// NewAnalysis starts an empty incremental analysis drawing all bootstrap
// randomness from seed; `workers` parallelizes extensions (≤ 1 means
// serial) without affecting any result bit.
func (c PAB) NewAnalysis(seed uint64, workers int) (*AnalysisState, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	acc, err := stats.NewAccum(stats.AccPAB, c.boots(), seed)
	if err != nil {
		return nil, err
	}
	return &AnalysisState{crit: c, workers: workers, acc: acc}, nil
}

// KernelID identifies the accumulator algebra and version backing this
// state, for snapshot fingerprinting.
func (st *AnalysisState) KernelID() string { return st.acc.Kind().ID() }

// N returns how many pairs the state has consumed.
func (st *AnalysisState) N() int { return st.n }

// Bootstrap returns the resample count K.
func (st *AnalysisState) Bootstrap() int { return st.acc.K() }

// Seed returns the root seed of the bootstrap weight streams.
func (st *AnalysisState) Seed() uint64 { return st.acc.Seed() }

// Extend feeds newly arrived paired measures into the analysis. Extending
// by any chunking is bit-identical to the from-scratch analysis of the full
// sequence.
func (st *AnalysisState) Extend(pairs []stats.Pair) error {
	for _, p := range pairs {
		switch {
		case p.A > p.B:
			st.winsX2 += 2
		case p.A == p.B:
			st.winsX2++
		}
		st.sumA += p.A
		st.sumB += p.B
	}
	if err := st.acc.ExtendPairs(pairs, st.workers); err != nil {
		return err
	}
	st.n += len(pairs)
	return nil
}

// Point returns the plug-in estimate of P(A>B) over the consumed pairs —
// bit-identical to PABKernel.Stat on the same sequence (NaN before any pair
// exists).
func (st *AnalysisState) Point() float64 {
	if st.n == 0 {
		return math.NaN()
	}
	return float64(st.winsX2) / 2 / float64(st.n)
}

// Means returns the running mean scores of the two pipelines —
// bit-identical to stats.Mean over each side's sequence (NaN before any
// pair exists).
func (st *AnalysisState) Means() (meanA, meanB float64) {
	if st.n == 0 {
		return math.NaN(), math.NaN()
	}
	return st.sumA / float64(st.n), st.sumB / float64(st.n)
}

// Evaluate runs the three-zone decision on the pairs consumed so far.
// Like Evaluate on the one-shot path, it needs at least two pairs.
func (st *AnalysisState) Evaluate() (Result, error) {
	if st.n < 2 {
		return Result{}, fmt.Errorf("compare: need ≥ 2 pairs, got %d", st.n)
	}
	ci := st.acc.CI(st.crit.level())
	return st.crit.decide(st.Point(), ci), nil
}

// ---------------------------------------------------------------------------
// Snapshots. An AnalysisState serializes as a fixed header over the exact
// running sums followed by the embedded accumulator blob (whose layout is
// documented in internal/stats/incremental.go):
//
//	offset size field
//	0      6    magic "VBANS1"
//	6      8    n       (uint64 LE)
//	14     8    winsX2  (int64 LE)
//	22     8    sumA    (float64 bits LE)
//	30     8    sumB    (float64 bits LE)
//	38     …    stats.Accum snapshot
//
// The trailing magic digit is the format version.

const analysisMagic = "VBANS1"

const analysisHeaderSize = len(analysisMagic) + 4*8

// Snapshot serializes the analysis so RestoreAnalysis can resume it
// bit-identically in a later process.
func (st *AnalysisState) Snapshot() ([]byte, error) {
	accBlob, err := st.acc.MarshalBinary()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, analysisHeaderSize+len(accBlob))
	copy(buf, analysisMagic)
	off := len(analysisMagic)
	for _, v := range []uint64{
		uint64(st.n),
		uint64(st.winsX2),
		math.Float64bits(st.sumA),
		math.Float64bits(st.sumB),
	} {
		binary.LittleEndian.PutUint64(buf[off:], v)
		off += 8
	}
	copy(buf[off:], accBlob)
	return buf, nil
}

// RestoreAnalysis resumes an analysis from a Snapshot blob. The criterion's
// resample count must match the snapshot's K and the snapshot's internal
// counts must be coherent — a stale or corrupt snapshot is rejected whole,
// never partially applied, so callers fall back to recomputing from
// scratch.
func (c PAB) RestoreAnalysis(data []byte, workers int) (*AnalysisState, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	if len(data) < analysisHeaderSize || string(data[:len(analysisMagic)]) != analysisMagic {
		return nil, fmt.Errorf("compare: not an analysis snapshot (bad magic or truncated header)")
	}
	off := len(analysisMagic)
	word := func() uint64 {
		v := binary.LittleEndian.Uint64(data[off:])
		off += 8
		return v
	}
	n64 := word()
	winsX2 := int64(word())
	sumA := math.Float64frombits(word())
	sumB := math.Float64frombits(word())
	acc, err := stats.RestoreAccum(data[off:])
	if err != nil {
		return nil, err
	}
	if acc.Kind() != stats.AccPAB {
		return nil, fmt.Errorf("compare: snapshot holds a %s accumulator, want %s",
			acc.Kind().ID(), stats.AccPAB.ID())
	}
	if acc.K() != c.boots() {
		return nil, fmt.Errorf("compare: snapshot has K=%d resamples, criterion wants %d",
			acc.K(), c.boots())
	}
	const maxN = 1 << 62
	if n64 > maxN || int(n64) != acc.N() {
		return nil, fmt.Errorf("compare: snapshot pair count %d disagrees with accumulator (%d)",
			n64, acc.N())
	}
	if winsX2 < 0 || winsX2 > 2*int64(n64) {
		return nil, fmt.Errorf("compare: snapshot win weight %d out of range for %d pairs", winsX2, n64)
	}
	return &AnalysisState{
		crit:    c,
		workers: workers,
		acc:     acc,
		winsX2:  winsX2,
		sumA:    sumA,
		sumB:    sumB,
		n:       int(n64),
	}, nil
}
