package stats

import (
	"math"
	"sort"
)

// Exact small-sample machinery. The normal approximation behind MannWhitney
// is accurate for n, m ≳ 10; benchmark comparisons at the paper's
// recommended N=29 pairs sit near that regime, and smaller pilot studies sit
// below it. MannWhitneyExact computes the exact null distribution of U by
// dynamic programming, and ClopperPearson gives an exact binomial interval
// for proportions such as P(A>B) without ties.

// exactRow returns c[u] = the number of arrangements of n ranks among n+m
// whose U statistic equals u, via the recurrence
// f(i, j, u) = f(i-1, j, u-j) + f(i, j-1, u) with f(0, j, 0) = f(i, 0, 0) = 1.
// Counts are float64 (exact below 2^53, far beyond the n, m ≤ 40 this is
// used for). O(n·m·U) time.
func exactRow(n, m, maxU int) []float64 {
	table := make([][]float64, m+1)
	for j := range table {
		table[j] = make([]float64, maxU+1)
	}
	// f(0, j, 0) = 1 for all j.
	for j := 0; j <= m; j++ {
		table[j][0] = 1
	}
	for i := 1; i <= n; i++ {
		next := make([][]float64, m+1)
		for j := range next {
			next[j] = make([]float64, maxU+1)
		}
		next[0][0] = 1
		for j := 1; j <= m; j++ {
			for u := 0; u <= i*j; u++ {
				v := next[j-1][u]
				if u >= j {
					v += table[j][u-j]
				}
				next[j][u] = v
			}
		}
		table = next
	}
	return table[m]
}

// MannWhitneyExact computes the exact p-value of the Mann-Whitney U test
// for samples without ties. For tied data or samples larger than 40 it
// falls back to the normal approximation of MannWhitney.
func MannWhitneyExact(a, b []float64, tail Tail) MannWhitneyResult {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return MannWhitneyResult{U: math.NaN(), PAB: math.NaN(), Z: math.NaN(), PValue: math.NaN()}
	}
	if n > 40 || m > 40 || hasTies(a, b) {
		return MannWhitney(a, b, tail)
	}
	res := MannWhitney(a, b, tail) // U, PAB, Z from the shared path
	counts := exactRow(n, m, n*m)
	total := 0.0
	for _, c := range counts {
		total += c
	}
	u := int(math.Round(res.U))
	cdf := 0.0 // P(U ≤ u)
	for i := 0; i <= u && i < len(counts); i++ {
		cdf += counts[i]
	}
	cdf /= total
	// Survival including the observed value: P(U ≥ u).
	sfInc := 0.0
	for i := u; i < len(counts); i++ {
		sfInc += counts[i]
	}
	sfInc /= total
	var p float64
	switch tail {
	case GreaterTailed:
		p = sfInc
	case LessTailed:
		p = cdf
	default:
		p = 2 * math.Min(cdf, sfInc)
		if p > 1 {
			p = 1
		}
	}
	res.PValue = p
	return res
}

func hasTies(a, b []float64) bool {
	all := make([]float64, 0, len(a)+len(b))
	all = append(all, a...)
	all = append(all, b...)
	sort.Float64s(all)
	for i := 1; i < len(all); i++ {
		if all[i] == all[i-1] {
			return true
		}
	}
	return false
}

// ClopperPearson returns the exact binomial confidence interval for a
// proportion with k successes in n trials, via the beta-quantile
// formulation. Useful as an exact alternative to the percentile bootstrap
// for tie-free P(A>B) estimates.
func ClopperPearson(k, n int, level float64) CI {
	alpha := 1 - level
	var lo, hi float64
	if k == 0 {
		lo = 0
	} else {
		lo = betaQuantile(alpha/2, float64(k), float64(n-k+1))
	}
	if k == n {
		hi = 1
	} else {
		hi = betaQuantile(1-alpha/2, float64(k+1), float64(n-k))
	}
	return CI{Lo: lo, Hi: hi, Level: level}
}

// betaQuantile inverts the regularized incomplete beta by bisection.
func betaQuantile(p, a, b float64) float64 {
	lo, hi := 0.0, 1.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if RegIncBeta(a, b, mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// CohensD returns the standardized mean difference of two samples with a
// pooled standard deviation — the classical parametric effect size.
func CohensD(a, b []float64) float64 {
	na, nb := float64(len(a)), float64(len(b))
	if na < 2 || nb < 2 {
		return math.NaN()
	}
	va, vb := Variance(a), Variance(b)
	pooled := math.Sqrt(((na-1)*va + (nb-1)*vb) / (na + nb - 2))
	if pooled == 0 {
		return math.NaN()
	}
	return (Mean(a) - Mean(b)) / pooled
}

// CliffsDelta returns Cliff's δ = P(A>B) − P(B>A) ∈ [−1, 1], the ordinal
// effect size directly related to the paper's criterion:
// δ = 2·P(A>B) − 1 when ties are counted half.
func CliffsDelta(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return math.NaN()
	}
	gt, lt := 0, 0
	for _, x := range a {
		for _, y := range b {
			switch {
			case x > y:
				gt++
			case x < y:
				lt++
			}
		}
	}
	return float64(gt-lt) / float64(len(a)*len(b))
}

// KolmogorovSmirnov performs the two-sample KS test: D is the maximal
// distance between empirical CDFs and the p-value uses the asymptotic
// Kolmogorov distribution. An alternative distribution-shape check to
// Shapiro-Wilk for comparing two sets of benchmark measures.
func KolmogorovSmirnov(a, b []float64) (d, pvalue float64) {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return math.NaN(), math.NaN()
	}
	sa := append([]float64(nil), a...)
	sb := append([]float64(nil), b...)
	sort.Float64s(sa)
	sort.Float64s(sb)
	i, j := 0, 0
	for i < n && j < m {
		var x float64
		if sa[i] <= sb[j] {
			x = sa[i]
		} else {
			x = sb[j]
		}
		for i < n && sa[i] <= x {
			i++
		}
		for j < m && sb[j] <= x {
			j++
		}
		diff := math.Abs(float64(i)/float64(n) - float64(j)/float64(m))
		if diff > d {
			d = diff
		}
	}
	ne := float64(n) * float64(m) / float64(n+m)
	lambda := (math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d
	return d, ksSurvival(lambda)
}

// ksSurvival evaluates the Kolmogorov distribution's survival function
// Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} exp(−2k²λ²).
func ksSurvival(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	sum := 0.0
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*float64(k*k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
