package stats

import (
	"fmt"
	"testing"

	"varbench/internal/xrand"
)

// BenchmarkIncrementalExtend is the acceptance benchmark of the incremental
// engine: extending an accumulator by one batch of n_new pairs must cost
// O(K × n_new) regardless of how many pairs the accumulator already holds —
// the nold sweep shows flat per-batch cost, while the from-scratch contrast
// shows what every batch boundary used to pay. Wired into the CI bench
// regression gate (regex `IncrementalExtend`).
func BenchmarkIncrementalExtend(b *testing.B) {
	const k = 1000
	const nNew = 8
	pairs := randomPairs(xrand.New(31), 1024+nNew)

	for _, nOld := range []int{0, 64, 512} {
		base, err := NewAccum(AccPAB, k, 77)
		if err != nil {
			b.Fatal(err)
		}
		if err := base.ExtendPairs(pairs[:nOld], 1); err != nil {
			b.Fatal(err)
		}
		snap, err := base.MarshalBinary()
		if err != nil {
			b.Fatal(err)
		}
		work, err := NewAccum(AccPAB, k, 77)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("pab-k%d-nold%d-new%d", k, nOld, nNew), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// restoreInto resets to the n_old state in place (a column
				// copy, no allocation) so every iteration times exactly one
				// batch extension at a fixed n_old.
				if err := work.restoreInto(snap); err != nil {
					b.Fatal(err)
				}
				if err := work.ExtendPairs(pairs[nOld:nOld+nNew], 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// The O(K × n) from-scratch contrast: what re-running the analysis at a
	// batch boundary with 512 accumulated pairs costs without incrementality.
	b.Run(fmt.Sprintf("pab-k%d-fromscratch-n%d", k, 512+nNew), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ac, err := NewAccum(AccPAB, k, 77)
			if err != nil {
				b.Fatal(err)
			}
			if err := ac.ExtendPairs(pairs[:512+nNew], 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkIncrementalCI times reading the percentile interval off a
// populated accumulator — the per-batch-boundary evaluation cost, which is
// O(K) and allocation-free on the pooled scratch.
func BenchmarkIncrementalCI(b *testing.B) {
	ac, err := NewAccum(AccPAB, 1000, 77)
	if err != nil {
		b.Fatal(err)
	}
	if err := ac.ExtendPairs(randomPairs(xrand.New(31), 64), 1); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if ci := ac.CI(0.95); ci.Lo > ci.Hi {
			b.Fatal("inverted CI")
		}
	}
}
