package stats

import (
	"math"
	"testing"
	"testing/quick"

	"varbench/internal/xrand"
)

func TestExactRowKnownDistribution(t *testing.T) {
	// For n=2, m=2: U ∈ {0..4} with counts 1,1,2,1,1 (total C(4,2)=6).
	counts := exactRow(2, 2, 4)
	want := []float64{1, 1, 2, 1, 1}
	for u, c := range want {
		if counts[u] != c {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
}

func TestExactRowTotalIsChoose(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n, m := 1+r.Intn(8), 1+r.Intn(8)
		counts := exactRow(n, m, n*m)
		total := 0.0
		for _, c := range counts {
			total += c
		}
		return math.Abs(total-math.Exp(LogChoose(n+m, n))) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestExactRowSymmetric(t *testing.T) {
	// The null U distribution is symmetric: c[u] = c[nm-u].
	counts := exactRow(5, 7, 35)
	for u := range counts {
		if counts[u] != counts[35-u] {
			t.Fatalf("U distribution asymmetric at %d", u)
		}
	}
}

func TestMannWhitneyExactGolden(t *testing.T) {
	// x = {1,2}, y = {3,4}: U_x = 0. One-sided P(U ≤ 0) = 1/6.
	x := []float64{1, 2}
	y := []float64{3, 4}
	res := MannWhitneyExact(x, y, LessTailed)
	approxEq(t, "exact p", res.PValue, 1.0/6, 1e-12)
	// Two-sided doubles it.
	res = MannWhitneyExact(x, y, TwoTailed)
	approxEq(t, "exact 2-sided p", res.PValue, 2.0/6, 1e-12)
	// Reversed direction.
	res = MannWhitneyExact(y, x, GreaterTailed)
	approxEq(t, "exact reversed", res.PValue, 1.0/6, 1e-12)
}

func TestMannWhitneyExactMatchesApproxForModerateN(t *testing.T) {
	r := xrand.New(1)
	x := make([]float64, 15)
	y := make([]float64, 12)
	for i := range x {
		x[i] = r.Normal(0.5, 1)
	}
	for i := range y {
		y[i] = r.NormFloat64()
	}
	exact := MannWhitneyExact(x, y, TwoTailed)
	approx := MannWhitney(x, y, TwoTailed)
	if math.Abs(exact.PValue-approx.PValue) > 0.05 {
		t.Errorf("exact %v vs approx %v diverge too much", exact.PValue, approx.PValue)
	}
	if exact.U != approx.U || exact.PAB != approx.PAB {
		t.Error("U/PAB should be identical between exact and approximate")
	}
}

func TestMannWhitneyExactFallsBackOnTies(t *testing.T) {
	x := []float64{1, 2, 2}
	y := []float64{2, 3}
	exact := MannWhitneyExact(x, y, TwoTailed)
	approx := MannWhitney(x, y, TwoTailed)
	if exact.PValue != approx.PValue {
		t.Error("tied data should fall back to the approximation")
	}
	// Large samples fall back too.
	big := make([]float64, 41)
	for i := range big {
		big[i] = float64(i) + 0.5
	}
	exact = MannWhitneyExact(big, []float64{0.1}, TwoTailed)
	approx = MannWhitney(big, []float64{0.1}, TwoTailed)
	if exact.PValue != approx.PValue {
		t.Error("large samples should fall back to the approximation")
	}
}

func TestClopperPearsonGolden(t *testing.T) {
	// Known values: k=8, n=10, 95% → [0.4439, 0.9748] (standard tables).
	ci := ClopperPearson(8, 10, 0.95)
	approxEq(t, "CP lo", ci.Lo, 0.4439, 0.001)
	approxEq(t, "CP hi", ci.Hi, 0.9748, 0.001)
	// Edge cases.
	ci = ClopperPearson(0, 10, 0.95)
	if ci.Lo != 0 {
		t.Errorf("k=0 lower bound = %v", ci.Lo)
	}
	approxEq(t, "CP k=0 hi", ci.Hi, 0.3085, 0.001)
	ci = ClopperPearson(10, 10, 0.95)
	if ci.Hi != 1 {
		t.Errorf("k=n upper bound = %v", ci.Hi)
	}
}

func TestClopperPearsonCoverage(t *testing.T) {
	// Exact intervals must cover at ≥ nominal level.
	r := xrand.New(2)
	const trials, n = 400, 25
	p := 0.75
	hits := 0
	for i := 0; i < trials; i++ {
		k := r.Binomial(n, p)
		if ClopperPearson(k, n, 0.95).Contains(p) {
			hits++
		}
	}
	if rate := float64(hits) / trials; rate < 0.93 {
		t.Errorf("Clopper-Pearson coverage %v below nominal", rate)
	}
}

func TestCohensD(t *testing.T) {
	a := []float64{2, 4, 6, 8}
	b := []float64{1, 3, 5, 7}
	d := CohensD(a, b)
	// Means differ by 1, pooled sd = sqrt(20/3) ≈ 2.582 → d ≈ 0.387.
	approxEq(t, "Cohen's d", d, 1/math.Sqrt(20.0/3), 1e-12)
	if !math.IsNaN(CohensD([]float64{1}, b)) {
		t.Error("tiny sample should give NaN")
	}
	if !math.IsNaN(CohensD([]float64{1, 1}, []float64{1, 1})) {
		t.Error("zero pooled variance should give NaN")
	}
}

func TestCliffsDeltaRelatesToPAB(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n, m := 1+r.Intn(15), 1+r.Intn(15)
		a := make([]float64, n)
		b := make([]float64, m)
		for i := range a {
			a[i] = float64(r.Intn(6))
		}
		for i := range b {
			b[i] = float64(r.Intn(6))
		}
		delta := CliffsDelta(a, b)
		pab := MannWhitney(a, b, TwoTailed).PAB
		// δ = 2·PAB − 1 with half-tie counting.
		return math.Abs(delta-(2*pab-1)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCliffsDeltaExtremes(t *testing.T) {
	if CliffsDelta([]float64{5, 6}, []float64{1, 2}) != 1 {
		t.Error("complete dominance should give +1")
	}
	if CliffsDelta([]float64{1, 2}, []float64{5, 6}) != -1 {
		t.Error("complete anti-dominance should give -1")
	}
}

func TestKolmogorovSmirnov(t *testing.T) {
	r := xrand.New(3)
	a := make([]float64, 150)
	b := make([]float64, 150)
	for i := range a {
		a[i] = r.NormFloat64()
		b[i] = r.NormFloat64()
	}
	d, p := KolmogorovSmirnov(a, b)
	if d < 0 || d > 1 {
		t.Fatalf("D = %v", d)
	}
	if p < 0.05 {
		t.Errorf("same-distribution KS rejected: p=%v", p)
	}
	// Shifted distribution must be detected.
	for i := range b {
		b[i] = r.Normal(1.2, 1)
	}
	_, p = KolmogorovSmirnov(a, b)
	if p > 1e-6 {
		t.Errorf("1.2σ shift not detected: p=%v", p)
	}
	if d, p := KolmogorovSmirnov(nil, b); !math.IsNaN(d) || !math.IsNaN(p) {
		t.Error("empty input should give NaN")
	}
}

func TestKSCalibration(t *testing.T) {
	r := xrand.New(4)
	const trials = 300
	rejects := 0
	for i := 0; i < trials; i++ {
		a := make([]float64, 60)
		b := make([]float64, 60)
		for j := range a {
			a[j] = r.NormFloat64()
			b[j] = r.NormFloat64()
		}
		if _, p := KolmogorovSmirnov(a, b); p < 0.05 {
			rejects++
		}
	}
	rate := float64(rejects) / trials
	if rate > 0.1 {
		t.Errorf("KS null rejection rate %v, want ≈0.05 (conservative ok)", rate)
	}
}

func TestBCaBootstrapCoversMean(t *testing.T) {
	r := xrand.New(5)
	const reps = 150
	hits := 0
	for i := 0; i < reps; i++ {
		x := make([]float64, 30)
		for j := range x {
			// Skewed data: exp-distributed, mean 1 — where BCa shines.
			x[j] = -math.Log(1 - r.Float64())
		}
		ci := BCaBootstrap(x, Mean, 400, 0.95, r)
		if ci.Contains(1) {
			hits++
		}
	}
	rate := float64(hits) / reps
	if rate < 0.87 {
		t.Errorf("BCa coverage %v, want ≈0.95", rate)
	}
}

func TestBCaBootstrapDegenerate(t *testing.T) {
	ci := BCaBootstrap([]float64{1}, Mean, 100, 0.95, xrand.New(1))
	if !math.IsNaN(ci.Lo) {
		t.Error("n=1 should give NaN interval")
	}
	// Constant data: interval collapses to the constant.
	ci = BCaBootstrap([]float64{2, 2, 2, 2}, Mean, 100, 0.95, xrand.New(1))
	if ci.Lo != 2 || ci.Hi != 2 {
		t.Errorf("constant data CI = %+v", ci)
	}
}
