package stats

import (
	"bytes"
	"math"
	"testing"

	"varbench/internal/xrand"
)

// extendAll feeds scores/pairs to ac in the chunking the split list
// describes; splits are cumulative element counts and must end at n.
func extendAll(t *testing.T, ac *Accum, x []float64, pairs []Pair, splits []int, workers int) {
	t.Helper()
	lo := 0
	for _, hi := range splits {
		var err error
		switch ac.Kind() {
		case AccMeanDiff, AccPAB:
			err = ac.ExtendPairs(pairs[lo:hi], workers)
		default:
			err = ac.ExtendFloats(x[lo:hi], workers)
		}
		if err != nil {
			t.Fatalf("extend [%d:%d): %v", lo, hi, err)
		}
		lo = hi
	}
}

// accumBits is the bit-level identity witness: the snapshot serializes every
// accumulator column's float bits, so byte-equal snapshots mean bit-equal
// state.
func accumBits(t *testing.T, ac *Accum) []byte {
	t.Helper()
	b, err := ac.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	return b
}

// TestAccumExtendBitIdentical is the tentpole property test: for every
// accumulator kind, extending by n_new elements is bit-identical to the
// from-scratch run on n_old+n_new — across the worker grid and across
// several split points, including element-at-a-time feeding.
func TestAccumExtendBitIdentical(t *testing.T) {
	r := xrand.New(99)
	kinds := []AccumKind{AccMean, AccVariance, AccMeanDiff, AccPAB}
	for trial := 0; trial < 8; trial++ {
		n := 4 + r.Intn(30)
		k := 40 + r.Intn(200)
		seed := r.Uint64()
		x := randomSample(r, n)
		pairs := randomPairs(r, n)
		splitPlans := [][]int{
			{n},                      // one shot (the reference itself)
			{1, n},                   // tiny first batch
			{n / 2, n},               // even split
			{n - 1, n},               // extension by a single element
			make([]int, 0, n),        // element at a time
			{n / 3, 2 * n / 3, n},    // three batches
			{n / 4, n / 2, n - 1, n}, // uneven batches
		}
		one := splitPlans[4]
		for i := 1; i <= n; i++ {
			one = append(one, i)
		}
		splitPlans[4] = one

		for _, kind := range kinds {
			ref, err := NewAccum(kind, k, seed)
			if err != nil {
				t.Fatal(err)
			}
			extendAll(t, ref, x, pairs, []int{n}, 1)
			refBits := accumBits(t, ref)
			refCI := ref.CI(0.95)
			for _, splits := range splitPlans {
				for _, w := range kernelWorkerGrid() {
					got, err := NewAccum(kind, k, seed)
					if err != nil {
						t.Fatal(err)
					}
					extendAll(t, got, x, pairs, splits, w)
					if !bytes.Equal(accumBits(t, got), refBits) {
						t.Fatalf("%s k=%d n=%d splits=%v workers=%d: state differs from from-scratch",
							kind.ID(), k, n, splits, w)
					}
					if !ciEqual(got.CI(0.95), refCI) {
						t.Fatalf("%s: CI differs: %+v vs %+v", kind.ID(), got.CI(0.95), refCI)
					}
				}
			}
		}
	}
}

// TestAccumTwoSampleBitIdentical covers the two-sample accumulator, whose
// sides may grow at different rates: any interleaving of a- and b-side
// extensions must be bit-identical to the single from-scratch call.
func TestAccumTwoSampleBitIdentical(t *testing.T) {
	r := xrand.New(7)
	for trial := 0; trial < 8; trial++ {
		na, nb := 3+r.Intn(20), 3+r.Intn(20)
		k := 40 + r.Intn(200)
		seed := r.Uint64()
		a := randomSample(r, na)
		b := randomSample(r, nb)

		ref, err := NewAccum(AccTwoSampleMeanDiff, k, seed)
		if err != nil {
			t.Fatal(err)
		}
		if err := ref.ExtendTwoSample(a, b, 1); err != nil {
			t.Fatal(err)
		}
		refBits := accumBits(t, ref)

		plans := []struct {
			name   string
			sa, sb []int // cumulative counts per step (may differ in length)
		}{
			{"even", []int{na / 2, na}, []int{nb / 2, nb}},
			{"a-first", []int{na, na}, []int{0, nb}},
			{"b-first", []int{0, na}, []int{nb, nb}},
			{"ragged", []int{1, na - 1, na}, []int{nb / 3, nb / 3, nb}},
		}
		for _, plan := range plans {
			for _, w := range kernelWorkerGrid() {
				got, err := NewAccum(AccTwoSampleMeanDiff, k, seed)
				if err != nil {
					t.Fatal(err)
				}
				la, lb := 0, 0
				for i := range plan.sa {
					ha, hb := plan.sa[i], plan.sb[i]
					if err := got.ExtendTwoSample(a[la:ha], b[lb:hb], w); err != nil {
						t.Fatal(err)
					}
					la, lb = ha, hb
				}
				if !bytes.Equal(accumBits(t, got), refBits) {
					t.Fatalf("two-sample %s workers=%d: state differs from from-scratch", plan.name, w)
				}
			}
		}
	}
}

// TestAccumSnapshotRoundTrip pins the resumability contract end to end:
// serialize mid-stream, restore in a fresh process-equivalent, extend with
// the remaining scores — bit-identical to never having snapshotted.
func TestAccumSnapshotRoundTrip(t *testing.T) {
	r := xrand.New(41)
	kinds := []AccumKind{AccMean, AccVariance, AccMeanDiff, AccPAB, AccTwoSampleMeanDiff}
	for trial := 0; trial < 6; trial++ {
		n := 6 + r.Intn(24)
		k := 40 + r.Intn(160)
		seed := r.Uint64()
		x := randomSample(r, n)
		pairs := randomPairs(r, n)
		cut := 1 + r.Intn(n-1)
		for _, kind := range kinds {
			ref, err := NewAccum(kind, k, seed)
			if err != nil {
				t.Fatal(err)
			}
			half, err := NewAccum(kind, k, seed)
			if err != nil {
				t.Fatal(err)
			}
			switch kind {
			case AccMeanDiff, AccPAB:
				extendAll(t, ref, nil, pairs, []int{n}, 1)
				extendAll(t, half, nil, pairs, []int{cut}, 1)
			case AccTwoSampleMeanDiff:
				if err := ref.ExtendTwoSample(x, x, 1); err != nil {
					t.Fatal(err)
				}
				if err := half.ExtendTwoSample(x[:cut], x[:cut], 1); err != nil {
					t.Fatal(err)
				}
			default:
				extendAll(t, ref, x, nil, []int{n}, 1)
				extendAll(t, half, x, nil, []int{cut}, 1)
			}

			restored, err := RestoreAccum(accumBits(t, half))
			if err != nil {
				t.Fatalf("RestoreAccum: %v", err)
			}
			if restored.Kind() != kind || restored.K() != k || restored.Seed() != seed || restored.N() != cut {
				t.Fatalf("restored identity mismatch: kind=%v k=%d seed=%d n=%d",
					restored.Kind(), restored.K(), restored.Seed(), restored.N())
			}
			switch kind {
			case AccMeanDiff, AccPAB:
				if err := restored.ExtendPairs(pairs[cut:], 1); err != nil {
					t.Fatal(err)
				}
			case AccTwoSampleMeanDiff:
				if err := restored.ExtendTwoSample(x[cut:], x[cut:], 1); err != nil {
					t.Fatal(err)
				}
			default:
				if err := restored.ExtendFloats(x[cut:], 1); err != nil {
					t.Fatal(err)
				}
			}
			if !bytes.Equal(accumBits(t, restored), accumBits(t, ref)) {
				t.Fatalf("%s: restore→extend differs from uninterrupted run", kind.ID())
			}
		}
	}
}

// TestAccumCISanity checks the weighted-bootstrap CIs are statistically
// sensible: the PAB interval of clearly separated pairs sits above 0.5, a
// mean interval brackets the sample mean, and variance resamples are
// positive for spread-out data.
func TestAccumCISanity(t *testing.T) {
	r := xrand.New(5)
	n := 40
	pairs := make([]Pair, n)
	for i := range pairs {
		pairs[i] = Pair{A: 1 + 0.1*r.NormFloat64(), B: 0.1 * r.NormFloat64()}
	}
	pab, _ := NewAccum(AccPAB, 1000, 11)
	if err := pab.ExtendPairs(pairs, 1); err != nil {
		t.Fatal(err)
	}
	ci := pab.CI(0.95)
	if !(ci.Lo > 0.5) || !(ci.Hi <= 1) || ci.Lo > ci.Hi {
		t.Fatalf("PAB CI of clearly separated pairs: %+v", ci)
	}

	x := randomSample(r, 50)
	m, _ := NewAccum(AccMean, 1000, 12)
	if err := m.ExtendFloats(x, 1); err != nil {
		t.Fatal(err)
	}
	mi := m.CI(0.95)
	if !(mi.Lo < Mean(x)) || !(mi.Hi > Mean(x)) {
		t.Fatalf("mean CI %+v does not bracket sample mean %v", mi, Mean(x))
	}

	v, _ := NewAccum(AccVariance, 1000, 13)
	if err := v.ExtendFloats(x, 1); err != nil {
		t.Fatal(err)
	}
	vi := v.CI(0.95)
	if !(vi.Lo > 0) || vi.Lo > vi.Hi {
		t.Fatalf("variance CI of spread-out data: %+v", vi)
	}

	ts, _ := NewAccum(AccTwoSampleMeanDiff, 1000, 14)
	a := make([]float64, 30)
	for i := range a {
		a[i] = 2 + 0.2*r.NormFloat64()
	}
	if err := ts.ExtendTwoSample(a, randomSample(r, 30), 1); err != nil {
		t.Fatal(err)
	}
	ti := ts.CI(0.95)
	if !(ti.Lo > 1) || !(ti.Hi < 3) {
		t.Fatalf("two-sample mean-diff CI %+v far from true shift 2", ti)
	}
}

// TestAccumCIDegenerate: empty accumulators and bad levels yield the
// documented NaN CI instead of panicking or inventing numbers.
func TestAccumCIDegenerate(t *testing.T) {
	ac, _ := NewAccum(AccMean, 100, 1)
	if ci := ac.CI(0.95); !math.IsNaN(ci.Lo) || !math.IsNaN(ci.Hi) {
		t.Fatalf("empty accumulator CI = %+v, want NaN", ci)
	}
	if err := ac.ExtendFloats([]float64{1, 2, 3}, 1); err != nil {
		t.Fatal(err)
	}
	for _, level := range []float64{0, 1, -0.1, 1.1, math.NaN()} {
		if ci := ac.CI(level); !math.IsNaN(ci.Lo) || !math.IsNaN(ci.Hi) {
			t.Fatalf("CI(%v) = %+v, want NaN", level, ci)
		}
	}
	// A two-sample accumulator with an empty b side has no statistic yet.
	ts, _ := NewAccum(AccTwoSampleMeanDiff, 100, 1)
	if err := ts.ExtendTwoSample([]float64{1, 2}, nil, 1); err != nil {
		t.Fatal(err)
	}
	if ci := ts.CI(0.95); !math.IsNaN(ci.Lo) {
		t.Fatalf("one-sided two-sample CI = %+v, want NaN", ci)
	}
}

// TestAccumShapeErrors: feeding an accumulator the wrong input shape is an
// error, not a silent misinterpretation.
func TestAccumShapeErrors(t *testing.T) {
	if _, err := NewAccum(AccumKind(99), 10, 1); err == nil {
		t.Fatal("NewAccum accepted an unknown kind")
	}
	if _, err := NewAccum(AccMean, 0, 1); err == nil {
		t.Fatal("NewAccum accepted k=0")
	}
	mean, _ := NewAccum(AccMean, 10, 1)
	if err := mean.ExtendPairs([]Pair{{A: 1, B: 2}}, 1); err == nil {
		t.Fatal("mean accumulator accepted pairs")
	}
	if err := mean.ExtendTwoSample([]float64{1}, []float64{2}, 1); err == nil {
		t.Fatal("mean accumulator accepted two samples")
	}
	pab, _ := NewAccum(AccPAB, 10, 1)
	if err := pab.ExtendFloats([]float64{1}, 1); err == nil {
		t.Fatal("PAB accumulator accepted one-sample scores")
	}
	if mean.N() != 0 || pab.N() != 0 {
		t.Fatal("rejected extends must not advance N")
	}
}

// TestRestoreAccumRejectsGarbage: truncated, oversized or corrupted
// snapshots are rejected whole — never partially applied.
func TestRestoreAccumRejectsGarbage(t *testing.T) {
	ac, _ := NewAccum(AccPAB, 64, 9)
	if err := ac.ExtendPairs(randomPairs(xrand.New(3), 10), 1); err != nil {
		t.Fatal(err)
	}
	good, err := ac.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]byte{
		nil,
		[]byte("short"),
		good[:len(good)-1],           // truncated column data
		append(bytes.Clone(good), 0), // trailing garbage
	}
	wrongMagic := bytes.Clone(good)
	wrongMagic[0] = 'X'
	wrongKind := bytes.Clone(good)
	wrongKind[6] = 99
	bad = append(bad, wrongMagic, wrongKind)
	for i, b := range bad {
		if _, err := RestoreAccum(b); err == nil {
			t.Fatalf("RestoreAccum accepted corrupt blob %d", i)
		}
	}
	if re, err := RestoreAccum(good); err != nil || re.N() != 10 {
		t.Fatalf("RestoreAccum rejected its own output: %v", err)
	}
}

// TestAccumExtendAllocsFlat pins the steady-state allocation profile of the
// serial extend path: a handful of closure headers at most, independent of
// how many elements the accumulator already holds — the in-place columns
// never reallocate.
func TestAccumExtendAllocsFlat(t *testing.T) {
	pairs := randomPairs(xrand.New(8), 400)
	ac, _ := NewAccum(AccPAB, 256, 2)
	if err := ac.ExtendPairs(pairs[:8], 1); err != nil { // warm the pools
		t.Fatal(err)
	}
	lo := 8
	measure := func() float64 {
		return testing.AllocsPerRun(20, func() {
			if err := ac.ExtendPairs(pairs[lo:lo+8], 1); err != nil {
				t.Fatal(err)
			}
			lo += 8
		})
	}
	early := measure()
	late := measure()
	if early > 4 || late > 4 {
		t.Fatalf("ExtendPairs allocates per batch: early=%v late=%v allocs/op, want ≤ 4", early, late)
	}
	if late > early {
		t.Fatalf("ExtendPairs allocations grow with n: early=%v late=%v", early, late)
	}
}
