package stats

import (
	"math"

	"varbench/internal/xrand"
)

// CI is a two-sided confidence interval.
type CI struct {
	Lo, Hi float64
	Level  float64 // confidence level, e.g. 0.95
}

// Contains reports whether v lies inside the interval.
func (c CI) Contains(v float64) bool { return v >= c.Lo && v <= c.Hi }

// PercentileBootstrap computes a percentile-bootstrap confidence interval
// (Efron) of statistic over x: K resamples with replacement, interval given
// by the α/2 and 1-α/2 empirical quantiles of the resampled statistics.
// The paper recommends it for quantifying the reliability of P(A>B)
// estimates below 0.95 (Appendix C.5).
func PercentileBootstrap(x []float64, statistic func([]float64) float64,
	k int, level float64, r *xrand.Source) CI {
	return PercentileBootstrapWith(x, StatFunc(statistic), k, level, r)
}

// PercentileBootstrapWith is PercentileBootstrap dispatching on a kernel:
// the serial engine, drawing every resample from the caller-owned stream r
// in resample order. A fused kernel consumes r exactly like the equivalent
// closure (one Intn per sampled element), so swapping one in changes no
// result and perturbs no downstream draw. Degenerate input (empty x,
// k ≤ 0, level outside (0,1)) yields a NaN CI and consumes no randomness.
func PercentileBootstrapWith(x []float64, kern Kernel,
	k int, level float64, r *xrand.Source) CI {
	if badBootstrap(len(x), k, level) {
		return nanCI(level)
	}
	vp := getFloats(k)
	vals := *vp
	kern.ResampleInto(vals, x, r)
	ci := percentileCI(vals, level)
	putFloats(vp)
	return ci
}

// Pair is one paired performance measurement of two algorithms on the same
// seeds/splits (Appendix C.2).
type Pair struct {
	A, B float64
}

// PairedPercentileBootstrap bootstraps pairs jointly (resampling whole pairs
// preserves the pairing) and returns the percentile CI of statistic.
// This is exactly the procedure of Appendix C.5 for P(A>B).
func PairedPercentileBootstrap(pairs []Pair, statistic func([]Pair) float64,
	k int, level float64, r *xrand.Source) CI {
	return PairedPercentileBootstrapWith(pairs, PairStatFunc(statistic), k, level, r)
}

// PairedPercentileBootstrapWith is PairedPercentileBootstrap dispatching on
// a kernel; see PercentileBootstrapWith for the serial-stream and
// degenerate-input contracts.
func PairedPercentileBootstrapWith(pairs []Pair, kern PairedKernel,
	k int, level float64, r *xrand.Source) CI {
	if badBootstrap(len(pairs), k, level) {
		return nanCI(level)
	}
	vp := getFloats(k)
	vals := *vp
	kern.ResampleInto(vals, pairs, r)
	ci := percentileCI(vals, level)
	putFloats(vp)
	return ci
}

// TwoSampleBootstrapWith bootstraps two unpaired samples serially from the
// caller-owned stream r — each resample redraws all of a, then all of b —
// and returns the percentile CI of the kernel statistic; see
// PercentileBootstrapWith for the serial-stream and degenerate-input
// contracts.
func TwoSampleBootstrapWith(a, b []float64, kern TwoSampleKernel,
	k int, level float64, r *xrand.Source) CI {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if badBootstrap(n, k, level) {
		return nanCI(level)
	}
	vp := getFloats(k)
	vals := *vp
	kern.ResampleInto(vals, a, b, r)
	ci := percentileCI(vals, level)
	putFloats(vp)
	return ci
}

// NormalCI returns the normal-approximation interval
// estimate ± z_{1-α/2}·se, used as the ablation baseline against the
// percentile bootstrap.
func NormalCI(estimate, se float64, level float64) CI {
	z := NormQuantile(1 - (1-level)/2)
	return CI{Lo: estimate - z*se, Hi: estimate + z*se, Level: level}
}

// BootstrapStd estimates the standard deviation of statistic over x by
// resampling (used to attach uncertainty to variance measurements).
func BootstrapStd(x []float64, statistic func([]float64) float64,
	k int, r *xrand.Source) float64 {
	return BootstrapStdWith(x, StatFunc(statistic), k, r)
}

// BootstrapStdWith is BootstrapStd dispatching on a kernel; see
// PercentileBootstrapWith for the serial-stream contract. Degenerate input
// (empty x, k ≤ 0) returns NaN and consumes no randomness.
func BootstrapStdWith(x []float64, kern Kernel, k int, r *xrand.Source) float64 {
	if len(x) == 0 || k <= 0 {
		return math.NaN()
	}
	vp := getFloats(k)
	vals := *vp
	kern.ResampleInto(vals, x, r)
	sd := Std(vals)
	putFloats(vp)
	return sd
}

// NoetherSampleSize returns the minimal number of paired measurements needed
// for the Mann-Whitney-based test of P(A>B) > 0.5 against the alternative
// P(A>B) = gamma, with false-positive rate alpha and false-negative rate
// beta (Noether 1987, used in Appendix C.3 / Figure C.1):
//
//	N ≥ ( (Φ⁻¹(1−α) − Φ⁻¹(β)) / (√6·(½−γ)) )².
//
// With the paper's recommended α = β = 0.05, γ = 0.75 this gives N = 29.
func NoetherSampleSize(gamma, alpha, beta float64) int {
	if gamma == 0.5 {
		return math.MaxInt32
	}
	num := NormQuantile(1-alpha) - NormQuantile(beta)
	den := math.Sqrt(6) * (0.5 - gamma)
	n := (num / den) * (num / den)
	return int(math.Ceil(n))
}
