package stats

import (
	"math"

	"varbench/internal/xrand"
)

// CI is a two-sided confidence interval.
type CI struct {
	Lo, Hi float64
	Level  float64 // confidence level, e.g. 0.95
}

// Contains reports whether v lies inside the interval.
func (c CI) Contains(v float64) bool { return v >= c.Lo && v <= c.Hi }

// PercentileBootstrap computes a percentile-bootstrap confidence interval
// (Efron) of statistic over x: K resamples with replacement, interval given
// by the α/2 and 1-α/2 empirical quantiles of the resampled statistics.
// The paper recommends it for quantifying the reliability of P(A>B)
// estimates below 0.95 (Appendix C.5).
func PercentileBootstrap(x []float64, statistic func([]float64) float64,
	k int, level float64, r *xrand.Source) CI {
	n := len(x)
	vals := make([]float64, k)
	buf := make([]float64, n)
	for b := 0; b < k; b++ {
		for i := range buf {
			buf[i] = x[r.Intn(n)]
		}
		vals[b] = statistic(buf)
	}
	return percentileCI(vals, level)
}

// Pair is one paired performance measurement of two algorithms on the same
// seeds/splits (Appendix C.2).
type Pair struct {
	A, B float64
}

// PairedPercentileBootstrap bootstraps pairs jointly (resampling whole pairs
// preserves the pairing) and returns the percentile CI of statistic.
// This is exactly the procedure of Appendix C.5 for P(A>B).
func PairedPercentileBootstrap(pairs []Pair, statistic func([]Pair) float64,
	k int, level float64, r *xrand.Source) CI {
	n := len(pairs)
	vals := make([]float64, k)
	buf := make([]Pair, n)
	for b := 0; b < k; b++ {
		for i := range buf {
			buf[i] = pairs[r.Intn(n)]
		}
		vals[b] = statistic(buf)
	}
	return percentileCI(vals, level)
}

// NormalCI returns the normal-approximation interval
// estimate ± z_{1-α/2}·se, used as the ablation baseline against the
// percentile bootstrap.
func NormalCI(estimate, se float64, level float64) CI {
	z := NormQuantile(1 - (1-level)/2)
	return CI{Lo: estimate - z*se, Hi: estimate + z*se, Level: level}
}

// BootstrapStd estimates the standard deviation of statistic over x by
// resampling (used to attach uncertainty to variance measurements).
func BootstrapStd(x []float64, statistic func([]float64) float64,
	k int, r *xrand.Source) float64 {
	n := len(x)
	vals := make([]float64, k)
	buf := make([]float64, n)
	for b := 0; b < k; b++ {
		for i := range buf {
			buf[i] = x[r.Intn(n)]
		}
		vals[b] = statistic(buf)
	}
	return Std(vals)
}

// NoetherSampleSize returns the minimal number of paired measurements needed
// for the Mann-Whitney-based test of P(A>B) > 0.5 against the alternative
// P(A>B) = gamma, with false-positive rate alpha and false-negative rate
// beta (Noether 1987, used in Appendix C.3 / Figure C.1):
//
//	N ≥ ( (Φ⁻¹(1−α) − Φ⁻¹(β)) / (√6·(½−γ)) )².
//
// With the paper's recommended α = β = 0.05, γ = 0.75 this gives N = 29.
func NoetherSampleSize(gamma, alpha, beta float64) int {
	if gamma == 0.5 {
		return math.MaxInt32
	}
	num := NormQuantile(1-alpha) - NormQuantile(beta)
	den := math.Sqrt(6) * (0.5 - gamma)
	n := (num / den) * (num / den)
	return int(math.Ceil(n))
}
