package stats

import (
	"math"
	"sort"

	"varbench/internal/xrand"
)

// BCaBootstrap computes the bias-corrected and accelerated bootstrap
// confidence interval (Efron & Tibshirani 1994). The percentile bootstrap
// the paper recommends is adequate for P(A>B) below ~0.95 (its Appendix C.5
// cites Canty et al. 2006 on bootstrap diagnostics); BCa corrects the
// remaining bias and skew near the boundaries, at the cost of n extra
// jackknife evaluations of the statistic.
func BCaBootstrap(x []float64, statistic func([]float64) float64,
	k int, level float64, r *xrand.Source) CI {
	n := len(x)
	if n < 2 {
		return CI{Lo: math.NaN(), Hi: math.NaN(), Level: level}
	}
	theta := statistic(x)

	// Bootstrap replicates.
	reps := make([]float64, k)
	buf := make([]float64, n)
	for b := 0; b < k; b++ {
		for i := range buf {
			buf[i] = x[r.Intn(n)]
		}
		reps[b] = statistic(buf)
	}
	sort.Float64s(reps)

	// Bias correction z0: fraction of replicates below the point estimate.
	below := 0
	for _, v := range reps {
		if v < theta {
			below++
		}
	}
	frac := float64(below) / float64(k)
	if frac == 0 {
		frac = 0.5 / float64(k)
	}
	if frac == 1 {
		frac = 1 - 0.5/float64(k)
	}
	z0 := NormQuantile(frac)

	// Acceleration via jackknife skewness.
	jack := make([]float64, n)
	held := make([]float64, n-1)
	for i := 0; i < n; i++ {
		copy(held, x[:i])
		copy(held[i:], x[i+1:])
		jack[i] = statistic(held)
	}
	jm := Mean(jack)
	var num, den float64
	for _, v := range jack {
		d := jm - v
		num += d * d * d
		den += d * d
	}
	var a float64
	if den > 0 {
		a = num / (6 * math.Pow(den, 1.5))
	}

	alpha := 1 - level
	adj := func(p float64) float64 {
		z := NormQuantile(p)
		w := z0 + (z0+z)/(1-a*(z0+z))
		q := NormCDF(w)
		if math.IsNaN(q) {
			return p
		}
		return q
	}
	return CI{
		Lo:    quantileSorted(reps, adj(alpha/2)),
		Hi:    quantileSorted(reps, adj(1-alpha/2)),
		Level: level,
	}
}
