package stats

import (
	"math"

	"varbench/internal/xrand"
)

// BCaBootstrap computes the bias-corrected and accelerated bootstrap
// confidence interval (Efron & Tibshirani 1994). The percentile bootstrap
// the paper recommends is adequate for P(A>B) below ~0.95 (its Appendix C.5
// cites Canty et al. 2006 on bootstrap diagnostics); BCa corrects the
// remaining bias and skew near the boundaries, at the cost of n extra
// jackknife evaluations of the statistic.
func BCaBootstrap(x []float64, statistic func([]float64) float64,
	k int, level float64, r *xrand.Source) CI {
	return BCaBootstrapWith(x, StatFunc(statistic), k, level, r)
}

// BCaBootstrapWith is BCaBootstrap dispatching on a kernel; see
// PercentileBootstrapWith for the serial-stream contract. Degenerate input
// (n < 2, k ≤ 0, level outside (0,1)) yields a NaN CI.
func BCaBootstrapWith(x []float64, kern Kernel, k int, level float64, r *xrand.Source) CI {
	n := len(x)
	if n < 2 || badBootstrap(n, k, level) {
		return nanCI(level)
	}
	theta := kern.Stat(x)

	// Bootstrap replicates through the kernel engine (same draws as the
	// historical copy-then-call loop).
	rp := getFloats(k)
	reps := *rp
	defer putFloats(rp)
	kern.ResampleInto(reps, x, r)

	// Bias correction z0: fraction of replicates below the point estimate.
	below := 0
	for _, v := range reps {
		if v < theta {
			below++
		}
	}
	frac := float64(below) / float64(k)
	if frac == 0 {
		frac = 0.5 / float64(k)
	}
	if frac == 1 {
		frac = 1 - 0.5/float64(k)
	}
	z0 := NormQuantile(frac)

	// Acceleration via jackknife skewness.
	jack := make([]float64, n)
	held := make([]float64, n-1)
	for i := 0; i < n; i++ {
		copy(held, x[:i])
		copy(held[i:], x[i+1:])
		jack[i] = kern.Stat(held)
	}
	jm := Mean(jack)
	var num, den float64
	for _, v := range jack {
		d := jm - v
		num += d * d * d
		den += d * d
	}
	var a float64
	if den > 0 {
		a = num / (6 * math.Pow(den, 1.5))
	}

	alpha := 1 - level
	adj := func(p float64) float64 {
		z := NormQuantile(p)
		w := z0 + (z0+z)/(1-a*(z0+z))
		q := NormCDF(w)
		if math.IsNaN(q) {
			return p
		}
		return q
	}
	// adj is monotone in p, so the adjusted quantile pair stays ordered and
	// the dual selection applies (bit-identical to sort + quantileSorted).
	lo, hi := quantiles2Select(reps, adj(alpha/2), adj(1-alpha/2))
	return CI{Lo: lo, Hi: hi, Level: level}
}
