package stats

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"sync"
	"sync/atomic"

	"varbench/internal/xrand"
)

// The incremental bootstrap engine: resumable per-resample accumulators.
//
// The classic percentile bootstrap (bootstrap_sharded.go) draws, for each of
// K resamples, n indices uniform in [0, n) — the index range itself depends
// on the sample size, so a resample computed at n_old cannot be extended
// when new scores arrive: the early-stop loop had to rebuild all K resamples
// at every batch boundary, O(batches × K × n) total work. This file
// implements the *weighted* (Bayesian) percentile bootstrap instead (Rubin
// 1981): resample i assigns every element j an independent Exp(1) weight
// w_ij and evaluates the weighted statistic. A new element only *adds* terms
// to each resample's running sums, so the whole analysis is resumable:
// per-batch cost is O(K × n_new) and the state is a few K-length columns
// that serialize to a snapshot.
//
// Determinism contract (the incremental analogue of the kernel contract in
// kernel.go):
//
//   - the weight of (element j, resample i) is drawn from a stream derived
//     from (seed, side, j, shard-of-i) alone — never from when element j
//     arrived, how extensions were batched, or the worker count — consuming
//     exactly one Float64 per (element, resample) in resample order within
//     the shard;
//   - each resample's sums accumulate over elements in element order (for
//     two-sample accumulators: the a-side and b-side columns accumulate
//     independently, each in its own element order);
//
// so Extend(x₁) followed by Extend(x₂) is bit-identical to Extend(x₁‖x₂),
// at any worker count, across any snapshot/restore boundary. This is a
// different resampling scheme from the classic engine — confidence
// intervals are statistically equivalent but not numerically identical to
// PercentileBootstrapKernel's — which is exactly why it can be incremental:
// the classic multinomial scheme has no arrival-order-independent form.
//
// Shard boundaries reuse BootstrapShards(k), a pure function of k, so the
// parallel extension is worker-count invariant for the same reason the
// classic sharded engine is.

// An AccumKind identifies the statistic of an incremental accumulator.
type AccumKind uint8

// The supported accumulator statistics.
const (
	// AccMean: the weighted mean of a single sample.
	AccMean AccumKind = iota + 1
	// AccVariance: the weighted analogue of the unbiased sample variance,
	// (Σwx² − (Σwx)²/Σw) / (Σw − 1).
	AccVariance
	// AccMeanDiff: the weighted mean of paired differences A−B.
	AccMeanDiff
	// AccPAB: the weighted fraction of pairs A wins, ties counted half —
	// the incremental form of the recommended protocol's P(A>B) statistic.
	AccPAB
	// AccTwoSampleMeanDiff: the difference of weighted means of two
	// unpaired samples, each with its own independent weights.
	AccTwoSampleMeanDiff
)

// ID returns the versioned kernel identity used to fingerprint snapshots:
// restoring a snapshot whose ID does not match the requesting kind fails,
// and bumping a version here deliberately invalidates persisted state after
// a semantic change to the accumulator algebra.
func (k AccumKind) ID() string {
	switch k {
	case AccMean:
		return "wb-mean/v1"
	case AccVariance:
		return "wb-variance/v1"
	case AccMeanDiff:
		return "wb-meandiff/v1"
	case AccPAB:
		return "wb-pab/v1"
	case AccTwoSampleMeanDiff:
		return "wb-meandiff2/v1"
	default:
		return fmt.Sprintf("wb-unknown(%d)", uint8(k))
	}
}

// ncols returns how many K-length accumulator columns the kind maintains.
func (k AccumKind) ncols() int {
	switch k {
	case AccMean, AccMeanDiff, AccPAB:
		return 2
	case AccVariance:
		return 3
	case AccTwoSampleMeanDiff:
		return 4
	default:
		return 0
	}
}

// An Accum is a resumable bootstrap analysis of one statistic: K weighted
// resamples maintained as running sums that new elements extend in place.
// The zero value is unusable; construct with NewAccum or RestoreAccum.
// An Accum is not safe for concurrent mutation; Extend* calls parallelize
// internally.
type Accum struct {
	kind AccumKind
	k    int
	seed uint64
	n    int // elements consumed (pairs for paired kinds, a-side for two-sample)
	nb   int // b-side elements consumed (two-sample only)
	cols [][]float64
}

// NewAccum returns an empty accumulator for kind with k resamples, drawing
// all weights from streams derived from seed.
func NewAccum(kind AccumKind, k int, seed uint64) (*Accum, error) {
	nc := kind.ncols()
	if nc == 0 {
		return nil, fmt.Errorf("stats: unknown accumulator kind %d", kind)
	}
	if k < 1 {
		return nil, fmt.Errorf("stats: accumulator needs ≥ 1 resample, got %d", k)
	}
	ac := &Accum{kind: kind, k: k, seed: seed, cols: make([][]float64, nc)}
	for i := range ac.cols {
		ac.cols[i] = make([]float64, k)
	}
	return ac, nil
}

// Kind returns the accumulator's statistic.
func (ac *Accum) Kind() AccumKind { return ac.kind }

// K returns the number of resamples.
func (ac *Accum) K() int { return ac.k }

// Seed returns the root seed of the weight streams.
func (ac *Accum) Seed() uint64 { return ac.seed }

// N returns how many elements (pairs, for the paired kinds; a-side
// elements, for the two-sample kind) the accumulator has consumed.
func (ac *Accum) N() int { return ac.n }

// NB returns how many b-side elements a two-sample accumulator has
// consumed (0 for the other kinds).
func (ac *Accum) NB() int { return ac.nb }

// incLabelPrefix roots the per-(element, shard) weight-stream labels. The
// label bytes must stay exactly "incremental/<side>/<elem>/shard/<index>":
// they pin the weight streams independently of arrival order.
const incLabelPrefix = "incremental/"

// incLabel appends the weight-stream label for (side, element, shard) to b.
func incLabel(b []byte, side byte, elem, shard int) []byte {
	b = append(b, incLabelPrefix...)
	b = append(b, side, '/')
	b = strconv.AppendInt(b, int64(elem), 10)
	b = append(b, "/shard/"...)
	return strconv.AppendInt(b, int64(shard), 10)
}

// expWeight draws one Exp(1) resampling weight, consuming exactly one
// Float64. u ∈ [0,1) keeps the argument of Log1p in (−1, 0], so the weight
// is finite and non-negative (0 exactly when u is, probability 2⁻⁵³).
func expWeight(r *xrand.Source) float64 { return -math.Log1p(-r.Float64()) }

// sharded runs work(shard, lo, hi) over the BootstrapShards(k) resample
// ranges, claimed by up to `workers` goroutines. Shard boundaries are a pure
// function of k and shards touch disjoint column ranges, so results are
// bit-identical at any worker count.
func (ac *Accum) sharded(workers int, work func(s, lo, hi int)) {
	nsh := BootstrapShards(ac.k)
	if workers > nsh {
		workers = nsh
	}
	if workers <= 1 {
		for s := 0; s < nsh; s++ {
			work(s, s*ac.k/nsh, (s+1)*ac.k/nsh)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				s := int(next.Add(1)) - 1
				if s >= nsh {
					return
				}
				work(s, s*ac.k/nsh, (s+1)*ac.k/nsh)
			}
		}()
	}
	wg.Wait()
}

// extendWeighted adds m new elements of side `side`, starting at global
// element index `start`, to the column pair/triple selected by upd: for each
// (element, shard) it seeds the label-derived stream and hands upd one
// weight per resample in resample order. upd must only write resample i's
// slots.
func (ac *Accum) extendWeighted(side byte, start, m, workers int, upd func(j, i int, w float64)) {
	ac.sharded(workers, func(s, lo, hi int) {
		var root, r xrand.Source
		root.Seed(ac.seed)
		var lbl [len(incLabelPrefix) + 48]byte
		for j := 0; j < m; j++ {
			r.Seed(root.SplitSeedBytes(incLabel(lbl[:0], side, start+j, s)))
			for i := lo; i < hi; i++ {
				upd(j, i, expWeight(&r))
			}
		}
	})
}

// ExtendFloats appends new one-sample scores to an AccMean or AccVariance
// accumulator. The result is bit-identical whether the scores arrive in one
// call or many, at any worker count.
func (ac *Accum) ExtendFloats(x []float64, workers int) error {
	switch ac.kind {
	case AccMean:
		c0, c1 := ac.cols[0], ac.cols[1]
		ac.extendWeighted('x', ac.n, len(x), workers, func(j, i int, w float64) {
			c0[i] += w
			c1[i] += w * x[j]
		})
	case AccVariance:
		c0, c1, c2 := ac.cols[0], ac.cols[1], ac.cols[2]
		ac.extendWeighted('x', ac.n, len(x), workers, func(j, i int, w float64) {
			v := x[j]
			c0[i] += w
			c1[i] += w * v
			c2[i] += w * v * v
		})
	default:
		return fmt.Errorf("stats: %s accumulator cannot extend with one-sample scores", ac.kind.ID())
	}
	ac.n += len(x)
	return nil
}

// ExtendPairs appends new paired measurements to an AccMeanDiff or AccPAB
// accumulator; see ExtendFloats for the extension contract.
func (ac *Accum) ExtendPairs(pairs []Pair, workers int) error {
	// The per-pair contribution (difference, or twice-the-win-weight) is
	// precomputed once into pooled scratch shared read-only by all shards —
	// the same per-call staging the fused kernels use.
	dp := getFloats(len(pairs))
	d := *dp
	switch ac.kind {
	case AccMeanDiff:
		for j, pr := range pairs {
			d[j] = pr.A - pr.B
		}
		c0, c1 := ac.cols[0], ac.cols[1]
		ac.extendWeighted('x', ac.n, len(pairs), workers, func(j, i int, w float64) {
			c0[i] += w
			c1[i] += w * d[j]
		})
	case AccPAB:
		for j, pr := range pairs {
			switch {
			case pr.A > pr.B:
				d[j] = 2
			case pr.A == pr.B:
				d[j] = 1
			default:
				d[j] = 0
			}
		}
		c0, c1 := ac.cols[0], ac.cols[1]
		ac.extendWeighted('x', ac.n, len(pairs), workers, func(j, i int, w float64) {
			c0[i] += w
			c1[i] += w * d[j]
		})
	default:
		putFloats(dp)
		return fmt.Errorf("stats: %s accumulator cannot extend with pairs", ac.kind.ID())
	}
	putFloats(dp)
	ac.n += len(pairs)
	return nil
}

// ExtendTwoSample appends new unpaired scores to an AccTwoSampleMeanDiff
// accumulator. The two sides extend independently — a and b may grow at
// different rates across calls — and each side's weight streams are keyed
// by its own element indices, so any interleaving of a- and b-side arrivals
// is bit-identical to a single from-scratch call; see ExtendFloats for the
// extension contract.
func (ac *Accum) ExtendTwoSample(a, b []float64, workers int) error {
	if ac.kind != AccTwoSampleMeanDiff {
		return fmt.Errorf("stats: %s accumulator cannot extend with two samples", ac.kind.ID())
	}
	c0, c1 := ac.cols[0], ac.cols[1]
	ac.extendWeighted('a', ac.n, len(a), workers, func(j, i int, w float64) {
		c0[i] += w
		c1[i] += w * a[j]
	})
	ac.n += len(a)
	c2, c3 := ac.cols[2], ac.cols[3]
	ac.extendWeighted('b', ac.nb, len(b), workers, func(j, i int, w float64) {
		c2[i] += w
		c3[i] += w * b[j]
	})
	ac.nb += len(b)
	return nil
}

// statOf reads resample i's statistic off the accumulator columns.
func (ac *Accum) statOf(i int) float64 {
	switch ac.kind {
	case AccMean:
		return ac.cols[1][i] / ac.cols[0][i]
	case AccVariance:
		c0, c1, c2 := ac.cols[0][i], ac.cols[1][i], ac.cols[2][i]
		return (c2 - c1*c1/c0) / (c0 - 1)
	case AccMeanDiff:
		return ac.cols[1][i] / ac.cols[0][i]
	case AccPAB:
		return ac.cols[1][i] / 2 / ac.cols[0][i]
	default: // AccTwoSampleMeanDiff
		return ac.cols[1][i]/ac.cols[0][i] - ac.cols[3][i]/ac.cols[2][i]
	}
}

// CI reads the two-sided percentile interval off the K weighted resample
// statistics. An empty accumulator (or, for two-sample kinds, an empty
// side), or a level outside (0, 1), yields the documented NaN CI. The total
// weight of a resample is a sum of Exp(1) draws and is zero only when every
// underlying uniform was exactly 0 (probability 2⁻⁵³ per draw); such a
// resample evaluates to NaN and sorts first, exactly as NaN resample
// statistics do in the classic engine.
func (ac *Accum) CI(level float64) CI {
	empty := ac.n == 0 || (ac.kind == AccTwoSampleMeanDiff && ac.nb == 0)
	if empty || math.IsNaN(level) || level <= 0 || level >= 1 {
		return nanCI(level)
	}
	vp := getFloats(ac.k)
	vals := *vp
	for i := range vals {
		vals[i] = ac.statOf(i)
	}
	ci := percentileCI(vals, level)
	putFloats(vp)
	return ci
}

// ---------------------------------------------------------------------------
// Snapshots. An accumulator serializes to a self-describing binary blob:
//
//	offset size  field
//	0      6     magic "VBACC1"
//	6      1     kind (AccumKind)
//	7      8     k      (uint64 LE)
//	15     8     seed   (uint64 LE)
//	23     8     n      (uint64 LE)
//	31     8     nb     (uint64 LE)
//	39     8·k·c columns, column-major (c = kind.ncols()), float64 bits LE
//
// Float64 bit patterns round-trip exactly (including NaN/Inf sums produced
// by non-finite scores), so restore → extend is bit-identical to never
// having snapshotted. The magic's trailing digit is the format version.

// accumMagic identifies (and versions) the snapshot encoding.
const accumMagic = "VBACC1"

// accumHeaderSize is the byte length of the fixed snapshot header.
const accumHeaderSize = len(accumMagic) + 1 + 4*8

// MarshalBinary serializes the accumulator state; see the format comment
// above. The blob embeds kind, k and seed, so RestoreAccum needs no side
// channel — callers that persist snapshots should still fingerprint them
// with Kind().ID(), K() and Seed() to reject stale state early.
func (ac *Accum) MarshalBinary() ([]byte, error) {
	buf := make([]byte, accumHeaderSize+8*ac.k*len(ac.cols))
	copy(buf, accumMagic)
	buf[len(accumMagic)] = byte(ac.kind)
	off := len(accumMagic) + 1
	for _, v := range []uint64{uint64(ac.k), ac.seed, uint64(ac.n), uint64(ac.nb)} {
		binary.LittleEndian.PutUint64(buf[off:], v)
		off += 8
	}
	for _, col := range ac.cols {
		for _, v := range col {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
			off += 8
		}
	}
	return buf, nil
}

// RestoreAccum rebuilds an accumulator from a MarshalBinary blob. A
// truncated, oversized or version-mismatched blob is rejected — never
// partially applied.
func RestoreAccum(data []byte) (*Accum, error) {
	if len(data) < accumHeaderSize || string(data[:len(accumMagic)]) != accumMagic {
		return nil, fmt.Errorf("stats: not an accumulator snapshot (bad magic or truncated header)")
	}
	kind := AccumKind(data[len(accumMagic)])
	nc := kind.ncols()
	if nc == 0 {
		return nil, fmt.Errorf("stats: snapshot has unknown accumulator kind %d", kind)
	}
	off := len(accumMagic) + 1
	word := func() uint64 {
		v := binary.LittleEndian.Uint64(data[off:])
		off += 8
		return v
	}
	k64, seed, n64, nb64 := word(), word(), word(), word()
	const maxK = 1 << 31
	if k64 < 1 || k64 > maxK {
		return nil, fmt.Errorf("stats: snapshot resample count %d out of range", k64)
	}
	k := int(k64)
	if want := accumHeaderSize + 8*k*nc; len(data) != want {
		return nil, fmt.Errorf("stats: snapshot length %d, want %d for %s k=%d", len(data), want, kind.ID(), k)
	}
	if n64 > maxK*maxK || nb64 > maxK*maxK {
		return nil, fmt.Errorf("stats: snapshot element count out of range")
	}
	ac := &Accum{kind: kind, k: k, seed: seed, n: int(n64), nb: int(nb64), cols: make([][]float64, nc)}
	for c := range ac.cols {
		col := make([]float64, k)
		for i := range col {
			col[i] = math.Float64frombits(word())
		}
		ac.cols[c] = col
	}
	return ac, nil
}

// restoreInto is RestoreAccum reusing ac's column storage when shapes match
// (the benchmark reset path: no per-iteration column allocation).
func (ac *Accum) restoreInto(data []byte) error {
	re, err := RestoreAccum(data)
	if err != nil {
		return err
	}
	if ac.kind == re.kind && ac.k == re.k {
		for c := range ac.cols {
			copy(ac.cols[c], re.cols[c])
		}
		ac.seed, ac.n, ac.nb = re.seed, re.n, re.nb
		return nil
	}
	*ac = *re
	return nil
}
