// Package stats implements the statistical machinery used by the paper:
// distributions (normal, binomial, Student t), descriptive statistics,
// hypothesis tests (z, t, Mann-Whitney, Wilcoxon, Shapiro-Wilk), the
// percentile bootstrap, Noether's sample-size determination for the
// probability-of-outperforming test, simple linear regression, and
// multiple-comparison corrections. Everything is built on the standard
// library only.
package stats

import "math"

// NormCDF returns Φ(z), the standard normal cumulative distribution.
func NormCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// NormPDF returns the standard normal density at z.
func NormPDF(z float64) float64 {
	return math.Exp(-0.5*z*z) / math.Sqrt(2*math.Pi)
}

// NormQuantile returns Φ⁻¹(p) for p in (0, 1). It uses Acklam's rational
// approximation refined by one Halley step against Erfc, giving close to
// machine precision. NormQuantile(0) is -Inf and NormQuantile(1) is +Inf.
func NormQuantile(p float64) float64 {
	switch {
	case math.IsNaN(p) || p < 0 || p > 1:
		return math.NaN()
	case p == 0:
		return math.Inf(-1)
	case p == 1:
		return math.Inf(1)
	}

	// Coefficients for Acklam's approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}

	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}

	// One Halley refinement step.
	e := 0.5*math.Erfc(-x/math.Sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// LogChoose returns log C(n, k) using log-gamma.
func LogChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	ln, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return ln - lk - lnk
}

// RegIncBeta returns the regularized incomplete beta function I_x(a, b),
// computed with the continued-fraction expansion (Numerical Recipes betacf).
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	la, _ := math.Lgamma(a + b)
	lb, _ := math.Lgamma(a)
	lc, _ := math.Lgamma(b)
	front := math.Exp(la - lb - lc + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta function.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-16
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// RegIncGammaLower returns the regularized lower incomplete gamma P(a, x),
// by series expansion for x < a+1 and continued fraction otherwise.
func RegIncGammaLower(a, x float64) float64 {
	switch {
	case x < 0 || a <= 0:
		return math.NaN()
	case x == 0:
		return 0
	}
	lg, _ := math.Lgamma(a)
	if x < a+1 {
		// Series representation.
		ap := a
		sum := 1 / a
		del := sum
		for i := 0; i < 500; i++ {
			ap++
			del *= x / ap
			sum += del
			if math.Abs(del) < math.Abs(sum)*1e-16 {
				break
			}
		}
		return sum * math.Exp(-x+a*math.Log(x)-lg)
	}
	// Continued fraction for Q(a,x), then P = 1-Q.
	const fpmin = 1e-300
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i <= 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-16 {
			break
		}
	}
	q := math.Exp(-x+a*math.Log(x)-lg) * h
	return 1 - q
}
