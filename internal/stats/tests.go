package stats

import (
	"math"
	"sort"
)

// TestResult reports a test statistic and its p-value.
type TestResult struct {
	Stat   float64 // the test statistic (z, t, U, W, ... depending on the test)
	PValue float64
}

// Tail selects the alternative hypothesis direction.
type Tail int

const (
	// TwoTailed tests H1: the distributions differ.
	TwoTailed Tail = iota
	// GreaterTailed tests H1: the first sample is stochastically greater.
	GreaterTailed
	// LessTailed tests H1: the first sample is stochastically smaller.
	LessTailed
)

func pFromZ(z float64, tail Tail) float64 {
	switch tail {
	case GreaterTailed:
		return 1 - NormCDF(z)
	case LessTailed:
		return NormCDF(z)
	default:
		return 2 * (1 - NormCDF(math.Abs(z)))
	}
}

// ZTest performs a two-sample z test of mean(x) - mean(y) = delta using the
// known (or plug-in) standard deviations sigmaX, sigmaY of individual
// observations. This is the test sketched in Section 3.1: a difference of at
// least z_{0.05}·sqrt((σA²+σB²)/k) must be observed to control false
// detections at 95%.
func ZTest(x, y []float64, sigmaX, sigmaY, delta float64, tail Tail) TestResult {
	nx, ny := float64(len(x)), float64(len(y))
	se := math.Sqrt(sigmaX*sigmaX/nx + sigmaY*sigmaY/ny)
	z := (Mean(x) - Mean(y) - delta) / se
	return TestResult{Stat: z, PValue: pFromZ(z, tail)}
}

// ZCriticalDifference returns the smallest mean difference detectable at
// significance level alpha with k paired measurements per algorithm, given
// the per-measurement variances: z_{1-alpha}·sqrt((σA²+σB²)/k).
func ZCriticalDifference(sigmaA2, sigmaB2 float64, k int, alpha float64) float64 {
	return NormQuantile(1-alpha) * math.Sqrt((sigmaA2+sigmaB2)/float64(k))
}

// WelchTTest performs a two-sample t test with unequal variances.
func WelchTTest(x, y []float64, tail Tail) TestResult {
	nx, ny := float64(len(x)), float64(len(y))
	vx, vy := Variance(x), Variance(y)
	se2 := vx/nx + vy/ny
	t := (Mean(x) - Mean(y)) / math.Sqrt(se2)
	// Welch-Satterthwaite degrees of freedom.
	nu := se2 * se2 / (vx*vx/(nx*nx*(nx-1)) + vy*vy/(ny*ny*(ny-1)))
	dist := StudentT{Nu: nu}
	var p float64
	switch tail {
	case GreaterTailed:
		p = 1 - dist.CDF(t)
	case LessTailed:
		p = dist.CDF(t)
	default:
		p = 2 * (1 - dist.CDF(math.Abs(t)))
	}
	return TestResult{Stat: t, PValue: p}
}

// PairedTTest performs a one-sample t test on the differences x[i]-y[i].
func PairedTTest(x, y []float64, tail Tail) TestResult {
	if len(x) != len(y) {
		panic("stats: paired t test needs equal lengths")
	}
	d := make([]float64, len(x))
	for i := range x {
		d[i] = x[i] - y[i]
	}
	n := float64(len(d))
	t := Mean(d) / (Std(d) / math.Sqrt(n))
	dist := StudentT{Nu: n - 1}
	var p float64
	switch tail {
	case GreaterTailed:
		p = 1 - dist.CDF(t)
	case LessTailed:
		p = dist.CDF(t)
	default:
		p = 2 * (1 - dist.CDF(math.Abs(t)))
	}
	return TestResult{Stat: t, PValue: p}
}

// MannWhitneyResult extends TestResult with the U statistic and the
// probability-of-outperforming estimate the paper builds its recommended
// criterion on: P(A>B) = U/(n·m) (ties counted half).
type MannWhitneyResult struct {
	U      float64 // U statistic of the first sample
	PAB    float64 // U/(n·m): estimate of P(A > B)
	Z      float64 // normal approximation with tie correction
	PValue float64
}

// MannWhitney performs the Mann-Whitney U test (Wilcoxon rank-sum) with
// midrank tie handling and the normal approximation with tie-corrected
// variance and continuity correction.
func MannWhitney(a, b []float64, tail Tail) MannWhitneyResult {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return MannWhitneyResult{U: math.NaN(), PAB: math.NaN(), Z: math.NaN(), PValue: math.NaN()}
	}
	all := make([]float64, 0, n+m)
	all = append(all, a...)
	all = append(all, b...)
	ranks := Ranks(all)
	ra := 0.0
	for i := 0; i < n; i++ {
		ra += ranks[i]
	}
	u := ra - float64(n)*float64(n+1)/2

	nm := float64(n) * float64(m)
	meanU := nm / 2
	// Tie correction: Σ(t³-t) over tie groups.
	sorted := append([]float64(nil), all...)
	sort.Float64s(sorted)
	tieSum := 0.0
	total := n + m
	for i := 0; i < total; {
		j := i
		for j+1 < total && sorted[j+1] == sorted[i] {
			j++
		}
		t := float64(j - i + 1)
		if t > 1 {
			tieSum += t*t*t - t
		}
		i = j + 1
	}
	nTot := float64(total)
	varU := nm / 12 * (nTot + 1 - tieSum/(nTot*(nTot-1)))
	if varU <= 0 {
		// All values identical: no evidence either way.
		return MannWhitneyResult{U: u, PAB: 0.5, Z: 0, PValue: 1}
	}
	// Continuity correction toward the mean.
	var cc float64
	switch {
	case u > meanU:
		cc = -0.5
	case u < meanU:
		cc = 0.5
	}
	z := (u - meanU + cc) / math.Sqrt(varU)
	return MannWhitneyResult{
		U:      u,
		PAB:    u / nm,
		Z:      z,
		PValue: pFromZ(z, tail),
	}
}

// PairedPAB computes the paper's Equation 9: the proportion of paired
// measurements where A strictly outperforms B, with ties counted half.
// Pairing marginalizes shared sources of variation (Appendix C.2), shrinking
// the variance of the estimate.
func PairedPAB(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: PairedPAB needs equal lengths")
	}
	if len(a) == 0 {
		return math.NaN()
	}
	wins := 0.0
	for i := range a {
		switch {
		case a[i] > b[i]:
			wins++
		case a[i] == b[i]:
			wins += 0.5
		}
	}
	return wins / float64(len(a))
}

// WilcoxonSignedRank performs the paired Wilcoxon signed-rank test with the
// normal approximation, dropping zero differences and using midranks.
// Recommended by Demšar (2006) for classifier comparison across datasets;
// included for the Section 6 multiple-dataset discussion.
func WilcoxonSignedRank(x, y []float64, tail Tail) TestResult {
	if len(x) != len(y) {
		panic("stats: Wilcoxon needs equal lengths")
	}
	var d []float64
	for i := range x {
		if diff := x[i] - y[i]; diff != 0 {
			d = append(d, diff)
		}
	}
	n := len(d)
	if n == 0 {
		return TestResult{Stat: 0, PValue: 1}
	}
	abs := make([]float64, n)
	for i, v := range d {
		abs[i] = math.Abs(v)
	}
	ranks := Ranks(abs)
	wPlus := 0.0
	for i, v := range d {
		if v > 0 {
			wPlus += ranks[i]
		}
	}
	nf := float64(n)
	meanW := nf * (nf + 1) / 4
	// Tie correction on the absolute values.
	sorted := append([]float64(nil), abs...)
	sort.Float64s(sorted)
	tieSum := 0.0
	for i := 0; i < n; {
		j := i
		for j+1 < n && sorted[j+1] == sorted[i] {
			j++
		}
		t := float64(j - i + 1)
		if t > 1 {
			tieSum += t*t*t - t
		}
		i = j + 1
	}
	varW := nf*(nf+1)*(2*nf+1)/24 - tieSum/48
	if varW <= 0 {
		return TestResult{Stat: wPlus, PValue: 1}
	}
	var cc float64
	switch {
	case wPlus > meanW:
		cc = -0.5
	case wPlus < meanW:
		cc = 0.5
	}
	z := (wPlus - meanW + cc) / math.Sqrt(varW)
	return TestResult{Stat: wPlus, PValue: pFromZ(z, tail)}
}
