package stats

import (
	"sync"

	"varbench/internal/xrand"
)

// The statistic-kernel layer of the bootstrap engine. A kernel owns the
// whole resampling loop for one statistic, which lets the statistics the
// recommended protocol actually uses — mean, mean difference, variance and
// the P(A>B) win count — accumulate directly from sampled indices: no
// resample buffer, no closure call per resample, no per-resample allocation.
// Arbitrary statistics keep the historical buffered path through the
// StatFunc/PairStatFunc/TwoSampleStatFunc adapters, which materialize each
// resample in a pooled scratch buffer and call the closure.
//
// Determinism contract (every implementation MUST obey it, or worker-count
// invariance and the golden reports break):
//
//   - exactly one r.Intn(len(sample)) per sampled element, drawn in element
//     order (for two-sample kernels: all of a's draws, then all of b's);
//   - out[i] must be bit-identical to computing the buffered statistic on
//     the materialized resample — same floating-point operations in the
//     same order as the closure counterpart;
//   - no other reads of r, and no dependence on how [0, len(out)) resamples
//     are partitioned across shards or workers.
//
// Under this contract a fused kernel is observationally identical to its
// closure counterpart — every CI, report and golden test stays bit-identical
// at any worker count — and the speedup is visible only in ns/op and B/op.

// A Kernel computes a one-sample statistic over bootstrap resamples.
type Kernel interface {
	// Stat is the buffered reference semantics: the statistic of one
	// materialized sample. Fused Resample implementations must match it
	// bit-for-bit on the resample they draw.
	Stat(x []float64) float64
	// ResampleInto fills out[i] with the statistic of the i-th of len(out)
	// independent with-replacement resamples of x drawn from r, following
	// the determinism contract above.
	ResampleInto(out, x []float64, r *xrand.Source)
}

// A PairedKernel computes a paired-sample statistic over bootstrap
// resamples of whole pairs (resampling pairs jointly preserves the pairing,
// Appendix C.2).
type PairedKernel interface {
	Stat(pairs []Pair) float64
	ResampleInto(out []float64, pairs []Pair, r *xrand.Source)
}

// A TwoSampleKernel computes a two-sample statistic over independent
// resamples of two unpaired samples: each resample redraws all of a, then
// all of b.
type TwoSampleKernel interface {
	Stat(a, b []float64) float64
	ResampleInto(out []float64, a, b []float64, r *xrand.Source)
}

// ---------------------------------------------------------------------------
// Pooled scratch. The bootstrap engine is allocation-free in steady state:
// resampled-statistic vectors, shard descriptors and buffered-path scratch
// all cycle through pools. Slices are pooled by pointer so Put does not
// allocate.

var floatPool sync.Pool // *[]float64

// getFloats returns a pooled len-n float slice (contents unspecified).
func getFloats(n int) *[]float64 {
	if p, _ := floatPool.Get().(*[]float64); p != nil && cap(*p) >= n {
		*p = (*p)[:n]
		return p
	}
	s := make([]float64, n)
	return &s
}

func putFloats(p *[]float64) { floatPool.Put(p) }

var pairPool sync.Pool // *[]Pair

func getPairs(n int) *[]Pair {
	if p, _ := pairPool.Get().(*[]Pair); p != nil && cap(*p) >= n {
		*p = (*p)[:n]
		return p
	}
	s := make([]Pair, n)
	return &s
}

func putPairs(p *[]Pair) { pairPool.Put(p) }

var intPool sync.Pool // *[]int64

func getInts(n int) *[]int64 {
	if p, _ := intPool.Get().(*[]int64); p != nil && cap(*p) >= n {
		*p = (*p)[:n]
		return p
	}
	s := make([]int64, n)
	return &s
}

func putInts(p *[]int64) { intPool.Put(p) }

// ---------------------------------------------------------------------------
// Fused one-sample kernels.

// MeanKernel is the fused kernel for the sample mean (closure counterpart:
// Mean).
type MeanKernel struct{}

// Stat implements Kernel.
func (MeanKernel) Stat(x []float64) float64 { return Mean(x) }

// ResampleInto implements Kernel: the mean accumulates in draw order,
// exactly as Mean sums a materialized resample buffer.
func (MeanKernel) ResampleInto(out, x []float64, r *xrand.Source) {
	n := len(x)
	for b := range out {
		out[b] = r.SampleSum(x, n) / float64(n)
	}
}

// VarianceKernel is the kernel for the unbiased sample variance (closure
// counterpart: Variance). Variance is inherently two-pass — the second pass
// needs the drawn values again — so the kernel stages each resample in a
// pooled scratch buffer via the bulk sampler and applies Variance to it:
// bit-identity is by construction, and the win over an ad-hoc closure is
// the allocation-free engine, not fewer passes.
type VarianceKernel struct{}

// Stat implements Kernel.
func (VarianceKernel) Stat(x []float64) float64 { return Variance(x) }

// ResampleInto implements Kernel by delegating to the buffered path — the
// same body a Variance closure would run, kept in one place.
func (VarianceKernel) ResampleInto(out, x []float64, r *xrand.Source) {
	StatFunc(Variance).ResampleInto(out, x, r)
}

// StatFunc adapts an arbitrary one-sample statistic to the Kernel
// interface: the buffered fallback path. Each resample is materialized in a
// pooled scratch buffer (acquired once per ResampleInto call) and handed to
// the closure, reproducing the historical copy-then-call loop exactly.
type StatFunc func([]float64) float64

// Stat implements Kernel.
func (f StatFunc) Stat(x []float64) float64 { return f(x) }

// ResampleInto implements Kernel.
func (f StatFunc) ResampleInto(out, x []float64, r *xrand.Source) {
	sp := getFloats(len(x))
	buf := *sp
	for b := range out {
		xrand.SampleInto(r, buf, x)
		out[b] = f(buf)
	}
	putFloats(sp)
}

// ---------------------------------------------------------------------------
// Fused paired kernels.

// PABKernel is the fused kernel for the plug-in estimator of P(A>B) over
// paired measures (Equation 9): the fraction of pairs A wins, ties counted
// half. This is the statistic of the recommended protocol's hot loop.
type PABKernel struct{}

// Stat implements PairedKernel.
func (PABKernel) Stat(pairs []Pair) float64 {
	wins := 0.0
	for _, pr := range pairs {
		switch {
		case pr.A > pr.B:
			wins++
		case pr.A == pr.B:
			wins += 0.5
		}
	}
	return wins / float64(len(pairs))
}

// ResampleInto implements PairedKernel. Each pair's win contribution is
// precomputed once per call as an integer twice-the-weight (2, 1 or 0), so
// the per-draw work is one index draw and one integer addition — integer
// accumulation sidesteps the floating-point add latency chain. The float
// win count is recovered exactly: every partial sum of 1 and ½ increments
// is a dyadic rational below 2^52, so float64(sum)/2 equals the reference
// accumulation bit-for-bit, and the final division by n uses the identical
// operands.
func (PABKernel) ResampleInto(out []float64, pairs []Pair, r *xrand.Source) {
	n := len(pairs)
	wp := getInts(n)
	w := *wp
	for i, pr := range pairs {
		switch {
		case pr.A > pr.B:
			w[i] = 2
		case pr.A == pr.B:
			w[i] = 1
		default:
			w[i] = 0
		}
	}
	for b := range out {
		out[b] = float64(r.SampleSumInt(w, n)) / 2 / float64(n)
	}
	putInts(wp)
}

// MeanDiffKernel is the fused kernel for the mean paired difference
// mean(A-B), the statistic behind average-comparison bootstraps.
type MeanDiffKernel struct{}

// Stat implements PairedKernel.
func (MeanDiffKernel) Stat(pairs []Pair) float64 {
	d := 0.0
	for _, pr := range pairs {
		d += pr.A - pr.B
	}
	return d / float64(len(pairs))
}

// ResampleInto implements PairedKernel. The per-pair difference A-B is
// precomputed once — the same subtraction the reference performs per draw,
// so the accumulated values are bit-identical.
func (MeanDiffKernel) ResampleInto(out []float64, pairs []Pair, r *xrand.Source) {
	n := len(pairs)
	dp := getFloats(n)
	d := *dp
	for i, pr := range pairs {
		d[i] = pr.A - pr.B
	}
	for b := range out {
		out[b] = r.SampleSum(d, n) / float64(n)
	}
	putFloats(dp)
}

// PairStatFunc adapts an arbitrary paired statistic to the PairedKernel
// interface (buffered fallback, pooled scratch).
type PairStatFunc func([]Pair) float64

// Stat implements PairedKernel.
func (f PairStatFunc) Stat(pairs []Pair) float64 { return f(pairs) }

// ResampleInto implements PairedKernel.
func (f PairStatFunc) ResampleInto(out []float64, pairs []Pair, r *xrand.Source) {
	sp := getPairs(len(pairs))
	buf := *sp
	for b := range out {
		xrand.SampleInto(r, buf, pairs)
		out[b] = f(buf)
	}
	putPairs(sp)
}

// ---------------------------------------------------------------------------
// Fused two-sample kernels.

// TwoSampleMeanDiffKernel is the fused kernel for the difference of means
// mean(a)-mean(b) of two unpaired samples.
type TwoSampleMeanDiffKernel struct{}

// Stat implements TwoSampleKernel.
func (TwoSampleMeanDiffKernel) Stat(a, b []float64) float64 { return Mean(a) - Mean(b) }

// ResampleInto implements TwoSampleKernel: all of a's draws, then all of
// b's, each mean accumulating in draw order like Mean over the materialized
// buffers.
func (TwoSampleMeanDiffKernel) ResampleInto(out []float64, a, b []float64, r *xrand.Source) {
	na, nb := len(a), len(b)
	for i := range out {
		sa := r.SampleSum(a, na)
		sb := r.SampleSum(b, nb)
		out[i] = sa/float64(na) - sb/float64(nb)
	}
}

// TwoSampleStatFunc adapts an arbitrary two-sample statistic to the
// TwoSampleKernel interface (buffered fallback, pooled scratch for both
// samples).
type TwoSampleStatFunc func(a, b []float64) float64

// Stat implements TwoSampleKernel.
func (f TwoSampleStatFunc) Stat(a, b []float64) float64 { return f(a, b) }

// ResampleInto implements TwoSampleKernel.
func (f TwoSampleStatFunc) ResampleInto(out []float64, a, b []float64, r *xrand.Source) {
	pa, pb := getFloats(len(a)), getFloats(len(b))
	bufA, bufB := *pa, *pb
	for i := range out {
		xrand.SampleInto(r, bufA, a)
		xrand.SampleInto(r, bufB, b)
		out[i] = f(bufA, bufB)
	}
	putFloats(pa)
	putFloats(pb)
}
