package stats

import (
	"math"
	"testing"
	"testing/quick"

	"varbench/internal/xrand"
)

func TestMeanVarianceStd(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	approxEq(t, "Mean", Mean(x), 5, 1e-12)
	approxEq(t, "Variance", Variance(x), 32.0/7, 1e-12) // sample variance
	approxEq(t, "Std", Std(x), math.Sqrt(32.0/7), 1e-12)
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance([]float64{1})) {
		t.Error("degenerate inputs should give NaN")
	}
}

func TestQuantileMedian(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	approxEq(t, "Median", Median(x), 2.5, 1e-12)
	approxEq(t, "Q0", Quantile(x, 0), 1, 0)
	approxEq(t, "Q1", Quantile(x, 1), 4, 0)
	approxEq(t, "Q.25", Quantile(x, 0.25), 1.75, 1e-12)
	// Unsorted input must give the same answer.
	approxEq(t, "unsorted", Quantile([]float64{4, 1, 3, 2}, 0.25), 1.75, 1e-12)
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 2 + r.Intn(50)
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0; p += 0.05 {
			q := Quantile(x, p)
			if q < prev {
				return false
			}
			prev = q
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCovarianceCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	approxEq(t, "PearsonCorr perfect", PearsonCorr(x, y), 1, 1e-12)
	yneg := []float64{10, 8, 6, 4, 2}
	approxEq(t, "PearsonCorr anti", PearsonCorr(x, yneg), -1, 1e-12)
	approxEq(t, "Covariance", Covariance(x, y), 5, 1e-12)
}

func TestSpearmanIgnoresMonotoneTransform(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = math.Exp(v) // monotone, nonlinear
	}
	approxEq(t, "Spearman", SpearmanCorr(x, y), 1, 1e-12)
}

func TestRanksWithTies(t *testing.T) {
	r := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", r, want)
		}
	}
}

func TestRanksSumProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 1 + rng.Intn(40)
		x := make([]float64, n)
		for i := range x {
			x[i] = float64(rng.Intn(10)) // force ties
		}
		sum := 0.0
		for _, v := range Ranks(x) {
			sum += v
		}
		// Ranks always sum to n(n+1)/2 regardless of ties.
		return math.Abs(sum-float64(n*(n+1))/2) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStdOfStd(t *testing.T) {
	approxEq(t, "StdOfStd", StdOfStd(2, 51), 2/math.Sqrt(100), 1e-12)
	if !math.IsNaN(StdOfStd(1, 1)) {
		t.Error("StdOfStd(n=1) should be NaN")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 4, 1, 5})
	if lo != -1 || hi != 5 {
		t.Fatalf("MinMax = %v, %v", lo, hi)
	}
}

func TestMeanCorrelationSharedBias(t *testing.T) {
	// Construct realizations r with shared per-realization bias b_r:
	// X[r][i] = b_r + noise. Columns should be strongly correlated.
	rng := xrand.New(9)
	const reps, k = 200, 10
	rows := make([][]float64, reps)
	for r := range rows {
		b := rng.NormFloat64() * 2 // large shared bias
		rows[r] = make([]float64, k)
		for i := range rows[r] {
			rows[r][i] = b + 0.1*rng.NormFloat64()
		}
	}
	rho := MeanCorrelation(rows)
	if rho < 0.9 {
		t.Errorf("shared-bias rho = %v, want > 0.9", rho)
	}

	// Without shared bias the correlation should be near zero.
	for r := range rows {
		for i := range rows[r] {
			rows[r][i] = rng.NormFloat64()
		}
	}
	rho = MeanCorrelation(rows)
	if math.Abs(rho) > 0.1 {
		t.Errorf("independent rho = %v, want ≈ 0", rho)
	}
}

func TestRhoFromVariances(t *testing.T) {
	// If Var(μ̃) = σ²/k exactly (no correlation), ρ = 0.
	approxEq(t, "rho zero", RhoFromVariances(1.0/10, 1.0, 10), 0, 1e-12)
	// If Var(μ̃) = σ² (full correlation), ρ = 1.
	approxEq(t, "rho one", RhoFromVariances(1.0, 1.0, 10), 1, 1e-12)
}
