package stats

import "sort"

// Multiple-comparison corrections for benchmarks with many contestants
// (Section 6): when k algorithms are compared pairwise, per-comparison
// thresholds must be tightened to control the family-wise error rate or the
// false-discovery rate.

// BonferroniCorrect returns the p-values multiplied by the number of
// comparisons, clipped at 1. Controls FWER; very conservative for large m.
func BonferroniCorrect(p []float64) []float64 {
	m := float64(len(p))
	out := make([]float64, len(p))
	for i, v := range p {
		adj := v * m
		if adj > 1 {
			adj = 1
		}
		out[i] = adj
	}
	return out
}

// HolmCorrect applies the Holm step-down procedure, uniformly more powerful
// than Bonferroni while still controlling FWER.
func HolmCorrect(p []float64) []float64 {
	n := len(p)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return p[idx[a]] < p[idx[b]] })
	out := make([]float64, n)
	runMax := 0.0
	for rank, i := range idx {
		adj := p[i] * float64(n-rank)
		if adj > 1 {
			adj = 1
		}
		if adj < runMax {
			adj = runMax // enforce monotonicity
		}
		runMax = adj
		out[i] = adj
	}
	return out
}

// BenjaminiHochberg applies the BH step-up procedure controlling the false
// discovery rate.
func BenjaminiHochberg(p []float64) []float64 {
	n := len(p)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return p[idx[a]] < p[idx[b]] })
	out := make([]float64, n)
	runMin := 1.0
	for rank := n - 1; rank >= 0; rank-- {
		i := idx[rank]
		adj := p[i] * float64(n) / float64(rank+1)
		if adj > 1 {
			adj = 1
		}
		if adj < runMin {
			runMin = adj
		}
		out[i] = runMin
	}
	return out
}

// GammaMax is the saturation ceiling of GammaBonferroni: the largest
// adjusted meaningfulness threshold it returns. It sits strictly below 1
// because γ = 1 is a degenerate threshold — a bootstrap CI upper bound can
// never exceed 1, so no comparison could ever be judged meaningful, the
// CI-cleared early stop (CI.Lo > γ) would be unreachable, and Noether's
// sample-size relation loses its meaning. An adjusted γ at GammaMax still
// signals that the correction has saturated: P(A>B) must be essentially 1
// to clear it.
const GammaMax = 1 - 1e-9

// GammaBonferroni raises the meaningfulness threshold γ of the
// probability-of-outperforming test for m simultaneous comparisons, the
// adjustment suggested in Section 6 for competitions with many contestants.
// It tightens the per-comparison significance level α → α/m and converts the
// tightened z threshold back to a γ threshold through Noether's relation.
// The result saturates at GammaMax (strictly below 1) for large m, keeping
// the three-zone decision rule well defined; callers comparing against
// GammaMax can detect saturation explicitly.
func GammaBonferroni(gamma, alpha float64, m int) float64 {
	if m <= 1 {
		return gamma
	}
	// In Noether's sample-size relation the detectable effect scales with
	// Φ⁻¹(1-α); keep N fixed and solve for the γ' that the tightened α
	// demands: (½-γ')/(½-γ) = Φ⁻¹(1-α/m)/Φ⁻¹(1-α).
	scale := NormQuantile(1-alpha/float64(m)) / NormQuantile(1-alpha)
	g := 0.5 + (gamma-0.5)*scale
	if g > GammaMax {
		g = GammaMax
	}
	return g
}
