package stats

import "math"

// Selection-based quantiles for the bootstrap interval: the percentile CI
// needs only two order statistics (plus their upper neighbors for the
// type-7 interpolation) out of K resampled values, so a dual quickselect
// finds both endpoints in O(K) expected time instead of the O(K log K) full
// sort — with bit-identical results, since the p-quantile of a multiset
// does not depend on how equal elements are ordered.

// quantiles2Select returns the p1- and p2-quantiles (type-7 linear
// interpolation, the numpy/R default — identical to quantileSorted on the
// sorted slice) of s, partially reordering s in place. It requires
// p1 <= p2 and len(s) > 0.
func quantiles2Select(s []float64, p1, p2 float64) (q1, q2 float64) {
	// sort.Float64s orders NaNs first (Float64Slice.Less); replicate that by
	// partitioning NaNs to the front, then selecting with plain < on the
	// rest. Order among the NaNs themselves is immaterial — they are
	// indistinguishable to the interpolation.
	nn := 0
	for i, v := range s {
		if v != v {
			s[i], s[nn] = s[nn], s[i]
			nn++
		}
	}
	q1 = quantileSelect(s, nn, p1)
	q2 = quantileSelect(s, nn, p2)
	return q1, q2
}

// quantileSelect computes the type-7 p-quantile of s, whose first nn
// elements are NaN and sort first. Earlier quantileSelect calls on the same
// slice only refine the partial order, so repeated calls compose.
func quantileSelect(s []float64, nn int, p float64) float64 {
	n := len(s)
	if p <= 0 {
		return orderStat(s, nn, 0)
	}
	if p >= 1 {
		return orderStat(s, nn, n-1)
	}
	h := p * float64(n-1)
	lo := int(math.Floor(h))
	frac := h - float64(lo)
	v := orderStat(s, nn, lo)
	if lo+1 >= n {
		return v
	}
	// Always interpolate, even at frac == 0, mirroring quantileSorted: the
	// reference evaluates s[lo]*1 + s[lo+1]*0 there, which differs from a
	// bare s[lo] in signed-zero corner cases.
	return v*(1-frac) + orderStat(s, nn, lo+1)*frac
}

// orderStat returns the k-th smallest element of s under the sort.Float64s
// order, where the first nn elements are the NaNs.
func orderStat(s []float64, nn, k int) float64 {
	if k < nn {
		return math.NaN()
	}
	return nthElement(s[nn:], k-nn)
}

// nthElement partially sorts s so that s[k] holds the k-th smallest value,
// everything before it is ≤ s[k] and everything after is ≥ s[k], and
// returns s[k]. Iterative quickselect with median-of-three pivots and an
// insertion-sort base case; NaN-free input.
func nthElement(s []float64, k int) float64 {
	lo, hi := 0, len(s)-1
	for hi-lo > 12 {
		// Median-of-three of (lo, mid, hi), left in s[lo] as the pivot.
		mid := lo + (hi-lo)/2
		if s[mid] < s[lo] {
			s[mid], s[lo] = s[lo], s[mid]
		}
		if s[hi] < s[lo] {
			s[hi], s[lo] = s[lo], s[hi]
		}
		if s[hi] < s[mid] {
			s[hi], s[mid] = s[mid], s[hi]
		}
		s[lo], s[mid] = s[mid], s[lo]
		pivot := s[lo]

		// Hoare partition: after the loop, s[lo..j] ≤ pivot ≤ s[j+1..hi].
		i, j := lo-1, hi+1
		for {
			for {
				i++
				if s[i] >= pivot {
					break
				}
			}
			for {
				j--
				if s[j] <= pivot {
					break
				}
			}
			if i >= j {
				break
			}
			s[i], s[j] = s[j], s[i]
		}
		if k <= j {
			hi = j
		} else {
			lo = j + 1
		}
	}
	// Insertion sort of the remaining window fully orders it.
	for i := lo + 1; i <= hi; i++ {
		v := s[i]
		j := i - 1
		for j >= lo && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
	return s[k]
}
