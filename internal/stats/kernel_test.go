package stats

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"varbench/internal/xrand"
)

// kernelWorkerGrid is the worker sweep the satellite spec pins: serial, a
// small fixed pool, and whatever the machine offers.
func kernelWorkerGrid() []int {
	return []int{1, 4, runtime.GOMAXPROCS(0)}
}

func randomSample(r *xrand.Source, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	return x
}

func randomPairs(r *xrand.Source, n int) []Pair {
	p := make([]Pair, n)
	for i := range p {
		base := r.NormFloat64()
		a := base + 0.3*r.NormFloat64()
		b := base + 0.3*r.NormFloat64()
		// Exercise the tie (+½) arm of the PAB kernel too.
		if r.Bernoulli(0.2) {
			b = a
		}
		p[i] = Pair{A: a, B: b}
	}
	return p
}

// ciEqual distinguishes bit-level equality including NaN endpoints (== is
// false for NaN).
func ciEqual(a, b CI) bool {
	eq := func(x, y float64) bool {
		return math.Float64bits(x) == math.Float64bits(y)
	}
	return eq(a.Lo, b.Lo) && eq(a.Hi, b.Hi) && a.Level == b.Level
}

// TestFusedKernelsMatchClosures is the kernel/closure equivalence property
// test: every fused kernel must produce bit-identical CIs to its buffered
// closure counterpart, for random inputs, across the worker grid, in both
// the sharded and the serial caller-stream engines. This is the determinism
// contract of kernel.go made executable.
func TestFusedKernelsMatchClosures(t *testing.T) {
	r := xrand.New(1234)
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(40)
		k := 50 + r.Intn(300)
		level := 0.8 + 0.15*r.Float64()
		seed := r.Uint64()
		x := randomSample(r, n)
		pairs := randomPairs(r, n)
		y := randomSample(r, 2+r.Intn(40))

		oneSample := []struct {
			name    string
			kern    Kernel
			closure func([]float64) float64
		}{
			{"mean", MeanKernel{}, Mean},
			{"variance", VarianceKernel{}, Variance},
		}
		for _, c := range oneSample {
			for _, w := range kernelWorkerGrid() {
				fused := PercentileBootstrapKernel(x, c.kern, k, level, seed, w)
				closed := PercentileBootstrapSharded(x, c.closure, k, level, seed, w)
				if !ciEqual(fused, closed) {
					t.Fatalf("trial %d %s workers=%d: fused %+v != closure %+v",
						trial, c.name, w, fused, closed)
				}
			}
			rf, rc := xrand.New(seed), xrand.New(seed)
			fused := PercentileBootstrapWith(x, c.kern, k, level, rf)
			closed := PercentileBootstrapWith(x, StatFunc(c.closure), k, level, rc)
			if !ciEqual(fused, closed) {
				t.Fatalf("trial %d %s serial: fused %+v != closure %+v", trial, c.name, fused, closed)
			}
			if rf.Uint64() != rc.Uint64() {
				t.Fatalf("trial %d %s: fused kernel consumed the stream differently", trial, c.name)
			}
		}

		paired := []struct {
			name    string
			kern    PairedKernel
			closure func([]Pair) float64
		}{
			{"pab", PABKernel{}, PABKernel{}.Stat},
			{"meandiff", MeanDiffKernel{}, MeanDiffKernel{}.Stat},
		}
		for _, c := range paired {
			for _, w := range kernelWorkerGrid() {
				fused := PairedPercentileBootstrapKernel(pairs, c.kern, k, level, seed, w)
				closed := PairedPercentileBootstrapSharded(pairs, c.closure, k, level, seed, w)
				if !ciEqual(fused, closed) {
					t.Fatalf("trial %d %s workers=%d: fused %+v != closure %+v",
						trial, c.name, w, fused, closed)
				}
			}
			rf, rc := xrand.New(seed), xrand.New(seed)
			fused := PairedPercentileBootstrapWith(pairs, c.kern, k, level, rf)
			closed := PairedPercentileBootstrapWith(pairs, PairStatFunc(c.closure), k, level, rc)
			if !ciEqual(fused, closed) {
				t.Fatalf("trial %d %s serial: fused %+v != closure %+v", trial, c.name, fused, closed)
			}
			if rf.Uint64() != rc.Uint64() {
				t.Fatalf("trial %d %s: fused kernel consumed the stream differently", trial, c.name)
			}
		}

		meanDiff := TwoSampleMeanDiffKernel{}
		for _, w := range kernelWorkerGrid() {
			fused := TwoSampleBootstrapKernel(x, y, meanDiff, k, level, seed, w)
			closed := TwoSampleBootstrapSharded(x, y, meanDiff.Stat, k, level, seed, w)
			if !ciEqual(fused, closed) {
				t.Fatalf("trial %d two-sample workers=%d: fused %+v != closure %+v", trial, w, fused, closed)
			}
		}
		rf, rc := xrand.New(seed), xrand.New(seed)
		fused := TwoSampleBootstrapWith(x, y, meanDiff, k, level, rf)
		closed := TwoSampleBootstrapWith(x, y, TwoSampleStatFunc(meanDiff.Stat), k, level, rc)
		if !ciEqual(fused, closed) {
			t.Fatalf("trial %d two-sample serial: fused %+v != closure %+v", trial, fused, closed)
		}
		if rf.Uint64() != rc.Uint64() {
			t.Fatal("two-sample fused kernel consumed the stream differently")
		}
	}
}

// TestKernelStatsMatchReferences pins the Stat methods to the package-level
// reference implementations on the full (un-resampled) sample.
func TestKernelStatsMatchReferences(t *testing.T) {
	r := xrand.New(7)
	x := randomSample(r, 23)
	if got, want := (MeanKernel{}).Stat(x), Mean(x); got != want {
		t.Errorf("MeanKernel.Stat = %v, want %v", got, want)
	}
	if got, want := (VarianceKernel{}).Stat(x), Variance(x); got != want {
		t.Errorf("VarianceKernel.Stat = %v, want %v", got, want)
	}
	pairs := randomPairs(r, 23)
	wins := 0.0
	d := 0.0
	for _, pr := range pairs {
		switch {
		case pr.A > pr.B:
			wins++
		case pr.A == pr.B:
			wins += 0.5
		}
		d += pr.A - pr.B
	}
	if got, want := (PABKernel{}).Stat(pairs), wins/float64(len(pairs)); got != want {
		t.Errorf("PABKernel.Stat = %v, want %v", got, want)
	}
	if got, want := (MeanDiffKernel{}).Stat(pairs), d/float64(len(pairs)); got != want {
		t.Errorf("MeanDiffKernel.Stat = %v, want %v", got, want)
	}
	y := randomSample(r, 17)
	if got, want := (TwoSampleMeanDiffKernel{}).Stat(x, y), Mean(x)-Mean(y); got != want {
		t.Errorf("TwoSampleMeanDiffKernel.Stat = %v, want %v", got, want)
	}
}

// TestBootstrapDegenerateInputs covers the satellite guard: k ≤ 0, empty
// samples and a confidence level outside (0,1) answer with the documented
// NaN CI — and consume no randomness on the serial paths — instead of
// panicking inside the quantile machinery.
func TestBootstrapDegenerateInputs(t *testing.T) {
	x := []float64{1, 2, 3}
	pairs := []Pair{{1, 2}, {3, 4}}
	isNaNCI := func(t *testing.T, ci CI, level float64) {
		t.Helper()
		if !math.IsNaN(ci.Lo) || !math.IsNaN(ci.Hi) {
			t.Errorf("degenerate input: CI %+v, want NaN endpoints", ci)
		}
		if ci.Level != level && !(math.IsNaN(level) && math.IsNaN(ci.Level)) {
			t.Errorf("degenerate input: level %v, want %v echoed", ci.Level, level)
		}
	}
	cases := []struct {
		name  string
		empty bool // use empty samples
		k     int
		level float64
	}{
		{"k-zero", false, 0, 0.95},
		{"k-negative", false, -3, 0.95},
		{"empty-sample", true, 100, 0.95},
		{"level-zero", false, 100, 0},
		{"level-one", false, 100, 1},
		{"level-negative", false, 100, -0.5},
		{"level-above-one", false, 100, 1.7},
		{"level-nan", false, 100, math.NaN()},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sx, sp := x, pairs
			if c.empty {
				sx, sp = nil, nil
			}
			r := xrand.New(5)
			before := xrand.New(5).Uint64()
			isNaNCI(t, PercentileBootstrap(sx, Mean, c.k, c.level, r), c.level)
			isNaNCI(t, PairedPercentileBootstrap(sp, PABKernel{}.Stat, c.k, c.level, r), c.level)
			isNaNCI(t, TwoSampleBootstrapWith(sx, sx, TwoSampleMeanDiffKernel{}, c.k, c.level, r), c.level)
			if got := r.Uint64(); got != before {
				t.Error("degenerate serial bootstrap consumed randomness")
			}
			for _, w := range []int{1, 4} {
				isNaNCI(t, PercentileBootstrapKernel(sx, MeanKernel{}, c.k, c.level, 9, w), c.level)
				isNaNCI(t, PairedPercentileBootstrapKernel(sp, PABKernel{}, c.k, c.level, 9, w), c.level)
				isNaNCI(t, TwoSampleBootstrapKernel(sx, sx, TwoSampleMeanDiffKernel{}, c.k, c.level, 9, w), c.level)
			}
		})
	}
	// BootstrapStd: NaN, no randomness consumed.
	r := xrand.New(5)
	if !math.IsNaN(BootstrapStd(nil, Mean, 100, r)) {
		t.Error("BootstrapStd on empty sample should be NaN")
	}
	if !math.IsNaN(BootstrapStd(x, Mean, 0, r)) {
		t.Error("BootstrapStd with k=0 should be NaN")
	}
	if got, want := r.Uint64(), xrand.New(5).Uint64(); got != want {
		t.Error("degenerate BootstrapStd consumed randomness")
	}
}

// TestKernelEntryPointsMatchClosureEntryPoints locks the closure-form
// Sharded wrappers to the kernel engine: a closure that mirrors a fused
// statistic goes through StatFunc and must land on the same CI.
func TestKernelEntryPointsMatchClosureEntryPoints(t *testing.T) {
	r := xrand.New(99)
	x := randomSample(r, 31)
	for _, k := range []int{1, 2, 63, 64, 65, 1000} {
		fused := PercentileBootstrapKernel(x, MeanKernel{}, k, 0.9, 3, 4)
		closed := PercentileBootstrapSharded(x, Mean, k, 0.9, 3, 4)
		if !ciEqual(fused, closed) {
			t.Fatalf("k=%d: kernel %+v != closure %+v", k, fused, closed)
		}
	}
}

// TestBootstrapStdKernelEquivalence covers the serial Std engine's kernel
// dispatch.
func TestBootstrapStdKernelEquivalence(t *testing.T) {
	r := xrand.New(17)
	x := randomSample(r, 25)
	for _, k := range []int{10, 200} {
		a := BootstrapStd(x, Mean, k, xrand.New(8))
		b := BootstrapStdWith(x, MeanKernel{}, k, xrand.New(8))
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("k=%d: closure std %v != kernel std %v", k, a, b)
		}
	}
}

// TestShardedWorkerInvarianceFusedGrid re-runs the worker-grid invariance
// check on the fused kernels specifically (the closure grid lives in
// bootstrap_sharded_test.go), at several K to cross shard-count boundaries.
func TestShardedWorkerInvarianceFusedGrid(t *testing.T) {
	r := xrand.New(31)
	pairs := randomPairs(r, 29)
	for _, k := range []int{7, 64, 1000} {
		ref := PairedPercentileBootstrapKernel(pairs, PABKernel{}, k, 0.95, 13, 1)
		for _, w := range kernelWorkerGrid() {
			ci := PairedPercentileBootstrapKernel(pairs, PABKernel{}, k, 0.95, 13, w)
			if !ciEqual(ci, ref) {
				t.Errorf("k=%d workers=%d: %+v != serial %+v", k, w, ci, ref)
			}
		}
	}
}

func TestBootstrapSmallSamples(t *testing.T) {
	// n=1: resampling a single value is legal for the mean (degenerate CI at
	// the value) and NaN for the variance (n-1 = 0) — on both paths.
	one := []float64{2.5}
	for _, w := range []int{1, 4} {
		ci := PercentileBootstrapKernel(one, MeanKernel{}, 100, 0.95, 1, w)
		if ci.Lo != 2.5 || ci.Hi != 2.5 {
			t.Errorf("workers=%d: mean CI of singleton = %+v, want collapsed at 2.5", w, ci)
		}
		vci := PercentileBootstrapKernel(one, VarianceKernel{}, 100, 0.95, 1, w)
		closed := PercentileBootstrapSharded(one, Variance, 100, 0.95, 1, w)
		if !ciEqual(vci, closed) {
			t.Errorf("workers=%d: variance singleton fused %+v != closure %+v", w, vci, closed)
		}
		if !math.IsNaN(vci.Lo) {
			t.Errorf("workers=%d: variance CI of singleton = %+v, want NaN", w, vci)
		}
	}
}

func ExamplePercentileBootstrapKernel() {
	x := []float64{0.71, 0.74, 0.69, 0.73, 0.75, 0.70, 0.72}
	ci := PercentileBootstrapKernel(x, MeanKernel{}, 1000, 0.95, 42, 4)
	fmt.Printf("level=%.2f lo<hi: %v\n", ci.Level, ci.Lo < ci.Hi)
	// Output: level=0.95 lo<hi: true
}
