package stats

import (
	"math"
	"testing"
	"testing/quick"

	"varbench/internal/xrand"
)

func TestZTestDetectsShift(t *testing.T) {
	r := xrand.New(1)
	x := make([]float64, 100)
	y := make([]float64, 100)
	for i := range x {
		x[i] = r.Normal(1, 1)
		y[i] = r.Normal(0, 1)
	}
	res := ZTest(x, y, 1, 1, 0, GreaterTailed)
	if res.PValue > 1e-6 {
		t.Errorf("z test missed a 1σ shift with n=100: p=%v", res.PValue)
	}
	// Null: same mean.
	for i := range x {
		x[i] = r.Normal(0, 1)
	}
	res = ZTest(x, y, 1, 1, 0, TwoTailed)
	if res.PValue < 0.001 {
		t.Errorf("z test suspiciously significant under null: p=%v", res.PValue)
	}
}

func TestZCriticalDifference(t *testing.T) {
	// Section 3.1: z_{0.05}·sqrt((σA²+σB²)/k).
	got := ZCriticalDifference(1, 1, 1, 0.05)
	want := 1.6448536269514722 * math.Sqrt(2)
	approxEq(t, "ZCriticalDifference", got, want, 1e-9)
	// Grows smaller with k.
	if ZCriticalDifference(1, 1, 100, 0.05) >= got {
		t.Error("critical difference should shrink with k")
	}
}

func TestWelchTTestGolden(t *testing.T) {
	// Classic example: scipy.stats.ttest_ind(equal_var=False).
	x := []float64{27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9, 20.1, 21.9, 22.6, 23.1, 19.6, 19.0, 21.7, 21.4}
	y := []float64{27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0, 24.8, 20.2, 21.9, 22.1, 22.9, 30.0, 23.9}
	res := WelchTTest(x, y, TwoTailed)
	approxEq(t, "Welch t", res.Stat, -2.8352638006644852, 1e-9)
	approxEq(t, "Welch p", res.PValue, 0.008452732437472577, 1e-7)
}

func TestPairedTTest(t *testing.T) {
	x := []float64{1.1, 2.2, 3.1, 4.3, 5.2}
	y := []float64{1.0, 2.0, 3.0, 4.0, 5.0}
	res := PairedTTest(x, y, GreaterTailed)
	if res.PValue > 0.05 {
		t.Errorf("paired t missed consistent improvement: p=%v", res.PValue)
	}
	// Unpaired Welch on the same data cannot see it.
	welch := WelchTTest(x, y, GreaterTailed)
	if welch.PValue < res.PValue {
		t.Error("pairing should increase power on correlated data")
	}
}

func TestMannWhitneyGolden(t *testing.T) {
	// scipy.stats.mannwhitneyu(x, y, alternative='two-sided',
	// use_continuity=True, method='asymptotic'): U=25, p=0.1437.
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{3, 4, 5, 6, 7}
	res := MannWhitney(x, y, TwoTailed)
	approxEq(t, "U", res.U, 4.5, 1e-12)
	approxEq(t, "PAB", res.PAB, 4.5/25, 1e-12)
	if res.PValue < 0.05 {
		t.Errorf("small-sample MW should not be significant: p=%v", res.PValue)
	}
}

func TestMannWhitneySymmetry(t *testing.T) {
	// U_A + U_B = n·m for any data (ties handled by midranks).
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n, m := 1+r.Intn(20), 1+r.Intn(20)
		x := make([]float64, n)
		y := make([]float64, m)
		for i := range x {
			x[i] = float64(r.Intn(10))
		}
		for i := range y {
			y[i] = float64(r.Intn(10))
		}
		ua := MannWhitney(x, y, TwoTailed).U
		ub := MannWhitney(y, x, TwoTailed).U
		return math.Abs(ua+ub-float64(n*m)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMannWhitneyPABRange(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n, m := 1+r.Intn(15), 1+r.Intn(15)
		x := make([]float64, n)
		y := make([]float64, m)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		for i := range y {
			y[i] = r.NormFloat64()
		}
		pab := MannWhitney(x, y, TwoTailed).PAB
		return pab >= 0 && pab <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMannWhitneyDetectsDominance(t *testing.T) {
	r := xrand.New(3)
	x := make([]float64, 40)
	y := make([]float64, 40)
	for i := range x {
		x[i] = r.Normal(1, 1)
		y[i] = r.Normal(0, 1)
	}
	res := MannWhitney(x, y, GreaterTailed)
	if res.PValue > 0.01 {
		t.Errorf("MW missed 1σ dominance: p=%v", res.PValue)
	}
	if res.PAB < 0.6 {
		t.Errorf("PAB = %v, want > 0.6 for 1σ shift", res.PAB)
	}
	// Theoretical P(A>B) for 1σ shift of unit normals = Φ(1/√2) ≈ 0.76.
	if math.Abs(res.PAB-0.76) > 0.12 {
		t.Errorf("PAB = %v, want ≈ 0.76", res.PAB)
	}
}

func TestMannWhitneyAllTied(t *testing.T) {
	x := []float64{1, 1, 1}
	y := []float64{1, 1, 1}
	res := MannWhitney(x, y, TwoTailed)
	if res.PAB != 0.5 || res.PValue != 1 {
		t.Errorf("all-tied MW should be PAB=0.5, p=1; got %v, %v", res.PAB, res.PValue)
	}
}

func TestPairedPAB(t *testing.T) {
	a := []float64{2, 3, 1, 5}
	b := []float64{1, 2, 1, 6}
	// wins: 2>1, 3>2, tie (0.5), 5<6 → 2.5/4
	approxEq(t, "PairedPAB", PairedPAB(a, b), 2.5/4, 1e-12)
	// Complementarity: PAB(a,b) + PAB(b,a) = 1.
	approxEq(t, "complement", PairedPAB(a, b)+PairedPAB(b, a), 1, 1e-12)
}

func TestPairedPABProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 1 + r.Intn(30)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = float64(r.Intn(5))
			b[i] = float64(r.Intn(5))
		}
		pab := PairedPAB(a, b)
		if pab < 0 || pab > 1 {
			return false
		}
		return math.Abs(pab+PairedPAB(b, a)-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWilcoxonSignedRank(t *testing.T) {
	// Consistent small paired improvement.
	x := []float64{125, 115, 130, 140, 140, 115, 140, 125, 140, 135}
	y := []float64{110, 122, 125, 120, 140, 124, 123, 137, 135, 145}
	res := WilcoxonSignedRank(x, y, TwoTailed)
	// scipy.stats.wilcoxon(x, y, correction=True, mode='approx'): W+=27.
	approxEq(t, "W+", res.Stat, 27, 1e-12)
	if res.PValue < 0.3 {
		t.Errorf("Wilcoxon p=%v, should be clearly non-significant", res.PValue)
	}
	// Identical samples: p = 1.
	same := WilcoxonSignedRank(x, x, TwoTailed)
	if same.PValue != 1 {
		t.Errorf("identical samples p=%v, want 1", same.PValue)
	}
}

func TestWilcoxonDetectsShift(t *testing.T) {
	r := xrand.New(5)
	n := 50
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		base := r.NormFloat64()
		x[i] = base + 0.5
		y[i] = base + 0.1*r.NormFloat64()
	}
	res := WilcoxonSignedRank(x, y, GreaterTailed)
	if res.PValue > 1e-4 {
		t.Errorf("Wilcoxon missed paired shift: p=%v", res.PValue)
	}
}
