package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean, NaN for empty input.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Variance returns the unbiased sample variance (divides by n-1),
// NaN for fewer than two values.
func Variance(x []float64) float64 {
	n := len(x)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(x)
	s := 0.0
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(n-1)
}

// Std returns the sample standard deviation.
func Std(x []float64) float64 { return math.Sqrt(Variance(x)) }

// StdErr returns the standard error of the mean, Std/√n.
func StdErr(x []float64) float64 {
	return Std(x) / math.Sqrt(float64(len(x)))
}

// StdOfStd returns the approximate standard deviation of the sample standard
// deviation of a normal distribution estimated on n samples: σ/√(2(n-1)).
// The paper uses this for the shaded uncertainty bands of Figures 5 and H.4.
func StdOfStd(sigma float64, n int) float64 {
	if n < 2 {
		return math.NaN()
	}
	return sigma / math.Sqrt(2*float64(n-1))
}

// Quantile returns the p-quantile of x using linear interpolation between
// order statistics (type-7, the numpy/R default). x need not be sorted.
func Quantile(x []float64, p float64) float64 {
	if len(x) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), x...)
	sort.Float64s(s)
	return quantileSorted(s, p)
}

func quantileSorted(s []float64, p float64) float64 {
	if p <= 0 {
		return s[0]
	}
	if p >= 1 {
		return s[len(s)-1]
	}
	h := p * float64(len(s)-1)
	lo := int(math.Floor(h))
	frac := h - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Median returns the 0.5-quantile.
func Median(x []float64) float64 { return Quantile(x, 0.5) }

// MinMax returns the extrema of x, (NaN, NaN) for empty input.
func MinMax(x []float64) (min, max float64) {
	if len(x) == 0 {
		return math.NaN(), math.NaN()
	}
	min, max = x[0], x[0]
	for _, v := range x[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// Covariance returns the unbiased sample covariance of paired samples.
func Covariance(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return math.NaN()
	}
	mx, my := Mean(x), Mean(y)
	s := 0.0
	for i := range x {
		s += (x[i] - mx) * (y[i] - my)
	}
	return s / float64(len(x)-1)
}

// PearsonCorr returns the Pearson correlation coefficient of paired samples.
func PearsonCorr(x, y []float64) float64 {
	sx, sy := Std(x), Std(y)
	if sx == 0 || sy == 0 {
		return math.NaN()
	}
	return Covariance(x, y) / (sx * sy)
}

// SpearmanCorr returns the Spearman rank correlation of paired samples.
func SpearmanCorr(x, y []float64) float64 {
	return PearsonCorr(Ranks(x), Ranks(y))
}

// Ranks returns the 1-based ranks of x, assigning midranks to ties.
func Ranks(x []float64) []float64 {
	n := len(x)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return x[idx[a]] < x[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && x[idx[j+1]] == x[idx[i]] {
			j++
		}
		// Average rank for the tie group [i, j].
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// MeanCorrelation estimates the average correlation ρ between distinct
// performance measures of the biased estimator (Equation 7, Figure H.5).
// rows[r][i] is the i-th of k measures in realization r; measures i and j
// are correlated across realizations because each realization shares one
// fixed hyperparameter-optimization outcome. The estimate averages the
// Pearson correlation over all distinct pairs of measure columns.
func MeanCorrelation(rows [][]float64) float64 {
	if len(rows) < 2 || len(rows[0]) < 2 {
		return math.NaN()
	}
	k := len(rows[0])
	col := func(i int) []float64 {
		c := make([]float64, len(rows))
		for r := range rows {
			c[r] = rows[r][i]
		}
		return c
	}
	cols := make([][]float64, k)
	for i := 0; i < k; i++ {
		cols[i] = col(i)
	}
	total, count := 0.0, 0
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			c := PearsonCorr(cols[i], cols[j])
			if !math.IsNaN(c) {
				total += c
				count++
			}
		}
	}
	if count == 0 {
		return math.NaN()
	}
	return total / float64(count)
}

// RhoFromVariances solves Equation 7 for ρ given the observed variance of the
// biased estimator with k samples and the variance σ² of individual measures:
// Var(μ̃(k)) = σ²/k + (k-1)/k·ρ·σ²  ⇒  ρ = (k·Var(μ̃)/σ² − 1)/(k−1).
func RhoFromVariances(varEstimator, sigma2 float64, k int) float64 {
	if k < 2 || sigma2 <= 0 {
		return math.NaN()
	}
	return (float64(k)*varEstimator/sigma2 - 1) / float64(k-1)
}
