package stats

import (
	"math"
	"testing"

	"varbench/internal/xrand"
)

func TestFriedmanDetectsConsistentWinner(t *testing.T) {
	r := xrand.New(1)
	const n, k = 12, 3
	scores := make([][]float64, n)
	for d := range scores {
		base := r.NormFloat64()
		scores[d] = []float64{
			base + 1.0, // algorithm 0: consistently best
			base + 0.2,
			base,
		}
	}
	res, err := Friedman(scores)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue > 0.01 {
		t.Errorf("Friedman missed consistent winner: p=%v", res.PValue)
	}
	// Algorithm 0 must have the best (lowest) average rank.
	if res.AvgRanks[0] >= res.AvgRanks[1] || res.AvgRanks[0] >= res.AvgRanks[2] {
		t.Errorf("ranks wrong: %v", res.AvgRanks)
	}
	// Average ranks sum to k(k+1)/2 per-dataset average = 6.
	sum := 0.0
	for _, v := range res.AvgRanks {
		sum += v
	}
	if math.Abs(sum-6) > 1e-9 {
		t.Errorf("rank sum = %v, want 6", sum)
	}
}

func TestFriedmanNullCalibration(t *testing.T) {
	r := xrand.New(2)
	const trials = 300
	rejects := 0
	for trial := 0; trial < trials; trial++ {
		scores := make([][]float64, 10)
		for d := range scores {
			scores[d] = []float64{r.NormFloat64(), r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
		}
		res, err := Friedman(scores)
		if err != nil {
			t.Fatal(err)
		}
		if res.PValue < 0.05 {
			rejects++
		}
	}
	rate := float64(rejects) / trials
	if rate > 0.1 {
		t.Errorf("Friedman null rejection rate = %v, want ≈0.05", rate)
	}
}

func TestFriedmanValidation(t *testing.T) {
	if _, err := Friedman(nil); err == nil {
		t.Error("no datasets accepted")
	}
	if _, err := Friedman([][]float64{{1}, {2}}); err == nil {
		t.Error("single algorithm accepted")
	}
	if _, err := Friedman([][]float64{{1, 2}, {1, 2, 3}}); err == nil {
		t.Error("ragged scores accepted")
	}
}

func TestNemenyiCDGolden(t *testing.T) {
	// Demšar's worked example scale: k=5, n=14 at α=0.05 → CD ≈ 1.63? No —
	// CD = 2.728·sqrt(5·6/(6·14)) = 2.728·sqrt(30/84) ≈ 1.63.
	cd, err := NemenyiCD(5, 14, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cd-2.728*math.Sqrt(30.0/84)) > 1e-9 {
		t.Errorf("CD = %v", cd)
	}
	if _, err := NemenyiCD(11, 10, 0.05); err == nil {
		t.Error("k=11 accepted")
	}
	if _, err := NemenyiCD(3, 10, 0.01); err == nil {
		t.Error("untabulated alpha accepted")
	}
	// α=0.10 gives a smaller CD than α=0.05.
	cd10, err := NemenyiCD(5, 14, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if cd10 >= cd {
		t.Errorf("CD(0.10)=%v should be below CD(0.05)=%v", cd10, cd)
	}
}

func TestNemenyiPairs(t *testing.T) {
	r := xrand.New(3)
	const n = 20
	scores := make([][]float64, n)
	for d := range scores {
		// Algorithms 0 and 1 are statistically tied (their ranks swap at
		// random across datasets); both clearly beat algorithm 2.
		scores[d] = []float64{
			2 + 0.3*r.NormFloat64(),
			2 + 0.3*r.NormFloat64(),
			0.1 * r.NormFloat64(),
		}
	}
	res, err := Friedman(scores)
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := NemenyiPairs(res, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	has := func(a, b int) bool {
		for _, p := range pairs {
			if p == [2]int{a, b} {
				return true
			}
		}
		return false
	}
	if !has(0, 2) || !has(1, 2) {
		t.Errorf("expected {0,2} and {1,2} significant, got %v (ranks %v)", pairs, res.AvgRanks)
	}
	if has(0, 1) {
		t.Errorf("near-tied pair {0,1} flagged significant: %v", pairs)
	}
}
