package stats

import (
	"math"
	"runtime"
	"testing"

	"varbench/internal/xrand"
)

func shardedSample(n int, seed uint64) []float64 {
	r := xrand.New(seed)
	x := make([]float64, n)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	return x
}

func TestBootstrapShardsPureInK(t *testing.T) {
	for _, k := range []int{1, 2, 31, 64, 65, 1000, 4096} {
		s := BootstrapShards(k)
		if s < 1 || s > k || s > maxBootstrapShards {
			t.Errorf("BootstrapShards(%d) = %d out of range", k, s)
		}
		if s != BootstrapShards(k) {
			t.Errorf("BootstrapShards(%d) not deterministic", k)
		}
	}
}

func TestPercentileBootstrapShardedWorkerInvariance(t *testing.T) {
	x := shardedSample(29, 3)
	workerCounts := []int{1, 2, 3, 4, 7, 8, runtime.GOMAXPROCS(0), 100}
	ref := PercentileBootstrapSharded(x, Mean, 1000, 0.95, 42, 1)
	for _, w := range workerCounts {
		ci := PercentileBootstrapSharded(x, Mean, 1000, 0.95, 42, w)
		if ci != ref {
			t.Errorf("workers=%d: CI %+v != serial reference %+v", w, ci, ref)
		}
	}
	// Different seeds give different resamples.
	other := PercentileBootstrapSharded(x, Mean, 1000, 0.95, 43, 4)
	if other == ref {
		t.Error("seed has no effect on the sharded bootstrap")
	}
	if ref.Lo > ref.Hi || ref.Level != 0.95 {
		t.Errorf("malformed CI %+v", ref)
	}
}

func TestPairedPercentileBootstrapShardedWorkerInvariance(t *testing.T) {
	r := xrand.New(7)
	pairs := make([]Pair, 29)
	for i := range pairs {
		base := r.NormFloat64()
		pairs[i] = Pair{A: base + 1, B: base + 0.3*r.NormFloat64()}
	}
	stat := func(p []Pair) float64 {
		wins := 0.0
		for _, pr := range p {
			if pr.A > pr.B {
				wins++
			}
		}
		return wins / float64(len(p))
	}
	ref := PairedPercentileBootstrapSharded(pairs, stat, 1000, 0.95, 9, 1)
	for _, w := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		if ci := PairedPercentileBootstrapSharded(pairs, stat, 1000, 0.95, 9, w); ci != ref {
			t.Errorf("workers=%d: CI %+v != serial reference %+v", w, ci, ref)
		}
	}
	if ref.Lo <= 0.5 {
		t.Errorf("CI.Lo = %v, want > 0.5 for dominated pairs", ref.Lo)
	}
	if ref.Hi > 1 || ref.Lo < 0 {
		t.Errorf("CI out of [0,1]: %+v", ref)
	}
}

func TestTwoSampleBootstrapShardedWorkerInvariance(t *testing.T) {
	a := shardedSample(25, 1)
	for i := range a {
		a[i] += 1.5
	}
	b := shardedSample(20, 2)
	meanDiff := func(x, y []float64) float64 { return Mean(x) - Mean(y) }
	ref := TwoSampleBootstrapSharded(a, b, meanDiff, 800, 0.9, 5, 1)
	for _, w := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		if ci := TwoSampleBootstrapSharded(a, b, meanDiff, 800, 0.9, 5, w); ci != ref {
			t.Errorf("workers=%d: CI %+v != serial reference %+v", w, ci, ref)
		}
	}
	if ref.Lo <= 0 {
		t.Errorf("mean-difference CI should sit above 0: %+v", ref)
	}
}

func TestPercentileBootstrapShardedCoversMean(t *testing.T) {
	// Statistical sanity: the sharded engine is still a valid percentile
	// bootstrap — a 95% CI for the mean covers the true mean ≈95% of the
	// time.
	r := xrand.New(21)
	const reps = 150
	hits := 0
	for rep := 0; rep < reps; rep++ {
		x := make([]float64, 40)
		for i := range x {
			x[i] = r.Normal(10, 2)
		}
		ci := PercentileBootstrapSharded(x, Mean, 500, 0.95, uint64(rep), 4)
		if ci.Contains(10) {
			hits++
		}
	}
	rate := float64(hits) / reps
	if rate < 0.88 || rate > 0.995 {
		t.Errorf("sharded bootstrap CI coverage = %v, want ≈0.95", rate)
	}
}

func TestGammaBonferroniSaturatesBelowOne(t *testing.T) {
	// Regression: the adjustment used to clamp at exactly 1.0 for large m,
	// which made "significant and meaningful" (CI.Hi > γ) and the
	// CI-cleared early stop (CI.Lo > γ) unreachable — a bootstrap CI never
	// exceeds 1.
	for _, m := range []int{100, 10000, 1 << 30} {
		g := GammaBonferroni(0.75, 0.05, m)
		if g >= 1 {
			t.Errorf("m=%d: adjusted γ = %v, must stay strictly below 1", m, g)
		}
		if g != GammaMax {
			t.Errorf("m=%d: adjusted γ = %v, want saturation at GammaMax", m, g)
		}
	}
	// Saturation is detectable and the sample-size relation stays finite.
	if n := NoetherSampleSize(GammaMax, 0.05, 0.05); n <= 0 || n >= math.MaxInt32 {
		t.Errorf("NoetherSampleSize(GammaMax) = %d degenerate", n)
	}
}
